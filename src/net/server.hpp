#pragma once
// net::Server — the TCP + Unix-domain-socket serving layer over a
// driver::Driver (DESIGN.md "Network serving layer", ROADMAP item 1).
//
// One poll(2) reactor thread owns every socket: it accepts connections,
// runs the hello/welcome handshake, parses request frames, and submits
// each op straight onto Driver::submit(op, ticket) — the zero-allocation
// ticket form, with tickets drawn from a per-connection pool sized to the
// pipeline window. Completions fire on whatever thread fulfills the op
// (a scheduler worker, an M2 interface tick, or the reactor itself for
// inline sheds): the completion hook serializes the response frame into
// the connection's outbound buffer and opportunistically writes it to the
// socket RIGHT THERE, from completion context — the reactor only picks up
// the residue when the socket backs up. Out-of-order completion is the
// normal case; clients match responses by req_id.
//
// Backpressure composes in two layers, and a frame is NEVER dropped:
//   * per-connection pipeline window (ServerConfig::pipeline_window):
//     a request arriving with the window full is answered kOverloaded
//     on the wire immediately (shed_on_wire counter);
//   * the driver's AdmissionController (Options::max_in_flight): a shed
//     there completes the ticket with kOverloaded like any other result,
//     which the completion path writes back as a normal response.
//
// Graceful shutdown (stop(), also run by the destructor): listeners
// close first, then every connection drains — in-flight tickets complete
// (the terminal-status invariant guarantees they do), outbound buffers
// flush, new requests shed kOverloaded — and only then do connections
// close and the reactor exit. A connection that dies with ops still in
// flight lingers as a zombie until its last completion lands (tickets
// point into the connection; freeing it early would be use-after-free),
// so shutdown is leak-free by construction — the ASan CI job asserts it.
//
// Fault points (util/fault.hpp): "net.write.partial" truncates one
// socket write to a single byte (exercising the partial-write resume
// path), "net.accept.fail" drops a just-accepted connection (modelling
// accept(2) failing under fd pressure). Both leave the server serving.

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "driver/driver.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "util/fault.hpp"

namespace pwss::net {

struct ServerConfig {
  /// TCP listen address ("[host]:port"; port 0 = kernel-assigned), or ""
  /// for no TCP listener.
  std::string tcp_addr;
  /// Unix-domain socket path, or "" for no Unix listener. At least one
  /// of the two must be given.
  std::string unix_path;
  /// Per-connection pipeline window: max requests admitted onto
  /// Driver::submit() and not yet responded. Requests beyond it are
  /// answered kOverloaded on the wire (never dropped, never queued).
  std::size_t pipeline_window = 64;
  /// Largest frame payload accepted before the connection is refused.
  std::size_t max_frame = kMaxFrameBytes;
};

/// Wire-side counters (Driver::stats() carries them via add_stats()).
struct NetStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t protocol_errors = 0;  ///< connections refused for cause
  std::uint64_t shed_on_wire = 0;     ///< kOverloaded answered at the window
  std::uint64_t accept_failures = 0;  ///< accept(2) errors (incl. injected)
};

class Server {
 public:
  using Driver = driver::Driver<Key, Value>;
  using Ticket = core::OpTicket<Value, Key>;

  /// Binds the configured listeners and starts the reactor thread.
  /// Throws NetError when neither listener is configured or a bind fails.
  Server(Driver& driver, ServerConfig cfg)
      : driver_(driver), cfg_(std::move(cfg)) {
    if (cfg_.tcp_addr.empty() && cfg_.unix_path.empty()) {
      throw NetError("Server needs a TCP address or a unix socket path");
    }
    if (cfg_.pipeline_window == 0) cfg_.pipeline_window = 1;
    if (!cfg_.tcp_addr.empty()) {
      tcp_listener_ = listen_tcp_fd(TcpAddr::parse(cfg_.tcp_addr));
      tcp_port_ = bound_tcp_port(tcp_listener_);
    }
    if (!cfg_.unix_path.empty()) {
      unix_listener_ = listen_unix_fd(cfg_.unix_path);
    }
    int pipefd[2];
    if (::pipe(pipefd) != 0) throw_net_errno("pipe");
    wake_rd_ = OwnedFd(pipefd[0]);
    wake_wr_ = OwnedFd(pipefd[1]);
    set_nonblocking(wake_rd_.get());
    set_nonblocking(wake_wr_.get());
    reactor_ = std::thread([this] { loop(); });
  }

  ~Server() { stop(); }
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The TCP port actually bound (the kernel's pick under port 0).
  std::uint16_t tcp_port() const noexcept { return tcp_port_; }

  /// Graceful drain-and-shutdown: stop accepting, complete every
  /// in-flight op, flush every response, close, join. Idempotent.
  void stop() {
    bool expected = false;
    if (!stopping_.compare_exchange_strong(expected, true)) {
      if (reactor_.joinable()) reactor_.join();
      return;
    }
    wake();
    if (reactor_.joinable()) reactor_.join();
    if (!cfg_.unix_path.empty()) ::unlink(cfg_.unix_path.c_str());
  }

  NetStats stats() const {
    NetStats s;
    s.connections_accepted = accepted_.load(std::memory_order_relaxed);
    s.connections_active = active_.load(std::memory_order_relaxed);
    s.frames_in = frames_in_.load(std::memory_order_relaxed);
    s.frames_out = frames_out_.load(std::memory_order_relaxed);
    s.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
    s.shed_on_wire = shed_on_wire_.load(std::memory_order_relaxed);
    s.accept_failures = accept_failures_.load(std::memory_order_relaxed);
    return s;
  }

  /// Folds the wire counters into a driver stats snapshot — the serve
  /// CLI's `--stats` line shows admission, durability, and wire totals
  /// in one place.
  void add_stats(driver::DriverStats& s) const {
    const NetStats n = stats();
    s.serving = true;
    s.net_accepted += n.connections_accepted;
    s.net_active += n.connections_active;
    s.net_frames_in += n.frames_in;
    s.net_frames_out += n.frames_out;
    s.net_protocol_errors += n.protocol_errors;
    s.net_shed_on_wire += n.shed_on_wire;
  }

 private:
  struct Conn;

  /// Completion slot for one in-flight request: the driver's OpTicket
  /// plus the route back (connection + req_id). Pool-owned by the
  /// connection — steady-state serving allocates nothing per op.
  struct NetTicket : Ticket {
    Server* server = nullptr;
    Conn* conn = nullptr;  ///< alive while the conn's in_flight counts us
    std::uint64_t req_id = 0;

    NetTicket() { this->on_complete = &NetTicket::completed; }

    static void completed(Ticket* t);
  };

  struct Conn {
    explicit Conn(Server* s, OwnedFd socket, std::size_t max_frame)
        : server(s), fd(std::move(socket)), reader(max_frame) {}

    Server* server;
    OwnedFd fd;
    FrameReader reader;
    bool handshaken = false;
    bool draining = false;     ///< goodbye received: close once quiet
    bool close_after_flush = false;  ///< error frame queued: close when sent
    bool zombie = false;       ///< fd closed, completions still outstanding

    /// Requests admitted onto the driver and not yet responded. Bumped on
    /// the reactor thread before submit, dropped by the completion hook.
    std::atomic<std::size_t> in_flight{0};

    /// Guards outbuf / io_open / ticket free list; taken by the reactor
    /// and by completion hooks on driver threads.
    std::mutex wmu;
    std::vector<std::uint8_t> outbuf;
    std::size_t outpos = 0;    ///< bytes of outbuf already written
    bool io_open = true;       ///< false once the fd may no longer be used
    bool flush_inline = true;  ///< completions may write the socket
    std::vector<std::unique_ptr<NetTicket>> ticket_pool;
    std::vector<NetTicket*> free_tickets;
    /// True when outbuf holds unwritten bytes (mirror of state under wmu
    /// the reactor can poll without taking every lock every tick).
    std::atomic<bool> want_write{false};
  };

  // ---- reactor ---------------------------------------------------------------

  void loop() {
    std::vector<pollfd> pfds;
    std::vector<Conn*> pfd_conn;  // parallel to pfds; nullptr = listener/wake
    bool listeners_open = true;
    for (;;) {
      const bool stopping = stopping_.load(std::memory_order_acquire);
      if (stopping && listeners_open) {
        tcp_listener_.reset();
        unix_listener_.reset();
        listeners_open = false;
      }
      reap_and_maybe_close();
      if (stopping && conns_.empty()) break;

      pfds.clear();
      pfd_conn.clear();
      pfds.push_back({wake_rd_.get(), POLLIN, 0});
      pfd_conn.push_back(nullptr);
      if (tcp_listener_.valid()) {
        pfds.push_back({tcp_listener_.get(), POLLIN, 0});
        pfd_conn.push_back(nullptr);
      }
      if (unix_listener_.valid()) {
        pfds.push_back({unix_listener_.get(), POLLIN, 0});
        pfd_conn.push_back(nullptr);
      }
      for (const auto& up : conns_) {
        Conn* c = up.get();
        if (c->zombie) continue;
        short events = POLLIN;
        if (c->want_write.load(std::memory_order_acquire)) events |= POLLOUT;
        pfds.push_back({c->fd.get(), events, 0});
        pfd_conn.push_back(c);
      }

      // Completions wake us via the pipe, so a long timeout is only a
      // safety net (it also bounds zombie-reap latency).
      const int rc = ::poll(pfds.data(), pfds.size(), 100);
      if (rc < 0 && errno != EINTR) break;  // reactor cannot continue
      if (rc <= 0) continue;

      for (std::size_t i = 0; i < pfds.size(); ++i) {
        const short re = pfds[i].revents;
        if (re == 0) continue;
        if (pfds[i].fd == wake_rd_.get()) {
          drain_wake_pipe();
        } else if (tcp_listener_.valid() &&
                   pfds[i].fd == tcp_listener_.get()) {
          accept_all(tcp_listener_);
        } else if (unix_listener_.valid() &&
                   pfds[i].fd == unix_listener_.get()) {
          accept_all(unix_listener_);
        } else if (Conn* c = pfd_conn[i]) {
          if ((re & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
              (re & POLLIN) == 0) {
            close_conn(*c);
            continue;
          }
          if ((re & POLLOUT) != 0) flush_conn(*c);
          if ((re & POLLIN) != 0) read_conn(*c);
        }
      }
    }
    // Reactor exit: every connection has drained (stop() waits on join).
    assert(conns_.empty());
  }

  void wake() {
    const char b = 1;
    // Nonblocking: a full pipe already guarantees a pending wakeup.
    [[maybe_unused]] ssize_t n = ::write(wake_wr_.get(), &b, 1);
  }

  void drain_wake_pipe() {
    char buf[256];
    while (::read(wake_rd_.get(), buf, sizeof(buf)) > 0) {
    }
  }

  void accept_all(OwnedFd& listener) {
    for (;;) {
      const int fd = ::accept(listener.get(), nullptr, nullptr);
      if (fd < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        return;  // transient (EMFILE, ECONNABORTED): keep serving
      }
      if (PWSS_FAULT_POINT("net.accept.fail")) {
        // Injected accept failure: the connection is dropped before any
        // state exists for it; the server keeps serving everyone else.
        ::close(fd);
        accept_failures_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      OwnedFd owned(fd);
      set_nonblocking(fd);
      set_nodelay(fd);
      if (stopping_.load(std::memory_order_acquire)) {
        continue;  // raced stop(): owned closes it
      }
      auto conn = std::make_unique<Conn>(this, std::move(owned),
                                         cfg_.max_frame);
      accepted_.fetch_add(1, std::memory_order_relaxed);
      active_.fetch_add(1, std::memory_order_relaxed);
      conns_.push_back(std::move(conn));
    }
  }

  void read_conn(Conn& c) {
    char buf[64 * 1024];
    for (;;) {
      const ssize_t n = ::read(c.fd.get(), buf, sizeof(buf));
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        if (errno == EINTR) continue;
        close_conn(c);
        return;
      }
      if (n == 0) {  // peer closed
        close_conn(c);
        return;
      }
      c.reader.feed(buf, static_cast<std::size_t>(n));
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
    }
    while (auto payload = c.reader.next()) {
      frames_in_.fetch_add(1, std::memory_order_relaxed);
      if (!handle_frame(c, *payload)) return;  // connection refused/closed
    }
    if (c.reader.error() != ProtoError::kNone) {
      refuse(c, c.reader.error());
    }
  }

  /// One verified frame. Returns false when the connection was closed.
  bool handle_frame(Conn& c, std::string_view payload) {
    const std::optional<MsgType> type = peek_type(payload);
    if (!type) {
      refuse(c, ProtoError::kMalformed);
      return false;
    }
    if (!c.handshaken) {
      if (*type != MsgType::kHello) {
        refuse(c, ProtoError::kUnexpected);
        return false;
      }
      const ProtoError err = decode_hello(payload);
      if (err != ProtoError::kNone) {
        refuse(c, err);
        return false;
      }
      c.handshaken = true;
      Welcome w;
      w.supports_ordered = driver_.supports_ordered();
      w.window = static_cast<std::uint32_t>(cfg_.pipeline_window);
      w.backend = driver_.name();
      std::lock_guard<std::mutex> lk(c.wmu);
      encode_welcome(c.outbuf, w);
      frames_out_.fetch_add(1, std::memory_order_relaxed);
      try_flush_locked(c);
      return true;
    }
    switch (*type) {
      case MsgType::kRequest: {
        const std::optional<Request> req = decode_request(payload);
        if (!req) {
          refuse(c, ProtoError::kMalformed);
          return false;
        }
        submit_request(c, *req);
        return true;
      }
      case MsgType::kGoodbye:
        c.draining = true;
        maybe_finish_drain(c);
        return !c.zombie && c.fd.valid();
      default:
        refuse(c, ProtoError::kUnexpected);
        return false;
    }
  }

  void submit_request(Conn& c, const Request& req) {
    const bool shed =
        stopping_.load(std::memory_order_acquire) ||
        c.in_flight.load(std::memory_order_acquire) >= cfg_.pipeline_window;
    if (shed) {
      // Window full (or server draining): answer kOverloaded on the wire
      // NOW. The frame is consumed and answered — never dropped — so the
      // client's pipeline accounting stays exact.
      shed_on_wire_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lk(c.wmu);
      encode_response(c.outbuf, req.req_id,
                      WireResult::error(core::ResultStatus::kOverloaded));
      frames_out_.fetch_add(1, std::memory_order_relaxed);
      try_flush_locked(c);
      return;
    }
    NetTicket* t;
    {
      std::lock_guard<std::mutex> lk(c.wmu);
      if (c.free_tickets.empty()) {
        c.ticket_pool.push_back(std::make_unique<NetTicket>());
        c.free_tickets.push_back(c.ticket_pool.back().get());
      }
      t = c.free_tickets.back();
      c.free_tickets.pop_back();
    }
    t->reset();  // keeps on_complete armed (reset clears only result state)
    t->server = this;
    t->conn = &c;
    t->req_id = req.req_id;
    c.in_flight.fetch_add(1, std::memory_order_acq_rel);
    // Driver::submit handles refusal (kUnsupported), admission shed
    // (kOverloaded), and expired deadlines (kTimedOut) by fulfilling the
    // ticket inline on this thread — the completion hook below runs
    // either way, so every admitted frame gets exactly one response.
    driver_.submit(to_op(req), t);
  }

  /// The completion hook — runs on whatever thread fulfilled the op.
  /// Serializes the response and writes it to the socket from completion
  /// context when the connection is uncongested; the reactor flushes the
  /// rest via POLLOUT otherwise.
  static void complete_ticket(NetTicket& t) {
    Server& s = *t.server;
    Conn& c = *t.conn;
    {
      std::lock_guard<std::mutex> lk(c.wmu);
      encode_response(c.outbuf, t.req_id, t.result);
      s.frames_out_.fetch_add(1, std::memory_order_relaxed);
      c.free_tickets.push_back(&t);
      // Window accounting must drop BEFORE the flush can deliver this
      // response: a client pipelining at the full window sends its
      // replacement op the instant it reads the response, and that op
      // must find the slot already free — decrementing after the send
      // sheds a full-window pipeline spuriously. Releasing the slot
      // inside the critical section is safe because the reactor
      // serializes on wmu before destroying a drained connection (see
      // reap_and_maybe_close).
      c.in_flight.fetch_sub(1, std::memory_order_acq_rel);
      s.try_flush_locked(c);
    }
    // Nothing after this line may dereference c: with in_flight dropped
    // and wmu released, the reactor is free to destroy the connection.
    s.wake();
  }

  /// Flushes as much of outbuf as the socket accepts; caller holds wmu.
  /// Partial writes (including injected ones) leave the residue for the
  /// next POLLOUT round.
  void try_flush_locked(Conn& c) {
    if (!c.io_open || !c.flush_inline) {
      c.want_write.store(c.outpos < c.outbuf.size(),
                         std::memory_order_release);
      return;
    }
    while (c.outpos < c.outbuf.size()) {
      std::size_t len = c.outbuf.size() - c.outpos;
      if (PWSS_FAULT_POINT("net.write.partial")) len = 1;
      // MSG_NOSIGNAL: a peer that vanished mid-response must surface as
      // EPIPE (the reactor closes the connection), never as SIGPIPE.
      const ssize_t n = ::send(c.fd.get(), c.outbuf.data() + c.outpos, len,
                               MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        // EAGAIN: socket full — reactor resumes on POLLOUT. Hard errors
        // also land here; the reactor's next read/poll round closes the
        // connection, which must not happen under a completion's lock.
        break;
      }
      c.outpos += static_cast<std::size_t>(n);
    }
    if (c.outpos == c.outbuf.size()) {
      c.outbuf.clear();
      c.outpos = 0;
    }
    c.want_write.store(c.outpos < c.outbuf.size(), std::memory_order_release);
  }

  void flush_conn(Conn& c) {
    {
      std::lock_guard<std::mutex> lk(c.wmu);
      try_flush_locked(c);
    }
    maybe_finish_drain(c);
  }

  /// Protocol error: count it, best-effort send the error frame, close.
  /// Other connections are untouched — one bad peer never takes the
  /// server down.
  void refuse(Conn& c, ProtoError err) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(c.wmu);
      encode_error(c.outbuf, to_string(err));
      frames_out_.fetch_add(1, std::memory_order_relaxed);
      try_flush_locked(c);
    }
    close_conn(c);
  }

  /// A draining (goodbye) connection closes once every in-flight op has
  /// answered and the outbound buffer is flushed.
  void maybe_finish_drain(Conn& c) {
    if (!c.draining || c.zombie || !c.fd.valid()) return;
    bool quiet;
    {
      std::lock_guard<std::mutex> lk(c.wmu);
      quiet = c.in_flight.load(std::memory_order_acquire) == 0 &&
              c.outpos == c.outbuf.size();
    }
    if (quiet) close_conn(c);
  }

  /// Closes a connection's socket. With completions still in flight the
  /// Conn object stays behind as a zombie (tickets hold pointers into
  /// it); reap_and_maybe_close() destroys it once the last completion
  /// lands.
  void close_conn(Conn& c) {
    {
      std::lock_guard<std::mutex> lk(c.wmu);
      if (!c.io_open) return;  // already closed/zombified
      c.io_open = false;
      c.want_write.store(false, std::memory_order_release);
      c.fd.reset();
    }
    active_.fetch_sub(1, std::memory_order_relaxed);
    c.zombie = true;
  }

  /// Reactor-side sweep: destroy zombies whose completions all landed,
  /// finish drains, and under stop() push every live connection into its
  /// drain path.
  void reap_and_maybe_close() {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn& c = **it;
      if (!c.zombie && stopping) {
        c.draining = true;
        maybe_finish_drain(c);
      } else if (!c.zombie) {
        maybe_finish_drain(c);
      }
      if (c.zombie && c.in_flight.load(std::memory_order_acquire) == 0) {
        // A completion decrements in_flight INSIDE its wmu critical
        // section (so the client-visible window frees before the
        // response flushes); acquiring wmu here guarantees that last
        // completion has fully left the connection before we free it.
        { std::lock_guard<std::mutex> lk(c.wmu); }
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }

  Driver& driver_;
  ServerConfig cfg_;
  OwnedFd tcp_listener_;
  OwnedFd unix_listener_;
  std::uint16_t tcp_port_ = 0;
  OwnedFd wake_rd_;
  OwnedFd wake_wr_;
  std::atomic<bool> stopping_{false};
  /// Reactor-thread-owned; completions never touch the list (they reach
  /// their Conn through the ticket and signal via in_flight + the pipe).
  std::vector<std::unique_ptr<Conn>> conns_;
  std::thread reactor_;

  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> active_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  std::atomic<std::uint64_t> shed_on_wire_{0};
  std::atomic<std::uint64_t> accept_failures_{0};
};

inline void Server::NetTicket::completed(Ticket* t) {
  Server::complete_ticket(*static_cast<NetTicket*>(t));
}

}  // namespace pwss::net
