#pragma once
// net::Client — the C++ client library of the network serving layer.
// Mirrors the Driver API over a socket: blocking conveniences
// (search/insert/upsert/erase + the ordered kinds) and an async pipelined
// surface shaped exactly like Driver::submit() — caller-owned OpTicket,
// refcounted Future, or completion callback — so code written against a
// local driver ports to the wire by swapping the object.
//
// One socket, two threads: callers serialize request frames under a write
// mutex (the socket is blocking; write_all is the send path), and a
// dedicated reader thread parses response frames and fulfills whichever
// ticket their req_id names — responses arrive OUT OF ORDER by design,
// the server answers ops as the backend completes them. Pipelining is
// therefore free: submit as many ops as the server's advertised window
// allows and wait on the tickets in any order.
//
// Deadlines travel as RELATIVE timeouts (no shared clock): an op's
// absolute deadline_ns is converted at send time, and one already expired
// is fulfilled kTimedOut locally without touching the wire. Ticket
// cancel() has no remote effect — the protocol has no cancel frame; the
// op completes with whatever the server answers.
//
// Connection loss (EOF, read error, protocol error, server error frame)
// fulfills every outstanding ticket with kCancelled: the op's execution
// state on the server is UNKNOWN — it may or may not have applied — which
// is exactly what kCancelled's "no result, terminal" contract conveys.
// last_error() then says why the connection died.

#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/future.hpp"
#include "core/ops.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"

namespace pwss::net {

class Client {
 public:
  using Ticket = core::OpTicket<Value, Key>;
  using Completion = std::function<void(WireResult&&)>;

  /// Connects over TCP ("host:port") and completes the hello/welcome
  /// handshake; throws NetError when the connection or handshake fails
  /// (the server's error-frame message is included verbatim).
  static Client dial_tcp(const std::string& addr) {
    return Client(net::connect_tcp(TcpAddr::parse(addr)));
  }

  /// Connects over a Unix-domain socket path; same contract as dial_tcp.
  static Client dial_unix(const std::string& path) {
    return Client(net::connect_unix(path));
  }

  ~Client() { close(); }
  Client(Client&&) = delete;  // tickets hold no back-pointer, but the
  Client& operator=(Client&&) = delete;  // reader thread captures `this`

  // ---- handshake results ---------------------------------------------------

  /// Registry name of the backend the server is exposing ("m2", ...).
  const std::string& backend() const noexcept { return welcome_.backend; }
  /// True when the server's backend executes the ordered kinds.
  bool supports_ordered() const noexcept { return welcome_.supports_ordered; }
  /// The server's per-connection pipeline window: requests beyond it are
  /// answered kOverloaded on the wire, so this is the useful pipelining
  /// depth.
  std::uint32_t window() const noexcept { return welcome_.window; }

  /// Why the connection died ("" while healthy).
  std::string last_error() const {
    std::lock_guard<std::mutex> lk(pmu_);
    return last_error_;
  }

  // ---- asynchronous submission (mirrors Driver::submit) --------------------

  /// Lowest-level form: caller-owned completion token, zero allocation on
  /// the submission path. The ticket must stay alive until fulfilled; it
  /// always reaches a terminal status (response, local kTimedOut, or
  /// kCancelled on connection loss).
  void submit(const WireOp& op, Ticket* ticket) {
    if (op.deadline_ns != 0 && op.deadline_ns <= core::now_ns()) {
      ticket->fulfill(WireResult::error(core::ResultStatus::kTimedOut));
      return;
    }
    const std::uint64_t id =
        next_id_.fetch_add(1, std::memory_order_relaxed) + 1;
    bool registered = false;
    {
      std::lock_guard<std::mutex> lk(pmu_);
      if (!failed_) {
        pending_.emplace(id, ticket);
        registered = true;
      }
    }
    if (!registered) {
      // Dead connection; fulfill outside pmu_ (completions may re-enter
      // submit()).
      ticket->fulfill(WireResult::error(core::ResultStatus::kCancelled));
      return;
    }
    Request r;
    r.req_id = id;
    r.op = op.type;
    r.key = op.key;
    r.key2 = op.key2;
    r.value = op.value;
    if (op.deadline_ns != 0) {
      r.timeout_ns = static_cast<std::uint64_t>(op.deadline_ns) -
                     static_cast<std::uint64_t>(core::now_ns());
    }
    bool sent = true;
    {
      std::lock_guard<std::mutex> lk(wmu_);
      scratch_.clear();
      encode_request(scratch_, r);
      try {
        write_all(fd_.get(), scratch_.data(), scratch_.size());
      } catch (const NetError&) {
        sent = false;
      }
    }
    if (!sent) {
      // The reader's fail_all() may have raced us to this ticket; the
      // pending-map erase decides who fulfills (exactly one does).
      Ticket* mine = take_pending(id);
      if (mine != nullptr) {
        mine->fulfill(WireResult::error(core::ResultStatus::kCancelled));
      }
    }
  }

  /// Future form (one heap-shared state per call).
  core::Future<Value, Key> submit(const WireOp& op) {
    auto* state = new core::detail::FutureState<Value, Key>();
    submit(op, static_cast<Ticket*>(state));
    return core::Future<Value, Key>(state);
  }

  /// Completion form: `done` runs on the reader thread with the result
  /// (or on the caller for locally-fulfilled ops). Keep it short — it
  /// blocks response dispatch for the whole connection.
  void submit(const WireOp& op, Completion done) {
    auto* state = new core::detail::FutureState<Value, Key>();
    state->completion = std::move(done);
    state->refs.store(1, std::memory_order_relaxed);  // producer only
    submit(op, static_cast<Ticket*>(state));
  }

  /// One op, blocking — the wire analogue of Driver::run_blocking (minus
  /// the retry loop: the server's blocking paths already absorbed theirs,
  /// and a shed window is an explicit signal callers may want to see).
  WireResult run_blocking(const WireOp& op) {
    Ticket t;
    submit(op, &t);
    return t.wait();
  }

  /// Pipelined bulk execution: streams `ops` through a sliding window of
  /// min(server window, ops.size()) outstanding tickets and collects
  /// results in submission order. This is the client-side analogue of
  /// Driver::run() — and the load generator's inner loop.
  void run(const std::vector<WireOp>& ops, std::vector<WireResult>& out) {
    out.clear();
    out.resize(ops.size());
    std::size_t w = welcome_.window == 0 ? 1 : welcome_.window;
    if (ops.size() < w) w = ops.size() == 0 ? 1 : ops.size();
    std::vector<Ticket> slots(w);
    std::vector<std::size_t> slot_op(w, kNoOp);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::size_t s = i % w;
      if (slot_op[s] != kNoOp) {
        out[slot_op[s]] = slots[s].wait();
        slots[s].reset();
      }
      slot_op[s] = i;
      submit(ops[i], &slots[s]);
    }
    for (std::size_t s = 0; s < slots.size(); ++s) {
      if (slot_op[s] != kNoOp) out[slot_op[s]] = slots[s].wait();
    }
  }

  std::vector<WireResult> run(const std::vector<WireOp>& ops) {
    std::vector<WireResult> out;
    run(ops, out);
    return out;
  }

  // ---- blocking conveniences (mirror Driver's) -----------------------------

  std::optional<Value> search(Key key) {
    return run_blocking(WireOp::search(key)).value;
  }
  bool insert(Key key, Value value) {
    return run_blocking(WireOp::insert(key, value)).success();
  }
  core::ResultStatus upsert(Key key, Value value) {
    return run_blocking(WireOp::upsert(key, value)).status;
  }
  std::optional<Value> erase(Key key) {
    return run_blocking(WireOp::erase(key)).value;
  }

  /// Ordered conveniences throw std::invalid_argument when the server's
  /// backend lacks ordered support — the same calling-thread contract as
  /// Driver's blocking API (the async forms instead complete kUnsupported,
  /// delivered by the server).
  std::optional<std::pair<Key, Value>> predecessor(Key key) {
    check_ordered();
    return ordered_pair(run_blocking(WireOp::predecessor(key)));
  }
  std::optional<std::pair<Key, Value>> successor(Key key) {
    check_ordered();
    return ordered_pair(run_blocking(WireOp::successor(key)));
  }
  std::uint64_t range_count(Key lo, Key hi) {
    check_ordered();
    return run_blocking(WireOp::range_count(lo, hi)).count;
  }

  /// Graceful close: sends goodbye, waits for every outstanding ticket to
  /// reach a terminal status (response or connection-loss kCancelled),
  /// and joins the reader once the server closes its end. Idempotent;
  /// run by the destructor.
  void close() {
    if (closed_.exchange(true, std::memory_order_acq_rel)) {
      if (reader_thread_.joinable()) reader_thread_.join();
      return;
    }
    {
      std::lock_guard<std::mutex> lk(wmu_);
      scratch_.clear();
      encode_goodbye(scratch_);
      try {
        write_all(fd_.get(), scratch_.data(), scratch_.size());
      } catch (const NetError&) {
        // Connection already dead: fail_all() settles the tickets.
      }
    }
    {
      std::unique_lock<std::mutex> lk(pmu_);
      cv_.wait(lk, [&] { return pending_.empty(); });
    }
    // The server answers goodbye by closing once drained; the reader
    // exits on that EOF (or already exited on an earlier error).
    if (reader_thread_.joinable()) reader_thread_.join();
    fd_.reset();
  }

 private:
  static constexpr std::size_t kNoOp = static_cast<std::size_t>(-1);

  explicit Client(OwnedFd fd) : fd_(std::move(fd)) {
    handshake();
    reader_thread_ = std::thread([this] { reader_loop(); });
  }

  /// Synchronous hello/welcome exchange on the caller's thread (the
  /// reader starts only after it succeeds, so no concurrency yet).
  void handshake() {
    std::vector<std::uint8_t> hello;
    encode_hello(hello);
    write_all(fd_.get(), hello.data(), hello.size());
    char buf[4096];
    for (;;) {
      if (auto payload = reader_.next()) {
        const std::optional<MsgType> type = peek_type(*payload);
        if (type == MsgType::kWelcome) {
          const std::optional<Welcome> w = decode_welcome(*payload);
          if (!w) throw NetError("handshake: malformed welcome");
          welcome_ = *w;
          return;
        }
        if (type == MsgType::kError) {
          const std::optional<std::string> msg = decode_error(*payload);
          throw NetError("server refused connection: " +
                         msg.value_or("(malformed error frame)"));
        }
        throw NetError("handshake: unexpected server message");
      }
      if (reader_.error() != ProtoError::kNone) {
        throw NetError(std::string("handshake: ") +
                       std::string(to_string(reader_.error())));
      }
      const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_net_errno("read (handshake)");
      }
      if (n == 0) throw NetError("server closed during handshake");
      reader_.feed(buf, static_cast<std::size_t>(n));
    }
  }

  void reader_loop() {
    char buf[64 * 1024];
    std::string why;
    for (;;) {
      const ssize_t n = ::read(fd_.get(), buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        why = std::string("read: ") + std::strerror(errno);
        break;
      }
      if (n == 0) {
        why = "server closed the connection";
        break;
      }
      reader_.feed(buf, static_cast<std::size_t>(n));
      bool bad = false;
      while (auto payload = reader_.next()) {
        if (!dispatch(*payload, why)) {
          bad = true;
          break;
        }
      }
      if (bad) break;
      if (reader_.error() != ProtoError::kNone) {
        why = std::string(to_string(reader_.error()));
        break;
      }
    }
    fail_all(why);
  }

  /// One server frame. Returns false (with `why` set) on protocol error.
  bool dispatch(std::string_view payload, std::string& why) {
    const std::optional<MsgType> type = peek_type(payload);
    if (type == MsgType::kResponse) {
      const std::optional<Response> resp = decode_response(payload);
      if (!resp) {
        why = "malformed response frame";
        return false;
      }
      Ticket* t = take_pending(resp->req_id);
      if (t == nullptr) {
        why = "response for unknown req_id";
        return false;
      }
      t->fulfill(WireResult(resp->result));
      return true;
    }
    if (type == MsgType::kError) {
      const std::optional<std::string> msg = decode_error(payload);
      why = "server error: " + msg.value_or("(malformed error frame)");
      return false;
    }
    why = "unexpected server message";
    return false;
  }

  /// Removes and returns the ticket registered under `id` (nullptr when
  /// fail_all or a racing path already took it). Notifies close()'s
  /// drain wait. Fulfill OUTSIDE pmu_: completions may re-enter submit().
  Ticket* take_pending(std::uint64_t id) {
    std::lock_guard<std::mutex> lk(pmu_);
    const auto it = pending_.find(id);
    if (it == pending_.end()) return nullptr;
    Ticket* t = it->second;
    pending_.erase(it);
    if (pending_.empty()) cv_.notify_all();
    return t;
  }

  /// Connection death: every outstanding ticket completes kCancelled
  /// (execution state on the server unknown) and later submits are
  /// refused the same way.
  void fail_all(const std::string& why) {
    std::unordered_map<std::uint64_t, Ticket*> orphans;
    {
      std::lock_guard<std::mutex> lk(pmu_);
      failed_ = true;
      if (last_error_.empty()) last_error_ = why;
      orphans.swap(pending_);
      cv_.notify_all();
    }
    for (const auto& [id, t] : orphans) {
      t->fulfill(WireResult::error(core::ResultStatus::kCancelled));
    }
  }

  void check_ordered() const {
    if (!welcome_.supports_ordered) {
      throw std::invalid_argument(
          "server backend '" + welcome_.backend +
          "' does not support ordered queries "
          "(predecessor/successor/range-count)");
    }
  }

  static std::optional<std::pair<Key, Value>> ordered_pair(WireResult r) {
    if (!r.matched_key.has_value()) return std::nullopt;
    return std::make_pair(*r.matched_key, r.value.value_or(Value{}));
  }

  OwnedFd fd_;
  Welcome welcome_;
  FrameReader reader_;  ///< reader-thread-owned after the handshake
  std::thread reader_thread_;

  std::mutex wmu_;  ///< serializes frame encode + write on the socket
  std::vector<std::uint8_t> scratch_;  ///< send buffer, reused (under wmu_)

  mutable std::mutex pmu_;  ///< guards pending_/failed_/last_error_
  std::condition_variable cv_;
  std::unordered_map<std::uint64_t, Ticket*> pending_;
  bool failed_ = false;
  std::string last_error_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<bool> closed_{false};
};

}  // namespace pwss::net
