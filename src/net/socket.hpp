#pragma once
// Socket plumbing for the network serving layer: TCP (IPv4) and
// Unix-domain listeners/connectors behind a minimal RAII fd owner, plus
// the address grammar the --serve/--socket CLI flags accept.
//
//   TCP address  :=  [host]":"port      "127.0.0.1:7070", ":7070" (any),
//                                       port 0 = kernel-assigned (tests)
//   Unix address :=  filesystem path    stale socket files are unlinked
//
// All listeners and accepted connections are nonblocking (the server is
// a poll reactor); client connections stay blocking (the client library
// reads on a dedicated thread). Failures throw NetError with the peer
// address in the message.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace pwss::net {

struct NetError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void throw_net_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

inline void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_net_errno("fcntl O_NONBLOCK");
  }
}

/// Disables Nagle on TCP sockets: the protocol is request/response with
/// small frames, so coalescing delay is pure added latency. A no-op
/// (EOPNOTSUPP) on Unix-domain sockets is ignored.
inline void set_nodelay(int fd) {
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Parses "host:port" / ":port"; host defaults to 0.0.0.0 (any).
struct TcpAddr {
  std::string host;
  std::uint16_t port = 0;

  static TcpAddr parse(std::string_view text) {
    const std::size_t colon = text.rfind(':');
    if (colon == std::string_view::npos) {
      throw NetError("TCP address must be [host]:port, got '" +
                     std::string(text) + "'");
    }
    TcpAddr a;
    a.host = std::string(text.substr(0, colon));
    if (a.host.empty()) a.host = "0.0.0.0";
    const std::string_view port_text = text.substr(colon + 1);
    std::uint32_t port = 0;
    bool ok = !port_text.empty() && port_text.size() <= 5;
    for (const char c : port_text) {
      if (c < '0' || c > '9') {
        ok = false;
        break;
      }
      port = port * 10 + static_cast<std::uint32_t>(c - '0');
    }
    if (!ok || port > 0xFFFF) {
      throw NetError("bad TCP port in '" + std::string(text) + "'");
    }
    a.port = static_cast<std::uint16_t>(port);
    return a;
  }
};

inline sockaddr_in to_sockaddr(const TcpAddr& addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_port = htons(addr.port);
  if (::inet_pton(AF_INET, addr.host.c_str(), &sa.sin_addr) != 1) {
    throw NetError("bad IPv4 host '" + addr.host + "'");
  }
  return sa;
}

// store::Fd only opens by path, so listeners/connections adopt raw fds
// through this minimal owner instead (close-on-destroy, movable).
class OwnedFd {
 public:
  OwnedFd() = default;
  explicit OwnedFd(int fd) noexcept : fd_(fd) {}
  ~OwnedFd() { reset(); }
  OwnedFd(OwnedFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  OwnedFd& operator=(OwnedFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  OwnedFd(const OwnedFd&) = delete;
  OwnedFd& operator=(const OwnedFd&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int get() const noexcept { return fd_; }
  int release() noexcept {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

/// Listening TCP socket as an OwnedFd (the usable variant; the store::Fd
/// version above cannot adopt raw descriptors).
inline OwnedFd listen_tcp_fd(const TcpAddr& addr, int backlog = 128) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_net_errno("socket(AF_INET)");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    throw_net_errno("setsockopt(SO_REUSEADDR)");
  }
  const sockaddr_in sa = to_sockaddr(addr);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    throw_net_errno("bind " + addr.host + ":" + std::to_string(addr.port));
  }
  if (::listen(fd.get(), backlog) != 0) {
    throw_net_errno("listen " + addr.host + ":" + std::to_string(addr.port));
  }
  set_nonblocking(fd.get());
  return fd;
}

/// The port a listening TCP socket actually bound (differs from the
/// requested one only for port 0).
inline std::uint16_t bound_tcp_port(const OwnedFd& fd) {
  sockaddr_in sa{};
  socklen_t len = sizeof(sa);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&sa), &len) != 0) {
    throw_net_errno("getsockname");
  }
  return ntohs(sa.sin_port);
}

/// Listening Unix-domain socket; a stale socket file at `path` (from a
/// previous process) is unlinked first.
inline OwnedFd listen_unix_fd(const std::string& path, int backlog = 128) {
  sockaddr_un sa{};
  if (path.size() >= sizeof(sa.sun_path)) {
    throw NetError("unix socket path too long: " + path);
  }
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_net_errno("socket(AF_UNIX)");
  ::unlink(path.c_str());
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&sa), sizeof(sa)) !=
      0) {
    throw_net_errno("bind " + path);
  }
  if (::listen(fd.get(), backlog) != 0) throw_net_errno("listen " + path);
  set_nonblocking(fd.get());
  return fd;
}

/// Blocking client connect (TCP). The client library reads on its own
/// thread, so blocking sockets keep it simple.
inline OwnedFd connect_tcp(const TcpAddr& addr) {
  OwnedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_net_errno("socket(AF_INET)");
  const sockaddr_in sa = to_sockaddr(addr);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                sizeof(sa)) != 0) {
    throw_net_errno("connect " + addr.host + ":" + std::to_string(addr.port));
  }
  set_nodelay(fd.get());
  return fd;
}

inline OwnedFd connect_unix(const std::string& path) {
  sockaddr_un sa{};
  if (path.size() >= sizeof(sa.sun_path)) {
    throw NetError("unix socket path too long: " + path);
  }
  OwnedFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) throw_net_errno("socket(AF_UNIX)");
  sa.sun_family = AF_UNIX;
  std::memcpy(sa.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd.get(), reinterpret_cast<const sockaddr*>(&sa),
                sizeof(sa)) != 0) {
    throw_net_errno("connect " + path);
  }
  return fd;
}

/// Sends the whole buffer on a BLOCKING socket (client side); EINTR
/// retried, hard errors throw. MSG_NOSIGNAL: a peer that closed mid-send
/// must surface as EPIPE (an exception), never as a process-killing
/// SIGPIPE.
inline void write_all(int fd, const void* data, std::size_t len) {
  const auto* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::send(fd, p, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_net_errno("send");
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace pwss::net
