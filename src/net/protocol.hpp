#pragma once
// Wire protocol of the network serving layer (DESIGN.md "Network serving
// layer") — the small length-prefixed, CRC-framed binary protocol spoken
// between net::Server and net::Client over TCP or a Unix-domain socket.
//
// Frame grammar (all integers native-endian, like the store/ formats —
// the handshake magic doubles as the endianness check: a peer with the
// other byte order reads a reversed magic and is refused cleanly):
//
//   frame    := len:u32 crc:u32 payload[len]     crc = CRC32(payload)
//   payload  := hello | welcome | request | response | error | goodbye
//   hello    := 0x01 magic:u32 version:u32
//   welcome  := 0x02 magic:u32 version:u32 flags:u8 window:u32
//               name_len:u16 name[name_len]      flags bit0 = ordered ok
//   request  := 0x03 req_id:u64 op:u8 key:u64 key2:u64 value:u64
//               timeout_ns:u64                   timeout relative, 0 = none
//   response := 0x04 req_id:u64 status:u8 flags:u8 value:u64
//               matched_key:u64 count:u64        flags bit0 = has value,
//                                                bit1 = has matched_key
//   error    := 0x05 msg_len:u16 msg[msg_len]    sender closes after this
//   goodbye  := 0x06                             no more requests follow
//
// The handshake is one round trip: the client's first frame must be a
// hello with matching magic and version; the server answers welcome
// (carrying its per-connection pipeline window, the backend name, and the
// ordered-query capability bit) or error + close. After the handshake the
// client pipelines request frames; responses may arrive OUT OF ORDER and
// are matched by the client-assigned req_id — the completion-driven
// server fulfills whichever ops finish first.
//
// Keys and values are fixed at u64 on the wire — the K/V every bench,
// test, and example in this repo instantiates. Timeouts travel as
// RELATIVE nanoseconds (clocks are not assumed shared); the server
// re-anchors them onto its own core::now_ns() clock at receipt.
//
// Status codes are STABLE WIRE VALUES, decoupled from the in-memory
// ResultStatus enum ordering: execution statuses live in 0x0x, terminal
// error statuses in 0x1x, and a value is never reused or renumbered (the
// both-directions table test in tests/net_protocol_test.cpp pins them).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/ops.hpp"
#include "store/format.hpp"  // crc32

namespace pwss::net {

/// The one key/value shape the wire carries (see header comment).
using Key = std::uint64_t;
using Value = std::uint64_t;
using WireOp = core::Op<Key, Value>;
using WireResult = core::Result<Value, Key>;

inline constexpr std::uint32_t kMagic = 0x4E535750u;  // "PWSN" little-endian
inline constexpr std::uint32_t kProtocolVersion = 1;
/// Frame payload ceiling: anything larger is a protocol error, refused
/// before allocation (a 4GiB length prefix must not become a 4GiB read).
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;
inline constexpr std::size_t kFrameHeaderBytes = 8;  // len:u32 + crc:u32

enum class MsgType : std::uint8_t {
  kHello = 0x01,
  kWelcome = 0x02,
  kRequest = 0x03,
  kResponse = 0x04,
  kError = 0x05,
  kGoodbye = 0x06,
};

// ---- stable wire codes -------------------------------------------------------

/// ResultStatus on the wire. Values are part of the protocol: stable
/// across releases, never renumbered. 0x0x = the op executed; 0x1x = a
/// terminal error status (the op did NOT execute).
enum class WireStatus : std::uint8_t {
  kNotFound = 0x00,
  kFound = 0x01,
  kInserted = 0x02,
  kUpdated = 0x03,
  kErased = 0x04,
  kOverloaded = 0x10,
  kTimedOut = 0x11,
  kCancelled = 0x12,
  kUnsupported = 0x13,
  kReadOnly = 0x14,
};

constexpr WireStatus to_wire(core::ResultStatus s) noexcept {
  switch (s) {
    case core::ResultStatus::kNotFound:
      return WireStatus::kNotFound;
    case core::ResultStatus::kFound:
      return WireStatus::kFound;
    case core::ResultStatus::kInserted:
      return WireStatus::kInserted;
    case core::ResultStatus::kUpdated:
      return WireStatus::kUpdated;
    case core::ResultStatus::kErased:
      return WireStatus::kErased;
    case core::ResultStatus::kOverloaded:
      return WireStatus::kOverloaded;
    case core::ResultStatus::kTimedOut:
      return WireStatus::kTimedOut;
    case core::ResultStatus::kCancelled:
      return WireStatus::kCancelled;
    case core::ResultStatus::kUnsupported:
      return WireStatus::kUnsupported;
    case core::ResultStatus::kReadOnly:
      return WireStatus::kReadOnly;
  }
  return WireStatus::kUnsupported;  // unreachable for in-range enums
}

/// Wire byte -> ResultStatus; nullopt for bytes this version does not
/// know (a FUTURE status must surface as a client-side protocol error,
/// never be misread as a nearby status).
constexpr std::optional<core::ResultStatus> status_from_wire(
    std::uint8_t b) noexcept {
  switch (static_cast<WireStatus>(b)) {
    case WireStatus::kNotFound:
      return core::ResultStatus::kNotFound;
    case WireStatus::kFound:
      return core::ResultStatus::kFound;
    case WireStatus::kInserted:
      return core::ResultStatus::kInserted;
    case WireStatus::kUpdated:
      return core::ResultStatus::kUpdated;
    case WireStatus::kErased:
      return core::ResultStatus::kErased;
    case WireStatus::kOverloaded:
      return core::ResultStatus::kOverloaded;
    case WireStatus::kTimedOut:
      return core::ResultStatus::kTimedOut;
    case WireStatus::kCancelled:
      return core::ResultStatus::kCancelled;
    case WireStatus::kUnsupported:
      return core::ResultStatus::kUnsupported;
    case WireStatus::kReadOnly:
      return core::ResultStatus::kReadOnly;
  }
  return std::nullopt;
}

/// OpType on the wire — same stability contract as WireStatus.
enum class WireOpType : std::uint8_t {
  kSearch = 0x01,
  kInsert = 0x02,
  kErase = 0x03,
  kUpsert = 0x04,
  kPredecessor = 0x05,
  kSuccessor = 0x06,
  kRangeCount = 0x07,
};

constexpr WireOpType to_wire(core::OpType t) noexcept {
  switch (t) {
    case core::OpType::kSearch:
      return WireOpType::kSearch;
    case core::OpType::kInsert:
      return WireOpType::kInsert;
    case core::OpType::kErase:
      return WireOpType::kErase;
    case core::OpType::kUpsert:
      return WireOpType::kUpsert;
    case core::OpType::kPredecessor:
      return WireOpType::kPredecessor;
    case core::OpType::kSuccessor:
      return WireOpType::kSuccessor;
    case core::OpType::kRangeCount:
      return WireOpType::kRangeCount;
  }
  return WireOpType::kSearch;  // unreachable for in-range enums
}

constexpr std::optional<core::OpType> op_from_wire(std::uint8_t b) noexcept {
  switch (static_cast<WireOpType>(b)) {
    case WireOpType::kSearch:
      return core::OpType::kSearch;
    case WireOpType::kInsert:
      return core::OpType::kInsert;
    case WireOpType::kErase:
      return core::OpType::kErase;
    case WireOpType::kUpsert:
      return core::OpType::kUpsert;
    case WireOpType::kPredecessor:
      return core::OpType::kPredecessor;
    case WireOpType::kSuccessor:
      return core::OpType::kSuccessor;
    case WireOpType::kRangeCount:
      return core::OpType::kRangeCount;
  }
  return std::nullopt;
}

// ---- POD append/read helpers -------------------------------------------------

namespace detail {

template <typename T>
void put(std::vector<std::uint8_t>& buf, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const std::size_t at = buf.size();
  buf.resize(at + sizeof(T));
  std::memcpy(buf.data() + at, &v, sizeof(T));
}

/// Bounds-checked sequential reader over one frame payload. Every get<>()
/// returns false past the end instead of reading out of bounds — a short
/// (truncated) payload is a protocol error, not UB.
struct Cursor {
  const std::uint8_t* p;
  std::size_t left;

  explicit Cursor(std::string_view payload)
      : p(reinterpret_cast<const std::uint8_t*>(payload.data())),
        left(payload.size()) {}

  template <typename T>
  bool get(T& out) noexcept {
    static_assert(std::is_trivially_copyable_v<T>);
    if (left < sizeof(T)) return false;
    std::memcpy(&out, p, sizeof(T));
    p += sizeof(T);
    left -= sizeof(T);
    return true;
  }

  bool get_bytes(std::string& out, std::size_t n) {
    if (left < n) return false;
    out.assign(reinterpret_cast<const char*>(p), n);
    p += n;
    left -= n;
    return true;
  }

  bool exhausted() const noexcept { return left == 0; }
};

}  // namespace detail

// ---- frame encoding ----------------------------------------------------------

/// Appends one framed payload (header + body) to `out`. `build` appends
/// the payload bytes to the buffer it is given; the header (length + CRC)
/// is back-patched around whatever it wrote.
template <typename BuildFn>
void append_frame(std::vector<std::uint8_t>& out, BuildFn&& build) {
  const std::size_t header_at = out.size();
  out.resize(header_at + kFrameHeaderBytes);
  build(out);
  const std::size_t payload_at = header_at + kFrameHeaderBytes;
  const std::uint32_t len = static_cast<std::uint32_t>(out.size() - payload_at);
  const std::uint32_t crc = store::crc32(out.data() + payload_at, len);
  std::memcpy(out.data() + header_at, &len, sizeof(len));
  std::memcpy(out.data() + header_at + sizeof(len), &crc, sizeof(crc));
}

inline void encode_hello(std::vector<std::uint8_t>& out) {
  append_frame(out, [](std::vector<std::uint8_t>& b) {
    detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(MsgType::kHello));
    detail::put<std::uint32_t>(b, kMagic);
    detail::put<std::uint32_t>(b, kProtocolVersion);
  });
}

struct Welcome {
  std::uint32_t version = kProtocolVersion;
  bool supports_ordered = false;
  std::uint32_t window = 0;  ///< server's per-connection pipeline window
  std::string backend;       ///< registry name the server is exposing
};

inline void encode_welcome(std::vector<std::uint8_t>& out, const Welcome& w) {
  append_frame(out, [&](std::vector<std::uint8_t>& b) {
    detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(MsgType::kWelcome));
    detail::put<std::uint32_t>(b, kMagic);
    detail::put<std::uint32_t>(b, w.version);
    detail::put<std::uint8_t>(b, w.supports_ordered ? 1 : 0);
    detail::put<std::uint32_t>(b, w.window);
    detail::put<std::uint16_t>(b, static_cast<std::uint16_t>(w.backend.size()));
    for (const char c : w.backend) {
      detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(c));
    }
  });
}

/// One request as carried on the wire: the op plus the client-assigned id
/// responses are matched by. The deadline travels relative (`timeout_ns`).
struct Request {
  std::uint64_t req_id = 0;
  core::OpType op = core::OpType::kSearch;
  Key key = 0;
  Key key2 = 0;
  Value value = 0;
  std::uint64_t timeout_ns = 0;  ///< relative; 0 = no deadline
};

inline void encode_request(std::vector<std::uint8_t>& out, const Request& r) {
  append_frame(out, [&](std::vector<std::uint8_t>& b) {
    detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(MsgType::kRequest));
    detail::put<std::uint64_t>(b, r.req_id);
    detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(to_wire(r.op)));
    detail::put<std::uint64_t>(b, r.key);
    detail::put<std::uint64_t>(b, r.key2);
    detail::put<std::uint64_t>(b, r.value);
    detail::put<std::uint64_t>(b, r.timeout_ns);
  });
}

inline constexpr std::uint8_t kRespHasValue = 1u << 0;
inline constexpr std::uint8_t kRespHasMatchedKey = 1u << 1;

inline void encode_response(std::vector<std::uint8_t>& out,
                            std::uint64_t req_id, const WireResult& r) {
  append_frame(out, [&](std::vector<std::uint8_t>& b) {
    detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(MsgType::kResponse));
    detail::put<std::uint64_t>(b, req_id);
    detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(to_wire(r.status)));
    std::uint8_t flags = 0;
    if (r.value.has_value()) flags |= kRespHasValue;
    if (r.matched_key.has_value()) flags |= kRespHasMatchedKey;
    detail::put<std::uint8_t>(b, flags);
    detail::put<std::uint64_t>(b, r.value.value_or(0));
    detail::put<std::uint64_t>(b, r.matched_key.value_or(0));
    detail::put<std::uint64_t>(b, r.count);
  });
}

inline void encode_error(std::vector<std::uint8_t>& out, std::string_view msg) {
  if (msg.size() > 512) msg = msg.substr(0, 512);
  append_frame(out, [&](std::vector<std::uint8_t>& b) {
    detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(MsgType::kError));
    detail::put<std::uint16_t>(b, static_cast<std::uint16_t>(msg.size()));
    for (const char c : msg) {
      detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(c));
    }
  });
}

inline void encode_goodbye(std::vector<std::uint8_t>& out) {
  append_frame(out, [](std::vector<std::uint8_t>& b) {
    detail::put<std::uint8_t>(b, static_cast<std::uint8_t>(MsgType::kGoodbye));
  });
}

// ---- frame decoding ----------------------------------------------------------

/// Why a peer was refused — the closed set of protocol errors both ends
/// report (and the frame fuzzer asserts are detected, never UB).
enum class ProtoError : std::uint8_t {
  kNone = 0,
  kOversized,     ///< length prefix beyond kMaxFrameBytes
  kBadCrc,        ///< payload checksum mismatch
  kBadMagic,      ///< hello with a foreign magic
  kBadVersion,    ///< hello with an unsupported version
  kMalformed,     ///< truncated / trailing bytes / unknown message type
  kUnexpected,    ///< well-formed message illegal in this state
};

constexpr std::string_view to_string(ProtoError e) noexcept {
  switch (e) {
    case ProtoError::kNone:
      return "ok";
    case ProtoError::kOversized:
      return "oversized frame";
    case ProtoError::kBadCrc:
      return "frame CRC mismatch";
    case ProtoError::kBadMagic:
      return "bad magic";
    case ProtoError::kBadVersion:
      return "unsupported protocol version";
    case ProtoError::kMalformed:
      return "malformed message";
    case ProtoError::kUnexpected:
      return "unexpected message in this state";
  }
  return "?";
}

/// Incremental frame extractor over a connection's receive buffer: bytes
/// arrive in arbitrary chunks (TCP guarantees nothing about boundaries),
/// next() peels one complete verified payload at a time and reports the
/// first protocol error it proves. The buffer is compacted lazily.
class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame = kMaxFrameBytes)
      : max_frame_(max_frame) {}

  void feed(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + len);
  }

  /// One complete, CRC-verified payload (view into the internal buffer —
  /// valid until the next feed()/next() call), or nullopt when more bytes
  /// are needed or an error was detected (check error()).
  std::optional<std::string_view> next() {
    if (err_ != ProtoError::kNone) return std::nullopt;
    compact();
    if (buf_.size() - pos_ < kFrameHeaderBytes) return std::nullopt;
    std::uint32_t len = 0;
    std::uint32_t crc = 0;
    std::memcpy(&len, buf_.data() + pos_, sizeof(len));
    std::memcpy(&crc, buf_.data() + pos_ + sizeof(len), sizeof(crc));
    if (len > max_frame_) {
      err_ = ProtoError::kOversized;
      return std::nullopt;
    }
    if (buf_.size() - pos_ - kFrameHeaderBytes < len) return std::nullopt;
    const char* payload =
        reinterpret_cast<const char*>(buf_.data() + pos_ + kFrameHeaderBytes);
    if (store::crc32(payload, len) != crc) {
      err_ = ProtoError::kBadCrc;
      return std::nullopt;
    }
    pos_ += kFrameHeaderBytes + len;
    return std::string_view(payload, len);
  }

  ProtoError error() const noexcept { return err_; }
  /// Bytes buffered but not yet consumed (diagnostics).
  std::size_t buffered() const noexcept { return buf_.size() - pos_; }

 private:
  void compact() {
    if (pos_ == 0) return;
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<std::ptrdiff_t>(pos_));
    pos_ = 0;
  }

  std::size_t max_frame_;
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;
  ProtoError err_ = ProtoError::kNone;
};

/// Parses a payload's leading message-type byte; nullopt when empty or
/// unknown (kMalformed either way).
inline std::optional<MsgType> peek_type(std::string_view payload) noexcept {
  if (payload.empty()) return std::nullopt;
  const auto b = static_cast<std::uint8_t>(payload[0]);
  if (b < static_cast<std::uint8_t>(MsgType::kHello) ||
      b > static_cast<std::uint8_t>(MsgType::kGoodbye)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(b);
}

/// Decodes a hello payload (type byte included); distinguishes bad magic
/// and bad version from truncation so the server can answer precisely.
inline ProtoError decode_hello(std::string_view payload) {
  detail::Cursor c(payload);
  std::uint8_t type = 0;
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  if (!c.get(type) || !c.get(magic) || !c.get(version) || !c.exhausted()) {
    return ProtoError::kMalformed;
  }
  if (magic != kMagic) return ProtoError::kBadMagic;
  if (version != kProtocolVersion) return ProtoError::kBadVersion;
  return ProtoError::kNone;
}

inline std::optional<Welcome> decode_welcome(std::string_view payload) {
  detail::Cursor c(payload);
  std::uint8_t type = 0;
  std::uint32_t magic = 0;
  Welcome w;
  std::uint8_t flags = 0;
  std::uint16_t name_len = 0;
  if (!c.get(type) || !c.get(magic) || !c.get(w.version) || !c.get(flags) ||
      !c.get(w.window) || !c.get(name_len) ||
      !c.get_bytes(w.backend, name_len) || !c.exhausted() ||
      magic != kMagic) {
    return std::nullopt;
  }
  w.supports_ordered = (flags & 1u) != 0;
  return w;
}

inline std::optional<Request> decode_request(std::string_view payload) {
  detail::Cursor c(payload);
  std::uint8_t type = 0;
  std::uint8_t op = 0;
  Request r;
  if (!c.get(type) || !c.get(r.req_id) || !c.get(op) || !c.get(r.key) ||
      !c.get(r.key2) || !c.get(r.value) || !c.get(r.timeout_ns) ||
      !c.exhausted()) {
    return std::nullopt;
  }
  const std::optional<core::OpType> t = op_from_wire(op);
  if (!t) return std::nullopt;
  r.op = *t;
  return r;
}

struct Response {
  std::uint64_t req_id = 0;
  WireResult result;
};

inline std::optional<Response> decode_response(std::string_view payload) {
  detail::Cursor c(payload);
  std::uint8_t type = 0;
  std::uint8_t status = 0;
  std::uint8_t flags = 0;
  std::uint64_t value = 0;
  std::uint64_t matched_key = 0;
  Response r;
  if (!c.get(type) || !c.get(r.req_id) || !c.get(status) || !c.get(flags) ||
      !c.get(value) || !c.get(matched_key) || !c.get(r.result.count) ||
      !c.exhausted()) {
    return std::nullopt;
  }
  const std::optional<core::ResultStatus> s = status_from_wire(status);
  if (!s) return std::nullopt;
  r.result.status = *s;
  if ((flags & kRespHasValue) != 0) r.result.value = value;
  if ((flags & kRespHasMatchedKey) != 0) r.result.matched_key = matched_key;
  return r;
}

inline std::optional<std::string> decode_error(std::string_view payload) {
  detail::Cursor c(payload);
  std::uint8_t type = 0;
  std::uint16_t len = 0;
  std::string msg;
  if (!c.get(type) || !c.get(len) || !c.get_bytes(msg, len) ||
      !c.exhausted()) {
    return std::nullopt;
  }
  return msg;
}

/// The server-side request -> Op conversion: re-anchors the relative
/// timeout onto the local monotonic clock. A zero timeout stays "no
/// deadline" per the Op contract.
inline WireOp to_op(const Request& r) {
  WireOp op;
  op.type = r.op;
  op.key = r.key;
  op.key2 = r.key2;
  op.value = r.value;
  if (r.timeout_ns != 0) {
    op.deadline_ns = core::deadline_after(std::chrono::nanoseconds(
        static_cast<std::int64_t>(r.timeout_ns)));
  }
  return op;
}

}  // namespace pwss::net
