#pragma once
// Parallel buffer (Appendix A.1, Figure 4): the implicit-batching front end
// that absorbs concurrent data-structure calls into per-thread sub-buffers
// and flushes them as one batch when the structure is ready for input.
//
// The paper's submitters walk a static BBT of test-and-set flags to decide
// who activates the interface; we substitute the AsyncGate three-state
// latch (one CAS per submit once an owner is active) for the flag tree —
// identical O(1) submit cost and O(p + b) / O(log p + log b) flush bounds,
// without the tree's epoch-swap subtleties (see DESIGN.md substitutions;
// the gate lives with the consumer, e.g. core/async_map.hpp).
//
// Each sub-buffer is padded to its own cache line and guarded by a tiny
// test-and-set spinlock: a submitter contends only with the flusher and
// with same-slot threads (slot = hashed thread id), matching the QRMW
// model's per-cell FIFO queue behaviour.

#include <atomic>
#include <cstddef>
#include <string>
#include <thread>
#include <vector>

#include "sync/nonblocking_lock.hpp"
#include "util/fault.hpp"
#include "util/schedule_points.hpp"
#include "util/validate.hpp"

namespace pwss::buffer {

/// Returns a small dense id for the calling thread (stable for its
/// lifetime), used to pick a sub-buffer slot.
std::size_t this_thread_slot();

template <typename T>
class ParallelBuffer {
 public:
  explicit ParallelBuffer(std::size_t slots = 0) {
    if (slots == 0) {
      slots = std::thread::hardware_concurrency();
      if (slots == 0) slots = 8;
    }
    slots_ = std::vector<Slot>(slots);
  }

  /// O(1) amortized; callable from any thread concurrently. Returns
  /// false when the buffer refuses the publication (today only under
  /// injected faults — the hook a future bounded-capacity policy will
  /// share): the item is NOT buffered and the caller must deliver a
  /// terminal kOverloaded result and unwind any in-flight accounting it
  /// performed before publishing.
  [[nodiscard]] bool submit(T item) {
    if (PWSS_FAULT_POINT("parallel_buffer.submit.reject")) return false;
    Slot& slot = slots_[this_thread_slot() % slots_.size()];
    slot.lock_spin();
    slot.items.push_back(std::move(item));
    // Item pushed, credit not yet applied: only the slot lock keeps a
    // racing flush() from taking the item and debiting first.
    PWSS_SCHED_POINT("parallel_buffer.submit.credit");
    // Publish the count under the slot lock: a flush() racing with this
    // submit would otherwise take the item and fetch_sub before our
    // fetch_add, wrapping pending_ below zero.
    pending_.fetch_add(1, std::memory_order_release);
    slot.lock.unlock();
    return true;
  }

  /// Approximate number of buffered items (exact when quiescent).
  std::size_t pending() const noexcept {
    return pending_.load(std::memory_order_acquire);
  }

  /// Swaps out every sub-buffer and concatenates: O(p + b). Items submitted
  /// concurrently with a flush land in this batch or the next (the paper's
  /// guarantee).
  std::vector<T> flush() {
    std::vector<T> out;
    for (auto& slot : slots_) {
      std::vector<T> taken;
      slot.lock_spin();
      taken.swap(slot.items);
      // Items taken, debit not yet applied — still under the slot lock,
      // so no submitter can observe a deficit.
      PWSS_SCHED_POINT("parallel_buffer.flush.debit");
      // Debit under the same lock that credited: per slot, subs are
      // serialized after the adds for the items taken, so pending_ is
      // always >= the true buffered count and never wraps.
      if (!taken.empty()) {
        pending_.fetch_sub(taken.size(), std::memory_order_release);
      }
      slot.lock.unlock();
      if (!taken.empty()) {
        if (out.empty()) {
          out = std::move(taken);
        } else {
          out.insert(out.end(), std::make_move_iterator(taken.begin()),
                     std::make_move_iterator(taken.end()));
        }
      }
    }
    return out;
  }

  /// Deep credit-conservation check: locks every slot (so no submit or
  /// flush is mid-window), then requires pending_ to equal the number of
  /// buffered items. Holding all the locks freezes both sides of the
  /// credit protocol, so the check is exact even with submitters and
  /// flushers running. Empty string = OK.
  std::string validate() {
    util::Validator v("parallel_buffer: ");
    for (auto& slot : slots_) slot.lock_spin();
    std::size_t buffered = 0;
    for (auto& slot : slots_) buffered += slot.items.size();
    const std::size_t credited = pending_.load(std::memory_order_acquire);
    v.require(credited == buffered, "credit conservation broken: pending_=",
              credited, " but slots hold ", buffered, " items");
    for (auto& slot : slots_) slot.lock.unlock();
    return std::move(v).take();
  }

 private:
  struct alignas(64) Slot {
    sync::NonBlockingLock lock;
    std::vector<T> items;
    void lock_spin() {
      while (!lock.try_lock()) {
        // NonBlockingLock handoff under contention: a perturbed waiter
        // widens the window in which the holder's critical section runs.
        PWSS_SCHED_POINT("parallel_buffer.slot.lock_spin");
        std::this_thread::yield();
      }
    }
  };

  std::vector<Slot> slots_;
  std::atomic<std::size_t> pending_{0};
};

}  // namespace pwss::buffer
