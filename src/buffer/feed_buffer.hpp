#pragma once
// Feed buffer (Section 6.1): a queue of *bunches*, each of size `bunch_cap`
// (= p^2) except possibly the last. An input batch is cut so that its first
// piece tops up the last bunch and the rest append as fresh bunches — O(1)
// work per element and O(1) per batch beyond that, matching the paper's
// bunch structure (a set with O(1) batch-add and O(log b)-span conversion).
//
// Single-consumer: only the data structure's interface (which is guarded by
// its activation gate) touches the feed buffer, so no internal locking.

#include <cstddef>
#include <deque>
#include <iterator>
#include <string>
#include <vector>

#include "util/validate.hpp"

namespace pwss::buffer {

template <typename T>
class FeedBuffer {
 public:
  explicit FeedBuffer(std::size_t bunch_cap) : bunch_cap_(bunch_cap ? bunch_cap : 1) {}

  bool empty() const noexcept { return bunches_.empty(); }
  std::size_t size() const noexcept { return total_; }
  std::size_t bunch_count() const noexcept { return bunches_.size(); }
  std::size_t bunch_capacity() const noexcept { return bunch_cap_; }

  /// Cuts `input` into the last bunch + fresh bunches (Section 6.1's "cut
  /// and store" step).
  void append(std::vector<T> input) {
    total_ += input.size();
    std::size_t offset = 0;
    if (!bunches_.empty() && bunches_.back().size() < bunch_cap_) {
      const std::size_t room = bunch_cap_ - bunches_.back().size();
      const std::size_t take = std::min(room, input.size());
      auto& last = bunches_.back();
      last.insert(last.end(), std::make_move_iterator(input.begin()),
                  std::make_move_iterator(input.begin() + static_cast<std::ptrdiff_t>(take)));
      offset = take;
    }
    while (offset < input.size()) {
      const std::size_t take = std::min(bunch_cap_, input.size() - offset);
      bunches_.emplace_back(
          std::make_move_iterator(input.begin() + static_cast<std::ptrdiff_t>(offset)),
          std::make_move_iterator(input.begin() + static_cast<std::ptrdiff_t>(offset + take)));
      offset += take;
    }
  }

  /// Removes up to `n` bunches from the front and concatenates them into
  /// one cut batch (M1 takes ceil(log n / p) bunches, M2 takes one).
  std::vector<T> take_bunches(std::size_t n) {
    std::vector<T> out;
    for (std::size_t i = 0; i < n && !bunches_.empty(); ++i) {
      auto& front = bunches_.front();
      total_ -= front.size();
      if (out.empty()) {
        out = std::move(front);
      } else {
        out.insert(out.end(), std::make_move_iterator(front.begin()),
                   std::make_move_iterator(front.end()));
      }
      bunches_.pop_front();
    }
    return out;
  }

  /// Deep bunch-structure check (single-consumer context only, like every
  /// other member): every bunch non-empty and within capacity, every
  /// bunch except the last exactly full (appends top up the tail before
  /// opening a fresh bunch), and total_ equal to the sum of bunch sizes.
  /// Empty string = OK.
  std::string validate() const {
    util::Validator v("feed_buffer: ");
    std::size_t sum = 0;
    for (std::size_t i = 0; i < bunches_.size(); ++i) {
      const std::size_t sz = bunches_[i].size();
      sum += sz;
      if (!v.require(sz != 0, "bunch ", i, " of ", bunches_.size(),
                     " is empty")) {
        break;
      }
      if (!v.require(sz <= bunch_cap_, "bunch ", i, " holds ", sz,
                     " items, above the bunch capacity ", bunch_cap_)) {
        break;
      }
      if (!v.require(i + 1 == bunches_.size() || sz == bunch_cap_, "bunch ", i,
                     " of ", bunches_.size(), " holds ", sz,
                     " items but only the last bunch may be partial (cap ",
                     bunch_cap_, ")")) {
        break;
      }
    }
    v.require(sum == total_, "size accounting broken: bunches hold ", sum,
              " items but total_=", total_);
    return std::move(v).take();
  }

 private:
  std::size_t bunch_cap_;
  std::deque<std::vector<T>> bunches_;
  std::size_t total_ = 0;
};

}  // namespace pwss::buffer
