#include "buffer/parallel_buffer.hpp"

namespace pwss::buffer {

std::size_t this_thread_slot() {
  static std::atomic<std::size_t> next{0};
  thread_local std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

}  // namespace pwss::buffer
