#pragma once
// Batched adapters: lift the baselines' point-operation maps (splay, AVL,
// Iacono, locked) to the core::MapBackend concept by executing a batch as
// a sequential loop of point operations. No combining, no parallelism —
// that is the point: these are the comparators M0/M1/M2 are measured
// against, exposed through the same interface so benches, examples, and
// typed tests can treat every backend identically.

#include <cstddef>
#include <optional>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "baseline/avl_map.hpp"
#include "baseline/iacono_map.hpp"
#include "baseline/locked_map.hpp"
#include "baseline/splay_tree.hpp"
#include "core/backend.hpp"
#include "core/ops.hpp"

namespace pwss::baseline {

/// PointMap must provide insert(K, V) -> bool (true iff newly inserted),
/// erase(K) -> optional<V> (the removed value), and search(K) returning
/// either an optional<V>-convertible value or a pointer to V (IaconoMap's
/// stable-pointer style).
template <typename K, typename V, typename PointMap>
class Batched {
 public:
  Batched() = default;
  explicit Batched(PointMap map) : map_(std::move(map)) {}

  std::size_t size() const { return map_.size(); }

  std::vector<core::Result<V>> execute_batch(
      std::span<const core::Op<K, V>> ops) {
    std::vector<core::Result<V>> results;
    execute_batch(ops, results);
    return results;
  }

  /// Results into a caller-owned buffer (capacity reused across batches).
  void execute_batch(std::span<const core::Op<K, V>> ops,
                     std::vector<core::Result<V>>& results) {
    results.clear();
    results.reserve(ops.size());
    for (const auto& op : ops) {
      core::Result<V> r;
      switch (op.type) {
        case core::OpType::kSearch: {
          auto v = search(op.key);
          r.success = v.has_value();
          r.value = std::move(v);
          break;
        }
        case core::OpType::kInsert:
          r.success = insert(op.key, op.value);
          break;
        case core::OpType::kErase: {
          auto v = erase(op.key);
          r.success = v.has_value();
          r.value = std::move(v);
          break;
        }
      }
      results.push_back(std::move(r));
    }
  }

  // Point passthroughs, normalized to the optional<V> shape.
  std::optional<V> search(const K& key) {
    if constexpr (std::is_pointer_v<decltype(map_.search(key))>) {
      const auto* p = map_.search(key);
      return p ? std::optional<V>(*p) : std::nullopt;
    } else {
      return map_.search(key);
    }
  }
  bool insert(const K& key, V value) {
    return map_.insert(key, std::move(value));
  }
  std::optional<V> erase(const K& key) { return map_.erase(key); }

  /// Recency depth passthrough for working-set point maps (Iacono).
  template <typename PM = PointMap>
    requires core::HasRecencyDepth<PM, K>
  std::optional<std::size_t> segment_of(const K& key) const {
    return map_.segment_of(key);
  }

  /// Structural-validation passthrough.
  template <typename PM = PointMap>
    requires core::HasInvariantCheck<PM>
  bool check_invariants() const {
    return map_.check_invariants();
  }

  PointMap& inner() { return map_; }
  const PointMap& inner() const { return map_; }

 private:
  PointMap map_;
};

template <typename K, typename V>
using BatchedSplay = Batched<K, V, SplayTree<K, V>>;
template <typename K, typename V>
using BatchedAvl = Batched<K, V, AvlMap<K, V>>;
template <typename K, typename V>
using BatchedIacono = Batched<K, V, IaconoMap<K, V>>;
template <typename K, typename V>
using BatchedLocked = Batched<K, V, LockedMap<K, V>>;

static_assert(core::MapBackend<BatchedSplay<int, int>, int, int>);
static_assert(core::MapBackend<BatchedAvl<int, int>, int, int>);
static_assert(core::MapBackend<BatchedIacono<int, int>, int, int>);
static_assert(core::MapBackend<BatchedLocked<int, int>, int, int>);

}  // namespace pwss::baseline

namespace pwss::core {

/// The locked baseline serializes internally, so its per-op path is safe
/// from any thread without an async front end — and putting one in front
/// of it would hide exactly the contention E5/E8 measure.
template <typename K, typename V>
struct backend_traits<baseline::BatchedLocked<K, V>> {
  static constexpr bool needs_scheduler = false;
  static constexpr bool native_async = false;
  static constexpr bool supports_async = false;
  static constexpr bool point_thread_safe = true;
};

}  // namespace pwss::core
