#pragma once
// Batched adapters: lift the baselines' point-operation maps (splay, AVL,
// Iacono, locked) to the core::MapBackend concept by executing a batch as
// a sequential loop of point operations. No combining, no parallelism —
// that is the point: these are the comparators M0/M1/M2 are measured
// against, exposed through the same interface so benches, examples, and
// typed tests can treat every backend identically.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "baseline/avl_map.hpp"
#include "baseline/iacono_map.hpp"
#include "baseline/locked_map.hpp"
#include "baseline/splay_tree.hpp"
#include "core/backend.hpp"
#include "core/ops.hpp"

namespace pwss::baseline {

/// PointMap must provide insert(K, V) -> bool (true iff newly inserted),
/// erase(K) -> optional<V> (the removed value), and search(K) returning
/// either an optional<V>-convertible value or a pointer to V (IaconoMap's
/// stable-pointer style). Protocol-v2 ordered kinds dispatch to the point
/// map's predecessor/successor/range_count surface when it has one
/// (core::HasOrderedPointOps); a point map without it (the splay tree has
/// no bound-search or order-statistic surface) makes the adapter throw —
/// the driver layer refuses such operations before they ever reach a
/// batch, so the throw is a backstop, not an API.
template <typename K, typename V, typename PointMap>
class Batched {
 public:
  Batched() = default;
  explicit Batched(PointMap map) : map_(std::move(map)) {}

  std::size_t size() const { return map_.size(); }

  std::vector<core::Result<V, K>> execute_batch(
      std::span<const core::Op<K, V>> ops) {
    std::vector<core::Result<V, K>> results;
    execute_batch(ops, results);
    return results;
  }

  /// Results into a caller-owned buffer (capacity reused across batches).
  void execute_batch(std::span<const core::Op<K, V>> ops,
                     std::vector<core::Result<V, K>>& results) {
    results.clear();
    results.reserve(ops.size());
    for (const auto& op : ops) {
      core::Result<V, K> r;
      switch (op.type) {
        case core::OpType::kSearch: {
          auto v = search(op.key);
          r.status = v.has_value() ? core::ResultStatus::kFound
                                   : core::ResultStatus::kNotFound;
          r.value = std::move(v);
          break;
        }
        case core::OpType::kInsert:
        case core::OpType::kUpsert:
          r.status = insert(op.key, op.value)
                         ? core::ResultStatus::kInserted
                         : core::ResultStatus::kUpdated;
          break;
        case core::OpType::kErase: {
          auto v = erase(op.key);
          r.status = v.has_value() ? core::ResultStatus::kErased
                                   : core::ResultStatus::kNotFound;
          r.value = std::move(v);
          break;
        }
        case core::OpType::kPredecessor:
        case core::OpType::kSuccessor: {
          auto hit = op.type == core::OpType::kPredecessor
                         ? predecessor(op.key)
                         : successor(op.key);
          if (hit) {
            r.status = core::ResultStatus::kFound;
            r.matched_key = std::move(hit->first);
            r.value = std::move(hit->second);
          }
          break;
        }
        case core::OpType::kRangeCount:
          r.status = core::ResultStatus::kFound;
          r.count = range_count(op.key, op.key2);
          break;
      }
      results.push_back(std::move(r));
    }
  }

  // Point passthroughs, normalized to the optional<V> shape.
  std::optional<V> search(const K& key) {
    if constexpr (std::is_pointer_v<decltype(map_.search(key))>) {
      const auto* p = map_.search(key);
      return p ? std::optional<V>(*p) : std::nullopt;
    } else {
      return map_.search(key);
    }
  }
  bool insert(const K& key, V value) {
    return map_.insert(key, std::move(value));
  }
  std::optional<V> erase(const K& key) { return map_.erase(key); }

  // Ordered passthroughs; throwing fallbacks for point maps without the
  // surface (reached only if a caller bypasses the driver's capability
  // check).
  std::optional<std::pair<K, V>> predecessor(const K& key) const {
    if constexpr (core::HasOrderedPointOps<PointMap, K>) {
      return map_.predecessor(key);
    } else {
      (void)key;
      throw std::logic_error("backend does not support ordered queries");
    }
  }
  std::optional<std::pair<K, V>> successor(const K& key) const {
    if constexpr (core::HasOrderedPointOps<PointMap, K>) {
      return map_.successor(key);
    } else {
      (void)key;
      throw std::logic_error("backend does not support ordered queries");
    }
  }
  std::uint64_t range_count(const K& lo, const K& hi) const {
    if constexpr (core::HasOrderedPointOps<PointMap, K>) {
      return map_.range_count(lo, hi);
    } else {
      (void)lo;
      (void)hi;
      throw std::logic_error("backend does not support ordered queries");
    }
  }

  /// Recency depth passthrough for working-set point maps (Iacono).
  template <typename PM = PointMap>
    requires core::HasRecencyDepth<PM, K>
  std::optional<std::size_t> segment_of(const K& key) const {
    return map_.segment_of(key);
  }

  /// Structural-validation passthrough.
  template <typename PM = PointMap>
    requires core::HasInvariantCheck<PM>
  bool check_invariants() const {
    return map_.check_invariants();
  }

  /// Sorted drain for the checkpoint writer (store/snapshot.hpp):
  /// collects via the point map's for_each, then sorts by key (the
  /// working-set point maps yield in recency order, not key order).
  template <typename PM = PointMap>
    requires requires(const PM m) { m.for_each([](const K&, const V&) {}); }
  void export_entries(std::vector<std::pair<K, V>>& out) const {
    const std::size_t first = out.size();
    out.reserve(first + map_.size());
    map_.for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  PointMap& inner() { return map_; }
  const PointMap& inner() const { return map_; }

 private:
  PointMap map_;
};

template <typename K, typename V>
using BatchedSplay = Batched<K, V, SplayTree<K, V>>;
template <typename K, typename V>
using BatchedAvl = Batched<K, V, AvlMap<K, V>>;
template <typename K, typename V>
using BatchedIacono = Batched<K, V, IaconoMap<K, V>>;
template <typename K, typename V>
using BatchedLocked = Batched<K, V, LockedMap<K, V>>;

static_assert(core::MapBackend<BatchedSplay<int, int>, int, int>);
static_assert(core::MapBackend<BatchedAvl<int, int>, int, int>);
static_assert(core::MapBackend<BatchedIacono<int, int>, int, int>);
static_assert(core::MapBackend<BatchedLocked<int, int>, int, int>);

}  // namespace pwss::baseline

namespace pwss::core {

/// Batched adapters inherit ordered support from their point map: the
/// splay baseline has no bound-search/order-statistic surface, so it is
/// the library's one !supports_ordered backend (and the path that
/// exercises the registry/driver refusal).
template <typename K, typename V, typename PM>
struct backend_traits<baseline::Batched<K, V, PM>> {
  static constexpr bool needs_scheduler = false;
  static constexpr bool native_async = false;
  static constexpr bool supports_async = true;
  static constexpr bool point_thread_safe = false;
  static constexpr bool supports_ordered = HasOrderedPointOps<PM, K>;
};

/// The locked baseline serializes internally, so its per-op path is safe
/// from any thread without an async front end — and putting one in front
/// of it would hide exactly the contention E5/E8 measure.
template <typename K, typename V>
struct backend_traits<baseline::BatchedLocked<K, V>> {
  static constexpr bool needs_scheduler = false;
  static constexpr bool native_async = false;
  static constexpr bool supports_async = false;
  static constexpr bool point_thread_safe = true;
  static constexpr bool supports_ordered = true;
};

}  // namespace pwss::core
