#pragma once
// Iacono's working-set structure [29]: a sequence of balanced trees
// t_1, t_2, ... where t_i holds 2^(2^i) items, maintaining the invariant
// that the r most recently accessed items live in the first O(log log r)
// trees. An access found in t_k moves the item to the front of t_1 and
// demotes one least-recently-used item from each of t_1..t_{k-1} to the
// next tree. Every operation on an item with recency r costs O(log r + 1).
//
// Used both as the sequential baseline for E8 and as the dictionary inside
// ESort (Definition 29), whose entropy bound (Theorem 30) depends on
// exactly this working-set property.

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "core/segment.hpp"

namespace pwss::baseline {

template <typename K, typename V>
class IaconoMap {
 public:
  using Item = typename core::Segment<K, V>::Item;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t segment_count() const noexcept { return segments_.size(); }

  /// Search with the working-set move-to-front: promotes the found item to
  /// the most recent position. Returns a pointer to the value (stable until
  /// the next operation), or nullptr.
  V* search(const K& key) {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      auto item = segments_[k].extract(key);
      if (!item) continue;
      promote_to_front(std::move(*item));
      rebalance_after_promotion(k);
      return &segments_[0].peek(key)->first;
    }
    return nullptr;
  }

  /// Search without self-adjustment (for tests and read-only probes).
  const V* peek(const K& key) const {
    for (const auto& seg : segments_) {
      if (const auto* e = seg.peek(key)) return &e->first;
    }
    return nullptr;
  }

  /// Inserts (or overwrites) a key; the item becomes the most recent.
  /// Returns true iff newly inserted.
  bool insert(const K& key, V value) {
    // Overwrite in place counts as an access.
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      auto item = segments_[k].extract(key);
      if (!item) continue;
      item->value = std::move(value);
      promote_to_front(std::move(*item));
      rebalance_after_promotion(k);
      return false;
    }
    promote_to_front(Item{key, std::move(value), 0});
    ++size_;
    rebalance_after_promotion(segments_.size() - 1);
    return true;
  }

  /// Removes a key; holes are filled by pulling the most recent item of
  /// each later segment forward (the working-set structure's deletion
  /// repair). Returns the removed value.
  std::optional<V> erase(const K& key) {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      auto item = segments_[k].extract(key);
      if (!item) continue;
      --size_;
      for (std::size_t i = k; i + 1 < segments_.size(); ++i) {
        auto pulled = segments_[i + 1].extract_most_recent();
        if (!pulled) break;
        segments_[i].insert_back(std::move(*pulled));
      }
      while (!segments_.empty() && segments_.back().empty()) {
        segments_.pop_back();
      }
      return std::move(item->value);
    }
    return std::nullopt;
  }

  // ---- ordered queries (protocol v2; read-only, no promotion) ------------

  /// Greatest (key, value) strictly below `key`, across all segments.
  std::optional<std::pair<K, V>> predecessor(const K& key) const {
    return ordered_pair(ordered(core::OpType::kPredecessor, key, key));
  }

  /// Least (key, value) strictly above `key`, across all segments.
  std::optional<std::pair<K, V>> successor(const K& key) const {
    return ordered_pair(ordered(core::OpType::kSuccessor, key, key));
  }

  /// Number of keys in the inclusive range [lo, hi].
  std::uint64_t range_count(const K& lo, const K& hi) const {
    return ordered(core::OpType::kRangeCount, lo, hi).count;
  }

  /// Segments in order; each segment's contents sorted by key. Used by
  /// ESort's merge phase and by invariant checks.
  const std::vector<core::Segment<K, V>>& segments() const {
    return segments_;
  }

  /// Every (key, value) across all segments, no order guarantee — the
  /// checkpoint export sorts after collecting.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& seg : segments_) {
      seg.for_each([&](const K& k, const V& v, std::uint64_t) { fn(k, v); });
    }
  }

  /// Segment index currently holding `key` (recency depth), or nullopt.
  std::optional<std::size_t> segment_of(const K& key) const {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (segments_[k].peek(key)) return k;
    }
    return std::nullopt;
  }

  /// Validation: every segment structurally sound, all segments full to
  /// capacity except possibly the last.
  bool check_invariants() const {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (!segments_[k].check_invariants()) return false;
      if (segments_[k].size() > core::segment_capacity(k)) return false;
      if (k + 1 < segments_.size() &&
          segments_[k].size() != core::segment_capacity(k)) {
        return false;  // only the last segment may be under-full
      }
    }
    return true;
  }

 private:
  core::Result<V, K> ordered(core::OpType type, const K& key,
                             const K& key2) const {
    return core::ordered_query_over<K, V>(type, key, key2, [&](auto&& fn) {
      for (const auto& seg : segments_) fn(seg);
    });
  }

  void promote_to_front(Item item) {
    if (segments_.empty()) segments_.emplace_back();
    segments_[0].insert_front(std::move(item));
  }

  /// After inserting at the front, cascade demotions: any over-full segment
  /// among S[0..k] demotes its least recent item to the next segment.
  void rebalance_after_promotion(std::size_t touched) {
    for (std::size_t i = 0; i <= touched && i < segments_.size(); ++i) {
      if (segments_[i].size() <= core::segment_capacity(i)) break;
      auto demoted = segments_[i].extract_least_recent();
      if (i + 1 == segments_.size()) segments_.emplace_back();
      segments_[i + 1].insert_front(std::move(*demoted));
    }
    // An over-full last segment can cascade past `touched`.
    while (!segments_.empty() &&
           segments_.back().size() >
               core::segment_capacity(segments_.size() - 1)) {
      auto demoted = segments_.back().extract_least_recent();
      segments_.emplace_back();
      segments_.back().insert_front(std::move(*demoted));
    }
  }

  std::vector<core::Segment<K, V>> segments_;
  std::size_t size_ = 0;
};

}  // namespace pwss::baseline
