#pragma once
// Non-adjusting balanced-BST baseline: a thin point-operation facade over
// the join-based AVL tree. Every access costs Θ(log n) regardless of the
// access distribution — the comparator the working-set structures must beat
// under skew and roughly match under uniform access (experiment E8).

#include <cstddef>
#include <optional>

#include "tree/jtree.hpp"

namespace pwss::baseline {

template <typename K, typename V>
class AvlMap {
 public:
  std::size_t size() const noexcept { return tree_.size(); }
  bool empty() const noexcept { return tree_.empty(); }

  std::optional<V> search(const K& key) const {
    const V* v = tree_.find(key);
    if (!v) return std::nullopt;
    return *v;
  }

  bool insert(const K& key, V value) {
    return tree_.insert(key, std::move(value));
  }

  std::optional<V> erase(const K& key) { return tree_.erase(key); }

 private:
  tree::JTree<K, V> tree_;
};

}  // namespace pwss::baseline
