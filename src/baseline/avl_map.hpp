#pragma once
// Non-adjusting balanced-BST baseline: a thin point-operation facade over
// the join-based AVL tree. Every access costs Θ(log n) regardless of the
// access distribution — the comparator the working-set structures must beat
// under skew and roughly match under uniform access (experiment E8).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>

#include "tree/jtree.hpp"

namespace pwss::baseline {

template <typename K, typename V>
class AvlMap {
 public:
  std::size_t size() const noexcept { return tree_.size(); }
  bool empty() const noexcept { return tree_.empty(); }

  std::optional<V> search(const K& key) const {
    const V* v = tree_.find(key);
    if (!v) return std::nullopt;
    return *v;
  }

  bool insert(const K& key, V value) {
    return tree_.insert(key, std::move(value));
  }

  std::optional<V> erase(const K& key) { return tree_.erase(key); }

  // ---- ordered queries (protocol v2): direct tree passthroughs ----------

  std::optional<std::pair<K, V>> predecessor(const K& key) const {
    auto [k, v] = tree_.predecessor(key);
    if (k == nullptr) return std::nullopt;
    return std::pair<K, V>{*k, *v};
  }

  std::optional<std::pair<K, V>> successor(const K& key) const {
    auto [k, v] = tree_.successor(key);
    if (k == nullptr) return std::nullopt;
    return std::pair<K, V>{*k, *v};
  }

  std::uint64_t range_count(const K& lo, const K& hi) const {
    return tree_.range_count(lo, hi);
  }

  /// In-order traversal over (key, value) — the sorted-export surface the
  /// checkpoint writer drains through the batched adapter.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    tree_.for_each(fn);
  }

 private:
  tree::JTree<K, V> tree_;
};

}  // namespace pwss::baseline
