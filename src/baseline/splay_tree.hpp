#pragma once
// Bottom-up splay tree (Sleator–Tarjan [37]) — the classical self-adjusting
// baseline. Satisfies the working-set bound amortized, so E8 compares it
// head-to-head with M0/M1/M2 under skewed access.

#include <cstddef>
#include <optional>
#include <utility>

namespace pwss::baseline {

template <typename K, typename V>
class SplayTree {
 public:
  SplayTree() = default;
  SplayTree(const SplayTree&) = delete;
  SplayTree& operator=(const SplayTree&) = delete;
  SplayTree(SplayTree&& other) noexcept
      : root_(std::exchange(other.root_, nullptr)),
        size_(std::exchange(other.size_, 0)) {}
  SplayTree& operator=(SplayTree&& other) noexcept {
    if (this != &other) {
      destroy(root_);
      root_ = std::exchange(other.root_, nullptr);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }
  ~SplayTree() { destroy(root_); }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Self-adjusting search: splays the accessed (or closest) node to the
  /// root. Returns the value if found.
  std::optional<V> search(const K& key) {
    root_ = splay(root_, key);
    if (root_ && root_->key == key) return root_->value;
    return std::nullopt;
  }

  /// Insert or overwrite; returns true iff newly inserted.
  bool insert(const K& key, V value) {
    if (!root_) {
      root_ = new Node(key, std::move(value));
      size_ = 1;
      return true;
    }
    root_ = splay(root_, key);
    if (root_->key == key) {
      root_->value = std::move(value);
      return false;
    }
    auto* n = new Node(key, std::move(value));
    if (key < root_->key) {
      n->left = root_->left;
      n->right = root_;
      root_->left = nullptr;
    } else {
      n->right = root_->right;
      n->left = root_;
      root_->right = nullptr;
    }
    root_ = n;
    ++size_;
    return true;
  }

  /// Remove; returns the removed value.
  std::optional<V> erase(const K& key) {
    if (!root_) return std::nullopt;
    root_ = splay(root_, key);
    if (root_->key != key) return std::nullopt;
    std::optional<V> out = std::move(root_->value);
    Node* old = root_;
    if (!root_->left) {
      root_ = root_->right;
    } else {
      Node* left = splay(root_->left, key);  // max of left subtree to root
      left->right = root_->right;
      root_ = left;
    }
    delete old;
    --size_;
    return out;
  }

  /// Height of the tree (for tests demonstrating that splay trees do not
  /// maintain worst-case balance).
  std::size_t height() const { return height_rec(root_); }

  /// In-order traversal over (key, value) without splaying — the
  /// checkpoint export must not perturb the tree it drains.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_rec(root_, fn);
  }

 private:
  struct Node {
    Node(const K& k, V v) : key(k), value(std::move(v)) {}
    K key;
    V value;
    Node* left = nullptr;
    Node* right = nullptr;
  };

  /// Top-down splay (Sleator–Tarjan's simplified version).
  static Node* splay(Node* t, const K& key) {
    if (!t) return nullptr;
    Node header{key, V{}};
    Node* left_max = &header;
    Node* right_min = &header;
    for (;;) {
      if (key < t->key) {
        if (!t->left) break;
        if (key < t->left->key) {  // zig-zig: rotate right
          Node* l = t->left;
          t->left = l->right;
          l->right = t;
          t = l;
          if (!t->left) break;
        }
        right_min->left = t;  // link right
        right_min = t;
        t = t->left;
      } else if (t->key < key) {
        if (!t->right) break;
        if (t->right->key < key) {  // zag-zag: rotate left
          Node* r = t->right;
          t->right = r->left;
          r->left = t;
          t = r;
          if (!t->right) break;
        }
        left_max->right = t;  // link left
        left_max = t;
        t = t->right;
      } else {
        break;
      }
    }
    left_max->right = t->left;
    right_min->left = t->right;
    t->left = header.right;
    t->right = header.left;
    return t;
  }

  static void destroy(Node* t) noexcept {
    if (!t) return;
    destroy(t->left);
    destroy(t->right);
    delete t;
  }

  template <typename Fn>
  static void for_each_rec(const Node* t, Fn& fn) {
    if (t == nullptr) return;
    for_each_rec(t->left, fn);
    fn(t->key, t->value);
    for_each_rec(t->right, fn);
  }

  static std::size_t height_rec(const Node* t) noexcept {
    if (!t) return 0;
    return 1 + std::max(height_rec(t->left), height_rec(t->right));
  }

  Node* root_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace pwss::baseline
