#pragma once
// Coarse-grained concurrent baseline: a single mutex around the AVL map.
// This is the "software combining without the combining" strawman — every
// parallel caller serializes on the lock, so it bounds what a naive
// concurrent map achieves in E5/E8's multi-threaded comparisons.

#include <cstdint>
#include <mutex>
#include <optional>
#include <utility>

#include "baseline/avl_map.hpp"

namespace pwss::baseline {

template <typename K, typename V>
class LockedMap {
 public:
  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.size();
  }

  std::optional<V> search(const K& key) const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.search(key);
  }

  bool insert(const K& key, V value) {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.insert(key, std::move(value));
  }

  std::optional<V> erase(const K& key) {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.erase(key);
  }

  // ---- ordered queries (protocol v2), serialized like everything else ----

  std::optional<std::pair<K, V>> predecessor(const K& key) const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.predecessor(key);
  }

  std::optional<std::pair<K, V>> successor(const K& key) const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.successor(key);
  }

  std::uint64_t range_count(const K& lo, const K& hi) const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.range_count(lo, hi);
  }

  /// In-order traversal over (key, value) with the lock held for the
  /// whole walk — the checkpoint export drains an atomic snapshot.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    std::lock_guard<std::mutex> lk(mu_);
    map_.for_each(fn);
  }

 private:
  mutable std::mutex mu_;
  AvlMap<K, V> map_;
};

}  // namespace pwss::baseline
