#pragma once
// ESort — the sequential entropy sort of Definition 29. Inserts every item
// into a working-set dictionary (Iacono's structure) tagged with its list
// of input positions; repeated items are cheap accesses, which is exactly
// why the total cost is O(n·H + n) (Theorem 30). The per-segment key-sorted
// lists are then merged smallest-segment-first and each item expanded to
// its position list.
//
// Position lists: most keys occur once or twice, so the first two
// positions live inline in the dictionary node; further occurrences chain
// through ONE shared side arena (a single growing vector for the whole
// sort) instead of spilling a per-key heap vector — duplicate-heavy inputs
// used to pay one allocation per key passing the inline capacity.
//
// Output: a permutation of [0, n) such that input keys appear in
// non-decreasing order and equal keys keep their input order (stable).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "baseline/iacono_map.hpp"

namespace pwss::sort {

namespace detail {

inline constexpr std::uint32_t kEsortNil =
    std::numeric_limits<std::uint32_t>::max();

/// Per-key position list head: two inline slots plus head/tail indices of
/// a forward chain in the shared arena.
struct EsortPositions {
  std::size_t inline_pos[2] = {0, 0};
  std::uint32_t count = 0;
  std::uint32_t head = kEsortNil;
  std::uint32_t tail = kEsortNil;
};

struct EsortChainNode {
  std::size_t pos;
  std::uint32_t next;
};

inline void esort_append(EsortPositions& p, std::size_t pos,
                         std::vector<EsortChainNode>& chain) {
  if (p.count < 2) {
    p.inline_pos[p.count] = pos;
  } else {
    const auto node = static_cast<std::uint32_t>(chain.size());
    chain.push_back({pos, kEsortNil});
    if (p.tail == kEsortNil) {
      p.head = node;
    } else {
      chain[p.tail].next = node;
    }
    p.tail = node;
  }
  ++p.count;
}

}  // namespace detail

template <typename T, typename KeyFn>
std::vector<std::size_t> esort(const std::vector<T>& input,
                               const KeyFn& key_of) {
  using Key = std::decay_t<decltype(key_of(input[0]))>;
  using Positions = detail::EsortPositions;
  baseline::IaconoMap<Key, Positions> dict;
  std::vector<detail::EsortChainNode> chain;  // shared overflow arena

  for (std::size_t i = 0; i < input.size(); ++i) {
    const Key k = key_of(input[i]);
    if (auto* positions = dict.search(k)) {
      detail::esort_append(*positions, i, chain);
    } else {
      Positions p;
      detail::esort_append(p, i, chain);
      dict.insert(k, p);
    }
  }

  // Each segment is sorted by key already; merge them smallest-capacity
  // first. Segment sizes are doubly exponential, so the repeated two-way
  // merge costs O(u) total over u distinct keys.
  using Tagged = std::pair<Key, const Positions*>;
  std::vector<Tagged> merged;
  merged.reserve(dict.size());
  for (const auto& seg : dict.segments()) {
    std::vector<Tagged> seg_items;
    seg_items.reserve(seg.size());
    seg.for_each([&](const Key& k, const Positions& pos,
                     std::uint64_t) { seg_items.emplace_back(k, &pos); });
    if (merged.empty()) {
      merged = std::move(seg_items);
      continue;
    }
    std::vector<Tagged> next;
    next.reserve(merged.size() + seg_items.size());
    std::merge(merged.begin(), merged.end(), seg_items.begin(),
               seg_items.end(), std::back_inserter(next),
               [](const Tagged& a, const Tagged& b) { return a.first < b.first; });
    merged = std::move(next);
  }

  std::vector<std::size_t> order;
  order.reserve(input.size());
  for (const auto& [key, positions] : merged) {
    (void)key;
    const std::uint32_t inline_n = std::min<std::uint32_t>(positions->count, 2);
    for (std::uint32_t i = 0; i < inline_n; ++i) {
      order.push_back(positions->inline_pos[i]);
    }
    for (std::uint32_t node = positions->head; node != detail::kEsortNil;
         node = chain[node].next) {
      order.push_back(chain[node].pos);
    }
  }
  return order;
}

}  // namespace pwss::sort
