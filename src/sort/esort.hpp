#pragma once
// ESort — the sequential entropy sort of Definition 29. Inserts every item
// into a working-set dictionary (Iacono's structure) tagged with its list
// of input positions; repeated items are cheap accesses, which is exactly
// why the total cost is O(n·H + n) (Theorem 30). The per-segment key-sorted
// lists are then merged smallest-segment-first and each item expanded to
// its position list.
//
// Output: a permutation of [0, n) such that input keys appear in
// non-decreasing order and equal keys keep their input order (stable).

#include <cstddef>
#include <utility>
#include <vector>

#include "baseline/iacono_map.hpp"
#include "util/small_vec.hpp"

namespace pwss::sort {

/// Position list for one distinct key. Most keys occur once or twice, so
/// the first two positions live inline in the dictionary node — no heap
/// allocation per distinct key.
using EsortPositions = util::SmallVec<std::size_t, 2>;

template <typename T, typename KeyFn>
std::vector<std::size_t> esort(const std::vector<T>& input,
                               const KeyFn& key_of) {
  using Key = std::decay_t<decltype(key_of(input[0]))>;
  baseline::IaconoMap<Key, EsortPositions> dict;

  for (std::size_t i = 0; i < input.size(); ++i) {
    const Key k = key_of(input[i]);
    if (auto* positions = dict.search(k)) {
      positions->push_back(i);
    } else {
      dict.insert(k, EsortPositions{i});
    }
  }

  // Each segment is sorted by key already; merge them smallest-capacity
  // first. Segment sizes are doubly exponential, so the repeated two-way
  // merge costs O(u) total over u distinct keys.
  using Tagged = std::pair<Key, const EsortPositions*>;
  std::vector<Tagged> merged;
  merged.reserve(dict.size());
  for (const auto& seg : dict.segments()) {
    std::vector<Tagged> seg_items;
    seg_items.reserve(seg.size());
    seg.for_each([&](const Key& k, const EsortPositions& pos,
                     std::uint64_t) { seg_items.emplace_back(k, &pos); });
    if (merged.empty()) {
      merged = std::move(seg_items);
      continue;
    }
    std::vector<Tagged> next;
    next.reserve(merged.size() + seg_items.size());
    std::merge(merged.begin(), merged.end(), seg_items.begin(),
               seg_items.end(), std::back_inserter(next),
               [](const Tagged& a, const Tagged& b) { return a.first < b.first; });
    merged = std::move(next);
  }

  std::vector<std::size_t> order;
  order.reserve(input.size());
  for (const auto& [key, positions] : merged) {
    (void)key;
    for (const std::size_t p : *positions) order.push_back(p);
  }
  return order;
}

}  // namespace pwss::sort
