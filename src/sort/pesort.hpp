#pragma once
// PESort — Parallel Entropy Sort (Definition 32): a parallel three-way
// quicksort whose pivots come from the Parallel Pivot Algorithm (Lemma 34),
// guaranteeing the pivot lies within the two middle quartiles. Elements
// equal to the pivot terminate at that recursion level, which is where the
// entropy adaptivity comes from: an item with frequency q·n traverses only
// O(log(1/q)) levels, so total work is O(n·H + n) (Theorem 33) with
// O(log² n) span.
//
// The sort is *stable* (stable base case + stable prefix-sum partition),
// which the maps rely on: operations on the same key keep their program
// order through batch sorting.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "sched/scheduler.hpp"
#include "sort/parallel_primitives.hpp"
#include "util/rng.hpp"

namespace pwss::sort {

/// Ranges at or below PESortOptions::base_case use the sequential stable
/// sort; whole *inputs* at or below 2x this threshold skip the block/median
/// machinery (and its scratch allocation) entirely — see pesort().
inline constexpr std::size_t kSmallSortThreshold = 64;

struct PESortOptions {
  /// Use the easier randomized pivot (the Remark after Lemma 34) instead of
  /// the deterministic PPivot. Ablated in bench E3.
  bool random_pivot = false;
  std::uint64_t seed = 0x5eed5eed5eedULL;
  /// Ranges at or below this size use the sequential stable sort.
  std::size_t base_case = kSmallSortThreshold;
  /// Minimum range size for forking the two recursive calls.
  std::size_t grain = 2048;
};

/// Reusable buffers for pesort: the partition scratch copy, the per-pass
/// classification bytes, and the pivot-algorithm block-median buffer
/// (sliced in lockstep with the data, like cls, so no recursion level
/// allocates its own). Owned by the caller (e.g. core::BatchScratch) so
/// repeated sorts reuse capacity instead of reallocating; a null scratch
/// falls back to per-call buffers.
template <typename T, typename Key>
struct PESortScratch {
  std::vector<T> buf;
  std::vector<std::uint8_t> cls;
  std::vector<Key> medians;
};

namespace detail {

/// Stable insertion sort for tiny ranges — the base case of the recursion
/// and the whole-input small cutoff. Unlike std::stable_sort it never
/// allocates (libstdc++/libc++ stable_sort buys a temporary merge buffer
/// per call), which keeps point-op batches and recursion leaves off the
/// allocator entirely.
template <typename T, typename KeyFn>
void insertion_sort(std::span<T> v, const KeyFn& key_of) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    T tmp = std::move(v[i]);
    const auto key = key_of(tmp);
    std::size_t j = i;
    // Strict < keeps equal keys in place: stable.
    for (; j > 0 && key < key_of(v[j - 1]); --j) v[j] = std::move(v[j - 1]);
    v[j] = std::move(tmp);
  }
}

/// Parallel Pivot Algorithm (Lemma 34): split into blocks of size ~log k,
/// take each block's median, return the median of medians — always within
/// the middle two quartiles. `med` is the caller's median buffer, sliced
/// in lockstep with the data like the classification bytes: concurrent
/// recursion branches write disjoint slices and no level allocates. The
/// per-block key buffer is a stack array — block <= bit_width(SIZE_MAX),
/// i.e. at most 64 keys.
template <typename T, typename Key, typename KeyFn>
Key ppivot(std::span<const T> v, std::span<Key> med, const KeyFn& key_of,
           sched::Scheduler* scheduler) {
  const std::size_t k = v.size();
  const std::size_t block = std::max<std::size_t>(1, std::bit_width(k));
  const std::size_t blocks = (k + block - 1) / block;
  auto body = [&](std::size_t blo, std::size_t bhi) {
    Key keys[65];
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t lo = b * block;
      const std::size_t hi = std::min(k, lo + block);
      const std::size_t n = hi - lo;
      for (std::size_t i = 0; i < n; ++i) keys[i] = key_of(v[lo + i]);
      std::nth_element(keys, keys + n / 2, keys + n);
      med[b] = keys[n / 2];
    }
  };
  if (scheduler && blocks > 64) {
    scheduler->parallel_for(0, blocks, 16, body);
  } else {
    body(0, blocks);
  }
  auto mid = med.begin() + static_cast<std::ptrdiff_t>(blocks / 2);
  std::nth_element(med.begin(), mid, med.begin() + static_cast<std::ptrdiff_t>(blocks));
  return *mid;
}

/// Randomized alternative: sample pivots until one lands in the middle two
/// quartiles (O(1) expected attempts).
template <typename T, typename KeyFn>
auto random_quartile_pivot(std::span<const T> v, const KeyFn& key_of,
                           util::Xoshiro256& rng) {
  using Key = std::decay_t<decltype(key_of(v[0]))>;
  const std::size_t k = v.size();
  for (;;) {
    const Key candidate = key_of(v[rng.bounded(k)]);
    std::size_t below = 0, above = 0;
    for (const auto& x : v) {
      below += key_of(x) < candidate;
      above += candidate < key_of(x);
    }
    if (below <= 3 * k / 4 && above <= 3 * k / 4) return candidate;
  }
}

template <typename T, typename Key, typename KeyFn>
void pesort_rec(std::span<T> data, std::span<T> scratch,
                std::span<std::uint8_t> cls, std::span<Key> med,
                const KeyFn& key_of, sched::Scheduler* scheduler,
                const PESortOptions& opts, std::uint64_t seed) {
  const std::size_t n = data.size();
  if (n <= opts.base_case) {
    insertion_sort(data, key_of);
    return;
  }

  auto pivot = [&] {
    if (opts.random_pivot) {
      util::Xoshiro256 rng(seed);
      return random_quartile_pivot(std::span<const T>(data), key_of, rng);
    }
    return ppivot(std::span<const T>(data), med, key_of, scheduler);
  }();

  // Classify, partition into scratch, copy back. `cls` is the top-level
  // classification buffer sliced in lockstep with data/scratch, so no
  // recursion level allocates its own.
  auto classify = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) {
      const auto k = key_of(data[i]);
      cls[i] = k < pivot ? 0 : (pivot < k ? 2 : 1);
    }
  };
  if (scheduler && n > opts.grain) {
    scheduler->parallel_for(0, n, opts.grain, classify);
  } else {
    classify(0, n);
  }
  const auto [eq, above] = three_way_partition(
      std::span<const T>(data), std::span<const std::uint8_t>(cls), scratch,
      scheduler, opts.grain);
  auto copy_back = [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) data[i] = std::move(scratch[i]);
  };
  if (scheduler && n > opts.grain) {
    scheduler->parallel_for(0, n, opts.grain, copy_back);
  } else {
    copy_back(0, n);
  }

  auto left = [&] {
    pesort_rec(data.subspan(0, eq), scratch.subspan(0, eq), cls.subspan(0, eq),
               med.subspan(0, eq), key_of, scheduler, opts,
               seed * 0x9e3779b97f4a7c15ULL + 1);
  };
  auto right = [&] {
    pesort_rec(data.subspan(above), scratch.subspan(above), cls.subspan(above),
               med.subspan(above), key_of, scheduler, opts,
               seed * 0xda942042e4dd58b5ULL + 3);
  };
  if (scheduler && n > opts.grain) {
    scheduler->parallel_invoke(sched::FnView(left), sched::FnView(right));
  } else {
    left();
    right();
  }
}

}  // namespace detail

/// Stable entropy-adaptive sort of `v` by `key_of(v[i])`. Passing a
/// scheduler enables the parallel recursion; nullptr runs sequentially with
/// identical results. A non-null `scratch` supplies the partition and
/// classification buffers, so repeated sorts (one per batch in M1/M2)
/// reuse capacity instead of reallocating.
///
/// Small inputs (<= 2 * base_case) take a sequential stable insertion sort
/// directly: no pivot blocks, no medians, no scratch, no allocation — the
/// path point-op batches and small bunches ride.
template <typename T, typename KeyFn,
          typename Key = std::decay_t<std::invoke_result_t<const KeyFn&, const T&>>>
void pesort(std::vector<T>& v, const KeyFn& key_of,
            sched::Scheduler* scheduler = nullptr,
            const PESortOptions& opts = {},
            PESortScratch<T, Key>* scratch = nullptr) {
  if (v.size() <= 1) return;
  if (v.size() <= 2 * opts.base_case) {
    detail::insertion_sort(std::span<T>(v), key_of);
    return;
  }
  PESortScratch<T, Key> local;
  PESortScratch<T, Key>& s = scratch ? *scratch : local;
  if (s.buf.size() < v.size()) s.buf.resize(v.size());
  if (s.cls.size() < v.size()) s.cls.resize(v.size());
  if (s.medians.size() < v.size()) s.medians.resize(v.size());
  auto run = [&] {
    detail::pesort_rec(std::span<T>(v), std::span<T>(s.buf).first(v.size()),
                       std::span<std::uint8_t>(s.cls).first(v.size()),
                       std::span<Key>(s.medians).first(v.size()), key_of,
                       scheduler, opts, opts.seed);
  };
  if (scheduler && !scheduler->on_worker() && v.size() > opts.grain) {
    scheduler->run_sync(run);
  } else {
    run();
  }
}

}  // namespace pwss::sort
