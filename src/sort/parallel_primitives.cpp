#include "sort/parallel_primitives.hpp"

namespace pwss::sort {

std::uint64_t exclusive_prefix_sum(std::vector<std::uint64_t>& v,
                                   sched::Scheduler* scheduler,
                                   std::size_t grain) {
  const std::size_t n = v.size();
  if (n == 0) return 0;
  if (!scheduler || n <= grain) {
    std::uint64_t acc = 0;
    for (auto& x : v) {
      const std::uint64_t cur = x;
      x = acc;
      acc += cur;
    }
    return acc;
  }
  const std::size_t blocks = (n + grain - 1) / grain;
  std::vector<std::uint64_t> block_sums(blocks, 0);
  scheduler->parallel_for(0, blocks, 1, [&](std::size_t blo, std::size_t bhi) {
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t lo = b * grain;
      const std::size_t hi = std::min(n, lo + grain);
      std::uint64_t acc = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        const std::uint64_t cur = v[i];
        v[i] = acc;
        acc += cur;
      }
      block_sums[b] = acc;
    }
  });
  std::uint64_t total = 0;
  for (auto& s : block_sums) {
    const std::uint64_t cur = s;
    s = total;
    total += cur;
  }
  scheduler->parallel_for(0, blocks, 1, [&](std::size_t blo, std::size_t bhi) {
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t lo = b * grain;
      const std::size_t hi = std::min(n, lo + grain);
      const std::uint64_t offset = block_sums[b];
      for (std::size_t i = lo; i < hi; ++i) v[i] += offset;
    }
  });
  return total;
}

}  // namespace pwss::sort
