#pragma once
// Parallel primitives used by the entropy sort and the batch machinery:
// exclusive prefix sums and stable three-way partition (the "standard
// prefix-sum technique" of Definition 32).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sched/scheduler.hpp"

namespace pwss::sort {

/// Exclusive prefix sum of `v` in place; returns the total. Two-pass
/// blocked algorithm: O(n) work, O(n / p + log p) span in practice.
std::uint64_t exclusive_prefix_sum(std::vector<std::uint64_t>& v,
                                   sched::Scheduler* scheduler = nullptr,
                                   std::size_t grain = 4096);

/// Stable three-way partition of `input` by the classification in `cls`
/// (0 = below pivot, 1 = equal, 2 = above). Writes the partitioned
/// permutation into `output` (same size, must not alias input). Returns the
/// two boundaries {begin_equal, begin_above}. Parallelized via blocked
/// counting + prefix-sum + scatter — the "standard prefix-sum technique" of
/// Definition 32. Stability within each class is what preserves per-key
/// operation order through PESort.
template <typename T>
std::pair<std::size_t, std::size_t> three_way_partition(
    std::span<const T> input, std::span<const std::uint8_t> cls,
    std::span<T> output, sched::Scheduler* scheduler = nullptr,
    std::size_t grain = 4096) {
  const std::size_t n = input.size();
  assert(cls.size() == n && output.size() == n);
  const std::size_t blocks =
      scheduler ? (n + grain - 1) / grain : (n ? 1 : 0);
  const std::size_t block_size = blocks ? (n + blocks - 1) / blocks : 0;

  if (blocks <= 1) {
    // Single-block (sequential) case: scalar counters, no per-call count
    // vectors — this is every recursion level below the parallel grain,
    // so the whole sequential sort stays off the allocator.
    std::size_t n0 = 0, n1 = 0;
    for (std::size_t i = 0; i < n; ++i) {
      n0 += (cls[i] == 0);
      n1 += (cls[i] == 1);
    }
    const std::size_t begin_equal = n0;
    const std::size_t begin_above = n0 + n1;
    std::size_t p0 = 0, p1 = begin_equal, p2 = begin_above;
    for (std::size_t i = 0; i < n; ++i) {
      switch (cls[i]) {
        case 0: output[p0++] = input[i]; break;
        case 1: output[p1++] = input[i]; break;
        default: output[p2++] = input[i]; break;
      }
    }
    return {begin_equal, begin_above};
  }

  // Per-block counts of each class.
  std::vector<std::uint64_t> c0(blocks + 1, 0), c1(blocks + 1, 0),
      c2(blocks + 1, 0);
  auto count_body = [&](std::size_t blo, std::size_t bhi) {
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t lo = b * block_size;
      const std::size_t hi = std::min(n, lo + block_size);
      std::uint64_t n0 = 0, n1 = 0, n2 = 0;
      for (std::size_t i = lo; i < hi; ++i) {
        n0 += (cls[i] == 0);
        n1 += (cls[i] == 1);
        n2 += (cls[i] == 2);
      }
      c0[b] = n0;
      c1[b] = n1;
      c2[b] = n2;
    }
  };
  if (scheduler && blocks > 1) {
    scheduler->parallel_for(0, blocks, 1, count_body);
  } else {
    count_body(0, blocks);
  }

  const std::uint64_t t0 = exclusive_prefix_sum(c0, scheduler);
  const std::uint64_t t1 = exclusive_prefix_sum(c1, scheduler);
  exclusive_prefix_sum(c2, scheduler);

  const std::size_t begin_equal = static_cast<std::size_t>(t0);
  const std::size_t begin_above = static_cast<std::size_t>(t0 + t1);

  auto scatter_body = [&](std::size_t blo, std::size_t bhi) {
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t lo = b * block_size;
      const std::size_t hi = std::min(n, lo + block_size);
      std::size_t p0 = static_cast<std::size_t>(c0[b]);
      std::size_t p1 = begin_equal + static_cast<std::size_t>(c1[b]);
      std::size_t p2 = begin_above + static_cast<std::size_t>(c2[b]);
      for (std::size_t i = lo; i < hi; ++i) {
        switch (cls[i]) {
          case 0: output[p0++] = input[i]; break;
          case 1: output[p1++] = input[i]; break;
          default: output[p2++] = input[i]; break;
        }
      }
    }
  };
  if (scheduler && blocks > 1) {
    scheduler->parallel_for(0, blocks, 1, scatter_body);
  } else {
    scatter_body(0, blocks);
  }
  return {begin_equal, begin_above};
}

}  // namespace pwss::sort
