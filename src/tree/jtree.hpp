#pragma once
// Join-based balanced search tree with batched parallel operations and
// order statistics — our substitute for the paper's Batched Parallel 2-3
// Tree (Appendix A.2, adapted from Paul–Vishkin–Wagener).
//
// Rationale (see DESIGN.md "Substitutions"): the working-set maps only rely
// on the *interface costs* of the segment trees — Θ(b·log n) work per
// sorted batch of b operations, polylogarithmic span, plus the ability to
// address items by recency order. A join-based AVL tree (Blelloch,
// Ferizovic, Sun — "Just Join for Parallel Ordered Sets", SPAA 2016) gives
// exactly that: every batch op is a divide-and-conquer over split/join,
// parallelized with binary fork/join, and subtree sizes give rank/select so
// the recency map is an order-statistic tree instead of leaf pointers.
//
// Concurrency contract: a JTree is externally synchronized (the maps
// guarantee exclusive access via the paper's locking schemes). Batch reads
// (multi_find) may run concurrently with each other but not with mutation.
//
// Allocation contract: a JTree constructed over a util::NodePool (the
// production configuration — see core::SegmentPools) draws every node from
// that pool and returns every node to it: point insert/erase churn is
// heap-free once the pool is warm, multi_extract hands extracted nodes
// straight back, and teardown (clear, destructor, dropped subtrees)
// recycles iteratively as ONE spliced free chain instead of node-by-node
// deletes. The pool must outlive the tree. A pool-less JTree (tests,
// ad-hoc use) falls back to plain new/delete.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/node_pool.hpp"
#include "util/prefetch.hpp"
#include "util/validate.hpp"

namespace pwss::tree {

/// Parallelism context for batch operations. A null scheduler (or a batch
/// smaller than `grain`) runs sequentially; otherwise the divide-and-conquer
/// recursion forks through the scheduler.
struct ParCtx {
  sched::Scheduler* scheduler = nullptr;
  std::size_t grain = 128;
};

template <typename K, typename V, typename Compare = std::less<K>>
class JTree {
 private:
  struct Node;

 public:
  /// The node pool a production JTree allocates from; owned by the map
  /// instance (one pool domain per instance, shared by all its segments'
  /// trees of this shape) and passed in by pointer.
  using Pool = util::NodePool<Node>;

  JTree() = default;
  explicit JTree(Compare cmp) : cmp_(std::move(cmp)) {}
  explicit JTree(Pool* pool) : pool_(pool) {}
  JTree(Compare cmp, Pool* pool) : cmp_(std::move(cmp)), pool_(pool) {}
  JTree(const JTree&) = delete;
  JTree& operator=(const JTree&) = delete;
  JTree(JTree&& other) noexcept
      : root_(other.root_), cmp_(other.cmp_), pool_(other.pool_) {
    other.root_ = nullptr;
  }
  JTree& operator=(JTree&& other) noexcept {
    if (this != &other) {
      destroy(root_);
      root_ = other.root_;
      other.root_ = nullptr;
      cmp_ = other.cmp_;
      pool_ = other.pool_;
    }
    return *this;
  }
  ~JTree() { destroy(root_); }

  /// Late pool binding for trees that must be default-constructed first
  /// (vector-of-count members); only legal while empty.
  void set_pool(Pool* pool) noexcept {
    assert(root_ == nullptr && "pool can only be bound to an empty tree");
    pool_ = pool;
  }
  Pool* pool() const noexcept { return pool_; }

  std::size_t size() const noexcept { return node_size(root_); }
  bool empty() const noexcept { return root_ == nullptr; }

  /// Requests the root node's cache line ahead of a descent (the rest of
  /// the path is data-dependent and cannot usefully be prefetched).
  void prefetch_root() const noexcept { util::prefetch_read(root_); }

  void clear() {
    destroy(root_);
    root_ = nullptr;
  }

  // ---- point operations -------------------------------------------------

  /// Pointer to the value for `key`, or nullptr.
  const V* find(const K& key) const {
    const Node* n = root_;
    while (n) {
      if (cmp_(key, n->key)) {
        n = n->left;
      } else if (cmp_(n->key, key)) {
        n = n->right;
      } else {
        return &n->value;
      }
    }
    return nullptr;
  }
  V* find(const K& key) {
    return const_cast<V*>(std::as_const(*this).find(key));
  }

  /// Inserts (key, value); if key exists, overwrites the value. Returns
  /// true iff the key was newly inserted.
  bool insert(const K& key, V value) {
    auto [l, m, r] = split(root_, key);
    const bool fresh = (m == nullptr);
    if (m) {
      m->value = std::move(value);
    } else {
      m = create_node(key, std::move(value));
    }
    root_ = join(l, m, r);
    return fresh;
  }

  /// Removes key if present; returns the removed value.
  std::optional<V> erase(const K& key) {
    auto [l, m, r] = split(root_, key);
    std::optional<V> out;
    if (m) {
      out = std::move(m->value);
      dispose_node(m);
    }
    root_ = join2(l, r);
    return out;
  }

  // ---- ordered queries (protocol v2) --------------------------------------
  // Read-only; pointers are valid until the next mutation.

  /// Entry with the greatest key strictly below `key`, as {&key, &value};
  /// {nullptr, nullptr} when every key is >= `key`.
  std::pair<const K*, const V*> predecessor(const K& key) const {
    const Node* best = nullptr;
    const Node* n = root_;
    while (n) {
      if (cmp_(n->key, key)) {
        best = n;  // n->key < key: candidate; better ones are to the right
        n = n->right;
      } else {
        n = n->left;
      }
    }
    if (!best) return {nullptr, nullptr};
    return {&best->key, &best->value};
  }

  /// Entry with the least key strictly above `key`;
  /// {nullptr, nullptr} when every key is <= `key`.
  std::pair<const K*, const V*> successor(const K& key) const {
    const Node* best = nullptr;
    const Node* n = root_;
    while (n) {
      if (cmp_(key, n->key)) {
        best = n;  // n->key > key: candidate; better ones are to the left
        n = n->left;
      } else {
        n = n->right;
      }
    }
    if (!best) return {nullptr, nullptr};
    return {&best->key, &best->value};
  }

  /// Number of keys in the inclusive range [lo, hi] (0 when hi < lo):
  /// two rank descents plus one membership probe, O(log n).
  std::size_t range_count(const K& lo, const K& hi) const {
    if (cmp_(hi, lo)) return 0;
    const std::size_t le_hi = rank(hi) + (find(hi) != nullptr ? 1 : 0);
    return le_hi - rank(lo);
  }

  // ---- order statistics ---------------------------------------------------

  /// In-order i-th element (0-based). Precondition: i < size().
  std::pair<const K&, const V&> at(std::size_t i) const {
    const Node* n = root_;
    assert(i < size());
    for (;;) {
      const std::size_t ls = node_size(n->left);
      if (i < ls) {
        n = n->left;
      } else if (i == ls) {
        return {n->key, n->value};
      } else {
        i -= ls + 1;
        n = n->right;
      }
    }
  }

  /// Number of keys strictly less than `key`.
  std::size_t rank(const K& key) const {
    std::size_t r = 0;
    const Node* n = root_;
    while (n) {
      if (cmp_(key, n->key)) {
        n = n->left;
      } else if (cmp_(n->key, key)) {
        r += node_size(n->left) + 1;
        n = n->right;
      } else {
        return r + node_size(n->left);
      }
    }
    return r;
  }

  // ---- batched operations -------------------------------------------------
  // All batch inputs must be sorted by key and duplicate-free; asserted in
  // debug builds. These correspond to the "normal batch operation" of the
  // paper's parallel 2-3 tree; reverse-indexing is subsumed by rank/select.

  /// Looks up every key; out[i] points at the value (valid until the next
  /// mutation) or nullptr.
  void multi_find(std::span<const K> keys, std::vector<const V*>& out,
                  const ParCtx& ctx = {}) const {
    out.assign(keys.size(), nullptr);
    auto body = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) out[i] = find(keys[i]);
    };
    if (ctx.scheduler && keys.size() > ctx.grain) {
      ctx.scheduler->parallel_for(0, keys.size(), ctx.grain, body);
    } else {
      body(0, keys.size());
    }
  }

  /// Inserts every (key, value); existing keys get their value overwritten.
  void multi_insert(std::span<const std::pair<K, V>> items,
                    const ParCtx& ctx = {}) {
    assert_sorted_pairs(items);
    root_ = multi_insert_rec(root_, items, ctx);
  }

  /// Removes every present key; out[i] receives the removed value.
  void multi_extract(std::span<const K> keys,
                     std::vector<std::optional<V>>& out,
                     const ParCtx& ctx = {}) {
    assert_sorted_keys(keys);
    out.assign(keys.size(), std::nullopt);
    root_ = multi_extract_rec(root_, keys, 0, out, ctx);
  }

  /// Removes and returns the first `n` items in key order (all items if
  /// n >= size()). Output is sorted by key.
  std::vector<std::pair<K, V>> extract_prefix(std::size_t n) {
    n = std::min(n, size());
    auto [l, r] = split_at(root_, n);
    root_ = r;
    std::vector<std::pair<K, V>> out;
    out.reserve(n);
    collect_destroy(l, out);
    return out;
  }

  /// Removes and returns the last `n` items in key order, sorted by key.
  std::vector<std::pair<K, V>> extract_suffix(std::size_t n) {
    n = std::min(n, size());
    auto [l, r] = split_at(root_, size() - n);
    root_ = l;
    std::vector<std::pair<K, V>> out;
    out.reserve(n);
    collect_destroy(r, out);
    return out;
  }

  /// In-order traversal.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for_each_rec(root_, fn);
  }

  std::vector<std::pair<K, V>> to_vector() const {
    std::vector<std::pair<K, V>> out;
    out.reserve(size());
    for_each([&](const K& k, const V& v) { out.emplace_back(k, v); });
    return out;
  }

  /// Builds from a sorted, duplicate-free vector in O(n).
  static JTree from_sorted(std::span<const std::pair<K, V>> items,
                           Compare cmp = {}, Pool* pool = nullptr) {
    JTree t(std::move(cmp), pool);
    t.assert_sorted_pairs(items);
    t.root_ = t.build_balanced(items);
    return t;
  }

  /// Structural validation for tests: AVL balance, correct height/size
  /// fields, strict key order.
  bool check_invariants() const { return validate().empty(); }

  /// Deep structural validation with a precise failure description:
  /// strict key order within every subtree's bounds, height and size
  /// fields consistent with the children, AVL balance, and an acyclicity
  /// budget (a link cycle or corrupt size field trips the node budget
  /// instead of hanging the walk). Empty string = OK. Requires K
  /// streamable.
  std::string validate() const {
    util::Validator v("jtree: ");
    // One node over the root's claim: a healthy walk visits exactly
    // node_size(root_) nodes, so exceeding the budget means the links
    // reach more nodes than the size fields admit.
    std::uint64_t budget = node_size(root_) + 1;
    validate_rec(root_, nullptr, nullptr, v, budget);
    return std::move(v).take();
  }

 private:
  struct Node {
    Node(const K& k, V v)
        : key(k), value(std::move(v)) {}
    K key;
    V value;
    Node* left = nullptr;
    Node* right = nullptr;
    int height = 1;
    std::size_t size = 1;
  };

  // ---- node lifecycle (pooled when a pool is bound) ----------------------

  template <typename VV>
  Node* create_node(const K& key, VV&& value) {
    if (pool_ != nullptr) return pool_->create(key, std::forward<VV>(value));
    return new Node(key, std::forward<VV>(value));
  }

  void dispose_node(Node* n) noexcept {
    if (pool_ != nullptr) {
      pool_->destroy(n);
    } else {
      delete n;
    }
  }

  /// Tears down a whole subtree iteratively (right-spine rotation walk —
  /// O(n) time, O(1) extra space, no recursion depth to blow on degenerate
  /// shapes) and applies `dispose` to every node exactly once.
  template <typename Dispose>
  static void flatten_dispose(Node* t, Dispose dispose) noexcept {
    while (t != nullptr) {
      if (t->left != nullptr) {
        Node* l = t->left;
        t->left = l->right;
        l->right = t;
        t = l;
      } else {
        Node* r = t->right;
        dispose(t);
        t = r;
      }
    }
  }

  static int node_height(const Node* n) noexcept { return n ? n->height : 0; }
  static std::size_t node_size(const Node* n) noexcept {
    return n ? n->size : 0;
  }

  static Node* update(Node* n) noexcept {
    n->height = 1 + std::max(node_height(n->left), node_height(n->right));
    n->size = 1 + node_size(n->left) + node_size(n->right);
    return n;
  }

  static Node* rotate_left(Node* n) noexcept {
    Node* r = n->right;
    n->right = r->left;
    r->left = update(n);
    return update(r);
  }

  static Node* rotate_right(Node* n) noexcept {
    Node* l = n->left;
    n->left = l->right;
    l->right = update(n);
    return update(l);
  }

  /// AVL join (Blelloch–Ferizovic–Sun): all keys in l < m->key < all in r;
  /// m is a detached node whose child pointers are overwritten.
  static Node* join(Node* l, Node* m, Node* r) noexcept {
    if (node_height(l) > node_height(r) + 1) return join_right(l, m, r);
    if (node_height(r) > node_height(l) + 1) return join_left(l, m, r);
    m->left = l;
    m->right = r;
    return update(m);
  }

  static Node* join_right(Node* l, Node* m, Node* r) noexcept {
    // height(l) > height(r) + 1: descend l's right spine.
    if (node_height(l->right) <= node_height(r) + 1) {
      m->left = l->right;
      m->right = r;
      l->right = update(m);
      update(l);
      if (node_height(l->right) > node_height(l->left) + 1) {
        l->right = rotate_right(l->right);
        update(l);
        return rotate_left(l);
      }
      return l;
    }
    l->right = join_right(l->right, m, r);
    update(l);
    if (node_height(l->right) > node_height(l->left) + 1) return rotate_left(l);
    return l;
  }

  static Node* join_left(Node* l, Node* m, Node* r) noexcept {
    if (node_height(r->left) <= node_height(l) + 1) {
      m->left = l;
      m->right = r->left;
      r->left = update(m);
      update(r);
      if (node_height(r->left) > node_height(r->right) + 1) {
        r->left = rotate_left(r->left);
        update(r);
        return rotate_right(r);
      }
      return r;
    }
    r->left = join_left(l, m, r->left);
    update(r);
    if (node_height(r->left) > node_height(r->right) + 1) return rotate_right(r);
    return r;
  }

  /// Join without a middle node.
  static Node* join2(Node* l, Node* r) noexcept {
    if (!l) return r;
    if (!r) return l;
    auto [rest, last] = split_last(l);
    return join(rest, last, r);
  }

  /// Detaches the in-order last node of t. Returns {rest, last}.
  static std::pair<Node*, Node*> split_last(Node* t) noexcept {
    if (!t->right) {
      Node* rest = t->left;
      t->left = nullptr;
      return {rest, t};
    }
    auto [rest, last] = split_last(t->right);
    t->right = nullptr;
    return {join(t->left, t, rest), last};
  }

  struct SplitResult {
    Node* left;
    Node* mid;  // detached node with key == split key, or nullptr
    Node* right;
  };

  SplitResult split(Node* t, const K& key) const {
    if (!t) return {nullptr, nullptr, nullptr};
    if (cmp_(key, t->key)) {
      auto [l, m, r] = split(t->left, key);
      Node* right_tree = t->right;
      t->left = t->right = nullptr;
      return {l, m, join(r, t, right_tree)};
    }
    if (cmp_(t->key, key)) {
      auto [l, m, r] = split(t->right, key);
      Node* left_tree = t->left;
      t->left = t->right = nullptr;
      return {join(left_tree, t, l), m, r};
    }
    Node* l = t->left;
    Node* r = t->right;
    t->left = t->right = nullptr;
    return {l, t, r};
  }

  /// Splits off the first `i` items (in-order). Returns {first_i, rest}.
  static std::pair<Node*, Node*> split_at(Node* t, std::size_t i) noexcept {
    if (!t) return {nullptr, nullptr};
    const std::size_t ls = node_size(t->left);
    if (i <= ls) {
      Node* tl = t->left;
      Node* tr = t->right;
      t->left = t->right = nullptr;
      auto [a, b] = split_at(tl, i);
      return {a, join(b, t, tr)};
    }
    Node* tl = t->left;
    Node* tr = t->right;
    t->left = t->right = nullptr;
    auto [a, b] = split_at(tr, i - ls - 1);
    return {join(tl, t, a), b};
  }

  Node* multi_insert_rec(Node* t, std::span<const std::pair<K, V>> items,
                         const ParCtx& ctx) {
    if (items.empty()) return t;
    if (!t) return build_balanced(items);
    const std::size_t mid = items.size() / 2;
    auto [l, m, r] = split(t, items[mid].first);
    if (m) {
      m->value = items[mid].second;
    } else {
      m = create_node(items[mid].first, items[mid].second);
    }
    Node* nl = nullptr;
    Node* nr = nullptr;
    auto left_work = [&] { nl = multi_insert_rec(l, items.subspan(0, mid), ctx); };
    auto right_work = [&] {
      nr = multi_insert_rec(r, items.subspan(mid + 1), ctx);
    };
    if (ctx.scheduler && items.size() > ctx.grain) {
      ctx.scheduler->parallel_invoke(sched::FnView(left_work),
                                     sched::FnView(right_work));
    } else {
      left_work();
      right_work();
    }
    return join(nl, m, nr);
  }

  Node* multi_extract_rec(Node* t, std::span<const K> keys, std::size_t base,
                          std::vector<std::optional<V>>& out,
                          const ParCtx& ctx) {
    if (keys.empty() || !t) return t;
    const std::size_t mid = keys.size() / 2;
    auto [l, m, r] = split(t, keys[mid]);
    if (m) {
      out[base + mid] = std::move(m->value);
      dispose_node(m);  // straight back to the instance pool
    }
    Node* nl = nullptr;
    Node* nr = nullptr;
    auto left_work = [&] {
      nl = multi_extract_rec(l, keys.subspan(0, mid), base, out, ctx);
    };
    auto right_work = [&] {
      nr = multi_extract_rec(r, keys.subspan(mid + 1), base + mid + 1, out, ctx);
    };
    if (ctx.scheduler && keys.size() > ctx.grain) {
      ctx.scheduler->parallel_invoke(sched::FnView(left_work),
                                     sched::FnView(right_work));
    } else {
      left_work();
      right_work();
    }
    return join2(nl, nr);
  }

  Node* build_balanced(std::span<const std::pair<K, V>> items) {
    if (items.empty()) return nullptr;
    const std::size_t mid = items.size() / 2;
    Node* n = create_node(items[mid].first, items[mid].second);
    n->left = build_balanced(items.subspan(0, mid));
    n->right = build_balanced(items.subspan(mid + 1));
    return update(n);
  }

  /// Moves (key, value) pairs out in order, then bulk-recycles the whole
  /// subtree as one spliced free chain.
  void collect_destroy(Node* t, std::vector<std::pair<K, V>>& out) {
    collect_rec(t, out);
    destroy(t);
  }

  static void collect_rec(Node* t, std::vector<std::pair<K, V>>& out) {
    if (!t) return;
    collect_rec(t->left, out);
    out.emplace_back(t->key, std::move(t->value));
    collect_rec(t->right, out);
  }

  template <typename Fn>
  static void for_each_rec(const Node* t, Fn& fn) {
    if (!t) return;
    for_each_rec(t->left, fn);
    fn(t->key, t->value);
    for_each_rec(t->right, fn);
  }

  /// Iterative teardown; with a pool the subtree goes back as ONE spliced
  /// free chain (a single pool splice instead of n shard pushes).
  void destroy(Node* t) noexcept {
    if (t == nullptr) return;
    if (pool_ != nullptr) {
      typename Pool::FreeChain chain;
      flatten_dispose(t, [&chain](Node* n) noexcept {
        n->~Node();
        chain.push(static_cast<void*>(n));
      });
      pool_->recycle_chain(std::move(chain));
    } else {
      flatten_dispose(t, [](Node* n) noexcept { delete n; });
    }
  }

  void validate_rec(const Node* t, const K* lo, const K* hi,
                    util::Validator& v, std::uint64_t& budget) const {
    if (t == nullptr || !v.ok()) return;
    if (!v.require(budget > 0, "links reach more nodes than the root's ",
                   "size field ", node_size(root_),
                   " admits (cycle or corrupt size)")) {
      return;
    }
    --budget;
    if (!v.require(lo == nullptr || cmp_(*lo, t->key), "order violated at key ",
                   t->key, ": not above its subtree's lower bound ",
                   lo != nullptr ? *lo : t->key)) {
      return;
    }
    if (!v.require(hi == nullptr || cmp_(t->key, *hi), "order violated at key ",
                   t->key, ": not below its subtree's upper bound ",
                   hi != nullptr ? *hi : t->key)) {
      return;
    }
    const int want_h =
        1 + std::max(node_height(t->left), node_height(t->right));
    if (!v.require(t->height == want_h, "height field wrong at key ", t->key,
                   ": stored ", t->height, ", children imply ", want_h)) {
      return;
    }
    const std::size_t want_n = 1 + node_size(t->left) + node_size(t->right);
    if (!v.require(t->size == want_n, "size field wrong at key ", t->key,
                   ": stored ", t->size, ", children imply ", want_n)) {
      return;
    }
    const int skew = node_height(t->left) - node_height(t->right);
    if (!v.require(skew >= -1 && skew <= 1, "AVL balance violated at key ",
                   t->key, ": left height ", node_height(t->left),
                   " vs right height ", node_height(t->right))) {
      return;
    }
    validate_rec(t->left, lo, &t->key, v, budget);
    validate_rec(t->right, &t->key, hi, v, budget);
  }

  void assert_sorted_pairs(
      [[maybe_unused]] std::span<const std::pair<K, V>> items) const {
#ifndef NDEBUG
    for (std::size_t i = 1; i < items.size(); ++i) {
      assert(cmp_(items[i - 1].first, items[i].first) &&
             "batch must be sorted and duplicate-free");
    }
#endif
  }
  void assert_sorted_keys([[maybe_unused]] std::span<const K> keys) const {
#ifndef NDEBUG
    for (std::size_t i = 1; i < keys.size(); ++i) {
      assert(cmp_(keys[i - 1], keys[i]) &&
             "batch must be sorted and duplicate-free");
    }
#endif
  }

  Node* root_ = nullptr;
  Compare cmp_;
  Pool* pool_ = nullptr;
};

}  // namespace pwss::tree
