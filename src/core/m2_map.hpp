#pragma once
// M2 — the pipelined parallel working-set map (Section 7, Figures 2–3).
//
// Structure (Figure 2):
//
//   input -> feed buffer --p^2 cut batch--> [ESort+Combine]
//         -> FIRST SLAB  S[0..m-1]   (m = ceil(log log 2p^2) + 1)
//         -> FILTER  (capacity Θ(p^2); one in-flight group per key)
//         -> FINAL SLAB  S[m] -> S[m+1] -> ... -> S[l]   (pipelined)
//
// The interface (an asynchronous activation) is ready iff input is pending
// and the filter holds at most p^2 keys. Each run takes ONE p^2-sized
// bunch, sorts and combines it, sweeps the first slab like M1 (successful
// searches/updates finish immediately; successful deletions are tagged and
// continue; everything else continues), then — holding the neighbour-lock
// B[0] shared with S[m] and the front-lock FL[0] — processes S[m-1], passes
// the unfinished groups through the filter and hands them to S[m].
//
// Final-slab segments are pipeline stages. Stage k runs under its two
// neighbour-locks; finished items are shifted to the front of S[m'] with
// m' = min(k-1, m) under the front-lock chain FL[k-m]..FL[0] (Figure 3),
// which also guards the filter and the contents of S[m]. Stage activations
// and everything they spawn run at HIGH priority; the interface runs LOW —
// the weak-priority discipline of Section 7.2.
//
// All locks are the paper's dedicated locks (Definition 37) used in
// continuation-passing style: a stage run never blocks an OS thread. Lock
// acquisition follows the global order B[0] < B[1] < ... < FL[max] < ... <
// FL[0], so the CPS chains cannot deadlock.
//
// Simplifications vs. the paper, documented in DESIGN.md:
//  * segments/locks are preallocated up to kMaxStages (capacities are
//    doubly exponential, so 12 final-slab stages cover any feasible n);
//    empty terminal segments are kept instead of removed (step 5);
//  * batch work inside a stage runs through the shared scheduler rather
//    than dedicated processors — exactly the Section 8 adaptation.

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "buffer/feed_buffer.hpp"
#include "buffer/parallel_buffer.hpp"
#include "core/async_map.hpp"
#include "core/backend.hpp"
#include "core/group.hpp"
#include "core/ops.hpp"
#include "core/segment.hpp"
#include "sched/scheduler.hpp"
#include "sort/pesort.hpp"
#include "sync/async_gate.hpp"
#include "sync/dedicated_lock.hpp"
#include "util/fault.hpp"
#include "util/validate.hpp"

namespace pwss::core {

template <typename K, typename V>
class M2Map {
 public:
  /// p defaults to the scheduler's worker count. The filter capacity and
  /// bunch size are p^2; the first slab has m = ceil(log2 log2 (2 p^2)) + 1
  /// segments.
  explicit M2Map(sched::Scheduler& scheduler, unsigned p = 0)
      : scheduler_(scheduler),
        p_(p ? p : std::max(1u, scheduler.worker_count())),
        bunch_(static_cast<std::size_t>(p_) * p_),
        m_(first_slab_segments_for(p_)),
        pools_(&scheduler),
        filter_pool_(&scheduler),
        feed_(bunch_),
        stages_(kMaxStages) {
    // All segments (first slab + pipeline stages) share this instance's
    // pool domain: stage k's extractions recycle exactly the nodes the
    // S[m'] front insertions re-draw, and the per-worker shards keep the
    // concurrently running stages from contending on one lock.
    first_slab_.reserve(m_);
    for (std::size_t k = 0; k < m_; ++k) first_slab_.emplace_back(&pools_);
    for (auto& st : stages_) st.seg.bind_pools(&pools_);
    for (std::size_t j = 0; j <= kMaxStages; ++j) {
      // B[j]: key 0 = left user (interface for j==0, stage j-1 otherwise),
      // key 1 = stage j, key 2 (j >= 1) = the interface's global ordered
      // read (j == 0 reuses the interface's own key 0).
      nlocks_.push_back(std::make_unique<sync::DedicatedLock>(j == 0 ? 2 : 3));
    }
    for (std::size_t j = 0; j < kMaxStages; ++j) {
      // FL[j]: key 0 = adjacent stage j, key 1 = pass-through holder of
      // FL[j+1], key 2 = the interface (FL[0]'s boundary sweep; every
      // FL[j]'s global ordered read).
      flocks_.push_back(std::make_unique<sync::DedicatedLock>(3));
    }
  }

  ~M2Map() { quiesce(); }
  M2Map(const M2Map&) = delete;
  M2Map& operator=(const M2Map&) = delete;

  std::size_t size() const noexcept {
    return size_.load(std::memory_order_acquire);
  }
  unsigned p() const noexcept { return p_; }
  std::size_t first_slab_width() const noexcept { return m_; }
  std::size_t filter_occupancy() const noexcept {
    return filter_size_.load(std::memory_order_acquire);
  }

  /// Asynchronous submission: the ticket is fulfilled when the operation
  /// finishes (possibly deep in the pipeline; ordered kinds when the
  /// interface's next global ordered read completes). Thread-safe. Always
  /// delivers a terminal result: a buffer rejection (injected fault or a
  /// future bounded-capacity policy) completes the ticket kOverloaded
  /// right here on the submitting thread.
  void submit(Op<K, V> op, OpTicket<V, K>* ticket) {
    in_flight_.fetch_add(1, std::memory_order_release);
    if (!input_.submit(POp{op.type, std::move(op.key), std::move(op.value),
                           std::move(op.key2), ticket, op.deadline_ns})) {
      // Not buffered: undo the claim (nobody else can have seen the op)
      // and shed. Debit before fulfill: a waiter may free the ticket the
      // moment it wakes, and the counter update must not race that.
      in_flight_.fetch_sub(1, std::memory_order_release);
      ticket->fulfill(Result<V, K>::error(ResultStatus::kOverloaded));
      return;
    }
    activate_interface();
  }

  /// Blocking convenience: submits the whole batch and waits for every
  /// result. Per-key program order is preserved within the batch, and the
  /// batch is sliced into point/ordered phases (each awaited before the
  /// next begins) so every ordered query observes exactly the point
  /// operations that precede it in submission order — fulfillment happens
  /// under the pipeline's locks before release, so awaited results are
  /// physically applied before the following phase's global read.
  std::vector<Result<V, K>> execute_batch(std::span<const Op<K, V>> ops) {
    std::vector<Result<V, K>> results;
    execute_batch(ops, results);
    return results;
  }

  /// Same batch, results into a caller-owned buffer (cleared, then sized
  /// to the batch) so a steady bulk caller reuses the results capacity.
  /// The per-batch ticket block is an instance arena reused across batches
  /// by the steady single bulk caller; concurrent bulk callers fall back
  /// to a call-local block on try-lock contention, so the call remains
  /// safe from concurrent threads.
  void execute_batch(std::span<const Op<K, V>> ops,
                     std::vector<Result<V, K>>& results) {
    results.clear();
    results.resize(ops.size());
    std::unique_lock<std::mutex> arena_lk(tickets_mu_, std::try_to_lock);
    TicketBlock local;
    TicketBlock& block = arena_lk.owns_lock() ? tickets_ : local;
    // Both phase kinds run the same submit-then-await round; the phase
    // boundaries are what guarantees ordered queries observe every
    // preceding point op.
    auto phase = [&](std::size_t i, std::size_t j) {
      OpTicket<V, K>* tickets = block.ensure(j - i);
      for (std::size_t k = i; k < j; ++k) {
        tickets[k - i].reset();
        submit(ops[k], &tickets[k - i]);
      }
      for (std::size_t k = i; k < j; ++k) {
        results[k] = tickets[k - i].wait();
      }
    };
    for_each_phase(ops, phase, phase);
  }
  std::vector<Result<V, K>> execute_batch(const std::vector<Op<K, V>>& ops) {
    return execute_batch(std::span<const Op<K, V>>(ops));
  }

  std::optional<V> search(const K& key) {
    OpTicket<V, K> t;
    submit(Op<K, V>::search(key), &t);
    return t.wait().value;
  }
  bool insert(const K& key, V value) {
    OpTicket<V, K> t;
    submit(Op<K, V>::insert(key, std::move(value)), &t);
    return t.wait().success();
  }
  std::optional<V> erase(const K& key) {
    OpTicket<V, K> t;
    submit(Op<K, V>::erase(key), &t);
    return t.wait().value;
  }

  // Ordered blocking conveniences (protocol v2).
  std::optional<std::pair<K, V>> predecessor(const K& key) {
    return ordered_pair(run_ordered(Op<K, V>::predecessor(key)));
  }
  std::optional<std::pair<K, V>> successor(const K& key) {
    return ordered_pair(run_ordered(Op<K, V>::successor(key)));
  }
  std::uint64_t range_count(const K& lo, const K& hi) {
    return run_ordered(Op<K, V>::range_count(lo, hi)).count;
  }

  /// Blocks until every submitted operation has completed and the pipeline
  /// is idle.
  void quiesce() {
    while (in_flight_.load(std::memory_order_acquire) != 0 || pipeline_busy()) {
      std::this_thread::yield();
    }
  }

  /// Sorted drain of the full contents for the checkpoint writer
  /// (store/snapshot.hpp): appends every (key, value) in ascending key
  /// order. Callable only when quiescent (every first-slab and stage
  /// segment is then at rest); recency stamps are not exported — a
  /// restored map starts with a fresh working set.
  void export_entries(std::vector<std::pair<K, V>>& out) {
    quiesce();
    const std::size_t first = out.size();
    out.reserve(first + size());
    for (std::size_t k = 0; k < m_; ++k) {
      first_slab_[k].for_each([&](const K& k2, const V& v, std::uint64_t) {
        out.emplace_back(k2, v);
      });
    }
    for (std::size_t j = 0; j <= terminal_; ++j) {
      stages_[j].seg.for_each([&](const K& k2, const V& v, std::uint64_t) {
        out.emplace_back(k2, v);
      });
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  /// Structural validation; callable only when quiescent. M2's balance
  /// invariants (Lemma 16) are lenient: final-slab segment S[k] holds at
  /// most 3·2^(2^k) items and prefixes are at most 2p^2 below capacity.
  bool check_invariants() { return validate().empty(); }

  /// Deep structural check with a precise failure description; callable
  /// only when quiescent (a busy pipeline is itself reported as the
  /// failure). Checks every segment's own invariants, Lemma 16's lenient
  /// stage bound (S[k] holds at most 3·2^(2^k)), the size accounting, the
  /// drained filter (both the counter and its tree/pool), and the shared
  /// pool domain (one key-map + one recency-map node per item sitting in a
  /// tree-represented segment). Empty string = OK.
  std::string validate() {
    util::Validator v("m2: ");
    if (!v.require(!pipeline_busy(),
                   "pipeline still busy: validation is quiescent-only")) {
      return std::move(v).take();
    }
    if (!v.require(filter_size_.load() == 0,
                   "filter not drained at quiescence: ", filter_size_.load(),
                   " in-flight groups still admitted")) {
      return std::move(v).take();
    }
    std::size_t total = 0;
    std::uint64_t tree_items = 0;
    for (std::size_t k = 0; k < m_; ++k) {
      if (!v.absorb(first_slab_[k].validate(), "first-slab segment[", k,
                    "]: ")) {
        return std::move(v).take();
      }
      total += first_slab_[k].size();
      if (!first_slab_[k].is_flat()) tree_items += first_slab_[k].size();
    }
    for (std::size_t j = 0; j <= terminal_; ++j) {
      const std::size_t k = m_ + j;
      if (!v.absorb(stages_[j].seg.validate(), "stage segment S[", k,
                    "]: ")) {
        return std::move(v).take();
      }
      if (!v.require(stages_[j].seg.size() <= 3 * segment_capacity(k),
                     "stage segment S[", k, "] holds ", stages_[j].seg.size(),
                     " items, over its Lemma 16 bound 3*2^(2^", k, ") = ",
                     3 * segment_capacity(k))) {
        return std::move(v).take();
      }
      total += stages_[j].seg.size();
      if (!stages_[j].seg.is_flat()) tree_items += stages_[j].seg.size();
    }
    if (!v.require(total == size_.load(),
                   "size accounting broken: segments hold ", total,
                   " items but size_=", size_.load())) {
      return std::move(v).take();
    }
    if (!v.require(filter_.size() == 0,
                   "filter tree not empty at quiescence: ", filter_.size(),
                   " entries remain")) {
      return std::move(v).take();
    }
    if (!v.require(filter_pool_.live_nodes() == 0,
                   "filter-pool accounting broken: ",
                   filter_pool_.live_nodes(),
                   " live nodes but the filter is drained")) {
      return std::move(v).take();
    }
    if (!v.require(pools_.key_pool.live_nodes() == tree_items,
                   "key-pool accounting broken: ",
                   pools_.key_pool.live_nodes(), " live nodes but ",
                   tree_items, " items live in tree-represented segments")) {
      return std::move(v).take();
    }
    if (!v.require(pools_.rec_pool.live_nodes() == tree_items,
                   "recency-pool accounting broken: ",
                   pools_.rec_pool.live_nodes(), " live nodes but ",
                   tree_items, " items live in tree-represented segments")) {
      return std::move(v).take();
    }
    if (!v.absorb(pools_.key_pool.validate(), "key-pool: ")) {
      return std::move(v).take();
    }
    if (!v.absorb(pools_.rec_pool.validate(), "recency-pool: ")) {
      return std::move(v).take();
    }
    v.absorb(filter_pool_.validate(), "filter-pool: ");
    return std::move(v).take();
  }

  /// Segment index (global numbering S[0..l]) holding `key`; quiescent only.
  std::optional<std::size_t> segment_of(const K& key) {
    for (std::size_t k = 0; k < m_; ++k) {
      if (first_slab_[k].peek(key)) return k;
    }
    for (std::size_t j = 0; j <= terminal_; ++j) {
      if (stages_[j].seg.peek(key)) return m_ + j;
    }
    return std::nullopt;
  }

 private:
  static constexpr std::size_t kMaxStages = 12;

  using Ticket = OpTicket<V, K>*;
  using POp = PendingOp<K, V, Ticket>;
  using Group = GroupOp<K, V, Ticket>;
  using Item = typename Segment<K, V>::Item;
  using Lock = sync::DedicatedLock;

  static std::size_t first_slab_segments_for(unsigned p) {
    const double cap = 2.0 * static_cast<double>(p) * static_cast<double>(p);
    const double inner = std::max(1.0, std::log2(cap));
    return static_cast<std::size_t>(std::ceil(std::log2(inner))) + 1;
  }

  struct Stage {
    Segment<K, V> seg;
    std::mutex inbox_mu;
    std::vector<std::vector<Group>> inbox;  // sorted batches, merged on flush
    sync::AsyncGate gate;
    /// Body of the stage's in-flight front-lock chain, parked here so the
    /// per-hop lock continuations capture only (this, indices) and stay on
    /// the Closure SBO path instead of boxing a 72-byte Closure per hop.
    /// Safe as a single slot: the stage gate admits one run at a time and
    /// the body is consumed before the run can end.
    sched::Closure front_body;
  };

  struct FilterEntry {
    std::vector<POp> pending;  // ops that arrived while the key was in flight
  };

  /// Fixed-capacity block of reusable tickets. OpTicket holds an atomic,
  /// so it is neither movable nor vector-growable; the block reallocates
  /// wholesale when a larger batch arrives and otherwise reuses its slots
  /// round after round.
  struct TicketBlock {
    std::unique_ptr<OpTicket<V, K>[]> slots;
    std::size_t cap = 0;
    OpTicket<V, K>* ensure(std::size_t n) {
      if (n > cap) {
        slots = std::make_unique<OpTicket<V, K>[]>(n);
        cap = n;
      }
      return slots.get();
    }
  };

  Result<V, K> run_ordered(Op<K, V> op) {
    OpTicket<V, K> t;
    submit(std::move(op), &t);
    return t.wait();
  }

  // ---- activation plumbing -------------------------------------------------

  void activate_interface() {
    if (interface_gate_.begin()) {
      scheduler_.spawn([this] { interface_tick(); }, sched::Priority::kLow);
    }
  }

  void activate_stage(std::size_t j) {
    if (stages_[j].gate.begin()) {
      scheduler_.spawn([this, j] { stage_tick(j); }, sched::Priority::kHigh);
    }
  }

  bool pipeline_busy() {
    if (interface_gate_.active()) return true;
    for (auto& st : stages_) {
      if (st.gate.active()) return true;
    }
    return false;
  }

  sync::DedicatedLock::ResumeSink hi_sink() {
    return scheduler_.resume_sink(sched::Priority::kHigh);
  }
  sync::DedicatedLock::ResumeSink lo_sink() {
    return scheduler_.resume_sink(sched::Priority::kLow);
  }

  // ---- the interface (Section 7.1 steps 1-6) --------------------------------

  bool interface_ready() {
    return (input_.pending() > 0 || !feed_.empty()) &&
           filter_size_.load(std::memory_order_acquire) <=
               static_cast<std::size_t>(p_) * p_;
  }

  void interface_tick() {
    if (!interface_ready()) {
      if (interface_gate_.finish()) {
        scheduler_.spawn([this] { interface_tick(); }, sched::Priority::kLow);
      }
      return;
    }

    // Step 1: flush the parallel buffer into the feed buffer; take one
    // p^2 bunch as the cut batch.
    {
      std::vector<POp> in = input_.flush();
      if (!in.empty()) feed_.append(std::move(in));
    }
    std::vector<POp> batch = feed_.take_bunches(1);

    // Terminal-status pass (the batch-cut boundary of the robustness
    // layer): cancelled and deadline-expired ops complete here, before
    // the pipeline touches them; emit_fn debits the in-flight claim so
    // quiescence stays conserved.
    {
      auto emit = emit_fn();
      std::uint64_t now = 0;  // lazily read: deadline-free cuts skip the clock
      std::size_t live = 0;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        POp& op = batch[i];
        if (op.target->cancelled()) {
          emit(op.target, Result<V, K>::error(ResultStatus::kCancelled));
          continue;
        }
        if (op.deadline_ns != 0) {
          if (now == 0) now = now_ns();
          if (now >= op.deadline_ns) {
            emit(op.target, Result<V, K>::error(ResultStatus::kTimedOut));
            continue;
          }
        }
        if (live != i) batch[live] = std::move(op);
        ++live;
      }
      batch.resize(live);
      // Injected pool exhaustion, detected before the cut enters the
      // pipeline: the whole bunch sheds kOverloaded with every segment,
      // the filter, and the stage inboxes untouched.
      if (!batch.empty() && PWSS_FAULT_POINT("m2.batch.pool_reserve")) {
        for (auto& op : batch) {
          emit(op.target, Result<V, K>::error(ResultStatus::kOverloaded));
        }
        batch.clear();
      }
    }

    // Protocol v2: ordered kinds need one consistent view of EVERY
    // segment, which the per-key pipeline cannot give them. Park them for
    // the global ordered read that runs after this tick's point sweep;
    // within a concurrent bunch "point ops first, ordered reads second" is
    // a legal linearization (no submitter of a parked op has a result
    // yet). The interface gate makes this single-owner, so the parked
    // batch member cannot be clobbered by a concurrent tick.
    assert(ordered_batch_.empty());
    {
      std::size_t w = 0;
      for (auto& op : batch) {
        if (is_ordered(op.type)) {
          ordered_batch_.push_back(std::move(op));
        } else {
          batch[w++] = std::move(op);
        }
      }
      batch.resize(w);
    }

    // Step 2: entropy-sort (stable) + combine.
    sort::pesort(
        batch, [](const POp& op) { return op.key; }, &scheduler_);
    std::vector<Group> groups = coalesce_sorted(std::move(batch));

    // Step 3 (part 1): sweep S[0..m-2] — exclusively owned by the interface.
    groups = first_slab_sweep(std::move(groups));

    // Step 3 (part 2) to step 5: S[m-1], the filter, and S[m]'s buffer are
    // shared with the final slab, guarded by B[0] and FL[0]. The groups
    // move through the continuation captures (Closure allows move-only
    // captures); a parked continuation carries them past this frame.
    auto boundary_cont = [this, groups = std::move(groups)]() mutable {
      auto front_cont = [this, groups = std::move(groups)]() mutable {
        std::vector<Group> unfinished =
            boundary_segment_sweep(std::move(groups));
        filter_and_feed_stage0(std::move(unfinished));
        flocks_[0]->release(lo_sink());
        nlocks_[0]->release(lo_sink());
        if (!ordered_batch_.empty()) {
          start_ordered_read();
        } else {
          interface_epilogue();
        }
      };
      static_assert(sched::Closure::fits_inline<decltype(front_cont)>(),
                    "interface continuations must stay on the SBO path");
      flocks_[0]->acquire(/*key=*/2, std::move(front_cont), lo_sink());
    };
    static_assert(sched::Closure::fits_inline<decltype(boundary_cont)>(),
                  "interface continuations must stay on the SBO path");
    nlocks_[0]->acquire(/*key=*/0, std::move(boundary_cont), lo_sink());
  }

  /// Step 6: reactivate while ready; otherwise release ownership (the
  /// pending mark catches concurrent submissions/stage wakeups).
  void interface_epilogue() {
    if (interface_ready() || interface_gate_.finish()) {
      scheduler_.spawn([this] { interface_tick(); }, sched::Priority::kLow);
    }
  }

  // ---- global ordered read (protocol v2) -----------------------------------
  // kPredecessor/kSuccessor/kRangeCount are answered against one
  // consistent snapshot of every segment. The reader (always the
  // interface, single-owner via its gate) CPS-acquires the FULL lock chain
  // in the established global order B[0] < B[1] < ... < B[kMaxStages] <
  // FL[kMaxStages-1] < ... < FL[0]: holding every neighbour-lock stops all
  // stage runs, and FL[0] covers the deep-stage front sections, so the
  // segments are immutable while the read-only queries run. Because the
  // acquisition order matches the stages' own order, the chain cannot
  // deadlock — any stage mid-run simply finishes and releases. Groups
  // still sitting in the filter/stage inboxes have not emitted results, so
  // linearizing them after the read is legal. The parked batch rides the
  // member (not the hop captures), keeping every hop on the Closure SBO
  // path.

  void start_ordered_read() { acquire_ordered_from(0); }

  /// Chain position i covers B[i] for i <= kMaxStages, then
  /// FL[2*kMaxStages - i] for larger i (descending FL order).
  void acquire_ordered_from(std::size_t i) {
    constexpr std::size_t kChain = 2 * kMaxStages + 1;
    if (i == kChain) {
      finish_ordered_read();
      return;
    }
    Lock& lk = i <= kMaxStages ? *nlocks_[i] : *flocks_[2 * kMaxStages - i];
    // B[0] / FL[0] use the interface's own keys (0 / 2); every other lock
    // has a dedicated reader key 2.
    const std::size_t key = i == 0 ? 0 : 2;
    auto cont = [this, i] { acquire_ordered_from(i + 1); };
    static_assert(sched::Closure::fits_inline<decltype(cont)>(),
                  "ordered-read hops must stay on the closure SBO path");
    lk.acquire(key, std::move(cont), lo_sink());
  }

  /// All locks held: answer the parked queries (identical (type, key,
  /// key2) tuples combine — computed once, fanned out to every ticket),
  /// release the chain, and resume the interface loop.
  void finish_ordered_read() {
    auto& idx = ordered_idx_;
    idx.clear();
    idx.reserve(ordered_batch_.size());
    for (std::size_t i = 0; i < ordered_batch_.size(); ++i) idx.push_back(i);
    auto same = [&](std::size_t a, std::size_t b) {
      const POp& x = ordered_batch_[a];
      const POp& y = ordered_batch_[b];
      return x.type == y.type && x.key == y.key && x.key2 == y.key2;
    };
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      const POp& x = ordered_batch_[a];
      const POp& y = ordered_batch_[b];
      if (x.type != y.type) return x.type < y.type;
      if (x.key != y.key) return x.key < y.key;
      return x.key2 < y.key2;
    });
    auto emit = emit_fn();
    Result<V, K> answer;
    for (std::size_t r = 0; r < idx.size(); ++r) {
      const POp& op = ordered_batch_[idx[r]];
      if (r == 0 || !same(idx[r - 1], idx[r])) {
        answer = ordered_query_over<K, V>(
            op.type, op.key, op.key2, [&](auto&& fn) {
              for (const auto& seg : first_slab_) fn(seg);
              for (const auto& st : stages_) fn(st.seg);
            });
      }
      emit(op.target, Result<V, K>(answer));
    }
    ordered_batch_.clear();
    for (std::size_t j = 0; j < kMaxStages; ++j) flocks_[j]->release(lo_sink());
    for (std::size_t j = 0; j <= kMaxStages; ++j) nlocks_[j]->release(lo_sink());
    interface_epilogue();
  }

  /// M1-style sweep of S[0..m-2]: resolves groups that find their item.
  /// Successful searches/updates finish immediately (shifted one segment
  /// forward); net deletions are tagged and continue; the rest continue.
  std::vector<Group> first_slab_sweep(std::vector<Group> pending) {
    for (std::size_t k = 0; k + 1 < m_ && !pending.empty(); ++k) {
      // The sweep order is static, so request the next segment's entry
      // lines while this one is being processed (the interface thread
      // holds every first-slab lock here, so touching S[k+1] is safe).
      if (k + 2 < m_) first_slab_[k + 1].prefetch();
      pending = sweep_segment(first_slab_[k], k, pending);
      restore_first_slab(k);
    }
    return pending;
  }

  /// Shared logic: extract found keys from `seg` (global index k), resolve
  /// their groups, shift net-present items to the front of the previous
  /// segment; returns the groups that continue.
  std::vector<Group> sweep_segment(Segment<K, V>& seg, std::size_t k,
                                   std::vector<Group> pending) {
    std::vector<K> keys;
    keys.reserve(pending.size());
    for (const auto& g : pending) keys.push_back(g.key);
    std::vector<Item> found = seg.extract_by_keys(keys, par_ctx());

    std::vector<Group> unfinished;
    std::vector<Item> to_promote;
    std::size_t fi = 0;
    for (auto& g : pending) {
      if (fi < found.size() && found[fi].key == g.key) {
        Item item = std::move(found[fi++]);
        std::optional<V> fin =
            resolve_ops<K, V, Ticket>(std::move(item.value), g.ops, emit_fn());
        if (fin) {
          item.value = std::move(*fin);
          to_promote.push_back(std::move(item));
        } else {
          // Tagged successful deletion flows to the terminal segment.
          size_.fetch_sub(1, std::memory_order_release);
          g.ops.clear();  // results already emitted
          g.deletion_succeeded = true;
          unfinished.push_back(std::move(g));
        }
      } else {
        unfinished.push_back(std::move(g));
      }
    }
    if (!to_promote.empty()) {
      Segment<K, V>& dest = k == 0 ? first_slab_[0] : segment_at(k - 1);
      dest.insert_front_batch(std::move(to_promote), par_ctx());
    }
    return unfinished;
  }

  Segment<K, V>& segment_at(std::size_t k) {
    return k < m_ ? first_slab_[k] : stages_[k - m_].seg;
  }

  /// Restores first-slab prefixes S[0..i-1] for boundaries i = upto..1
  /// (never touching S[m-1]'s boundary with S[m]; holes accumulate in
  /// S[m-1] and are repaired by stage 0 — Lemma 16 invariant 2).
  void restore_first_slab(std::size_t upto) {
    upto = std::min(upto, m_ - 1);
    for (std::size_t i = upto; i >= 1; --i) {
      const std::size_t target = capacity_prefix(i);
      std::size_t prefix = 0;
      for (std::size_t j = 0; j < i; ++j) prefix += first_slab_[j].size();
      if (prefix > target) {
        std::vector<Item> moved =
            first_slab_[i - 1].extract_least_recent(prefix - target, par_ctx());
        first_slab_[i].insert_front_batch(std::move(moved), par_ctx());
      } else if (prefix < target) {
        const std::size_t want =
            std::min(target - prefix, first_slab_[i].size());
        std::vector<Item> moved =
            first_slab_[i].extract_most_recent(want, par_ctx());
        first_slab_[i - 1].insert_back_batch(std::move(moved), par_ctx());
      }
    }
  }

  static std::size_t capacity_prefix(std::size_t count) {
    std::size_t cum = 0;
    for (std::size_t j = 0; j < count; ++j) {
      cum += static_cast<std::size_t>(segment_capacity(j));
    }
    return cum;
  }

  /// S[m-1] sweep (under B[0] + FL[0]) plus first-slab capacity repair.
  std::vector<Group> boundary_segment_sweep(std::vector<Group> pending) {
    if (!pending.empty()) {
      pending = sweep_segment(first_slab_[m_ - 1], m_ - 1, pending);
    }
    restore_first_slab(m_ - 1);
    return pending;
  }

  /// Step 4: pass unfinished groups through the filter; keys already in
  /// flight get their ops appended to the filter entry, fresh keys enter
  /// the filter and S[m]'s inbox. Caller holds FL[0].
  void filter_and_feed_stage0(std::vector<Group> groups) {
    if (groups.empty()) return;
    std::vector<Group> admitted;
    for (auto& g : groups) {
      if (FilterEntry* entry = filter_.find(g.key)) {
        // In flight: combine into the existing entry (and account for a
        // tagged deletion's already-emitted results — only the ops matter).
        for (auto& op : g.ops) entry->pending.push_back(std::move(op));
        if (g.deletion_succeeded) {
          // The in-flight group will observe the deletion through state:
          // the item is already gone from every segment; nothing to do.
        }
      } else {
        filter_.insert(g.key, FilterEntry{});
        filter_size_.fetch_add(1, std::memory_order_release);
        admitted.push_back(std::move(g));
      }
    }
    if (!admitted.empty()) {
      {
        std::lock_guard<std::mutex> lk(stages_[0].inbox_mu);
        stages_[0].inbox.push_back(std::move(admitted));
      }
      activate_stage(0);
    }
  }

  // ---- final-slab stages (Section 7.1 segment runs) --------------------------

  bool stage_ready(std::size_t j) {
    std::lock_guard<std::mutex> lk(stages_[j].inbox_mu);
    return !stages_[j].inbox.empty();
  }

  void stage_tick(std::size_t j) {
    if (!stage_ready(j)) {
      if (stages_[j].gate.finish()) {
        scheduler_.spawn([this, j] { stage_tick(j); }, sched::Priority::kHigh);
      }
      return;
    }
    // Acquire neighbour-locks left then right (global order B[j] < B[j+1]).
    nlocks_[j]->acquire(
        /*key=*/1,
        [this, j] {
          nlocks_[j + 1]->acquire(
              /*key=*/0,
              [this, j] {
                if (j == 0) {
                  // Stage m holds FL[0] for its whole run (Figure 3: FL[0]
                  // guards the filter and the contents of S[m]).
                  flocks_[0]->acquire(
                      /*key=*/0, [this, j] { stage_body(j); }, hi_sink());
                } else {
                  stage_body(j);
                }
              },
              hi_sink());
        },
        hi_sink());
  }

  void stage_body(std::size_t j) {
    const std::size_t k = m_ + j;  // global segment index
    Stage& st = stages_[j];

    // Step 3: grow the terminal segment if S[k-1], S[k] exceed capacity.
    if (terminal_.load(std::memory_order_acquire) == j &&
        j + 1 < kMaxStages) {
      const std::size_t left_size =
          j == 0 ? first_slab_[m_ - 1].size() : stages_[j - 1].seg.size();
      if (left_size + st.seg.size() >
          segment_capacity(k - 1) + segment_capacity(k)) {
        terminal_.store(j + 1, std::memory_order_release);
      }
    }

    // Step 4: flush the inbox (batches are key-sorted; merge them).
    std::vector<Group> batch = flush_inbox(st);

    // 4a: search and detach the accessed items present in S[k].
    std::vector<K> keys;
    keys.reserve(batch.size());
    for (const auto& g : batch) keys.push_back(g.key);
    std::vector<Item> found = st.seg.extract_by_keys(keys, par_ctx());

    // 4b-4f: the front-locked section (filter + S[m'] access). Stage 0
    // already holds FL[0]; deeper stages acquire FL[j]..FL[1] descending
    // then FL[0]. The batch state moves through the continuation captures;
    // a parked continuation carries it past this frame. j and k are packed
    // into one word so the capture is exactly 64 bytes (this + jk + two
    // vectors) and stage 0 — which runs the body inline — stays on the
    // closure's SBO path.
    const std::uint64_t jk = (static_cast<std::uint64_t>(j) << 32) | k;
    auto body = [this, jk, batch = std::move(batch),
                 found = std::move(found)]() mutable {
      front_section(jk >> 32, jk & 0xffffffffu, std::move(batch),
                    std::move(found));
    };
    static_assert(sched::Closure::fits_inline<decltype(body)>(),
                  "stage body must stay on the closure SBO path");
    acquire_front_chain(j, std::move(body));
  }

  /// Acquires FL[j]..FL[0] (descending) for stage j > 0; stage 0 holds
  /// FL[0] already. Then runs `body`. The body is parked in the stage's
  /// front_body slot, NOT captured per hop — wrapping the 72-byte Closure
  /// at every chain level used to heap-allocate once per hop.
  void acquire_front_chain(std::size_t j, sched::Closure body) {
    if (j == 0) {
      body();
      return;
    }
    assert(!stages_[j].front_body && "front chain already in flight");
    stages_[j].front_body = std::move(body);
    acquire_front_from(j, j);
  }

  void acquire_front_from(std::size_t stage_j, std::size_t lock_i) {
    const std::size_t key = lock_i == stage_j ? 0 : 1;
    auto cont = [this, stage_j, lock_i] {
      if (lock_i == 0) {
        sched::Closure body = std::move(stages_[stage_j].front_body);
        body();
      } else {
        acquire_front_from(stage_j, lock_i - 1);
      }
    };
    static_assert(sched::Closure::fits_inline<decltype(cont)>(),
                  "front-chain hops must stay on the closure SBO path");
    flocks_[lock_i]->acquire(key, std::move(cont), hi_sink());
  }

  void release_front_chain(std::size_t j) {
    // Paper step 4f: release FL[0] up to FL[j] in that order. Stage 0 keeps
    // FL[0] until the end of its run.
    if (j == 0) return;
    for (std::size_t i = 0; i <= j; ++i) flocks_[i]->release(hi_sink());
  }

  void front_section(std::size_t j, std::size_t k, std::vector<Group> batch,
                     std::vector<Item> found) {
    const bool is_terminal = terminal_.load(std::memory_order_acquire) == j;
    const std::size_t mprime = std::min(k - 1, m_);  // S[m'] destination

    std::vector<Group> unfinished;
    std::vector<Item> to_front;       // shifted/inserted items for S[m']
    std::size_t deletions_in_batch = 0;

    std::size_t fi = 0;
    for (auto& g : batch) {
      const bool found_here =
          fi < found.size() && found[fi].key == g.key;
      std::optional<V> state;
      if (found_here) {
        state = std::move(found[fi++].value);
      }
      if (g.deletion_succeeded) {
        assert(!found_here);
        ++deletions_in_batch;
        if (!is_terminal) {
          unfinished.push_back(std::move(g));
          continue;
        }
        // Terminal: finish the tagged deletion — drain the filter entry.
        finish_group(g, std::nullopt, to_front);
        continue;
      }
      if (found_here) {
        std::optional<V> fin =
            resolve_ops<K, V, Ticket>(std::move(state), g.ops, emit_fn());
        if (fin) {
          // R': searched/updated — finishes here; item goes to front of
          // S[m'], and any ops accumulated in the filter resolve now.
          finish_group_with_value(g, std::move(*fin), to_front);
        } else {
          // Became a successful deletion here.
          size_.fetch_sub(1, std::memory_order_release);
          ++deletions_in_batch;
          g.ops.clear();
          g.deletion_succeeded = true;
          if (is_terminal) {
            finish_group(g, std::nullopt, to_front);
          } else {
            unfinished.push_back(std::move(g));
          }
        }
        continue;
      }
      // Not found here.
      if (is_terminal) {
        // Resolve against an absent item; insertions materialize at the
        // front of S[m'].
        std::optional<V> fin =
            resolve_ops<K, V, Ticket>(std::nullopt, g.ops, emit_fn());
        if (fin) {
          finish_group_with_value(g, std::move(*fin), to_front, /*fresh=*/true);
        } else {
          finish_group(g, std::nullopt, to_front);
        }
      } else {
        unfinished.push_back(std::move(g));
      }
    }

    // 4d: insert the finished items at the front of S[m'] (guarded: S[m-1]
    // by B[0] when j==0; S[m] by FL[0] otherwise).
    if (!to_front.empty()) {
      segment_at(mprime).insert_front_batch(std::move(to_front), par_ctx());
    }

    // 4e: wake the interface when the filter has room again.
    if (filter_size_.load(std::memory_order_acquire) <=
        static_cast<std::size_t>(p_) * p_) {
      activate_interface();
    }

    release_front_chain(j);
    after_front(j, k, std::move(unfinished), deletions_in_batch);
  }

  /// Finishes a group whose final state is `value`: drains the filter
  /// entry (ops that arrived mid-flight) against that state and queues the
  /// resulting item (if any) for the front of S[m'].
  void finish_group_with_value(Group& g, V value, std::vector<Item>& to_front,
                               bool fresh = false) {
    std::optional<V> state = std::move(value);
    state = drain_filter_entry(g.key, std::move(state));
    if (state) {
      if (fresh) size_.fetch_add(1, std::memory_order_release);
      to_front.push_back(Item{g.key, std::move(*state), g.seq});
    } else if (!fresh) {
      // A filter-accumulated erase removed it after all.
      size_.fetch_sub(1, std::memory_order_release);
    }
  }

  /// Finishes a group whose final state is absent.
  void finish_group(Group& g, std::optional<V> state,
                    std::vector<Item>& to_front) {
    state = drain_filter_entry(g.key, std::move(state));
    if (state) {
      size_.fetch_add(1, std::memory_order_release);
      to_front.push_back(Item{g.key, std::move(*state), g.seq});
    }
  }

  /// Removes `key` from the filter and resolves its accumulated ops
  /// against `state`. Caller holds FL[0].
  std::optional<V> drain_filter_entry(const K& key, std::optional<V> state) {
    std::optional<FilterEntry> entry = filter_.erase(key);
    if (!entry) return state;
    filter_size_.fetch_sub(1, std::memory_order_release);
    if (entry->pending.empty()) return state;
    return resolve_ops<K, V, Ticket>(std::move(state), entry->pending,
                                     emit_fn());
  }

  /// Steps 4g-4i + 7: capacity repair with the left neighbour, handoff to
  /// stage j+1, lock release, re-activation.
  void after_front(std::size_t j, std::size_t k, std::vector<Group> unfinished,
                   std::size_t deletions_in_batch) {
    Stage& st = stages_[j];
    Segment<K, V>& left = j == 0 ? first_slab_[m_ - 1] : stages_[j - 1].seg;
    const std::size_t left_cap =
        static_cast<std::size_t>(segment_capacity(k - 1));

    // 4g: rearward transfer — left over-full.
    if (left.size() > left_cap) {
      std::vector<Item> moved =
          left.extract_least_recent(left.size() - left_cap, par_ctx());
      st.seg.insert_front_batch(std::move(moved), par_ctx());
    }
    // 4h: frontward transfer — left under-full, bounded by successful
    // deletions observed in this batch.
    if (left.size() < left_cap) {
      const std::size_t holes = left_cap - left.size();
      const std::size_t move_n =
          std::min({holes, st.seg.size(), deletions_in_batch});
      if (move_n > 0) {
        std::vector<Item> moved = st.seg.extract_most_recent(move_n, par_ctx());
        left.insert_back_batch(std::move(moved), par_ctx());
      }
    }

    // 4i: pass the unfinished operations to S[k+1].
    if (!unfinished.empty()) {
      assert(j + 1 < kMaxStages && "pipeline deeper than kMaxStages");
      if (terminal_.load(std::memory_order_acquire) == j) {
        terminal_.store(j + 1, std::memory_order_release);
      }
      {
        std::lock_guard<std::mutex> lk(stages_[j + 1].inbox_mu);
        stages_[j + 1].inbox.push_back(std::move(unfinished));
      }
      activate_stage(j + 1);
    }

    // Release locks (stage 0 also surrenders FL[0]).
    if (j == 0) flocks_[0]->release(hi_sink());
    nlocks_[j + 1]->release(hi_sink());
    nlocks_[j]->release(hi_sink());

    // Step 7: reactivate while work remains.
    if (stage_ready(j) || st.gate.finish()) {
      scheduler_.spawn([this, j] { stage_tick(j); }, sched::Priority::kHigh);
    }
  }

  /// Merges the inbox's key-sorted batches into one key-sorted batch.
  /// Distinct batches never share a key (the filter admits one in-flight
  /// group per key).
  std::vector<Group> flush_inbox(Stage& st) {
    std::vector<std::vector<Group>> batches;
    {
      std::lock_guard<std::mutex> lk(st.inbox_mu);
      batches.swap(st.inbox);
    }
    std::vector<Group> merged;
    for (auto& b : batches) {
      if (merged.empty()) {
        merged = std::move(b);
        continue;
      }
      std::vector<Group> next;
      next.reserve(merged.size() + b.size());
      std::merge(std::make_move_iterator(merged.begin()),
                 std::make_move_iterator(merged.end()),
                 std::make_move_iterator(b.begin()),
                 std::make_move_iterator(b.end()), std::back_inserter(next),
                 [](const Group& a, const Group& c) { return a.key < c.key; });
      merged = std::move(next);
    }
    return merged;
  }

  auto emit_fn() {
    return [this](Ticket t, Result<V, K> r) {
      t->fulfill(std::move(r));
      in_flight_.fetch_sub(1, std::memory_order_release);
    };
  }

  tree::ParCtx par_ctx() { return tree::ParCtx{&scheduler_, 128}; }

  // ---- members ---------------------------------------------------------------

  sched::Scheduler& scheduler_;
  unsigned p_;
  std::size_t bunch_;
  std::size_t m_;

  // Pool domains first: every segment/tree below dies before its pool.
  SegmentPools<K, V> pools_;
  typename tree::JTree<K, FilterEntry>::Pool filter_pool_;

  buffer::ParallelBuffer<POp> input_;
  buffer::FeedBuffer<POp> feed_;
  sync::AsyncGate interface_gate_;

  // Parked ordered queries of the current tick plus their sort scratch —
  // owned by the interface (single-owner via its gate), so the ordered-read
  // hop closures stay small and reuse capacity across ticks.
  std::vector<POp> ordered_batch_;
  std::vector<std::size_t> ordered_idx_;

  // Bulk-path ticket arena (see execute_batch); try-locked so concurrent
  // bulk callers degrade to a call-local block instead of racing.
  std::mutex tickets_mu_;
  TicketBlock tickets_;

  std::vector<Segment<K, V>> first_slab_;  // S[0..m-1]; interface-owned
  std::vector<Stage> stages_;              // S[m..m+kMaxStages-1]
  std::atomic<std::size_t> terminal_{0};   // stage index of the terminal seg

  tree::JTree<K, FilterEntry> filter_{&filter_pool_};  // guarded by FL[0]
  std::atomic<std::size_t> filter_size_{0};

  std::vector<std::unique_ptr<Lock>> nlocks_;  // B[0..kMaxStages]
  std::vector<std::unique_ptr<Lock>> flocks_;  // FL[0..kMaxStages-1]

  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> in_flight_{0};
};

/// M2 runs its own asynchronous front end (feed buffer + filter +
/// pipelined final slab); wrapping it in AsyncMap would serialize the
/// pipeline behind a second batcher.
template <typename K, typename V>
struct backend_traits<M2Map<K, V>> {
  static constexpr bool needs_scheduler = true;
  static constexpr bool native_async = true;
  static constexpr bool supports_async = false;
  static constexpr bool point_thread_safe = true;
  static constexpr bool supports_ordered = true;
};

static_assert(MapBackend<M2Map<int, int>, int, int>);

}  // namespace pwss::core
