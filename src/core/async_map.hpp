#pragma once
// AsyncMap — the implicit-batching front end of Section 4 / Appendix A.1
// wrapped around a batched map (M1Map, or M0Map for a sequential-combining
// baseline). Client threads call search/insert/erase as blocking black-box
// operations, exactly the programming model the paper targets; the runtime
// glue (parallel buffer -> feed buffer of p^2 bunches -> cut batches of
// ceil(log n / p) bunches -> execute_batch) happens behind the scenes on
// the scheduler's workers.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "buffer/feed_buffer.hpp"
#include "buffer/parallel_buffer.hpp"
#include "core/backend.hpp"
#include "core/ops.hpp"
#include "sched/scheduler.hpp"
#include "sync/async_gate.hpp"
#include "util/fault.hpp"
#include "util/schedule_points.hpp"

namespace pwss::core {

/// Completion slot for one asynchronous operation — the zero-allocation
/// token of the submission API. Typically lives on the caller's stack; the
/// map's front end fulfills it and wakes any waiter. `on_complete` (when
/// set) is invoked after the result is published, on the fulfilling
/// thread — the hook the driver layer's Future/completion surfaces build
/// on without costing the plain blocking path anything.
template <typename V, typename K = V>
struct OpTicket {
  std::atomic<bool> ready{false};
  /// Cancellation REQUEST flag (overload-robustness layer). cancel() never
  /// fulfills the ticket itself: only the executing side fulfills, after
  /// checking this flag at a batch-cut boundary. That single-fulfiller
  /// rule is what makes the terminal status exact — an op is either
  /// executed (fulfilled with its real result) or completed kCancelled,
  /// never both, and the in-flight accounting debits exactly once either
  /// way. A cancel() that loses the race to the executor is a no-op.
  std::atomic<bool> cancel_requested{false};
  Result<V, K> result;
  void (*on_complete)(OpTicket*) = nullptr;
  /// Admission-window release hook (driver layer): runs on the fulfilling
  /// thread after the result is published, before on_complete, so the
  /// window slot frees no later than the waiter wakes. Cached before the
  /// ready publish like on_complete (the ticket may die the moment ready
  /// is observed).
  void (*on_release)(void*) = nullptr;
  void* release_ctx = nullptr;

  /// Requests cancellation. Best-effort: the op completes kCancelled only
  /// if the request is observed before it is cut into an executing batch;
  /// otherwise it completes with its real result. Either way it reaches a
  /// terminal status.
  void cancel() noexcept {
    cancel_requested.store(true, std::memory_order_release);
  }
  bool cancelled() const noexcept {
    return cancel_requested.load(std::memory_order_acquire);
  }

  void fulfill(Result<V, K> r) {
    // Cache the hooks BEFORE publishing: the moment ready is true a
    // spin-waiting owner may return and reuse/destroy a stack ticket, so
    // no field may be read afterwards. Hooked tickets (FutureState) stay
    // alive past the store — the producer reference is released by the
    // hook itself.
    void (*hook)(OpTicket*) = on_complete;
    void (*release)(void*) = on_release;
    void* rctx = release_ctx;
    result = std::move(r);
    ready.store(true, std::memory_order_release);
    ready.notify_all();
    if (release != nullptr) release(rctx);
    if (hook != nullptr) hook(this);
  }
  Result<V, K> wait() {
    // Short spin for the common fast path, then futex-wait.
    for (int i = 0; i < 128; ++i) {
      if (ready.load(std::memory_order_acquire)) return result;
    }
    ready.wait(false, std::memory_order_acquire);
    return result;
  }

  /// Re-arms a fulfilled ticket for reuse (ticket-arena batch paths).
  /// Only legal when no waiter can still observe the previous round.
  void reset() noexcept {
    ready.store(false, std::memory_order_relaxed);
    cancel_requested.store(false, std::memory_order_relaxed);
    result = Result<V, K>{};
    on_release = nullptr;
    release_ctx = nullptr;
  }
};

/// MapT must provide execute_batch(span<const Op<K,V>>) -> vector<Result<V, K>>
/// and size(). The wrapper owns the map.
template <typename K, typename V, typename MapT>
class AsyncMap {
 public:
  AsyncMap(MapT map, sched::Scheduler& scheduler)
      : map_(std::move(map)),
        scheduler_(scheduler),
        p_(std::max(1u, scheduler.worker_count())),
        input_(),
        feed_(static_cast<std::size_t>(p_) * p_) {}

  ~AsyncMap() { quiesce(); }

  MapT& map() { return map_; }  // safe only when quiescent

  std::optional<V> search(const K& key) {
    return run_op(Op<K, V>::search(key)).value;
  }
  bool insert(const K& key, V value) {
    return run_op(Op<K, V>::insert(key, std::move(value))).success();
  }
  std::optional<V> erase(const K& key) {
    return run_op(Op<K, V>::erase(key)).value;
  }

  /// Submits without blocking; caller later waits on the ticket. Always
  /// delivers a terminal result: on a buffer rejection (injected fault or
  /// a future bounded-capacity policy) the ticket completes kOverloaded
  /// right here on the submitting thread.
  void submit(Op<K, V> op, OpTicket<V, K>* ticket) {
    // Claim before publish: drive() may fulfill the op and fetch_sub the
    // moment it is visible in input_, so incrementing afterwards would let
    // in_flight_ wrap below zero and quiesce() transiently observe a clean
    // state with the op still buffered.
    in_flight_.fetch_add(1, std::memory_order_release);
    // The PR-2 window: an op claimed but not yet published. With the
    // claim/publish order reverted, a park here lets drive() debit first.
    PWSS_SCHED_POINT("async_map.submit.claim_publish");
    if (!input_.submit(Submission{std::move(op), ticket})) {
      // Not buffered: undo the claim (nobody else can have seen the op)
      // and shed. Debit before fulfill so a waiter that frees the ticket
      // on wake never races the counter update.
      in_flight_.fetch_sub(1, std::memory_order_release);
      ticket->fulfill(Result<V, K>::error(ResultStatus::kOverloaded));
      return;
    }
    poke();
  }

  /// Operations claimed but not yet fulfilled. Never wraps below zero:
  /// every fetch_sub is for ops whose claiming fetch_add happened-before
  /// their publication in input_. Exact only when quiescent.
  std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Blocks until every submitted operation has completed.
  void quiesce() {
    while (in_flight_.load(std::memory_order_acquire) != 0 ||
           gate_.active()) {
      std::this_thread::yield();
    }
  }

 private:
  struct Submission {
    Op<K, V> op;
    OpTicket<V, K>* ticket;
  };

  Result<V, K> run_op(Op<K, V> op) {
    OpTicket<V, K> ticket;
    submit(std::move(op), &ticket);
    return ticket.wait();
  }

  void poke() {
    if (gate_.begin()) {
      scheduler_.spawn([this] { drive(); }, sched::Priority::kLow);
    }
  }

  /// Owner loop: runs on a scheduler worker; processes cut batches until
  /// the buffers drain (then re-checks the gate's pending mark).
  void drive() {
    for (;;) {
      while (input_.pending() > 0 || !feed_.empty()) {
        feed_.append(take_submissions());
        process_one_cut_batch();
      }
      if (!gate_.finish()) return;
    }
  }

  std::vector<Submission> take_submissions() { return input_.flush(); }

  void process_one_cut_batch() {
    // M1's cut size: ceil(log2(n) / p) bunches of p^2 ops each, >= 1.
    const double n = static_cast<double>(map_.size() + 2);
    const std::size_t bunches = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(std::log2(n) / static_cast<double>(p_))));
    std::vector<Submission> batch = feed_.take_bunches(bunches);
    if (batch.empty()) return;
    const std::size_t submitted = batch.size();
    // Terminal-status pass (the batch-cut boundary of the robustness
    // layer): cancelled and deadline-expired ops complete HERE, before
    // the structure is touched, and are compacted out of the batch. They
    // still count toward the debit below — every claimed op debits
    // exactly once, fulfilled or not, so quiescence stays conserved.
    std::uint64_t now = 0;  // lazily read: deadline-free batches skip the clock
    std::size_t live = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      Submission& s = batch[i];
      if (s.ticket->cancelled()) {
        s.ticket->fulfill(Result<V, K>::error(ResultStatus::kCancelled));
        continue;
      }
      if (s.op.deadline_ns != 0) {
        if (now == 0) now = now_ns();
        if (s.op.expired(now)) {
          s.ticket->fulfill(Result<V, K>::error(ResultStatus::kTimedOut));
          continue;
        }
      }
      if (live != i) batch[live] = std::move(s);
      ++live;
    }
    batch.resize(live);
    // Injected pool exhaustion, detected before the batch executes: the
    // whole cut sheds kOverloaded with the structure untouched — the
    // clean analogue of NodePool::acquire_chunk failing mid-rebuild.
    if (!batch.empty() && PWSS_FAULT_POINT("async_map.batch.pool_reserve")) {
      for (auto& s : batch) {
        s.ticket->fulfill(Result<V, K>::error(ResultStatus::kOverloaded));
      }
      batch.clear();
    }
    if (!batch.empty()) {
      // The scratch buffers are safe to reuse: the gate guarantees one
      // drive owner, so steady-state cut batches recycle both the staged
      // ops and the results capacity.
      ops_scratch_.clear();
      ops_scratch_.reserve(batch.size());
      for (auto& s : batch) ops_scratch_.push_back(std::move(s.op));
      execute_batch_into<K, V>(map_, std::span<const Op<K, V>>(ops_scratch_),
                               results_scratch_);
      for (std::size_t i = 0; i < batch.size(); ++i) {
        batch[i].ticket->fulfill(std::move(results_scratch_[i]));
      }
    }
    // Tickets fulfilled, debit not yet applied: quiesce() must still see
    // these ops as in flight (fulfill happens-before the decrement).
    PWSS_SCHED_POINT("async_map.drive.fulfill_debit");
    in_flight_.fetch_sub(submitted, std::memory_order_release);
  }

  MapT map_;
  sched::Scheduler& scheduler_;
  unsigned p_;
  buffer::ParallelBuffer<Submission> input_;
  buffer::FeedBuffer<Submission> feed_;
  sync::AsyncGate gate_;
  std::atomic<std::size_t> in_flight_{0};
  std::vector<Op<K, V>> ops_scratch_;       // drive-loop batch staging
  std::vector<Result<V, K>> results_scratch_;  // drive-loop results reuse
};

}  // namespace pwss::core
