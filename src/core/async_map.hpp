#pragma once
// AsyncMap — the implicit-batching front end of Section 4 / Appendix A.1
// wrapped around a batched map (M1Map, or M0Map for a sequential-combining
// baseline). Client threads call search/insert/erase as blocking black-box
// operations, exactly the programming model the paper targets; the runtime
// glue (parallel buffer -> feed buffer of p^2 bunches -> cut batches of
// ceil(log n / p) bunches -> execute_batch) happens behind the scenes on
// the scheduler's workers.

#include <atomic>
#include <cmath>
#include <cstddef>
#include <optional>
#include <vector>

#include "buffer/feed_buffer.hpp"
#include "buffer/parallel_buffer.hpp"
#include "core/backend.hpp"
#include "core/ops.hpp"
#include "sched/scheduler.hpp"
#include "sync/async_gate.hpp"
#include "util/schedule_points.hpp"

namespace pwss::core {

/// Completion slot for one asynchronous operation — the zero-allocation
/// token of the submission API. Typically lives on the caller's stack; the
/// map's front end fulfills it and wakes any waiter. `on_complete` (when
/// set) is invoked after the result is published, on the fulfilling
/// thread — the hook the driver layer's Future/completion surfaces build
/// on without costing the plain blocking path anything.
template <typename V, typename K = V>
struct OpTicket {
  std::atomic<bool> ready{false};
  Result<V, K> result;
  void (*on_complete)(OpTicket*) = nullptr;

  void fulfill(Result<V, K> r) {
    // Cache the hook BEFORE publishing: the moment ready is true a
    // spin-waiting owner may return and reuse/destroy a stack ticket, so
    // no field may be read afterwards. Hooked tickets (FutureState) stay
    // alive past the store — the producer reference is released by the
    // hook itself.
    void (*hook)(OpTicket*) = on_complete;
    result = std::move(r);
    ready.store(true, std::memory_order_release);
    ready.notify_all();
    if (hook != nullptr) hook(this);
  }
  Result<V, K> wait() {
    // Short spin for the common fast path, then futex-wait.
    for (int i = 0; i < 128; ++i) {
      if (ready.load(std::memory_order_acquire)) return result;
    }
    ready.wait(false, std::memory_order_acquire);
    return result;
  }

  /// Re-arms a fulfilled ticket for reuse (ticket-arena batch paths).
  /// Only legal when no waiter can still observe the previous round.
  void reset() noexcept {
    ready.store(false, std::memory_order_relaxed);
    result = Result<V, K>{};
  }
};

/// MapT must provide execute_batch(span<const Op<K,V>>) -> vector<Result<V, K>>
/// and size(). The wrapper owns the map.
template <typename K, typename V, typename MapT>
class AsyncMap {
 public:
  AsyncMap(MapT map, sched::Scheduler& scheduler)
      : map_(std::move(map)),
        scheduler_(scheduler),
        p_(std::max(1u, scheduler.worker_count())),
        input_(),
        feed_(static_cast<std::size_t>(p_) * p_) {}

  ~AsyncMap() { quiesce(); }

  MapT& map() { return map_; }  // safe only when quiescent

  std::optional<V> search(const K& key) {
    return run_op(Op<K, V>::search(key)).value;
  }
  bool insert(const K& key, V value) {
    return run_op(Op<K, V>::insert(key, std::move(value))).success();
  }
  std::optional<V> erase(const K& key) {
    return run_op(Op<K, V>::erase(key)).value;
  }

  /// Submits without blocking; caller later waits on the ticket.
  void submit(Op<K, V> op, OpTicket<V, K>* ticket) {
    // Claim before publish: drive() may fulfill the op and fetch_sub the
    // moment it is visible in input_, so incrementing afterwards would let
    // in_flight_ wrap below zero and quiesce() transiently observe a clean
    // state with the op still buffered.
    in_flight_.fetch_add(1, std::memory_order_release);
    // The PR-2 window: an op claimed but not yet published. With the
    // claim/publish order reverted, a park here lets drive() debit first.
    PWSS_SCHED_POINT("async_map.submit.claim_publish");
    input_.submit(Submission{std::move(op), ticket});
    poke();
  }

  /// Operations claimed but not yet fulfilled. Never wraps below zero:
  /// every fetch_sub is for ops whose claiming fetch_add happened-before
  /// their publication in input_. Exact only when quiescent.
  std::size_t in_flight() const noexcept {
    return in_flight_.load(std::memory_order_acquire);
  }

  /// Blocks until every submitted operation has completed.
  void quiesce() {
    while (in_flight_.load(std::memory_order_acquire) != 0 ||
           gate_.active()) {
      std::this_thread::yield();
    }
  }

 private:
  struct Submission {
    Op<K, V> op;
    OpTicket<V, K>* ticket;
  };

  Result<V, K> run_op(Op<K, V> op) {
    OpTicket<V, K> ticket;
    submit(std::move(op), &ticket);
    return ticket.wait();
  }

  void poke() {
    if (gate_.begin()) {
      scheduler_.spawn([this] { drive(); }, sched::Priority::kLow);
    }
  }

  /// Owner loop: runs on a scheduler worker; processes cut batches until
  /// the buffers drain (then re-checks the gate's pending mark).
  void drive() {
    for (;;) {
      while (input_.pending() > 0 || !feed_.empty()) {
        feed_.append(take_submissions());
        process_one_cut_batch();
      }
      if (!gate_.finish()) return;
    }
  }

  std::vector<Submission> take_submissions() { return input_.flush(); }

  void process_one_cut_batch() {
    // M1's cut size: ceil(log2(n) / p) bunches of p^2 ops each, >= 1.
    const double n = static_cast<double>(map_.size() + 2);
    const std::size_t bunches = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::ceil(std::log2(n) / static_cast<double>(p_))));
    std::vector<Submission> batch = feed_.take_bunches(bunches);
    if (batch.empty()) return;
    // The scratch buffers are safe to reuse: the gate guarantees one
    // drive owner, so steady-state cut batches recycle both the staged
    // ops and the results capacity.
    ops_scratch_.clear();
    ops_scratch_.reserve(batch.size());
    for (auto& s : batch) ops_scratch_.push_back(std::move(s.op));
    execute_batch_into<K, V>(map_, std::span<const Op<K, V>>(ops_scratch_),
                             results_scratch_);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].ticket->fulfill(std::move(results_scratch_[i]));
    }
    // Tickets fulfilled, debit not yet applied: quiesce() must still see
    // these ops as in flight (fulfill happens-before the decrement).
    PWSS_SCHED_POINT("async_map.drive.fulfill_debit");
    in_flight_.fetch_sub(batch.size(), std::memory_order_release);
  }

  MapT map_;
  sched::Scheduler& scheduler_;
  unsigned p_;
  buffer::ParallelBuffer<Submission> input_;
  buffer::FeedBuffer<Submission> feed_;
  sync::AsyncGate gate_;
  std::atomic<std::size_t> in_flight_{0};
  std::vector<Op<K, V>> ops_scratch_;       // drive-loop batch staging
  std::vector<Result<V, K>> results_scratch_;  // drive-loop results reuse
};

}  // namespace pwss::core
