#pragma once
// BatchScratch — the per-instance arena behind M1's (and M0's, via the
// shared Segment paths) batch processing. Every execute_batch used to build
// ~7 fresh vectors per segment sweep (tagged ops, sort scratch, group lists,
// key lists, extracted items, promotion lists, capacity transfers) plus the
// PESort scratch copy; with the arena those buffers live as long as the map
// instance and repeated batches reuse capacity instead of reallocating.
//
// Ownership rule (see DESIGN.md "Allocation discipline"): one arena per map
// instance, used only under that instance's single-owner batch contract.
// Arenas are never shared across driver instances (each ShardedDriver shard
// owns its own backend and therefore its own arena) and never touched by
// two batches concurrently.

#include <cstddef>
#include <vector>

#include "core/group.hpp"
#include "core/segment.hpp"
#include "sort/pesort.hpp"

namespace pwss::core {

template <typename K, typename V, typename Target>
struct BatchScratch {
  using Pending = PendingOp<K, V, Target>;

  /// Tagged + entropy-sorted copy of the incoming batch. Groups reference
  /// it by index, so it must stay unmoved for the whole batch.
  std::vector<Pending> tagged;
  /// PESort partition + classification + pivot-median buffers.
  sort::PESortScratch<Pending, K> sort;
  /// Coalesced index groups still looking for their item.
  std::vector<IndexGroup<K>> pending;
  /// Groups that continue past the current segment (swapped with pending).
  std::vector<IndexGroup<K>> unfinished;
  /// Keys extracted per segment sweep.
  std::vector<K> keys;
  /// Items found in the current segment.
  std::vector<typename Segment<K, V>::Item> found;
  /// Successful searches/updates shifting one segment forward.
  std::vector<typename Segment<K, V>::Item> promote;
  /// Items in transit during capacity restoration / overflow carving.
  std::vector<typename Segment<K, V>::Item> moved;
  /// Ordered-phase query indices (sorted for duplicate combining) and the
  /// distinct representatives actually answered.
  std::vector<std::size_t> ordered_idx;
  std::vector<std::size_t> ordered_reps;
  /// Segment-internal buffers (tree batch I/O, restamping).
  SegmentScratch<K, V> seg;

  /// Drops everything the arena holds (capacity included); handy in tests.
  void release() { *this = BatchScratch(); }
};

}  // namespace pwss::core
