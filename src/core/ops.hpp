#pragma once
// Operation and result types shared by every map in the library (M0, M1,
// M2, baselines' batched adapters).

#include <cstdint>
#include <optional>
#include <vector>

namespace pwss::core {

enum class OpType : std::uint8_t { kSearch, kInsert, kErase };

template <typename K, typename V>
struct Op {
  OpType type;
  K key;
  V value{};  // payload for inserts

  static Op search(K k) { return {OpType::kSearch, std::move(k), V{}}; }
  static Op insert(K k, V v) {
    return {OpType::kInsert, std::move(k), std::move(v)};
  }
  static Op erase(K k) { return {OpType::kErase, std::move(k), V{}}; }
};

/// Result of one operation.
///  * search: success == found, value == the found value
///  * insert: success == newly inserted (false means updated in place)
///  * erase:  success == key was present, value == the removed value
template <typename V>
struct Result {
  bool success = false;
  std::optional<V> value;
};

}  // namespace pwss::core
