#pragma once
// Operation and result types shared by every map in the library (M0, M1,
// M2, baselines' batched adapters) — protocol v2.
//
// v1 exposed search/insert/erase with a bool-plus-optional result. v2 opens
// the *ordered* surface the working-set structures already pay for (every
// segment is a balanced search tree with order statistics): predecessor,
// successor and range-count queries, plus an explicit upsert, and replaces
// the result bool with a ResultStatus enum that distinguishes "inserted"
// from "updated" and carries the matched key for ordered queries.
//
// Semantics:
//   * kSearch       — self-adjusting lookup (counts as an access).
//   * kInsert       — write-either-way: overwrites an existing key (counts
//                     as an access), else inserts. Status kInserted/kUpdated.
//   * kUpsert       — the v2 name for the same write-either-way operation;
//                     kInsert is retained as the v1 spelling.
//   * kErase        — remove; status kErased/kNotFound.
//   * kPredecessor  — greatest key strictly below `key`. Read-only: no
//                     self-adjustment, no recency effect.
//   * kSuccessor    — least key strictly above `key`. Read-only.
//   * kRangeCount   — number of keys in the inclusive range [key, key2].
//                     Read-only; always answered (status kFound).
//
// Ordered kinds do not commute with mutations on *other* keys, so batched
// maps execute a batch as alternating point/ordered phases (see
// M1Map::execute_batch); within an ordered phase identical queries combine
// the same way duplicate point operations do (Section 6.1).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

namespace pwss::core {

/// Monotonic nanoseconds since the steady-clock epoch — the time base of
/// every Op deadline. One clock for the whole protocol so a deadline
/// stamped by a client compares directly against the front end's batch-cut
/// clock read.
inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Converts a relative timeout into the absolute deadline Op carries;
/// zero-duration (and negative) timeouts produce an already-expired
/// deadline, not "no deadline".
inline std::uint64_t deadline_after(std::chrono::nanoseconds timeout) noexcept {
  const auto ns = timeout.count();
  return now_ns() + (ns > 0 ? static_cast<std::uint64_t>(ns) : 0);
}

enum class OpType : std::uint8_t {
  kSearch,
  kInsert,
  kErase,
  kUpsert,       // v2: explicit write-either-way (same effect as kInsert)
  kPredecessor,  // v2 ordered: greatest key < key
  kSuccessor,    // v2 ordered: least key > key
  kRangeCount,   // v2 ordered: |{k : key <= k <= key2}|
};

/// True for the read-only ordered-query kinds (predecessor / successor /
/// range-count), which batched maps execute in separate phases.
constexpr bool is_ordered(OpType t) noexcept {
  return t == OpType::kPredecessor || t == OpType::kSuccessor ||
         t == OpType::kRangeCount;
}

/// True for kinds that can change the key set or a stored value.
constexpr bool is_mutation(OpType t) noexcept {
  return t == OpType::kInsert || t == OpType::kUpsert || t == OpType::kErase;
}

template <typename K, typename V>
struct Op {
  OpType type;
  K key;
  V value{};  // payload for inserts/upserts
  K key2{};   // kRangeCount: inclusive high bound of [key, key2]
  /// Absolute deadline on the now_ns() clock; 0 = none. An op whose
  /// deadline has passed completes with kTimedOut instead of executing —
  /// checked on submission and again at batch-cut boundaries (the op may
  /// still execute if it was already cut into a batch when the deadline
  /// passed; expiry is best-effort, terminal delivery is not).
  std::uint64_t deadline_ns = 0;

  /// Builder-style deadline attachment: Op::search(k).with_deadline(...).
  Op&& with_deadline(std::uint64_t abs_ns) && noexcept {
    deadline_ns = abs_ns;
    return std::move(*this);
  }
  Op&& with_timeout(std::chrono::nanoseconds timeout) && noexcept {
    deadline_ns = deadline_after(timeout);
    return std::move(*this);
  }
  bool expired(std::uint64_t now) const noexcept {
    return deadline_ns != 0 && now >= deadline_ns;
  }

  static Op search(K k) { return {OpType::kSearch, std::move(k), V{}, K{}}; }
  static Op insert(K k, V v) {
    return {OpType::kInsert, std::move(k), std::move(v), K{}};
  }
  static Op upsert(K k, V v) {
    return {OpType::kUpsert, std::move(k), std::move(v), K{}};
  }
  static Op erase(K k) { return {OpType::kErase, std::move(k), V{}, K{}}; }
  static Op predecessor(K k) {
    return {OpType::kPredecessor, std::move(k), V{}, K{}};
  }
  static Op successor(K k) {
    return {OpType::kSuccessor, std::move(k), V{}, K{}};
  }
  static Op range_count(K lo, K hi) {
    return {OpType::kRangeCount, std::move(lo), V{}, std::move(hi)};
  }
};

/// What one operation did. Replaces v1's bool: kInserted vs kUpdated are
/// now distinguishable, and ordered queries report whether a candidate key
/// was matched.
enum class ResultStatus : std::uint8_t {
  kNotFound,  // search/erase/pred/succ found nothing
  kFound,     // search hit; pred/succ matched; range-count answered
  kInserted,  // insert/upsert created the key
  kUpdated,   // insert/upsert overwrote an existing value
  kErased,    // erase removed the key
  // ---- terminal error statuses (overload-robustness layer) ----
  // The op did NOT execute; the map is unchanged by it. Every submitted
  // op reaches exactly one terminal status — fulfilled (one of the five
  // above) or one of these — never both, never neither.
  kOverloaded,   // shed by admission control / buffer or pool rejection
  kTimedOut,     // deadline passed before the op was executed
  kCancelled,    // cancel() observed at a batch-cut boundary
  kUnsupported,  // op kind refused by the backend (e.g. ordered on splay)
  kReadOnly,     // mutation shed: driver degraded to read-only after a
                 // persistence failure (store layer; sticky until restart)
};

/// True for the terminal error statuses: the op was not executed and had
/// no effect on the map. Composes with the v2 statuses — a Result is
/// either fulfilled (one of the five execution statuses, value/matched_key/
/// count meaningful) or errored (one of these, payload fields empty).
constexpr bool is_error(ResultStatus s) noexcept {
  return s == ResultStatus::kOverloaded || s == ResultStatus::kTimedOut ||
         s == ResultStatus::kCancelled || s == ResultStatus::kUnsupported ||
         s == ResultStatus::kReadOnly;
}

/// Result of one operation.
///  * search: kFound/kNotFound, value = the found value
///  * insert/upsert: kInserted/kUpdated
///  * erase: kErased/kNotFound, value = the removed value
///  * predecessor/successor: kFound/kNotFound, matched_key = the key
///    actually matched, value = its value
///  * range-count: kFound, count = |[key, key2]|
///
/// The second template parameter is the key type carried by matched_key;
/// it defaults to V so v1-era spellings like Result<std::uint64_t> (where
/// K == V, the common case in tests and examples) keep compiling.
template <typename V, typename K = V>
struct Result {
  ResultStatus status = ResultStatus::kNotFound;
  std::optional<V> value{};
  std::optional<K> matched_key{};  // ordered queries: the key matched
  std::uint64_t count = 0;         // kRangeCount: keys in [key, key2]

  /// v1 compatibility accessor: the old bool. True exactly when v1
  /// reported true — search hit, fresh insert, successful erase, matched
  /// ordered query. An upsert/insert that updated in place reports false,
  /// matching v1's "insert on existing key" convention.
  constexpr bool success() const noexcept {
    return status == ResultStatus::kFound ||
           status == ResultStatus::kInserted ||
           status == ResultStatus::kErased;
  }

  /// True when the op reached a terminal ERROR status (shed, expired,
  /// cancelled, or unsupported) — it never executed. Distinct from
  /// !success(): a kNotFound search executed fine, it just missed.
  constexpr bool is_error() const noexcept { return core::is_error(status); }

  /// An error Result for one terminal error status (the shape every shed/
  /// expiry/cancellation path delivers).
  static constexpr Result error(ResultStatus s) noexcept {
    Result r;
    r.status = s;
    return r;
  }
};

/// An ordered query's result as the blocking APIs' optional (key, value)
/// pair: the matched entry on kFound, nullopt otherwise.
template <typename V, typename K>
std::optional<std::pair<K, V>> ordered_pair(Result<V, K> r) {
  if (r.status != ResultStatus::kFound) return std::nullopt;
  return std::pair<K, V>{std::move(*r.matched_key), std::move(*r.value)};
}

/// Splits a batch into maximal same-phase runs (point vs ordered kinds)
/// and invokes point_fn(begin, end) / ordered_fn(begin, end) on each in
/// submission order — the phase slicing every batched execution path
/// uses so ordered queries observe exactly the point operations that
/// precede them.
template <typename K, typename V, typename PointFn, typename OrderedFn>
void for_each_phase(std::span<const Op<K, V>> ops, PointFn&& point_fn,
                    OrderedFn&& ordered_fn) {
  std::size_t i = 0;
  while (i < ops.size()) {
    const bool ordered = is_ordered(ops[i].type);
    std::size_t j = i + 1;
    while (j < ops.size() && is_ordered(ops[j].type) == ordered) ++j;
    if (ordered) {
      ordered_fn(i, j);
    } else {
      point_fn(i, j);
    }
    i = j;
  }
}

}  // namespace pwss::core
