#pragma once
// Future — the movable handle of the asynchronous submission API
// (protocol v2). Driver::submit(op) returns one; the caller overlaps as
// many outstanding operations as it likes from a single thread and
// collects results with get()/ready(), instead of parking one blocking
// thread per operation.
//
// The shared state is an OpTicket (the same zero-copy completion slot the
// blocking path uses) extended with an intrusive reference count and an
// optional completion callback. Two references exist at submission time —
// the in-flight operation's and the future's — so the state stays alive
// until both the map has fulfilled it and the caller has let go, whichever
// order that happens in. One heap allocation per future; callers that want
// zero-allocation submission use the raw OpTicket overload of submit()
// with a caller-owned (stack or arena) ticket.

#include <atomic>
#include <cassert>
#include <functional>
#include <utility>

#include "core/async_map.hpp"
#include "core/ops.hpp"

namespace pwss::core {

namespace detail {

/// Heap-shared completion state behind Future and the completion-callback
/// submit form. The producer reference is dropped by the on_complete hook
/// (running on the fulfilling thread, after the result is published); the
/// consumer reference by the Future's destructor.
template <typename V, typename K>
struct FutureState : OpTicket<V, K> {
  std::atomic<int> refs{2};
  /// Invoked on the fulfilling thread with the completed result; set only
  /// by the completion-callback submit form.
  std::function<void(Result<V, K>&&)> completion;

  FutureState() { this->on_complete = &FutureState::producer_done; }

  void drop_ref() {
    if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
  }

  static void producer_done(OpTicket<V, K>* t) {
    auto* s = static_cast<FutureState*>(t);
    if (s->completion) s->completion(Result<V, K>(s->result));
    s->drop_ref();
  }
};

}  // namespace detail

/// Movable one-shot handle to an asynchronous operation's result.
template <typename V, typename K = V>
class Future {
 public:
  Future() noexcept = default;
  explicit Future(detail::FutureState<V, K>* state) noexcept : state_(state) {}
  Future(Future&& other) noexcept : state_(std::exchange(other.state_, nullptr)) {}
  Future& operator=(Future&& other) noexcept {
    if (this != &other) {
      release();
      state_ = std::exchange(other.state_, nullptr);
    }
    return *this;
  }
  Future(const Future&) = delete;
  Future& operator=(const Future&) = delete;
  ~Future() { release(); }

  /// True iff this future refers to a submitted operation.
  bool valid() const noexcept { return state_ != nullptr; }

  /// True iff the result is available (non-blocking).
  bool ready() const noexcept {
    assert(state_ != nullptr);
    return state_->ready.load(std::memory_order_acquire);
  }

  /// Blocks until the result is available and returns it. The future stays
  /// valid; repeated get() returns the same result.
  Result<V, K> get() {
    assert(state_ != nullptr);
    return state_->wait();
  }

  /// Requests cancellation of the underlying operation. Best-effort: the
  /// op completes with status kCancelled only if the request is observed
  /// before it is cut into an executing batch; otherwise it completes
  /// with its real result. Either way get() returns exactly one terminal
  /// result — never both a fulfilled value and kCancelled.
  void cancel() noexcept {
    assert(state_ != nullptr);
    state_->cancel();
  }

 private:
  void release() noexcept {
    if (state_ != nullptr) {
      state_->drop_ref();
      state_ = nullptr;
    }
  }

  detail::FutureState<V, K>* state_ = nullptr;
};

}  // namespace pwss::core
