#pragma once
// M0 — the amortized sequential working-set map of Section 5. Like
// Iacono's structure it keeps segments S[0..l] with |S[k]| = 2^(2^k), every
// segment full except possibly the last; unlike Iacono it localizes the
// self-adjustment:
//   * a search hit in S[k] (k > 0) moves the item only to the front of
//     S[k-1] (not all the way to S[0]), and the least recent item of
//     S[k-1] is shifted back to the front of S[k];
//   * an insertion goes to the *back* of the last segment;
//   * a deletion pulls the most recent item of each later segment back by
//     one segment to refill the hole.
// Theorem 7: the total cost satisfies the working-set bound. This localized
// scheme is exactly what M2 pipelines, so M0 doubles as the reference
// implementation ("model") in M1/M2 equivalence tests.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "core/ops.hpp"
#include "core/segment.hpp"
#include "util/validate.hpp"

namespace pwss::core {

template <typename K, typename V>
class M0Map {
 public:
  using Item = typename Segment<K, V>::Item;

  /// Sequential map: a single-shard pool domain (no scheduler). The pools
  /// live behind a unique_ptr so the map stays movable (AsyncMap takes it
  /// by value) without invalidating the segments' pool pointers.
  M0Map() : pools_(std::make_unique<SegmentPools<K, V>>(nullptr)) {}

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t segment_count() const noexcept { return segments_.size(); }

  /// Sorted drain of the full contents for the checkpoint writer
  /// (store/snapshot.hpp): appends every (key, value) in ascending key
  /// order. Recency stamps are NOT exported — a restored map starts with
  /// a fresh working set (documented in DESIGN.md "Durability").
  void export_entries(std::vector<std::pair<K, V>>& out) const {
    const std::size_t first = out.size();
    out.reserve(first + size_);
    for (const auto& seg : segments_) {
      seg.for_each([&](const K& k, const V& v, std::uint64_t) {
        out.emplace_back(k, v);
      });
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  /// Search with self-adjustment. Returns the value if found.
  std::optional<V> search(const K& key) {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      // Overlap S[k+1]'s probe with S[k]'s: segment order is static, so
      // the next candidate's entry lines can be requested early.
      if (k + 1 < segments_.size()) segments_[k + 1].prefetch();
      auto item = segments_[k].extract(key);
      if (!item) continue;
      probes_.note_hit(k);
      V result = item->value;
      if (k == 0) {
        segments_[0].insert_front(std::move(*item));
      } else {
        // Promote by one segment; the least recent item of S[k-1] swaps
        // back to the *front* of S[k] (it is more recent, in the abstract
        // list R, than everything already in S[k]).
        auto demoted = segments_[k - 1].extract_least_recent();
        segments_[k - 1].insert_front(std::move(*item));
        if (demoted) segments_[k].insert_front(std::move(*demoted));
      }
      return result;
    }
    probes_.note_miss();
    return std::nullopt;
  }

  /// Read-only lookup (no self-adjustment).
  const V* peek(const K& key) const {
    for (const auto& seg : segments_) {
      if (const auto* e = seg.peek(key)) return &e->first;
    }
    return nullptr;
  }

  /// Per-depth accounting of self-adjusting searches (hits bucketed by the
  /// segment that answered, misses counted separately). Single-owner, like
  /// every other M0 operation.
  const ProbeDepthCounts& probe_depth_counts() const noexcept {
    return probes_;
  }
  void reset_probe_depth_counts() noexcept { probes_.reset(); }

  /// Insert at the back of the last segment; an existing key is treated as
  /// an update-access (M1's rule, Section 6.1). Returns true iff new.
  bool insert(const K& key, V value) {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (auto* e = segments_[k].peek(key)) {
        (void)e;
        // Update = access: run the search promotion, then overwrite.
        search(key);
        overwrite(key, std::move(value));
        return false;
      }
    }
    if (segments_.empty()) segments_.emplace_back(pools_.get());
    std::size_t last = segments_.size() - 1;
    if (segments_[last].size() >= segment_capacity(last)) {
      segments_.emplace_back(pools_.get());
      ++last;
    }
    segments_[last].insert_back(Item{key, std::move(value), 0});
    ++size_;
    return true;
  }

  /// Deletion with hole repair: the most recent item of each later segment
  /// moves to the back of the previous one. Returns the removed value.
  std::optional<V> erase(const K& key) {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      auto item = segments_[k].extract(key);
      if (!item) continue;
      --size_;
      for (std::size_t i = k; i + 1 < segments_.size(); ++i) {
        auto pulled = segments_[i + 1].extract_most_recent();
        if (!pulled) break;
        segments_[i].insert_back(std::move(*pulled));
      }
      while (!segments_.empty() && segments_.back().empty()) {
        segments_.pop_back();
      }
      return std::move(item->value);
    }
    return std::nullopt;
  }

  // ---- ordered queries (protocol v2; read-only, no recency effect) -------

  /// Greatest (key, value) strictly below `key`, across all segments.
  std::optional<std::pair<K, V>> predecessor(const K& key) const {
    return ordered_pair(ordered(OpType::kPredecessor, key, key));
  }

  /// Least (key, value) strictly above `key`, across all segments.
  std::optional<std::pair<K, V>> successor(const K& key) const {
    return ordered_pair(ordered(OpType::kSuccessor, key, key));
  }

  /// Number of keys in the inclusive range [lo, hi].
  std::uint64_t range_count(const K& lo, const K& hi) const {
    return ordered(OpType::kRangeCount, lo, hi).count;
  }

  /// Executes a batch sequentially (reference semantics for M1/M2 tests).
  std::vector<Result<V, K>> execute_batch(std::span<const Op<K, V>> ops) {
    std::vector<Result<V, K>> results;
    execute_batch(ops, results);
    return results;
  }

  /// Same batch, results into a caller-owned buffer whose capacity is
  /// reused across batches (cleared first).
  void execute_batch(std::span<const Op<K, V>> ops,
                     std::vector<Result<V, K>>& results) {
    results.clear();
    results.reserve(ops.size());
    for (const auto& op : ops) {
      Result<V, K> r;
      switch (op.type) {
        case OpType::kSearch: {
          auto v = search(op.key);
          r.status = v.has_value() ? ResultStatus::kFound
                                   : ResultStatus::kNotFound;
          r.value = std::move(v);
          break;
        }
        case OpType::kInsert:
        case OpType::kUpsert:
          r.status = insert(op.key, op.value) ? ResultStatus::kInserted
                                              : ResultStatus::kUpdated;
          break;
        case OpType::kErase: {
          auto v = erase(op.key);
          r.status = v.has_value() ? ResultStatus::kErased
                                   : ResultStatus::kNotFound;
          r.value = std::move(v);
          break;
        }
        case OpType::kPredecessor:
        case OpType::kSuccessor:
        case OpType::kRangeCount:
          r = ordered(op.type, op.key, op.key2);
          break;
      }
      results.push_back(std::move(r));
    }
  }

  /// Index of the segment currently holding `key` (for rank-invariant
  /// tests), or nullopt.
  std::optional<std::size_t> segment_of(const K& key) const {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (segments_[k].peek(key)) return k;
    }
    return std::nullopt;
  }

  const std::vector<Segment<K, V>>& segments() const { return segments_; }

  /// Validation: segment structure sound, capacities respected (all full
  /// but the last).
  bool check_invariants() const { return validate().empty(); }

  /// Deep structural check with a precise failure description: every
  /// segment's own invariants, the doubly-exponential capacity bound, the
  /// all-full-except-last occupancy rule, the size_ accounting, and the
  /// pool-domain accounting (every tree-represented segment holds exactly
  /// one key-map and one recency-map node per item, and nothing else
  /// draws from this instance's pools). Empty string = OK.
  std::string validate() const {
    util::Validator v("m0: ");
    std::size_t total = 0;
    std::uint64_t tree_items = 0;
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      const auto& seg = segments_[k];
      if (!v.absorb(seg.validate(), "segment[", k, "]: ")) {
        return std::move(v).take();
      }
      if (!v.require(seg.size() <= segment_capacity(k), "segment[", k,
                     "] holds ", seg.size(), " items, over its capacity ",
                     segment_capacity(k))) {
        return std::move(v).take();
      }
      if (!v.require(k + 1 == segments_.size() ||
                         seg.size() == segment_capacity(k),
                     "segment[", k, "] holds ", seg.size(),
                     " items but only the last segment may be partial ",
                     "(capacity ", segment_capacity(k), ")")) {
        return std::move(v).take();
      }
      total += seg.size();
      if (!seg.is_flat()) tree_items += seg.size();
    }
    if (!v.require(total == size_, "size accounting broken: segments hold ",
                   total, " items but size_=", size_)) {
      return std::move(v).take();
    }
    if (!v.require(pools_->key_pool.live_nodes() == tree_items,
                   "key-pool accounting broken: ",
                   pools_->key_pool.live_nodes(), " live nodes but ",
                   tree_items, " items live in tree-represented segments")) {
      return std::move(v).take();
    }
    if (!v.require(pools_->rec_pool.live_nodes() == tree_items,
                   "recency-pool accounting broken: ",
                   pools_->rec_pool.live_nodes(), " live nodes but ",
                   tree_items, " items live in tree-represented segments")) {
      return std::move(v).take();
    }
    if (!v.absorb(pools_->key_pool.validate(), "key-pool: ")) {
      return std::move(v).take();
    }
    v.absorb(pools_->rec_pool.validate(), "recency-pool: ");
    return std::move(v).take();
  }

 private:
  Result<V, K> ordered(OpType type, const K& key, const K& key2) const {
    return ordered_query_over<K, V>(type, key, key2, [&](auto&& fn) {
      for (const auto& seg : segments_) fn(seg);
    });
  }

  void overwrite(const K& key, V value) {
    for (auto& seg : segments_) {
      if (auto* e = seg.peek(key)) {
        e->first = std::move(value);
        return;
      }
    }
  }

  // Pool domain first: segments (declared after) die before their pools.
  std::unique_ptr<SegmentPools<K, V>> pools_;
  std::vector<Segment<K, V>> segments_;
  std::size_t size_ = 0;
  ProbeDepthCounts probes_;
};

static_assert(MapBackend<M0Map<int, int>, int, int>);

}  // namespace pwss::core
