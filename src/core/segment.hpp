#pragma once
// Segment S[k] of a working-set structure: a set of items ordered two ways,
// by key (the key-map) and by recency (the recency-map) — Section 5 of the
// paper. Capacity of segment k is 2^(2^k); the recency order across the
// whole structure is the concatenation of segments (most recent first
// within each).
//
// Recency within a segment is represented by a 64-bit stamp: larger stamp
// = more recent. Stamps are strictly *per-segment*: the abstract list R of
// Lemma 6 orders items by segment first and recency within the segment
// second, and M0/M2's localized promotion means an item's arrival position
// (front or back of the destination segment) is NOT a function of its
// global access time. Every arrival is therefore restamped by the
// destination segment: front arrivals above the current maximum, back
// arrivals below the current minimum, preserving the relative order of a
// batch of arrivals.
//
// A segment has TWO physical representations behind one logical API:
//
//  * flat  (size <= kFlatSegmentMax): a FlatSegment — two parallel sorted
//    arrays, branchless binary-search probes, memmove point edits, merge
//    batch edits. This is where S[0]/S[1]/S[2] (2+4+16 items) live, which
//    is where working-set-friendly workloads resolve almost every probe.
//  * tree  (larger): the JTree pair — the key-map stores
//    key -> (value, stamp); the recency-map stores stamp -> key with order
//    statistics standing in for the paper's leaf-to-leaf "direct pointers"
//    (reverse-indexing = rank/select).
//
// Dispatch rules: a segment starts flat; an insert that would push it past
// kFlatSegmentMax first *promotes* (bulk-builds both trees via
// JTree::from_sorted from the already-sorted arrays, drawing nodes from
// the segment's pool domain); an extract that brings a tree segment down
// to kFlatSegmentDemote (= kFlatSegmentMax/2, hysteresis so a segment
// oscillating at the boundary doesn't thrash) *demotes* back, bulk-
// recycling every node in one pool splice. The stamp generator survives
// representation changes, so recency semantics never notice.

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/flat_segment.hpp"
#include "core/ops.hpp"
#include "tree/jtree.hpp"
#include "util/schedule_points.hpp"
#include "util/validate.hpp"

namespace pwss::core {

/// Allocates recency stamps for one segment. Front stamps grow from 2^62
/// upward, back stamps shrink from 2^62-1 downward; 2^62 arrivals in each
/// direction before exhaustion (unreachable in practice; asserted).
class StampGen {
 public:
  std::uint64_t fresh_front() noexcept {
    assert(hi_ != ~0ULL);
    return ++hi_;
  }
  std::uint64_t fresh_back() noexcept {
    assert(lo_ != 0);
    return lo_--;
  }

 private:
  std::uint64_t hi_ = 1ULL << 62;
  std::uint64_t lo_ = (1ULL << 62) - 1;
};

/// Capacity of segment k: 2^(2^k), saturated so it never overflows.
constexpr std::uint64_t segment_capacity(std::size_t k) noexcept {
  const std::uint64_t exponent = k >= 6 ? 62 : (1ULL << k);
  return 1ULL << exponent;
}

/// Per-depth probe accounting: hits[b] counts probes answered at segment
/// depth b (bucket 3 aggregates every depth >= 3, i.e. the tree-backed
/// deep segments), misses counts probes for absent keys. Plain counters —
/// the owner is the structure's single-owner operation path (M0's
/// sequential contract, M1's batch owner), never concurrent writers.
struct ProbeDepthCounts {
  std::uint64_t hits[4] = {0, 0, 0, 0};
  std::uint64_t misses = 0;

  void note_hit(std::size_t depth) noexcept {
    ++hits[depth < 3 ? depth : 3];
  }
  void note_miss() noexcept { ++misses; }
  void reset() noexcept {
    hits[0] = hits[1] = hits[2] = hits[3] = 0;
    misses = 0;
  }
  std::uint64_t total() const noexcept {
    return hits[0] + hits[1] + hits[2] + hits[3] + misses;
  }
};

/// One node-pool domain for a map instance: every segment of the instance
/// allocates its key-map nodes from `key_pool` and its recency-map nodes
/// from `rec_pool`. Sharing the domain across the instance's segments is
/// what makes segment→segment batch transfers heap-free at steady state —
/// the extract side recycles exactly the nodes the insert side re-draws.
/// Pools are never shared across instances (driver_test's arena/pool
/// independence guarantee); the owner must keep the pools alive until
/// every segment is gone (declare the pools before the segments).
template <typename K, typename V>
struct SegmentPools {
  using KeyTree = tree::JTree<K, std::pair<V, std::uint64_t>>;
  using RecTree = tree::JTree<std::uint64_t, K>;

  typename KeyTree::Pool key_pool;
  typename RecTree::Pool rec_pool;

  /// The scheduler the instance forks batch work on (null for sequential
  /// instances): the pools shard their free lists by its worker ids.
  explicit SegmentPools(sched::Scheduler* scheduler = nullptr)
      : key_pool(scheduler), rec_pool(scheduler) {}
};

/// Reusable buffers for a Segment's batched operations. Owned by the
/// structure that drives the batches (one arena per M1 instance, inside
/// core::BatchScratch) and passed down by pointer; a null scratch falls
/// back to per-call buffers. Never share one arena across concurrently
/// mutated segments — the owner must serialize batch calls, which M1's
/// single-owner batch contract already guarantees.
template <typename K, typename V>
struct SegmentScratch {
  std::vector<std::optional<std::pair<V, std::uint64_t>>> entries;
  std::vector<std::uint64_t> stamps;
  std::vector<std::optional<K>> removed_keys;
  std::vector<K> keys;
  std::vector<std::pair<K, std::pair<V, std::uint64_t>>> key_entries;
  std::vector<std::pair<std::uint64_t, K>> rec_entries;
  std::vector<std::size_t> idx;
};

template <typename K, typename V>
class Segment {
 public:
  using Item = SegmentItem<K, V>;

  Segment() = default;
  /// Binds both trees to the instance's pool domain (null = unpooled).
  explicit Segment(SegmentPools<K, V>* pools)
      : by_key_(pools != nullptr ? &pools->key_pool : nullptr),
        by_recency_(pools != nullptr ? &pools->rec_pool : nullptr) {}

  /// Late binding for segments that must be default-constructed first
  /// (vector-of-count members, M2's Stage); only legal while empty.
  void bind_pools(SegmentPools<K, V>* pools) noexcept {
    by_key_.set_pool(pools != nullptr ? &pools->key_pool : nullptr);
    by_recency_.set_pool(pools != nullptr ? &pools->rec_pool : nullptr);
  }

  std::size_t size() const noexcept {
    return is_tree_ ? by_key_.size() : flat_.size();
  }
  bool empty() const noexcept { return size() == 0; }

  /// True while the segment uses the flat (sorted-array) representation.
  bool is_flat() const noexcept { return !is_tree_; }

  /// Test/bench hook: converts to the tree representation and pins it
  /// there (demotion disabled), so the two layouts can be A/B-compared
  /// through the identical public API.
  void debug_force_tree() {
    pin_tree_ = true;
    if (!is_tree_) promote(nullptr);
  }

  /// Requests the representation's entry lines ahead of a probe: the flat
  /// arrays' first lines, or the key-map root. Used by the M1/M2 batch
  /// sweeps to overlap the next segment's memory latency with the current
  /// segment's work.
  void prefetch() const noexcept {
    if (is_tree_) {
      by_key_.prefetch_root();
    } else {
      flat_.prefetch();
    }
  }

  // ---- point operations (used by M0 / Iacono / small paths) -------------

  /// Value+stamp for key, or nullptr (no recency effect).
  const std::pair<V, std::uint64_t>* peek(const K& key) const {
    return is_tree_ ? by_key_.find(key) : flat_.peek(key);
  }
  std::pair<V, std::uint64_t>* peek(const K& key) {
    return is_tree_ ? by_key_.find(key) : flat_.peek(key);
  }

  /// Removes the item with `key` if present.
  std::optional<Item> extract(const K& key_ref) {
    if (!is_tree_) return flat_.extract(key_ref);
    // Copy first: the caller's reference may point into one of our trees
    // (e.g. the recency map's value we are about to delete).
    K key = key_ref;
    auto entry = by_key_.erase(key);
    if (!entry) return std::nullopt;
    by_recency_.erase(entry->second);
    Item out{std::move(key), std::move(entry->first), entry->second};
    maybe_demote();
    return out;
  }

  /// Inserts one item at the front (most recent); the stamp is reassigned.
  void insert_front(Item item) {
    item.stamp = stamps_.fresh_front();
    insert_item(std::move(item));
  }

  /// Inserts one item at the back (least recent); the stamp is reassigned.
  void insert_back(Item item) {
    item.stamp = stamps_.fresh_back();
    insert_item(std::move(item));
  }

  /// Inserts a batch at the front, preserving the arrivals' relative
  /// recency (larger incoming stamp stays more recent). Items may be in any
  /// order; sorted by key internally. The span's items are consumed
  /// (moved-from); the caller keeps the backing buffer for reuse.
  void insert_front_batch(std::span<Item> items, const tree::ParCtx& ctx = {},
                          SegmentScratch<K, V>* s = nullptr) {
    restamp(items, /*front=*/true, s);
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.key < b.key; });
    insert_items(items, ctx, s);
  }
  void insert_front_batch(std::vector<Item> items,
                          const tree::ParCtx& ctx = {}) {
    insert_front_batch(std::span<Item>(items), ctx);
  }

  /// Inserts a batch at the back, preserving relative recency.
  void insert_back_batch(std::span<Item> items, const tree::ParCtx& ctx = {},
                         SegmentScratch<K, V>* s = nullptr) {
    restamp(items, /*front=*/false, s);
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.key < b.key; });
    insert_items(items, ctx, s);
  }
  void insert_back_batch(std::vector<Item> items,
                         const tree::ParCtx& ctx = {}) {
    insert_back_batch(std::span<Item>(items), ctx);
  }

  /// Inserts an item; the stamp must be distinct from all stamps present.
  void insert_item(Item item) {
    if (!is_tree_) {
      if (flat_.size() < kFlatSegmentMax) {
        flat_.insert(std::move(item));
        return;
      }
      promote(nullptr);
    }
    [[maybe_unused]] const bool fresh_key =
        by_key_.insert(item.key, {std::move(item.value), item.stamp});
    [[maybe_unused]] const bool fresh_stamp =
        by_recency_.insert(item.stamp, item.key);
    assert(fresh_key && fresh_stamp);
  }

  // ---- ordered queries (protocol v2) -------------------------------------
  // Read-only against the key-map: no recency effect, no restructuring.
  // Pointers valid until the next mutation.

  /// Entry with the greatest key strictly below `key` in this segment.
  std::pair<const K*, const V*> predecessor(const K& key) const {
    if (!is_tree_) return flat_.predecessor(key);
    auto [k, e] = by_key_.predecessor(key);
    return {k, e != nullptr ? &e->first : nullptr};
  }

  /// Entry with the least key strictly above `key` in this segment.
  std::pair<const K*, const V*> successor(const K& key) const {
    if (!is_tree_) return flat_.successor(key);
    auto [k, e] = by_key_.successor(key);
    return {k, e != nullptr ? &e->first : nullptr};
  }

  /// Number of this segment's keys in the inclusive range [lo, hi].
  std::size_t range_count(const K& lo, const K& hi) const {
    return is_tree_ ? by_key_.range_count(lo, hi) : flat_.range_count(lo, hi);
  }

  std::optional<Item> extract_least_recent() {
    if (empty()) return std::nullopt;
    if (!is_tree_) return flat_.extract_at(flat_.least_recent_idx());
    const K key = by_recency_.at(0).second;  // copy before mutating
    return extract(key);
  }

  std::optional<Item> extract_most_recent() {
    if (empty()) return std::nullopt;
    if (!is_tree_) return flat_.extract_at(flat_.most_recent_idx());
    const K key = by_recency_.at(by_recency_.size() - 1).second;
    return extract(key);
  }

  /// Key of the least-recent item (for inspection/tests).
  std::optional<K> least_recent_key() const {
    if (empty()) return std::nullopt;
    if (!is_tree_) return flat_.key_at(flat_.least_recent_idx());
    return by_recency_.at(0).second;
  }

  // ---- batched operations (used by M1 / M2) ------------------------------

  /// Removes every present key from `keys` (sorted, distinct); appends the
  /// removed items to `out` sorted by key. `out` is cleared first, so a
  /// caller-owned buffer keeps its capacity across batches.
  void extract_by_keys(std::span<const K> keys, std::vector<Item>& out,
                       const tree::ParCtx& ctx = {},
                       SegmentScratch<K, V>* s = nullptr) {
    out.clear();
    if (!is_tree_) {
      flat_.extract_by_keys(keys, out);
      return;
    }
    SegmentScratch<K, V> local;
    SegmentScratch<K, V>& sc = s ? *s : local;
    by_key_.multi_extract(keys, sc.entries, ctx);
    sc.stamps.clear();
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (sc.entries[i]) {
        out.push_back(Item{keys[i], std::move(sc.entries[i]->first),
                           sc.entries[i]->second});
        sc.stamps.push_back(sc.entries[i]->second);
      }
    }
    std::sort(sc.stamps.begin(), sc.stamps.end());
    by_recency_.multi_extract(sc.stamps, sc.removed_keys, ctx);
    maybe_demote();
  }
  std::vector<Item> extract_by_keys(std::span<const K> keys,
                                    const tree::ParCtx& ctx = {}) {
    std::vector<Item> found;
    extract_by_keys(keys, found, ctx);
    return found;
  }

  /// Looks up keys without removing; out[i] is the (value, stamp) entry or
  /// nullptr. Pointers valid until the next mutation.
  void find_batch(std::span<const K> keys,
                  std::vector<const std::pair<V, std::uint64_t>*>& out,
                  const tree::ParCtx& ctx = {}) const {
    if (!is_tree_) {
      flat_.find_batch(keys, out);
      return;
    }
    by_key_.multi_find(keys, out, ctx);
  }

  /// Inserts items (sorted by key, distinct keys, distinct stamps). The
  /// span's values are moved out; the caller keeps the backing buffer.
  void insert_items(std::span<Item> items, const tree::ParCtx& ctx = {},
                    SegmentScratch<K, V>* s = nullptr) {
    if (items.empty()) return;
    if (!is_tree_) {
      if (flat_.size() + items.size() <= kFlatSegmentMax) {
        flat_.merge_insert(items);
        return;
      }
      promote(s);  // overflow: spill to the tree representation
    }
    SegmentScratch<K, V> local;
    SegmentScratch<K, V>& sc = s ? *s : local;
    sc.key_entries.clear();
    sc.key_entries.reserve(items.size());
    for (auto& it : items) {
      sc.key_entries.emplace_back(
          it.key, std::pair<V, std::uint64_t>{std::move(it.value), it.stamp});
    }
    by_key_.multi_insert(sc.key_entries, ctx);
    sc.rec_entries.clear();
    sc.rec_entries.reserve(items.size());
    for (auto& it : items) sc.rec_entries.emplace_back(it.stamp, it.key);
    std::sort(sc.rec_entries.begin(), sc.rec_entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    by_recency_.multi_insert(sc.rec_entries, ctx);
  }
  void insert_items(std::vector<Item> items, const tree::ParCtx& ctx = {}) {
    insert_items(std::span<Item>(items), ctx);
  }

  /// Removes the `c` least-recent items into `out` (cleared), sorted by key.
  void extract_least_recent(std::size_t c, std::vector<Item>& out,
                            const tree::ParCtx& ctx = {},
                            SegmentScratch<K, V>* s = nullptr) {
    if (!is_tree_) {
      out.clear();
      flat_.extract_by_recency(c, /*least=*/true, out);
      return;
    }
    extract_by_recency(by_recency_.extract_prefix(c), out, ctx, s);
    maybe_demote();
  }
  std::vector<Item> extract_least_recent(std::size_t c,
                                         const tree::ParCtx& ctx = {}) {
    std::vector<Item> out;
    extract_least_recent(c, out, ctx);
    return out;
  }

  /// Removes the `c` most-recent items into `out` (cleared), sorted by key.
  void extract_most_recent(std::size_t c, std::vector<Item>& out,
                           const tree::ParCtx& ctx = {},
                           SegmentScratch<K, V>* s = nullptr) {
    if (!is_tree_) {
      out.clear();
      flat_.extract_by_recency(c, /*least=*/false, out);
      return;
    }
    extract_by_recency(by_recency_.extract_suffix(c), out, ctx, s);
    maybe_demote();
  }
  std::vector<Item> extract_most_recent(std::size_t c,
                                        const tree::ParCtx& ctx = {}) {
    std::vector<Item> out;
    extract_most_recent(c, out, ctx);
    return out;
  }

  /// Removes everything; returned sorted by key.
  std::vector<Item> extract_all(const tree::ParCtx& ctx = {}) {
    return extract_least_recent(size(), ctx);
  }

  /// In-order (by key) visit of (key, value, stamp).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    if (!is_tree_) {
      flat_.for_each(fn);
      return;
    }
    by_key_.for_each([&](const K& k, const std::pair<V, std::uint64_t>& e) {
      fn(k, e.first, e.second);
    });
  }

  /// Structural validation: representation invariants hold, both orders
  /// cover the same items, stamps distinct.
  bool check_invariants() const { return validate().empty(); }

  /// Deep representation check with a precise failure description.
  /// Flat: the flat arrays' own invariants, both trees empty, stamps
  /// distinct. Tree: both trees' own invariants, equal sizes, the
  /// recency<->key bijection, and the demotion hysteresis (an unpinned
  /// tree segment at or below kFlatSegmentDemote should have demoted on
  /// the mutation that shrank it). Empty string = OK.
  std::string validate() const {
    util::Validator v("segment: ");
    if (!v.require(!pin_tree_ || is_tree_,
                   "pinned to the tree representation but currently flat")) {
      return std::move(v).take();
    }
    if (!is_tree_) {
      if (!v.absorb(flat_.validate(), "")) return std::move(v).take();
      if (!v.require(by_key_.empty() && by_recency_.empty(),
                     "flat representation but the trees still hold ",
                     by_key_.size(), " key-map / ", by_recency_.size(),
                     " recency-map items")) {
        return std::move(v).take();
      }
      std::vector<std::pair<std::uint64_t, K>> stamps;
      stamps.reserve(flat_.size());
      flat_.for_each([&](const K& k, const V&, std::uint64_t stamp) {
        stamps.emplace_back(stamp, k);
      });
      std::sort(stamps.begin(), stamps.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t i = 1; i < stamps.size(); ++i) {
        if (!v.require(stamps[i - 1].first != stamps[i].first,
                       "duplicate recency stamp ", stamps[i].first,
                       " shared by keys ", stamps[i - 1].second, " and ",
                       stamps[i].second)) {
          return std::move(v).take();
        }
      }
      return std::move(v).take();
    }
    if (!v.absorb(by_key_.validate(), "key-map: ")) return std::move(v).take();
    if (!v.absorb(by_recency_.validate(), "recency-map: ")) {
      return std::move(v).take();
    }
    if (!v.require(by_key_.size() == by_recency_.size(),
                   "tree sizes diverged: key-map holds ", by_key_.size(),
                   " items, recency-map ", by_recency_.size())) {
      return std::move(v).take();
    }
    if (!v.require(pin_tree_ || by_key_.size() > kFlatSegmentDemote,
                   "hysteresis violated: tree representation with size ",
                   by_key_.size(), " <= demote bound ", kFlatSegmentDemote,
                   " and not pinned")) {
      return std::move(v).take();
    }
    by_key_.for_each([&](const K& k, const std::pair<V, std::uint64_t>& e) {
      const K* back = by_recency_.find(e.second);
      if (!v.require(back != nullptr, "recency map is missing stamp ",
                     e.second, " of key ", k)) {
        return;
      }
      v.require(*back == k, "recency map maps stamp ", e.second, " to key ",
                *back, " but the key map says ", k);
    });
    return std::move(v).take();
  }

 private:
  using KeyTree = tree::JTree<K, std::pair<V, std::uint64_t>>;
  using RecTree = tree::JTree<std::uint64_t, K>;

  /// Flat → tree: bulk-builds both trees from the flat arrays. The key
  /// side is already key-sorted, so it feeds JTree::from_sorted directly
  /// (O(n) build, nodes drawn from the segment's pool domain); the recency
  /// side needs one stamp sort of at most kFlatSegmentMax pairs.
  void promote(SegmentScratch<K, V>* s) {
    assert(!is_tree_);
    // Representation change in flight: flat arrays about to drain into
    // freshly built trees (pool draws happen inside from_sorted).
    PWSS_SCHED_POINT("segment.promote");
    SegmentScratch<K, V> local;
    SegmentScratch<K, V>& sc = s ? *s : local;
    sc.key_entries.clear();
    sc.rec_entries.clear();
    flat_.drain_sorted(sc.key_entries, sc.rec_entries);
    std::sort(sc.rec_entries.begin(), sc.rec_entries.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    by_key_ = KeyTree::from_sorted(sc.key_entries, {}, by_key_.pool());
    by_recency_ = RecTree::from_sorted(sc.rec_entries, {}, by_recency_.pool());
    is_tree_ = true;
  }

  /// Tree → flat once the segment shrinks to the demotion bound (half the
  /// flat capacity — hysteresis against representation thrash). The key-
  /// map's in-order walk refills the flat arrays already sorted, then both
  /// trees bulk-recycle their nodes in one pool splice each.
  void maybe_demote() {
    if (!is_tree_ || pin_tree_) return;
    if (by_key_.size() > kFlatSegmentDemote) return;
    // Representation change in flight: tree contents about to walk back
    // into the flat arrays, then both trees bulk-recycle their nodes.
    PWSS_SCHED_POINT("segment.demote");
    flat_.clear();
    by_key_.for_each([&](const K& k, const std::pair<V, std::uint64_t>& e) {
      flat_.append_sorted(k, e);
    });
    by_key_.clear();
    by_recency_.clear();
    is_tree_ = false;
  }

  /// Reassigns stamps so arrivals land at the front (above every stamp in
  /// this segment) or at the back (below), preserving the arrivals'
  /// relative order as given by their incoming stamps.
  void restamp(std::span<Item> items, bool front,
               SegmentScratch<K, V>* s = nullptr) {
    // Order of (index, old stamp) ascending by old stamp.
    SegmentScratch<K, V> local;
    std::vector<std::size_t>& idx = (s ? *s : local).idx;
    idx.resize(items.size());
    for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return items[a].stamp < items[b].stamp;
    });
    if (front) {
      // Least recent arrival gets the smallest fresh-front stamp.
      for (const std::size_t i : idx) items[i].stamp = stamps_.fresh_front();
    } else {
      // Most recent arrival gets the largest fresh-back stamp.
      for (auto it = idx.rbegin(); it != idx.rend(); ++it) {
        items[*it].stamp = stamps_.fresh_back();
      }
    }
  }

  void extract_by_recency(std::vector<std::pair<std::uint64_t, K>> rec_items,
                          std::vector<Item>& out, const tree::ParCtx& ctx,
                          SegmentScratch<K, V>* s = nullptr) {
    SegmentScratch<K, V> local;
    SegmentScratch<K, V>& sc = s ? *s : local;
    sc.keys.clear();
    sc.keys.reserve(rec_items.size());
    for (auto& [stamp, key] : rec_items) sc.keys.push_back(std::move(key));
    std::sort(sc.keys.begin(), sc.keys.end());
    by_key_.multi_extract(sc.keys, sc.entries, ctx);
    out.clear();
    out.reserve(sc.keys.size());
    for (std::size_t i = 0; i < sc.keys.size(); ++i) {
      assert(sc.entries[i] && "recency map referenced a missing key");
      out.push_back(Item{std::move(sc.keys[i]), std::move(sc.entries[i]->first),
                         sc.entries[i]->second});
    }
  }

  FlatSegment<K, V> flat_;
  KeyTree by_key_;
  RecTree by_recency_;
  StampGen stamps_;
  bool is_tree_ = false;   // starts flat; see promote()/maybe_demote()
  bool pin_tree_ = false;  // debug_force_tree() disables demotion
};

/// Answers one read-only ordered query (kPredecessor / kSuccessor /
/// kRangeCount) against the union of segments a structure is partitioned
/// into. `visit` enumerates the segments: it invokes its argument once per
/// Segment<K, V>. A key lives in exactly one segment, so predecessor is
/// the max of per-segment predecessors, successor the min of per-segment
/// successors, and range-count the sum of per-segment counts. Shared by
/// M0, M1, Iacono and M2 (whose segments live in two collections).
template <typename K, typename V, typename Visit>
Result<V, K> ordered_query_over(OpType type, const K& key, const K& key2,
                                Visit&& visit) {
  Result<V, K> r;
  if (type == OpType::kRangeCount) {
    std::uint64_t total = 0;
    visit([&](const Segment<K, V>& seg) { total += seg.range_count(key, key2); });
    r.status = ResultStatus::kFound;
    r.count = total;
    return r;
  }
  const K* best_key = nullptr;
  const V* best_value = nullptr;
  visit([&](const Segment<K, V>& seg) {
    auto [k, v] = type == OpType::kPredecessor ? seg.predecessor(key)
                                               : seg.successor(key);
    if (k == nullptr) return;
    const bool better =
        best_key == nullptr ||
        (type == OpType::kPredecessor ? *best_key < *k : *k < *best_key);
    if (better) {
      best_key = k;
      best_value = v;
    }
  });
  if (best_key != nullptr) {
    r.status = ResultStatus::kFound;
    r.matched_key = *best_key;
    r.value = *best_value;
  }
  return r;
}

}  // namespace pwss::core
