#pragma once
// MapBackend — the one batched-map concept every map in the library
// satisfies: the paper's structures (M0 sequential, M1 batch-parallel, M2
// pipelined) and the baselines' batched adapters (splay, AVL, Iacono,
// locked). A backend executes a key-ordered-combinable batch of operations
// and reports its size; everything else (scheduler lifetime, asynchronous
// front ends, blocking per-op APIs) is layered on top by driver/.
//
// Per-backend capabilities are described by backend_traits<B>, specialized
// next to each backend's definition:
//   * needs_scheduler — the backend's constructor requires a live
//     sched::Scheduler (its batch internals fork parallel work);
//   * native_async    — the backend runs its own asynchronous front end
//     (submit/quiesce, thread-safe blocking calls), like M2; the driver
//     must NOT wrap it in AsyncMap;
//   * supports_async  — the backend may sit behind core::AsyncMap's
//     implicit-batching front end (Section 4 / Appendix A.1). True for any
//     single-owner batched map; false only for natively-async backends,
//     which already provide the same service;
//   * point_thread_safe — the backend's per-op path may be called from
//     many threads without an async front end (the locked baseline);
//   * supports_ordered — the backend executes protocol-v2 ordered kinds
//     (kPredecessor / kSuccessor / kRangeCount). The driver layer and the
//     registry refuse ordered operations for backends without it instead
//     of letting them misbehave (the splay baseline has no order-statistic
//     or bound-search surface).

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/ops.hpp"

namespace pwss::core {

/// The unified batched-map concept. `execute_batch` must realize a legal
/// linearization of the batch: per-key program order preserved, results in
/// submission order (Definition 8). Ordered kinds, when supported, observe
/// every earlier point operation of the batch and none of the later ones
/// (phase slicing — see M1Map::execute_batch).
template <typename B, typename K, typename V>
concept MapBackend = requires(B b, std::span<const Op<K, V>> ops) {
  { b.execute_batch(ops) } -> std::same_as<std::vector<Result<V, K>>>;
  { b.size() } -> std::convertible_to<std::size_t>;
};

/// Default traits: a single-owner sequential batched map (M0-like) that
/// executes the full v2 protocol.
template <typename B>
struct backend_traits {
  static constexpr bool needs_scheduler = false;
  static constexpr bool native_async = false;
  static constexpr bool supports_async = true;
  static constexpr bool point_thread_safe = false;
  static constexpr bool supports_ordered = true;
};

/// True when the backend can also deliver batch results into a
/// caller-owned buffer (capacity reused across batches). The driver layer
/// and AsyncMap's drive loop prefer this surface so a steady stream of
/// batches stops reallocating its results vector.
template <typename B, typename K, typename V>
concept HasBatchInto = requires(B b, std::span<const Op<K, V>> ops,
                                std::vector<Result<V, K>>& out) {
  b.execute_batch(ops, out);
};

/// One batch through the best surface the backend has: the reusable-buffer
/// overload when present, else the allocating one.
template <typename K, typename V, typename B>
void execute_batch_into(B& backend, std::span<const Op<K, V>> ops,
                        std::vector<Result<V, K>>& out) {
  if constexpr (HasBatchInto<B, K, V>) {
    backend.execute_batch(ops, out);
  } else {
    out = backend.execute_batch(ops);
  }
}

/// True when the backend exposes check_invariants(); drivers surface it
/// through Driver::check() so cross-backend tests can validate uniformly.
template <typename B>
concept HasInvariantCheck = requires(B b) {
  { b.check_invariants() } -> std::convertible_to<bool>;
};

/// True when the backend's validator also produces a failure description
/// (validate() returning "" = sound). Drivers surface it through
/// Driver::validate() so cross-backend fuzzers report WHAT broke, not
/// just that something did.
template <typename B>
concept HasDeepValidate = requires(B b) {
  { b.validate() } -> std::convertible_to<std::string>;
};

/// True when the backend reports which segment currently holds a key — the
/// working-set structures' recency depth. Drivers surface it through
/// Driver::depth_of(); non-adjusting backends report nullopt.
template <typename B, typename K>
concept HasRecencyDepth = requires(B b, const K& k) {
  { b.segment_of(k) } -> std::convertible_to<std::optional<std::size_t>>;
};

/// True when the backend also has the classic point-op surface; drivers
/// use it for the sequential fast path instead of singleton batches.
template <typename B, typename K, typename V>
concept HasPointOps = requires(B b, const K& k, V v) {
  b.search(k);
  { b.insert(k, std::move(v)) } -> std::convertible_to<bool>;
  { b.erase(k) } -> std::convertible_to<std::optional<V>>;
};

/// True when the backend can drain its full contents into a sorted
/// (key, value) vector — the multi_extract-style sorted export the
/// checkpoint writer (store/snapshot.hpp) serializes. Must be called
/// quiescent; drivers surface it through Driver::export_sorted(). The
/// backend appends to `out` in ascending key order.
template <typename B, typename K, typename V>
concept HasExportEntries =
    requires(B b, std::vector<std::pair<K, V>>& out) { b.export_entries(out); };

/// True when a point map answers the ordered kinds directly:
/// predecessor/successor return the matched (key, value) pair (by value,
/// normalized shape for adapters) and range_count the inclusive-range
/// cardinality. The batched baseline adapter dispatches ordered batch
/// entries through this surface and refuses them when it is absent.
template <typename M, typename K>
concept HasOrderedPointOps = requires(const M m, const K& k) {
  { m.predecessor(k).has_value() } -> std::convertible_to<bool>;
  { m.successor(k).has_value() } -> std::convertible_to<bool>;
  { m.range_count(k, k) } -> std::convertible_to<std::uint64_t>;
};

}  // namespace pwss::core
