#pragma once
// M1 — the simple batched parallel working-set map (Section 6).
//
// A batch is processed as:
//   1. parallel-entropy-sort the batch by key (stable: per-key program
//      order preserved) and coalesce duplicate keys into group-operations;
//   2. sweep the segments S[0]..S[l]: at S[k], batch-extract the groups'
//      keys; groups that find their item resolve there (successful
//      searches/updates shift to the front of S[k-1], net deletions remove
//      the item); then the capacity invariant of S[0..k-1] is restored by
//      transfers across segment boundaries; unfinished groups continue;
//   3. groups that reach the end unfound resolve against an absent item;
//      their net insertions append at the back of the last segment,
//      overflowing into newly created segments.
//
// Theorems 12/13: total work O(W_L + e_L log p), span
// O(N/p + d((log p)^2 + log n)). This class is the synchronous batch core;
// the implicit-batching front end (parallel buffer + feed buffer of
// p^2-sized bunches, cut batches of ceil(log n / p) bunches) lives in
// core/async_map.hpp.

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "core/backend.hpp"
#include "core/group.hpp"
#include "core/ops.hpp"
#include "core/scratch.hpp"
#include "core/segment.hpp"
#include "sched/scheduler.hpp"
#include "sort/pesort.hpp"
#include "tree/jtree.hpp"
#include "util/validate.hpp"

namespace pwss::core {

template <typename K, typename V>
class M1Map {
 public:
  /// scheduler may be null for a fully sequential map (used in tests to
  /// differentiate logic bugs from concurrency bugs).
  explicit M1Map(sched::Scheduler* scheduler = nullptr)
      : pools_(std::make_unique<SegmentPools<K, V>>(scheduler)),
        scheduler_(scheduler) {
    ctx_.scheduler = scheduler;
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  std::size_t segment_count() const noexcept { return segments_.size(); }

  /// Sorted drain of the full contents for the checkpoint writer
  /// (store/snapshot.hpp): appends every (key, value) in ascending key
  /// order. Callable only between batches (the driver quiesces first);
  /// recency stamps are not exported — a restored map starts with a
  /// fresh working set.
  void export_entries(std::vector<std::pair<K, V>>& out) const {
    const std::size_t first = out.size();
    out.reserve(first + size_);
    for (const auto& seg : segments_) {
      seg.for_each([&](const K& k, const V& v, std::uint64_t) {
        out.emplace_back(k, v);
      });
    }
    std::sort(out.begin() + static_cast<std::ptrdiff_t>(first), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
  }

  /// Executes one batch; results returned in submission order. Operations
  /// on the same key take effect in submission order; operations on
  /// different keys commute (they are on distinct items). Ordered kinds do
  /// NOT commute with mutations on other keys, so the batch is sliced into
  /// maximal point/ordered phases executed in submission order: every
  /// ordered query observes exactly the point operations that precede it.
  /// The result is a legal linearization of the batch (Definition 8)
  /// matching a sequential replay in submission order.
  std::vector<Result<V, K>> execute_batch(std::span<const Op<K, V>> ops) {
    std::vector<Result<V, K>> results;
    execute_batch(ops, results);
    return results;
  }

  /// Same batch, results into a caller-owned buffer (cleared, then sized
  /// to the batch): a steady stream of batches reuses the results
  /// capacity the same way it reuses the instance arena.
  void execute_batch(std::span<const Op<K, V>> ops,
                     std::vector<Result<V, K>>& results) {
    results.clear();
    results.resize(ops.size());
    for_each_phase(
        ops,
        [&](std::size_t b, std::size_t e) { point_phase(ops, b, e, results); },
        [&](std::size_t b, std::size_t e) {
          ordered_phase(ops, b, e, results);
        });
  }

  /// Convenience point ops (each a singleton batch on the caller's stack —
  /// no per-op vector) — for tests/examples and the driver's step path.
  std::optional<V> search(const K& key) {
    const Op<K, V> one[1] = {Op<K, V>::search(key)};
    return execute_batch(std::span<const Op<K, V>>(one))[0].value;
  }
  bool insert(const K& key, V value) {
    const Op<K, V> one[1] = {Op<K, V>::insert(key, std::move(value))};
    return execute_batch(std::span<const Op<K, V>>(one))[0].success();
  }
  std::optional<V> erase(const K& key) {
    const Op<K, V> one[1] = {Op<K, V>::erase(key)};
    return execute_batch(std::span<const Op<K, V>>(one))[0].value;
  }

  std::vector<Result<V, K>> execute_batch(const std::vector<Op<K, V>>& ops) {
    return execute_batch(std::span<const Op<K, V>>(ops));
  }

  /// Per-depth accounting of batch group resolution (one hit per group
  /// resolved at S[k], one miss per group whose key was absent
  /// everywhere). Owned by the batch path's single owner — plain
  /// counters, same contract as the instance arena.
  const ProbeDepthCounts& probe_depth_counts() const noexcept {
    return probes_;
  }
  void reset_probe_depth_counts() noexcept { probes_.reset(); }

  /// Segment index holding `key` (for invariant tests).
  std::optional<std::size_t> segment_of(const K& key) const {
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (segments_[k].peek(key)) return k;
    }
    return std::nullopt;
  }

  /// Validation: segments sound; every prefix S[0..i] is exactly at
  /// capacity or the suffix beyond it is empty.
  bool check_invariants() const { return validate().empty(); }

  /// Deep structural check with a precise failure description: every
  /// segment's own invariants, the size_ accounting, the restore-capacity
  /// prefix rule (each capacity prefix is full until the items run out),
  /// and the pool-domain accounting (one key-map and one recency-map node
  /// per item in a tree-represented segment). Empty string = OK.
  std::string validate() const {
    util::Validator v("m1: ");
    std::size_t total = 0;
    std::uint64_t tree_items = 0;
    for (std::size_t k = 0; k < segments_.size(); ++k) {
      if (!v.absorb(segments_[k].validate(), "segment[", k, "]: ")) {
        return std::move(v).take();
      }
      total += segments_[k].size();
      if (!segments_[k].is_flat()) tree_items += segments_[k].size();
    }
    if (!v.require(total == size_, "size accounting broken: segments hold ",
                   total, " items but size_=", size_)) {
      return std::move(v).take();
    }
    std::size_t cum = 0;
    for (std::size_t i = 0; i < segments_.size(); ++i) {
      cum += segments_[i].size();
      const std::size_t cap_prefix = capacity_prefix(i + 1);
      if (!v.require(cum == std::min<std::size_t>(size_, cap_prefix) ||
                         (cum == size_ && segments_[i].size() > 0),
                     "prefix occupancy rule broken at segment ", i,
                     ": prefix holds ", cum, " items, expected min(size_=",
                     size_, ", capacity prefix ", cap_prefix, ")")) {
        return std::move(v).take();
      }
    }
    if (!v.require(pools_->key_pool.live_nodes() == tree_items,
                   "key-pool accounting broken: ",
                   pools_->key_pool.live_nodes(), " live nodes but ",
                   tree_items, " items live in tree-represented segments")) {
      return std::move(v).take();
    }
    if (!v.require(pools_->rec_pool.live_nodes() == tree_items,
                   "recency-pool accounting broken: ",
                   pools_->rec_pool.live_nodes(), " live nodes but ",
                   tree_items, " items live in tree-represented segments")) {
      return std::move(v).take();
    }
    if (!v.absorb(pools_->key_pool.validate(), "key-pool: ")) {
      return std::move(v).take();
    }
    v.absorb(pools_->rec_pool.validate(), "recency-pool: ");
    return std::move(v).take();
  }

 private:
  using Item = typename Segment<K, V>::Item;

  /// One point phase [begin, end): tag with result indices, entropy-sort
  /// by key, coalesce, sweep — all through the instance arena, so a steady
  /// stream of batches reuses capacity.
  void point_phase(std::span<const Op<K, V>> ops, std::size_t begin,
                   std::size_t end, std::vector<Result<V, K>>& results) {
    auto& tagged = scratch_.tagged;
    tagged.clear();
    tagged.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      tagged.push_back({ops[i].type, ops[i].key, ops[i].value, K{}, i});
    }
    sort::pesort(
        tagged, [](const PendingOp<K, V, std::size_t>& p) { return p.key; },
        scheduler_, {}, &scratch_.sort);
    coalesce_sorted_index(std::span<const PendingOp<K, V, std::size_t>>(tagged),
                          scratch_.pending);
    process_groups(results);
  }

  /// One ordered phase [begin, end): read-only queries against the current
  /// (phase-quiescent) segment state. Duplicate queries combine the same
  /// way duplicate point operations do: identical (type, key, key2) tuples
  /// are answered once and the answer fanned out, and the distinct
  /// representatives are answered in parallel when a scheduler is present
  /// (per-segment trees allow concurrent reads).
  void ordered_phase(std::span<const Op<K, V>> ops, std::size_t begin,
                     std::size_t end, std::vector<Result<V, K>>& results) {
    auto& idx = scratch_.ordered_idx;
    idx.clear();
    idx.reserve(end - begin);
    for (std::size_t i = begin; i < end; ++i) idx.push_back(i);
    auto same = [&](std::size_t a, std::size_t b) {
      return ops[a].type == ops[b].type && ops[a].key == ops[b].key &&
             ops[a].key2 == ops[b].key2;
    };
    std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      if (ops[a].type != ops[b].type) return ops[a].type < ops[b].type;
      if (ops[a].key != ops[b].key) return ops[a].key < ops[b].key;
      return ops[a].key2 < ops[b].key2;
    });
    auto& reps = scratch_.ordered_reps;
    reps.clear();
    for (std::size_t r = 0; r < idx.size(); ++r) {
      if (r == 0 || !same(idx[r - 1], idx[r])) reps.push_back(idx[r]);
    }

    auto answer = [&](std::size_t lo, std::size_t hi) {
      for (std::size_t r = lo; r < hi; ++r) {
        const Op<K, V>& op = ops[reps[r]];
        results[reps[r]] = ordered_query_over<K, V>(
            op.type, op.key, op.key2, [&](auto&& fn) {
              for (const auto& seg : segments_) fn(seg);
            });
      }
    };
    constexpr std::size_t kGrain = 64;
    if (scheduler_ != nullptr && reps.size() > kGrain) {
      if (!scheduler_->on_worker()) {
        scheduler_->run_sync([&] {
          scheduler_->parallel_for(0, reps.size(), kGrain, answer);
        });
      } else {
        scheduler_->parallel_for(0, reps.size(), kGrain, answer);
      }
    } else {
      answer(0, reps.size());
    }

    // Fan the representative answers out to their duplicates.
    std::size_t rep = 0;
    for (std::size_t r = 0; r < idx.size(); ++r) {
      if (r > 0 && !same(idx[r - 1], idx[r])) ++rep;
      if (idx[r] != reps[rep]) results[idx[r]] = results[reps[rep]];
    }
  }

  static std::size_t capacity_prefix(std::size_t count) {
    std::size_t cum = 0;
    for (std::size_t j = 0; j < count; ++j) {
      const std::uint64_t c = segment_capacity(j);
      if (c > (~std::size_t{0}) - cum) return ~std::size_t{0};
      cum += static_cast<std::size_t>(c);
    }
    return cum;
  }

  /// Ops of one index group within the sorted batch.
  std::span<const PendingOp<K, V, std::size_t>> ops_of(
      const IndexGroup<K>& g) const {
    return std::span<const PendingOp<K, V, std::size_t>>(scratch_.tagged)
        .subspan(g.begin, g.end - g.begin);
  }

  /// Processes scratch_.pending (the coalesced batch) against the segment
  /// sweep; every temporary lives in the instance arena. Groups are index
  /// ranges into scratch_.tagged — 16 bytes each, no per-group list.
  void process_groups(std::vector<Result<V, K>>& results) {
    auto emit = [&](std::size_t idx, Result<V, K> r) {
      results[idx] = std::move(r);
    };

    auto& pending = scratch_.pending;
    auto& unfinished = scratch_.unfinished;
    auto& keys = scratch_.keys;
    auto& found = scratch_.found;
    auto& to_promote = scratch_.promote;
    for (std::size_t k = 0; k < segments_.size() && !pending.empty(); ++k) {
      // Overlap memory latency: request S[k+1]'s entry lines (flat arrays
      // or key-map root) while this iteration chews on S[k]. The sweep
      // order is static, so the prefetch is never wasted on a mispredicted
      // target — at worst the batch resolves before reaching S[k+1].
      if (k + 1 < segments_.size()) segments_[k + 1].prefetch();
      // Batch-extract the groups' keys from S[k].
      keys.clear();
      keys.reserve(pending.size());
      for (const auto& g : pending) keys.push_back(g.key);
      segments_[k].extract_by_keys(keys, found, ctx_, &scratch_.seg);

      // found is key-sorted, as is pending: walk them together.
      unfinished.clear();
      to_promote.clear();  // successful searches/updates
      std::size_t fi = 0;
      for (const auto& g : pending) {
        if (fi < found.size() && found[fi].key == g.key) {
          probes_.note_hit(k);
          Item item = std::move(found[fi++]);
          std::optional<V> fin = resolve_ops<K, V, std::size_t>(
              std::move(item.value), ops_of(g), emit);
          if (fin) {
            item.value = std::move(*fin);
            to_promote.push_back(std::move(item));  // keeps S[k] stamp order
          }
          // Net deletion: item stays removed; group finished.
        } else {
          unfinished.push_back(g);
        }
      }

      // Shift found items to the front of the previous segment, keeping
      // their relative (recency) order.
      if (!to_promote.empty()) {
        const std::size_t dest = k == 0 ? 0 : k - 1;
        segments_[dest].insert_front_batch(std::span<Item>(to_promote), ctx_,
                                           &scratch_.seg);
      }
      restore_capacity(k);
      std::swap(pending, unfinished);
    }

    // Groups whose keys are absent everywhere.
    auto& to_insert = scratch_.promote;
    to_insert.clear();
    for (const auto& g : pending) {
      probes_.note_miss();
      std::optional<V> fin =
          resolve_ops<K, V, std::size_t>(std::nullopt, ops_of(g), emit);
      if (fin) {
        // M0's rule: each insertion goes *behind* the previous one, so an
        // earlier batch position is more recent. The inverted batch index
        // is restamped at insertion but preserves that relative order.
        to_insert.push_back(
            Item{g.key, std::move(*fin), ~scratch_.tagged[g.begin].target});
      }
    }
    pending.clear();
    append_new_items(to_insert);
    restore_capacity(segments_.size());
    while (!segments_.empty() && segments_.back().empty()) {
      segments_.pop_back();
    }
  }

  /// Appends fresh items (consumed in place) at the back of the last
  /// segment, creating new segments for overflow (Section 6.1's final
  /// insertion step).
  void append_new_items(std::vector<Item>& items) {
    if (items.empty()) return;
    size_ += items.size();
    if (segments_.empty()) segments_.emplace_back(pools_.get());
    std::size_t last = segments_.size() - 1;
    segments_[last].insert_back_batch(std::span<Item>(items), ctx_,
                                      &scratch_.seg);
    // Carve overflow into new segments back-to-front.
    auto& spill = scratch_.moved;
    while (segments_[last].size() > segment_capacity(last)) {
      const std::size_t excess =
          segments_[last].size() -
          static_cast<std::size_t>(segment_capacity(last));
      segments_[last].extract_least_recent(excess, spill, ctx_, &scratch_.seg);
      segments_.emplace_back(pools_.get());
      ++last;
      segments_[last].insert_front_batch(std::span<Item>(spill), ctx_,
                                         &scratch_.seg);
    }
  }

  /// Restores the capacity invariant for prefixes S[0..i-1], boundaries
  /// i = upto down to 1: transfer between the back of S[i-1] and the front
  /// of S[i] until the prefix is exactly at capacity or S[i] is empty.
  void restore_capacity(std::size_t upto) {
    size_ = recompute_size();  // group resolution may have deleted items
    upto = std::min(upto, segments_.empty() ? 0 : segments_.size() - 1);
    auto& moved = scratch_.moved;
    for (std::size_t i = upto; i >= 1; --i) {
      const std::size_t target = capacity_prefix(i);
      std::size_t prefix = 0;
      for (std::size_t j = 0; j < i; ++j) prefix += segments_[j].size();
      if (prefix > target) {
        // Demote the excess: back of S[i-1] -> front of S[i].
        segments_[i - 1].extract_least_recent(prefix - target, moved, ctx_,
                                              &scratch_.seg);
        segments_[i].insert_front_batch(std::span<Item>(moved), ctx_,
                                        &scratch_.seg);
      } else if (prefix < target) {
        // Pull forward: front of S[i] -> back of S[i-1].
        const std::size_t want = target - prefix;
        segments_[i].extract_most_recent(std::min(want, segments_[i].size()),
                                         moved, ctx_, &scratch_.seg);
        segments_[i - 1].insert_back_batch(std::span<Item>(moved), ctx_,
                                           &scratch_.seg);
      }
    }
  }

  std::size_t recompute_size() const {
    std::size_t total = 0;
    for (const auto& seg : segments_) total += seg.size();
    return total;
  }

  // Pool domain first: segments (declared after) die before their pools.
  // unique_ptr keeps the domain's address stable across M1Map moves
  // (AsyncMap takes the backend by value).
  std::unique_ptr<SegmentPools<K, V>> pools_;
  std::vector<Segment<K, V>> segments_;
  sched::Scheduler* scheduler_;
  tree::ParCtx ctx_;
  std::size_t size_ = 0;
  // Per-instance batch arena; safe because execute_batch has a single
  // owner (backend_traits: not point_thread_safe). Never shared across
  // instances.
  BatchScratch<K, V, std::size_t> scratch_;
  ProbeDepthCounts probes_;
};

/// M1's batch internals fork through the scheduler (a null scheduler is a
/// test-only degradation), and a single owner must drive batches.
template <typename K, typename V>
struct backend_traits<M1Map<K, V>> {
  static constexpr bool needs_scheduler = true;
  static constexpr bool native_async = false;
  static constexpr bool supports_async = true;
  static constexpr bool point_thread_safe = false;
  static constexpr bool supports_ordered = true;
};

static_assert(MapBackend<M1Map<int, int>, int, int>);

}  // namespace pwss::core
