#pragma once
// FlatSegment — the branchless sorted-array representation for the *front*
// segments of a working-set structure. The doubly-exponential sizing makes
// S[0..2] tiny (2/4/16 items), yet they absorb almost every probe under
// working-set-friendly workloads; paying a pointer-chasing JTree descent
// (two trees: key-map + recency-map) per probe there is pure constant-factor
// waste. This layout keeps a small segment as two parallel arrays:
//
//   keys_    : sorted, contiguous — probes are a branchless binary search
//              over one or two cache lines, no pointer chasing;
//   entries_ : (value, stamp) pairs parallel to keys_ — recency queries are
//              linear min/max scans, batch recency extraction a partial
//              selection over at most kFlatSegmentMax elements.
//
// Point inserts/erases memmove the tail — O(n) with n <= kFlatSegmentMax,
// cheaper than a tree rebalance at these sizes and allocation-free once the
// arrays are reserved (one reservation per segment, ever).
//
// core::Segment dispatches between this layout (size <= kFlatSegmentMax,
// i.e. depth k <= 2 plus M2's 3x slack on S[2]) and the JTree pair (deep
// segments); the promote/demote machinery lives in segment.hpp.

#include <algorithm>
#include <array>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/prefetch.hpp"
#include "util/validate.hpp"

namespace pwss::core {

/// One item of a segment: the key, its value, and its per-segment recency
/// stamp (larger = more recent). Shared by both segment representations.
template <typename K, typename V>
struct SegmentItem {
  K key;
  V value;
  std::uint64_t stamp;
};

/// Occupancy bound for the flat representation: covers S[0]/S[1]/S[2]
/// (2 + 4 + 16 by the doubly-exponential sizing) including M2's transient
/// 3x2^(2^k) slack on S[2] (48), with headroom so batch arrivals rarely
/// force a spill. S[3] (256) always takes the tree representation.
inline constexpr std::size_t kFlatSegmentMax = 64;

/// Hysteresis bound: a tree-represented segment converts back to flat only
/// once it shrinks to half the flat capacity, so a segment oscillating
/// around kFlatSegmentMax does not thrash between representations.
inline constexpr std::size_t kFlatSegmentDemote = kFlatSegmentMax / 2;

template <typename K, typename V>
class FlatSegment {
 public:
  using Entry = std::pair<V, std::uint64_t>;  // (value, stamp)
  using Item = SegmentItem<K, V>;

  std::size_t size() const noexcept { return keys_.size(); }
  bool empty() const noexcept { return keys_.empty(); }

  /// Drops every item; keeps the arrays' capacity (a demoted segment
  /// re-fills without touching the heap).
  void clear() noexcept {
    keys_.clear();
    entries_.clear();
  }

  /// One-time reservation: the flat arrays never grow past
  /// kFlatSegmentMax, so after this no flat operation allocates.
  void ensure_capacity() {
    if (keys_.capacity() < kFlatSegmentMax) keys_.reserve(kFlatSegmentMax);
    if (entries_.capacity() < kFlatSegmentMax) {
      entries_.reserve(kFlatSegmentMax);
    }
  }

  /// Pulls the segment's header lines toward the cache (used by the batch
  /// sweeps to overlap the next segment's probe with the current one).
  void prefetch() const noexcept {
    util::prefetch_read(keys_.data());
    util::prefetch_read(entries_.data());
  }

  // ---- probes ------------------------------------------------------------

  /// First index i with keys_[i] >= key (branchless: the mask-advance
  /// form — a ternary here compiles to a real conditional jump on gcc,
  /// which mispredicts ~50% per halving on random probe streams).
  std::size_t lower_bound_idx(const K& key) const {
    const K* base = keys_.data();
    std::size_t n = keys_.size();
    if (n == 0) return 0;
    while (n > 1) {
      const std::size_t half = n / 2;
      base += (0 - static_cast<std::size_t>(base[half - 1] < key)) & half;
      n -= half;
    }
    return static_cast<std::size_t>(base - keys_.data()) +
           static_cast<std::size_t>(*base < key);
  }

  /// Index of `key`, or size() when absent.
  std::size_t find_idx(const K& key) const {
    const std::size_t i = lower_bound_idx(key);
    return i < keys_.size() && !(key < keys_[i]) ? i : keys_.size();
  }

  const Entry* peek(const K& key) const {
    const std::size_t i = find_idx(key);
    return i < keys_.size() ? &entries_[i] : nullptr;
  }
  Entry* peek(const K& key) {
    const std::size_t i = find_idx(key);
    return i < keys_.size() ? &entries_[i] : nullptr;
  }

  /// Greatest key strictly below `key`, as {&key, &value}; nulls if none.
  std::pair<const K*, const V*> predecessor(const K& key) const {
    const std::size_t i = lower_bound_idx(key);
    if (i == 0) return {nullptr, nullptr};
    return {&keys_[i - 1], &entries_[i - 1].first};
  }

  /// Least key strictly above `key`; nulls if none.
  std::pair<const K*, const V*> successor(const K& key) const {
    std::size_t i = lower_bound_idx(key);
    if (i < keys_.size() && !(key < keys_[i])) ++i;  // skip an exact match
    if (i >= keys_.size()) return {nullptr, nullptr};
    return {&keys_[i], &entries_[i].first};
  }

  /// Number of keys in the inclusive range [lo, hi] (0 when hi < lo).
  std::size_t range_count(const K& lo, const K& hi) const {
    if (hi < lo) return 0;
    std::size_t ub = lower_bound_idx(hi);
    if (ub < keys_.size() && !(hi < keys_[ub])) ++ub;
    return ub - lower_bound_idx(lo);
  }

  // ---- point mutation ----------------------------------------------------

  /// Inserts an item whose key is absent (asserted). The caller has
  /// already assigned the stamp.
  void insert(Item item) {
    assert(keys_.size() < kFlatSegmentMax && "flat segment over capacity");
    ensure_capacity();
    const std::size_t i = lower_bound_idx(item.key);
    assert((i == keys_.size() || item.key < keys_[i]) &&
           "flat segment keys must be distinct");
    keys_.insert(keys_.begin() + static_cast<std::ptrdiff_t>(i),
                 std::move(item.key));
    entries_.insert(entries_.begin() + static_cast<std::ptrdiff_t>(i),
                    Entry{std::move(item.value), item.stamp});
  }

  /// Removes `key` if present.
  std::optional<Item> extract(const K& key) {
    const std::size_t i = find_idx(key);
    if (i == keys_.size()) return std::nullopt;
    Item out = take_at(i);
    erase_at(i);
    return out;
  }

  // ---- recency -----------------------------------------------------------

  std::size_t least_recent_idx() const noexcept {
    assert(!empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[i].second < entries_[best].second) best = i;
    }
    return best;
  }

  std::size_t most_recent_idx() const noexcept {
    assert(!empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < entries_.size(); ++i) {
      if (entries_[best].second < entries_[i].second) best = i;
    }
    return best;
  }

  const K& key_at(std::size_t i) const noexcept { return keys_[i]; }

  Item extract_at(std::size_t i) {
    Item out = take_at(i);
    erase_at(i);
    return out;
  }

  // ---- batched operations ------------------------------------------------

  /// Merges `items` (sorted by key, distinct, disjoint from the present
  /// keys) in one backward pass; values are moved out of the span.
  void merge_insert(std::span<Item> items) {
    if (items.empty()) return;
    const std::size_t old_n = keys_.size();
    const std::size_t add = items.size();
    assert(old_n + add <= kFlatSegmentMax && "flat merge over capacity");
    ensure_capacity();
    keys_.resize(old_n + add);
    entries_.resize(old_n + add);
    std::size_t i = old_n;  // old elements left to place
    std::size_t j = add;    // new elements left to place
    std::size_t w = old_n + add;
    while (j > 0) {
      if (i > 0 && items[j - 1].key < keys_[i - 1]) {
        --w;
        --i;
        keys_[w] = std::move(keys_[i]);
        entries_[w] = std::move(entries_[i]);
      } else {
        --w;
        --j;
        assert((i == 0 || keys_[i - 1] < items[j].key) &&
               "flat segment keys must be distinct");
        keys_[w] = std::move(items[j].key);
        entries_[w] = Entry{std::move(items[j].value), items[j].stamp};
      }
    }
  }

  /// Removes every present key of `keys` (sorted, distinct); appends the
  /// removed items to `out` in key order and compacts in place. One
  /// two-pointer pass — both sequences are sorted.
  void extract_by_keys(std::span<const K> keys, std::vector<Item>& out) {
    if (keys.empty() || keys_.empty()) return;
    std::size_t w = 0;  // write cursor into the surviving prefix
    std::size_t j = 0;  // cursor into the probe keys
    const std::size_t n = keys_.size();
    for (std::size_t r = 0; r < n; ++r) {
      while (j < keys.size() && keys[j] < keys_[r]) ++j;
      if (j < keys.size() && !(keys_[r] < keys[j])) {
        out.push_back(take_at(r));
        ++j;
        continue;
      }
      if (w != r) {
        keys_[w] = std::move(keys_[r]);
        entries_[w] = std::move(entries_[r]);
      }
      ++w;
    }
    keys_.resize(w);
    entries_.resize(w);
  }

  /// Looks up every key; out[i] is the entry pointer or nullptr (valid
  /// until the next mutation).
  void find_batch(std::span<const K> keys,
                  std::vector<const Entry*>& out) const {
    out.assign(keys.size(), nullptr);
    for (std::size_t i = 0; i < keys.size(); ++i) out[i] = peek(keys[i]);
  }

  /// Removes the `c` least-recent (least=true) or most-recent items into
  /// `out` (appended in key order) and compacts. Selection runs over an
  /// on-stack index array — never allocates.
  void extract_by_recency(std::size_t c, bool least, std::vector<Item>& out) {
    const std::size_t n = keys_.size();
    c = std::min(c, n);
    if (c == 0) return;
    std::array<std::uint32_t, kFlatSegmentMax> idx;
    for (std::size_t i = 0; i < n; ++i) idx[i] = static_cast<std::uint32_t>(i);
    const auto by_stamp = [&](std::uint32_t a, std::uint32_t b) {
      return least ? entries_[a].second < entries_[b].second
                   : entries_[b].second < entries_[a].second;
    };
    std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(c),
                      idx.begin() + static_cast<std::ptrdiff_t>(n), by_stamp);
    // Ascending index = ascending key (keys_ is sorted).
    std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(c));
    for (std::size_t i = 0; i < c; ++i) out.push_back(take_at(idx[i]));
    // Compact the survivors in one pass.
    std::size_t w = idx[0];
    std::size_t next_removed = 0;
    for (std::size_t r = idx[0]; r < n; ++r) {
      if (next_removed < c && idx[next_removed] == r) {
        ++next_removed;
        continue;
      }
      keys_[w] = std::move(keys_[r]);
      entries_[w] = std::move(entries_[r]);
      ++w;
    }
    keys_.resize(w);
    entries_.resize(w);
  }

  /// In-order (by key) visit of (key, value, stamp).
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      fn(keys_[i], entries_[i].first, entries_[i].second);
    }
  }

  /// Moves every item out in key order — (key, (value, stamp)) appended to
  /// `key_entries`, (stamp, key) to `rec_entries` — leaving the segment
  /// empty. Used when promoting to the tree representation: the key side
  /// feeds JTree::from_sorted directly; the recency side still needs a
  /// stamp sort at the call site.
  template <typename KeyEntries, typename RecEntries>
  void drain_sorted(KeyEntries& key_entries, RecEntries& rec_entries) {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      rec_entries.emplace_back(entries_[i].second, keys_[i]);
      key_entries.emplace_back(
          std::move(keys_[i]),
          Entry{std::move(entries_[i].first), entries_[i].second});
    }
    clear();
  }

  /// Appends an item known to sort after every present key (used when
  /// demoting a tree walked in key order).
  void append_sorted(const K& key, const Entry& entry) {
    assert(keys_.size() < kFlatSegmentMax);
    assert(keys_.empty() || keys_.back() < key);
    ensure_capacity();
    keys_.push_back(key);
    entries_.push_back(entry);
  }

  bool check_invariants() const { return validate().empty(); }

  /// Deep representation check with a precise failure description:
  /// parallel arrays in lockstep, occupancy within kFlatSegmentMax, and
  /// keys strictly ascending. Empty string = OK. Requires K streamable.
  std::string validate() const {
    util::Validator v("flat_segment: ");
    if (!v.require(keys_.size() == entries_.size(),
                   "parallel arrays diverged: ", keys_.size(), " keys vs ",
                   entries_.size(), " entries")) {
      return std::move(v).take();
    }
    if (!v.require(keys_.size() <= kFlatSegmentMax, "over capacity: ",
                   keys_.size(), " items > kFlatSegmentMax=",
                   kFlatSegmentMax)) {
      return std::move(v).take();
    }
    for (std::size_t i = 1; i < keys_.size(); ++i) {
      if (!v.require(keys_[i - 1] < keys_[i], "keys not strictly ascending: ",
                     "keys_[", i - 1, "]=", keys_[i - 1], " !< keys_[", i,
                     "]=", keys_[i])) {
        return std::move(v).take();
      }
    }
    return std::move(v).take();
  }

 private:
  Item take_at(std::size_t i) {
    return Item{std::move(keys_[i]), std::move(entries_[i].first),
                entries_[i].second};
  }

  void erase_at(std::size_t i) {
    keys_.erase(keys_.begin() + static_cast<std::ptrdiff_t>(i));
    entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(i));
  }

  std::vector<K> keys_;        // sorted ascending, distinct
  std::vector<Entry> entries_; // parallel (value, stamp)
};

}  // namespace pwss::core
