#pragma once
// Group-operations (Section 6.1): after entropy-sorting a batch, all
// operations on the same key are combined into one group-operation that is
// "treated as a single operation with the same effect as the whole group of
// operations in the given order". Resolving a group against the key's state
// at the moment the group meets the item yields every individual result
// plus the group's net effect (present-with-value / absent).
//
// This is the mechanism that turns b duplicate accesses into O(log n + b)
// work instead of Ω(b log n) (Section 3).
//
// The delivery `Target` is a template parameter: M1 delivers results by
// batch index (size_t), M2 by per-operation ticket pointer.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/ops.hpp"

namespace pwss::core {

/// One client operation in flight through a batched map, carrying where its
/// result must be delivered.
template <typename K, typename V, typename Target>
struct PendingOp {
  OpType type;
  K key;
  V value{};
  Target target{};
};

/// All pending operations on one key within a batch, in program order.
template <typename K, typename V, typename Target>
struct GroupOp {
  K key;
  std::vector<PendingOp<K, V, Target>> ops;

  /// Arrival sequence within the batch (used to order fresh insertions).
  std::size_t seq = 0;

  // M2 bookkeeping: a deletion that already succeeded in an earlier segment
  // is tagged and keeps flowing to the terminal segment (Section 7.1 step 3:
  // "Successful deletions are tagged to indicate success").
  bool deletion_succeeded = false;
};

/// Applies `ops` in order against `initial` (the key's value where the
/// group met the item, or nullopt if absent), emitting one Result per op
/// through `emit(target, Result<V>)`. Returns the net final state.
template <typename K, typename V, typename Target, typename Emit>
std::optional<V> resolve_ops(std::optional<V> initial,
                             const std::vector<PendingOp<K, V, Target>>& ops,
                             Emit&& emit) {
  std::optional<V> cur = std::move(initial);
  for (const auto& op : ops) {
    Result<V> r;
    switch (op.type) {
      case OpType::kSearch:
        r.success = cur.has_value();
        r.value = cur;
        break;
      case OpType::kInsert:
        r.success = !cur.has_value();  // true = newly inserted, false = update
        cur = op.value;
        break;
      case OpType::kErase:
        r.success = cur.has_value();
        r.value = std::move(cur);
        cur.reset();
        break;
    }
    emit(op.target, std::move(r));
  }
  return cur;
}

/// Coalesces a key-sorted batch (per-key program order preserved — callers
/// use the stable PESort) into GroupOps, numbering them by arrival order.
template <typename K, typename V, typename Target>
std::vector<GroupOp<K, V, Target>> coalesce_sorted(
    std::vector<PendingOp<K, V, Target>> sorted) {
  std::vector<GroupOp<K, V, Target>> groups;
  for (auto& op : sorted) {
    if (groups.empty() || !(groups.back().key == op.key)) {
      GroupOp<K, V, Target> g;
      g.key = op.key;
      g.seq = groups.size();
      groups.push_back(std::move(g));
    }
    groups.back().ops.push_back(std::move(op));
  }
  return groups;
}

}  // namespace pwss::core
