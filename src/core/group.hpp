#pragma once
// Group-operations (Section 6.1): after entropy-sorting a batch, all
// operations on the same key are combined into one group-operation that is
// "treated as a single operation with the same effect as the whole group of
// operations in the given order". Resolving a group against the key's state
// at the moment the group meets the item yields every individual result
// plus the group's net effect (present-with-value / absent).
//
// This is the mechanism that turns b duplicate accesses into O(log n + b)
// work instead of Ω(b log n) (Section 3).
//
// The delivery `Target` is a template parameter: M1 delivers results by
// batch index (size_t), M2 by per-operation ticket pointer.

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/ops.hpp"
#include "util/small_vec.hpp"

namespace pwss::core {

/// One client operation in flight through a batched map, carrying where its
/// result must be delivered. key2 is kRangeCount's inclusive high bound;
/// ordered kinds never enter group-operations (they are resolved in
/// read-only phases), but they do ride the same submission plumbing.
template <typename K, typename V, typename Target>
struct PendingOp {
  OpType type;
  K key;
  V value{};
  K key2{};
  Target target{};
  /// Absolute deadline on the now_ns() clock; 0 = none. Checked only at
  /// the batch-cut boundary (submission plumbing) — an op that enters a
  /// group-operation always executes.
  std::uint64_t deadline_ns = 0;
};

/// All pending operations on one key within a batch, in program order.
/// Under low-duplication workloads almost every group is a singleton, so
/// the first op lives inline in the group — no per-group heap allocation.
template <typename K, typename V, typename Target>
struct GroupOp {
  K key;
  util::SmallVec<PendingOp<K, V, Target>, 1> ops;

  /// Arrival sequence within the batch (used to order fresh insertions).
  std::size_t seq = 0;

  // M2 bookkeeping: a deletion that already succeeded in an earlier segment
  // is tagged and keeps flowing to the terminal segment (Section 7.1 step 3:
  // "Successful deletions are tagged to indicate success").
  bool deletion_succeeded = false;
};

/// Applies `ops` in order against `initial` (the key's value where the
/// group met the item, or nullopt if absent), emitting one Result per op
/// through `emit(target, Result<V>)`. Returns the net final state.
/// Accepts any contiguous op sequence (GroupOp::ops, filter-entry lists).
template <typename K, typename V, typename Target, typename Emit>
std::optional<V> resolve_ops(std::optional<V> initial,
                             std::span<const PendingOp<K, V, Target>> ops,
                             Emit&& emit) {
  std::optional<V> cur = std::move(initial);
  for (const auto& op : ops) {
    Result<V, K> r;
    switch (op.type) {
      case OpType::kSearch:
        r.status = cur.has_value() ? ResultStatus::kFound
                                   : ResultStatus::kNotFound;
        r.value = cur;
        break;
      case OpType::kInsert:
      case OpType::kUpsert:
        r.status = cur.has_value() ? ResultStatus::kUpdated
                                   : ResultStatus::kInserted;
        cur = op.value;
        break;
      case OpType::kErase:
        r.status = cur.has_value() ? ResultStatus::kErased
                                   : ResultStatus::kNotFound;
        r.value = std::move(cur);
        cur.reset();
        break;
      case OpType::kPredecessor:
      case OpType::kSuccessor:
      case OpType::kRangeCount:
        assert(false && "ordered kinds never enter group-operations");
        break;
    }
    emit(op.target, std::move(r));
  }
  return cur;
}

/// Coalesces a key-sorted batch (per-key program order preserved — callers
/// use the stable PESort) into `groups`, numbering them by arrival order.
/// `sorted`'s elements are consumed; `groups` is cleared first, so a
/// caller-owned buffer keeps its capacity across batches.
template <typename K, typename V, typename Target>
void coalesce_sorted_into(std::vector<PendingOp<K, V, Target>>& sorted,
                          std::vector<GroupOp<K, V, Target>>& groups) {
  groups.clear();
  for (auto& op : sorted) {
    if (groups.empty() || !(groups.back().key == op.key)) {
      GroupOp<K, V, Target> g;
      g.key = op.key;
      g.seq = groups.size();
      groups.push_back(std::move(g));
    }
    groups.back().ops.push_back(std::move(op));
  }
}

template <typename K, typename V, typename Target>
std::vector<GroupOp<K, V, Target>> coalesce_sorted(
    std::vector<PendingOp<K, V, Target>> sorted) {
  std::vector<GroupOp<K, V, Target>> groups;
  coalesce_sorted_into(sorted, groups);
  return groups;
}

/// Index-based group: the ops live at positions [begin, end) of the
/// stable-sorted batch they were coalesced from (same-key ops are
/// contiguous after the sort). 16 bytes, trivially movable, no per-group
/// allocation — the representation M1's sweep churns through. M2 keeps the
/// owning GroupOp because its groups outlive the batch frame (filter
/// entries, stage inboxes).
template <typename K>
struct IndexGroup {
  K key;
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
};

/// Coalesces a key-sorted batch into index groups (cleared `groups` buffer
/// reused across batches). The batch itself is not consumed — groups
/// reference it by position.
template <typename K, typename V, typename Target>
void coalesce_sorted_index(std::span<const PendingOp<K, V, Target>> sorted,
                           std::vector<IndexGroup<K>>& groups) {
  assert(sorted.size() <= 0xffffffffu && "batch exceeds index-group range");
  groups.clear();
  for (std::uint32_t i = 0; i < sorted.size(); ++i) {
    if (groups.empty() || !(groups.back().key == sorted[i].key)) {
      groups.push_back(IndexGroup<K>{sorted[i].key, i, i + 1});
    } else {
      groups.back().end = i + 1;
    }
  }
}

}  // namespace pwss::core
