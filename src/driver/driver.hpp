#pragma once
// Driver — the runtime layer that turns a MapBackend into a ready-to-use
// concurrent map. A Driver owns the scheduler (when one is needed), wires
// the backend behind the right front end, and exposes three uniform APIs:
//
//   * blocking per-op calls (search/insert/upsert/erase and the ordered
//     predecessor/successor/range_count) — safe from any thread;
//   * an asynchronous submission API — submit(op, ticket) with a
//     caller-owned zero-allocation completion token, submit(op) returning
//     a core::Future, and submit(op, completion) invoking a callback on
//     the fulfilling thread — so one thread overlaps any number of
//     outstanding operations instead of blocking per op;
//   * a bulk run(vector<Op>) path — one synchronous batch through the
//     backend, results in submission order.
//
// Wiring is selected from core::backend_traits at compile time:
//
//   traits                  wrapper            examples
//   ----------------------  -----------------  -------------------------
//   native_async            none (backend      m2
//                           batches itself)
//   point_thread_safe &&    none (point ops    locked
//     !native_async         go straight in)
//   supports_async          core::AsyncMap     m0, m1, splay, avl, iacono
//                           (implicit batching,
//                            Section 4)
//
// Protocol-v2 ordered kinds are refused up front when the backend's
// traits say !supports_ordered — never half-executed on a worker. The
// blocking/bulk entry points throw std::invalid_argument on the calling
// thread (naming the backend); the async submit forms honour the
// completion-delivery contract instead and fulfill the ticket with
// kUnsupported. The public run/step/submit entry points validate, pass
// admission control (driver/admission.hpp: bounded in-flight window,
// shed or bounded-block on overflow; blocking conveniences absorb
// transient kOverloaded via driver/retry.hpp backoff), and then forward
// to the do_* virtuals the wirings implement.
//
// The bulk path must not race with concurrent blocking callers on
// AsyncMap-wrapped backends (it quiesces the front end, then batches
// directly); natively-async and point-thread-safe backends allow mixing.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <span>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/async_map.hpp"
#include "core/backend.hpp"
#include "core/future.hpp"
#include "core/ops.hpp"
#include "driver/admission.hpp"
#include "driver/retry.hpp"
#include "sched/scheduler.hpp"
#include "store/durability.hpp"
#include "util/fault.hpp"

namespace pwss::driver {

/// Construction knobs shared by every backend factory.
struct Options {
  /// Scheduler worker count; 0 = hardware concurrency. Ignored by
  /// schedulerless backends.
  unsigned workers = 0;
  /// M2's p (bunch size p^2); 0 = the scheduler's worker count.
  unsigned p = 0;
  /// Shard count for sharded:* backends; 0 = kDefaultShards. Ignored by
  /// unsharded backends.
  unsigned shards = 0;
  /// When non-null the driver runs on this scheduler instead of owning
  /// one (it must outlive the driver). ShardedDriver uses this to put all
  /// its shards behind one shared pool. Ignored by schedulerless backends.
  sched::Scheduler* scheduler = nullptr;
  /// Admission window: maximum admitted-but-not-completed ops; 0 =
  /// unbounded (no admission control). For sharded:* backends the window
  /// applies PER SHARD — one hot shard sheds its overflow while the
  /// others keep accepting.
  std::size_t max_in_flight = 0;
  /// What a full window does to a submission: shed (kOverloaded) or
  /// park the submitter until a slot frees / the op's deadline passes.
  AdmissionPolicy admission = AdmissionPolicy::kReject;
  /// Persistence mode (store/durability.hpp): kOff (default; zero
  /// hot-path cost), kAsync (WAL flushed at thresholds), or kSync
  /// (acked ⇒ fsynced via group commit). For sharded:* backends every
  /// shard persists independently under durability_dir/shard-N.
  store::DurabilityMode durability = store::DurabilityMode::kOff;
  /// Directory holding the snapshot + WAL (created if absent). Ignored
  /// when durability is kOff.
  std::string durability_dir = "pwss-data";
};

/// Counter snapshot for one driver (aggregated across shards by
/// ShardedDriver::stats()): the PR-8 admission/retry machinery plus the
/// durability layer, finally observable. Printed by the CLI at exit
/// (--stats) and asserted by the robustness tests.
struct DriverStats {
  // admission / retry (see driver/admission.hpp, driver/retry.hpp)
  std::uint64_t admitted = 0;   ///< ops past the admission window
  std::uint64_t shed = 0;       ///< kOverloaded verdicts handed out
  std::uint64_t timed_out = 0;  ///< kExpired verdicts (deadline passed)
  std::uint64_t retries = 0;    ///< blocking-path backoff retries
  std::uint64_t in_flight = 0;  ///< current window occupancy
  // durability (see store/durability.hpp)
  bool durable = false;         ///< a WAL is armed on this driver
  bool read_only = false;       ///< sticky degraded mode entered
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_fsyncs = 0;
  std::uint64_t recovered_ops = 0;      ///< WAL records replayed at boot
  std::uint64_t recovered_entries = 0;  ///< snapshot entries restored
  std::uint64_t torn_tail_truncations = 0;
  std::uint64_t checkpoints = 0;
  // network serving layer (src/net/server.hpp; folded in by
  // net::Server::add_stats() — zero and unprinted when not serving)
  bool serving = false;               ///< a net::Server reported counters
  std::uint64_t net_accepted = 0;     ///< connections accepted (lifetime)
  std::uint64_t net_active = 0;       ///< connections currently open
  std::uint64_t net_frames_in = 0;    ///< verified frames parsed
  std::uint64_t net_frames_out = 0;   ///< frames written (responses etc.)
  std::uint64_t net_protocol_errors = 0;  ///< connections refused for cause
  std::uint64_t net_shed_on_wire = 0;     ///< kOverloaded at the conn window

  DriverStats& operator+=(const DriverStats& o) {
    admitted += o.admitted;
    shed += o.shed;
    timed_out += o.timed_out;
    retries += o.retries;
    in_flight += o.in_flight;
    durable = durable || o.durable;
    read_only = read_only || o.read_only;
    wal_appends += o.wal_appends;
    wal_fsyncs += o.wal_fsyncs;
    recovered_ops += o.recovered_ops;
    recovered_entries += o.recovered_entries;
    torn_tail_truncations += o.torn_tail_truncations;
    checkpoints += o.checkpoints;
    serving = serving || o.serving;
    net_accepted += o.net_accepted;
    net_active += o.net_active;
    net_frames_in += o.net_frames_in;
    net_frames_out += o.net_frames_out;
    net_protocol_errors += o.net_protocol_errors;
    net_shed_on_wire += o.net_shed_on_wire;
    return *this;
  }
};

/// The admission window a single (non-sharded) driver enforces for the
/// given options.
inline AdmissionConfig admission_config(const Options& opts) {
  return AdmissionConfig{opts.max_in_flight, opts.admission};
}

/// Type-erased handle to a wired backend. Obtained from BackendRegistry.
template <typename K, typename V>
class Driver {
 public:
  using Ticket = core::OpTicket<V, K>;
  using Completion = std::function<void(core::Result<V, K>&&)>;

  virtual ~Driver() = default;
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;

  /// Blocking per-op API; thread-safe. Passes admission control with
  /// transparent retry: transient kOverloaded results (a shed window, an
  /// injected buffer rejection) are absorbed by capped exponential
  /// backoff — see run_blocking().
  std::optional<V> search(const K& key) {
    return run_blocking(core::Op<K, V>::search(key)).value;
  }
  bool insert(const K& key, V value) {
    return run_blocking(core::Op<K, V>::insert(key, std::move(value)))
        .success();
  }
  /// Write-either-way; returns the status (kInserted or kUpdated).
  core::ResultStatus upsert(const K& key, V value) {
    return run_blocking(core::Op<K, V>::upsert(key, std::move(value))).status;
  }
  std::optional<V> erase(const K& key) {
    return run_blocking(core::Op<K, V>::erase(key)).value;
  }

  /// Ordered blocking API (protocol v2); throws std::invalid_argument for
  /// backends without ordered support (see supports_ordered()).
  std::optional<std::pair<K, V>> predecessor(const K& key) {
    return ordered_pair(run_blocking(core::Op<K, V>::predecessor(key)));
  }
  std::optional<std::pair<K, V>> successor(const K& key) {
    return ordered_pair(run_blocking(core::Op<K, V>::successor(key)));
  }
  std::uint64_t range_count(const K& lo, const K& hi) {
    return run_blocking(core::Op<K, V>::range_count(lo, hi)).count;
  }

  /// One op through the blocking path: throwing ordered validation,
  /// admission control, and the retry loop that absorbs transient
  /// kOverloaded results (deadline-aware, capped attempts). The terminal
  /// result is exact: kTimedOut when the deadline passed before
  /// execution, kOverloaded when the retry budget ran out, the executed
  /// result otherwise.
  core::Result<V, K> run_blocking(core::Op<K, V> op) {
    check_ordered(op);
    retry::Backoff backoff;
    for (;;) {
      switch (admission_.try_admit(op.deadline_ns)) {
        case Admit::kExpired:
          return core::Result<V, K>::error(core::ResultStatus::kTimedOut);
        case Admit::kShed:
          if (backoff.next(op.deadline_ns)) {
            retries_.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          return core::Result<V, K>::error(core::ResultStatus::kOverloaded);
        case Admit::kAdmitted:
          break;
      }
      // The op is retried on transient overload, so the attempt gets a
      // copy; the window slot is held across the attempt and released
      // before any backoff sleep.
      core::Result<V, K> r =
          durable() && core::is_mutation(op.type)
              ? durable_one(core::Op<K, V>(op),
                            [this](core::Op<K, V> o) {
                              return run_one(std::move(o));
                            })
              : run_one(core::Op<K, V>(op));
      admission_.release();
      if (r.status == core::ResultStatus::kOverloaded &&
          backoff.next(op.deadline_ns)) {
        retries_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      return r;
    }
  }

  /// True when the wired backend executes the ordered kinds
  /// (kPredecessor/kSuccessor/kRangeCount). Reported by the registry;
  /// ordered operations on a driver without it are refused with
  /// std::invalid_argument before touching the backend.
  virtual bool supports_ordered() const noexcept = 0;

  // ---- asynchronous submission ---------------------------------------------
  // The async forms never throw for protocol refusals: the contract is
  // completion delivery, so an ordered op on a backend without ordered
  // support, a shed window, and an expired deadline all surface as a
  // ticket completed with the matching terminal error status
  // (kUnsupported / kOverloaded / kTimedOut). Only the blocking
  // conveniences keep the calling-thread throw.

  /// Lowest-level form: the caller owns the completion token (stack or
  /// arena; zero allocation). The ticket must stay alive until fulfilled.
  void submit(core::Op<K, V> op, Ticket* ticket) {
    submit_admitted(std::move(op), ticket);
  }

  /// Future form: one heap-shared state per call; wait with get(), poll
  /// with ready(), or drop the future (the operation still completes).
  core::Future<V, K> submit(core::Op<K, V> op) {
    auto* state = new core::detail::FutureState<V, K>();
    submit_admitted(std::move(op), state);
    return core::Future<V, K>(state);
  }

  /// Completion form: `done` runs on the fulfilling thread with the
  /// result (batched delivery — the front end fulfills whole cut batches,
  /// so completions of one batch run back-to-back without a wakeup each).
  void submit(core::Op<K, V> op, Completion done) {
    auto* state = new core::detail::FutureState<V, K>();
    state->completion = std::move(done);
    state->refs.store(1, std::memory_order_relaxed);  // producer only
    submit_admitted(std::move(op), state);
  }

  /// The admission window this driver enforces (inert when unbounded).
  const AdmissionController& admission() const noexcept { return admission_; }

  // ---- bulk path -----------------------------------------------------------

  /// Bulk path: one batch through the backend, results in submission
  /// order with per-key program order preserved; ordered kinds observe
  /// exactly the point operations preceding them (phase slicing).
  std::vector<core::Result<V, K>> run(const std::vector<core::Op<K, V>>& ops) {
    std::vector<core::Result<V, K>> out;
    run(ops, out);
    return out;
  }

  /// Same bulk path, results into a caller-owned buffer (cleared, then
  /// sized to the batch): a steady bulk caller reuses the results
  /// capacity across batches instead of reallocating it per run.
  /// With durability armed, the batch's mutations are WAL-logged first
  /// and covered by ONE group commit (the batch-cut-boundary fsync);
  /// in read-only degraded mode the batch splits — reads execute,
  /// mutation slots complete with kReadOnly.
  void run(const std::vector<core::Op<K, V>>& ops,
           std::vector<core::Result<V, K>>& out) {
    check_ordered_batch(ops);
    if (durable() && batch_has_mutation(ops)) {
      run_durable(ops, out);
      return;
    }
    do_run(ops, out);
  }

  /// Single-owner sequential fast path: executes one operation
  /// synchronously on the calling thread, bypassing the async front end
  /// where the backend allows it. Must not race with concurrent callers.
  /// Benchmarks use this to measure per-op structure cost without
  /// batching overhead.
  core::Result<V, K> step(core::Op<K, V> op) {
    check_ordered(op);
    if (durable() && core::is_mutation(op.type)) {
      return durable_one(std::move(op), [this](core::Op<K, V> o) {
        return do_step(std::move(o));
      });
    }
    return do_step(std::move(op));
  }

  /// Segment index (recency depth) currently holding `key` for
  /// working-set backends; nullopt for absent keys and for non-adjusting
  /// backends. Quiesces first.
  virtual std::optional<std::size_t> depth_of(const K& key) = 0;

  /// Waits until every outstanding operation has completed.
  virtual void quiesce() = 0;

  /// Item count (quiesces first, so in-flight ops are counted).
  virtual std::size_t size() = 0;

  /// Runs the backend's structural validation when it has one (quiescing
  /// first); backends without check_invariants() vacuously pass.
  virtual bool check() = 0;

  /// Deep structural validation with a failure description (quiescing
  /// first). "" = sound. Backends with only a boolean check_invariants()
  /// report a generic message on failure; backends without any validator
  /// vacuously pass.
  virtual std::string validate() = 0;

  /// The scheduler this driver owns or runs on (a caller-supplied
  /// Options::scheduler is shared, not owned), or nullptr for
  /// schedulerless backends (the sequential baselines and the locked
  /// map).
  virtual sched::Scheduler* scheduler() noexcept = 0;

  /// Registry name this driver was created under ("m2", "avl", ...).
  const std::string& name() const noexcept { return name_; }

  // ---- durability (store/) -------------------------------------------------

  /// Opens the durability layer per `opts`; the registry calls this
  /// right after construction, before the driver serves. Recovers the
  /// directory (snapshot + WAL scan), replays the state through the
  /// bulk path with logging still disarmed, runs the deep validators,
  /// and only then arms the WAL. Throws store::StoreError when the
  /// directory is corrupt or recovery validation fails — the driver
  /// refuses to serve rather than serving a state the validators
  /// cannot certify. kOff is a no-op. Throws std::invalid_argument for
  /// K/V the file formats cannot serialize (non-trivially-copyable).
  virtual void open_durability(const Options& opts) {
    if (opts.durability == store::DurabilityMode::kOff) return;
    if constexpr (!store::kSerializable<K, V>) {
      throw std::invalid_argument(
          "durability requires trivially copyable key/value types");
    } else {
      durability_ = std::make_unique<store::Durability<K, V>>(
          opts.durability_dir, opts.durability);
      store::RecoveredState<K, V> rec = durability_->recover();
      std::vector<core::Result<V, K>> scratch;
      store::replay_into(rec, [&](const std::vector<core::Op<K, V>>& batch) {
        do_run(batch, scratch);
      });
      quiesce();
      const std::string err = validate();
      if (!err.empty()) {
        durability_.reset();
        throw store::StoreError("recovery validation failed (" +
                                opts.durability_dir + "): " + err);
      }
      durability_->arm();
    }
  }

  /// Compaction: quiesces, drains the sorted contents, writes a fresh
  /// snapshot, and rotates the WAL — under the writer gate, so the
  /// snapshot reflects exactly the logged prefix. Returns "" on
  /// success, else the failure description (the driver is then in
  /// sticky read-only mode). Throws std::logic_error with durability
  /// off — checkpointing without a WAL to rotate is a caller bug.
  virtual std::string checkpoint() {
    if (!durability_) {
      throw std::logic_error(
          "checkpoint() requires durability (Options::durability != kOff)");
    }
    std::unique_lock<std::shared_mutex> gate(store_gate_);
    quiesce();
    const std::vector<std::pair<K, V>> entries = export_sorted();
    try {
      durability_->checkpoint(entries);
    } catch (const store::StoreError& e) {
      return e.what();
    }
    return {};
  }

  /// The full contents as sorted (key, value) pairs (quiesces first) —
  /// the export surface the checkpoint writer serializes.
  virtual std::vector<std::pair<K, V>> export_sorted() = 0;

  /// True once the driver degraded to sticky read-only mode (a
  /// persistence failure with durability armed). Mutations shed
  /// kReadOnly; reads keep serving.
  virtual bool read_only() const noexcept {
    return durability_ != nullptr && durability_->read_only();
  }

  /// Counter snapshot: admission/retry and durability observability.
  virtual DriverStats stats() const {
    DriverStats s;
    s.admitted = admission_.admitted_total();
    s.shed = admission_.shed_total();
    s.timed_out = admission_.expired_total();
    s.retries = retries_.load(std::memory_order_relaxed);
    s.in_flight = admission_.in_flight();
    if (durability_) {
      const store::DurabilityCounters c = durability_->counters();
      s.durable = true;
      s.read_only = c.read_only;
      s.wal_appends = c.wal_appends;
      s.wal_fsyncs = c.wal_fsyncs;
      s.recovered_ops = c.recovered_ops;
      s.recovered_entries = c.recovered_entries;
      s.torn_tail_truncations = c.torn_tail_truncations;
      s.checkpoints = c.checkpoints;
    }
    return s;
  }

 protected:
  explicit Driver(std::string name, AdmissionConfig admission = {})
      : name_(std::move(name)), admission_(admission) {
    util::faultpt::register_exit_dump();
  }

  /// True when mutations must be WAL-logged (durability recovered,
  /// validated, and armed). One pointer test on the kOff default path.
  bool durable() const noexcept {
    return durability_ != nullptr && durability_->armed();
  }

  virtual core::Result<V, K> run_one(core::Op<K, V> op) = 0;
  virtual void do_submit(core::Op<K, V> op, Ticket* ticket) = 0;
  virtual void do_run(const std::vector<core::Op<K, V>>& ops,
                      std::vector<core::Result<V, K>>& out) = 0;
  virtual core::Result<V, K> do_step(core::Op<K, V> op) = 0;

  void check_ordered(const core::Op<K, V>& op) const {
    if (core::is_ordered(op.type) && !supports_ordered()) refuse_ordered();
  }
  void check_ordered_batch(const std::vector<core::Op<K, V>>& ops) const {
    if (supports_ordered()) return;
    for (const auto& op : ops) {
      if (core::is_ordered(op.type)) refuse_ordered();
    }
  }

 private:
  /// Shared body of the three async submit forms: protocol refusal,
  /// deadline screen, and the admission decision, each delivered as a
  /// completed ticket; admitted ops arm the ticket's release hook so the
  /// window slot frees on the fulfilling thread.
  void submit_admitted(core::Op<K, V> op, Ticket* ticket) {
    if (core::is_ordered(op.type) && !supports_ordered()) {
      ticket->fulfill(
          core::Result<V, K>::error(core::ResultStatus::kUnsupported));
      return;
    }
    switch (admission_.try_admit(op.deadline_ns)) {
      case Admit::kExpired:
        ticket->fulfill(
            core::Result<V, K>::error(core::ResultStatus::kTimedOut));
        return;
      case Admit::kShed:
        ticket->fulfill(
            core::Result<V, K>::error(core::ResultStatus::kOverloaded));
        return;
      case Admit::kAdmitted:
        break;
    }
    if (durable() && core::is_mutation(op.type)) {
      // Write-ahead: the record must be as durable as the mode promises
      // BEFORE the op can execute (the ack necessarily follows
      // do_submit, so acked ⇒ logged ⇒ fsynced under sync). A shed here
      // releases the admission slot by hand — the release hook is not
      // armed yet — so the window stays conserved.
      if (durability_->read_only()) {
        admission_.release();
        ticket->fulfill(
            core::Result<V, K>::error(core::ResultStatus::kReadOnly));
        return;
      }
      std::shared_lock<std::shared_mutex> gate(store_gate_);
      try {
        const std::uint64_t seq =
            durability_->log(op.type, op.key, op.value);
        durability_->commit(seq);
      } catch (const store::StoreError&) {
        admission_.release();
        ticket->fulfill(
            core::Result<V, K>::error(core::ResultStatus::kReadOnly));
        return;
      }
      if (admission_.bounded()) {
        ticket->on_release = &AdmissionController::release_hook;
        ticket->release_ctx = &admission_;
      }
      // Enqueue under the gate: once checkpoint() holds the gate
      // exclusively and quiesces, every logged op is fully applied.
      do_submit(std::move(op), ticket);
      return;
    }
    if (admission_.bounded()) {
      ticket->on_release = &AdmissionController::release_hook;
      ticket->release_ctx = &admission_;
    }
    do_submit(std::move(op), ticket);
  }

  /// One mutation through the write-ahead sequence (read-only screen,
  /// log, mode-level commit, then execute under the shared gate).
  /// Returns kReadOnly without executing when the persistence path is
  /// (or just became) unusable. NOTE the documented corner: an op can be
  /// logged durably and THEN shed (commit raced a concurrent failure) —
  /// it did not execute in this process, but recovery will replay it
  /// after a restart. The contract callers rely on is one-sided:
  /// acked ⇒ durable; shed ⇒ not executed here.
  template <typename Exec>
  core::Result<V, K> durable_one(core::Op<K, V> op, Exec&& exec) {
    if (durability_->read_only()) {
      return core::Result<V, K>::error(core::ResultStatus::kReadOnly);
    }
    std::shared_lock<std::shared_mutex> gate(store_gate_);
    try {
      const std::uint64_t seq = durability_->log(op.type, op.key, op.value);
      durability_->commit(seq);
    } catch (const store::StoreError&) {
      return core::Result<V, K>::error(core::ResultStatus::kReadOnly);
    }
    return exec(std::move(op));
  }

  static bool batch_has_mutation(const std::vector<core::Op<K, V>>& ops) {
    for (const auto& op : ops) {
      if (core::is_mutation(op.type)) return true;
    }
    return false;
  }

  /// Bulk path with durability armed: log the batch's mutations, ONE
  /// group commit at the batch boundary, then execute — or, degraded,
  /// split the batch so reads still serve.
  void run_durable(const std::vector<core::Op<K, V>>& ops,
                   std::vector<core::Result<V, K>>& out) {
    if (!durability_->read_only()) {
      std::shared_lock<std::shared_mutex> gate(store_gate_);
      bool logged = true;
      std::uint64_t last_seq = 0;
      try {
        for (const auto& op : ops) {
          if (core::is_mutation(op.type)) {
            last_seq = durability_->log(op.type, op.key, op.value);
          }
        }
        durability_->commit(last_seq);
      } catch (const store::StoreError&) {
        logged = false;
      }
      if (logged) {
        do_run(ops, out);
        return;
      }
    }
    run_read_only_split(ops, out);
  }

  /// Degraded bulk execution: mutation slots complete with kReadOnly,
  /// the read subsequence runs as its own batch (relative read order —
  /// and thus phase slicing — is preserved).
  void run_read_only_split(const std::vector<core::Op<K, V>>& ops,
                           std::vector<core::Result<V, K>>& out) {
    out.clear();
    out.resize(ops.size());
    std::vector<core::Op<K, V>> reads;
    std::vector<std::size_t> origin;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (core::is_mutation(ops[i].type)) {
        out[i] = core::Result<V, K>::error(core::ResultStatus::kReadOnly);
      } else {
        reads.push_back(ops[i]);
        origin.push_back(i);
      }
    }
    if (reads.empty()) return;
    std::vector<core::Result<V, K>> read_results;
    do_run(reads, read_results);
    for (std::size_t j = 0; j < origin.size(); ++j) {
      out[origin[j]] = std::move(read_results[j]);
    }
  }

  [[noreturn]] void refuse_ordered() const {
    throw std::invalid_argument(
        "backend '" + name_ +
        "' does not support ordered queries "
        "(predecessor/successor/range-count); pick an ordered-capable "
        "backend — see BackendRegistry::supports_ordered()");
  }

  std::string name_;
  AdmissionController admission_;
  /// Null when durability is off (the default) — every hot-path check
  /// is then one pointer test. The refusing stub type for K/V the file
  /// formats cannot serialize (open_durability throws before it is
  /// ever constructed).
  std::unique_ptr<store::DurabilityFor<K, V>> durability_;
  /// Writer gate: mutations log+execute under shared locks; checkpoint
  /// takes it exclusively so the exported contents match the logged
  /// prefix exactly. Untouched when durability is off.
  std::shared_mutex store_gate_;
  std::atomic<std::uint64_t> retries_{0};
};

namespace detail {

/// Owned-or-shared scheduler wiring: owns a pool sized by Options::workers
/// unless Options::scheduler supplies an external one (which must then
/// outlive the driver). Declare it before the backend/front-end member so
/// an owned pool dies last.
struct SchedulerHandle {
  explicit SchedulerHandle(const Options& opts)
      : owned(opts.scheduler
                  ? nullptr
                  : std::make_unique<sched::Scheduler>(opts.workers)),
        ptr(opts.scheduler ? opts.scheduler : owned.get()) {}

  std::unique_ptr<sched::Scheduler> owned;
  sched::Scheduler* ptr;
};

template <typename B, typename K, typename V>
bool checked_invariants(B& backend) {
  if constexpr (core::HasInvariantCheck<B>) {
    return backend.check_invariants();
  } else {
    (void)backend;
    return true;
  }
}

template <typename B, typename K, typename V>
std::string deep_validate(B& backend) {
  if constexpr (core::HasDeepValidate<B>) {
    return backend.validate();
  } else if constexpr (core::HasInvariantCheck<B>) {
    return backend.check_invariants()
               ? std::string()
               : "check_invariants() failed (backend has no deep validator)";
  } else {
    (void)backend;
    return {};
  }
}

/// The backend's sorted contents for the checkpoint writer; caller
/// quiesces first. Every registered backend has the surface — the throw
/// is a backstop for out-of-tree backends registered without one.
template <typename K, typename V, typename B>
std::vector<std::pair<K, V>> export_sorted_of(B& backend) {
  std::vector<std::pair<K, V>> out;
  if constexpr (core::HasExportEntries<B, K, V>) {
    backend.export_entries(out);
  } else {
    throw std::logic_error(
        "backend has no export_entries surface; durability needs one");
  }
  return out;
}

template <typename K, typename V, typename B>
std::optional<std::size_t> depth_in(B& backend, const K& key) {
  if constexpr (core::HasRecencyDepth<B, K>) {
    return backend.segment_of(key);
  } else {
    (void)backend;
    (void)key;
    return std::nullopt;
  }
}

/// One op through the backend's point surface when it has one (no
/// per-op vector allocations), else through a singleton batch. Ordered
/// kinds always take the singleton-batch path — every ordered-capable
/// backend executes them natively there.
template <typename K, typename V, typename B>
core::Result<V, K> point_apply(B& backend, core::Op<K, V> op) {
  if constexpr (core::HasPointOps<B, K, V>) {
    if (!core::is_ordered(op.type)) {
      core::Result<V, K> r;
      switch (op.type) {
        case core::OpType::kSearch: {
          auto v = backend.search(op.key);
          if constexpr (std::is_pointer_v<decltype(v)>) {
            r.status = v != nullptr ? core::ResultStatus::kFound
                                    : core::ResultStatus::kNotFound;
            if (v) r.value = *v;
          } else {
            r.status = v.has_value() ? core::ResultStatus::kFound
                                     : core::ResultStatus::kNotFound;
            r.value = std::move(v);
          }
          break;
        }
        case core::OpType::kInsert:
        case core::OpType::kUpsert:
          r.status = backend.insert(op.key, std::move(op.value))
                         ? core::ResultStatus::kInserted
                         : core::ResultStatus::kUpdated;
          break;
        case core::OpType::kErase: {
          auto v = backend.erase(op.key);
          r.status = v.has_value() ? core::ResultStatus::kErased
                                   : core::ResultStatus::kNotFound;
          r.value = std::move(v);
          break;
        }
        default:
          break;  // unreachable: ordered kinds filtered above
      }
      return r;
    }
  }
  // Singleton batch on the stack — no per-op vector allocation.
  const core::Op<K, V> one[1] = {std::move(op)};
  return backend.execute_batch(std::span<const core::Op<K, V>>(one))[0];
}

}  // namespace detail

/// Backend wired behind core::AsyncMap: blocking callers feed the
/// parallel buffer, a scheduler worker drives cut batches through the
/// backend (m0, m1, and the sequential baselines).
template <typename K, typename V, typename B>
  requires core::MapBackend<B, K, V>
class AsyncDriver final : public Driver<K, V> {
 public:
  using typename Driver<K, V>::Ticket;

  AsyncDriver(std::string name, const Options& opts)
      : Driver<K, V>(std::move(name), admission_config(opts)),
        scheduler_(opts),
        async_(make_backend(*scheduler_.ptr), *scheduler_.ptr) {}

  bool supports_ordered() const noexcept override {
    return core::backend_traits<B>::supports_ordered;
  }

  std::optional<std::size_t> depth_of(const K& key) override {
    async_.quiesce();
    return detail::depth_in<K, V>(async_.map(), key);
  }

  void quiesce() override { async_.quiesce(); }
  std::size_t size() override {
    async_.quiesce();
    return async_.map().size();
  }
  bool check() override {
    async_.quiesce();
    return detail::checked_invariants<B, K, V>(async_.map());
  }
  std::string validate() override {
    async_.quiesce();
    return detail::deep_validate<B, K, V>(async_.map());
  }
  std::vector<std::pair<K, V>> export_sorted() override {
    async_.quiesce();
    return detail::export_sorted_of<K, V>(async_.map());
  }
  sched::Scheduler* scheduler() noexcept override { return scheduler_.ptr; }

  /// The wrapped backend; safe only when quiescent.
  B& backend() {
    async_.quiesce();
    return async_.map();
  }

 protected:
  core::Result<V, K> run_one(core::Op<K, V> op) override {
    core::OpTicket<V, K> ticket;
    this->check_ordered(op);
    async_.submit(std::move(op), &ticket);
    return ticket.wait();
  }

  void do_submit(core::Op<K, V> op, Ticket* ticket) override {
    async_.submit(std::move(op), ticket);
  }

  void do_run(const std::vector<core::Op<K, V>>& ops,
              std::vector<core::Result<V, K>>& out) override {
    async_.quiesce();
    core::execute_batch_into<K, V>(
        async_.map(), std::span<const core::Op<K, V>>(ops), out);
  }

  core::Result<V, K> do_step(core::Op<K, V> op) override {
    async_.quiesce();
    return detail::point_apply<K, V>(async_.map(), std::move(op));
  }

 private:
  static B make_backend(sched::Scheduler& s) {
    if constexpr (core::backend_traits<B>::needs_scheduler) {
      return B(&s);
    } else {
      (void)s;
      return B();
    }
  }

  // Declaration order is destruction-order-critical: the AsyncMap (and
  // the backend inside it) must die before the scheduler its drive loop
  // and forks run on.
  detail::SchedulerHandle scheduler_;
  core::AsyncMap<K, V, B> async_;
};

/// Natively-asynchronous backend (M2): the backend already provides a
/// thread-safe submit/execute_batch/quiesce surface; the driver only
/// supplies the scheduler and the uniform API.
template <typename K, typename V, typename B>
  requires(core::MapBackend<B, K, V> && core::backend_traits<B>::native_async)
class NativeAsyncDriver final : public Driver<K, V> {
 public:
  using typename Driver<K, V>::Ticket;

  NativeAsyncDriver(std::string name, const Options& opts)
      : Driver<K, V>(std::move(name), admission_config(opts)),
        scheduler_(opts),
        backend_(*scheduler_.ptr, opts.p) {}

  bool supports_ordered() const noexcept override {
    return core::backend_traits<B>::supports_ordered;
  }

  std::optional<std::size_t> depth_of(const K& key) override {
    backend_.quiesce();
    return detail::depth_in<K, V>(backend_, key);
  }

  void quiesce() override { backend_.quiesce(); }
  std::size_t size() override {
    backend_.quiesce();
    return backend_.size();
  }
  bool check() override {
    backend_.quiesce();
    return detail::checked_invariants<B, K, V>(backend_);
  }
  std::string validate() override {
    backend_.quiesce();
    return detail::deep_validate<B, K, V>(backend_);
  }
  std::vector<std::pair<K, V>> export_sorted() override {
    backend_.quiesce();
    return detail::export_sorted_of<K, V>(backend_);
  }
  sched::Scheduler* scheduler() noexcept override { return scheduler_.ptr; }

  B& backend() { return backend_; }

 protected:
  core::Result<V, K> run_one(core::Op<K, V> op) override {
    core::OpTicket<V, K> ticket;
    this->check_ordered(op);
    backend_.submit(std::move(op), &ticket);
    return ticket.wait();
  }

  void do_submit(core::Op<K, V> op, Ticket* ticket) override {
    backend_.submit(std::move(op), ticket);
  }

  void do_run(const std::vector<core::Op<K, V>>& ops,
              std::vector<core::Result<V, K>>& out) override {
    core::execute_batch_into<K, V>(
        backend_, std::span<const core::Op<K, V>>(ops), out);
  }

  core::Result<V, K> do_step(core::Op<K, V> op) override {
    return run_one(std::move(op));  // the pipeline IS the sequential path
  }

 private:
  detail::SchedulerHandle scheduler_;  // must outlive backend_
  B backend_;
};

/// Point-thread-safe backend without its own batcher (the locked
/// baseline): ops go straight in from the calling thread.
template <typename K, typename V, typename B>
  requires(core::MapBackend<B, K, V> &&
           core::backend_traits<B>::point_thread_safe)
class DirectDriver final : public Driver<K, V> {
 public:
  using typename Driver<K, V>::Ticket;

  DirectDriver(std::string name, const Options& opts)
      : Driver<K, V>(std::move(name), admission_config(opts)) {}

  bool supports_ordered() const noexcept override {
    return core::backend_traits<B>::supports_ordered;
  }

  std::optional<std::size_t> depth_of(const K& key) override {
    return detail::depth_in<K, V>(backend_, key);
  }

  void quiesce() override {}
  std::size_t size() override { return backend_.size(); }
  bool check() override { return detail::checked_invariants<B, K, V>(backend_); }
  std::string validate() override {
    return detail::deep_validate<B, K, V>(backend_);
  }
  std::vector<std::pair<K, V>> export_sorted() override {
    return detail::export_sorted_of<K, V>(backend_);
  }
  sched::Scheduler* scheduler() noexcept override { return nullptr; }

  B& backend() { return backend_; }

 protected:
  core::Result<V, K> run_one(core::Op<K, V> op) override {
    this->check_ordered(op);
    return detail::point_apply<K, V>(backend_, std::move(op));
  }

  void do_submit(core::Op<K, V> op, Ticket* ticket) override {
    // No async front end: execute inline and fulfill on the calling
    // thread (the submission API stays uniform; completion runs here).
    ticket->fulfill(detail::point_apply<K, V>(backend_, std::move(op)));
  }

  void do_run(const std::vector<core::Op<K, V>>& ops,
              std::vector<core::Result<V, K>>& out) override {
    core::execute_batch_into<K, V>(
        backend_, std::span<const core::Op<K, V>>(ops), out);
  }

  core::Result<V, K> do_step(core::Op<K, V> op) override {
    return run_one(std::move(op));
  }

 private:
  B backend_;
};

}  // namespace pwss::driver
