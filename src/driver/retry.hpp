#pragma once
// Retry with capped exponential backoff + jitter (DESIGN.md "Overload &
// fault model"). The blocking per-op conveniences use this to absorb
// transient kOverloaded results — a shed admission or an injected buffer
// rejection — transparently: a kOverloaded op never executed (terminal-
// status contract), so re-submitting it is always safe.
//
// Deadline-aware: a backoff step that would sleep past the op's deadline
// is refused, so the caller surfaces kTimedOut/kOverloaded instead of
// oversleeping. Jitter decorrelates competing retriers (the classic
// thundering-herd fix) and is derived from the same splitmix64 the
// schedule-point registry uses, salted per thread.

#include <cstdint>
#include <thread>

#include "core/ops.hpp"
#include "util/schedule_points.hpp"  // mix64

namespace pwss::driver::retry {

struct BackoffPolicy {
  std::uint64_t initial_delay_ns = 10'000;  ///< first retry: ~10 us
  std::uint64_t max_delay_ns = 2'000'000;   ///< cap each delay at ~2 ms
  unsigned max_attempts = 12;               ///< retries before giving up
};

/// One retry loop's state. Usage:
///
///   Backoff backoff;
///   for (;;) {
///     auto r = attempt();
///     if (r.status != ResultStatus::kOverloaded) return r;
///     if (!backoff.next(op.deadline_ns)) return r;  // budget exhausted
///   }
///
/// next() sleeps the jittered delay and returns true, or returns false
/// without sleeping when the attempt budget is spent or the next delay
/// would cross the deadline.
class Backoff {
 public:
  explicit Backoff(BackoffPolicy policy = {}) : policy_(policy) {}

  unsigned attempts() const noexcept { return attempt_; }

  bool next(std::uint64_t deadline_ns) noexcept {
    if (attempt_ >= policy_.max_attempts) return false;
    ++attempt_;
    std::uint64_t delay = policy_.initial_delay_ns;
    for (unsigned i = 1; i < attempt_ && delay < policy_.max_delay_ns; ++i) {
      delay <<= 1;
    }
    if (delay > policy_.max_delay_ns) delay = policy_.max_delay_ns;
    // Full jitter over [delay/2, delay]: enough spread to decorrelate
    // herds, never less than half the nominal step so the sequence still
    // backs off.
    thread_local std::uint64_t salt = util::schedpt::mix64(
        std::hash<std::thread::id>{}(std::this_thread::get_id()));
    const std::uint64_t h = util::schedpt::mix64(salt ^ (seq_ += 0x9e37));
    const std::uint64_t jittered = delay / 2 + h % (delay / 2 + 1);
    if (deadline_ns != 0 && core::now_ns() + jittered >= deadline_ns) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::nanoseconds(jittered));
    return true;
  }

 private:
  BackoffPolicy policy_;
  unsigned attempt_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace pwss::driver::retry
