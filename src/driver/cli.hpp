#pragma once
// Shared command-line front end for bench/ and examples/: every binary
// accepts the same backend-selection flags, resolved through the one
// BackendRegistry.
//
//   --backend=NAME[,NAME...]   backends to run (default: binary-specific)
//   --backend=all              every registered backend
//   --workers=N                scheduler worker count (0 = hardware)
//   --p=N                      M2 bunch parameter p (0 = worker count)
//   --shards=N                 shard count for sharded:* backends (0 = 4)
//   --max-in-flight=N          admission window: max admitted-but-not-
//                              completed ops (0 = unbounded; per shard on
//                              sharded:* backends)
//   --admission=reject|block   full-window policy: shed with kOverloaded
//                              (default) or park until a slot frees /
//                              the op's deadline passes
//   --mix=S,I,E[,P,Su,R]       op mix fractions (search,insert,erase and
//                              optionally predecessor,successor,range-count;
//                              must sum to 1). A mix with ordered weights is
//                              refused for backends without ordered support
//                              (BackendRegistry::require_ordered).
//   --range-span=N             width of range-count queries (default 1024)
//   --durability=off|async|sync  write-ahead logging mode (default off;
//                              sync = acked mutations are fsynced)
//   --durability-dir=PATH      snapshot + WAL directory (default pwss-data;
//                              sharded backends use PATH/shard-N)
//   --serve=ADDR               serve the backend over TCP ([host]:port;
//                              port 0 = kernel-assigned) instead of running
//                              a workload — tools/pwss_serve.cpp honours it
//   --socket=PATH              serve over a Unix-domain socket (may be
//                              combined with --serve for both listeners)
//   --net-window=N             per-connection pipeline window when serving
//                              (requests beyond it are answered kOverloaded
//                              on the wire; default 64)
//   --stats                    print the driver's counter snapshot at exit
//                              (admission/retry + durability + net)
//   --validate                 run the deep validators after the workload;
//                              a report makes the binary exit nonzero
//   --list-backends            print the registry and exit
//   --help                     usage
//
// `--backend=sharded:NAME` wraps any registered backend in the sharded
// driver (validated against the registry like every other name).
//
// parse() validates every requested name against the registry and exits
// with the known-backend list on a miss, so a typo cannot silently fall
// back to bespoke wiring.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "driver/registry.hpp"
#include "store/durability.hpp"
#include "util/workload.hpp"

namespace pwss::driver {

struct CliOptions {
  std::vector<std::string> backends;  // validated registry names
  Options driver;                     // workers / p / durability knobs
  util::OpMix mix;                    // op mix (default: all searches)
  bool mix_given = false;             // --mix was present
  bool print_stats = false;           // --stats was present
  bool validate = false;              // --validate was present
  std::string serve_addr;             // --serve TCP listen address ("" = off)
  std::string socket_path;            // --socket Unix listen path ("" = off)
  unsigned net_window = 64;           // --net-window pipeline depth per conn
};

namespace detail {

inline std::vector<std::string> split_csv(std::string_view s) {
  std::vector<std::string> out;
  while (!s.empty()) {
    const std::size_t comma = s.find(',');
    out.emplace_back(s.substr(0, comma));
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return out;
}

/// Strict fraction parse for --mix: [0,1]-range doubles only.
inline double parse_fraction(const char* argv0, std::string_view text) {
  double value = 0.0;
  try {
    std::size_t used = 0;
    value = std::stod(std::string(text), &used);
    if (used != text.size()) throw std::invalid_argument("trailing junk");
  } catch (const std::exception&) {
    std::fprintf(stderr, "%s: --mix expects fractions, got '%.*s'\n", argv0,
                 static_cast<int>(text.size()), text.data());
    std::exit(2);
  }
  // Negated form so NaN (which compares false everywhere) is rejected
  // rather than slipping through every later sum check.
  if (!(value >= 0.0 && value <= 1.0)) {
    std::fprintf(stderr, "%s: --mix fractions must be in [0, 1]\n", argv0);
    std::exit(2);
  }
  return value;
}

/// Parses "--mix=S,I,E[,P,Su,R]" into an OpMix (sum validated by the
/// workload layer when applied; shape validated here).
inline util::OpMix parse_mix(const char* argv0, std::string_view text) {
  const std::vector<std::string> parts = split_csv(text);
  if (parts.size() != 3 && parts.size() != 6) {
    std::fprintf(stderr,
                 "%s: --mix expects 3 or 6 comma-separated fractions "
                 "(search,insert,erase[,pred,succ,range])\n",
                 argv0);
    std::exit(2);
  }
  util::OpMix mix;
  mix.search = parse_fraction(argv0, parts[0]);
  mix.insert = parse_fraction(argv0, parts[1]);
  mix.erase = parse_fraction(argv0, parts[2]);
  if (parts.size() == 6) {
    mix.pred = parse_fraction(argv0, parts[3]);
    mix.succ = parse_fraction(argv0, parts[4]);
    mix.range = parse_fraction(argv0, parts[5]);
  }
  const double total = mix.search + mix.insert + mix.erase + mix.pred +
                       mix.succ + mix.range;
  if (!(total >= 1.0 - 1e-9 && total <= 1.0 + 1e-9)) {  // NaN-safe
    std::fprintf(stderr, "%s: --mix fractions must sum to 1 (got %f)\n",
                 argv0, total);
    std::exit(2);
  }
  return mix;
}

/// Strict unsigned parse: digits only, fits in unsigned. Anything else
/// (including "-1", "abc", "") is a usage error, not a silent fallback.
inline unsigned parse_unsigned(const char* argv0, std::string_view flag,
                               std::string_view text) {
  unsigned long value = 0;
  bool ok = !text.empty() && text.size() <= 10;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      ok = false;
      break;
    }
    value = value * 10 + static_cast<unsigned long>(c - '0');
  }
  if (!ok || value > 0xffffffffUL) {
    std::fprintf(stderr, "%s: %.*s expects a non-negative integer, got '%.*s'\n",
                 argv0, static_cast<int>(flag.size()), flag.data(),
                 static_cast<int>(text.size()), text.data());
    std::exit(2);
  }
  return static_cast<unsigned>(value);
}

}  // namespace detail

/// Parses backend flags for a <K,V>-keyed binary. `defaults` is the
/// backend set the binary runs when --backend is absent (the experiment's
/// comparison panel). Exits on --help/--list-backends/invalid input.
template <typename K, typename V>
CliOptions parse(int argc, char** argv,
                 std::vector<std::string> defaults) {
  const auto& registry = BackendRegistry<K, V>::instance();
  CliOptions cli;
  cli.backends = std::move(defaults);

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: %s [--backend=NAME[,NAME...]|all] [--workers=N] [--p=N]\n"
          "          [--shards=N] [--max-in-flight=N] "
          "[--admission=reject|block]\n"
          "          [--mix=S,I,E[,P,Su,R]] [--range-span=N]\n"
          "          [--durability=off|async|sync] [--durability-dir=PATH]\n"
          "          [--serve=[host]:port] [--socket=PATH] [--net-window=N]\n"
          "          [--stats] [--validate] [--list-backends]\n"
          "       (NAME may be sharded:NAME, e.g. --backend=sharded:m1)\n",
          argv[0]);
      std::exit(0);
    } else if (arg == "--list-backends") {
      for (const auto& e : registry.entries()) {
        std::printf("%-8s %s%s\n", e.name.c_str(), e.description.c_str(),
                    e.supports_ordered ? "" : "  [no ordered queries]");
      }
      std::printf(
          "sharded:<name>  any of the above, --shards instances behind one "
          "shared scheduler\n");
      std::exit(0);
    } else if (arg.starts_with("--mix=")) {
      const std::uint64_t span = cli.mix.range_span;  // --range-span order-proof
      cli.mix =
          detail::parse_mix(argv[0], arg.substr(std::string_view("--mix=").size()));
      cli.mix.range_span = span;
      cli.mix_given = true;
    } else if (arg.starts_with("--range-span=")) {
      cli.mix.range_span = detail::parse_unsigned(
          argv[0], "--range-span",
          arg.substr(std::string_view("--range-span=").size()));
    } else if (arg.starts_with("--backend=")) {
      const std::string_view val = arg.substr(std::string_view("--backend=").size());
      cli.backends =
          val == "all" ? registry.names() : detail::split_csv(val);
    } else if (arg.starts_with("--workers=")) {
      cli.driver.workers = detail::parse_unsigned(
          argv[0], "--workers",
          arg.substr(std::string_view("--workers=").size()));
    } else if (arg.starts_with("--p=")) {
      cli.driver.p = detail::parse_unsigned(
          argv[0], "--p", arg.substr(std::string_view("--p=").size()));
    } else if (arg.starts_with("--shards=")) {
      cli.driver.shards = detail::parse_unsigned(
          argv[0], "--shards",
          arg.substr(std::string_view("--shards=").size()));
    } else if (arg.starts_with("--max-in-flight=")) {
      cli.driver.max_in_flight = detail::parse_unsigned(
          argv[0], "--max-in-flight",
          arg.substr(std::string_view("--max-in-flight=").size()));
    } else if (arg.starts_with("--durability=")) {
      const std::string_view val =
          arg.substr(std::string_view("--durability=").size());
      if (const auto mode = store::parse_durability(val)) {
        cli.driver.durability = *mode;
      } else {
        std::fprintf(stderr,
                     "%s: --durability expects off|async|sync, got '%.*s'\n",
                     argv[0], static_cast<int>(val.size()), val.data());
        std::exit(2);
      }
    } else if (arg.starts_with("--durability-dir=")) {
      cli.driver.durability_dir =
          arg.substr(std::string_view("--durability-dir=").size());
    } else if (arg.starts_with("--serve=")) {
      cli.serve_addr = arg.substr(std::string_view("--serve=").size());
    } else if (arg.starts_with("--socket=")) {
      cli.socket_path = arg.substr(std::string_view("--socket=").size());
    } else if (arg.starts_with("--net-window=")) {
      cli.net_window = detail::parse_unsigned(
          argv[0], "--net-window",
          arg.substr(std::string_view("--net-window=").size()));
    } else if (arg == "--stats") {
      cli.print_stats = true;
    } else if (arg == "--validate") {
      cli.validate = true;
    } else if (arg.starts_with("--admission=")) {
      const std::string_view val =
          arg.substr(std::string_view("--admission=").size());
      if (val == "reject") {
        cli.driver.admission = AdmissionPolicy::kReject;
      } else if (val == "block") {
        cli.driver.admission = AdmissionPolicy::kBlock;
      } else {
        std::fprintf(stderr, "%s: --admission expects reject|block, got '%.*s'\n",
                     argv[0], static_cast<int>(val.size()), val.data());
        std::exit(2);
      }
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s' (try --help)\n",
                   argv[0], argv[i]);
      std::exit(2);
    }
  }

  if (cli.driver.workers > 4096 || cli.driver.p > 4096 ||
      cli.driver.shards > 4096) {
    std::fprintf(stderr, "%s: --workers/--p/--shards must be at most 4096\n",
                 argv[0]);
    std::exit(2);
  }
  if (cli.backends.empty()) {
    std::fprintf(stderr, "%s: --backend needs at least one name; known:",
                 argv[0]);
    for (const auto& e : registry.entries()) {
      std::fprintf(stderr, " %s", e.name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
  for (const auto& name : cli.backends) {
    if (!registry.contains(name)) {
      std::fprintf(stderr, "%s: unknown backend '%s'; known:", argv[0],
                   name.c_str());
      for (const auto& e : registry.entries()) {
        std::fprintf(stderr, " %s", e.name.c_str());
      }
      std::fprintf(stderr, "\n");
      std::exit(2);
    }
  }
  // A mix with ordered weights is refused for backends that cannot run
  // it — the registry's capability bit, not a runtime surprise mid-bench.
  if (cli.mix.has_ordered()) {
    for (const auto& name : cli.backends) {
      try {
        registry.require_ordered(name);
      } catch (const std::invalid_argument& e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        std::exit(2);
      }
    }
  }
  return cli;
}

/// Prints a counter snapshot (--stats) to stderr so it never mixes with
/// result output on stdout. The snapshot is a parameter so callers that
/// fold in extra counters (net::Server::add_stats) print one line set.
template <typename K, typename V>
void print_stats(const Driver<K, V>& driver, const DriverStats& s) {
  std::fprintf(stderr,
               "stats[%s]: admitted=%llu shed=%llu timed_out=%llu "
               "retries=%llu in_flight=%llu\n",
               driver.name().c_str(),
               static_cast<unsigned long long>(s.admitted),
               static_cast<unsigned long long>(s.shed),
               static_cast<unsigned long long>(s.timed_out),
               static_cast<unsigned long long>(s.retries),
               static_cast<unsigned long long>(s.in_flight));
  if (s.durable) {
    std::fprintf(
        stderr,
        "stats[%s]: durable read_only=%d wal_appends=%llu wal_fsyncs=%llu "
        "recovered_ops=%llu recovered_entries=%llu torn_tails=%llu "
        "checkpoints=%llu\n",
        driver.name().c_str(), s.read_only ? 1 : 0,
        static_cast<unsigned long long>(s.wal_appends),
        static_cast<unsigned long long>(s.wal_fsyncs),
        static_cast<unsigned long long>(s.recovered_ops),
        static_cast<unsigned long long>(s.recovered_entries),
        static_cast<unsigned long long>(s.torn_tail_truncations),
        static_cast<unsigned long long>(s.checkpoints));
  }
  if (s.serving) {
    std::fprintf(
        stderr,
        "stats[%s]: net accepted=%llu active=%llu frames_in=%llu "
        "frames_out=%llu protocol_errors=%llu shed_on_wire=%llu\n",
        driver.name().c_str(),
        static_cast<unsigned long long>(s.net_accepted),
        static_cast<unsigned long long>(s.net_active),
        static_cast<unsigned long long>(s.net_frames_in),
        static_cast<unsigned long long>(s.net_frames_out),
        static_cast<unsigned long long>(s.net_protocol_errors),
        static_cast<unsigned long long>(s.net_shed_on_wire));
  }
}

template <typename K, typename V>
void print_stats(const Driver<K, V>& driver) {
  print_stats(driver, driver.stats());
}

/// Post-workload epilogue for --stats/--validate: prints the counter
/// snapshot when asked, runs the deep validators when asked. Returns 0,
/// or 1 when --validate produced a report — callers fold it into their
/// exit status so CI catches a corrupted structure even if every
/// result looked plausible.
template <typename K, typename V>
int finish(const CliOptions& cli, Driver<K, V>& driver) {
  int rc = 0;
  if (cli.validate) {
    driver.quiesce();
    const std::string report = driver.validate();
    if (!report.empty()) {
      std::fprintf(stderr, "validate[%s]: %s\n", driver.name().c_str(),
                   report.c_str());
      rc = 1;
    } else {
      std::fprintf(stderr, "validate[%s]: ok\n", driver.name().c_str());
    }
  }
  if (cli.print_stats) print_stats(driver);
  return rc;
}

}  // namespace pwss::driver
