#pragma once
// ShardedDriver — multi-instance scaling on top of the driver layer: S
// independent backend instances (each with its own front end, any registry
// wiring) behind ONE shared scheduler, presented as a single Driver<K, V>.
//
//   * point ops route by key hash: each key lives in exactly one shard, so
//     per-key program order is the shard's program order;
//   * bulk run() scatters the batch by shard, executes the per-shard
//     sub-batches concurrently (each on its own thread, their internal
//     parallelism on the shared pool), and gathers results back into
//     submission order — a legal linearization per shard (Definition 8:
//     per-key order preserved, results in submission order);
//   * size()/check()/quiesce() aggregate across shards; depth_of() routes
//     to the shard holding the key.
//
// Like the AsyncMap-wrapped drivers, the bulk path must not race with
// concurrent blocking callers on shards whose wiring forbids it (each
// inner run() quiesces its own shard first).
//
// The shards are created through an injected factory — the registry passes
// the wrapped backend's own factory, so `sharded:<name>` works for every
// registered backend without this header depending on the registry.

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/ops.hpp"
#include "driver/driver.hpp"
#include "sched/scheduler.hpp"

namespace pwss::driver {

/// Shard count used when Options::shards is 0.
inline constexpr unsigned kDefaultShards = 4;

/// The registry resolves `sharded:<name>` for every registered backend;
/// benches that apply their own wrapper strip this prefix first.
inline constexpr std::string_view kShardedPrefix = "sharded:";

template <typename K, typename V>
class ShardedDriver final : public Driver<K, V> {
 public:
  using ShardFactory =
      std::function<std::unique_ptr<Driver<K, V>>(const Options&)>;

  /// `make_shard` builds one inner driver; it is called S times with
  /// Options whose scheduler field points at the shared pool — the
  /// caller's Options::scheduler when supplied, else a pool this driver
  /// owns. An owned pool is dropped again when no shard wired itself to
  /// it (e.g. sharded:locked, whose shards are schedulerless).
  ShardedDriver(std::string name, const Options& opts, ShardFactory make_shard)
      : Driver<K, V>(std::move(name)), scheduler_(opts) {
    const unsigned count = opts.shards == 0 ? kDefaultShards : opts.shards;
    Options inner = opts;
    inner.scheduler = scheduler_.ptr;
    inner.shards = 0;
    shards_.reserve(count);
    for (unsigned s = 0; s < count; ++s) shards_.push_back(make_shard(inner));
    if (scheduler_.owned) {
      bool used = false;
      for (auto& s : shards_) used = used || s->scheduler() != nullptr;
      if (!used) {
        scheduler_.owned.reset();
        scheduler_.ptr = nullptr;
      }
    }
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// The s-th shard's driver; aggregate state is only meaningful when
  /// quiescent.
  Driver<K, V>& shard(std::size_t s) { return *shards_[s]; }

  /// The shard index `key` routes to (stable for the driver's lifetime).
  std::size_t shard_of(const K& key) const {
    // std::hash is the identity for integers on common stdlibs; finalize
    // (murmur3 fmix64) so contiguous key ranges spread across shards.
    auto h = static_cast<std::uint64_t>(std::hash<K>{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h % shards_.size());
  }

  using Driver<K, V>::run;
  void run(const std::vector<core::Op<K, V>>& ops,
           std::vector<core::Result<V>>& out) override {
    const std::size_t n = shards_.size();
    std::vector<std::vector<core::Op<K, V>>> scatter(n);
    std::vector<std::vector<std::size_t>> origin(n);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::size_t s = shard_of(ops[i].key);
      scatter[s].push_back(ops[i]);
      origin[s].push_back(i);
    }

    // Per-shard run()s go on dedicated threads, NOT on pool workers: an
    // inner run() may block its thread on pool progress (M2's
    // execute_batch awaits pipeline activations; AsyncMap's quiesce
    // spins), so hosting it on the pool deadlocks once blocking shard
    // tasks occupy every worker. The shards' internal parallelism still
    // runs on the one shared scheduler. The calling thread takes the
    // first non-empty shard itself. Exceptions are captured per shard
    // and the first rethrown after every helper joined, matching the
    // unsharded drivers' propagation.
    out.clear();
    out.resize(ops.size());
    std::vector<std::vector<core::Result<V>>> partial(n);
    std::vector<std::exception_ptr> errors(n);
    auto run_shard = [&](std::size_t s) noexcept {
      try {
        partial[s] = shards_[s]->run(scatter[s]);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    };
    std::vector<std::thread> helpers;
    std::size_t own = n;
    for (std::size_t s = 0; s < n; ++s) {
      if (scatter[s].empty()) continue;
      if (own == n) {
        own = s;
      } else {
        helpers.emplace_back([&run_shard, s] { run_shard(s); });
      }
    }
    if (own != n) run_shard(own);
    for (auto& th : helpers) th.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t j = 0; j < origin[s].size(); ++j) {
        out[origin[s][j]] = std::move(partial[s][j]);
      }
    }
  }

  core::Result<V> step(core::Op<K, V> op) override {
    const std::size_t s = shard_of(op.key);
    return shards_[s]->step(std::move(op));
  }

  std::optional<std::size_t> depth_of(const K& key) override {
    return shards_[shard_of(key)]->depth_of(key);
  }

  void quiesce() override {
    for (auto& s : shards_) s->quiesce();
  }

  std::size_t size() override {
    std::size_t total = 0;
    for (auto& s : shards_) total += s->size();
    return total;
  }

  bool check() override {
    bool ok = true;
    for (auto& s : shards_) ok = s->check() && ok;
    return ok;
  }

  sched::Scheduler* scheduler() noexcept override { return scheduler_.ptr; }

 protected:
  core::Result<V> run_one(core::Op<K, V> op) override {
    Driver<K, V>& s = *shards_[shard_of(op.key)];
    core::Result<V> r;
    switch (op.type) {
      case core::OpType::kSearch:
        r.value = s.search(op.key);
        r.success = r.value.has_value();
        break;
      case core::OpType::kInsert:
        r.success = s.insert(op.key, std::move(op.value));
        break;
      case core::OpType::kErase:
        r.value = s.erase(op.key);
        r.success = r.value.has_value();
        break;
    }
    return r;
  }

 private:
  // Shards die before the shared scheduler their front ends run on.
  detail::SchedulerHandle scheduler_;
  std::vector<std::unique_ptr<Driver<K, V>>> shards_;
};

}  // namespace pwss::driver
