#pragma once
// ShardedDriver — multi-instance scaling on top of the driver layer: S
// independent backend instances (each with its own front end, any registry
// wiring) behind ONE shared scheduler, presented as a single Driver<K, V>.
//
//   * point ops route by key hash: each key lives in exactly one shard, so
//     per-key program order is the shard's program order;
//   * ordered queries (protocol v2) span every shard: predecessor /
//     successor / range-count submissions scatter one sub-query per shard
//     and gather with a max- / min- / sum-reduce when the last shard
//     completes — no thread blocks between scatter and gather;
//   * bulk run() scatters the batch by shard, executes the per-shard
//     sub-batches concurrently (each on its own thread, their internal
//     parallelism on the shared pool), and gathers results back into
//     submission order — a legal linearization per shard (Definition 8:
//     per-key order preserved, results in submission order). Batches with
//     ordered kinds are sliced into point/ordered phases so every ordered
//     query observes exactly the point operations preceding it;
//   * size()/check()/quiesce() aggregate across shards; depth_of() routes
//     to the shard holding the key.
//
// Like the AsyncMap-wrapped drivers, the bulk path must not race with
// concurrent blocking callers on shards whose wiring forbids it (each
// inner run() quiesces its own shard first).
//
// The shards are created through an injected factory — the registry passes
// the wrapped backend's own factory, so `sharded:<name>` works for every
// registered backend without this header depending on the registry.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <iterator>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/async_map.hpp"
#include "core/ops.hpp"
#include "driver/driver.hpp"
#include "sched/scheduler.hpp"
#include "store/format.hpp"

namespace pwss::driver {

/// Shard count used when Options::shards is 0.
inline constexpr unsigned kDefaultShards = 4;

/// The registry resolves `sharded:<name>` for every registered backend;
/// benches that apply their own wrapper strip this prefix first.
inline constexpr std::string_view kShardedPrefix = "sharded:";

template <typename K, typename V>
class ShardedDriver final : public Driver<K, V> {
 public:
  using typename Driver<K, V>::Ticket;
  using ShardFactory =
      std::function<std::unique_ptr<Driver<K, V>>(const Options&)>;

  /// `make_shard` builds one inner driver; it is called S times with
  /// Options whose scheduler field points at the shared pool — the
  /// caller's Options::scheduler when supplied, else a pool this driver
  /// owns. An owned pool is dropped again when no shard wired itself to
  /// it (e.g. sharded:locked, whose shards are schedulerless).
  /// The outer driver's own admission controller stays DISABLED (default
  /// AdmissionConfig): Options::max_in_flight rides the inner Options
  /// copy into every shard, so the window is enforced per shard and one
  /// hot shard sheds its overflow without starving the rest.
  ShardedDriver(std::string name, const Options& opts, ShardFactory make_shard)
      : Driver<K, V>(std::move(name)), scheduler_(opts) {
    const unsigned count = opts.shards == 0 ? kDefaultShards : opts.shards;
    Options inner = opts;
    inner.scheduler = scheduler_.ptr;
    inner.shards = 0;
    shards_.reserve(count);
    for (unsigned s = 0; s < count; ++s) shards_.push_back(make_shard(inner));
    if (scheduler_.owned) {
      bool used = false;
      for (auto& s : shards_) used = used || s->scheduler() != nullptr;
      if (!used) {
        scheduler_.owned.reset();
        scheduler_.ptr = nullptr;
      }
    }
  }

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// The s-th shard's driver; aggregate state is only meaningful when
  /// quiescent.
  Driver<K, V>& shard(std::size_t s) { return *shards_[s]; }

  /// The shard index `key` routes to (stable for the driver's lifetime).
  std::size_t shard_of(const K& key) const {
    // std::hash is the identity for integers on common stdlibs; finalize
    // (murmur3 fmix64) so contiguous key ranges spread across shards.
    auto h = static_cast<std::uint64_t>(std::hash<K>{}(key));
    h ^= h >> 33;
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
    return static_cast<std::size_t>(h % shards_.size());
  }

  bool supports_ordered() const noexcept override {
    return shards_.front()->supports_ordered();
  }

  std::optional<std::size_t> depth_of(const K& key) override {
    return shards_[shard_of(key)]->depth_of(key);
  }

  void quiesce() override {
    for (auto& s : shards_) s->quiesce();
  }

  std::size_t size() override {
    std::size_t total = 0;
    for (auto& s : shards_) total += s->size();
    return total;
  }

  bool check() override {
    bool ok = true;
    for (auto& s : shards_) ok = s->check() && ok;
    return ok;
  }

  std::string validate() override {
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      std::string err = shards_[i]->validate();
      if (!err.empty()) {
        return "shard[" + std::to_string(i) + "]: " + err;
      }
    }
    return {};
  }

  sched::Scheduler* scheduler() noexcept override { return scheduler_.ptr; }

  /// Per-shard durability: each shard recovers from and logs to its own
  /// subdirectory (keys are hash-partitioned, so the shard stores hold
  /// disjoint key sets). The outer driver's durability layer stays null
  /// — scatter paths route through the shards' PUBLIC run/submit/step,
  /// so write-ahead logging, group commit, and read-only shedding all
  /// happen inside the shard that owns the key.
  void open_durability(const Options& opts) override {
    if (opts.durability == store::DurabilityMode::kOff) return;
    store::ensure_dir(opts.durability_dir);
    Options inner = opts;
    inner.scheduler = scheduler_.ptr;
    inner.shards = 0;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      inner.durability_dir =
          opts.durability_dir + "/shard-" + std::to_string(s);
      shards_[s]->open_durability(inner);
    }
  }

  /// Checkpoints every shard; error reports are concatenated so one
  /// degraded shard does not hide another's.
  std::string checkpoint() override {
    std::string errors;
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      std::string err = shards_[s]->checkpoint();
      if (!err.empty()) {
        if (!errors.empty()) errors += "; ";
        errors += "shard[" + std::to_string(s) + "]: " + err;
      }
    }
    return errors;
  }

  std::vector<std::pair<K, V>> export_sorted() override {
    std::vector<std::pair<K, V>> out;
    for (auto& s : shards_) {
      auto part = s->export_sorted();
      out.insert(out.end(), std::make_move_iterator(part.begin()),
                 std::make_move_iterator(part.end()));
    }
    // Disjoint key sets per shard: a plain sort, no dedup needed.
    std::sort(out.begin(), out.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    return out;
  }

  /// Degradation is per shard (one shard's disk failing sheds only the
  /// keys it owns); any degraded shard makes the aggregate report true.
  bool read_only() const noexcept override {
    for (const auto& s : shards_) {
      if (s->read_only()) return true;
    }
    return false;
  }

  DriverStats stats() const override {
    DriverStats total = Driver<K, V>::stats();  // outer retries/admission
    for (const auto& s : shards_) total += s->stats();
    return total;
  }

 protected:
  void do_run(const std::vector<core::Op<K, V>>& ops,
              std::vector<core::Result<V, K>>& out) override {
    out.clear();
    out.resize(ops.size());
    // One phase == the whole batch when no ordered kinds are present,
    // i.e. the common case costs one scan.
    core::for_each_phase(
        std::span<const core::Op<K, V>>(ops),
        [&](std::size_t b, std::size_t e) { run_point_phase(ops, b, e, out); },
        [&](std::size_t b, std::size_t e) {
          run_ordered_phase(ops, b, e, out);
        });
  }

  core::Result<V, K> do_step(core::Op<K, V> op) override {
    if (core::is_ordered(op.type)) {
      // Single-owner path: consult every shard synchronously and reduce.
      // An errored sub-answer poisons the reduce (see sub_done).
      core::Result<V, K> best;
      for (auto& s : shards_) {
        core::Result<V, K> shard_r = s->step(op);
        if (shard_r.is_error()) return shard_r;
        reduce_ordered(op.type, best, std::move(shard_r));
      }
      if (op.type == core::OpType::kRangeCount) {
        best.status = core::ResultStatus::kFound;
      }
      return best;
    }
    return shards_[shard_of(op.key)]->step(std::move(op));
  }

  void do_submit(core::Op<K, V> op, Ticket* ticket) override {
    if (!core::is_ordered(op.type)) {
      shards_[shard_of(op.key)]->submit(std::move(op), ticket);
      return;
    }
    // Scatter one sub-query per shard; the last completion reduces and
    // fulfills the caller's ticket. The gather state owns the sub-tickets
    // and frees itself — no thread waits.
    auto* gather = new OrderedGather(op.type, ticket, shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      gather->subs[s].owner = gather;
      gather->subs[s].on_complete = &OrderedGather::sub_done;
      shards_[s]->submit(op, &gather->subs[s]);
    }
  }

  core::Result<V, K> run_one(core::Op<K, V> op) override {
    this->check_ordered(op);
    core::OpTicket<V, K> ticket;
    do_submit(std::move(op), &ticket);
    return ticket.wait();
  }

 private:
  /// Per-shard sub-ticket carrying the back-pointer the completion hook
  /// needs to find its gather state.
  struct SubTicket : core::OpTicket<V, K> {
    void* owner = nullptr;
  };

  /// Scatter/gather state for one ordered submission across all shards.
  struct OrderedGather {
    core::OpType type;
    Ticket* target;
    std::atomic<std::size_t> remaining;
    std::vector<SubTicket> subs;

    OrderedGather(core::OpType t, Ticket* tgt, std::size_t n)
        : type(t), target(tgt), remaining(n), subs(n) {}

    static void sub_done(core::OpTicket<V, K>* t) {
      auto* sub = static_cast<SubTicket*>(t);
      auto* g = static_cast<OrderedGather*>(sub->owner);
      if (g->remaining.fetch_sub(1, std::memory_order_acq_rel) != 1) return;
      // Last shard in: reduce and deliver. Any errored sub-query (a shard
      // shed it, or its deadline passed) poisons the whole gather — a
      // reduce over fewer than all shards would silently return a wrong
      // answer, and an errored op must surface as errored (the blocking
      // path's retry resubmits the full scatter).
      core::Result<V, K> best;
      for (auto& s : g->subs) {
        if (s.result.is_error()) {
          best = core::Result<V, K>::error(s.result.status);
          g->target->fulfill(std::move(best));
          delete g;
          return;
        }
      }
      for (auto& s : g->subs) {
        reduce_ordered(g->type, best, std::move(s.result));
      }
      if (g->type == core::OpType::kRangeCount) {
        best.status = core::ResultStatus::kFound;
      }
      g->target->fulfill(std::move(best));
      delete g;
    }
  };

  /// Folds one shard's answer into the running best: predecessor keeps the
  /// max matched key, successor the min, range-count the sum.
  static void reduce_ordered(core::OpType type, core::Result<V, K>& best,
                             core::Result<V, K> shard_r) {
    if (type == core::OpType::kRangeCount) {
      best.count += shard_r.count;
      return;
    }
    if (shard_r.status != core::ResultStatus::kFound) return;
    const bool better =
        !best.matched_key.has_value() ||
        (type == core::OpType::kPredecessor
             ? *best.matched_key < *shard_r.matched_key
             : *shard_r.matched_key < *best.matched_key);
    if (better) best = std::move(shard_r);
  }

  /// One point phase scattered by shard; per-shard run()s go on dedicated
  /// threads, NOT on pool workers: an inner run() may block its thread on
  /// pool progress (M2's execute_batch awaits pipeline activations;
  /// AsyncMap's quiesce spins), so hosting it on the pool deadlocks once
  /// blocking shard tasks occupy every worker. The shards' internal
  /// parallelism still runs on the one shared scheduler. The calling
  /// thread takes the first non-empty shard itself. Exceptions are
  /// captured per shard and the first rethrown after every helper joined,
  /// matching the unsharded drivers' propagation.
  void run_point_phase(const std::vector<core::Op<K, V>>& ops,
                       std::size_t begin, std::size_t end,
                       std::vector<core::Result<V, K>>& out) {
    const std::size_t n = shards_.size();
    std::vector<std::vector<core::Op<K, V>>> scatter(n);
    std::vector<std::vector<std::size_t>> origin(n);
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t s = shard_of(ops[i].key);
      scatter[s].push_back(ops[i]);
      origin[s].push_back(i);
    }

    std::vector<std::vector<core::Result<V, K>>> partial(n);
    std::vector<std::exception_ptr> errors(n);
    auto run_shard = [&](std::size_t s) noexcept {
      try {
        partial[s] = shards_[s]->run(scatter[s]);
      } catch (...) {
        errors[s] = std::current_exception();
      }
    };
    std::vector<std::thread> helpers;
    std::size_t own = n;
    for (std::size_t s = 0; s < n; ++s) {
      if (scatter[s].empty()) continue;
      if (own == n) {
        own = s;
      } else {
        helpers.emplace_back([&run_shard, s] { run_shard(s); });
      }
    }
    if (own != n) run_shard(own);
    for (auto& th : helpers) th.join();
    for (auto& e : errors) {
      if (e) std::rethrow_exception(e);
    }

    for (std::size_t s = 0; s < n; ++s) {
      for (std::size_t j = 0; j < origin[s].size(); ++j) {
        out[origin[s][j]] = std::move(partial[s][j]);
      }
    }
  }

  /// One ordered phase: every query scatters to all shards through the
  /// async submission path (read-only, so concurrent shard reads are
  /// fine); the phase boundary waits for all gathers before the next
  /// point phase mutates anything.
  void run_ordered_phase(const std::vector<core::Op<K, V>>& ops,
                         std::size_t begin, std::size_t end,
                         std::vector<core::Result<V, K>>& out) {
    std::vector<core::OpTicket<V, K>> tickets(end - begin);
    for (std::size_t i = begin; i < end; ++i) {
      do_submit(ops[i], &tickets[i - begin]);
    }
    for (std::size_t i = begin; i < end; ++i) {
      out[i] = tickets[i - begin].wait();
    }
  }

  // Shards die before the shared scheduler their front ends run on.
  detail::SchedulerHandle scheduler_;
  std::vector<std::unique_ptr<Driver<K, V>>> shards_;
};

}  // namespace pwss::driver
