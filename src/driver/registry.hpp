#pragma once
// BackendRegistry — the single string -> factory table behind every
// `--backend=<name>` flag in bench/ and examples/, and behind the
// registry-parameterized test suites. New backends (sharded variants, new
// baselines, future structures) land as one `add()` call instead of a
// fan-out edit across every binary.
//
// The registry is a per-<K,V> singleton pre-populated with the library's
// seven backends:
//
//   name     structure                          wiring
//   -------  ---------------------------------  -----------------
//   m0       Section 5 sequential working-set   AsyncMap front end
//   m1       Section 6 batch-parallel           AsyncMap front end
//   m2       Section 7 pipelined                native async
//   iacono   Iacono's working-set structure     AsyncMap front end
//   splay    bottom-up splay tree               AsyncMap front end
//   avl      join-based AVL (non-adjusting)     AsyncMap front end
//   locked   mutex around the AVL               direct point ops
//
// Any registered name also resolves with a `sharded:` prefix
// (`sharded:m1`, `sharded:locked`, ...): Options::shards instances of the
// named backend behind one shared scheduler (driver/sharded.hpp).

#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "baseline/batched.hpp"
#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "driver/driver.hpp"
#include "driver/sharded.hpp"

namespace pwss::driver {

template <typename K, typename V>
class BackendRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Driver<K, V>>(const Options&)>;

  struct Entry {
    std::string name;
    std::string description;
    Factory make;
    /// Protocol-v2 ordered-query capability (kPredecessor/kSuccessor/
    /// kRangeCount); recorded from core::backend_traits at registration so
    /// callers can probe/refuse before constructing a driver.
    bool supports_ordered = true;
  };

  /// The process-wide registry for this <K,V>, pre-populated with the
  /// seven library backends.
  static BackendRegistry& instance() {
    static BackendRegistry reg = make_default();
    return reg;
  }

  /// Registers a backend; returns false (and changes nothing) if the name
  /// is taken. `supports_ordered` should come from the backend's
  /// core::backend_traits (defaults to true, the v2 norm).
  bool add(std::string name, std::string description, Factory make,
           bool supports_ordered = true) {
    if (find(name)) return false;
    entries_.push_back({std::move(name), std::move(description),
                        std::move(make), supports_ordered});
    return true;
  }

  /// True for registered names and for `sharded:<registered name>`
  /// (sharding does not nest).
  bool contains(std::string_view name) const {
    if (name.starts_with(kShardedPrefix)) {
      return find(name.substr(kShardedPrefix.size())) != nullptr;
    }
    return find(name) != nullptr;
  }

  /// Ordered-query capability of a registered name (`sharded:` wrappers
  /// inherit the inner backend's); false for unknown names.
  bool supports_ordered(std::string_view name) const {
    if (name.starts_with(kShardedPrefix)) {
      name = name.substr(kShardedPrefix.size());
    }
    const Entry* e = find(name);
    return e != nullptr && e->supports_ordered;
  }

  /// Throws std::invalid_argument (naming the ordered-capable backends)
  /// unless `name` is registered and supports the ordered kinds — the
  /// registry-level refusal the CLI and tests use before wiring anything.
  void require_ordered(std::string_view name) const {
    if (supports_ordered(name)) return;
    std::string msg = "backend '" + std::string(name) +
                      "' does not support ordered queries "
                      "(predecessor/successor/range-count); ordered-capable:";
    for (const auto& e : entries_) {
      if (e.supports_ordered) msg += " " + e.name;
    }
    throw std::invalid_argument(msg);
  }

  /// Creates a driver, or throws std::invalid_argument naming the known
  /// backends. Use contains() to probe without throwing. A `sharded:`
  /// prefix wraps Options::shards instances of the named backend behind
  /// one shared scheduler. With Options::durability != kOff the driver
  /// recovers its directory (validated) and arms its WAL before it is
  /// returned — store::StoreError propagates when the store is corrupt.
  std::unique_ptr<Driver<K, V>> create(std::string_view name,
                                       const Options& opts = {}) const {
    if (name.starts_with(kShardedPrefix)) {
      if (const Entry* e = find(name.substr(kShardedPrefix.size()))) {
        auto driver = std::make_unique<ShardedDriver<K, V>>(std::string(name),
                                                            opts, e->make);
        driver->open_durability(opts);
        return driver;
      }
    } else if (const Entry* e = find(name)) {
      auto driver = e->make(opts);
      driver->open_durability(opts);
      return driver;
    }
    std::string msg = "unknown backend '" + std::string(name) + "'; known:";
    for (const auto& e : entries_) msg += " " + e.name;
    msg += " (each also as sharded:<name>)";
    throw std::invalid_argument(msg);
  }

  const std::vector<Entry>& entries() const { return entries_; }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& e : entries_) out.push_back(e.name);
    return out;
  }

 private:
  const Entry* find(std::string_view name) const {
    for (const auto& e : entries_) {
      if (e.name == name) return &e;
    }
    return nullptr;
  }

  static BackendRegistry make_default() {
    BackendRegistry reg;
    reg.add("m0", "M0 sequential working-set map (Section 5)",
            [](const Options& o) {
              return std::make_unique<AsyncDriver<K, V, core::M0Map<K, V>>>(
                  "m0", o);
            });
    reg.add("m1", "M1 batch-parallel working-set map (Section 6)",
            [](const Options& o) {
              return std::make_unique<AsyncDriver<K, V, core::M1Map<K, V>>>(
                  "m1", o);
            });
    reg.add("m2", "M2 pipelined working-set map (Section 7)",
            [](const Options& o) {
              return std::make_unique<
                  NativeAsyncDriver<K, V, core::M2Map<K, V>>>("m2", o);
            });
    reg.add("iacono", "Iacono's working-set structure (sequential baseline)",
            [](const Options& o) {
              return std::make_unique<
                  AsyncDriver<K, V, baseline::BatchedIacono<K, V>>>("iacono",
                                                                    o);
            });
    reg.add("splay", "bottom-up splay tree (sequential baseline)",
            [](const Options& o) {
              return std::make_unique<
                  AsyncDriver<K, V, baseline::BatchedSplay<K, V>>>("splay", o);
            },
            core::backend_traits<baseline::BatchedSplay<K, V>>::
                supports_ordered);
    reg.add("avl", "join-based AVL map (non-adjusting baseline)",
            [](const Options& o) {
              return std::make_unique<
                  AsyncDriver<K, V, baseline::BatchedAvl<K, V>>>("avl", o);
            });
    reg.add("locked", "mutex-guarded AVL map (coarse-locked baseline)",
            [](const Options& o) {
              return std::make_unique<
                  DirectDriver<K, V, baseline::BatchedLocked<K, V>>>("locked",
                                                                     o);
            });
    return reg;
  }

  std::vector<Entry> entries_;
};

/// Shorthand: make a driver for <K,V> from the default registry.
template <typename K, typename V>
std::unique_ptr<Driver<K, V>> make_driver(std::string_view name,
                                          const Options& opts = {}) {
  return BackendRegistry<K, V>::instance().create(name, opts);
}

}  // namespace pwss::driver
