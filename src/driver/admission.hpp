#pragma once
// Admission control (DESIGN.md "Overload & fault model") — the bounded
// outstanding-op window the network serving layer's backpressure rides on
// (ROADMAP item 1).
//
// A Driver owns one AdmissionController; every asynchronous submission
// and every blocking per-op call passes its accept/shed decision before
// the backend sees the op. Two policies:
//
//   * kReject — a full window sheds immediately with kOverloaded (the
//     caller decides: retry with backoff, drop, or surface the error);
//   * kBlock  — a full window parks the submitting thread until a slot
//     frees or the op's deadline passes (bounded-block). With no
//     deadline it blocks until a slot frees — admitted ops always
//     complete (terminal-status invariant), so a slot always frees.
//
// The window is one shared atomic counter: admit is a CAS-increment,
// release a fetch_sub fired by the ticket's on_release hook on the
// fulfilling thread (after the result is published, before any waiter
// can free the ticket). max_in_flight == 0 disables the window entirely
// — no counting, no hook, zero cost on the default path.
//
// ShardedDriver deliberately runs its own controller DISABLED and lets
// every shard driver enforce its own window: shedding is per-shard, so
// one hot shard rejects its overflow while the others keep accepting —
// the hot-key groundwork for ROADMAP item 3.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <thread>

#include "core/ops.hpp"

namespace pwss::driver {

enum class AdmissionPolicy : std::uint8_t {
  kReject,  ///< full window => shed with kOverloaded
  kBlock,   ///< full window => park until a slot frees or deadline passes
};

struct AdmissionConfig {
  /// Maximum admitted-but-not-yet-completed ops; 0 = unbounded (the
  /// controller is inert: no counting, no release hooks).
  std::size_t max_in_flight = 0;
  AdmissionPolicy policy = AdmissionPolicy::kReject;
};

/// Per-submit verdict. kExpired outranks the window: an op whose
/// deadline already passed is never admitted, even to an empty window.
enum class Admit : std::uint8_t { kAdmitted, kShed, kExpired };

class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(AdmissionConfig cfg) : cfg_(cfg) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  bool bounded() const noexcept { return cfg_.max_in_flight != 0; }
  const AdmissionConfig& config() const noexcept { return cfg_; }

  /// Admitted ops currently holding a window slot (0 when unbounded).
  std::size_t in_flight() const noexcept {
    return window_.load(std::memory_order_acquire);
  }

  /// The accept/shed decision for one op. An admitted op holds a window
  /// slot until release() — callers arm the ticket's on_release hook (or
  /// call release() directly on synchronous paths) exactly when bounded()
  /// is true and the verdict is kAdmitted.
  Admit try_admit(std::uint64_t deadline_ns) noexcept {
    return count(try_admit_impl(deadline_ns));
  }

  // ---- lifetime counters (Driver::stats()) -----------------------------------
  // Relaxed totals of every verdict this controller handed out. On the
  // unbounded default path only admitted_ ticks (one relaxed increment);
  // the bounded paths were already contended-atomic.

  std::uint64_t admitted_total() const noexcept {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed_total() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }
  std::uint64_t expired_total() const noexcept {
    return expired_.load(std::memory_order_relaxed);
  }

  /// Frees one window slot. No-op when unbounded, so synchronous paths
  /// may call it unconditionally after an admitted op completes.
  void release() noexcept {
    if (cfg_.max_in_flight != 0) {
      window_.fetch_sub(1, std::memory_order_release);
    }
  }

  /// OpTicket::on_release-compatible trampoline; ctx is the controller.
  static void release_hook(void* ctx) noexcept {
    static_cast<AdmissionController*>(ctx)->release();
  }

 private:
  Admit try_admit_impl(std::uint64_t deadline_ns) noexcept {
    if (deadline_ns != 0 && core::now_ns() >= deadline_ns) {
      return Admit::kExpired;
    }
    if (cfg_.max_in_flight == 0) return Admit::kAdmitted;
    for (;;) {
      std::size_t cur = window_.load(std::memory_order_relaxed);
      while (cur < cfg_.max_in_flight) {
        if (window_.compare_exchange_weak(cur, cur + 1,
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
          return Admit::kAdmitted;
        }
      }
      if (cfg_.policy == AdmissionPolicy::kReject) return Admit::kShed;
      // Bounded-block: the slot we are waiting for frees when some
      // admitted op completes, which the terminal-status invariant
      // guarantees happens — so this loop always exits (or the deadline
      // does it for us).
      if (deadline_ns != 0 && core::now_ns() >= deadline_ns) {
        return Admit::kExpired;
      }
      std::this_thread::yield();
    }
  }

  Admit count(Admit verdict) noexcept {
    switch (verdict) {
      case Admit::kAdmitted:
        admitted_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Admit::kShed:
        shed_.fetch_add(1, std::memory_order_relaxed);
        break;
      case Admit::kExpired:
        expired_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
    return verdict;
  }

  AdmissionConfig cfg_{};
  std::atomic<std::size_t> window_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_{0};
};

}  // namespace pwss::driver
