#include "sched/scheduler.hpp"

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "util/fault.hpp"
#include "util/rng.hpp"

namespace pwss::sched {

namespace {
// Worker identity for the current thread (owner scheduler + index).
struct TlsWorker {
  Scheduler* scheduler = nullptr;
  void* worker = nullptr;
};
thread_local TlsWorker tls_worker;

// Per-worker free-list cap: enough to absorb every in-flight activation of
// M2's pipeline plus drive-loop churn, small enough that a burst does not
// pin memory forever.
constexpr std::size_t kFreeListCap = 128;
}  // namespace

struct Scheduler::Worker {
  explicit Worker(unsigned idx, bool prefers_high, std::uint64_t seed)
      : index(idx), prefer_high(prefers_high), rng(seed) {}
  ~Worker() {
    while (SpawnTask* t = pop_free()) delete t;
  }

  SpawnTask* pop_free() noexcept {
    SpawnTask* t = free_list;
    if (t != nullptr) {
      free_list = t->pool_next;
      t->pool_next = nullptr;
      free_count.store(free_count.load(std::memory_order_relaxed) - 1,
                       std::memory_order_relaxed);
    }
    return t;
  }
  /// Returns false when the list is full (caller deletes the node).
  bool push_free(SpawnTask* t) noexcept {
    const std::size_t n = free_count.load(std::memory_order_relaxed);
    if (n >= kFreeListCap) return false;
    t->pool_next = free_list;
    free_list = t;
    free_count.store(n + 1, std::memory_order_relaxed);
    return true;
  }

  unsigned index;
  bool prefer_high;  // polls the high queue before stealing
  ChaseLevDeque deque;
  util::Xoshiro256 rng;
  // Free SpawnTask nodes; list touched only by the owning worker thread.
  // The count is atomic solely so pooled_task_count() can read it from
  // other threads (tests/stats) without a data race.
  SpawnTask* free_list = nullptr;
  std::atomic<std::size_t> free_count{0};
};

Scheduler::Scheduler(unsigned workers) {
  if (workers == 0) {
    workers = std::thread::hardware_concurrency();
    if (workers == 0) workers = 4;
  }
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    // Workers [0, ceil(n/2)) prefer the high-priority queue: the "at least
    // half the processors greedily choose high-priority tasks" rule.
    const bool prefers_high = i < (workers + 1) / 2;
    workers_.push_back(std::make_unique<Worker>(
        i, prefers_high, 0x9e3779b97f4a7c15ULL ^ (i * 0x100000001b3ULL + 1)));
  }
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
}

Scheduler::~Scheduler() {
  stop_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(global_mu_);
    cv_.notify_all();
  }
  for (auto& t : threads_) t.join();
  // Delete tasks that were never run (user spawned past quiescence).
  while (SpawnTask* t = global_hi_.pop()) delete t;
  while (SpawnTask* t = global_lo_.pop()) delete t;
}

bool Scheduler::on_worker() const noexcept {
  return tls_worker.scheduler == this;
}

std::size_t Scheduler::worker_slot() const noexcept {
  if (tls_worker.scheduler != this) return 0;
  return static_cast<Worker*>(tls_worker.worker)->index + 1;
}

std::size_t Scheduler::pooled_task_count() const noexcept {
  std::size_t n = 0;
  for (const auto& w : workers_) {
    n += w->free_count.load(std::memory_order_relaxed);
  }
  return n;
}

SpawnTask* Scheduler::allocate_spawn_node(Closure fn) {
  if (on_worker()) {
    auto* w = static_cast<Worker*>(tls_worker.worker);
    if (SpawnTask* t = w->pop_free()) {
      t->rearm(std::move(fn));
      return t;
    }
  }
  return new SpawnTask(std::move(fn));
}

void Scheduler::recycle_spawn_node(SpawnTask* node) {
  if (on_worker()) {
    auto* w = static_cast<Worker*>(tls_worker.worker);
    if (w->push_free(node)) return;
  }
  delete node;
}

void Scheduler::spawn(Closure fn, Priority pri) {
  if (PWSS_FAULT_POINT("scheduler.spawn.stall")) {
    // Injected slow spawn: the task is delayed, never lost — models a
    // worker that is slow to pick up a drive loop, which widens the
    // pending-op windows the quiescence protocol must tolerate.
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  SpawnTask* task = allocate_spawn_node(std::move(fn));
  {
    std::lock_guard<std::mutex> lk(global_mu_);
    (pri == Priority::kHigh ? global_hi_ : global_lo_).push(task);
  }
  cv_.notify_one();
}

void Scheduler::spawn_high_trampoline(void* self, Closure&& cont) {
  static_cast<Scheduler*>(self)->spawn(std::move(cont), Priority::kHigh);
}

void Scheduler::spawn_low_trampoline(void* self, Closure&& cont) {
  static_cast<Scheduler*>(self)->spawn(std::move(cont), Priority::kLow);
}

void Scheduler::run_sync_view(FnView fn) {
  if (on_worker()) {
    fn();
    return;
  }
  struct Sync {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
  } sync;
  spawn([&sync, fn] {
    fn();
    std::lock_guard<std::mutex> lk(sync.mu);
    sync.done = true;
    sync.cv.notify_one();
  });
  std::unique_lock<std::mutex> lk(sync.mu);
  sync.cv.wait(lk, [&] { return sync.done; });
}

void Scheduler::parallel_invoke(FnView f, FnView g) {
  if (!on_worker()) {
    f();
    g();
    return;
  }
  auto* w = static_cast<Worker*>(tls_worker.worker);
  ForkTask fork(g);
  w->deque.push(&fork);
  if (sleepers_.load(std::memory_order_relaxed) > 0) notify_one_sleeper();
  f();
  TaskBase* back = w->deque.pop();
  if (back == &fork) {
    // Not stolen: run the right branch inline.
    fork.execute();
    return;
  }
  // The deque can only have held `fork` at this point (f joined all its own
  // forks), so back must be null — the task was stolen. Help until done.
  while (!fork.done()) {
    if (TaskBase* task = acquire_task(*w)) {
      execute(task);
    } else {
      std::this_thread::yield();
    }
  }
}

void Scheduler::notify_one_sleeper() {
  std::lock_guard<std::mutex> lk(global_mu_);
  cv_.notify_one();
}

TaskBase* Scheduler::pop_global(Priority pri) {
  std::lock_guard<std::mutex> lk(global_mu_);
  return (pri == Priority::kHigh ? global_hi_ : global_lo_).pop();
}

// Locality-aware victim order: try near neighbors first, widening one
// ring-distance step at a time (distance d visits workers index±d). Worker
// indices follow thread-creation order, which on the common single-socket
// case tracks core adjacency well enough that ring distance is a usable
// proxy for cache/NUMA distance; without explicit thread pinning a true
// NUMA lookup would not be any more faithful (see DESIGN.md). Nearby
// victims mean the stolen task's working set is likelier to be warm in a
// shared cache level, and failed steal probes stay off remote interconnect
// links. A per-call random side flip keeps two equidistant victims from
// being probed in a fixed order fleet-wide, so the old random-start
// anti-convoy property survives within each ring.
TaskBase* Scheduler::steal_from_others(Worker& w) {
  const std::size_t n = workers_.size();
  if (n <= 1) return nullptr;
  const bool flip = (w.rng() & 1) != 0;
  for (std::size_t d = 1; d <= n / 2; ++d) {
    const std::size_t right = (w.index + d) % n;
    const std::size_t left = (w.index + n - d) % n;
    const std::size_t first = flip ? left : right;
    const std::size_t second = flip ? right : left;
    if (first != w.index) {
      if (TaskBase* t = workers_[first]->deque.steal()) return t;
    }
    if (second != first && second != w.index) {
      if (TaskBase* t = workers_[second]->deque.steal()) return t;
    }
  }
  return nullptr;
}

TaskBase* Scheduler::acquire_task(Worker& w) {
  if (TaskBase* t = w.deque.pop()) return t;
  const Priority first = w.prefer_high ? Priority::kHigh : Priority::kLow;
  const Priority second = w.prefer_high ? Priority::kLow : Priority::kHigh;
  if (TaskBase* t = pop_global(first)) return t;
  if (TaskBase* t = steal_from_others(w)) return t;
  if (TaskBase* t = pop_global(second)) return t;
  return nullptr;
}

void Scheduler::execute(TaskBase* task) {
  tasks_executed_.fetch_add(1, std::memory_order_relaxed);
  if (task->execute()) {
    // Only SpawnTask::execute returns true; fork frames are stack-owned.
    recycle_spawn_node(static_cast<SpawnTask*>(task));
  }
}

void Scheduler::worker_loop(unsigned index) {
  Worker& w = *workers_[index];
  tls_worker.scheduler = this;
  tls_worker.worker = &w;

  int idle_spins = 0;
  while (true) {
    if (TaskBase* task = acquire_task(w)) {
      idle_spins = 0;
      execute(task);
      continue;
    }
    if (stop_.load(std::memory_order_acquire)) break;
    if (++idle_spins < 64) {
      std::this_thread::yield();
      continue;
    }
    // Sleep with a timeout: a missed notify costs at most one period.
    std::unique_lock<std::mutex> lk(global_mu_);
    if (!global_hi_.empty() || !global_lo_.empty() ||
        stop_.load(std::memory_order_acquire)) {
      continue;
    }
    sleepers_.fetch_add(1, std::memory_order_relaxed);
    cv_.wait_for(lk, std::chrono::milliseconds(1));
    sleepers_.fetch_sub(1, std::memory_order_relaxed);
    idle_spins = 0;
  }

  tls_worker.scheduler = nullptr;
  tls_worker.worker = nullptr;
}

Scheduler& default_scheduler() {
  static Scheduler instance;
  return instance;
}

}  // namespace pwss::sched
