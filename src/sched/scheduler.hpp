#pragma once
// Work-stealing scheduler for the dynamic-multithreading model of Section 4,
// with the weak-priority extension of Section 7.2 realized the way Section 8
// prescribes for practical schedulers: the worker pool is split so that at
// least half the workers prefer the high-priority queue.
//
// Structure:
//  * each worker owns a Chase–Lev deque for fork/join work (binary forks,
//    the only primitive the QRMW pointer machine model supports);
//  * two global injection queues (high / low) accept `spawn`ed root tasks —
//    M2 assigns final-slab activations to the high queue per Section 7.2;
//  * workers with index < ceil(n/2) poll: own deque → high queue → steal →
//    low queue; the remaining workers poll: own deque → low queue → steal →
//    high queue. Every worker runs *something* whenever work exists
//    (greediness), and high tasks are picked up by at least half the pool
//    (weak priority).
//
// External (non-worker) threads interact via `run_sync` (submit a closure
// and wait for completion) or `spawn`; `parallel_invoke` called off-pool
// degrades to sequential execution, which keeps the API total.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sched/chase_lev.hpp"
#include "sched/closure.hpp"
#include "sched/task.hpp"

namespace pwss::sched {

enum class Priority : std::uint8_t { kHigh = 0, kLow = 1 };

/// Non-owning callable view; lets parallel_invoke avoid std::function
/// allocations on the fork fast path.
class FnView {
 public:
  template <typename F>
  FnView(F& fn) noexcept  // NOLINT(google-explicit-constructor)
      : obj_(&fn), call_([](void* o) { (*static_cast<F*>(o))(); }) {}
  void operator()() const { call_(obj_); }

 private:
  void* obj_;
  void (*call_)(void*);
};

class Scheduler {
 public:
  /// workers == 0 selects std::thread::hardware_concurrency().
  explicit Scheduler(unsigned workers = 0);
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;
  ~Scheduler();

  unsigned worker_count() const noexcept {
    return static_cast<unsigned>(workers_.size());
  }

  /// Fire-and-forget task; callable from any thread. Captures up to
  /// Closure::kInlineCapacity bytes are stored inline, and the task node
  /// itself comes from a per-worker free list, so steady-state spawns from
  /// pool workers perform zero heap allocations.
  void spawn(Closure fn, Priority pri = Priority::kLow);

  /// Runs `fn` on the pool and blocks the calling thread until `fn` *and
  /// all fork/join work it creates* complete (fn itself must join its
  /// forks, which parallel_invoke/parallel_for guarantee). If called from a
  /// worker thread, runs inline. `fn` is borrowed, not owned: the caller's
  /// frame outlives the run by construction.
  template <typename F>
  void run_sync(F&& fn) {
    FnView view(fn);
    run_sync_view(view);
  }

  /// Structured fork/join: f and g both complete before returning. On a
  /// worker, g is exposed for stealing while the caller runs f; off-pool it
  /// runs sequentially.
  void parallel_invoke(FnView f, FnView g);

  /// Divide-and-conquer parallel loop over [lo, hi) with grain size
  /// `grain` (>= 1); body receives sub-ranges [a, b).
  template <typename F>
  void parallel_for(std::size_t lo, std::size_t hi, std::size_t grain,
                    const F& body) {
    if (hi <= lo) return;
    if (grain == 0) grain = 1;
    if (!on_worker() && hi - lo > grain) {
      run_sync([&] { pfor_impl(lo, hi, grain, body); });
      return;
    }
    pfor_impl(lo, hi, grain, body);
  }

  /// True iff the calling thread is one of this scheduler's workers.
  bool on_worker() const noexcept;

  /// Pool-shard slot for the calling thread: 1 + worker index when the
  /// thread is one of this scheduler's workers, 0 for every external
  /// thread (and for workers of other schedulers). util::NodePool shards
  /// its free lists by this, the same identity the SpawnTask free lists
  /// key on.
  std::size_t worker_slot() const noexcept;

  /// ResumeSink adapter for sync::DedicatedLock: resumed continuations are
  /// spawned at the given priority (Section 7.2: a resumed thread goes back
  /// to its original queue). The sink is a two-pointer value — copying and
  /// invoking it never allocates.
  ClosureSink resume_sink(Priority pri) noexcept {
    return ClosureSink(this, pri == Priority::kHigh ? &spawn_high_trampoline
                                                    : &spawn_low_trampoline);
  }

  /// Number of tasks executed so far (approximate; for tests/benches).
  std::uint64_t tasks_executed() const noexcept {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

  /// Free SpawnTask nodes pooled across all workers (approximate; for
  /// tests: call only when the pool is quiescent).
  std::size_t pooled_task_count() const noexcept;

 private:
  struct Worker;

  /// Intrusive FIFO of SpawnTask nodes (linked through pool_next); the
  /// injection queues hold only spawn nodes, so queueing one allocates
  /// nothing. Guarded by global_mu_.
  struct SpawnQueue {
    SpawnTask* head = nullptr;
    SpawnTask* tail = nullptr;
    bool empty() const noexcept { return head == nullptr; }
    void push(SpawnTask* t) noexcept {
      t->pool_next = nullptr;
      if (tail != nullptr) {
        tail->pool_next = t;
      } else {
        head = t;
      }
      tail = t;
    }
    SpawnTask* pop() noexcept {
      SpawnTask* t = head;
      if (t != nullptr) {
        head = t->pool_next;
        if (head == nullptr) tail = nullptr;
        t->pool_next = nullptr;
      }
      return t;
    }
  };

  template <typename F>
  void pfor_impl(std::size_t lo, std::size_t hi, std::size_t grain,
                 const F& body) {
    if (hi - lo <= grain) {
      body(lo, hi);
      return;
    }
    const std::size_t mid = lo + (hi - lo) / 2;
    auto left = [&] { pfor_impl(lo, mid, grain, body); };
    auto right = [&] { pfor_impl(mid, hi, grain, body); };
    parallel_invoke(FnView(left), FnView(right));
  }

  static void spawn_high_trampoline(void* self, Closure&& cont);
  static void spawn_low_trampoline(void* self, Closure&& cont);

  void run_sync_view(FnView fn);
  void worker_loop(unsigned index);
  TaskBase* acquire_task(Worker& w);
  TaskBase* steal_from_others(Worker& w);
  TaskBase* pop_global(Priority pri);
  SpawnTask* allocate_spawn_node(Closure fn);
  void recycle_spawn_node(SpawnTask* node);
  void execute(TaskBase* task);
  void notify_one_sleeper();

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex global_mu_;
  std::condition_variable cv_;
  SpawnQueue global_hi_;
  SpawnQueue global_lo_;
  std::atomic<int> sleepers_{0};
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> tasks_executed_{0};
};

/// Process-wide default scheduler (hardware concurrency), created on first
/// use. Data structures take a Scheduler& so tests can pin worker counts.
Scheduler& default_scheduler();

}  // namespace pwss::sched
