#pragma once
// Chase–Lev work-stealing deque (SPAA 2005), with the C11 memory orderings
// from Lê et al., "Correct and Efficient Work-Stealing for Weak Memory
// Models" (PPoPP 2013). The owner pushes/pops at the bottom; thieves steal
// from the top. The buffer grows geometrically and old buffers are retired
// on destruction (a deque outlives all concurrent access in our usage:
// workers join before the scheduler frees its deques).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pwss::sched {

class TaskBase;

class ChaseLevDeque {
 public:
  explicit ChaseLevDeque(std::size_t initial_capacity = 64);
  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;
  ~ChaseLevDeque();

  /// Owner only.
  void push(TaskBase* task);

  /// Owner only; nullptr if empty.
  TaskBase* pop();

  /// Any thread; nullptr on empty or lost race.
  TaskBase* steal();

  bool empty() const noexcept {
    // relaxed (both): advisory probe only — callers that act on the
    // answer (pop/steal) re-read under their own synchronized protocol,
    // so a stale emptiness verdict costs a retry, never correctness.
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b <= t;
  }

 private:
  struct Buffer {
    explicit Buffer(std::size_t cap)
        : capacity(cap), mask(cap - 1), slots(cap) {}
    std::size_t capacity;
    std::size_t mask;
    std::vector<std::atomic<TaskBase*>> slots;

    // relaxed (both): per PPoPP'13, slot contents are published by the
    // release store of bottom_ in push() and acquired through the
    // top_/bottom_ protocol in steal(); the slots are atomic only so a
    // racy read of a recycled index is not UB, never for ordering.
    TaskBase* get(std::int64_t i) const noexcept {
      return slots[static_cast<std::size_t>(i) & mask].load(
          std::memory_order_relaxed);
    }
    void put(std::int64_t i, TaskBase* t) noexcept {
      slots[static_cast<std::size_t>(i) & mask].store(
          t, std::memory_order_relaxed);
    }
  };

  void grow(std::int64_t bottom, std::int64_t top);

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Buffer*> buffer_;
  std::vector<Buffer*> retired_;  // owner-only; freed in destructor
};

}  // namespace pwss::sched
