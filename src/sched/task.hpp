#pragma once
// Task representations for the work-stealing scheduler.
//
// Two kinds of tasks flow through the deques:
//  * SpawnTask  — fire-and-forget Closure node; recycled through a
//                 per-worker free list after running (see scheduler.cpp)
//                 instead of being deleted, so steady-state spawn/execute
//                 cycles perform no allocator traffic.
//  * ForkTask   — stack-allocated right branch of a parallel_invoke; the
//                 parent either pops it back (not stolen) or waits on its
//                 `done` flag while helping with other work.

#include <atomic>
#include <utility>

#include "sched/closure.hpp"

namespace pwss::sched {

class TaskBase {
 public:
  virtual ~TaskBase() = default;
  /// Runs the task. Returns true if the object should be recycled/deleted
  /// by the executor afterwards (spawn nodes), false if it is owned
  /// elsewhere (fork frames).
  virtual bool execute() = 0;
};

/// Fire-and-forget closure node. The scheduler is the only creator and the
/// only deleter; `pool_next` links free nodes into a worker's free list and
/// queued nodes into the global injection queues (a node is never in both).
class SpawnTask final : public TaskBase {
 public:
  explicit SpawnTask(Closure fn) : fn_(std::move(fn)) {}

  bool execute() override {
    // Run, then drop the captures immediately: the node may sit in a free
    // list for a while, and captures (tickets, shared state) must not
    // outlive their logical task.
    fn_();
    fn_.reset();
    return true;
  }

  /// Re-arms a recycled node with a fresh closure.
  void rearm(Closure fn) { fn_ = std::move(fn); }

  SpawnTask* pool_next = nullptr;

 private:
  Closure fn_;
};

/// Right branch of a fork. Lives on the forking frame's stack; `done` is the
/// last field the thief touches, which makes the parent's wait-then-destroy
/// safe. FnView keeps the fast path free of ownership transfers: the parent
/// frame outlives the task by construction.
class ForkTask final : public TaskBase {
 public:
  template <typename F>
  explicit ForkTask(F& fn) noexcept
      : obj_(&fn), call_([](void* o) { (*static_cast<F*>(o))(); }) {}

  bool execute() override {
    call_(obj_);
    done_.store(true, std::memory_order_release);
    return false;
  }

  bool done() const noexcept { return done_.load(std::memory_order_acquire); }

 private:
  void* obj_;
  void (*call_)(void*);
  std::atomic<bool> done_{false};
};

}  // namespace pwss::sched
