#pragma once
// Task representations for the work-stealing scheduler.
//
// Two kinds of tasks flow through the deques:
//  * SpawnTask  — heap-allocated fire-and-forget closure (deleted after run)
//  * ForkTask   — stack-allocated right branch of a parallel_invoke; the
//                 parent either pops it back (not stolen) or waits on its
//                 `done` flag while helping with other work.

#include <atomic>
#include <functional>
#include <utility>

namespace pwss::sched {

class TaskBase {
 public:
  virtual ~TaskBase() = default;
  /// Runs the task. Returns true if the object should be deleted by the
  /// executor afterwards (heap tasks), false if it is owned elsewhere.
  virtual bool execute() = 0;
};

class SpawnTask final : public TaskBase {
 public:
  explicit SpawnTask(std::function<void()> fn) : fn_(std::move(fn)) {}
  bool execute() override {
    fn_();
    return true;
  }

 private:
  std::function<void()> fn_;
};

/// Right branch of a fork. Lives on the forking frame's stack; `done` is the
/// last field the thief touches, which makes the parent's wait-then-destroy
/// safe.
class ForkTask final : public TaskBase {
 public:
  template <typename F>
  explicit ForkTask(F& fn) : fn_([&fn] { fn(); }) {}

  bool execute() override {
    fn_();
    done_.store(true, std::memory_order_release);
    return false;
  }

  bool done() const noexcept { return done_.load(std::memory_order_acquire); }

 private:
  std::function<void()> fn_;
  std::atomic<bool> done_{false};
};

}  // namespace pwss::sched
