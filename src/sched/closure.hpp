#pragma once
// Closure — a fixed-size small-buffer-optimized callable, the allocation-lean
// replacement for std::function<void()> on the scheduler's hot paths.
//
// M2's continuation-passing stages and AsyncMap's drive loop spawn a task per
// tick; with std::function every spawn pays a heap allocation for any capture
// beyond ~16 bytes. Closure keeps up to kInlineCapacity bytes of capture
// state inline (64 bytes covers every spawn site in core/ — typically a
// `this` pointer plus an index or a shared_ptr) and falls back to the heap
// only for oversized captures. Closure is move-only, so move-only captures
// (unique_ptr, tickets) are supported, which std::function forbids.
//
// ClosureSink is the matching two-pointer "where do resumed continuations
// go" handle used by sync::DedicatedLock: copying it is free, unlike the
// std::function-of-std::function sink it replaces.

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace pwss::sched {

class Closure {
 public:
  /// Captures up to this many bytes are stored inline (no allocation).
  static constexpr std::size_t kInlineCapacity = 64;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  /// True iff a callable of type F will use the inline buffer.
  template <typename F>
  static constexpr bool fits_inline() noexcept {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineCapacity && alignof(D) <= kInlineAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

  Closure() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::decay_t<F>, Closure> &&
             std::is_invocable_r_v<void, std::decay_t<F>&>)
  Closure(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (fits_inline<F>()) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      vt_ = &vtable_inline<D>;
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(fn));
      vt_ = &vtable_heap<D>;
    }
  }

  Closure(Closure&& other) noexcept { take(std::move(other)); }
  Closure& operator=(Closure&& other) noexcept {
    if (this != &other) {
      reset();
      take(std::move(other));
    }
    return *this;
  }
  Closure(const Closure&) = delete;
  Closure& operator=(const Closure&) = delete;
  ~Closure() { reset(); }

  void operator()() {
    vt_->invoke(buf_);
  }

  explicit operator bool() const noexcept { return vt_ != nullptr; }

  /// True iff the held callable lives in the inline buffer (for tests).
  bool is_inline() const noexcept { return vt_ != nullptr && !vt_->heap; }

  /// Destroys the held callable, leaving the closure empty.
  void reset() noexcept {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void* storage);
    void (*relocate)(void* src, void* dst) noexcept;  // move + destroy src
    void (*destroy)(void* storage) noexcept;
    bool heap;
  };

  template <typename D>
  static constexpr VTable vtable_inline = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* src, void* dst) noexcept {
        D* from = std::launder(reinterpret_cast<D*>(src));
        ::new (dst) D(std::move(*from));
        from->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
      /*heap=*/false,
  };

  template <typename D>
  static constexpr VTable vtable_heap = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* src, void* dst) noexcept {
        *reinterpret_cast<D**>(dst) = *std::launder(reinterpret_cast<D**>(src));
      },
      [](void* s) noexcept { delete *std::launder(reinterpret_cast<D**>(s)); },
      /*heap=*/true,
  };

  void take(Closure&& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->relocate(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineCapacity];
  const VTable* vt_ = nullptr;
};

/// Non-owning two-pointer sink for resumed continuations: "hand this Closure
/// to whoever should run it". The context (a Scheduler, or nothing for the
/// inline test sink) must outlive every use of the sink.
class ClosureSink {
 public:
  using Fn = void (*)(void* ctx, Closure&& cont);

  constexpr ClosureSink() noexcept = default;
  constexpr ClosureSink(void* ctx, Fn fn) noexcept : ctx_(ctx), fn_(fn) {}

  /// A sink that runs continuations inline on the calling thread.
  static ClosureSink inline_runner() noexcept {
    return ClosureSink(nullptr, [](void*, Closure&& c) {
      Closure local = std::move(c);
      local();
    });
  }

  void operator()(Closure cont) const { fn_(ctx_, std::move(cont)); }

  explicit operator bool() const noexcept { return fn_ != nullptr; }

 private:
  void* ctx_ = nullptr;
  Fn fn_ = nullptr;
};

}  // namespace pwss::sched
