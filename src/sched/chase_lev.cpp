#include "sched/chase_lev.hpp"

#include <bit>

#include "sched/task.hpp"

namespace pwss::sched {

ChaseLevDeque::ChaseLevDeque(std::size_t initial_capacity) {
  const std::size_t cap = std::bit_ceil(initial_capacity < 2 ? std::size_t{2}
                                                             : initial_capacity);
  // relaxed: single-threaded construction; the scheduler publishes the
  // deque to workers with its own synchronization before any access.
  buffer_.store(new Buffer(cap), std::memory_order_relaxed);
}

ChaseLevDeque::~ChaseLevDeque() {
  // relaxed: destruction is quiescent by contract (workers join before
  // the scheduler frees its deques).
  delete buffer_.load(std::memory_order_relaxed);
  for (Buffer* b : retired_) delete b;
}

void ChaseLevDeque::grow(std::int64_t bottom, std::int64_t top) {
  // relaxed: the owner is buffer_'s only writer, so it reads its own
  // last store; thieves synchronize via the release store below.
  Buffer* old = buffer_.load(std::memory_order_relaxed);
  auto* bigger = new Buffer(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, old->get(i));
  buffer_.store(bigger, std::memory_order_release);
  // Thieves may still be reading `old`; retire it until destruction.
  retired_.push_back(old);
}

void ChaseLevDeque::push(TaskBase* task) {
  // relaxed: the owner is bottom_'s only writer (reads its own store).
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  // relaxed (and again after grow): owner-only writer of buffer_.
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
    grow(b, t);
    buf = buffer_.load(std::memory_order_relaxed);
  }
  buf->put(b, task);
  // Release store publishes the slot write (and the task's construction)
  // to thieves that acquire-load bottom. This is the PPoPP'13 C11 form;
  // a release fence + relaxed store is equivalent on hardware but
  // invisible to ThreadSanitizer, which does not model thread fences.
  bottom_.store(b + 1, std::memory_order_release);
}

TaskBase* ChaseLevDeque::pop() {
  // relaxed (both loads): owner reads its own bottom_/buffer_ stores.
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  // relaxed store + seq_cst fence: the PPoPP'13 form — the fence orders
  // the bottom_ reservation against the top_ read below globally, which
  // a plain release store would not.
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // relaxed: ordered by the seq_cst fence above, per PPoPP'13.
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t > b) {
    // Deque was empty; restore. relaxed: only the owner reads bottom_
    // unfenced, and thieves re-validate through the CAS on top_.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  TaskBase* task = buf->get(b);
  if (t == b) {
    // Last element: race against thieves via CAS on top. relaxed on
    // failure: the loser publishes nothing and reads nothing through t.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      task = nullptr;  // lost to a thief
    }
    // relaxed: owner-only writer; the element was won via the CAS above.
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return task;
}

TaskBase* ChaseLevDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;
  // acquire (upgraded from the paper's consume): the thief dereferences
  // the buffer it loads, and every mainstream compiler promotes consume
  // to acquire anyway — the weaker order bought nothing and consume is
  // deprecated since C++17 (P0371R1).
  Buffer* buf = buffer_.load(std::memory_order_acquire);
  TaskBase* task = buf->get(t);
  // relaxed on failure: the losing thief returns nullptr without reading
  // anything published through top_.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race
  }
  return task;
}

}  // namespace pwss::sched
