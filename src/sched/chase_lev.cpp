#include "sched/chase_lev.hpp"

#include <bit>

#include "sched/task.hpp"

namespace pwss::sched {

ChaseLevDeque::ChaseLevDeque(std::size_t initial_capacity) {
  const std::size_t cap = std::bit_ceil(initial_capacity < 2 ? std::size_t{2}
                                                             : initial_capacity);
  buffer_.store(new Buffer(cap), std::memory_order_relaxed);
}

ChaseLevDeque::~ChaseLevDeque() {
  delete buffer_.load(std::memory_order_relaxed);
  for (Buffer* b : retired_) delete b;
}

void ChaseLevDeque::grow(std::int64_t bottom, std::int64_t top) {
  Buffer* old = buffer_.load(std::memory_order_relaxed);
  auto* bigger = new Buffer(old->capacity * 2);
  for (std::int64_t i = top; i < bottom; ++i) bigger->put(i, old->get(i));
  buffer_.store(bigger, std::memory_order_release);
  // Thieves may still be reading `old`; retire it until destruction.
  retired_.push_back(old);
}

void ChaseLevDeque::push(TaskBase* task) {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed);
  const std::int64_t t = top_.load(std::memory_order_acquire);
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  if (b - t > static_cast<std::int64_t>(buf->capacity) - 1) {
    grow(b, t);
    buf = buffer_.load(std::memory_order_relaxed);
  }
  buf->put(b, task);
  // Release store publishes the slot write (and the task's construction)
  // to thieves that acquire-load bottom. This is the PPoPP'13 C11 form;
  // a release fence + relaxed store is equivalent on hardware but
  // invisible to ThreadSanitizer, which does not model thread fences.
  bottom_.store(b + 1, std::memory_order_release);
}

TaskBase* ChaseLevDeque::pop() {
  const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
  Buffer* buf = buffer_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  std::int64_t t = top_.load(std::memory_order_relaxed);
  if (t > b) {
    // Deque was empty; restore.
    bottom_.store(b + 1, std::memory_order_relaxed);
    return nullptr;
  }
  TaskBase* task = buf->get(b);
  if (t == b) {
    // Last element: race against thieves via CAS on top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      task = nullptr;  // lost to a thief
    }
    bottom_.store(b + 1, std::memory_order_relaxed);
  }
  return task;
}

TaskBase* ChaseLevDeque::steal() {
  std::int64_t t = top_.load(std::memory_order_acquire);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  const std::int64_t b = bottom_.load(std::memory_order_acquire);
  if (t >= b) return nullptr;
  Buffer* buf = buffer_.load(std::memory_order_consume);
  TaskBase* task = buf->get(t);
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_relaxed)) {
    return nullptr;  // lost the race
  }
  return task;
}

}  // namespace pwss::sched
