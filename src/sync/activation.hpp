#pragma once
// Activation interface (Definition 36): guards a process P with a readiness
// condition C so that Activate() starts P iff it is not already running and
// C holds, and P may request its own reactivation. The paper's contract is
// that any thread making C become true must call Activate() afterwards.
//
// The paper's pseudo-code uses a non-blocking lock plus a re-activation
// flag; a literal transcription has a lost-wakeup window between the
// owner's final check and its unlock. We close it with the standard
// three-state protocol (idle / running / running+pending): an Activate()
// that loses the race leaves a pending mark that the owner consumes before
// going idle, which is observationally equivalent to the paper's contract
// and wakeup-safe on real hardware.

#include <atomic>
#include <functional>

namespace pwss::sync {

class Activation {
 public:
  /// `ready`  — the condition C; must be cheap and thread-safe.
  /// `process` — the guarded process P; returns true to request immediate
  ///             reactivation (the paper's `reactivate` flag).
  Activation(std::function<bool()> ready, std::function<bool()> process);
  Activation(const Activation&) = delete;
  Activation& operator=(const Activation&) = delete;

  /// May be called from any thread. If no owner is active, the caller
  /// becomes the owner and drives P on the calling thread; otherwise a
  /// pending mark is left for the current owner. Never blocks beyond the
  /// duration of P itself.
  void activate();

  /// True iff an owner is currently driving P (racy; for tests).
  bool running() const noexcept {
    return state_.load(std::memory_order_acquire) != kIdle;
  }

 private:
  static constexpr int kIdle = 0;
  static constexpr int kRunning = 1;
  static constexpr int kRunningPending = 2;

  std::function<bool()> ready_;
  std::function<bool()> process_;
  std::atomic<int> state_{kIdle};
};

}  // namespace pwss::sync
