#include "sync/dedicated_lock.hpp"

#include <cassert>

#include "util/schedule_points.hpp"

namespace pwss::sync {

DedicatedLock::DedicatedLock(std::size_t keys) : slots_(keys ? keys : 1) {
  for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
}

DedicatedLock::~DedicatedLock() {
  for (auto& s : slots_) {
    delete s.load(std::memory_order_relaxed);
  }
}

void DedicatedLock::acquire(std::size_t key, Continuation cont,
                            const ResumeSink& resume) {
  (void)resume;
  assert(key < slots_.size());
  if (count_.fetch_add(1, std::memory_order_acq_rel) == 0) {
    last_key_.store(key, std::memory_order_relaxed);
    cont();  // lock obtained immediately
    return;
  }
  // The straggler window: the count says we are waiting but the slot is
  // still empty — a racing release() must keep scanning until we park.
  PWSS_SCHED_POINT("dedicated_lock.acquire.park");
  // Park the continuation; a release will find it. The slot must be empty:
  // the key discipline says no two concurrent acquirers share a key.
  auto* parked = new Continuation(std::move(cont));
  Continuation* expected = nullptr;
  [[maybe_unused]] const bool ok = slots_[key].compare_exchange_strong(
      expected, parked, std::memory_order_release);
  assert(ok && "dedicated-lock key used by two concurrent acquirers");
}

void DedicatedLock::release(const ResumeSink& resume) {
  if (count_.fetch_sub(1, std::memory_order_acq_rel) <= 1) return;
  // Ownership already handed off by the decrement; the next holder is
  // parked (or parking) but not yet resumed.
  PWSS_SCHED_POINT("dedicated_lock.release.scan");
  // At least one acquirer is parked or about to park. Scan cyclically from
  // just after the last holder's key; the parked slot may lag the count
  // increment by a few instructions, so the scan loops until it finds one
  // (bounded by the straggler's park, as in the QRMW model's FIFO queue).
  std::size_t j = last_key_.load(std::memory_order_relaxed);
  Continuation* next = nullptr;
  while (next == nullptr) {
    j = (j + 1) % slots_.size();
    next = slots_[j].exchange(nullptr, std::memory_order_acquire);
  }
  last_key_.store(j, std::memory_order_relaxed);
  Continuation cont = std::move(*next);
  delete next;
  resume(std::move(cont));
}

}  // namespace pwss::sync
