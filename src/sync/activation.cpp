#include "sync/activation.hpp"

#include <utility>

namespace pwss::sync {

Activation::Activation(std::function<bool()> ready,
                       std::function<bool()> process)
    : ready_(std::move(ready)), process_(std::move(process)) {}

void Activation::activate() {
  int s = state_.load(std::memory_order_relaxed);
  for (;;) {
    if (s == kIdle) {
      if (state_.compare_exchange_weak(s, kRunning,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        break;  // we own the process
      }
    } else if (s == kRunning) {
      if (state_.compare_exchange_weak(s, kRunningPending,
                                       std::memory_order_acq_rel,
                                       std::memory_order_relaxed)) {
        return;  // owner will observe the pending mark
      }
    } else {
      return;  // already pending; nothing more to record
    }
  }

  // Owner loop: run P while it requests reactivation or while activations
  // arrived during the run; release ownership only when neither holds.
  for (;;) {
    bool reactivate = false;
    if (ready_()) reactivate = process_();
    if (reactivate) continue;
    int expected = kRunning;
    if (state_.compare_exchange_strong(expected, kIdle,
                                       std::memory_order_acq_rel)) {
      return;
    }
    // expected was kRunningPending: consume the mark and loop.
    state_.store(kRunning, std::memory_order_release);
  }
}

}  // namespace pwss::sync
