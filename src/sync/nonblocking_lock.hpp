#pragma once
// Non-blocking lock (try-lock) from Definition 35 of the paper: acquisition
// attempts are serialized by the hardware RMW but never block; TryLock is a
// single test-and-set, Unlock a single store.

#include <atomic>

namespace pwss::sync {

class NonBlockingLock {
 public:
  NonBlockingLock() = default;
  NonBlockingLock(const NonBlockingLock&) = delete;
  NonBlockingLock& operator=(const NonBlockingLock&) = delete;

  /// Returns true iff the lock was acquired.
  bool try_lock() noexcept {
    return !flag_.test_and_set(std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace pwss::sync
