#pragma once
// Dedicated lock (Definition 37): a blocking lock with keys [0..k) where
// simultaneous acquirers must use distinct keys. The paper's pseudo-code
// parks the *continuation* of a failed acquirer in q[key]; Release scans the
// key slots cyclically starting after the last holder's key and resumes the
// first parked continuation it finds. This guarantees an acquirer waits for
// at most O(k) other threads — the bounded-bypass property Lemma 18's delay
// analysis depends on.
//
// We implement it continuation-passing style: acquire(key, cont) either runs
// `cont` inline (lock obtained immediately) or parks it; release hands the
// lock directly to the next parked continuation and schedules it through the
// caller-provided `resume` sink, so no OS thread ever blocks.
//
// Continuations are sched::Closure values (64-byte SBO, move-only captures
// allowed) and the sink is the two-pointer sched::ClosureSink, so the
// uncontended acquire/release fast path performs no heap allocation; only a
// *parked* continuation costs one node.

#include <atomic>
#include <cstddef>
#include <vector>

#include "sched/closure.hpp"

namespace pwss::sync {

class DedicatedLock {
 public:
  using Continuation = sched::Closure;
  /// Sink used to schedule a resumed continuation (e.g. Scheduler::spawn
  /// via Scheduler::resume_sink, or ClosureSink::inline_runner in tests).
  using ResumeSink = sched::ClosureSink;

  explicit DedicatedLock(std::size_t keys);
  DedicatedLock(const DedicatedLock&) = delete;
  DedicatedLock& operator=(const DedicatedLock&) = delete;
  ~DedicatedLock();

  std::size_t keys() const noexcept { return slots_.size(); }

  /// Acquire with `key`. If the lock is free, `cont` runs inline on the
  /// calling thread (the fast path of Definition 37's "Return"). Otherwise
  /// `cont` is parked and will be passed to `resume` by a later release.
  /// Concurrent acquirers must use distinct keys (asserted in debug).
  void acquire(std::size_t key, Continuation cont, const ResumeSink& resume);

  /// Release; must be called by the current holder. If a continuation is
  /// parked, ownership transfers to it and it is handed to `resume`.
  void release(const ResumeSink& resume);

  /// True iff some thread currently holds the lock (racy; for tests/stats).
  bool held() const noexcept {
    return count_.load(std::memory_order_acquire) > 0;
  }

 private:
  std::atomic<long> count_{0};
  std::atomic<std::size_t> last_key_{0};  // paper's `l`
  std::vector<std::atomic<Continuation*>> slots_;
};

}  // namespace pwss::sync
