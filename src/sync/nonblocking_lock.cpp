// NonBlockingLock is fully inline (see header); this translation unit exists
// so the target has a stable home for the type and future out-of-line
// helpers.
#include "sync/nonblocking_lock.hpp"
