#pragma once
// AsyncGate: the Activation interface (Definition 36) split into explicit
// begin/finish halves so a guarded process can be a continuation-passing
// chain (M2's segment runs park on dedicated locks and complete on another
// thread — a synchronous Activation::activate() cannot express that).
//
// Protocol:
//   * begin()  — caller requests a run. Returns true iff the caller became
//                the owner (must eventually call finish() exactly once per
//                ownership); returns false if an owner exists (a pending
//                mark is left so the owner re-runs).
//   * finish() — the owner ends a run. Returns true iff a pending mark was
//                consumed, in which case the caller REMAINS the owner and
//                must run again (and call finish() again after).
// Lost wakeups are impossible: a begin() that loses the race always leaves
// the pending mark, and the owner cannot go idle without observing it.

#include <atomic>

namespace pwss::sync {

class AsyncGate {
 public:
  bool begin() noexcept {
    int s = state_.load(std::memory_order_relaxed);
    for (;;) {
      if (s == kIdle) {
        if (state_.compare_exchange_weak(s, kRunning,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
          return true;
        }
      } else if (s == kRunning) {
        if (state_.compare_exchange_weak(s, kRunningPending,
                                         std::memory_order_acq_rel,
                                         std::memory_order_relaxed)) {
          return false;
        }
      } else {
        return false;  // already pending
      }
    }
  }

  bool finish() noexcept {
    int expected = kRunning;
    if (state_.compare_exchange_strong(expected, kIdle,
                                       std::memory_order_acq_rel)) {
      return false;
    }
    // Was kRunningPending: consume the mark, stay owner.
    state_.store(kRunning, std::memory_order_release);
    return true;
  }

  bool active() const noexcept {
    return state_.load(std::memory_order_acquire) != kIdle;
  }

 private:
  static constexpr int kIdle = 0;
  static constexpr int kRunning = 1;
  static constexpr int kRunningPending = 2;
  std::atomic<int> state_{kIdle};
};

}  // namespace pwss::sync
