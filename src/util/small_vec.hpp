#pragma once
// SmallVec — an inline-first vector: the first N elements live inside the
// object; growing past N spills everything into a heap vector once.
//
// Motivation (Section 6.1 group-operations): under low-duplication
// workloads almost every group holds a single operation — with std::vector
// that is one heap allocation per group. SmallVec<PendingOp, 1> (M2's
// GroupOp) makes the common case free.

#include <cassert>
#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace pwss::util {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(N > 0, "inline capacity must be positive");

 public:
  SmallVec() noexcept = default;

  SmallVec(std::initializer_list<T> init) {
    for (const T& v : init) push_back(v);
  }

  SmallVec(SmallVec&& other) noexcept { move_from(std::move(other)); }
  SmallVec& operator=(SmallVec&& other) noexcept {
    if (this != &other) {
      clear();
      move_from(std::move(other));
    }
    return *this;
  }

  SmallVec(const SmallVec& other) {
    if (other.spilled()) {
      heap_ = other.heap_;
      inline_count_ = kSpilled;
    } else {
      for (std::size_t i = 0; i < other.inline_count_; ++i) {
        push_back(other.inline_at(i));
      }
    }
  }
  SmallVec& operator=(const SmallVec& other) {
    if (this != &other) {
      clear();
      SmallVec copy(other);
      move_from(std::move(copy));
    }
    return *this;
  }

  ~SmallVec() { clear(); }

  bool empty() const noexcept { return size() == 0; }
  std::size_t size() const noexcept {
    return spilled() ? heap_.size() : inline_count_;
  }

  void push_back(const T& v) { emplace_back(v); }
  void push_back(T&& v) { emplace_back(std::move(v)); }

  template <typename... Args>
  T& emplace_back(Args&&... args) {
    if (!spilled()) {
      if (inline_count_ < N) {
        T* slot = ::new (inline_slot(inline_count_))
            T(std::forward<Args>(args)...);
        ++inline_count_;
        return *slot;
      }
      // Materialize before spilling: the argument may alias an inline slot
      // (push_back(v[0])), which spill() is about to move from and destroy.
      T tmp(std::forward<Args>(args)...);
      spill();
      return heap_.emplace_back(std::move(tmp));
    }
    return heap_.emplace_back(std::forward<Args>(args)...);
  }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size(); }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size(); }

  T& operator[](std::size_t i) noexcept {
    assert(i < size());
    return data()[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < size());
    return data()[i];
  }

  T* data() noexcept {
    return spilled() ? heap_.data() : std::launder(inline_slot(0));
  }
  const T* data() const noexcept {
    return spilled() ? heap_.data()
                     : std::launder(const_cast<SmallVec*>(this)->inline_slot(0));
  }

  /// True iff the elements have spilled to the heap (for tests).
  bool spilled() const noexcept { return inline_count_ == kSpilled; }

  void clear() noexcept {
    if (spilled()) {
      heap_.clear();
      heap_.shrink_to_fit();
      inline_count_ = 0;
    } else {
      destroy_inline();
    }
  }

 private:
  static constexpr std::size_t kSpilled = static_cast<std::size_t>(-1);

  T* inline_slot(std::size_t i) noexcept {
    return reinterpret_cast<T*>(buf_) + i;
  }
  T& inline_at(std::size_t i) noexcept { return *std::launder(inline_slot(i)); }
  const T& inline_at(std::size_t i) const noexcept {
    return *std::launder(const_cast<SmallVec*>(this)->inline_slot(i));
  }

  void destroy_inline() noexcept {
    for (std::size_t i = inline_count_; i > 0; --i) {
      inline_at(i - 1).~T();
    }
    inline_count_ = 0;
  }

  void spill() {
    heap_.reserve(2 * N);
    for (std::size_t i = 0; i < inline_count_; ++i) {
      heap_.push_back(std::move(inline_at(i)));
    }
    destroy_inline();
    inline_count_ = kSpilled;
  }

  void move_from(SmallVec&& other) noexcept {
    if (other.spilled()) {
      heap_ = std::move(other.heap_);
      inline_count_ = kSpilled;
      other.heap_.clear();
      other.inline_count_ = 0;
    } else {
      for (std::size_t i = 0; i < other.inline_count_; ++i) {
        ::new (inline_slot(i)) T(std::move(other.inline_at(i)));
      }
      inline_count_ = other.inline_count_;
      other.destroy_inline();
    }
  }

  alignas(T) unsigned char buf_[N * sizeof(T)];
  std::size_t inline_count_ = 0;
  std::vector<T> heap_;
};

}  // namespace pwss::util
