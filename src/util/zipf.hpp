#pragma once
// Zipf(theta) sampler over [0, n). theta = 0 degenerates to uniform;
// theta ~ 0.99 is the YCSB default; theta > 1 concentrates mass heavily.
//
// Uses the classic rejection-inversion-free approximation from Gray et al.
// (the "quick zipf" used by YCSB): constant-time sampling after O(1) setup,
// exact for the two head items and a tight approximation of the tail.

#include <cstdint>

#include "util/rng.hpp"

namespace pwss::util {

class ZipfGenerator {
 public:
  /// n: universe size (items 0..n-1); theta: skew in [0, 1) ∪ (1, ..).
  /// theta == 1 is handled by nudging to 0.9999 (the formulas divide by
  /// 1-theta).
  ZipfGenerator(std::uint64_t n, double theta);

  std::uint64_t operator()(Xoshiro256& rng) noexcept;

  std::uint64_t universe() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  double zeta(std::uint64_t n, double theta);

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

}  // namespace pwss::util
