#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pwss::util {

Summary summarize(std::vector<double> samples) {
  Summary s;
  s.count = samples.size();
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  double sum = 0.0;
  for (const double v : samples) sum += v;
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0.0;
  for (const double v : samples) var += (v - s.mean) * (v - s.mean);
  s.stddev = samples.size() > 1
                 ? std::sqrt(var / static_cast<double>(samples.size() - 1))
                 : 0.0;
  auto pct = [&](double p) {
    const double idx = p * static_cast<double>(samples.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(idx);
    const std::size_t hi = std::min(lo + 1, samples.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
  };
  s.min = samples.front();
  s.p50 = pct(0.50);
  s.p95 = pct(0.95);
  s.p99 = pct(0.99);
  s.max = samples.back();
  return s;
}

LinearFit fit_linear(const std::vector<double>& x,
                     const std::vector<double>& y) {
  LinearFit f;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return f;
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom == 0.0) return f;
  f.slope = (dn * sxy - sx * sy) / denom;
  f.intercept = (sy - f.slope * sx) / dn;
  const double ss_tot = syy - sy * sy / dn;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double e = y[i] - (f.intercept + f.slope * x[i]);
    ss_res += e * e;
  }
  f.r2 = ss_tot > 0 ? 1.0 - ss_res / ss_tot : 1.0;
  return f;
}

}  // namespace pwss::util
