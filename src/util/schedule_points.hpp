#pragma once
// Seeded interleaving explorer (DESIGN.md "Correctness-analysis toolbox").
//
// Two instruments live here, both promoted from the ad-hoc fuzzer that
// tests/quiescence_test.cpp grew while chasing the PR-2 counter-ordering
// races:
//
//  1. PWSS_SCHED_POINT("name") — a named preemption hook placed inside a
//     delicate window (a counter claimed but not yet published, a lock
//     handed off but not yet scanned). In ordinary builds the macro
//     expands to `((void)0)`: zero code, zero data, no include-order
//     hazards. Under -DPWSS_SCHEDULE_POINTS=ON a hit consults a
//     seeded mix of (global seed, point name, per-thread hit counter)
//     and occasionally yields or parks the thread for up to a few
//     milliseconds — long enough for every other thread to run through
//     the window's counterpart and expose a mis-ordering. The decision
//     is a pure function of the seed, so a failing seed replays.
//
//  2. PreemptionFuzzer — the blunt instrument: a per-thread CPU timer
//     whose SIGPROF handler parks the interrupted thread mid-instruction
//     -stream (Linux only; a no-op elsewhere). It needs no hooks in the
//     code under test and therefore also perturbs windows nobody thought
//     to name; the explorer uses both together.
//
// The runtime is deliberately tiny: a lock-free registry of points (a
// push-only intrusive list of function-local statics), one global seed
// word, and per-thread counters. Points register lazily on first hit, so
// a point that is never executed costs nothing and never appears in
// snapshots.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string_view>
#include <thread>
#include <vector>

#if defined(__linux__)
#include <cerrno>
#include <csignal>
#include <ctime>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace pwss::util {

// ---- PreemptionFuzzer --------------------------------------------------------

#if defined(__linux__)

extern "C" inline void preemption_fuzzer_park(int) {
  const int saved_errno = errno;
  timespec park{0, 5'000'000};  // 5 ms: longer than a scheduling slice
  nanosleep(&park, nullptr);
  errno = saved_errno;
}

/// Arms a CPU-time timer on the calling thread that delivers SIGPROF (to
/// this thread only) roughly every interval_ns of ITS cpu time; the
/// handler parks the thread mid-instruction-stream. Destroying the object
/// disarms the timer. No-op (never armed) on non-Linux platforms.
class PreemptionFuzzer {
 public:
  explicit PreemptionFuzzer(long interval_ns) {
    struct sigaction sa{};
    sa.sa_handler = preemption_fuzzer_park;
    sa.sa_flags = SA_RESTART;
    sigaction(SIGPROF, &sa, nullptr);

    sigevent sev{};
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
    sev.sigev_notify_thread_id = static_cast<pid_t>(syscall(SYS_gettid));
    armed_ = timer_create(CLOCK_THREAD_CPUTIME_ID, &sev, &timer_) == 0;
    if (armed_) {
      itimerspec its{};
      its.it_interval.tv_nsec = interval_ns;
      its.it_value.tv_nsec = interval_ns;
      timer_settime(timer_, 0, &its, nullptr);
    }
  }
  ~PreemptionFuzzer() {
    if (armed_) timer_delete(timer_);
  }
  PreemptionFuzzer(const PreemptionFuzzer&) = delete;
  PreemptionFuzzer& operator=(const PreemptionFuzzer&) = delete;

 private:
  timer_t timer_{};
  bool armed_ = false;
};

#else

class PreemptionFuzzer {
 public:
  explicit PreemptionFuzzer(long) {}
};

#endif  // __linux__

// ---- schedule points ---------------------------------------------------------

namespace schedpt {

/// True in builds where PWSS_SCHED_POINT compiles to a live hook. Tests
/// use this to GTEST_SKIP the injection scenarios in ordinary builds
/// instead of silently passing without exploring anything.
#if defined(PWSS_SCHEDULE_POINTS)
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

struct Point {
  const char* name;
  std::atomic<std::uint64_t> hits{0};    ///< times control passed the point
  std::atomic<std::uint64_t> delays{0};  ///< times a yield/park was injected
  Point* next = nullptr;                 ///< registry link (push-only list)
};

/// Head of the push-only registry. Points are function-local statics that
/// link themselves in on first execution; the list only ever grows, so a
/// snapshot walk needs no lock.
inline std::atomic<Point*>& registry_head() {
  static std::atomic<Point*> head{nullptr};
  return head;
}

inline void register_point(Point& p) {
  Point* head = registry_head().load(std::memory_order_relaxed);
  do {
    p.next = head;
  } while (!registry_head().compare_exchange_weak(
      head, &p, std::memory_order_release, std::memory_order_relaxed));
}

/// The active seed; 0 = injection disabled (points still count hits).
inline std::atomic<std::uint64_t>& seed_word() {
  static std::atomic<std::uint64_t> seed{0};
  return seed;
}

/// Longest injected park in microseconds (default 2 ms — longer than a
/// scheduling slice on every mainstream kernel config, so the parked
/// thread's counterpart really runs).
inline std::atomic<std::uint32_t>& max_park_us() {
  static std::atomic<std::uint32_t> us{2000};
  return us;
}

/// Enables injection with the given nonzero seed. The decision at each
/// point is a pure function of (seed, point name, per-thread hit index),
/// so re-running a scenario with the same seed and thread structure
/// replays the same injection schedule.
inline void enable(std::uint64_t seed, std::uint32_t park_us = 2000) {
  max_park_us().store(park_us, std::memory_order_relaxed);
  seed_word().store(seed == 0 ? 1 : seed, std::memory_order_release);
}

inline void disable() { seed_word().store(0, std::memory_order_release); }

/// Hit/delay counters for every point executed so far, in registration
/// order. Names are the string literals passed to PWSS_SCHED_POINT.
struct Snapshot {
  std::string_view name;
  std::uint64_t hits;
  std::uint64_t delays;
};
inline std::vector<Snapshot> snapshot() {
  std::vector<Snapshot> out;
  for (Point* p = registry_head().load(std::memory_order_acquire); p != nullptr;
       p = p->next) {
    out.push_back({p->name, p->hits.load(std::memory_order_relaxed),
                   p->delays.load(std::memory_order_relaxed)});
  }
  return out;
}

/// Total hits recorded for the named point (0 if it never executed).
inline std::uint64_t hits(std::string_view name) {
  for (Point* p = registry_head().load(std::memory_order_acquire); p != nullptr;
       p = p->next) {
    if (name == p->name) return p->hits.load(std::memory_order_relaxed);
  }
  return 0;
}

/// splitmix64 finalizer — the standard 64-bit avalanche mix.
inline constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline constexpr std::uint64_t hash_name(const char* s) noexcept {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (; *s != '\0'; ++s) h = (h ^ static_cast<unsigned char>(*s)) * 0x100000001b3ULL;
  return h;
}

/// The slow path of a hit: decides, from the seed alone, whether to
/// perturb the schedule here. Roughly 1 in 8 hits yields and 1 in 32
/// parks (seed-dependent duration up to max_park_us) — dense enough that
/// a window executed a few hundred times per seed is perturbed many
/// times, sparse enough that instrumented suites stay fast.
inline void perturb(Point& p, std::uint64_t seed) {
  thread_local std::uint64_t thread_salt =
      mix64(std::hash<std::thread::id>{}(std::this_thread::get_id()));
  thread_local std::uint64_t sequence = 0;
  const std::uint64_t h =
      mix64(seed ^ hash_name(p.name) ^ thread_salt ^ ++sequence);
  if ((h & 31) == 0) {
    p.delays.fetch_add(1, std::memory_order_relaxed);
    const std::uint32_t cap = max_park_us().load(std::memory_order_relaxed);
    const std::uint32_t us = 50 + static_cast<std::uint32_t>(
                                      (h >> 8) % (cap > 50 ? cap - 50 : 1));
#if defined(__linux__)
    timespec park{0, static_cast<long>(us) * 1000};
    nanosleep(&park, nullptr);
#else
    std::this_thread::sleep_for(std::chrono::microseconds(us));
#endif
  } else if ((h & 7) == 0) {
    p.delays.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
}

inline void hit(Point& p) {
  if (p.hits.fetch_add(1, std::memory_order_relaxed) == 0) register_point(p);
  const std::uint64_t seed = seed_word().load(std::memory_order_acquire);
  if (seed != 0) perturb(p, seed);
}

}  // namespace schedpt
}  // namespace pwss::util

// The hook itself. `name` must be a string literal; the Point is a
// function-local static, so a point's cost when injection is disabled is
// one relaxed fetch_add plus one relaxed load.
#if defined(PWSS_SCHEDULE_POINTS)
#define PWSS_SCHED_POINT(name)                                   \
  do {                                                           \
    static ::pwss::util::schedpt::Point pwss_sched_pt_{name};    \
    ::pwss::util::schedpt::hit(pwss_sched_pt_);                  \
  } while (0)
#else
#define PWSS_SCHED_POINT(name) ((void)0)
#endif
