#pragma once
// Workload generators for the experiment suite (DESIGN.md E1..E8).
//
// All generators are deterministic given a seed, so every benchmark and
// property test is reproducible run-to-run.

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace pwss::util {

/// Operation kind used by workloads, tests and benches. The maps' own op
/// type (core/ops.hpp) mirrors this; keeping a plain POD here lets the
/// generators stay independent of the data-structure headers.
enum class OpKind : std::uint8_t {
  kSearch,
  kInsert,
  kErase,
  kPredecessor,  // ordered: greatest key < key
  kSuccessor,    // ordered: least key > key
  kRangeCount,   // ordered: |[key, key2]|
};

struct KeyOp {
  OpKind kind;
  std::uint64_t key;
  std::uint64_t value;   // payload for inserts
  std::uint64_t key2 = 0;  // kRangeCount: inclusive high bound
};

/// Fraction-based operation mix; the six fractions must sum to 1
/// (validated). The ordered fractions (pred/succ/range) drive the
/// protocol-v2 query kinds; range-count queries span [key,
/// key + range_span].
struct OpMix {
  double search = 1.0;
  double insert = 0.0;
  double erase = 0.0;
  double pred = 0.0;
  double succ = 0.0;
  double range = 0.0;
  std::uint64_t range_span = 1024;

  /// True when any ordered fraction is positive (the CLI refuses such a
  /// mix for backends without ordered support).
  bool has_ordered() const { return pred > 0 || succ > 0 || range > 0; }
};

/// count keys drawn uniformly from [0, universe).
std::vector<std::uint64_t> uniform_keys(std::uint64_t universe,
                                        std::size_t count,
                                        std::uint64_t seed);

/// count keys drawn Zipf(theta) over [0, universe), then affinely hashed so
/// hot keys are scattered across the key space (avoids accidental
/// comparison-order locality).
std::vector<std::uint64_t> zipf_keys(std::uint64_t universe, double theta,
                                     std::size_t count, std::uint64_t seed);

/// Sliding working-set workload: with probability (1-miss_rate) draws from
/// the `window` most recently used keys; otherwise from the whole universe
/// (which also rotates the window). Models temporal locality with a
/// controllable working-set size — the knob Theorem 7 / E1 sweeps.
std::vector<std::uint64_t> working_set_keys(std::uint64_t universe,
                                            std::size_t window,
                                            double miss_rate,
                                            std::size_t count,
                                            std::uint64_t seed);

/// A single batch of `size` ops where ceil(dup_fraction*size) ops all hit
/// one key and the rest are distinct — the adversarial batch shape from
/// Section 3 ("b searches for the same item in the last tree").
std::vector<KeyOp> duplicate_heavy_batch(std::uint64_t universe,
                                         std::size_t size,
                                         double dup_fraction,
                                         std::uint64_t seed);

/// Expand a key sequence into ops with the given mix.
std::vector<KeyOp> apply_mix(const std::vector<std::uint64_t>& keys,
                             const OpMix& mix, std::uint64_t seed);

/// Empirical entropy (bits per access) of a key sequence:
/// H = sum_i q_i log2(1/q_i) over item frequencies q_i.
double empirical_entropy_bits(const std::vector<std::uint64_t>& keys);

/// The paper's working-set bound W_L (Definition 2) for a sequence of
/// *search* accesses performed on an initially-empty map: each access costs
/// log2(r)+1 where r is its access rank (distinct items touched since the
/// previous access to the same key; first access of a key ranks as the
/// current number of distinct items + 1, matching Definition 1's
/// insertion/miss rule). Used by E1/E4 to compare measured work to W_L.
double working_set_bound(const std::vector<std::uint64_t>& keys);

}  // namespace pwss::util
