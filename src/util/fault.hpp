#pragma once
// Schedule-point fault injection (DESIGN.md "Overload & fault model").
//
// PWSS_FAULT_POINT("name") is the failure-side sibling of
// PWSS_SCHED_POINT: an *expression* that answers "should this site fail
// right now?". In ordinary builds it compiles to the constant `false` —
// zero code, zero data, branches fold away. Under -DPWSS_FAULT_INJECT=ON
// each evaluation consults a seeded mix of (global seed, site name,
// per-thread hit counter) exactly like the interleaving explorer, so a
// failing seed replays; tests can additionally *force* a named site to
// fail a fixed number of times for deterministic coverage of one
// recovery path.
//
// The contract at every site is the robustness layer's core invariant:
// an injected failure must surface as a terminal Result status
// (kOverloaded at buffer/pool sites) with the structure untouched — deep
// validate() clean, quiescence counters conserved — never as a torn
// pipeline or a lost op. Sites are therefore placed only where failure
// is clean *by construction*:
//
//   site                               models                    surfaces as
//   ---------------------------------- ------------------------- -----------
//   node_pool.chunk_alloc              heap exhaustion in        PoolExhausted
//                                      NodePool::acquire_chunk   (unit tests
//                                                                only; pool
//                                                                state is
//                                                                untouched)
//   async_map.batch.pool_reserve       pool exhaustion detected  whole cut
//                                      before a cut batch runs   batch sheds
//                                                                kOverloaded
//   m2.batch.pool_reserve              same, M2 native front end kOverloaded
//   parallel_buffer.submit.reject      bounded input buffer      submit()
//                                      refusing a publication    returns false
//                                                                → kOverloaded
//   scheduler.spawn.stall              a worker that is slow to  brief park,
//                                      pick up a spawned drive   not failure
//   wal.append                         write(2) failure while    mutation sheds
//                                      appending a WAL record    kReadOnly;
//                                                                driver sticky
//                                                                read-only
//   wal.fsync                          fsync(2) failure at a     same
//                                      group-commit boundary
//   snapshot.write                     write failure while       checkpoint()
//                                      emitting a snapshot       reports error;
//                                                                driver sticky
//                                                                read-only
//   net.write.partial                  short write(2) on a       response frame
//                                      response socket (kernel   resumes via
//                                      buffer pressure)          POLLOUT; no
//                                                                torn frames
//   net.accept.fail                    accept(2) failing under   connection
//                                      fd pressure               dropped; server
//                                                                keeps serving
//
// The registry mirrors util/schedule_points.hpp: function-local static
// Sites link into a push-only list on first hit, counters are relaxed,
// configuration words are plain atomics — no locks anywhere on the hit
// path.

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "util/schedule_points.hpp"  // mix64 / hash_name

namespace pwss::util {

/// Thrown by NodePool::acquire_chunk when the "node_pool.chunk_alloc"
/// site fires: injected heap exhaustion. Derives from std::bad_alloc so
/// code written for the real failure handles the injected one the same
/// way. A failed acquire_chunk leaves the pool untouched (create() is
/// exception-safe), so recovery is simply "stop allocating".
struct PoolExhausted : std::bad_alloc {
  const char* what() const noexcept override {
    return "pwss: node-pool chunk allocation failed (injected)";
  }
};

namespace faultpt {

/// True in builds where PWSS_FAULT_POINT compiles to a live site. Tests
/// use this to GTEST_SKIP injection scenarios in ordinary builds instead
/// of silently passing without injecting anything.
#if defined(PWSS_FAULT_INJECT)
inline constexpr bool kCompiled = true;
#else
inline constexpr bool kCompiled = false;
#endif

struct Site {
  const char* name;
  std::atomic<std::uint64_t> hits{0};   ///< times the site was evaluated
  std::atomic<std::uint64_t> fires{0};  ///< times it answered "fail"
  Site* next = nullptr;                 ///< registry link (push-only list)
};

inline std::atomic<Site*>& registry_head() {
  static std::atomic<Site*> head{nullptr};
  return head;
}

inline void register_site(Site& s) {
  Site* head = registry_head().load(std::memory_order_relaxed);
  do {
    s.next = head;
  } while (!registry_head().compare_exchange_weak(
      head, &s, std::memory_order_release, std::memory_order_relaxed));
}

/// The active seed; 0 = seeded injection disabled (sites still count
/// hits, and forced failures still fire).
inline std::atomic<std::uint64_t>& seed_word() {
  static std::atomic<std::uint64_t> seed{0};
  return seed;
}

/// Mean hits between seeded fires at each site (a fire is roughly a
/// 1-in-period event per evaluation). Kept deliberately coarse: overload
/// handling is exercised by *occasional* failure, not by failing every
/// call.
inline std::atomic<std::uint32_t>& period_word() {
  static std::atomic<std::uint32_t> period{16};
  return period;
}

// ---- selection & forcing -----------------------------------------------------
// Both tables are small fixed arrays of (name, payload) slots claimed by
// CAS — lock-free for the hit path, plenty for tests (a handful of sites
// exist in the whole tree). Names must be string literals or otherwise
// outlive the process; matching is by content, not pointer, because the
// same site name appears as distinct literals across TUs.

inline constexpr std::size_t kMaxSlots = 16;

struct NameSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::int64_t> payload{0};
};

inline NameSlot* forced_table() {
  static NameSlot table[kMaxSlots];
  return table;
}
inline NameSlot* selected_table() {
  static NameSlot table[kMaxSlots];
  return table;
}
/// Number of names in selected_table; 0 = no filter, every site
/// participates in seeded injection.
inline std::atomic<std::size_t>& selected_count() {
  static std::atomic<std::size_t> n{0};
  return n;
}

inline NameSlot* find_or_claim(NameSlot* table, const char* name) {
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    const char* cur = table[i].name.load(std::memory_order_acquire);
    if (cur == nullptr) {
      if (table[i].name.compare_exchange_strong(cur, name,
                                                std::memory_order_acq_rel)) {
        return &table[i];
      }
      cur = table[i].name.load(std::memory_order_acquire);
    }
    if (cur != nullptr && std::string_view(cur) == name) return &table[i];
  }
  return nullptr;  // table full — config error in a test, not a hot path
}

inline NameSlot* find(NameSlot* table, std::string_view name) {
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    const char* cur = table[i].name.load(std::memory_order_acquire);
    if (cur == nullptr) return nullptr;  // slots fill front-to-back
    if (std::string_view(cur) == name) return &table[i];
  }
  return nullptr;
}

/// Makes the named site fail its next `count` evaluations, regardless of
/// the seed — the deterministic hammer for unit-testing one recovery
/// path. Counts accumulate across calls.
inline void force(const char* name, std::int64_t count) {
  if (NameSlot* s = find_or_claim(forced_table(), name)) {
    s->payload.fetch_add(count, std::memory_order_acq_rel);
  }
}

inline void clear_forced() {
  NameSlot* t = forced_table();
  for (std::size_t i = 0; i < kMaxSlots; ++i) {
    t[i].payload.store(0, std::memory_order_release);
  }
}

/// Restricts *seeded* injection to the named sites (forced failures are
/// unaffected). The sweep tests use this to keep unclean-by-construction
/// sites (node_pool.chunk_alloc mid-tree-op) out of integrated runs.
inline void select_only(std::initializer_list<const char*> names) {
  NameSlot* t = selected_table();
  std::size_t n = 0;
  for (const char* name : names) {
    if (n < kMaxSlots) t[n++].name.store(name, std::memory_order_release);
  }
  selected_count().store(n, std::memory_order_release);
}

inline void clear_selection() {
  selected_count().store(0, std::memory_order_release);
}

inline bool selected(std::string_view name) {
  const std::size_t n = selected_count().load(std::memory_order_acquire);
  if (n == 0) return true;
  NameSlot* t = selected_table();
  for (std::size_t i = 0; i < n; ++i) {
    const char* cur = t[i].name.load(std::memory_order_acquire);
    if (cur != nullptr && std::string_view(cur) == name) return true;
  }
  return false;
}

// ---- enable / disable / counters ---------------------------------------------

/// Enables seeded injection with the given nonzero seed. The decision at
/// each site is a pure function of (seed, site name, per-thread hit
/// index): re-running a scenario with the same seed and thread structure
/// replays the same failure schedule.
inline void enable(std::uint64_t seed, std::uint32_t period = 16) {
  period_word().store(period < 2 ? 2 : period, std::memory_order_relaxed);
  seed_word().store(seed == 0 ? 1 : seed, std::memory_order_release);
}

inline void disable() { seed_word().store(0, std::memory_order_release); }

struct Snapshot {
  std::string_view name;
  std::uint64_t hits;
  std::uint64_t fires;
};
inline std::vector<Snapshot> snapshot() {
  std::vector<Snapshot> out;
  for (Site* s = registry_head().load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    out.push_back({s->name, s->hits.load(std::memory_order_relaxed),
                   s->fires.load(std::memory_order_relaxed)});
  }
  return out;
}

// hits()/fires() SUM across every registered site carrying the name: the
// same PWSS_FAULT_POINT expression instantiated from several TUs or
// template specializations (ParallelBuffer<T>::submit for each T) yields
// distinct function-local statics that all share one logical site.
inline std::uint64_t hits(std::string_view name) {
  std::uint64_t total = 0;
  for (Site* s = registry_head().load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    if (name == s->name) total += s->hits.load(std::memory_order_relaxed);
  }
  return total;
}

inline std::uint64_t fires(std::string_view name) {
  std::uint64_t total = 0;
  for (Site* s = registry_head().load(std::memory_order_acquire); s != nullptr;
       s = s->next) {
    if (name == s->name) total += s->fires.load(std::memory_order_relaxed);
  }
  return total;
}

// ---- PWSS_FAULT_LIST exit dump -----------------------------------------------

/// Writes every fault site and schedule point the process ever executed
/// to stderr, aggregated by name (the same logical site instantiates one
/// function-local static per TU / template specialization). Used by the
/// atexit dump below and callable directly from tests.
inline void dump_sites(std::FILE* out) {
  std::fprintf(out, "pwss: fault/schedule-point site dump\n");
  std::fprintf(out, "  fault points (compiled: %s):\n",
               kCompiled ? "yes" : "no");
  std::vector<std::pair<std::string_view, std::pair<std::uint64_t,
                                                    std::uint64_t>>> agg;
  for (const Snapshot& s : snapshot()) {
    bool merged = false;
    for (auto& [name, counts] : agg) {
      if (name == s.name) {
        counts.first += s.hits;
        counts.second += s.fires;
        merged = true;
        break;
      }
    }
    if (!merged) agg.push_back({s.name, {s.hits, s.fires}});
  }
  if (agg.empty()) std::fprintf(out, "    (no site executed)\n");
  for (const auto& [name, counts] : agg) {
    std::fprintf(out, "    %-36.*s hits=%llu fires=%llu\n",
                 static_cast<int>(name.size()), name.data(),
                 static_cast<unsigned long long>(counts.first),
                 static_cast<unsigned long long>(counts.second));
  }
  std::fprintf(out, "  schedule points (compiled: %s):\n",
               schedpt::kCompiled ? "yes" : "no");
  const auto points = schedpt::snapshot();
  if (points.empty()) std::fprintf(out, "    (no point executed)\n");
  for (const auto& p : points) {
    std::fprintf(out, "    %-36.*s hits=%llu delays=%llu\n",
                 static_cast<int>(p.name.size()), p.name.data(),
                 static_cast<unsigned long long>(p.hits),
                 static_cast<unsigned long long>(p.delays));
  }
  std::fflush(out);
}

/// PWSS_FAULT_LIST=1 observability hook: when the env var is set (and not
/// "0"), registers an atexit handler that dumps every fault/schedule-point
/// site with its hit/fire counts. Idempotent — the driver constructor
/// calls it on every instantiation, the handler registers once.
inline void register_exit_dump() {
  static const bool registered = [] {
    const char* env = std::getenv("PWSS_FAULT_LIST");
    if (env == nullptr || *env == '\0' ||
        std::string_view(env) == "0") {
      return false;
    }
    std::atexit([] { dump_sites(stderr); });
    return true;
  }();
  (void)registered;
}

/// The hit path: registers the site on first evaluation, then answers
/// forced failures first (deterministic, seed-independent) and the
/// seeded coin flip second.
inline bool should_fail(Site& s) {
  if (s.hits.fetch_add(1, std::memory_order_relaxed) == 0) register_site(s);
  if (NameSlot* f = find(forced_table(), s.name)) {
    std::int64_t r = f->payload.load(std::memory_order_acquire);
    while (r > 0) {
      if (f->payload.compare_exchange_weak(r, r - 1, std::memory_order_acq_rel,
                                           std::memory_order_acquire)) {
        s.fires.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
    }
  }
  const std::uint64_t seed = seed_word().load(std::memory_order_acquire);
  if (seed == 0) return false;
  if (!selected(s.name)) return false;
  thread_local std::uint64_t thread_salt = schedpt::mix64(
      std::hash<std::thread::id>{}(std::this_thread::get_id()));
  thread_local std::uint64_t sequence = 0;
  const std::uint64_t h = schedpt::mix64(seed ^ schedpt::hash_name(s.name) ^
                                         thread_salt ^ ++sequence);
  const std::uint32_t period = period_word().load(std::memory_order_relaxed);
  if (h % period == 0) {
    s.fires.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

}  // namespace faultpt
}  // namespace pwss::util

// The site itself. `name` must be a string literal. The expression form
// (an immediately-invoked lambda holding the function-local static) lets
// call sites read naturally: `if (PWSS_FAULT_POINT("x")) { shed(); }`.
// Without -DPWSS_FAULT_INJECT the whole branch folds to nothing.
#if defined(PWSS_FAULT_INJECT)
#define PWSS_FAULT_POINT(name)                                  \
  ([]() -> bool {                                               \
    static ::pwss::util::faultpt::Site pwss_fault_site_{name};  \
    return ::pwss::util::faultpt::should_fail(pwss_fault_site_); \
  }())
#else
#define PWSS_FAULT_POINT(name) (false)
#endif
