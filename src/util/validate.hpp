#pragma once
// Validator — the tiny reporting core the deep invariant validators share
// (DESIGN.md "Correctness-analysis toolbox").
//
// A structure's validate() walks its representation checking every
// invariant it owns and returns a std::string: empty means every check
// passed; otherwise the string pinpoints the FIRST violated invariant
// with the offending values ("segment[2]: tree representation with size 17
// <= demote bound 32 and not pinned"). Differential fuzzers assert
// `validate() == ""` between rounds, so a violation fails with the precise
// description instead of a bare abort deep inside the structure.
//
// Only the first failure is recorded: deep walks stop making sense the
// moment one structural invariant is broken (a cycle or a bad size field
// would otherwise cascade into thousands of follow-on reports), and
// require() keeps evaluating to its condition so callers can bail out of
// a walk early.

#include <sstream>
#include <string>
#include <utility>

namespace pwss::util {

class Validator {
 public:
  Validator() = default;
  /// `context` prefixes every failure message ("m1: ", "segment[3]: ").
  explicit Validator(std::string context) : context_(std::move(context)) {}

  /// Records a failure message (streamed from `parts`) when `cond` is
  /// false and no earlier failure is recorded; returns `cond` either way
  /// so walks can stop descending once broken.
  template <typename... Parts>
  bool require(bool cond, const Parts&... parts) {
    if (!cond && error_.empty()) {
      std::ostringstream os;
      os << context_;
      (os << ... << parts);
      error_ = os.str();
    }
    return cond;
  }

  /// Merges a sub-structure's validate() result under this context.
  template <typename... Parts>
  bool absorb(const std::string& sub_error, const Parts&... prefix) {
    return require(sub_error.empty(), prefix..., sub_error);
  }

  bool ok() const noexcept { return error_.empty(); }
  const std::string& error() const noexcept { return error_; }
  std::string take() && { return std::move(error_); }

 private:
  std::string context_;
  std::string error_;
};

}  // namespace pwss::util
