#include "util/zipf.hpp"

#include <cmath>

namespace pwss::util {

ZipfGenerator::ZipfGenerator(std::uint64_t n, double theta)
    : n_(n ? n : 1), theta_(theta == 1.0 ? 0.9999 : theta) {
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

double ZipfGenerator::zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}

std::uint64_t ZipfGenerator::operator()(Xoshiro256& rng) noexcept {
  const double u = rng.uniform01();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const double x = static_cast<double>(n_) *
                   std::pow(eta_ * u - eta_ + 1.0, alpha_);
  std::uint64_t k = static_cast<std::uint64_t>(x);
  if (k >= n_) k = n_ - 1;
  return k;
}

}  // namespace pwss::util
