#pragma once
// NodePool — a parallel-safe free-list allocator for tree nodes, the
// allocation-discipline layer under tree/jtree.hpp (see DESIGN.md
// "Allocation discipline"). Every segment of the working-set hierarchy is a
// pair of JTrees, so every insert/extract/split/join used to pay one global
// `new`/`delete` per node; the pool turns that steady-state churn into
// pointer pushes on a worker-local free list.
//
// Structure:
//  * storage comes from chunk allocations (kDefaultChunkNodes nodes per
//    heap call), tracked on an intrusive chunk list and released only when
//    the pool dies — individual node lifecycles never touch the heap;
//  * free nodes live on per-worker shards, indexed by the owning
//    scheduler's worker id (`Scheduler::worker_slot`): the two halves of a
//    `parallel_invoke` recursion allocate and free on different shards, so
//    batch ops scale without contending on one lock. Slot 0 serves every
//    external (non-worker) thread; each shard carries its own spinlock so
//    the pool stays safe under any threading, the sharding only makes the
//    fork/join case contention-free;
//  * each shard additionally carries an OWNER-PRIVATE free list: the first
//    thread to touch a shard claims it (one CAS on a thread-identity
//    cookie, never released), and from then on that thread's node churn is
//    plain pointer pushes/pops with no atomics at all — the fast path that
//    makes tiny-tree insert/erase cost what an unpooled `new`-free loop
//    would. Worker shards are single-thread-mapped by construction, so in
//    practice every worker runs the private path; on slot 0 the first
//    external thread wins the claim and later external threads fall back
//    to the shard's locked list. Nodes cross between the private list and
//    the rest of the pool only through the shard lock (draining the shared
//    list on refill) or the global spine (spilling past the cap), which
//    bounds how many free nodes a claimant can strand;
//  * a global overflow spine rebalances memory: a shard past its cap (and
//    every bulk `recycle_chain` of a dropped subtree) splices nodes to the
//    spine in O(1), and an empty shard refills from the spine before
//    growing a new chunk.
//
// Ownership contract: one pool domain per map instance (SegmentPools in
// core/segment.hpp); trees must die before their pool. The pool never
// shrinks below its high-water chunk count — acceptable because segment
// transfers recycle as many nodes as they consume at steady state.

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "sched/scheduler.hpp"
#include "util/fault.hpp"
#include "util/schedule_points.hpp"
#include "util/validate.hpp"

namespace pwss::util {

/// Tiny test-and-test-and-set lock for the pool shards: uncontended
/// acquire/release is two atomic ops, and per-worker sharding makes
/// contention the exception, not the rule.
class SpinLock {
 public:
  void lock() noexcept {
    int spins = 0;
    while (flag_.test_and_set(std::memory_order_acquire)) {
      while (flag_.test(std::memory_order_relaxed)) {
        if (++spins > 64) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }
  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

template <typename T>
class NodePool {
 private:
  struct FreeLink {
    FreeLink* next;
  };

 public:
  /// Nodes carved per heap allocation.
  static constexpr std::size_t kDefaultChunkNodes = 64;

  /// A shard holding more than this many free nodes spills a chunk's worth
  /// to the overflow spine, so memory freed by one worker reaches the
  /// others instead of pinning to the freeing shard.
  static constexpr std::size_t kShardCapChunks = 4;

  explicit NodePool(sched::Scheduler* scheduler = nullptr,
                    std::size_t chunk_nodes = kDefaultChunkNodes)
      : scheduler_(scheduler),
        chunk_nodes_(chunk_nodes == 0 ? 1 : chunk_nodes),
        shards_(scheduler ? scheduler->worker_count() + 1 : 1) {}

  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  ~NodePool() {
    assert(total_allocs() == total_frees() &&
           "pool destroyed with live nodes — a tree outlived its pool");
    ChunkHeader* c = chunks_;
    while (c != nullptr) {
      ChunkHeader* next = c->next;
      ::operator delete(static_cast<void*>(c),
                        std::align_val_t{chunk_align()});
      c = next;
    }
  }

  /// Raw-storage chain for bulk recycling: an iterative tree teardown
  /// pushes every (already destructed) node here and hands the whole chain
  /// back in one pool call.
  class FreeChain {
   public:
    void push(void* p) noexcept {
      auto* link = static_cast<FreeLink*>(p);
      link->next = head_;
      if (head_ == nullptr) tail_ = link;
      head_ = link;
      ++count_;
    }
    bool empty() const noexcept { return head_ == nullptr; }
    std::size_t size() const noexcept { return count_; }

   private:
    friend NodePool;
    FreeLink* head_ = nullptr;
    FreeLink* tail_ = nullptr;
    std::size_t count_ = 0;
  };

  /// Constructs a T in pooled storage. If T's constructor throws, the
  /// slot goes back to the pool (accounting stays balanced).
  template <typename... Args>
  T* create(Args&&... args) {
    void* p = allocate_raw();
    try {
      return ::new (p) T(std::forward<Args>(args)...);
    } catch (...) {
      recycle_raw(p);
      throw;
    }
  }

  /// Destructs and recycles one node.
  void destroy(T* node) noexcept {
    node->~T();
    recycle_raw(static_cast<void*>(node));
  }

  /// Recycles a chain of already-destructed node storage in O(1) splices:
  /// chains of at least a chunk go straight to the overflow spine (one
  /// global-lock splice), small chains land on the calling thread's shard.
  void recycle_chain(FreeChain chain) noexcept {
    if (chain.empty()) return;
    if (chain.count_ >= chunk_nodes_) {
      // relaxed: pure statistic — nothing is published through frees_;
      // totals are only read exactly from quiescent states.
      frees_.fetch_add(chain.count_, std::memory_order_relaxed);
      std::lock_guard<SpinLock> lk(global_mu_);
      splice_into_overflow(chain);
      return;
    }
    Shard& s = home_shard();
    if (owns(s)) {
      bump(s.priv_frees, chain.count_);
      chain.tail_->next = s.priv_head;
      s.priv_head = chain.head_;
      // relaxed: priv_count has a single writer (this owner); atomicity
      // exists only for cross-thread stats reads, which are approximate.
      const std::size_t n =
          s.priv_count.load(std::memory_order_relaxed) + chain.count_;
      s.priv_count.store(n, std::memory_order_relaxed);
      if (n > kShardCapChunks * chunk_nodes_) spill_private(s);
      return;
    }
    // relaxed: pure statistic (see above); the list splice itself is
    // ordered by the shard lock, not by this counter.
    frees_.fetch_add(chain.count_, std::memory_order_relaxed);
    FreeChain spill;
    {
      std::lock_guard<SpinLock> lk(s.lock);
      chain.tail_->next = s.head;
      s.head = chain.head_;
      s.count += chain.count_;
      maybe_spill(s, spill);
    }
    flush_spill(spill);
  }

  /// Uninitialized storage for one node (for callers doing their own
  /// placement new).
  void* allocate_raw() {
    Shard& s = home_shard();
    if (owns(s)) {
      // Private fast path: no lock, no CAS, no RMW — the claim protocol
      // guarantees this thread is the only one touching priv_head, and the
      // accounting goes to owner-written counters (plain load+store).
      if (s.priv_head == nullptr) refill_private(s);
      FreeLink* p = s.priv_head;
      s.priv_head = p->next;
      // relaxed: single-writer counter (this owner); stats readers accept
      // approximate values outside quiescence.
      s.priv_count.store(s.priv_count.load(std::memory_order_relaxed) - 1,
                         std::memory_order_relaxed);
      bump(s.priv_allocs, 1);
      return static_cast<void*>(p);
    }
    for (;;) {
      {
        std::lock_guard<SpinLock> lk(s.lock);
        if (s.head != nullptr) {
          FreeLink* p = s.head;
          s.head = p->next;
          --s.count;
          // relaxed: pure statistic; the node handoff is ordered by the
          // shard lock held here.
          allocs_.fetch_add(1, std::memory_order_relaxed);
          return static_cast<void*>(p);
        }
      }
      refill(s);
    }
  }

  /// Recycles storage whose T was already destructed.
  void recycle_raw(void* p) noexcept {
    Shard& s = home_shard();
    if (owns(s)) {
      bump(s.priv_frees, 1);
      auto* link = static_cast<FreeLink*>(p);
      link->next = s.priv_head;
      s.priv_head = link;
      // relaxed: single-writer counter (this owner), as in allocate_raw.
      const std::size_t n =
          s.priv_count.load(std::memory_order_relaxed) + 1;
      s.priv_count.store(n, std::memory_order_relaxed);
      if (n > kShardCapChunks * chunk_nodes_) spill_private(s);
      return;
    }
    // relaxed: pure statistic; the push below is ordered by the shard lock.
    frees_.fetch_add(1, std::memory_order_relaxed);
    FreeChain spill;
    {
      std::lock_guard<SpinLock> lk(s.lock);
      auto* link = static_cast<FreeLink*>(p);
      link->next = s.head;
      s.head = link;
      ++s.count;
      maybe_spill(s, spill);
    }
    flush_spill(spill);
  }

  /// Counting hook for tests and the perf trajectory. `free_nodes` walks
  /// no lists (per-shard counters), but takes every shard lock — call it
  /// from quiescent states only if exactness matters.
  struct Stats {
    std::uint64_t node_allocs = 0;   // create/allocate_raw calls
    std::uint64_t node_frees = 0;    // destroy/recycle calls (chain-weighted)
    std::uint64_t chunk_allocs = 0;  // heap allocations performed
    std::size_t free_nodes = 0;      // nodes parked on shards + spine
  };
  Stats stats() const {
    Stats st;
    st.node_allocs = total_allocs();
    st.node_frees = total_frees();
    // relaxed: monotone statistic; exactness is only claimed quiescently.
    st.chunk_allocs = chunk_count_.load(std::memory_order_relaxed);
    for (const auto& s : shards_) {
      // The priv_* counters are relaxed atomics written only by the
      // shard's owner; reading them here is approximate unless the pool
      // is quiescent.
      st.free_nodes += s.priv_count.load(std::memory_order_relaxed);
      std::lock_guard<SpinLock> lk(s.lock);
      st.free_nodes += s.count;
    }
    {
      std::lock_guard<SpinLock> lk(global_mu_);
      st.free_nodes += overflow_.count_;
    }
    return st;
  }

  /// Nodes currently constructed out of this pool (exact when quiescent).
  std::uint64_t live_nodes() const noexcept {
    return total_allocs() - total_frees();
  }

  /// Deep accounting check — QUIESCENT POOLS ONLY (it walks the
  /// owner-private lists from this thread). Verifies, with bounded walks
  /// so a cycle cannot hang it: every shard's locked and private list
  /// lengths match their counters, the overflow spine's length matches
  /// its count, the chunk list matches chunk_count_, and conservation:
  /// free nodes + live nodes == chunks * nodes-per-chunk. Empty = OK.
  std::string validate() const {
    util::Validator v("node_pool: ");
    const std::uint64_t chunks = chunk_count_.load(std::memory_order_relaxed);
    const std::uint64_t slots = chunks * chunk_nodes_;
    // One past every slot: a healthy list can never be longer.
    const std::uint64_t walk_cap = slots + 1;
    auto walk = [walk_cap](const FreeLink* head) {
      std::uint64_t n = 0;
      for (const FreeLink* p = head; p != nullptr && n < walk_cap;
           p = p->next) {
        ++n;
      }
      return n;
    };

    std::uint64_t free_total = 0;
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      const Shard& s = shards_[i];
      std::uint64_t shared_len = 0;
      {
        std::lock_guard<SpinLock> lk(s.lock);
        shared_len = walk(s.head);
        if (!v.require(shared_len == s.count, "shard ", i,
                       ": locked free list holds ", shared_len,
                       " nodes (walk capped at ", walk_cap,
                       ") but count says ", s.count)) {
          return std::move(v).take();
        }
      }
      const std::uint64_t priv_len = walk(s.priv_head);
      const std::uint64_t priv_count =
          s.priv_count.load(std::memory_order_relaxed);
      if (!v.require(priv_len == priv_count, "shard ", i,
                     ": private free list holds ", priv_len,
                     " nodes (walk capped at ", walk_cap,
                     ") but priv_count says ", priv_count)) {
        return std::move(v).take();
      }
      free_total += shared_len + priv_len;
    }
    {
      std::lock_guard<SpinLock> lk(global_mu_);
      const std::uint64_t spine_len = walk(overflow_.head_);
      if (!v.require(spine_len == overflow_.count_,
                     "overflow spine holds ", spine_len,
                     " nodes (walk capped at ", walk_cap,
                     ") but its count says ", overflow_.count_)) {
        return std::move(v).take();
      }
      free_total += spine_len;
      std::uint64_t chunk_len = 0;
      for (const ChunkHeader* c = chunks_; c != nullptr && chunk_len <= chunks;
           c = c->next) {
        ++chunk_len;
      }
      if (!v.require(chunk_len == chunks, "chunk list holds ", chunk_len,
                     " chunks but chunk_count_ says ", chunks)) {
        return std::move(v).take();
      }
    }
    const std::uint64_t allocs = total_allocs();
    const std::uint64_t frees = total_frees();
    if (!v.require(frees <= allocs, "free/alloc imbalance: ", frees,
                   " frees exceed ", allocs, " allocs")) {
      return std::move(v).take();
    }
    const std::uint64_t live = allocs - frees;
    v.require(free_total + live == slots, "node conservation broken: ",
              free_total, " free + ", live, " live != ", chunks,
              " chunks * ", chunk_nodes_, " nodes");
    return std::move(v).take();
  }

 private:
  struct ChunkHeader {
    ChunkHeader* next;
  };

  struct alignas(64) Shard {
    mutable SpinLock lock;
    FreeLink* head = nullptr;
    std::size_t count = 0;  // guarded by lock

    // Owner-private free list: claimed once (owner CAS below), then
    // touched only by the claiming thread — no lock, no atomics on the
    // list itself. The counters are atomic solely so stats() can read
    // them from other threads; the owner is their only writer, updating
    // with plain load+store (never an RMW — that would put a locked
    // instruction back on the fast path the private list exists to
    // strip).
    std::atomic<void*> owner{nullptr};
    FreeLink* priv_head = nullptr;
    std::atomic<std::size_t> priv_count{0};
    std::atomic<std::uint64_t> priv_allocs{0};
    std::atomic<std::uint64_t> priv_frees{0};
  };

  /// Single-writer counter bump: load+store, not fetch_add.
  template <typename U, typename By>
  static void bump(std::atomic<U>& c, By by) noexcept {
    // relaxed: the caller is the counter's only writer (owner-private
    // path), so load-then-store cannot lose updates; readers tolerate
    // staleness outside quiescence.
    c.store(c.load(std::memory_order_relaxed) + static_cast<U>(by),
            std::memory_order_relaxed);
  }

  /// Pool-wide alloc/free totals: the shared RMW counters plus every
  /// shard's owner-private counters (exact when quiescent).
  std::uint64_t total_allocs() const noexcept {
    // relaxed (all four loads below): statistics summation; exact totals
    // are only claimed from quiescent states, where every writer's
    // updates are already visible via thread join/lock edges.
    std::uint64_t a = allocs_.load(std::memory_order_relaxed);
    for (const auto& s : shards_) {
      a += s.priv_allocs.load(std::memory_order_relaxed);
    }
    return a;
  }
  std::uint64_t total_frees() const noexcept {
    std::uint64_t f = frees_.load(std::memory_order_relaxed);
    for (const auto& s : shards_) {
      f += s.priv_frees.load(std::memory_order_relaxed);
    }
    return f;
  }

  /// Per-thread identity for the shard-claim protocol: the address of a
  /// thread_local is unique among live threads. A dead thread's cookie
  /// value may be reused by a new thread, which then simply inherits the
  /// claim — still a single owner, so the protocol stays sound.
  static void* thread_cookie() noexcept {
    static thread_local char cookie;
    return static_cast<void*>(&cookie);
  }

  /// True iff the calling thread owns `s`'s private list, claiming it if
  /// unclaimed. Fast path is one relaxed load.
  bool owns(Shard& s) noexcept {
    void* const me = thread_cookie();
    // relaxed: `cur == me` reads this thread's OWN earlier CAS (a thread
    // always sees its own writes); `cur != nullptr` routes to the locked
    // path, which carries its own ordering — no data flows through owner.
    void* cur = s.owner.load(std::memory_order_relaxed);
    if (cur == me) return true;
    if (cur != nullptr) return false;
    // acq_rel claim: acquire pairs with a previous claimant's release in
    // the cookie-reuse case (inheriting its priv list state); release
    // publishes the claim before this thread's private-list writes.
    // relaxed on failure: we fall back to the locked path regardless.
    const bool claimed = s.owner.compare_exchange_strong(
        cur, me, std::memory_order_acq_rel, std::memory_order_relaxed);
    if (claimed) {
      // A freshly claimed shard: the claimant now runs the no-atomics
      // private path against priv_head/priv_count.
      PWSS_SCHED_POINT("node_pool.owner.claim");
    }
    return claimed;
  }

  static constexpr std::size_t slot_align() noexcept {
    return alignof(T) > alignof(FreeLink) ? alignof(T) : alignof(FreeLink);
  }
  /// Slot stride, rounded up to slot_align so every slot in a chunk can
  /// hold either a T or a properly aligned FreeLink.
  static constexpr std::size_t slot_size() noexcept {
    const std::size_t raw =
        sizeof(T) > sizeof(FreeLink) ? sizeof(T) : sizeof(FreeLink);
    return (raw + slot_align() - 1) / slot_align() * slot_align();
  }
  static constexpr std::size_t chunk_align() noexcept {
    return slot_align() > alignof(ChunkHeader) ? slot_align()
                                               : alignof(ChunkHeader);
  }
  /// Header rounded up so slot 0 is properly aligned.
  static constexpr std::size_t header_span() noexcept {
    return (sizeof(ChunkHeader) + slot_align() - 1) / slot_align() *
           slot_align();
  }

  Shard& home_shard() noexcept {
    std::size_t slot =
        scheduler_ != nullptr ? scheduler_->worker_slot() : 0;
    if (slot >= shards_.size()) slot = 0;  // foreign-scheduler safety net
    return shards_[slot];
  }

  /// Moves a chunk's worth of nodes off an over-full shard (caller holds
  /// the shard lock); the actual overflow splice happens after the shard
  /// lock drops, via flush_spill.
  void maybe_spill(Shard& s, FreeChain& spill) noexcept {
    const std::size_t cap = kShardCapChunks * chunk_nodes_;
    if (s.count <= cap) return;
    for (std::size_t i = 0; i < chunk_nodes_ && s.head != nullptr; ++i) {
      FreeLink* p = s.head;
      s.head = p->next;
      --s.count;
      spill.push(static_cast<void*>(p));
    }
  }

  void flush_spill(FreeChain& spill) noexcept {
    if (spill.empty()) return;
    std::lock_guard<SpinLock> lk(global_mu_);
    splice_into_overflow(spill);
  }

  /// Caller holds global_mu_.
  void splice_into_overflow(FreeChain& chain) noexcept {
    chain.tail_->next = overflow_.head_;
    if (overflow_.head_ == nullptr) overflow_.tail_ = chain.tail_;
    overflow_.head_ = chain.head_;
    overflow_.count_ += chain.count_;
    chain.head_ = chain.tail_ = nullptr;
    chain.count_ = 0;
  }

  /// One chunk's worth of free nodes from the overflow spine (preferred)
  /// or a fresh heap chunk. Takes and releases global_mu_.
  FreeChain acquire_chunk() {
    // Injected heap exhaustion. Placed BEFORE the lock and before any
    // state changes so a failed acquisition leaves the pool exactly as
    // it was — the same guarantee the real ::operator new failure gives
    // (create() is exception-safe), just deterministic and recoverable.
    if (PWSS_FAULT_POINT("node_pool.chunk_alloc")) throw PoolExhausted{};
    FreeChain chain;
    std::lock_guard<SpinLock> lk(global_mu_);
    if (overflow_.head_ != nullptr) {
      for (std::size_t i = 0; i < chunk_nodes_ && overflow_.head_ != nullptr;
           ++i) {
        FreeLink* p = overflow_.head_;
        overflow_.head_ = p->next;
        --overflow_.count_;
        chain.push(static_cast<void*>(p));
      }
      if (overflow_.head_ == nullptr) overflow_.tail_ = nullptr;
    } else {
      const std::size_t bytes = header_span() + chunk_nodes_ * slot_size();
      auto* raw = static_cast<unsigned char*>(
          ::operator new(bytes, std::align_val_t{chunk_align()}));
      auto* header = reinterpret_cast<ChunkHeader*>(raw);
      header->next = chunks_;
      chunks_ = header;
      // relaxed: pure statistic; the chunk list itself is guarded by
      // global_mu_, held here.
      chunk_count_.fetch_add(1, std::memory_order_relaxed);
      unsigned char* slots = raw + header_span();
      for (std::size_t i = 0; i < chunk_nodes_; ++i) {
        chain.push(static_cast<void*>(slots + i * slot_size()));
      }
    }
    return chain;
  }

  /// Restocks `s`'s locked list with up to one chunk of nodes.
  void refill(Shard& s) {
    // Empty shard observed, chunk not yet acquired: racing recyclers may
    // repopulate the shard meanwhile (the caller's retry loop re-checks).
    PWSS_SCHED_POINT("node_pool.refill.locked");
    FreeChain chain = acquire_chunk();
    std::lock_guard<SpinLock> lk(s.lock);
    chain.tail_->next = s.head;
    s.head = chain.head_;
    s.count += chain.count_;
  }

  /// Restocks the calling owner's private list: first drains whatever
  /// non-owner threads parked on the shard's locked list (that memory is
  /// closest — same shard, likely same cache domain), then falls back to
  /// the spine / a fresh chunk. Caller must own `s`.
  void refill_private(Shard& s) {
    // Private list just observed empty; foreign recyclers may be pushing
    // to the shard's locked list at this very moment.
    PWSS_SCHED_POINT("node_pool.refill_private");
    {
      std::lock_guard<SpinLock> lk(s.lock);
      if (s.head != nullptr) {
        std::size_t moved = 0;
        while (s.head != nullptr && moved < chunk_nodes_) {
          FreeLink* p = s.head;
          s.head = p->next;
          --s.count;
          p->next = s.priv_head;
          s.priv_head = p;
          ++moved;
        }
        // relaxed: single-writer counter (this owner; see Shard).
        s.priv_count.store(
            s.priv_count.load(std::memory_order_relaxed) + moved,
            std::memory_order_relaxed);
        return;
      }
    }
    FreeChain chain = acquire_chunk();
    chain.tail_->next = s.priv_head;
    s.priv_head = chain.head_;
    // relaxed: single-writer counter (this owner; see Shard).
    s.priv_count.store(
        s.priv_count.load(std::memory_order_relaxed) + chain.count_,
        std::memory_order_relaxed);
  }

  /// Moves a chunk's worth of nodes from the calling owner's private list
  /// to the overflow spine (the private-path analogue of maybe_spill).
  /// Caller must own `s`.
  void spill_private(Shard& s) noexcept {
    // Shard over its cap: a chunk's worth of private nodes is about to
    // move to the spine (private accounting shrinks before the splice).
    PWSS_SCHED_POINT("node_pool.spill_private");
    FreeChain spill;
    // relaxed (both): single-writer counter (this owner; see Shard).
    std::size_t n = s.priv_count.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < chunk_nodes_ && s.priv_head != nullptr; ++i) {
      FreeLink* p = s.priv_head;
      s.priv_head = p->next;
      --n;
      spill.push(static_cast<void*>(p));
    }
    s.priv_count.store(n, std::memory_order_relaxed);
    flush_spill(spill);
  }

  sched::Scheduler* scheduler_;
  std::size_t chunk_nodes_;
  std::vector<Shard> shards_;  // [0] = external threads, [1+i] = worker i

  mutable SpinLock global_mu_;      // guards overflow_ and chunks_
  FreeChain overflow_;              // the rebalancing spine
  ChunkHeader* chunks_ = nullptr;   // intrusive list of heap chunks

  std::atomic<std::uint64_t> allocs_{0};
  std::atomic<std::uint64_t> frees_{0};
  std::atomic<std::uint64_t> chunk_count_{0};
};

}  // namespace pwss::util
