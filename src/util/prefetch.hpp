#pragma once
// Software-prefetch shim for the batch-sweep hot paths. The working-set
// sweeps walk segments in a statically known order (S[k] then S[k+1]), so
// the next segment's header/root line can be requested while the current
// one is being processed — the only prefetch the access pattern makes
// profitable, since tree descent paths are data-dependent.
//
// No-ops on compilers without __builtin_prefetch; never changes semantics.

namespace pwss::util {

/// Read prefetch into all cache levels (temporal locality hint 3).
inline void prefetch_read(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

/// Write prefetch (for lines about to be mutated, e.g. in-place compaction).
inline void prefetch_write(const void* p) noexcept {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/1, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace pwss::util
