#include "util/workload.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "util/zipf.hpp"

namespace pwss::util {
namespace {

// Invertible mixer to scatter zipf ranks across the key space.
std::uint64_t mix_key(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

std::vector<std::uint64_t> uniform_keys(std::uint64_t universe,
                                        std::size_t count,
                                        std::uint64_t seed) {
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> out(count);
  for (auto& k : out) k = rng.bounded(universe);
  return out;
}

std::vector<std::uint64_t> zipf_keys(std::uint64_t universe, double theta,
                                     std::size_t count, std::uint64_t seed) {
  Xoshiro256 rng(seed);
  ZipfGenerator zipf(universe, theta);
  std::vector<std::uint64_t> out(count);
  for (auto& k : out) k = mix_key(zipf(rng)) % universe;
  return out;
}

std::vector<std::uint64_t> working_set_keys(std::uint64_t universe,
                                            std::size_t window,
                                            double miss_rate,
                                            std::size_t count,
                                            std::uint64_t seed) {
  if (window == 0) throw std::invalid_argument("window must be positive");
  Xoshiro256 rng(seed);
  // Ring buffer of the `window` most recently used keys.
  std::vector<std::uint64_t> recent;
  recent.reserve(window);
  std::size_t head = 0;
  std::vector<std::uint64_t> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t key;
    if (recent.size() < window || rng.uniform01() < miss_rate) {
      key = rng.bounded(universe);
      if (recent.size() < window) {
        recent.push_back(key);
      } else {
        recent[head] = key;
        head = (head + 1) % window;
      }
    } else {
      key = recent[rng.bounded(recent.size())];
    }
    out.push_back(key);
  }
  return out;
}

std::vector<KeyOp> duplicate_heavy_batch(std::uint64_t universe,
                                         std::size_t size,
                                         double dup_fraction,
                                         std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const std::size_t dups =
      static_cast<std::size_t>(std::ceil(dup_fraction * static_cast<double>(size)));
  const std::uint64_t hot = rng.bounded(universe);
  std::vector<KeyOp> out;
  out.reserve(size);
  for (std::size_t i = 0; i < size; ++i) {
    const std::uint64_t key = i < dups ? hot : rng.bounded(universe);
    out.push_back({OpKind::kSearch, key, 0});
  }
  return out;
}

std::vector<KeyOp> apply_mix(const std::vector<std::uint64_t>& keys,
                             const OpMix& mix, std::uint64_t seed) {
  const double total = mix.search + mix.insert + mix.erase + mix.pred +
                       mix.succ + mix.range;
  // Negated form so a NaN fraction (which compares false everywhere)
  // throws instead of silently degrading the mix to all-searches.
  if (!(std::abs(total - 1.0) <= 1e-9)) {
    throw std::invalid_argument("OpMix fractions must sum to 1");
  }
  Xoshiro256 rng(seed);
  std::vector<KeyOp> out;
  out.reserve(keys.size());
  for (const auto key : keys) {
    const double u = rng.uniform01();
    OpKind kind = OpKind::kSearch;
    double cum = mix.search;
    if (u >= cum) {
      cum += mix.insert;
      if (u < cum) {
        kind = OpKind::kInsert;
      } else {
        cum += mix.erase;
        if (u < cum) {
          kind = OpKind::kErase;
        } else {
          cum += mix.pred;
          if (u < cum) {
            kind = OpKind::kPredecessor;
          } else {
            kind = u < cum + mix.succ ? OpKind::kSuccessor : OpKind::kRangeCount;
          }
        }
      }
    }
    KeyOp op{kind, key, key * 2 + 1, 0};
    if (kind == OpKind::kRangeCount) op.key2 = key + mix.range_span;
    out.push_back(op);
  }
  return out;
}

double empirical_entropy_bits(const std::vector<std::uint64_t>& keys) {
  if (keys.empty()) return 0.0;
  std::unordered_map<std::uint64_t, std::size_t> freq;
  freq.reserve(keys.size());
  for (const auto k : keys) ++freq[k];
  const double n = static_cast<double>(keys.size());
  double h = 0.0;
  for (const auto& [k, c] : freq) {
    (void)k;
    const double q = static_cast<double>(c) / n;
    h -= q * std::log2(q);
  }
  return h;
}

double working_set_bound(const std::vector<std::uint64_t>& keys) {
  // Access rank of access i on key k = number of distinct keys accessed
  // since the previous access to k (inclusive of k). Computed with a
  // Fenwick tree over access positions: mark the latest position of each
  // key; the rank is the count of marked positions after k's previous one.
  const std::size_t n = keys.size();
  std::vector<std::size_t> fenwick(n + 1, 0);
  auto update = [&](std::size_t pos, int delta) {
    for (std::size_t i = pos + 1; i <= n; i += i & (~i + 1)) {
      fenwick[i] = static_cast<std::size_t>(static_cast<long long>(fenwick[i]) + delta);
    }
  };
  auto prefix = [&](std::size_t pos) {  // sum of marks in [0, pos)
    std::size_t s = 0;
    for (std::size_t i = pos; i > 0; i -= i & (~i + 1)) s += fenwick[i];
    return s;
  };

  std::unordered_map<std::uint64_t, std::size_t> last;  // key -> last position
  last.reserve(n);
  double bound = 0.0;
  std::size_t distinct = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto it = last.find(keys[i]);
    double rank;
    if (it == last.end()) {
      // First access: Definition 1 charges an insertion at rank n+1 where n
      // is the current map size (= number of distinct keys so far).
      rank = static_cast<double>(distinct + 1);
      ++distinct;
    } else {
      const std::size_t prev = it->second;
      rank = static_cast<double>(prefix(n) - prefix(prev));  // marks after prev
      update(prev, -1);
    }
    update(i, +1);
    last[keys[i]] = i;
    bound += std::log2(std::max(rank, 1.0)) + 1.0;
  }
  return bound;
}

}  // namespace pwss::util
