#pragma once
// Small, fast, deterministic PRNG utilities used by workload generators,
// randomized tests and the random-pivot variant of PESort.
//
// We avoid <random>'s engines in hot paths: SplitMix64 for seeding and
// xoshiro256** for bulk generation (both public-domain algorithms).

#include <cstdint>
#include <limits>

namespace pwss::util {

/// SplitMix64: used to expand a single 64-bit seed into a stream of
/// well-distributed values (also the recommended seeder for xoshiro).
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator. Satisfies the C++
/// UniformRandomBitGenerator concept so it can drive std distributions.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    if (bound <= 1) return 0;
    const std::uint64_t x = (*this)();
    // 128-bit multiply-shift keeps the distribution uniform enough for
    // benchmarking purposes (bias < 2^-64).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace pwss::util
