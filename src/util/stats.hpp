#pragma once
// Summary statistics used to report benchmark results (means, percentiles,
// least-squares fits for the "time ~ a + b*log r" shape checks).

#include <cstddef>
#include <vector>

namespace pwss::util {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a full summary; sorts a copy of the input.
Summary summarize(std::vector<double> samples);

/// Least-squares fit y = a + b*x; returns {a, b, r2}.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r2 = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace pwss::util
