#pragma once
// Write-ahead log (DESIGN.md "Durability & recovery"). Every mutation
// the driver admits is logged BEFORE it executes; an op is acked to the
// caller only after its record is on disk (sync mode) or handed to the
// kernel (async mode). File layout:
//
//   header   "PWSSWAL1" | u32 version | u32 header_crc | u64 start_seq
//   records  u32 payload_len | u32 payload_crc | payload
//            (payload = u64 seq | u8 op kind | K key | V value)
//
// Appends are two-phase to support group commit: log() assigns the next
// sequence number and buffers the record under the mutex; sync(seq)
// makes everything up to seq durable with ONE write+fsync for however
// many records accumulated — concurrent committers elect a leader, the
// rest park on a condvar until the leader's fsync covers their seq.
// This is the batch-cut-boundary group commit: a driver bulk run logs
// its whole mutation slice with one sync() call.
//
// A crash mid-append leaves a torn tail: a record whose frame or payload
// is short or whose CRC does not match. WalReader::scan() stops at the
// first such record and reports the byte offset of the last good one;
// recovery truncates there and the log keeps working — a torn tail is
// the EXPECTED crash artifact, never a reason to refuse startup.
//
// Failure stickiness: any IO error or injected fault (wal.append /
// wal.fsync sites) marks the log failed(); every later log()/sync()
// call fails fast. The driver maps that to sticky read-only mode —
// mutations shed kReadOnly, reads keep serving.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "core/ops.hpp"
#include "store/format.hpp"
#include "util/fault.hpp"

namespace pwss::store {

inline constexpr char kWalMagic[8] = {'P', 'W', 'S', 'S', 'W', 'A', 'L', '1'};
inline constexpr std::uint32_t kWalVersion = 1;

struct WalHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t header_crc;  // CRC of the header with this field zeroed
  std::uint64_t start_seq;   // first record in this file has seq > this
};
static_assert(std::is_trivially_copyable_v<WalHeader>);

namespace detail {
inline std::uint32_t wal_header_crc(WalHeader h) {
  h.header_crc = 0;
  return crc32(&h, sizeof(h));
}
}  // namespace detail

/// One logical WAL record, as scanned back by WalReader.
template <typename K, typename V>
struct WalRecord {
  std::uint64_t seq;
  core::OpType kind;  // kInsert / kUpsert / kErase
  K key;
  V value;  // V{} for erases
};

template <typename K, typename V>
class Wal {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>);

 public:
  static constexpr std::size_t kPayloadBytes = 8 + 1 + sizeof(K) + sizeof(V);
  static constexpr std::size_t kRecordBytes = 8 + kPayloadBytes;

  /// Flush threshold for async mode: buffered record bytes are handed to
  /// the kernel once this much accumulates (or on sync()/close).
  static constexpr std::size_t kAsyncFlushBytes = 64 * 1024;

  Wal() = default;

  /// Opens (or creates) the log at `path` for appending. `last_seq` is
  /// the highest sequence number already recovered from this file —
  /// appends continue after it. `valid_bytes` is the verified length
  /// from WalReader::scan(); anything beyond it (a torn tail) is
  /// truncated away here. For a fresh log pass last_seq = start_seq and
  /// valid_bytes = 0.
  void open(const std::string& path, std::uint64_t start_seq,
            std::uint64_t last_seq, std::uint64_t valid_bytes) {
    path_ = path;
    if (valid_bytes == 0) {
      fd_ = Fd(path, O_WRONLY | O_CREAT | O_TRUNC);
      WalHeader h{};
      std::memcpy(h.magic, kWalMagic, sizeof(h.magic));
      h.version = kWalVersion;
      h.start_seq = start_seq;
      h.header_crc = detail::wal_header_crc(h);
      fd_.write_all(&h, sizeof(h));
      fd_.fsync_all();
      fsync_dir_of(path);
    } else {
      fd_ = Fd(path, O_WRONLY);
      if (fd_.size() > valid_bytes) {
        fd_.truncate(valid_bytes);  // drop the torn tail for good
        fd_.fsync_all();
      }
      if (::lseek(fd_.get(), static_cast<off_t>(valid_bytes), SEEK_SET) < 0) {
        throw_errno("lseek " + path);
      }
    }
    last_seq_ = last_seq;
    synced_seq_ = last_seq;
    failed_ = false;
    buf_.clear();
    buf_first_seq_ = 0;
  }

  bool is_open() const noexcept { return fd_.valid(); }
  const std::string& path() const noexcept { return path_; }

  /// Sticky failure flag: true once any append/flush/fsync failed. The
  /// log never recovers in-process — the driver degrades to read-only.
  bool failed() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return failed_;
  }

  std::uint64_t last_seq() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return last_seq_;
  }
  std::uint64_t synced_seq() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return synced_seq_;
  }

  std::uint64_t appends() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return appends_;
  }
  std::uint64_t fsyncs() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return fsyncs_;
  }

  /// Phase one: assigns the next sequence number and buffers the record.
  /// Throws StoreError on injected append failure or if the log already
  /// failed. Durable only after sync() covers the returned seq (or, in
  /// async mode, on a best-effort flush).
  std::uint64_t log(core::OpType kind, const K& key, const V& value) {
    std::unique_lock<std::mutex> lk(mu_);
    if (failed_) throw StoreError("wal failed earlier: " + path_);
    if (PWSS_FAULT_POINT("wal.append")) {
      fail_locked();
      throw StoreError("wal append failed (injected): " + path_);
    }
    const std::uint64_t seq = ++last_seq_;
    if (buf_.empty()) buf_first_seq_ = seq;
    encode_record(buf_, seq, kind, key, value);
    ++appends_;
    return seq;
  }

  /// Phase two: everything up to `seq` is on disk when this returns
  /// (group commit — one leader writes and fsyncs for every parked
  /// committer). Throws StoreError if durability could not be achieved.
  void sync(std::uint64_t seq) {
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
      if (synced_seq_ >= seq) return;
      if (failed_) throw StoreError("wal failed: " + path_);
      if (!leader_active_) break;
      follower_cv_.wait(lk);
    }
    // Leader: take the buffered records, write+fsync outside the lock.
    leader_active_ = true;
    std::vector<char> batch;
    batch.swap(buf_);
    const std::uint64_t batch_last = last_seq_;
    lk.unlock();

    bool ok = true;
    std::string error;
    try {
      write_batch(batch);
      PWSS_CRASH_POINT("wal.commit.after_write");
      if (PWSS_FAULT_POINT("wal.fsync")) {
        throw StoreError("wal fsync failed (injected): " + path_);
      }
      fd_.fsync_all();
      PWSS_CRASH_POINT("wal.commit.after_fsync");
    } catch (const StoreError& e) {
      ok = false;
      error = e.what();
    }

    lk.lock();
    leader_active_ = false;
    if (ok) {
      synced_seq_ = batch_last;
      ++fsyncs_;
    } else {
      fail_locked();
    }
    follower_cv_.notify_all();
    if (!ok) throw StoreError(error);
    if (synced_seq_ < seq) {
      // Records appended after our leadership window; rare — recurse
      // once (the next leader round covers them).
      lk.unlock();
      sync(seq);
    }
  }

  /// Best-effort flush of buffered records to the kernel without an
  /// fsync — the async-mode durability level. Errors mark the log
  /// failed and throw.
  void flush() {
    std::unique_lock<std::mutex> lk(mu_);
    if (buf_.empty()) return;
    if (failed_) throw StoreError("wal failed: " + path_);
    std::vector<char> batch;
    batch.swap(buf_);
    try {
      write_batch(batch);
    } catch (const StoreError&) {
      fail_locked();
      throw;
    }
  }

  /// True when async mode should flush now (buffered bytes crossed the
  /// threshold). Callers outside the lock use this to keep the common
  /// log() path cheap.
  bool wants_flush() const noexcept {
    std::lock_guard<std::mutex> lk(mu_);
    return buf_.size() >= kAsyncFlushBytes;
  }

  /// Log rotation after a checkpoint: atomically replaces the file with
  /// a fresh, empty log whose start_seq is the snapshot's seq. Requires
  /// the caller to have quiesced appends (the checkpoint holds the
  /// driver's writer gate).
  void rotate(std::uint64_t start_seq) {
    std::unique_lock<std::mutex> lk(mu_);
    if (failed_) throw StoreError("wal failed: " + path_);
    const std::string tmp = path_ + ".tmp";
    {
      Fd nf(tmp, O_WRONLY | O_CREAT | O_TRUNC);
      WalHeader h{};
      std::memcpy(h.magic, kWalMagic, sizeof(h.magic));
      h.version = kWalVersion;
      h.start_seq = start_seq;
      h.header_crc = detail::wal_header_crc(h);
      nf.write_all(&h, sizeof(h));
      nf.fsync_all();
      if (::rename(tmp.c_str(), path_.c_str()) != 0) {
        throw_errno("rename " + tmp + " -> " + path_);
      }
      fsync_dir_of(path_);
      fd_ = std::move(nf);  // appends continue into the fresh file
    }
    buf_.clear();
    last_seq_ = start_seq;
    synced_seq_ = start_seq;
  }

  void close() {
    std::unique_lock<std::mutex> lk(mu_);
    if (!fd_.valid()) return;
    if (!failed_ && !buf_.empty()) {
      std::vector<char> batch;
      batch.swap(buf_);
      try {
        write_batch(batch);
        fd_.fsync_all();
        synced_seq_ = last_seq_;
      } catch (const StoreError&) {
        fail_locked();
      }
    }
    fd_.reset();
  }

 private:
  static void encode_record(std::vector<char>& out, std::uint64_t seq,
                            core::OpType kind, const K& key, const V& value) {
    char payload[kPayloadBytes];
    std::memcpy(payload, &seq, 8);
    payload[8] = static_cast<char>(kind);
    std::memcpy(payload + 9, &key, sizeof(K));
    std::memcpy(payload + 9 + sizeof(K), &value, sizeof(V));
    const std::uint32_t len = kPayloadBytes;
    const std::uint32_t crc = crc32(payload, kPayloadBytes);
    const std::size_t off = out.size();
    out.resize(off + kRecordBytes);
    std::memcpy(out.data() + off, &len, 4);
    std::memcpy(out.data() + off + 4, &crc, 4);
    std::memcpy(out.data() + off + 8, payload, kPayloadBytes);
  }

  /// One kernel write of a record batch, with the crash points that
  /// model power loss before / halfway through the write. The partial
  /// crash point writes a torn tail deterministically: half the batch's
  /// bytes reach the file, then the process dies.
  void write_batch(const std::vector<char>& batch) {
    if (batch.empty()) return;
    PWSS_CRASH_POINT("wal.append.before");
    const Armed& a = crashpt::armed();
    if (!a.name.empty() && a.name == "wal.write.partial") {
      // Deterministic torn tail: on the armed hit, half the batch's
      // bytes reach the file and the process dies mid-write. Non-dying
      // hits must not touch the file (a surviving half-write would
      // corrupt the log the real fault never could).
      const std::uint64_t n =
          crashpt::counter().fetch_add(1, std::memory_order_relaxed) + 1;
      if (n == a.nth) {
        const std::size_t half = batch.size() / 2;
        fd_.write_all(batch.data(), half == 0 ? 1 : half);
        ::_exit(crashpt::kCrashExitCode);
      }
    }
    fd_.write_all(batch.data(), batch.size());
  }

  void fail_locked() noexcept { failed_ = true; }

  using Armed = crashpt::Armed;

  mutable std::mutex mu_;
  std::condition_variable follower_cv_;
  Fd fd_;
  std::string path_;
  std::vector<char> buf_;            // encoded-but-unwritten records
  std::uint64_t buf_first_seq_ = 0;  // seq of buf_'s first record
  std::uint64_t last_seq_ = 0;       // highest assigned seq
  std::uint64_t synced_seq_ = 0;     // highest fsync-covered seq
  bool leader_active_ = false;
  bool failed_ = false;
  std::uint64_t appends_ = 0;
  std::uint64_t fsyncs_ = 0;
};

/// Scans a WAL file, verifying every record; stops (without error) at
/// the first torn/corrupt record. Used by recovery and by the torn-tail
/// property tests.
template <typename K, typename V>
class WalReader {
 public:
  struct Scanned {
    std::uint64_t start_seq = 0;
    std::vector<WalRecord<K, V>> records;  // ascending, verified
    std::uint64_t valid_bytes = 0;  // file prefix covered by good records
    bool torn_tail = false;         // trailing garbage was present
    bool missing_or_empty = false;  // no file / torn header: fresh log
  };

  static Scanned scan(const std::string& path) {
    Scanned out;
    if (!file_exists(path)) {
      out.missing_or_empty = true;
      return out;
    }
    Fd fd(path, O_RDONLY);
    WalHeader h{};
    if (fd.read_some(&h, sizeof(h)) != sizeof(h)) {
      // Crash during creation before the header landed: treat the file
      // as absent — recovery recreates it.
      out.missing_or_empty = true;
      out.torn_tail = fd.size() != 0;
      return out;
    }
    if (std::memcmp(h.magic, kWalMagic, sizeof(h.magic)) != 0) {
      throw StoreError("wal bad magic: " + path);
    }
    if (h.version != kWalVersion) {
      throw StoreError("wal unsupported version " + std::to_string(h.version) +
                       ": " + path);
    }
    if (h.header_crc != detail::wal_header_crc(h)) {
      throw StoreError("wal header checksum mismatch: " + path);
    }
    out.start_seq = h.start_seq;
    out.valid_bytes = sizeof(h);

    constexpr std::size_t kPayloadBytes = Wal<K, V>::kPayloadBytes;
    std::uint64_t prev_seq = h.start_seq;
    const std::uint64_t file_size = fd.size();
    char payload[kPayloadBytes];
    for (;;) {
      std::uint32_t len = 0;
      std::uint32_t crc = 0;
      if (fd.read_some(&len, 4) != 4 || fd.read_some(&crc, 4) != 4) break;
      if (len != kPayloadBytes) break;  // torn or foreign frame
      if (fd.read_some(payload, kPayloadBytes) != kPayloadBytes) break;
      if (crc32(payload, kPayloadBytes) != crc) break;
      WalRecord<K, V> rec;
      std::memcpy(&rec.seq, payload, 8);
      const auto kind = static_cast<core::OpType>(payload[8]);
      if (!core::is_mutation(kind)) break;   // corrupt kind byte
      if (rec.seq != prev_seq + 1) break;    // seq gap: corrupt record
      rec.kind = kind;
      std::memcpy(&rec.key, payload + 9, sizeof(K));
      std::memcpy(&rec.value, payload + 9 + sizeof(K), sizeof(V));
      out.records.push_back(rec);
      out.valid_bytes += 8 + kPayloadBytes;
      prev_seq = rec.seq;
    }
    out.torn_tail = out.valid_bytes < file_size;
    return out;
  }
};

}  // namespace pwss::store
