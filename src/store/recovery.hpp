#pragma once
// Recovery (DESIGN.md "Durability & recovery"): turns a durability
// directory back into map contents. The contract is asymmetric by
// design:
//
//   * the SNAPSHOT is trusted ground truth — any header/CRC/order
//     violation throws StoreError with a precise description and the
//     driver refuses to serve (better no service than silently wrong
//     answers);
//   * the WAL TAIL is expected to be torn after a crash — scanning stops
//     at the first bad record and recovery truncates there. A torn tail
//     is never a startup error: every record before it was verified, and
//     an op whose record did not fully land was by definition never
//     acked under sync durability.
//
// Replay is idempotent by sequence number: only records with
// seq > snapshot.seq are applied (a crash between snapshot rename and
// WAL rotation leaves records the snapshot already covers), and the
// record kinds themselves (upsert/erase) are idempotent, so replaying a
// suffix twice converges to the same state. After replay the driver
// runs the deep validators; recovery is only done when validate() is
// clean — the self-stabilization framing: converge to a certified-legal
// state or refuse.

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/ops.hpp"
#include "store/format.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace pwss::store {

inline std::string snapshot_path(const std::string& dir) {
  return dir + "/snapshot";
}
inline std::string wal_path(const std::string& dir) { return dir + "/wal.log"; }

template <typename K, typename V>
struct RecoveredState {
  std::uint64_t snapshot_seq = 0;
  std::vector<std::pair<K, V>> entries;  ///< snapshot contents, sorted
  std::vector<WalRecord<K, V>> records;  ///< WAL suffix, seq > snapshot_seq
  std::uint64_t wal_last_seq = 0;   ///< appends continue after this seq
  std::uint64_t wal_valid_bytes = 0;  ///< verified prefix; 0 = recreate file
  bool torn_tail = false;           ///< trailing garbage was truncated away
};

/// Scans (and fully verifies) the durability directory. Creates the
/// directory when absent (first boot). Throws StoreError on snapshot
/// corruption or a snapshot/WAL sequence gap; torn WAL tails are
/// reported, not thrown.
template <typename K, typename V>
RecoveredState<K, V> recover_dir(const std::string& dir) {
  ensure_dir(dir);
  RecoveredState<K, V> out;
  const std::string snap = snapshot_path(dir);
  if (file_exists(snap)) {
    auto loaded = SnapshotReader<K, V>::load(snap);
    out.snapshot_seq = loaded.seq;
    out.entries = std::move(loaded.entries);
  }
  auto scanned = WalReader<K, V>::scan(wal_path(dir));
  if (scanned.missing_or_empty) {
    // No WAL (first boot) or a header-less torn stub (crash during
    // creation): start fresh from the snapshot's position.
    out.wal_last_seq = out.snapshot_seq;
    out.wal_valid_bytes = 0;
    out.torn_tail = scanned.torn_tail;
    return out;
  }
  if (scanned.start_seq > out.snapshot_seq) {
    // The log starts after the snapshot ends: ops between them are gone.
    // That only happens when the snapshot file was replaced by an older
    // one (or deleted) outside our control — corruption, refuse.
    throw StoreError(
        "recovery gap: wal " + wal_path(dir) + " starts at seq " +
        std::to_string(scanned.start_seq) + " but snapshot covers only seq " +
        std::to_string(out.snapshot_seq));
  }
  for (auto& r : scanned.records) {
    if (r.seq > out.snapshot_seq) out.records.push_back(r);
  }
  out.wal_last_seq = scanned.records.empty()
                         ? (out.snapshot_seq > scanned.start_seq
                                ? out.snapshot_seq
                                : scanned.start_seq)
                         : (scanned.records.back().seq > out.snapshot_seq
                                ? scanned.records.back().seq
                                : out.snapshot_seq);
  out.wal_valid_bytes = scanned.valid_bytes;
  out.torn_tail = scanned.torn_tail;
  return out;
}

/// Streams the recovered state through `apply` (a callable taking
/// const std::vector<core::Op<K, V>>&) in replay order: snapshot entries
/// first as sorted upsert batches (the bulk pooled from_sorted-style
/// rebuild), then the WAL suffix in sequence order. Returns the count of
/// WAL ops replayed.
template <typename K, typename V, typename ApplyBatch>
std::size_t replay_into(const RecoveredState<K, V>& rec, ApplyBatch&& apply,
                        std::size_t chunk = 4096) {
  std::vector<core::Op<K, V>> batch;
  batch.reserve(rec.entries.empty() && rec.records.empty()
                    ? 0
                    : (chunk < rec.entries.size() ? chunk
                                                  : rec.entries.size()));
  for (const auto& [k, v] : rec.entries) {
    batch.push_back(core::Op<K, V>::upsert(k, v));
    if (batch.size() >= chunk) {
      apply(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) {
    apply(batch);
    batch.clear();
  }
  for (const auto& r : rec.records) {
    batch.push_back(r.kind == core::OpType::kErase
                        ? core::Op<K, V>::erase(r.key)
                        : core::Op<K, V>::upsert(r.key, r.value));
    if (batch.size() >= chunk) {
      apply(batch);
      batch.clear();
    }
  }
  if (!batch.empty()) apply(batch);
  return rec.records.size();
}

}  // namespace pwss::store
