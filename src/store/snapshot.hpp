#pragma once
// Checkpoint files (DESIGN.md "Durability & recovery"). A snapshot is
// the sorted contents of one map instance at a known WAL sequence
// number, serialized as:
//
//   header   "PWSSSNP1" | u32 version | u32 header_crc | u64 seq
//            | u64 count | u32 sizeof(K) | u32 sizeof(V)
//   blocks   u32 payload_len | u32 payload_crc | payload
//            (payload = packed K,V entry pairs, ascending key order,
//             at most kEntriesPerBlock entries per block)
//
// The writer drains the map via the backend's sorted-export surface
// (export_entries — the multi_extract machinery underneath), streams
// blocks into <dir>/snapshot.tmp, fsyncs, renames over <dir>/snapshot,
// and fsyncs the directory: a crash anywhere in the sequence leaves
// either the complete old snapshot or the complete new one, never a
// half-file under the live name. The loader verifies the header and
// every block CRC and returns the sorted entries for a from_sorted-style
// bulk pooled rebuild; any mismatch throws StoreError — a snapshot is
// trusted ground truth for recovery, so corruption there refuses
// service rather than guessing (unlike the WAL tail, which is truncated).

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "store/format.hpp"
#include "util/fault.hpp"

namespace pwss::store {

inline constexpr char kSnapshotMagic[8] = {'P', 'W', 'S', 'S',
                                           'S', 'N', 'P', '1'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
inline constexpr std::size_t kEntriesPerBlock = 1024;

struct SnapshotHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t header_crc;  // CRC of the header with this field zeroed
  std::uint64_t seq;         // every op with seq <= this is reflected
  std::uint64_t count;       // entries across all blocks
  std::uint32_t key_size;
  std::uint32_t value_size;
};
static_assert(std::is_trivially_copyable_v<SnapshotHeader>);

namespace detail {
inline std::uint32_t header_crc(SnapshotHeader h) {
  h.header_crc = 0;
  return crc32(&h, sizeof(h));
}
}  // namespace detail

template <typename K, typename V>
class SnapshotWriter {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>);

 public:
  /// Writes `entries` (ascending key order) as the snapshot at `path`,
  /// atomically replacing any previous snapshot there. Throws StoreError
  /// on IO failure or injected fault — the caller (Durability) turns
  /// that into sticky read-only mode.
  static void write(const std::string& path, std::uint64_t seq,
                    const std::vector<std::pair<K, V>>& entries) {
    const std::string tmp = path + ".tmp";
    {
      Fd fd(tmp, O_WRONLY | O_CREAT | O_TRUNC);
      SnapshotHeader h{};
      std::memcpy(h.magic, kSnapshotMagic, sizeof(h.magic));
      h.version = kSnapshotVersion;
      h.seq = seq;
      h.count = entries.size();
      h.key_size = sizeof(K);
      h.value_size = sizeof(V);
      h.header_crc = detail::header_crc(h);
      if (PWSS_FAULT_POINT("snapshot.write")) {
        throw StoreError("snapshot write failed (injected): " + tmp);
      }
      fd.write_all(&h, sizeof(h));

      constexpr std::size_t kEntryBytes = sizeof(K) + sizeof(V);
      std::vector<char> payload;
      payload.reserve(kEntriesPerBlock * kEntryBytes);
      std::size_t i = 0;
      std::size_t block_index = 0;
      while (i < entries.size()) {
        payload.clear();
        const std::size_t end =
            std::min(entries.size(), i + kEntriesPerBlock);
        for (; i < end; ++i) {
          const std::size_t off = payload.size();
          payload.resize(off + kEntryBytes);
          std::memcpy(payload.data() + off, &entries[i].first, sizeof(K));
          std::memcpy(payload.data() + off + sizeof(K), &entries[i].second,
                      sizeof(V));
        }
        const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
        const std::uint32_t crc = crc32(payload.data(), payload.size());
        fd.write_all(&len, sizeof(len));
        fd.write_all(&crc, sizeof(crc));
        // The torn-snapshot crash point: die after the frame of the
        // second block but before its payload — the .tmp file is
        // mid-body, the live snapshot name untouched.
        if (block_index == 1) PWSS_CRASH_POINT("snapshot.write.partial");
        fd.write_all(payload.data(), payload.size());
        ++block_index;
      }
      fd.fsync_all();
    }
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      throw_errno("rename " + tmp + " -> " + path);
    }
    fsync_dir_of(path);
    PWSS_CRASH_POINT("snapshot.after_rename");
  }
};

template <typename K, typename V>
class SnapshotReader {
  static_assert(std::is_trivially_copyable_v<K> &&
                std::is_trivially_copyable_v<V>);

 public:
  struct Loaded {
    std::uint64_t seq = 0;
    std::vector<std::pair<K, V>> entries;  // ascending key order
  };

  /// Loads and fully verifies the snapshot at `path`. Throws StoreError
  /// with a precise description on any header/CRC/length mismatch.
  static Loaded load(const std::string& path) {
    Fd fd(path, O_RDONLY);
    SnapshotHeader h{};
    if (fd.read_some(&h, sizeof(h)) != sizeof(h)) {
      throw StoreError("snapshot truncated in header: " + path);
    }
    if (std::memcmp(h.magic, kSnapshotMagic, sizeof(h.magic)) != 0) {
      throw StoreError("snapshot bad magic: " + path);
    }
    if (h.version != kSnapshotVersion) {
      throw StoreError("snapshot unsupported version " +
                       std::to_string(h.version) + ": " + path);
    }
    if (h.header_crc != detail::header_crc(h)) {
      throw StoreError("snapshot header checksum mismatch: " + path);
    }
    if (h.key_size != sizeof(K) || h.value_size != sizeof(V)) {
      throw StoreError("snapshot key/value size mismatch (file " +
                       std::to_string(h.key_size) + "/" +
                       std::to_string(h.value_size) + ", expected " +
                       std::to_string(sizeof(K)) + "/" +
                       std::to_string(sizeof(V)) + "): " + path);
    }

    constexpr std::size_t kEntryBytes = sizeof(K) + sizeof(V);
    Loaded out;
    out.seq = h.seq;
    out.entries.reserve(h.count);
    std::vector<char> payload;
    while (out.entries.size() < h.count) {
      std::uint32_t len = 0;
      std::uint32_t crc = 0;
      if (fd.read_some(&len, sizeof(len)) != sizeof(len) ||
          fd.read_some(&crc, sizeof(crc)) != sizeof(crc)) {
        throw StoreError("snapshot truncated at block frame (" +
                         std::to_string(out.entries.size()) + "/" +
                         std::to_string(h.count) + " entries): " + path);
      }
      if (len % kEntryBytes != 0 ||
          len / kEntryBytes > kEntriesPerBlock) {
        throw StoreError("snapshot bad block length " + std::to_string(len) +
                         ": " + path);
      }
      payload.resize(len);
      if (fd.read_some(payload.data(), len) != len) {
        throw StoreError("snapshot truncated in block payload: " + path);
      }
      if (crc32(payload.data(), len) != crc) {
        throw StoreError("snapshot block checksum mismatch at entry " +
                         std::to_string(out.entries.size()) + ": " + path);
      }
      for (std::size_t off = 0; off < len; off += kEntryBytes) {
        K k;
        V v;
        std::memcpy(&k, payload.data() + off, sizeof(K));
        std::memcpy(&v, payload.data() + off + sizeof(K), sizeof(V));
        out.entries.emplace_back(k, v);
      }
    }
    for (std::size_t i = 1; i < out.entries.size(); ++i) {
      if (!(out.entries[i - 1].first < out.entries[i].first)) {
        throw StoreError("snapshot entries out of order at index " +
                         std::to_string(i) + ": " + path);
      }
    }
    return out;
  }
};

}  // namespace pwss::store
