#pragma once
// Durability — the driver-facing façade over snapshot + WAL + recovery
// (DESIGN.md "Durability & recovery"). One instance per driver (per
// shard for sharded drivers), owning the WAL handle, the mode, the
// sticky read-only flag, and the observability counters Driver::stats()
// reports.
//
// Lifecycle:
//   recover()  — scan the directory, verify, return the state to replay
//                (the driver bulk-loads it through its own batch path
//                with logging still disarmed);
//   arm()      — open the WAL for append; from here every mutation the
//                driver admits is logged before it executes;
//   log()+commit() — the two-phase append (see wal.hpp): commit() is a
//                group fsync under sync mode, a threshold flush under
//                async mode, free under off (never constructed);
//   checkpoint() — snapshot the exported contents and rotate the log
//                (caller holds the driver's writer gate, quiesced);
//   close()    — final flush.
//
// Failure policy: any StoreError on the persistence path flips the
// sticky read-only flag before propagating. The driver maps the
// exception to kReadOnly shedding; reads keep serving, the flag never
// clears in-process — the acked⇒durable contract would be silently
// broken by un-degrading onto a failed log.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/ops.hpp"
#include "store/format.hpp"
#include "store/recovery.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"

namespace pwss::store {

enum class DurabilityMode : std::uint8_t {
  kOff,    ///< no persistence (the default; zero hot-path cost)
  kAsync,  ///< WAL appended, flushed at thresholds, fsync only at close
  kSync,   ///< acked ⇒ fsynced: group commit before any mutation acks
};

inline const char* to_string(DurabilityMode m) {
  switch (m) {
    case DurabilityMode::kOff:
      return "off";
    case DurabilityMode::kAsync:
      return "async";
    case DurabilityMode::kSync:
      return "sync";
  }
  return "?";
}

inline std::optional<DurabilityMode> parse_durability(std::string_view s) {
  if (s == "off") return DurabilityMode::kOff;
  if (s == "async") return DurabilityMode::kAsync;
  if (s == "sync") return DurabilityMode::kSync;
  return std::nullopt;
}

/// The durability slice of Driver::stats().
struct DurabilityCounters {
  std::uint64_t wal_appends = 0;
  std::uint64_t wal_fsyncs = 0;
  std::uint64_t recovered_ops = 0;         ///< WAL records replayed
  std::uint64_t recovered_entries = 0;     ///< snapshot entries restored
  std::uint64_t torn_tail_truncations = 0;
  std::uint64_t checkpoints = 0;
  bool read_only = false;
};

template <typename K, typename V>
class Durability {
 public:
  Durability(std::string dir, DurabilityMode mode)
      : dir_(std::move(dir)), mode_(mode) {}
  ~Durability() { close(); }
  Durability(const Durability&) = delete;
  Durability& operator=(const Durability&) = delete;

  DurabilityMode mode() const noexcept { return mode_; }
  const std::string& dir() const noexcept { return dir_; }

  /// Step 1: scan + verify the directory. Throws StoreError on
  /// corruption (the driver refuses to serve). The returned state is
  /// the driver's to replay; logging is not live yet.
  RecoveredState<K, V> recover() {
    RecoveredState<K, V> rec = recover_dir<K, V>(dir_);
    if (rec.torn_tail) ++torn_truncations_;
    recovered_ops_ = rec.records.size();
    recovered_entries_ = rec.entries.size();
    wal_open_.start_seq = rec.snapshot_seq;
    wal_open_.last_seq = rec.wal_last_seq;
    wal_open_.valid_bytes = rec.wal_valid_bytes;
    return rec;
  }

  /// Step 2: open the WAL for append at the recovered position. From
  /// here log()/commit() are live.
  void arm() {
    wal_.open(wal_path(dir_), wal_open_.start_seq, wal_open_.last_seq,
              wal_open_.valid_bytes);
    armed_.store(true, std::memory_order_release);
  }

  bool armed() const noexcept {
    return armed_.load(std::memory_order_acquire);
  }

  /// Sticky: set on the first persistence failure, never cleared.
  bool read_only() const noexcept {
    return read_only_.load(std::memory_order_acquire);
  }
  void enter_read_only() noexcept {
    read_only_.store(true, std::memory_order_release);
  }

  /// Appends one mutation record; returns its sequence number. Flips
  /// read-only and rethrows on failure.
  std::uint64_t log(core::OpType kind, const K& key, const V& value) {
    try {
      return wal_.log(kind, key, value);
    } catch (const StoreError&) {
      enter_read_only();
      throw;
    }
  }

  /// Makes everything up to `seq` as durable as the mode promises:
  /// group fsync (sync), threshold flush (async). Flips read-only and
  /// rethrows on failure.
  void commit(std::uint64_t seq) {
    try {
      if (mode_ == DurabilityMode::kSync) {
        wal_.sync(seq);
      } else if (wal_.wants_flush()) {
        wal_.flush();
      }
    } catch (const StoreError&) {
      enter_read_only();
      throw;
    }
  }

  /// Snapshot + log rotation. The caller holds the driver's writer gate
  /// and has quiesced, so `entries` reflects every logged op and no new
  /// ops can log until this returns. Flips read-only and rethrows on
  /// failure (a half-written .tmp snapshot is harmless; a failed rotate
  /// leaves the old log intact — both recover cleanly).
  void checkpoint(const std::vector<std::pair<K, V>>& entries) {
    try {
      const std::uint64_t seq = wal_.last_seq();
      SnapshotWriter<K, V>::write(snapshot_path(dir_), seq, entries);
      wal_.rotate(seq);
      PWSS_CRASH_POINT("checkpoint.done");
      ++checkpoints_;
    } catch (const StoreError&) {
      enter_read_only();
      throw;
    }
  }

  void close() {
    if (armed_.exchange(false, std::memory_order_acq_rel)) wal_.close();
  }

  DurabilityCounters counters() const {
    DurabilityCounters c;
    c.wal_appends = wal_.appends();
    c.wal_fsyncs = wal_.fsyncs();
    c.recovered_ops = recovered_ops_;
    c.recovered_entries = recovered_entries_;
    c.torn_tail_truncations = torn_truncations_;
    c.checkpoints = checkpoints_;
    c.read_only = read_only();
    return c;
  }

 private:
  struct WalOpen {
    std::uint64_t start_seq = 0;
    std::uint64_t last_seq = 0;
    std::uint64_t valid_bytes = 0;
  };

  std::string dir_;
  DurabilityMode mode_;
  Wal<K, V> wal_;
  WalOpen wal_open_;
  std::atomic<bool> armed_{false};
  std::atomic<bool> read_only_{false};
  std::uint64_t recovered_ops_ = 0;
  std::uint64_t recovered_entries_ = 0;
  std::uint64_t torn_truncations_ = 0;
  std::uint64_t checkpoints_ = 0;
};

/// True when the store layer can serialize this key/value pair (both
/// file formats memcpy fixed-size records).
template <typename K, typename V>
inline constexpr bool kSerializable =
    std::is_trivially_copyable_v<K> && std::is_trivially_copyable_v<V>;

/// Stand-in for K/V the store layer cannot serialize: keeps Driver<K, V>
/// compiling for every instantiation (e.g. string keys) while
/// open_durability refuses such types at runtime. Never armed, so no
/// driver hot path ever reaches the throwing members.
class NoDurability {
 public:
  NoDurability(std::string, DurabilityMode) {}
  bool armed() const noexcept { return false; }
  bool read_only() const noexcept { return false; }
  void enter_read_only() noexcept {}
  template <typename K, typename V>
  std::uint64_t log(core::OpType, const K&, const V&) {
    throw StoreError("durability requires trivially copyable key/value");
  }
  void commit(std::uint64_t) {}
  template <typename Entries>
  void checkpoint(const Entries&) {
    throw StoreError("durability requires trivially copyable key/value");
  }
  void close() {}
  DurabilityCounters counters() const { return {}; }
};

/// The durability implementation Driver<K, V> embeds: the real one when
/// the formats support K/V, the refusing stub otherwise.
template <typename K, typename V>
using DurabilityFor =
    std::conditional_t<kSerializable<K, V>, Durability<K, V>, NoDurability>;

}  // namespace pwss::store
