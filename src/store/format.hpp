#pragma once
// On-disk format primitives shared by the snapshot and WAL writers
// (DESIGN.md "Durability & recovery"): CRC32, length-prefixed framing
// helpers, RAII POSIX file descriptors with explicit fsync, and the
// crash-point registry the fork-based crash harness uses to kill a child
// process at a seeded byte-exact moment mid-write.
//
// Both file formats are native-endian and restrict K/V to trivially
// copyable types (the only kinds the backends instantiate today); a
// durability file is a recovery artifact for the machine that wrote it,
// not an interchange format. Every payload is guarded by a CRC32 so a
// torn write — the normal result of a crash mid-append — is detected,
// never misparsed.

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <system_error>

namespace pwss::store {

// ---- CRC32 (IEEE 802.3 polynomial, table-driven) -----------------------------

namespace detail {
constexpr std::array<std::uint32_t, 256> make_crc32_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}
inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    make_crc32_table();
}  // namespace detail

/// CRC32 of a byte range; chainable via the `seed` parameter (pass a
/// previous call's return value to continue a running checksum).
inline std::uint32_t crc32(const void* data, std::size_t len,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// ---- crash points ------------------------------------------------------------
// The crash harness's sibling of PWSS_FAULT_POINT: where a fault point
// asks "should this site FAIL?", a crash point asks "should this process
// DIE right now?" — modelling a power cut, not an error return. Crash
// points are always compiled (they are two relaxed atomic ops when
// unarmed — cold persistence-path code only, never map hot paths) so the
// crash matrix runs against the production Release binary, not a special
// build. Armed either programmatically (crashpt::arm) or by the
// PWSS_CRASH_POINT=name:nth environment variable, the armed site calls
// _exit(kCrashExitCode) on its nth hit: no destructors, no buffer
// flushes — the closest a test can get to yanking the power cord.

namespace crashpt {

inline constexpr int kCrashExitCode = 42;

struct Armed {
  std::string name;           ///< site to kill at ("" = disarmed)
  std::uint64_t nth = 0;      ///< 1-based hit index that dies
};

inline Armed& armed() {
  static Armed a = [] {
    Armed init;
    if (const char* env = std::getenv("PWSS_CRASH_POINT")) {
      std::string_view spec(env);
      const std::size_t colon = spec.rfind(':');
      init.name = std::string(spec.substr(0, colon));
      init.nth = 1;
      if (colon != std::string_view::npos) {
        init.nth = std::strtoull(spec.data() + colon + 1, nullptr, 10);
        if (init.nth == 0) init.nth = 1;
      }
    }
    return init;
  }();
  return a;
}

/// Programmatic arming (the in-process property tests use this before
/// fork(); the harness children use the env var).
inline void arm(std::string name, std::uint64_t nth = 1) {
  armed() = Armed{std::move(name), nth == 0 ? 1 : nth};
}
inline void disarm() { armed() = Armed{}; }

/// Hit counter per named site — intentionally name-keyed and global so
/// the nth hit is the nth *process-wide* evaluation of that site.
inline std::atomic<std::uint64_t>& counter() {
  static std::atomic<std::uint64_t> c{0};
  return c;
}

inline void hit(std::string_view site) {
  const Armed& a = armed();
  if (a.name.empty() || a.name != site) return;
  const std::uint64_t n = counter().fetch_add(1, std::memory_order_relaxed) + 1;
  if (n == a.nth) ::_exit(kCrashExitCode);
}

}  // namespace crashpt

/// Marks a moment in a persistence path where a crash is interesting.
/// Sites (all in the store layer):
///
///   site                       dies...
///   -------------------------- ------------------------------------------
///   wal.append.before          before a record batch reaches the file
///   wal.write.partial          after HALF the record batch's bytes hit
///                              the file (deterministic torn tail)
///   wal.commit.after_write     after write(), before fsync()
///   wal.commit.after_fsync     after fsync() — acked ops are on disk
///   snapshot.write.partial     mid-snapshot-body (torn .tmp file)
///   snapshot.after_rename      snapshot durable, WAL not yet rotated
///   checkpoint.done            after the full checkpoint sequence
#define PWSS_CRASH_POINT(site) ::pwss::store::crashpt::hit(site)

// ---- RAII fd + IO helpers ----------------------------------------------------

/// Thrown by the store layer on any unrecoverable IO or format error.
/// The driver catches it at the persistence boundary and degrades to
/// read-only (never crashes the serving path); recovery lets it
/// propagate (corrupt snapshot = refuse to serve).
struct StoreError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] inline void throw_errno(const std::string& what) {
  throw StoreError(what + ": " + std::strerror(errno));
}

/// RAII POSIX file descriptor. All IO in the store layer goes through
/// plain write()/read()/fsync() — no stdio buffering between us and the
/// kernel, so "the write returned" and "the kernel has the bytes" are
/// the same event and the crash points sit at true durability edges.
class Fd {
 public:
  Fd() = default;
  Fd(const std::string& path, int flags, mode_t mode = 0644) {
    fd_ = ::open(path.c_str(), flags, mode);
    if (fd_ < 0) throw_errno("open " + path);
    path_ = path;
  }
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_), path_(std::move(o.path_)) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      path_ = std::move(o.path_);
      o.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  bool valid() const noexcept { return fd_ >= 0; }
  int get() const noexcept { return fd_; }
  const std::string& path() const noexcept { return path_; }

  void reset() noexcept {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  /// Full write or StoreError — short writes are retried (signals,
  /// pipes), a hard error throws with the target path.
  void write_all(const void* data, std::size_t len) {
    const auto* p = static_cast<const char*>(data);
    while (len > 0) {
      const ssize_t n = ::write(fd_, p, len);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("write " + path_);
      }
      p += n;
      len -= static_cast<std::size_t>(n);
    }
  }

  /// Reads up to `len` bytes; returns the byte count actually read
  /// (short at EOF). Hard errors throw.
  std::size_t read_some(void* data, std::size_t len) {
    auto* p = static_cast<char*>(data);
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::read(fd_, p + got, len - got);
      if (n < 0) {
        if (errno == EINTR) continue;
        throw_errno("read " + path_);
      }
      if (n == 0) break;  // EOF
      got += static_cast<std::size_t>(n);
    }
    return got;
  }

  void fsync_all() {
    if (::fsync(fd_) != 0) throw_errno("fsync " + path_);
  }

  std::uint64_t size() const {
    struct stat st{};
    if (::fstat(fd_, &st) != 0) throw_errno("fstat " + path_);
    return static_cast<std::uint64_t>(st.st_size);
  }

  void truncate(std::uint64_t len) {
    if (::ftruncate(fd_, static_cast<off_t>(len)) != 0) {
      throw_errno("ftruncate " + path_);
    }
  }

 private:
  int fd_ = -1;
  std::string path_;
};

/// mkdir -p for the durability directory tree (one or two levels deep —
/// sharded drivers use dir/shard-N). EEXIST is success.
inline void ensure_dir(const std::string& path) {
  std::string prefix;
  std::size_t i = 0;
  while (i < path.size()) {
    std::size_t j = path.find('/', i + 1);
    if (j == std::string::npos) j = path.size();
    prefix = path.substr(0, j);
    if (!prefix.empty() && prefix != "/" &&
        ::mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) {
      throw_errno("mkdir " + prefix);
    }
    i = j;
  }
}

/// fsyncs the directory holding `path` so a rename into it is durable.
inline void fsync_dir_of(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  Fd d(dir, O_RDONLY | O_DIRECTORY);
  d.fsync_all();
}

inline bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace pwss::store
