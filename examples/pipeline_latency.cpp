// Scenario: a latency-sensitive session store. Most requests touch a small
// set of active sessions; occasional background jobs scan cold state. This
// is exactly the access pattern where M2's pipelining earns its keep
// (Section 3: "a cheap operation could be blocked by the previous batch" in
// M1; M2's span per op is O((log p)^2 + log r)).
//
// We interleave hot session lookups with bursts of cold scans on both
// AsyncMap<M1> and M2, print the hot-path latency distribution side by
// side, and show the recency-dependent placement of keys.
//
// Build & run:  ./examples/pipeline_latency

#include <cstdio>
#include <thread>
#include <vector>

#include "core/async_map.hpp"
#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::size_t kSessions = 1u << 18;
constexpr std::size_t kHot = 32;
constexpr std::size_t kProbes = 10000;

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double us() const {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - t0)
        .count();
  }
};

template <typename SearchFn>
pwss::util::Summary probe(SearchFn&& do_search) {
  pwss::util::Xoshiro256 rng(3);
  std::vector<double> lat;
  lat.reserve(kProbes);
  for (std::size_t i = 0; i < kProbes; ++i) {
    // Every 16th op, fire a burst of cold lookups to stall the batcher.
    if (i % 16 == 0) {
      for (int c = 0; c < 8; ++c) do_search(rng.bounded(kSessions));
    }
    const std::uint64_t hot_key = rng.bounded(kHot);
    Timer t;
    do_search(hot_key);
    lat.push_back(t.us());
  }
  return pwss::util::summarize(std::move(lat));
}

}  // namespace

int main() {
  pwss::sched::Scheduler scheduler;

  std::printf("populating %zu sessions...\n", kSessions);

  pwss::core::AsyncMap<std::uint64_t, std::uint64_t,
                       pwss::core::M1Map<std::uint64_t, std::uint64_t>>
      m1(pwss::core::M1Map<std::uint64_t, std::uint64_t>(&scheduler),
         scheduler);
  pwss::core::M2Map<std::uint64_t, std::uint64_t> m2(scheduler);
  {
    using Op = pwss::core::Op<std::uint64_t, std::uint64_t>;
    std::vector<Op> warm;
    for (std::uint64_t i = 0; i < kSessions; ++i) {
      warm.push_back(Op::insert(i, i));
    }
    m2.execute_batch(warm);
    m2.quiesce();
    for (std::uint64_t i = 0; i < kSessions; ++i) m1.insert(i, i);
  }

  const auto s1 = probe([&](std::uint64_t k) { m1.search(k); });
  const auto s2 = probe([&](std::uint64_t k) { m2.search(k); });

  std::printf("\nhot-path lookup latency with cold bursts (us):\n");
  std::printf("%18s %8s %8s %8s %8s\n", "", "p50", "p95", "p99", "max");
  std::printf("%18s %8.1f %8.1f %8.1f %8.1f\n", "AsyncMap<M1>", s1.p50, s1.p95,
              s1.p99, s1.max);
  std::printf("%18s %8.1f %8.1f %8.1f %8.1f\n", "M2 (pipelined)", s2.p50,
              s2.p95, s2.p99, s2.max);

  m2.quiesce();
  std::printf("\nM2 placement after the run (hot keys forward):\n");
  for (const std::uint64_t k : {0ull, 5ull, 31ull, 77777ull}) {
    const auto seg = m2.segment_of(k);
    std::printf("  key %6llu -> %s\n", static_cast<unsigned long long>(k),
                seg ? ("S[" + std::to_string(*seg) + "]").c_str() : "absent");
  }
  return 0;
}
