// Scenario: a latency-sensitive session store. Most requests touch a small
// set of active sessions; occasional background jobs scan cold state. This
// is exactly the access pattern where M2's pipelining earns its keep
// (Section 3: "a cheap operation could be blocked by the previous batch" in
// M1; M2's span per op is O((log p)^2 + log r)).
//
// We interleave hot session lookups with bursts of cold scans on each
// selected backend (default: m1 vs m2), print the hot-path latency
// distribution side by side, then show the recency-dependent placement of
// keys through the uniform depth_of() API.
//
// Build & run:  ./pipeline_latency [--backend=NAME[,NAME...]]

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "driver/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::size_t kSessions = 1u << 18;
constexpr std::size_t kHot = 32;
constexpr std::size_t kProbes = 10000;

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

pwss::util::Summary probe(IntDriver& map) {
  pwss::util::Xoshiro256 rng(3);
  std::vector<double> lat;
  lat.reserve(kProbes);
  for (std::size_t i = 0; i < kProbes; ++i) {
    // Every 16th op, fire a burst of cold lookups to stall the batcher.
    if (i % 16 == 0) {
      for (int c = 0; c < 8; ++c) map.search(rng.bounded(kSessions));
    }
    const std::uint64_t hot_key = rng.bounded(kHot);
    pwss::bench::WallTimer t;
    map.search(hot_key);
    lat.push_back(t.ns() / 1e3);  // us
  }
  return pwss::util::summarize(std::move(lat));
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1", "m2"});

  std::printf("populating %zu sessions per backend...\n", kSessions);
  std::printf("\nhot-path lookup latency with cold bursts (us):\n");
  std::printf("%18s %8s %8s %8s %8s\n", "", "p50", "p95", "p99", "max");

  std::vector<std::unique_ptr<IntDriver>> drivers;
  for (const auto& name : cli.backends) {
    auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
        name, cli.driver);
    std::vector<IntOp> warm;
    warm.reserve(kSessions);
    for (std::uint64_t i = 0; i < kSessions; ++i) {
      warm.push_back(IntOp::insert(i, i));
    }
    map->run(warm);
    map->quiesce();

    const auto s = probe(*map);
    std::printf("%18s %8.1f %8.1f %8.1f %8.1f\n", name.c_str(), s.p50, s.p95,
                s.p99, s.max);
    drivers.push_back(std::move(map));
  }

  std::printf("\nplacement after the run (hot keys forward; depth n/a for "
              "non-adjusting backends):\n");
  for (std::size_t b = 0; b < drivers.size(); ++b) {
    std::printf("  %s:", cli.backends[b].c_str());
    for (const std::uint64_t k : {0ull, 5ull, 31ull, 77777ull}) {
      const auto depth = drivers[b]->depth_of(k);
      std::printf("  key %llu -> %s", static_cast<unsigned long long>(k),
                  depth ? ("S[" + std::to_string(*depth) + "]").c_str()
                        : "n/a");
    }
    std::printf("\n");
  }
  return 0;
}
