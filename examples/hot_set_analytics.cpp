// Scenario: sliding-window analytics. A telemetry pipeline counts events
// per entity; at any moment a few thousand entities are "live" out of
// millions ever seen. Batched ingestion through a working-set backend
// keeps the live set in the cheap front segments while the long tail sinks
// to the back — the total work tracks the working-set bound W_L, not
// |entities| * log(n).
//
// We ingest event batches with a drifting working set through each
// selected backend (default: m1 vs the non-adjusting avl) and compare
// measured cost against the W_L/op predicted cost.
//
// Build & run:  ./hot_set_analytics [--backend=NAME[,NAME...]]

#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "driver/cli.hpp"
#include "util/workload.hpp"

namespace {

using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;
using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;

constexpr std::uint64_t kUniverse = 1u << 22;  // entities ever seen
constexpr std::size_t kWindow = 4096;          // live entities
constexpr std::size_t kEvents = 1u << 20;
constexpr std::size_t kBatch = 8192;

// Read-modify-write as search + insert in the same batch (the group
// machinery combines them into one structure pass), then a bump batch
// writing count = old + 1.
double ingest_ns_per_event(IntDriver& counts,
                           const std::vector<std::uint64_t>& keys) {
  pwss::bench::WallTimer t;
  std::uint64_t touched = 0;
  std::vector<IntOp> batch;
  batch.reserve(kBatch);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    batch.push_back(IntOp::search(keys[i]));
    batch.push_back(IntOp::insert(keys[i], 0));
    if (batch.size() >= kBatch || i + 1 == keys.size()) {
      auto results = counts.run(batch);
      std::vector<IntOp> bump;
      bump.reserve(batch.size() / 2);
      for (std::size_t j = 0; j < results.size(); j += 2) {
        const std::uint64_t old = results[j].value ? *results[j].value : 0;
        bump.push_back(IntOp::insert(batch[j].key, old + 1));
        ++touched;
      }
      counts.run(bump);
      batch.clear();
    }
  }
  return t.ns() / static_cast<double>(touched);
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1", "avl"});

  std::printf("generating %zu events over a %zu-entity sliding window...\n",
              kEvents, kWindow);
  const auto keys =
      pwss::util::working_set_keys(kUniverse, kWindow, 0.02, kEvents, 17);
  const double wl = pwss::util::working_set_bound(keys);
  std::printf("working-set bound W_L = %.0f (%.2f bits/event)\n", wl,
              wl / static_cast<double>(kEvents));

  for (const auto& name : cli.backends) {
    auto counts = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
        name, cli.driver);
    const double ns = ingest_ns_per_event(*counts, keys);
    std::printf("%-8s batched ingest: %6.0f ns/event (%zu entities)\n",
                name.c_str(), ns, counts->size());
    // Spot check: the most recent entity's count is its occurrence count.
    const auto c0 = counts->search(keys[0]);
    const auto depth = counts->depth_of(keys[0]);
    const std::string depth_str =
        depth ? std::to_string(*depth) : std::string("n/a");
    std::printf("%-8s sample: entity %llu seen %llu times, depth %s\n",
                name.c_str(), static_cast<unsigned long long>(keys[0]),
                static_cast<unsigned long long>(c0.value_or(0)),
                depth_str.c_str());
  }
  return 0;
}
