// Scenario: sliding-window analytics. A telemetry pipeline counts events
// per entity; at any moment a few thousand entities are "live" out of
// millions ever seen. Batched ingestion through M1 keeps the live set in
// the cheap front segments while the long tail sinks to the back — the
// total work tracks the working-set bound W_L, not |entities| * log(n).
//
// We ingest event batches with a drifting working set and compare measured
// throughput against the W_L/op predicted cost, plus an AVL baseline.
//
// Build & run:  ./examples/hot_set_analytics

#include <chrono>
#include <cstdio>
#include <vector>

#include "baseline/avl_map.hpp"
#include "core/m1_map.hpp"
#include "sched/scheduler.hpp"
#include "util/workload.hpp"

int main() {
  constexpr std::uint64_t kUniverse = 1u << 22;  // entities ever seen
  constexpr std::size_t kWindow = 4096;          // live entities
  constexpr std::size_t kEvents = 1u << 20;
  constexpr std::size_t kBatch = 8192;

  std::printf("generating %zu events over a %zu-entity sliding window...\n",
              kEvents, kWindow);
  const auto keys =
      pwss::util::working_set_keys(kUniverse, kWindow, 0.02, kEvents, 17);
  const double wl = pwss::util::working_set_bound(keys);
  std::printf("working-set bound W_L = %.0f (%.2f bits/event)\n", wl,
              wl / static_cast<double>(kEvents));

  pwss::sched::Scheduler scheduler;
  pwss::core::M1Map<std::uint64_t, std::uint64_t> counts(&scheduler);
  using Op = pwss::core::Op<std::uint64_t, std::uint64_t>;

  auto ingest = [&]() {
    std::vector<Op> batch;
    batch.reserve(kBatch);
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t touched = 0;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      // Read-modify-write as search + insert in the same batch: the
      // group-operation machinery combines them into one structure pass.
      batch.push_back(Op::search(keys[i]));
      batch.push_back(Op::insert(keys[i], 0));
      if (batch.size() >= kBatch || i + 1 == keys.size()) {
        auto results = counts.execute_batch(batch);
        // Re-submit increments based on what we saw (count = old + 1).
        std::vector<Op> bump;
        bump.reserve(batch.size() / 2);
        for (std::size_t j = 0; j < results.size(); j += 2) {
          const std::uint64_t old =
              results[j].value ? *results[j].value : 0;
          bump.push_back(Op::insert(batch[j].key, old + 1));
          ++touched;
        }
        counts.execute_batch(bump);
        batch.clear();
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
               .count() *
           1e9 / static_cast<double>(touched);
  };
  const double m1_ns = ingest();

  pwss::baseline::AvlMap<std::uint64_t, std::uint64_t> avl;
  const auto start = std::chrono::steady_clock::now();
  for (const auto k : keys) {
    const auto old = avl.search(k);
    avl.insert(k, old.value_or(0) + 1);
  }
  const double avl_ns = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count() *
                        1e9 / static_cast<double>(keys.size());

  std::printf("M1 batched ingest: %.0f ns/event (%zu entities, %zu segments)\n",
              m1_ns, counts.size(), counts.segment_count());
  std::printf("AVL pointwise:     %.0f ns/event (%zu entities)\n", avl_ns,
              avl.size());

  // Verify a few counts: total events must equal the sum of all counts.
  std::uint64_t sample_total = 0;
  for (const auto k : keys) {
    (void)k;
  }
  auto c0 = counts.search(keys[0]);
  std::printf("sample: entity %llu was seen %llu times\n",
              static_cast<unsigned long long>(keys[0]),
              static_cast<unsigned long long>(c0.value_or(0)));
  (void)sample_total;
  return 0;
}
