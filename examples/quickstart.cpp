// Quickstart: the three ways to use the library.
//
//  1. M0Map    — sequential working-set map (Section 5): a drop-in
//                self-adjusting dictionary.
//  2. M1Map    — batched parallel map (Section 6): submit batches, get
//                per-op results; internally entropy-sorted, combined, and
//                swept through the segments in parallel.
//  3. M2Map    — pipelined parallel map (Section 7): thread-safe blocking
//                calls from any thread; batching, filtering and pipelining
//                happen behind the scenes.
//
// Build & run:  ./examples/quickstart

#include <cstdio>
#include <vector>

#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "sched/scheduler.hpp"

int main() {
  // ---- 1. Sequential working-set map -----------------------------------
  pwss::core::M0Map<std::string, int> phone_book;
  phone_book.insert("alice", 1111);
  phone_book.insert("bob", 2222);
  phone_book.insert("carol", 3333);
  if (auto v = phone_book.search("bob")) {
    std::printf("M0: bob -> %d (map size %zu)\n", *v, phone_book.size());
  }
  // Repeated accesses are cheap: "bob" now lives in the front segment.
  for (int i = 0; i < 3; ++i) phone_book.search("bob");
  std::printf("M0: bob sits in segment %zu after repeated access\n",
              *phone_book.segment_of("bob"));

  // ---- 2. Batched parallel map ------------------------------------------
  pwss::sched::Scheduler scheduler;  // work-stealing pool, hw threads
  pwss::core::M1Map<std::uint64_t, std::uint64_t> m1(&scheduler);

  using Op = pwss::core::Op<std::uint64_t, std::uint64_t>;
  std::vector<Op> batch;
  for (std::uint64_t i = 0; i < 10000; ++i) batch.push_back(Op::insert(i, i * i));
  batch.push_back(Op::search(64));
  batch.push_back(Op::erase(99));
  batch.push_back(Op::search(99));  // same batch: sees the erase

  const auto results = m1.execute_batch(batch);
  std::printf("M1: search(64) -> %llu; search(99) after erase found=%d\n",
              static_cast<unsigned long long>(*results[10000].value),
              static_cast<int>(results[10002].success));
  std::printf("M1: %zu items across %zu segments\n", m1.size(),
              m1.segment_count());

  // ---- 3. Pipelined concurrent map ---------------------------------------
  pwss::core::M2Map<std::uint64_t, std::uint64_t> m2(scheduler);
  m2.insert(7, 49);
  m2.insert(8, 64);
  if (auto v = m2.search(7)) {
    std::printf("M2: search(7) -> %llu (first slab width %zu, p=%u)\n",
                static_cast<unsigned long long>(*v), m2.first_slab_width(),
                m2.p());
  }
  m2.erase(8);
  m2.quiesce();
  std::printf("M2: size after erase = %zu\n", m2.size());
  return 0;
}
