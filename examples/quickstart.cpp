// Quickstart: using the library through the driver layer.
//
// Every map — the paper's M0/M1/M2 and the baselines — satisfies the same
// MapBackend concept and is reachable by name through the BackendRegistry.
// A Driver owns the scheduler, wires the right front end, and gives you:
//
//   * blocking search/insert/upsert/erase plus the ordered queries
//     (predecessor/successor/range_count), safe from any thread;
//   * an asynchronous submit() API — futures, completion callbacks, or
//     caller-owned tickets — so one thread overlaps many operations;
//   * a bulk run(batch) path with per-key program order preserved
//     (ordered kinds see exactly the point ops submitted before them);
//   * depth_of(): the working-set property made visible.
//
// Build & run:  ./quickstart [--backend=NAME]   (default: m2)

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/future.hpp"
#include "driver/cli.hpp"

int main(int argc, char** argv) {
  const auto cli =
      pwss::driver::parse<std::uint64_t, std::uint64_t>(argc, argv, {"m2"});
  const std::string& chosen = cli.backends.front();

  // ---- 1. The registry works for any key/value types -------------------
  // A string-keyed phone book on the sequential working-set map:
  auto phone_book = pwss::driver::make_driver<std::string, int>("m0");
  phone_book->insert("alice", 1111);
  phone_book->insert("bob", 2222);
  phone_book->insert("carol", 3333);
  if (auto v = phone_book->search("bob")) {
    std::printf("m0: bob -> %d (map size %zu)\n", *v, phone_book->size());
  }
  // Repeated accesses are cheap: "bob" migrates to the front segment.
  for (int i = 0; i < 3; ++i) phone_book->search("bob");
  std::printf("m0: bob sits at depth %zu after repeated access\n",
              *phone_book->depth_of("bob"));

  // ---- 2. Bulk batches through the backend chosen by --backend ----------
  auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
      chosen, cli.driver);
  using Op = pwss::core::Op<std::uint64_t, std::uint64_t>;
  std::vector<Op> batch;
  for (std::uint64_t i = 0; i < 10000; ++i) {
    batch.push_back(Op::insert(i, i * i));
  }
  batch.push_back(Op::search(64));
  batch.push_back(Op::erase(99));
  batch.push_back(Op::search(99));  // same batch: sees the erase

  const auto results = map->run(batch);
  std::printf("%s: search(64) -> %llu; search(99) after erase found=%d\n",
              chosen.c_str(),
              static_cast<unsigned long long>(*results[10000].value),
              static_cast<int>(results[10002].success()));
  std::printf("%s: %zu items\n", chosen.c_str(), map->size());

  // ---- 3. Ordered queries: the maps are ordered, and the API shows it ---
  if (map->supports_ordered()) {
    const auto pred = map->predecessor(64);   // greatest key < 64
    const auto succ = map->successor(64);     // least key > 64
    const auto in_range = map->range_count(0, 127);
    std::printf("%s: pred(64)=%llu succ(64)=%llu |[0,127]|=%llu\n",
                chosen.c_str(),
                static_cast<unsigned long long>(pred->first),
                static_cast<unsigned long long>(succ->first),
                static_cast<unsigned long long>(in_range));
  }

  // ---- 4. Asynchronous submission: overlap ops from ONE thread ----------
  // submit() never blocks; collect results through futures (or pass a
  // completion callback, or a caller-owned OpTicket for zero allocation).
  {
    std::vector<pwss::core::Future<std::uint64_t>> futures;
    for (std::uint64_t i = 0; i < 512; ++i) {
      futures.push_back(map->submit(Op::insert(200000 + i, i)));
    }
    futures.push_back(map->submit(Op::search(200000)));  // rides the same wave
    std::uint64_t fresh = 0;
    for (auto& f : futures) fresh += f.get().success() ? 1 : 0;
    std::printf("%s: 513 ops in flight from one thread, %llu succeeded\n",
                chosen.c_str(), static_cast<unsigned long long>(fresh));
  }

  // ---- 5. Blocking calls from many threads ------------------------------
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 1000; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(t) * 100000 + i;
        map->insert(key, key);
        map->search(key);
      }
    });
  }
  for (auto& th : clients) th.join();
  map->quiesce();
  std::printf("%s: size after 4 concurrent clients = %zu (invariants %s)\n",
              chosen.c_str(), map->size(), map->check() ? "ok" : "BROKEN");

  // ---- 6. Sharding: any backend name works with a sharded: prefix -------
  // --shards instances behind one shared scheduler; point ops route by key
  // hash, bulk batches scatter/gather per shard.
  auto sharded = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
      "sharded:m1", cli.driver);
  sharded->run(batch);  // the same bulk batch as section 2
  std::printf("sharded:m1: %zu items across shards (invariants %s)\n",
              sharded->size(), sharded->check() ? "ok" : "BROKEN");
  return 0;
}
