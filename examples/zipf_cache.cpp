// Scenario: a key-value lookup tier serving a Zipf-skewed request stream
// (the classic motivation for distribution-sensitive structures — Section 1:
// "make it cheaper to search for recently accessed items").
//
// Four threads hammer the selected backend (default: m2) with reads (95%)
// and writes (5%) drawn from Zipf(0.99) over one million keys. We report
// throughput, then show where the hottest keys ended up inside the
// structure — the working-set property made visible through depth_of().
//
// Build & run:  ./zipf_cache [--backend=NAME[,NAME...]]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_util.hpp"
#include "driver/cli.hpp"
#include "util/rng.hpp"
#include "util/zipf.hpp"

namespace {

constexpr std::uint64_t kUniverse = 1u << 20;
constexpr unsigned kClients = 4;
constexpr double kSeconds = 2.0;

using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

}  // namespace

int main(int argc, char** argv) {
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m2"});

  int rc = 0;
  for (const auto& name : cli.backends) {
    auto cache = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
        name, cli.driver);

    std::printf("[%s] populating %llu keys...\n", name.c_str(),
                static_cast<unsigned long long>(kUniverse));
    pwss::bench::prepopulate(*cache, kUniverse, 1,
                             [](std::uint64_t i) { return i * 31; });
    cache->quiesce();

    std::atomic<bool> stop{false};
    std::atomic<std::uint64_t> reads{0}, hits{0}, writes{0};
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t] {
        pwss::util::Xoshiro256 rng(t + 1);
        pwss::util::ZipfGenerator zipf(kUniverse, 0.99);
        std::uint64_t r = 0, h = 0, w = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const std::uint64_t key = zipf(rng);
          if (rng.bounded(20) == 0) {
            cache->insert(key, key * 31);
            ++w;
          } else {
            if (cache->search(key)) ++h;
            ++r;
          }
        }
        reads += r;
        hits += h;
        writes += w;
      });
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(kSeconds));
    stop = true;
    for (auto& th : clients) th.join();
    cache->quiesce();

    const double total =
        static_cast<double>(reads.load() + writes.load()) / kSeconds;
    std::printf(
        "[%s] throughput: %.2f Mops/s (%llu reads, %llu writes, %.1f%% "
        "hit)\n",
        name.c_str(), total / 1e6,
        static_cast<unsigned long long>(reads.load()),
        static_cast<unsigned long long>(writes.load()),
        100.0 * static_cast<double>(hits.load()) /
            static_cast<double>(std::max<std::uint64_t>(1, reads.load())));

    // The working-set property, visible: hot Zipf heads live near the
    // front (non-adjusting backends report n/a).
    std::printf("[%s] key rank -> depth:\n", name.c_str());
    for (const std::uint64_t key :
         {0ull, 1ull, 2ull, 100ull, 10000ull, 900000ull}) {
      const auto depth = cache->depth_of(key);
      if (depth) {
        std::printf("  key %8llu -> S[%zu]\n",
                    static_cast<unsigned long long>(key), *depth);
      } else {
        std::printf("  key %8llu -> %s\n",
                    static_cast<unsigned long long>(key),
                    cache->search(key) ? "n/a" : "(absent)");
      }
    }
    rc |= pwss::driver::finish(cli, *cache);
  }
  return rc;
}
