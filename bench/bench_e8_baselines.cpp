// E8 (Section 1 / Section 8 + the static-optimality corollary): the
// working-set structures win against non-adjusting comparators as access
// skew grows, and pay only modest constant factors under uniform access.
//
// Per-op panel: sequential search-only throughput on a pre-populated map,
// Zipf theta sweep, via the driver's step() path (default backends:
// m0/iacono/splay/avl/m1 — m1 pays its batch machinery per op here).
// Batched panel: the same workloads in 4096-op bulk run() batches — shows
// the batch machinery's overhead/benefit per backend.
//
//   ./bench_e8_baselines [--backend=NAME[,NAME...]] [--workers=N]

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "util/workload.hpp"

namespace {

constexpr std::size_t kN = 1u << 17;
constexpr std::size_t kOps = 400000;

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

std::uint64_t g_sink = 0;  // defeats dead-code elimination

std::vector<std::uint64_t> workload(double theta) {
  return pwss::util::zipf_keys(kN, theta, kOps, 33);
}

std::unique_ptr<IntDriver> populated(const std::string& name,
                                     const pwss::driver::Options& opts) {
  auto m = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
  pwss::bench::prepopulate(*m, kN);
  return m;
}

template <typename F>
double mops(F&& run) {
  pwss::bench::WallTimer t;
  run();
  return static_cast<double>(kOps) / t.seconds() / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m0", "iacono", "splay", "avl", "m1"});
  if (cli.driver.workers == 0) cli.driver.workers = 4;

  std::vector<std::string> cols = {"theta"};
  for (const auto& b : cli.backends) cols.push_back(b);
  cols.push_back("W_L/op bits");

  pwss::bench::print_header(
      "E8: per-op search throughput Mops/s vs skew (n=2^17, step path)",
      cols);
  for (const double theta : {0.0, 0.5, 0.9, 0.99, 1.2}) {
    const auto keys = workload(theta);
    const double wl_per_op =
        pwss::util::working_set_bound(keys) / static_cast<double>(keys.size());

    pwss::bench::print_cell(theta);
    for (const auto& name : cli.backends) {
      auto map = populated(name, cli.driver);
      pwss::bench::print_cell(mops([&] {
        std::uint64_t acc = 0;
        for (const auto k : keys) {
          acc += map->step(IntOp::search(k)).value.value_or(0);
        }
        g_sink += acc;
      }));
    }
    pwss::bench::print_cell(wl_per_op);
    pwss::bench::end_row();
  }

  pwss::bench::print_header(
      "E8b: batched panel, 4096-op bulk run() batches", cols);
  for (const double theta : {0.0, 0.99, 1.2}) {
    const auto keys = workload(theta);
    const double wl_per_op =
        pwss::util::working_set_bound(keys) / static_cast<double>(keys.size());
    pwss::bench::print_cell(theta);
    for (const auto& name : cli.backends) {
      auto map = populated(name, cli.driver);
      const double ms = pwss::bench::chunked_search_ms(*map, keys, 4096);
      pwss::bench::print_cell(static_cast<double>(kOps) / ms / 1e3);  // Mops/s
    }
    pwss::bench::print_cell(wl_per_op);
    pwss::bench::end_row();
  }

  std::printf(
      "\nShape: self-adjusting columns (m0/iacono/splay/m1) gain relative to "
      "avl as theta grows; W_L/op falls with skew, tracking the gains.\n"
      "(sink %llu)\n",
      static_cast<unsigned long long>(g_sink % 10));
  return 0;
}
