// E8 (Section 1 / Section 8 + the static-optimality corollary): the
// working-set structures win against non-adjusting comparators as access
// skew grows, and pay only modest constant factors under uniform access.
//
// Sequential panel: M0 vs Iacono vs splay vs AVL, single thread, search-only
// on a pre-populated map, Zipf theta sweep.
// Batched panel: M1 (4 workers) vs the same AVL driven in equal-size
// batches, same workloads — shows the batch machinery's overhead/benefit.

#include <cstdio>
#include <vector>

#include "baseline/avl_map.hpp"
#include "baseline/iacono_map.hpp"
#include "baseline/splay_tree.hpp"
#include "bench_util.hpp"
#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "sched/scheduler.hpp"
#include "util/workload.hpp"

namespace {

constexpr std::size_t kN = 1u << 17;
constexpr std::size_t kOps = 400000;

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

std::vector<std::uint64_t> workload(double theta) {
  return pwss::util::zipf_keys(kN, theta, kOps, 33);
}

template <typename F>
double mops(F&& run) {
  pwss::bench::WallTimer t;
  run();
  return static_cast<double>(kOps) / t.seconds() / 1e6;
}

}  // namespace

int main() {
  pwss::bench::print_header(
      "E8: search throughput Mops/s vs skew (n=2^17, sequential panel)",
      {"theta", "M0", "Iacono", "Splay", "AVL", "W_L/op bits"});

  for (const double theta : {0.0, 0.5, 0.9, 0.99, 1.2}) {
    const auto keys = workload(theta);
    const double wl_per_op =
        pwss::util::working_set_bound(keys) / static_cast<double>(keys.size());

    pwss::core::M0Map<std::uint64_t, std::uint64_t> m0;
    pwss::baseline::IaconoMap<std::uint64_t, std::uint64_t> iac;
    pwss::baseline::SplayTree<std::uint64_t, std::uint64_t> splay;
    pwss::baseline::AvlMap<std::uint64_t, std::uint64_t> avl;
    for (std::uint64_t i = 0; i < kN; ++i) {
      m0.insert(i, i);
      iac.insert(i, i);
      splay.insert(i, i);
      avl.insert(i, i);
    }

    pwss::bench::print_cell(theta);
    pwss::bench::print_cell(mops([&] {
      for (const auto k : keys) m0.search(k);
    }));
    pwss::bench::print_cell(mops([&] {
      for (const auto k : keys) iac.search(k);
    }));
    pwss::bench::print_cell(mops([&] {
      for (const auto k : keys) splay.search(k);
    }));
    pwss::bench::print_cell(mops([&] {
      std::uint64_t acc = 0;
      for (const auto k : keys) acc += avl.search(k).value_or(0);
      g_sink += acc;
    }));
    pwss::bench::print_cell(wl_per_op);
    pwss::bench::end_row();
  }

  pwss::bench::print_header(
      "E8b: batched panel, batch=4096 (M1 with 4 workers vs AVL loop)",
      {"theta", "M1 Mops/s", "AVL Mops/s"});
  for (const double theta : {0.0, 0.99, 1.2}) {
    const auto keys = workload(theta);
    using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

    pwss::sched::Scheduler scheduler(4);
    pwss::core::M1Map<std::uint64_t, std::uint64_t> m1(&scheduler);
    pwss::baseline::AvlMap<std::uint64_t, std::uint64_t> avl;
    {
      std::vector<IntOp> warm;
      for (std::uint64_t i = 0; i < kN; ++i) warm.push_back(IntOp::insert(i, i));
      m1.execute_batch(warm);
      for (std::uint64_t i = 0; i < kN; ++i) avl.insert(i, i);
    }

    const double m1_mops = mops([&] {
      std::vector<IntOp> batch;
      batch.reserve(4096);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        batch.push_back(IntOp::search(keys[i]));
        if (batch.size() == 4096 || i + 1 == keys.size()) {
          m1.execute_batch(batch);
          batch.clear();
        }
      }
    });
    const double avl_mops = mops([&] {
      std::uint64_t acc = 0;
      for (const auto k : keys) acc += avl.search(k).value_or(0);
      g_sink += acc;
    });
    pwss::bench::print_cell(theta);
    pwss::bench::print_cell(m1_mops);
    pwss::bench::print_cell(avl_mops);
    pwss::bench::end_row();
  }

  std::printf(
      "\nShape: self-adjusting columns (M0/Iacono/Splay/M1) gain relative to "
      "AVL as theta grows; W_L/op falls with skew, tracking the gains.\n");
  return 0;
}
