// Micro-benchmarks (google-benchmark) for the substrates: join-tree point
// and batch ops, segment batch ops, PESort, scheduler fork/join + spawn
// overhead, plus a per-backend batch-search micro resolved through the
// BackendRegistry. Regression guards rather than paper experiments.
//
//   ./bench_micro [--backend=NAME[,NAME...]] [--json=FILE] [gbench flags]

#include <benchmark/benchmark.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "core/segment.hpp"
#include "driver/cli.hpp"
#include "sched/scheduler.hpp"
#include "sort/pesort.hpp"
#include "store/recovery.hpp"
#include "store/snapshot.hpp"
#include "store/wal.hpp"
#include "tree/jtree.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace {

// The production configuration: trees draw nodes from an instance pool
// (warm insert/erase churn is heap-free). BM_JTreeInsertEraseUnpooled
// keeps the plain new/delete shape for contrast.
void BM_JTreeInsertErase(benchmark::State& state) {
  pwss::tree::JTree<std::uint64_t, std::uint64_t>::Pool pool;
  pwss::tree::JTree<std::uint64_t, std::uint64_t> t(&pool);
  pwss::util::Xoshiro256 rng(1);
  const std::uint64_t universe = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < universe / 2; ++i) t.insert(i * 2, i);
  for (auto _ : state) {
    const std::uint64_t k = rng.bounded(universe);
    t.insert(k, k);
    benchmark::DoNotOptimize(t.erase(k));
  }
}
BENCHMARK(BM_JTreeInsertErase)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_JTreeInsertEraseUnpooled(benchmark::State& state) {
  pwss::tree::JTree<std::uint64_t, std::uint64_t> t;
  pwss::util::Xoshiro256 rng(1);
  const std::uint64_t universe = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < universe / 2; ++i) t.insert(i * 2, i);
  for (auto _ : state) {
    const std::uint64_t k = rng.bounded(universe);
    t.insert(k, k);
    benchmark::DoNotOptimize(t.erase(k));
  }
}
BENCHMARK(BM_JTreeInsertEraseUnpooled)->Arg(1 << 10)->Arg(1 << 16);

// Front-segment representation A/B: the same Segment API probed at the
// sizes the front segments actually hold (|S[0]|=2, |S[1]|=4, |S[2]|=16,
// plus M2's 3x slack at 48), flat (production default) vs pinned-tree
// (debug_force_tree). The gap between the two series is the payoff of the
// flat layout; the JTree series also preserves continuity with the
// pre-flat benchmark history.
template <bool kForceTree>
void FrontSegmentProbe(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  pwss::core::Segment<std::uint64_t, std::uint64_t> seg;
  if constexpr (kForceTree) seg.debug_force_tree();
  for (std::uint64_t i = 0; i < n; ++i) seg.insert_front({i * 7, i, 0});
  pwss::util::Xoshiro256 rng(7);
  std::array<std::uint64_t, 64> probe;
  for (auto& p : probe) p = rng.bounded(n) * 7;  // all present
  // Unpredictable probe order (inline xorshift, identical cost in both
  // arms): a fixed cycle lets the branch predictor memorize the tree's
  // comparison outcomes, hiding the misprediction cost that separates
  // the two representations on real probe streams.
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    benchmark::DoNotOptimize(seg.peek(probe[x & 63]));
  }
}
void BM_FrontSegmentProbeFlat(benchmark::State& state) {
  FrontSegmentProbe<false>(state);
}
void BM_FrontSegmentProbeJTree(benchmark::State& state) {
  FrontSegmentProbe<true>(state);
}
BENCHMARK(BM_FrontSegmentProbeFlat)->Arg(2)->Arg(4)->Arg(16)->Arg(48);
BENCHMARK(BM_FrontSegmentProbeJTree)->Arg(2)->Arg(4)->Arg(16)->Arg(48);

// Same A/B for the self-adjusting hot path: extract + re-insert at the
// front (what every M0 search hit does to S[0]) — memmove churn vs tree
// node churn.
template <bool kForceTree>
void FrontSegmentChurn(benchmark::State& state) {
  const std::uint64_t n = static_cast<std::uint64_t>(state.range(0));
  pwss::core::Segment<std::uint64_t, std::uint64_t> seg;
  if constexpr (kForceTree) seg.debug_force_tree();
  for (std::uint64_t i = 0; i < n; ++i) seg.insert_front({i * 7, i, 0});
  pwss::util::Xoshiro256 rng(9);
  std::array<std::uint64_t, 64> probe;
  for (auto& p : probe) p = rng.bounded(n) * 7;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;  // see FrontSegmentProbe
  for (auto _ : state) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    auto item = seg.extract(probe[x & 63]);
    seg.insert_front(std::move(*item));
    benchmark::DoNotOptimize(seg.size());
  }
}
void BM_FrontSegmentChurnFlat(benchmark::State& state) {
  FrontSegmentChurn<false>(state);
}
void BM_FrontSegmentChurnJTree(benchmark::State& state) {
  FrontSegmentChurn<true>(state);
}
BENCHMARK(BM_FrontSegmentChurnFlat)->Arg(2)->Arg(4)->Arg(16)->Arg(48);
BENCHMARK(BM_FrontSegmentChurnJTree)->Arg(2)->Arg(4)->Arg(16)->Arg(48);

// Probe latency by resident depth: peek (read-only, no self-adjustment,
// so an item's depth is stable across iterations) of keys living at
// segment depth d of a populated M0. Depths 0-2 are flat segments, depth
// 3 is the first tree-backed segment — the series shows where the
// working-set latency gradient actually bends.
void BM_M0PeekAtDepth(benchmark::State& state) {
  const std::size_t depth = static_cast<std::size_t>(state.range(0));
  pwss::core::M0Map<std::uint64_t, std::uint64_t> map;
  constexpr std::uint64_t kUniverse = 1u << 12;
  for (std::uint64_t i = 0; i < kUniverse; ++i) map.insert(i, i);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < kUniverse && keys.size() < 64; ++i) {
    if (map.segment_of(i) == depth) keys.push_back(i);
  }
  if (keys.empty()) {
    state.SkipWithError("no keys resident at requested depth");
    return;
  }
  std::size_t j = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.peek(keys[j]));
    if (++j == keys.size()) j = 0;
  }
}
BENCHMARK(BM_M0PeekAtDepth)->Arg(0)->Arg(1)->Arg(2)->Arg(3);

// Renamed from BM_JTreeMultiInsert: besides the pool, the timed region
// changed (tree teardown now happens under PauseTiming), so the old
// series must not be compared against this one.
void BM_JTreeMultiInsertPooled(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  pwss::tree::JTree<std::uint64_t, std::uint64_t>::Pool pool;
  for (auto _ : state) {
    state.PauseTiming();
    {
      pwss::tree::JTree<std::uint64_t, std::uint64_t> t(&pool);
      for (std::uint64_t i = 0; i < (1u << 16); i += 2) t.insert(i, i);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> items;
      for (std::size_t i = 0; i < batch; ++i) {
        items.emplace_back(i * 4 + 1, i);
      }
      state.ResumeTiming();
      t.multi_insert(items);
      benchmark::DoNotOptimize(t.size());
      state.PauseTiming();
    }  // teardown (bulk chain recycle) outside the timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_JTreeMultiInsertPooled)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SegmentExtractByKeys(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    pwss::core::Segment<std::uint64_t, std::uint64_t> seg;
    for (std::uint64_t i = 0; i < (1u << 14); ++i) {
      seg.insert_front({i, i, 0});
    }
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < batch; ++i) {
      keys.push_back(static_cast<std::uint64_t>(i * 3));
    }
    state.ResumeTiming();
    auto out = seg.extract_by_keys(keys);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SegmentExtractByKeys)->Arg(64)->Arg(1024);

void BM_PESortSequential(benchmark::State& state) {
  const double theta = static_cast<double>(state.range(0)) / 100.0;
  const auto base =
      pwss::util::zipf_keys(1u << 14, theta, 1u << 16, 3);
  for (auto _ : state) {
    auto copy = base;
    pwss::sort::pesort(copy, [](std::uint64_t x) { return x; });
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_PESortSequential)->Arg(0)->Arg(99)->Arg(130);

void BM_SchedulerForkJoin(benchmark::State& state) {
  pwss::sched::Scheduler s(4);
  for (auto _ : state) {
    std::atomic<int> n{0};
    s.parallel_for(0, 1024, 16, [&](std::size_t lo, std::size_t hi) {
      n.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(n.load());
  }
}
BENCHMARK(BM_SchedulerForkJoin);

// Steady-state spawn/execute cycle: the path M2 activations and AsyncMap
// drive loops live on. With the SBO closure + pooled task nodes this is
// allocation-free once warm.
void BM_SchedulerSpawnChain(benchmark::State& state) {
  pwss::sched::Scheduler s(2);
  for (auto _ : state) {
    std::atomic<int> remaining{256};
    s.run_sync([&] {
      struct Chain {
        pwss::sched::Scheduler& s;
        std::atomic<int>& remaining;
        void operator()() const {
          if (remaining.fetch_sub(1) > 1) s.spawn(Chain{s, remaining});
        }
      };
      Chain{s, remaining}();
    });
    while (remaining.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
    benchmark::DoNotOptimize(remaining.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SchedulerSpawnChain);

// Per-backend micro: one 1024-op zipf search batch through the bulk path
// of a pre-populated registry backend.
void BM_BackendBatchSearch(benchmark::State& state, std::string name,
                           pwss::driver::Options opts) {
  using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;
  constexpr std::uint64_t kUniverse = 1u << 16;
  auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(name,
                                                                     opts);
  pwss::bench::prepopulate(*map, kUniverse);
  const auto keys = pwss::util::zipf_keys(kUniverse, 0.99, 1024, 5);
  std::vector<IntOp> batch;
  batch.reserve(keys.size());
  for (const auto k : keys) batch.push_back(IntOp::search(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->run(batch).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}

// Per-segment-depth hit accounting under a Zipf search stream, emitted as
// pwss-bench-v1 records (panel "probe_depth"). These are workload-shape
// counters, not latencies: compare_baseline.py reports them informationally
// and never gates on them. Runs only when --json is given.
void emit_probe_depth_panel() {
  auto& json = pwss::bench::BenchJson::instance();
  if (!json.enabled()) return;
  using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;
  constexpr std::uint64_t kUniverse = 1u << 14;
  constexpr std::size_t kBatch = 1024;
  constexpr std::size_t kBatches = 64;
  pwss::sched::Scheduler sched(4);
  pwss::core::M1Map<std::uint64_t, std::uint64_t> map(&sched);
  std::vector<IntOp> batch;
  std::vector<pwss::core::Result<std::uint64_t, std::uint64_t>> results;
  batch.reserve(kUniverse);
  for (std::uint64_t i = 0; i < kUniverse; ++i) {
    batch.push_back(IntOp::insert(i, i));
  }
  map.execute_batch(batch, results);
  map.reset_probe_depth_counts();
  const auto keys =
      pwss::util::zipf_keys(kUniverse, 0.99, kBatch * kBatches, 11);
  for (std::size_t b = 0; b < kBatches; ++b) {
    batch.clear();
    for (std::size_t i = 0; i < kBatch; ++i) {
      batch.push_back(IntOp::search(keys[b * kBatch + i]));
    }
    map.execute_batch(batch, results);
  }
  const auto& pc = map.probe_depth_counts();
  const double total = static_cast<double>(pc.total());
  const std::initializer_list<std::pair<const char*, double>> params = {
      {"theta_x100", 99}, {"batch", kBatch}, {"universe", kUniverse}};
  json.record("probe_depth", "m1/zipf", "hits_s0",
              static_cast<double>(pc.hits[0]), params);
  json.record("probe_depth", "m1/zipf", "hits_s1",
              static_cast<double>(pc.hits[1]), params);
  json.record("probe_depth", "m1/zipf", "hits_s2",
              static_cast<double>(pc.hits[2]), params);
  json.record("probe_depth", "m1/zipf", "hits_deep",
              static_cast<double>(pc.hits[3]), params);
  json.record("probe_depth", "m1/zipf", "misses",
              static_cast<double>(pc.misses), params);
  json.record("probe_depth", "m1/zipf", "share_front",
              total == 0.0 ? 0.0
                           : static_cast<double>(pc.hits[0] + pc.hits[1] +
                                                 pc.hits[2]) /
                                 total,
              params);
}

// Durability-substrate recovery panel (panel "recovery"): snapshot
// write/load bandwidth and WAL scan+replay rate over a scratch
// directory. Info-only pwss-bench-v1 series — single-shot wall-clock
// numbers, machine-dependent and fsync-bound, so compare_baseline.py
// reports them without gating. Runs only when --json is given.
void emit_recovery_panel() {
  auto& json = pwss::bench::BenchJson::instance();
  if (!json.enabled()) return;
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  char tmpl[] = "/tmp/pwss-micro-recovery-XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) return;
  const std::string dir = tmpl;

  constexpr std::size_t kEntries = 1u << 18;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  entries.reserve(kEntries);
  for (std::uint64_t i = 0; i < kEntries; ++i) entries.emplace_back(i * 2, i);
  const double payload_mb =
      static_cast<double>(kEntries * 2 * sizeof(std::uint64_t)) / 1e6;
  const std::initializer_list<std::pair<const char*, double>> snap_params = {
      {"entries", static_cast<double>(kEntries)}};

  auto t0 = Clock::now();
  pwss::store::SnapshotWriter<std::uint64_t, std::uint64_t>::write(
      pwss::store::snapshot_path(dir), kEntries, entries);
  json.record("recovery", "snapshot", "write_mb_per_sec",
              payload_mb / seconds_since(t0), snap_params);

  t0 = Clock::now();
  const auto loaded =
      pwss::store::SnapshotReader<std::uint64_t, std::uint64_t>::load(
          pwss::store::snapshot_path(dir));
  json.record("recovery", "snapshot", "load_mb_per_sec",
              payload_mb / seconds_since(t0), snap_params);

  // WAL suffix replay: append past the snapshot's seq, then time the
  // boot-path combination (scan + verify + rebuild into a map).
  constexpr std::size_t kWalOps = 1u << 16;
  {
    pwss::store::Wal<std::uint64_t, std::uint64_t> wal;
    wal.open(pwss::store::wal_path(dir), kEntries, kEntries, 0);
    for (std::size_t i = 0; i < kWalOps; ++i) {
      wal.log(pwss::core::OpType::kUpsert, i * 2 + 1, i);
    }
    wal.close();
  }
  t0 = Clock::now();
  const auto rec =
      pwss::store::recover_dir<std::uint64_t, std::uint64_t>(dir);
  pwss::core::M0Map<std::uint64_t, std::uint64_t> map;
  const std::size_t replayed = pwss::store::replay_into(
      rec,
      [&map](const std::vector<pwss::core::Op<std::uint64_t, std::uint64_t>>&
                 batch) {
        for (const auto& op : batch) {
          if (op.type == pwss::core::OpType::kErase) {
            map.erase(op.key);
          } else {
            map.insert(op.key, op.value);
          }
        }
      });
  json.record("recovery", "wal", "replay_ops_per_sec",
              static_cast<double>(loaded.entries.size() + replayed) /
                  seconds_since(t0),
              {{"entries", static_cast<double>(kEntries)},
               {"wal_ops", static_cast<double>(kWalOps)}});
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

// Console output as usual, plus one JSON Lines record per run when --json
// is given (items_per_second when the bench reports it, else ns/iteration).
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    auto& json = pwss::bench::BenchJson::instance();
    if (!json.enabled()) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        json.record("micro", run.benchmark_name(), "items_per_sec",
                    items->second);
      } else {
        json.record("micro", run.benchmark_name(), "ns_per_iter",
                    run.GetAdjustedRealTime());
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  argc = pwss::bench::consume_json_flag(argc, argv, "micro");
  // Split our registry flags from google-benchmark's.
  std::vector<char*> ours{argv[0]};
  std::vector<char*> gbench{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend", 9) == 0 ||
        std::strncmp(argv[i], "--workers", 9) == 0 ||
        std::strncmp(argv[i], "--p=", 4) == 0 ||
        std::strcmp(argv[i], "--list-backends") == 0) {
      ours.push_back(argv[i]);
    } else {
      gbench.push_back(argv[i]);
    }
  }
  int ours_argc = static_cast<int>(ours.size());
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      ours_argc, ours.data(), {"m0", "m1", "avl"});
  for (const auto& name : cli.backends) {
    benchmark::RegisterBenchmark(
        ("BM_BackendBatchSearch/" + name).c_str(),
        [name, opts = cli.driver](benchmark::State& st) {
          BM_BackendBatchSearch(st, name, opts);
        });
  }

  int gbench_argc = static_cast<int>(gbench.size());
  benchmark::Initialize(&gbench_argc, gbench.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc, gbench.data())) {
    return 1;
  }
  JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  emit_probe_depth_panel();
  emit_recovery_panel();
  benchmark::Shutdown();
  return 0;
}
