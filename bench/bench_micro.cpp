// Micro-benchmarks (google-benchmark) for the substrates: join-tree point
// and batch ops, segment batch ops, PESort, scheduler fork/join + spawn
// overhead, plus a per-backend batch-search micro resolved through the
// BackendRegistry. Regression guards rather than paper experiments.
//
//   ./bench_micro [--backend=NAME[,NAME...]] [--json=FILE] [gbench flags]

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/segment.hpp"
#include "driver/cli.hpp"
#include "sched/scheduler.hpp"
#include "sort/pesort.hpp"
#include "tree/jtree.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace {

// The production configuration: trees draw nodes from an instance pool
// (warm insert/erase churn is heap-free). BM_JTreeInsertEraseUnpooled
// keeps the plain new/delete shape for contrast.
void BM_JTreeInsertErase(benchmark::State& state) {
  pwss::tree::JTree<std::uint64_t, std::uint64_t>::Pool pool;
  pwss::tree::JTree<std::uint64_t, std::uint64_t> t(&pool);
  pwss::util::Xoshiro256 rng(1);
  const std::uint64_t universe = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < universe / 2; ++i) t.insert(i * 2, i);
  for (auto _ : state) {
    const std::uint64_t k = rng.bounded(universe);
    t.insert(k, k);
    benchmark::DoNotOptimize(t.erase(k));
  }
}
BENCHMARK(BM_JTreeInsertErase)->Arg(1 << 10)->Arg(1 << 16)->Arg(1 << 20);

void BM_JTreeInsertEraseUnpooled(benchmark::State& state) {
  pwss::tree::JTree<std::uint64_t, std::uint64_t> t;
  pwss::util::Xoshiro256 rng(1);
  const std::uint64_t universe = static_cast<std::uint64_t>(state.range(0));
  for (std::uint64_t i = 0; i < universe / 2; ++i) t.insert(i * 2, i);
  for (auto _ : state) {
    const std::uint64_t k = rng.bounded(universe);
    t.insert(k, k);
    benchmark::DoNotOptimize(t.erase(k));
  }
}
BENCHMARK(BM_JTreeInsertEraseUnpooled)->Arg(1 << 16);

// Renamed from BM_JTreeMultiInsert: besides the pool, the timed region
// changed (tree teardown now happens under PauseTiming), so the old
// series must not be compared against this one.
void BM_JTreeMultiInsertPooled(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  pwss::tree::JTree<std::uint64_t, std::uint64_t>::Pool pool;
  for (auto _ : state) {
    state.PauseTiming();
    {
      pwss::tree::JTree<std::uint64_t, std::uint64_t> t(&pool);
      for (std::uint64_t i = 0; i < (1u << 16); i += 2) t.insert(i, i);
      std::vector<std::pair<std::uint64_t, std::uint64_t>> items;
      for (std::size_t i = 0; i < batch; ++i) {
        items.emplace_back(i * 4 + 1, i);
      }
      state.ResumeTiming();
      t.multi_insert(items);
      benchmark::DoNotOptimize(t.size());
      state.PauseTiming();
    }  // teardown (bulk chain recycle) outside the timed region
    state.ResumeTiming();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_JTreeMultiInsertPooled)->Arg(64)->Arg(1024)->Arg(16384);

void BM_SegmentExtractByKeys(benchmark::State& state) {
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    pwss::core::Segment<std::uint64_t, std::uint64_t> seg;
    for (std::uint64_t i = 0; i < (1u << 14); ++i) {
      seg.insert_front({i, i, 0});
    }
    std::vector<std::uint64_t> keys;
    for (std::size_t i = 0; i < batch; ++i) {
      keys.push_back(static_cast<std::uint64_t>(i * 3));
    }
    state.ResumeTiming();
    auto out = seg.extract_by_keys(keys);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_SegmentExtractByKeys)->Arg(64)->Arg(1024);

void BM_PESortSequential(benchmark::State& state) {
  const double theta = static_cast<double>(state.range(0)) / 100.0;
  const auto base =
      pwss::util::zipf_keys(1u << 14, theta, 1u << 16, 3);
  for (auto _ : state) {
    auto copy = base;
    pwss::sort::pesort(copy, [](std::uint64_t x) { return x; });
    benchmark::DoNotOptimize(copy.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(base.size()));
}
BENCHMARK(BM_PESortSequential)->Arg(0)->Arg(99)->Arg(130);

void BM_SchedulerForkJoin(benchmark::State& state) {
  pwss::sched::Scheduler s(4);
  for (auto _ : state) {
    std::atomic<int> n{0};
    s.parallel_for(0, 1024, 16, [&](std::size_t lo, std::size_t hi) {
      n.fetch_add(static_cast<int>(hi - lo), std::memory_order_relaxed);
    });
    benchmark::DoNotOptimize(n.load());
  }
}
BENCHMARK(BM_SchedulerForkJoin);

// Steady-state spawn/execute cycle: the path M2 activations and AsyncMap
// drive loops live on. With the SBO closure + pooled task nodes this is
// allocation-free once warm.
void BM_SchedulerSpawnChain(benchmark::State& state) {
  pwss::sched::Scheduler s(2);
  for (auto _ : state) {
    std::atomic<int> remaining{256};
    s.run_sync([&] {
      struct Chain {
        pwss::sched::Scheduler& s;
        std::atomic<int>& remaining;
        void operator()() const {
          if (remaining.fetch_sub(1) > 1) s.spawn(Chain{s, remaining});
        }
      };
      Chain{s, remaining}();
    });
    while (remaining.load(std::memory_order_acquire) > 0) {
      std::this_thread::yield();
    }
    benchmark::DoNotOptimize(remaining.load());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 256);
}
BENCHMARK(BM_SchedulerSpawnChain);

// Per-backend micro: one 1024-op zipf search batch through the bulk path
// of a pre-populated registry backend.
void BM_BackendBatchSearch(benchmark::State& state, std::string name,
                           pwss::driver::Options opts) {
  using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;
  constexpr std::uint64_t kUniverse = 1u << 16;
  auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(name,
                                                                     opts);
  pwss::bench::prepopulate(*map, kUniverse);
  const auto keys = pwss::util::zipf_keys(kUniverse, 0.99, 1024, 5);
  std::vector<IntOp> batch;
  batch.reserve(keys.size());
  for (const auto k : keys) batch.push_back(IntOp::search(k));
  for (auto _ : state) {
    benchmark::DoNotOptimize(map->run(batch).size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch.size()));
}

// Console output as usual, plus one JSON Lines record per run when --json
// is given (items_per_second when the bench reports it, else ns/iteration).
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    auto& json = pwss::bench::BenchJson::instance();
    if (!json.enabled()) return;
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        json.record("micro", run.benchmark_name(), "items_per_sec",
                    items->second);
      } else {
        json.record("micro", run.benchmark_name(), "ns_per_iter",
                    run.GetAdjustedRealTime());
      }
    }
  }
};

}  // namespace

int main(int argc, char** argv) {
  argc = pwss::bench::consume_json_flag(argc, argv, "micro");
  // Split our registry flags from google-benchmark's.
  std::vector<char*> ours{argv[0]};
  std::vector<char*> gbench{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--backend", 9) == 0 ||
        std::strncmp(argv[i], "--workers", 9) == 0 ||
        std::strncmp(argv[i], "--p=", 4) == 0 ||
        std::strcmp(argv[i], "--list-backends") == 0) {
      ours.push_back(argv[i]);
    } else {
      gbench.push_back(argv[i]);
    }
  }
  int ours_argc = static_cast<int>(ours.size());
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      ours_argc, ours.data(), {"m0", "m1", "avl"});
  for (const auto& name : cli.backends) {
    benchmark::RegisterBenchmark(
        ("BM_BackendBatchSearch/" + name).c_str(),
        [name, opts = cli.driver](benchmark::State& st) {
          BM_BackendBatchSearch(st, name, opts);
        });
  }

  int gbench_argc = static_cast<int>(gbench.size());
  benchmark::Initialize(&gbench_argc, gbench.data());
  if (benchmark::ReportUnrecognizedArguments(gbench_argc, gbench.data())) {
    return 1;
  }
  JsonForwardingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
