// E7 (Theorem 26 / Figure 4): the parallel buffer adds O(p + b) work and
// O(log p + log b) span per batch — i.e. amortized O(1) per operation once
// batches exceed ~p, and flush latency grows only logarithmically.
//
// Method: p submitter threads push b total items; measure ns/submit and
// flush time across b. Shape: ns/submit roughly flat in b and p; flush
// cost per item flat (the O(p) term visible only at tiny b).
//
// Panel E7b measures the same ingest through a full backend stack
// (default: m2) — concurrent blocking inserts via the driver — so the raw
// buffer cost can be read against the end-to-end submission path it feeds.
//
//   ./bench_e7_buffer [--backend=NAME[,NAME...]] [--workers=N]

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "buffer/parallel_buffer.hpp"
#include "driver/cli.hpp"

int main(int argc, char** argv) {
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m2"});

  pwss::bench::print_header(
      "E7: parallel buffer cost",
      {"threads", "batch b", "ns/submit", "flush us", "flush ns/item"});

  for (const unsigned p : {1u, 4u, 8u}) {
    for (const std::size_t b : {64u, 1024u, 16384u, 262144u}) {
      pwss::buffer::ParallelBuffer<std::uint64_t> buf(p);
      std::atomic<std::uint64_t> submit_ns_total{0};
      std::vector<std::thread> threads;
      const std::size_t per = b / p;
      for (unsigned t = 0; t < p; ++t) {
        threads.emplace_back([&, t] {
          pwss::bench::WallTimer wt;
          for (std::size_t i = 0; i < per; ++i) {
            (void)buf.submit(t * per + i);
          }
          submit_ns_total.fetch_add(static_cast<std::uint64_t>(wt.ns()));
        });
      }
      for (auto& th : threads) th.join();
      pwss::bench::WallTimer ft;
      const auto out = buf.flush();
      const double flush_us = ft.ns() / 1e3;

      pwss::bench::print_cell(std::to_string(p));
      pwss::bench::print_cell(std::to_string(b));
      pwss::bench::print_cell(static_cast<double>(submit_ns_total.load()) /
                              static_cast<double>(out.size()));
      pwss::bench::print_cell(flush_us);
      pwss::bench::print_cell(ft.ns() / static_cast<double>(out.size()));
      pwss::bench::end_row();
    }
  }

  {
    std::vector<std::string> cols = {"threads"};
    for (const auto& b : cli.backends) cols.push_back(b + " ns/insert");
    pwss::bench::print_header(
        "E7b: end-to-end concurrent insert cost through the driver", cols);
    constexpr std::size_t kPerThread = 20000;
    for (const unsigned p : {1u, 4u, 8u}) {
      pwss::bench::print_cell(std::to_string(p));
      for (const auto& name : cli.backends) {
        auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
            name, cli.driver);
        std::vector<std::thread> threads;
        pwss::bench::WallTimer wt;
        for (unsigned t = 0; t < p; ++t) {
          threads.emplace_back([&, t] {
            for (std::size_t i = 0; i < kPerThread; ++i) {
              map->insert(static_cast<std::uint64_t>(t) * kPerThread + i, i);
            }
          });
        }
        for (auto& th : threads) th.join();
        map->quiesce();
        pwss::bench::print_cell(wt.ns() /
                                static_cast<double>(p * kPerThread));
      }
      pwss::bench::end_row();
    }
  }

  std::printf(
      "\nShape: ns/submit ~ flat across b and p (O(1) amortized submit); "
      "flush ns/item ~ flat once b >> p (O(p + b) flush); E7b adds the "
      "structure pass on top.\n");
  return 0;
}
