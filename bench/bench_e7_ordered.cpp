// E7o (protocol v2): the ordered mixed workload — predecessor/successor/
// range-count queries interleaved with the classic point mix, across every
// ordered-capable backend.
//
// Panels:
//   A: bulk run() in 4096-op chunks. Ordered kinds slice the batch into
//      point/ordered phases; the phase boundaries are where the ordered
//      surface costs, so skew in the mix is the interesting knob.
//   B: asynchronous submission — ONE client thread keeps a 512-op window
//      in flight through submit(op, ticket) and recycles fulfilled slots,
//      against the same thread issuing blocking per-op calls. The gap is
//      what the futures API buys: overlap without a thread per op.
//
//   ./bench_e7_ordered [--backend=...] [--workers=N] [--mix=S,I,E,P,Su,R]
//                      [--range-span=N] [--json=FILE]
//
// Default mix: 55% search / 15% insert / 10% erase / 10% predecessor /
// 5% successor / 5% range-count over a Zipf(0.99) key stream.

#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/async_map.hpp"
#include "driver/cli.hpp"
#include "util/workload.hpp"

namespace {

constexpr std::uint64_t kN = 1u << 14;
constexpr std::size_t kOps = 120000;
constexpr std::size_t kWindow = 512;

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;
using IntTicket = pwss::core::OpTicket<std::uint64_t>;

IntOp to_op(const pwss::util::KeyOp& k) {
  using pwss::util::OpKind;
  switch (k.kind) {
    case OpKind::kSearch: return IntOp::search(k.key);
    case OpKind::kInsert: return IntOp::insert(k.key, k.value);
    case OpKind::kErase: return IntOp::erase(k.key);
    case OpKind::kPredecessor: return IntOp::predecessor(k.key);
    case OpKind::kSuccessor: return IntOp::successor(k.key);
    case OpKind::kRangeCount: return IntOp::range_count(k.key, k.key2);
  }
  return IntOp::search(k.key);
}

std::vector<IntOp> make_ops(const pwss::util::OpMix& mix, double theta,
                            std::uint64_t seed) {
  const auto keys = pwss::util::zipf_keys(kN, theta, kOps, seed);
  const auto kops = pwss::util::apply_mix(keys, mix, seed * 3 + 1);
  std::vector<IntOp> ops;
  ops.reserve(kops.size());
  for (const auto& k : kops) ops.push_back(to_op(k));
  return ops;
}

/// Bulk path: chunked run() with a reused results buffer; returns Mops/s.
double bulk_mops(IntDriver& map, const std::vector<IntOp>& ops) {
  pwss::bench::WallTimer t;
  std::vector<IntOp> chunk;
  chunk.reserve(4096);
  std::vector<pwss::core::Result<std::uint64_t>> results;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    chunk.push_back(ops[i]);
    if (chunk.size() == 4096 || i + 1 == ops.size()) {
      map.run(chunk, results);
      chunk.clear();
    }
  }
  return static_cast<double>(ops.size()) / t.seconds() / 1e6;
}

/// One thread, blocking per-op calls; returns Mops/s.
double blocking_mops(IntDriver& map, const std::vector<IntOp>& ops) {
  pwss::bench::WallTimer t;
  for (const auto& op : ops) (void)map.step(op);
  map.quiesce();
  return static_cast<double>(ops.size()) / t.seconds() / 1e6;
}

/// One thread, kWindow operations kept in flight through the raw-ticket
/// submission API (slots recycled on completion); returns Mops/s.
double submit_window_mops(IntDriver& map, const std::vector<IntOp>& ops) {
  pwss::bench::WallTimer t;
  std::vector<IntTicket> ring(kWindow);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    IntTicket& slot = ring[i % kWindow];
    if (i >= kWindow) {
      (void)slot.wait();  // recycle the oldest outstanding slot
      slot.reset();
    }
    map.submit(ops[i], &slot);
  }
  map.quiesce();
  return static_cast<double>(ops.size()) / t.seconds() / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  argc = pwss::bench::consume_json_flag(argc, argv, "e7o");
  auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m0", "m1", "m2", "avl"});
  if (cli.driver.workers == 0) cli.driver.workers = 4;
  if (!cli.mix_given) {
    cli.mix = {0.55, 0.15, 0.10, 0.10, 0.05, 0.05, cli.mix.range_span};
  }
  // The default panel is all ordered-capable; a user-selected backend
  // without ordered support fails the registry check up front.
  for (const auto& name : cli.backends) {
    try {
      pwss::driver::BackendRegistry<std::uint64_t, std::uint64_t>::instance()
          .require_ordered(name);
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
      return 2;
    }
  }
  auto& json = pwss::bench::BenchJson::instance();

  std::vector<std::string> cols = {"theta"};
  for (const auto& b : cli.backends) cols.push_back(b);

  pwss::bench::print_header(
      "E7o-a: ordered mixed workload, bulk run() Mops/s (4096-op chunks)",
      cols);
  for (const double theta : {0.0, 0.99}) {
    const auto ops = make_ops(cli.mix, theta, 171);
    pwss::bench::print_cell(theta);
    for (const auto& name : cli.backends) {
      auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
          name, cli.driver);
      pwss::bench::prepopulate(*map, kN);
      const double m = bulk_mops(*map, ops);
      pwss::bench::print_cell(m);
      json.record("ordered_bulk", name, "ops_per_sec", m * 1e6,
                  {{"workers", cli.driver.workers},
                   {"batch", 4096},
                   {"theta_x100", theta * 100}});
    }
    pwss::bench::end_row();
  }

  pwss::bench::print_header(
      "E7o-b: 1 client, submit() window=512 vs blocking step(), Mops/s",
      {"mode", "backend", "Mops/s"});
  for (const auto& name : cli.backends) {
    const auto ops = make_ops(cli.mix, 0.99, 172);
    for (const bool windowed : {false, true}) {
      auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
          name, cli.driver);
      pwss::bench::prepopulate(*map, kN);
      const double m =
          windowed ? submit_window_mops(*map, ops) : blocking_mops(*map, ops);
      pwss::bench::print_cell(std::string(windowed ? "submit512" : "step"));
      pwss::bench::print_cell(name);
      pwss::bench::print_cell(m);
      pwss::bench::end_row();
      json.record(windowed ? "submit_window" : "blocking_step", name,
                  "ops_per_sec", m * 1e6,
                  {{"workers", cli.driver.workers},
                   {"window", windowed ? static_cast<double>(kWindow) : 1.0},
                   {"theta_x100", 99}});
    }
  }

  std::printf(
      "\nShape: the ordered mix pays one phase boundary per ordered cluster "
      "in bulk batches; the\nsubmission window overlaps per-op latency that "
      "blocking callers serialize.\n");
  return 0;
}
