#!/usr/bin/env python3
"""Compare two pwss-bench-v1 JSON Lines files (see bench/bench_util.hpp).

Usage:
    compare_baseline.py BASELINE CURRENT [--threshold=0.10] [--report-only]
                        [--only=REGEX]

Records are keyed by (bench, panel, backend, metric, params); `rev` and
`ts` attribution fields are ignored for matching and tolerated when absent
(older baselines don't carry them). Several records under one key (e.g.
repeated runs appended to the same file) are median-reduced.

Metric direction is inferred from the name: *_per_sec is higher-better,
ns_* / *_ns is lower-better. Counter-shaped metrics (hits_*, misses,
share_*, shed_*) are NEUTRAL: they describe workload shape (e.g. the per-segment-
depth probe counters from bench_micro's probe_depth panel), not speed, so
they are shown informationally and never flagged as regressions. The exit
code is nonzero when any shared series regressed by more than the
threshold fraction, unless --report-only is given.

--only=REGEX restricts the comparison to series whose formatted key
(bench/panel/backend/metric[params]) matches the regex — the mechanism CI
uses to GATE on a stable metric subset with a generous threshold (big
enough to absorb runner-vs-recording-machine variance, small enough to
catch a hang or an order-of-magnitude regression) while the full table
stays report-only.
"""

import json
import re
import statistics
import sys


def load(path):
    """-> {key: [values]}; key = (bench, panel, backend, metric, params)."""
    series = {}
    try:
        fh = open(path, "r", encoding="utf-8")
    except OSError as e:
        sys.stderr.write(f"compare_baseline: cannot open {path}: {e}\n")
        sys.exit(2)
    with fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                sys.stderr.write(
                    f"compare_baseline: {path}:{lineno}: skipping "
                    f"unparseable line\n")
                continue
            if rec.get("schema") != "pwss-bench-v1":
                continue
            params = tuple(sorted(rec.get("params", {}).items()))
            key = (rec.get("bench", "?"), rec.get("panel", "?"),
                   rec.get("backend", "?"), rec.get("metric", "?"), params)
            series.setdefault(key, []).append(float(rec["value"]))
    return series


def is_neutral(panel, metric, bench="?"):
    """Workload-shape counters: reported, never gated on.

    Shed rates (bench_e10_overload) are policy outcomes — a higher shed
    rate under a tighter window is the admission controller WORKING, not a
    performance regression — so they are informational by construction.
    The recovery panel (bench_micro) is single-shot, fsync-bound
    wall-clock bandwidth — far too machine-dependent to gate on. Every
    e11 series (bench_e11_serve) is loopback socket round-trip time —
    scheduler- and kernel-noise-bound, recorded for trend plots only
    (its correctness claims are enforced by the harness's own exit code,
    not here).
    """
    return (bench == "e11" or panel == "recovery"
            or metric.startswith("hits_") or metric.startswith("share_")
            or metric.startswith("shed_") or metric == "misses")


def higher_is_better(metric):
    if "per_sec" in metric:
        return True
    if metric.startswith("ns") or metric.endswith("ns") or "ns_" in metric:
        return False
    return True  # unknown metrics default to higher-better


def fmt_key(key):
    bench, panel, backend, metric, params = key
    p = ",".join(f"{k}={v:g}" for k, v in params)
    return f"{bench}/{panel}/{backend}/{metric}" + (f"[{p}]" if p else "")


def main(argv):
    threshold = 0.10
    report_only = False
    only = None
    paths = []
    for arg in argv[1:]:
        if arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        elif arg.startswith("--only="):
            only = re.compile(arg.split("=", 1)[1])
        elif arg == "--report-only":
            report_only = True
        elif arg in ("-h", "--help"):
            sys.stdout.write(__doc__)
            return 0
        else:
            paths.append(arg)
    if len(paths) != 2:
        sys.stderr.write(__doc__)
        return 2

    base = load(paths[0])
    cur = load(paths[1])
    if only is not None:
        base = {k: v for k, v in base.items() if only.search(fmt_key(k))}
        cur = {k: v for k, v in cur.items() if only.search(fmt_key(k))}
    shared = sorted(set(base) & set(cur))
    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    regressions = []
    print(f"{'series':<72} {'baseline':>14} {'current':>14} {'delta':>8}")
    for key in shared:
        b = statistics.median(base[key])
        c = statistics.median(cur[key])
        metric = key[3]
        if b == 0:
            delta = 0.0
        elif higher_is_better(metric):
            delta = (c - b) / b
        else:
            delta = (b - c) / b  # improvement positive for lower-better too
        flag = ""
        if is_neutral(key[1], metric, key[0]):
            flag = "  (info)"
        elif delta < -threshold:
            flag = "  << REGRESSION"
            regressions.append((key, delta))
        print(f"{fmt_key(key):<72} {b:>14.2f} {c:>14.2f} "
              f"{delta * 100:>+7.1f}%{flag}")
    for key in only_base:
        print(f"{fmt_key(key):<72} {'(baseline only — series dropped?)'}")
    for key in only_cur:
        print(f"{fmt_key(key):<72} {'(new series)'}")

    if not shared:
        sys.stderr.write("compare_baseline: no shared series to compare\n")
        return 0 if report_only else 2
    if regressions:
        print(f"\n{len(regressions)} series regressed beyond "
              f"{threshold * 100:.0f}%")
        return 0 if report_only else 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
