// E11 (ROADMAP: network serving layer): the wire protocol under load —
// what pipelining buys, what the op mix costs, and how the per-connection
// window sheds an overrun without a single protocol error.
//
// The server and its clients run in one process over loopback TCP, so the
// numbers measure the serving layer itself (framing, the reactor, the
// completion-driven response path), not a datacenter network. Three panels:
//
//   pipeline — connections x pipeline depth, search-only on a prepopulated
//              map. Throughput should SCALE WITH DEPTH: at depth 1 every op
//              pays a full round trip; at depth W the round trip amortizes
//              over W in-flight ops (the acceptance shape for the layer).
//   opmix    — fixed connections/depth across read-only, mixed, and
//              write-heavy op mixes: what mutations cost over the wire.
//   shed     — a deliberately tiny server window overrun 16x by a client
//              that ignores it: reports the shed rate and REQUIRES zero
//              protocol errors (frames are answered kOverloaded, never
//              dropped or torn — exits nonzero otherwise).
//
// All panels are info-only in compare_baseline.py (loopback latency noise
// is not a regression signal); the JSON still lands in the baseline file
// for trend plots.
//
//   ./bench_e11_serve [--backend=NAME[,NAME...]] [--workers=N] [--json=F]
//                     [--net-window=N]   (caps the pipeline-depth sweep)

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/rng.hpp"

namespace {

constexpr std::uint64_t kN = 1u << 14;  ///< prepopulated key universe
constexpr std::size_t kOpsPerConn = 30000;

using pwss::net::WireOp;
using pwss::net::WireResult;

/// Deterministic op script: `read_pct`% searches, the rest split evenly
/// between inserts and erases, keys uniform over the prepopulated range.
std::vector<WireOp> make_mix(std::uint64_t seed, unsigned read_pct) {
  pwss::util::Xoshiro256 rng(seed);
  std::vector<WireOp> ops;
  ops.reserve(kOpsPerConn);
  for (std::size_t i = 0; i < kOpsPerConn; ++i) {
    const std::uint64_t key = rng.bounded(kN);
    const std::uint64_t roll = rng.bounded(100);
    if (roll < read_pct) {
      ops.push_back(WireOp::search(key));
    } else if ((roll & 1u) != 0) {
      ops.push_back(WireOp::insert(key, seed + i));
    } else {
      ops.push_back(WireOp::erase(key));
    }
  }
  return ops;
}

struct RunResult {
  double ops_per_sec = 0.0;
  std::uint64_t shed = 0;
};

/// `connections` client threads, each pipelining its script through the
/// server's advertised window (Client::run's sliding window IS the depth:
/// the server caps it via ServerConfig::pipeline_window).
RunResult serve_run(pwss::driver::Driver<std::uint64_t, std::uint64_t>& map,
                    std::size_t depth, unsigned connections,
                    unsigned read_pct) {
  pwss::net::ServerConfig cfg;
  cfg.tcp_addr = "127.0.0.1:0";
  cfg.pipeline_window = depth;
  pwss::net::Server server(map, cfg);
  const std::string addr =
      "127.0.0.1:" + std::to_string(server.tcp_port());

  std::atomic<std::uint64_t> shed{0};
  pwss::bench::WallTimer t;
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (unsigned c = 0; c < connections; ++c) {
    threads.emplace_back([&, c] {
      pwss::net::Client client = pwss::net::Client::dial_tcp(addr);
      const auto ops = make_mix(0xE11 + c, read_pct);
      std::vector<WireResult> results;
      client.run(ops, results);
      std::uint64_t mine = 0;
      for (const auto& r : results) {
        if (r.status == pwss::core::ResultStatus::kOverloaded) ++mine;
      }
      shed.fetch_add(mine, std::memory_order_relaxed);
      client.close();
    });
  }
  for (auto& th : threads) th.join();
  const double secs = t.seconds();
  server.stop();

  RunResult r;
  r.ops_per_sec =
      static_cast<double>(kOpsPerConn) * connections / secs;
  r.shed = shed.load();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  argc = pwss::bench::consume_json_flag(argc, argv, "e11");
  auto cli =
      pwss::driver::parse<std::uint64_t, std::uint64_t>(argc, argv, {"m2"});
  if (cli.driver.workers == 0) cli.driver.workers = 4;
  auto& json = pwss::bench::BenchJson::instance();

  // ---- panel 1: pipeline depth ----------------------------------------------
  std::vector<std::size_t> depths = {1, 4, 16, 64};
  if (cli.net_window != 0) {
    // --net-window caps the sweep (the CI smoke run uses a short panel).
    std::vector<std::size_t> capped;
    for (const std::size_t d : depths) {
      if (d <= cli.net_window) capped.push_back(d);
    }
    if (capped.empty()) capped.push_back(cli.net_window);
    depths = capped;
  }
  std::vector<std::string> cols = {"conns", "depth"};
  for (const auto& b : cli.backends) cols.push_back(b + " ops/s");
  pwss::bench::print_header(
      "E11a: pipelined serving throughput (search-only, loopback TCP)",
      cols);
  for (const unsigned conns : {1u, 2u, 4u}) {
    for (const std::size_t depth : depths) {
      pwss::bench::print_cell(static_cast<double>(conns));
      pwss::bench::print_cell(static_cast<double>(depth));
      for (const auto& name : cli.backends) {
        auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
            name, cli.driver);
        pwss::bench::prepopulate(*map, kN);
        const RunResult r = serve_run(*map, depth, conns, 100);
        pwss::driver::finish(cli, *map);
        pwss::bench::print_cell(r.ops_per_sec);
        json.record("pipeline", name, "ops_per_sec", r.ops_per_sec,
                    {{"connections", static_cast<double>(conns)},
                     {"depth", static_cast<double>(depth)},
                     {"workers", static_cast<double>(cli.driver.workers)}});
      }
      pwss::bench::end_row();
    }
  }

  // ---- panel 2: op mix ------------------------------------------------------
  struct Mix {
    const char* label;
    unsigned read_pct;
  };
  const Mix mixes[] = {{"read-only", 100}, {"mixed", 50}, {"write-heavy", 10}};
  cols = {"mix"};
  for (const auto& b : cli.backends) cols.push_back(b + " ops/s");
  pwss::bench::print_header("E11b: op mix over the wire (2 conns, depth 16)",
                            cols);
  for (const Mix& mix : mixes) {
    pwss::bench::print_cell(std::string(mix.label));
    for (const auto& name : cli.backends) {
      auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
          name, cli.driver);
      pwss::bench::prepopulate(*map, kN);
      const RunResult r = serve_run(*map, 16, 2, mix.read_pct);
      pwss::driver::finish(cli, *map);
      pwss::bench::print_cell(r.ops_per_sec);
      json.record("opmix", name, "ops_per_sec", r.ops_per_sec,
                  {{"read_pct", static_cast<double>(mix.read_pct)},
                   {"workers", static_cast<double>(cli.driver.workers)}});
    }
    pwss::bench::end_row();
  }

  // ---- panel 3: window shed (acceptance: zero protocol errors) --------------
  int rc = 0;
  cols = {"window"};
  for (const auto& b : cli.backends) {
    cols.push_back(b + " shed");
    cols.push_back(b + " proto_err");
  }
  pwss::bench::print_header(
      "E11c: tiny server window overrun 16x — shed on the wire, no "
      "protocol errors",
      cols);
  pwss::bench::print_cell(4.0);
  for (const auto& name : cli.backends) {
    auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
        name, cli.driver);
    pwss::bench::prepopulate(*map, kN);
    pwss::net::ServerConfig cfg;
    cfg.tcp_addr = "127.0.0.1:0";
    cfg.pipeline_window = 4;
    pwss::net::Server server(*map, cfg);
    pwss::net::Client client = pwss::net::Client::dial_tcp(
        "127.0.0.1:" + std::to_string(server.tcp_port()));
    std::uint64_t shed = 0;
    // Ignore the advertised window on purpose: 64 tickets against a
    // window of 4 — the overrun the server must answer, not drop.
    for (int round = 0; round < 200; ++round) {
      std::vector<pwss::net::Client::Ticket> tickets(64);
      for (std::size_t i = 0; i < tickets.size(); ++i) {
        client.submit(WireOp::search(i), &tickets[i]);
      }
      for (auto& t : tickets) {
        if (t.wait().status == pwss::core::ResultStatus::kOverloaded) ++shed;
      }
    }
    client.close();
    server.stop();
    const pwss::net::NetStats stats = server.stats();
    pwss::driver::finish(cli, *map);
    pwss::bench::print_cell(static_cast<double>(shed));
    pwss::bench::print_cell(static_cast<double>(stats.protocol_errors));
    json.record("shed", name, "shed_ops", static_cast<double>(shed),
                {{"window", 4.0}});
    json.record("shed", name, "protocol_errors",
                static_cast<double>(stats.protocol_errors), {{"window", 4.0}});
    if (stats.protocol_errors != 0) {
      std::fprintf(stderr,
                   "E11c FAIL[%s]: %llu protocol errors during shed run\n",
                   name.c_str(),
                   static_cast<unsigned long long>(stats.protocol_errors));
      rc = 1;
    }
    if (shed == 0) {
      std::fprintf(stderr,
                   "E11c FAIL[%s]: window overrun shed nothing on the wire\n",
                   name.c_str());
      rc = 1;
    }
  }
  pwss::bench::end_row();

  std::printf(
      "\nShape: E11a throughput grows with pipeline depth (round trips "
      "amortize); E11c sheds\nthe overrun as kOverloaded responses with "
      "zero protocol errors (info-only metrics).\n");
  return rc;
}
