// E1 (Theorem 7 / Lemma 6): M0's access cost is O(log r + 1) — it grows
// with the recency rank r of the access and is independent of the map size
// n for fixed r, unlike a balanced BST whose cost is Θ(log n) everywhere.
//
// Method: build an M0 map (and an AVL baseline) with n items; drive a
// round-robin working set of w keys so that steady-state accesses all have
// rank ~w; report ns/op. Expect: M0 rows roughly constant down each column
// (n-independence), increasing along each row (rank-dependence); AVL rows
// increase with n and are flat across w; M0 beats AVL at small w, crossover
// near w ~ n.

#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/avl_map.hpp"
#include "bench_util.hpp"
#include "core/m0_map.hpp"
#include "util/stats.hpp"

namespace {

using pwss::bench::WallTimer;

volatile std::uint64_t g_sink = 0;  // defeats dead-code elimination

template <typename MapT, typename SearchFn>
double ns_per_access(MapT& map, SearchFn&& do_search, std::size_t n,
                     std::size_t w, std::size_t accesses) {
  // Warm up: bring the working set into steady state.
  for (int round = 0; round < 8; ++round) {
    for (std::size_t k = 0; k < w; ++k) g_sink += do_search(map, k);
  }
  WallTimer t;
  std::size_t done = 0;
  std::uint64_t acc = 0;
  while (done < accesses) {
    for (std::size_t k = 0; k < w && done < accesses; ++k, ++done) {
      acc += do_search(map, k);
    }
  }
  const double ns = t.ns() / static_cast<double>(accesses);
  g_sink += acc;
  (void)n;
  return ns;
}

}  // namespace

int main() {
  const std::vector<std::size_t> sizes = {1u << 12, 1u << 15, 1u << 18};
  const std::vector<std::size_t> ranks = {2, 8, 64, 512, 4096};
  constexpr std::size_t kAccesses = 200000;

  std::vector<std::string> cols = {"n \\ w"};
  for (auto w : ranks) cols.push_back(std::to_string(w));
  cols.push_back("AVL(any w)");

  pwss::bench::print_header(
      "E1: M0 ns/access vs working-set size w (rows: map size n)", cols);

  std::vector<double> log_w, m0_time;
  for (const auto n : sizes) {
    pwss::core::M0Map<std::uint64_t, std::uint64_t> m0;
    pwss::baseline::AvlMap<std::uint64_t, std::uint64_t> avl;
    for (std::uint64_t i = 0; i < n; ++i) {
      m0.insert(i, i);
      avl.insert(i, i);
    }
    pwss::bench::print_cell(std::to_string(n));
    for (const auto w : ranks) {
      const double ns = ns_per_access(
          m0, [](auto& m, std::uint64_t k) { return m.search(k).value_or(0); },
          n, w, kAccesses);
      pwss::bench::print_cell(ns);
      if (n == sizes.back()) {
        log_w.push_back(std::log2(static_cast<double>(w)));
        m0_time.push_back(ns);
      }
    }
    const double avl_ns = ns_per_access(
        avl, [](auto& m, std::uint64_t k) { return m.search(k).value_or(0); },
        n, 4096, kAccesses);
    pwss::bench::print_cell(avl_ns);
    pwss::bench::end_row();
  }

  const auto fit = pwss::util::fit_linear(log_w, m0_time);
  std::printf(
      "\nM0 (n=%zu): time ~ %.1f + %.1f*log2(w) ns, R^2=%.3f "
      "(working-set bound shape: positive slope, good fit)\n",
      sizes.back(), fit.intercept, fit.slope, fit.r2);
  return 0;
}
