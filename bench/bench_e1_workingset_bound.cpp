// E1 (Theorem 7 / Lemma 6): a working-set map's access cost is
// O(log r + 1) — it grows with the recency rank r of the access and is
// independent of the map size n for fixed r, unlike a balanced BST whose
// cost is Θ(log n) everywhere.
//
// Method: for each selected backend (default: m0 vs the non-adjusting avl
// baseline), build a map with n items and drive a round-robin working set
// of w keys so steady-state accesses all have rank ~w; report ns/op via
// the driver's sequential step() path. Expect: working-set rows roughly
// constant down each column (n-independence), increasing along each row
// (rank-dependence); avl rows increase with n and are flat across w;
// crossover near w ~ n.
//
//   ./bench_e1_workingset_bound [--backend=NAME[,NAME...]]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "util/stats.hpp"

namespace {

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

std::uint64_t g_sink = 0;  // defeats dead-code elimination

double ns_per_access(IntDriver& map, std::size_t w, std::size_t accesses) {
  // Warm up: bring the working set into steady state.
  std::uint64_t acc = 0;
  for (int round = 0; round < 8; ++round) {
    for (std::size_t k = 0; k < w; ++k) {
      acc += map.step(IntOp::search(k)).value.value_or(0);
    }
  }
  pwss::bench::WallTimer t;
  std::size_t done = 0;
  while (done < accesses) {
    for (std::size_t k = 0; k < w && done < accesses; ++k, ++done) {
      acc += map.step(IntOp::search(k)).value.value_or(0);
    }
  }
  const double ns = t.ns() / static_cast<double>(accesses);
  g_sink += acc;
  return ns;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m0", "avl"});

  const std::vector<std::size_t> sizes = {1u << 12, 1u << 15, 1u << 18};
  const std::vector<std::size_t> ranks = {2, 8, 64, 512, 4096};
  constexpr std::size_t kAccesses = 200000;

  std::vector<std::string> cols = {"backend", "n \\ w"};
  for (auto w : ranks) cols.push_back(std::to_string(w));

  pwss::bench::print_header(
      "E1: ns/access vs working-set size w (rows: backend, map size n)",
      cols);

  // Per-backend timings on the largest n, for the log-linear fit below.
  std::vector<std::vector<double>> largest_n_times(cli.backends.size());

  for (std::size_t b = 0; b < cli.backends.size(); ++b) {
    const auto& name = cli.backends[b];
    for (const std::size_t n : sizes) {
      auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
          name, cli.driver);
      pwss::bench::prepopulate(*map, n);

      pwss::bench::print_cell(name);
      pwss::bench::print_cell(std::to_string(n));
      for (const std::size_t w : ranks) {
        const double ns = ns_per_access(*map, w, kAccesses);
        pwss::bench::print_cell(ns);
        if (n == sizes.back()) largest_n_times[b].push_back(ns);
      }
      pwss::bench::end_row();
    }
  }

  // Quantitative check of the O(log r) bound: regress ns against log2(w)
  // at the largest n. Working-set backends should fit with a positive
  // slope; avl's cost is w-independent (slope ~ 0, poor fit).
  std::vector<double> log_w;
  log_w.reserve(ranks.size());
  for (const std::size_t w : ranks) {
    log_w.push_back(std::log2(static_cast<double>(w)));
  }
  std::printf("\n");
  for (std::size_t b = 0; b < cli.backends.size(); ++b) {
    const auto fit = pwss::util::fit_linear(log_w, largest_n_times[b]);
    std::printf(
        "%s (n=%zu): time ~ %.1f + %.1f*log2(w) ns, R^2=%.3f\n",
        cli.backends[b].c_str(), sizes.back(), fit.intercept, fit.slope,
        fit.r2);
  }
  std::printf(
      "\nShape: working-set backends (m0/iacono/splay) are ~flat down each "
      "column, rise along each row, and fit log2(w) with positive slope and "
      "high R^2; avl rises with n and is flat in w.\n"
      "(sink %llu)\n",
      static_cast<unsigned long long>(g_sink % 10));
  return 0;
}
