// E2 (Theorems 28/30): ESort runs in O(n·H + n) — entropy-adaptive. As the
// access distribution skews (H drops), ESort gets faster, while a plain
// comparison sort stays near n·log(distinct). We report measured entropy H
// (bits/element), ESort and std::stable_sort times.
//
// Shape to hold: ESort time decreases monotonically with H; at low H it
// beats stable_sort's relative slowdown; at H ~ log u both are comparable
// (ESort pays its constant factors).
//
// Panel E2c drives the same key streams as search batches through the
// selected map backends (default: m1, whose batch pass entropy-sorts with
// the parallel cousin of this very algorithm) — batch time should track H
// the same way (Theorem 12's W_L term falls with skew).
//
//   ./bench_e2_esort_entropy [--backend=NAME[,NAME...]]

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "sort/esort.hpp"
#include "util/workload.hpp"

namespace {

constexpr std::size_t kN = 1u << 18;
constexpr std::uint64_t kUniverse = 1u << 16;
constexpr std::size_t kChunk = 8192;

using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

}  // namespace

int main(int argc, char** argv) {
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1"});
  const std::vector<double> thetas = {0.0, 0.5, 0.9, 0.99, 1.2, 1.5};

  pwss::bench::print_header(
      "E2: ESort vs stable_sort, n=2^18 (zipf theta sweep)",
      {"theta", "H bits", "esort ms", "stable ms", "ratio"});

  for (const double theta : thetas) {
    const auto keys = pwss::util::zipf_keys(kUniverse, theta, kN, 42);
    const double h = pwss::util::empirical_entropy_bits(keys);

    pwss::bench::WallTimer te;
    const auto order =
        pwss::sort::esort(keys, [](std::uint64_t x) { return x; });
    const double esort_ms = te.seconds() * 1e3;

    std::vector<std::size_t> idx(keys.size());
    std::iota(idx.begin(), idx.end(), 0);
    pwss::bench::WallTimer ts;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return keys[a] < keys[b];
    });
    const double stable_ms = ts.seconds() * 1e3;

    pwss::bench::print_cell(theta);
    pwss::bench::print_cell(h);
    pwss::bench::print_cell(esort_ms);
    pwss::bench::print_cell(stable_ms);
    pwss::bench::print_cell(esort_ms / stable_ms);
    pwss::bench::end_row();
    (void)order;
  }

  pwss::bench::print_header(
      "E2b: equal-frequency distributions (u distinct keys)",
      {"u", "H bits", "esort ms", "stable ms"});
  for (const std::size_t u : {2u, 16u, 256u, 4096u, 65536u}) {
    std::vector<std::uint64_t> keys = pwss::util::uniform_keys(u, kN, 7);
    const double h = pwss::util::empirical_entropy_bits(keys);
    pwss::bench::WallTimer te;
    const auto order =
        pwss::sort::esort(keys, [](std::uint64_t x) { return x; });
    const double esort_ms = te.seconds() * 1e3;
    std::vector<std::size_t> idx(keys.size());
    std::iota(idx.begin(), idx.end(), 0);
    pwss::bench::WallTimer ts;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return keys[a] < keys[b];
    });
    pwss::bench::print_cell(std::to_string(u));
    pwss::bench::print_cell(h);
    pwss::bench::print_cell(esort_ms);
    pwss::bench::print_cell(ts.seconds() * 1e3);
    pwss::bench::end_row();
    (void)order;
  }

  {
    std::vector<std::string> cols = {"theta", "H bits"};
    for (const auto& b : cli.backends) cols.push_back(b + " batch ms");
    pwss::bench::print_header(
        "E2c: same streams as search batches (batch=8192, prepopulated)",
        cols);
    for (const double theta : thetas) {
      const auto keys = pwss::util::zipf_keys(kUniverse, theta, kN, 42);
      pwss::bench::print_cell(theta);
      pwss::bench::print_cell(pwss::util::empirical_entropy_bits(keys));
      for (const auto& name : cli.backends) {
        auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
            name, cli.driver);
        pwss::bench::prepopulate(*map, kUniverse);
        pwss::bench::print_cell(
            pwss::bench::chunked_search_ms(*map, keys, kChunk));
      }
      pwss::bench::end_row();
    }
  }

  std::printf(
      "\nShape: esort ms falls with H while stable ms is ~flat (ratio < 1 at "
      "low H); E2c backend columns fall with H the same way.\n");
  return 0;
}
