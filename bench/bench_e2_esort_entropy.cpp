// E2 (Theorems 28/30): ESort runs in O(n·H + n) — entropy-adaptive. As the
// access distribution skews (H drops), ESort gets faster, while a plain
// comparison sort stays near n·log(distinct). We report measured entropy H
// (bits/element), ESort and std::stable_sort times.
//
// Shape to hold: ESort time decreases monotonically with H; at low H it
// beats stable_sort's relative slowdown; at H ~ log u both are comparable
// (ESort pays its constant factors).

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "bench_util.hpp"
#include "sort/esort.hpp"
#include "util/workload.hpp"

int main() {
  constexpr std::size_t kN = 1u << 18;
  pwss::bench::print_header(
      "E2: ESort vs stable_sort, n=2^18 (zipf theta sweep)",
      {"theta", "H bits", "esort ms", "stable ms", "ratio"});

  for (const double theta : {0.0, 0.5, 0.9, 0.99, 1.2, 1.5}) {
    const auto keys = pwss::util::zipf_keys(1u << 16, theta, kN, 42);
    const double h = pwss::util::empirical_entropy_bits(keys);

    pwss::bench::WallTimer te;
    const auto order =
        pwss::sort::esort(keys, [](std::uint64_t x) { return x; });
    const double esort_ms = te.seconds() * 1e3;

    std::vector<std::size_t> idx(keys.size());
    std::iota(idx.begin(), idx.end(), 0);
    pwss::bench::WallTimer ts;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return keys[a] < keys[b];
    });
    const double stable_ms = ts.seconds() * 1e3;

    pwss::bench::print_cell(theta);
    pwss::bench::print_cell(h);
    pwss::bench::print_cell(esort_ms);
    pwss::bench::print_cell(stable_ms);
    pwss::bench::print_cell(esort_ms / stable_ms);
    pwss::bench::end_row();
    (void)order;
  }

  pwss::bench::print_header(
      "E2b: equal-frequency distributions (u distinct keys)",
      {"u", "H bits", "esort ms", "stable ms"});
  for (const std::size_t u : {2u, 16u, 256u, 4096u, 65536u}) {
    std::vector<std::uint64_t> keys = pwss::util::uniform_keys(u, kN, 7);
    const double h = pwss::util::empirical_entropy_bits(keys);
    pwss::bench::WallTimer te;
    const auto order =
        pwss::sort::esort(keys, [](std::uint64_t x) { return x; });
    const double esort_ms = te.seconds() * 1e3;
    std::vector<std::size_t> idx(keys.size());
    std::iota(idx.begin(), idx.end(), 0);
    pwss::bench::WallTimer ts;
    std::stable_sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
      return keys[a] < keys[b];
    });
    pwss::bench::print_cell(std::to_string(u));
    pwss::bench::print_cell(h);
    pwss::bench::print_cell(esort_ms);
    pwss::bench::print_cell(ts.seconds() * 1e3);
    pwss::bench::end_row();
    (void)order;
  }
  return 0;
}
