#pragma once
// Shared helpers for the experiment harnesses (bench/bench_e*.cpp): wall
// timing, aligned table printing, and the machine-readable perf trajectory
// (--json=FILE, JSON Lines). Each harness prints the series its experiment
// row in DESIGN.md promises; EXPERIMENTS.md records the shapes and the
// BENCH_baseline.json schema.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <utility>
#include <vector>

#include "core/ops.hpp"
#include "driver/driver.hpp"

// Baked in by CMake from `git rev-parse --short HEAD` at configure time
// (re-run the cmake configure step after committing to refresh it); every
// JSON record carries it so baseline files are attributable to a commit.
#ifndef PWSS_GIT_REV
#define PWSS_GIT_REV "unknown"
#endif

namespace pwss::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double ns() const { return seconds() * 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title,
                         const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void print_cell(double v) { std::printf("%16.2f", v); }
inline void print_cell(const std::string& s) {
  std::printf("%16s", s.c_str());
}
inline void end_row() { std::printf("\n"); }

// ---- machine-readable perf baseline (--json=FILE) ---------------------------
//
// Every harness accepting --json=FILE appends one JSON object per line
// (JSON Lines) so several binaries can contribute to one trajectory file
// (CI writes bench_micro + E5 + E9 into BENCH_baseline.json and uploads it
// as an artifact). Record shape:
//
//   {"schema":"pwss-bench-v1","bench":"e5","panel":"bulk_run",
//    "backend":"m1","metric":"ops_per_sec","value":1234567.0,
//    "rev":"1a2b3c4","ts":1753228800,
//    "params":{"workers":4,"batch":8192}}
//
// "rev" (git short sha at build time) and "ts" (unix seconds at record
// time) attribute each record; consumers (bench/compare_baseline.py) must
// tolerate their absence — older baseline files don't carry them.

/// Process-wide JSON Lines recorder; inert until open() is called.
class BenchJson {
 public:
  static BenchJson& instance() {
    static BenchJson j;
    return j;
  }

  /// Opens `path` for appending; returns false (with a message) on failure.
  bool open(const std::string& path, const std::string& bench) {
    close();
    file_ = std::fopen(path.c_str(), "a");
    bench_ = bench;
    if (file_ == nullptr) {
      std::fprintf(stderr, "bench: cannot open --json file '%s'\n",
                   path.c_str());
      return false;
    }
    return true;
  }

  bool enabled() const { return file_ != nullptr; }

  /// Records one measurement. `params` are numeric key/values (workers,
  /// batch size, theta x100, ...); strings never need escaping because
  /// every name comes from our own flag-validated registry.
  void record(const std::string& panel, const std::string& backend,
              const std::string& metric, double value,
              std::initializer_list<std::pair<const char*, double>> params = {}) {
    if (file_ == nullptr) return;
    std::fprintf(file_,
                 "{\"schema\":\"pwss-bench-v1\",\"bench\":\"%s\","
                 "\"panel\":\"%s\",\"backend\":\"%s\",\"metric\":\"%s\","
                 "\"value\":%.6f,\"rev\":\"%s\",\"ts\":%lld,\"params\":{",
                 bench_.c_str(), panel.c_str(), backend.c_str(),
                 metric.c_str(), value, PWSS_GIT_REV,
                 static_cast<long long>(std::time(nullptr)));
    bool first = true;
    for (const auto& [k, v] : params) {
      std::fprintf(file_, "%s\"%s\":%.6f", first ? "" : ",", k, v);
      first = false;
    }
    std::fprintf(file_, "}}\n");
    std::fflush(file_);
  }

  void close() {
    if (file_ != nullptr) {
      std::fclose(file_);
      file_ = nullptr;
    }
  }

  ~BenchJson() { close(); }

 private:
  BenchJson() = default;
  std::FILE* file_ = nullptr;
  std::string bench_;
};

/// Scans argv for --json=FILE; when present, removes it from argv (so the
/// remaining flags go to driver::parse / google-benchmark untouched) and
/// opens the process-wide recorder under the given bench name. Returns the
/// new argc.
inline int consume_json_flag(int argc, char** argv, const std::string& bench) {
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      const char* path = argv[i] + 7;
      if (*path == '\0' || !BenchJson::instance().open(path, bench)) {
        std::fprintf(stderr, "%s: --json expects a writable file path\n",
                     argv[0]);
        std::exit(2);
      }
    } else {
      argv[out++] = argv[i];
    }
  }
  argv[out] = nullptr;
  return out;
}

/// Bulk-inserts keys {0, stride, 2*stride, ...} below `n` with value
/// value_of(key) via one run() batch — the shared warm-up for benches and
/// examples.
template <typename K, typename V, typename ValueFn>
void prepopulate(driver::Driver<K, V>& map, std::uint64_t n,
                 std::uint64_t stride, ValueFn&& value_of) {
  std::vector<core::Op<K, V>> warm;
  warm.reserve(static_cast<std::size_t>(n / stride) + 1);
  for (std::uint64_t i = 0; i < n; i += stride) {
    warm.push_back(
        core::Op<K, V>::insert(static_cast<K>(i), value_of(i)));
  }
  map.run(warm);
}

template <typename K, typename V>
void prepopulate(driver::Driver<K, V>& map, std::uint64_t n) {
  prepopulate(map, n, 1, [](std::uint64_t i) { return static_cast<V>(i); });
}

/// Drives `keys` as search ops through the driver's bulk path in
/// `chunk`-sized batches; returns elapsed ms. Shared by the E2c/E3b/E8b
/// panels so they all measure the same chunking policy.
template <typename K, typename V>
double chunked_search_ms(driver::Driver<K, V>& map,
                         const std::vector<K>& keys, std::size_t chunk) {
  WallTimer t;
  std::vector<core::Op<K, V>> batch;
  batch.reserve(chunk);
  std::vector<core::Result<V>> results;  // reused across chunks
  for (std::size_t i = 0; i < keys.size(); ++i) {
    batch.push_back(core::Op<K, V>::search(keys[i]));
    if (batch.size() == chunk || i + 1 == keys.size()) {
      map.run(batch, results);
      batch.clear();
    }
  }
  return t.seconds() * 1e3;
}

}  // namespace pwss::bench
