#pragma once
// Shared helpers for the experiment harnesses (bench/bench_e*.cpp): wall
// timing and aligned table printing. Each harness prints the series its
// experiment row in DESIGN.md promises; EXPERIMENTS.md records the shapes.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/ops.hpp"
#include "driver/driver.hpp"

namespace pwss::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double ns() const { return seconds() * 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title,
                         const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void print_cell(double v) { std::printf("%16.2f", v); }
inline void print_cell(const std::string& s) {
  std::printf("%16s", s.c_str());
}
inline void end_row() { std::printf("\n"); }

/// Bulk-inserts keys {0, stride, 2*stride, ...} below `n` with value
/// value_of(key) via one run() batch — the shared warm-up for benches and
/// examples.
template <typename K, typename V, typename ValueFn>
void prepopulate(driver::Driver<K, V>& map, std::uint64_t n,
                 std::uint64_t stride, ValueFn&& value_of) {
  std::vector<core::Op<K, V>> warm;
  warm.reserve(static_cast<std::size_t>(n / stride) + 1);
  for (std::uint64_t i = 0; i < n; i += stride) {
    warm.push_back(
        core::Op<K, V>::insert(static_cast<K>(i), value_of(i)));
  }
  map.run(warm);
}

template <typename K, typename V>
void prepopulate(driver::Driver<K, V>& map, std::uint64_t n) {
  prepopulate(map, n, 1, [](std::uint64_t i) { return static_cast<V>(i); });
}

/// Drives `keys` as search ops through the driver's bulk path in
/// `chunk`-sized batches; returns elapsed ms. Shared by the E2c/E3b/E8b
/// panels so they all measure the same chunking policy.
template <typename K, typename V>
double chunked_search_ms(driver::Driver<K, V>& map,
                         const std::vector<K>& keys, std::size_t chunk) {
  WallTimer t;
  std::vector<core::Op<K, V>> batch;
  batch.reserve(chunk);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    batch.push_back(core::Op<K, V>::search(keys[i]));
    if (batch.size() == chunk || i + 1 == keys.size()) {
      map.run(batch);
      batch.clear();
    }
  }
  return t.seconds() * 1e3;
}

}  // namespace pwss::bench
