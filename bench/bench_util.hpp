#pragma once
// Shared helpers for the experiment harnesses (bench/bench_e*.cpp): wall
// timing and aligned table printing. Each harness prints the series its
// experiment row in DESIGN.md promises; EXPERIMENTS.md records the shapes.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

namespace pwss::bench {

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }
  double ns() const { return seconds() * 1e9; }

 private:
  std::chrono::steady_clock::time_point start_;
};

inline void print_header(const std::string& title,
                         const std::vector<std::string>& cols) {
  std::printf("\n=== %s ===\n", title.c_str());
  for (const auto& c : cols) std::printf("%16s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%16s", "----");
  std::printf("\n");
}

inline void print_cell(double v) { std::printf("%16.2f", v); }
inline void print_cell(const std::string& s) {
  std::printf("%16s", s.c_str());
}
inline void end_row() { std::printf("\n"); }

}  // namespace pwss::bench
