// E5 (Theorem 3): throughput of an implicitly-batched working-set map
// scales with client count and adapts to temporal locality, and it beats a
// coarse-locked balanced tree under concurrent skewed access.
//
// Method: T client threads issue blocking ops through each selected
// backend's driver (default: m1 vs locked) for a fixed wall time; report
// Mops/s. Every backend exposes the same thread-safe blocking API, so the
// panel is one loop over registry names.
// Shape: m1 throughput grows with clients (batching amortizes), the locked
// map saturates; the gap widens under skew (theta=0.99) because hot items
// sit in tiny front segments.
//
// A second panel (E5b) drives the bulk run() path in fixed-size batches —
// the synchronous execute_batch cost every implicit batch ultimately pays —
// at 1024 and 8192 ops per batch; 8192 is the allocation-lean PR's
// acceptance metric.
//
//   ./bench_e5_m1_scaling [--backend=NAME[,NAME...]] [--workers=N]
//                         [--json=FILE]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"
#include "util/zipf.hpp"

namespace {

constexpr std::size_t kUniverse = 1u << 16;
constexpr double kRunSeconds = 0.5;

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

double mops(IntDriver& map, unsigned clients, double theta) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      pwss::util::Xoshiro256 rng(t + 1);
      pwss::util::ZipfGenerator zipf(kUniverse, theta);
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = zipf(rng);
        if (rng.bounded(10) == 0) {
          map.insert(key, key);
        } else {
          map.search(key);
        }
        ++n;
      }
      total.fetch_add(n);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kRunSeconds));
  stop = true;
  for (auto& th : threads) th.join();
  return static_cast<double>(total.load()) / kRunSeconds / 1e6;
}

double bulk_mops(IntDriver& map, const std::vector<std::uint64_t>& keys,
                 std::size_t batch_size) {
  const double ms = pwss::bench::chunked_search_ms(map, keys, batch_size);
  return static_cast<double>(keys.size()) / ms / 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  argc = pwss::bench::consume_json_flag(argc, argv, "e5");
  auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1", "locked"});
  // Pin the worker pool so the client-scaling column is readable.
  if (cli.driver.workers == 0) cli.driver.workers = 4;
  auto& json = pwss::bench::BenchJson::instance();

  std::vector<std::string> cols = {"theta", "clients"};
  for (const auto& b : cli.backends) cols.push_back(b);
  pwss::bench::print_header(
      "E5: throughput Mops/s, 90% search 10% insert (universe 2^16)", cols);

  for (const double theta : {0.0, 0.99}) {
    for (const unsigned clients : {1u, 2u, 4u, 8u}) {
      pwss::bench::print_cell(theta);
      pwss::bench::print_cell(std::to_string(clients));
      for (const auto& name : cli.backends) {
        auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
            name, cli.driver);
        // Pre-populate half the universe.
        pwss::bench::prepopulate(*map, kUniverse, 2,
                                 [](std::uint64_t i) { return i; });
        const double m = mops(*map, clients, theta);
        pwss::bench::print_cell(m);
        json.record("blocking_clients", name, "ops_per_sec", m * 1e6,
                    {{"workers", cli.driver.workers},
                     {"clients", clients},
                     {"theta_x100", theta * 100}});
      }
      pwss::bench::end_row();
    }
  }

  // E5b: the synchronous bulk path — per-backend execute_batch throughput
  // at fixed batch sizes (8192 is the perf-PR acceptance metric).
  std::vector<std::string> bcols = {"theta", "batch"};
  for (const auto& b : cli.backends) bcols.push_back(b);
  pwss::bench::print_header(
      "E5b: bulk run() Mops/s, zipf searches (universe 2^16)", bcols);
  constexpr std::size_t kBulkOps = 1u << 17;
  for (const double theta : {0.0, 0.99}) {
    const auto keys = pwss::util::zipf_keys(kUniverse, theta, kBulkOps, 17);
    for (const std::size_t batch : {std::size_t{1024}, std::size_t{8192}}) {
      pwss::bench::print_cell(theta);
      pwss::bench::print_cell(std::to_string(batch));
      for (const auto& name : cli.backends) {
        auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
            name, cli.driver);
        pwss::bench::prepopulate(*map, kUniverse, 2,
                                 [](std::uint64_t i) { return i; });
        const double m = bulk_mops(*map, keys, batch);
        pwss::bench::print_cell(m);
        json.record("bulk_run", name, "ops_per_sec", m * 1e6,
                    {{"workers", cli.driver.workers},
                     {"batch", static_cast<double>(batch)},
                     {"theta_x100", theta * 100}});
      }
      pwss::bench::end_row();
    }
  }

  std::printf(
      "\nShape: batched columns grow with clients (implicit batching "
      "amortizes structure passes); the locked column flattens/declines "
      "under contention. E5b isolates the synchronous batch core.\n");
  return 0;
}
