// E5 (Theorem 3): throughput of the implicitly-batched M1 scales with
// worker count and adapts to temporal locality, and it beats a coarse-
// locked balanced tree under concurrent skewed access.
//
// Method: T client threads issue blocking ops through AsyncMap<M1> for a
// fixed wall time; report Mops/s. Baseline: LockedMap (mutex around AVL).
// Shape: M1 throughput grows with clients (batching amortizes), locked map
// saturates; the gap widens under skew (theta=0.99) because hot items sit
// in tiny front segments.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "baseline/locked_map.hpp"
#include "bench_util.hpp"
#include "core/async_map.hpp"
#include "core/m1_map.hpp"
#include "util/workload.hpp"
#include "util/zipf.hpp"

namespace {

constexpr std::size_t kUniverse = 1u << 16;
constexpr double kRunSeconds = 0.5;

template <typename SearchInsert>
double mops(unsigned clients, double theta, SearchInsert&& op_fn) {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> total{0};
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < clients; ++t) {
    threads.emplace_back([&, t] {
      pwss::util::Xoshiro256 rng(t + 1);
      pwss::util::ZipfGenerator zipf(kUniverse, theta);
      std::uint64_t n = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::uint64_t key = zipf(rng);
        if (rng.bounded(10) == 0) {
          op_fn(key, true);
        } else {
          op_fn(key, false);
        }
        ++n;
      }
      total.fetch_add(n);
    });
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(kRunSeconds));
  stop = true;
  for (auto& th : threads) th.join();
  return static_cast<double>(total.load()) / kRunSeconds / 1e6;
}

}  // namespace

int main() {
  pwss::bench::print_header(
      "E5: throughput Mops/s, 90% search 10% insert (universe 2^16)",
      {"theta", "clients", "M1 async", "locked AVL"});

  for (const double theta : {0.0, 0.99}) {
    for (const unsigned clients : {1u, 2u, 4u, 8u}) {
      double m1_mops, locked_mops;
      {
        pwss::sched::Scheduler scheduler(4);
        pwss::core::AsyncMap<std::uint64_t, std::uint64_t,
                             pwss::core::M1Map<std::uint64_t, std::uint64_t>>
            amap(pwss::core::M1Map<std::uint64_t, std::uint64_t>(&scheduler),
                 scheduler);
        // Pre-populate half the universe.
        for (std::uint64_t i = 0; i < kUniverse; i += 2) amap.insert(i, i);
        m1_mops = mops(clients, theta, [&](std::uint64_t k, bool ins) {
          if (ins) {
            amap.insert(k, k);
          } else {
            amap.search(k);
          }
        });
      }
      {
        pwss::baseline::LockedMap<std::uint64_t, std::uint64_t> locked;
        for (std::uint64_t i = 0; i < kUniverse; i += 2) locked.insert(i, i);
        locked_mops = mops(clients, theta, [&](std::uint64_t k, bool ins) {
          if (ins) {
            locked.insert(k, k);
          } else {
            locked.search(k);
          }
        });
      }
      pwss::bench::print_cell(theta);
      pwss::bench::print_cell(std::to_string(clients));
      pwss::bench::print_cell(m1_mops);
      pwss::bench::print_cell(locked_mops);
      pwss::bench::end_row();
    }
  }
  std::printf(
      "\nShape: M1 column grows with clients (implicit batching amortizes "
      "structure passes); locked column flattens/declines under contention.\n");
  return 0;
}
