// E9 (ROADMAP: multi-instance scaling): sharding the driver layer —
// S independent backend instances behind one shared scheduler, point ops
// routed by key hash, bulk batches scatter/gathered per shard.
//
// Sweep: shard count x backend x Zipf skew, two panels:
//   A: 8 client threads issuing blocking searches (each shard runs its own
//      implicit-batching front end; sharding multiplies drive loops);
//   B: bulk run() in 4096-op chunks (scatter -> parallel per-shard
//      execute_batch -> submission-order gather).
// "shards 0" rows are the unsharded backend, the single-instance baseline.
//
// Shape: throughput rises with shard count until the worker pool saturates;
// skew (theta = 0.99) concentrates load on few shards and flattens the
// gain — the scenario later NUMA/replication PRs start from.
//
//   ./bench_e9_sharding [--backend=NAME[,NAME...]] [--workers=N] [--shards=N]
//   (--shards=N pins the sweep to that single shard count)

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "util/workload.hpp"

namespace {

constexpr std::uint64_t kN = 1u << 14;
constexpr std::size_t kOps = 160000;
constexpr int kClients = 8;

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

std::atomic<std::uint64_t> g_sink{0};  // defeats dead-code elimination

std::unique_ptr<IntDriver> sharded_driver(const std::string& inner,
                                          unsigned shards,
                                          pwss::driver::Options opts) {
  opts.shards = shards;
  const std::string name =
      shards == 0 ? inner
                  : (std::string(pwss::driver::kShardedPrefix) + inner);
  auto map =
      pwss::driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
  pwss::bench::prepopulate(*map, kN);
  return map;
}

double blocking_mops(IntDriver& map, const std::vector<std::uint64_t>& keys) {
  pwss::bench::WallTimer t;
  std::vector<std::thread> clients;
  const std::size_t per = keys.size() / kClients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::uint64_t acc = 0;
      const std::size_t lo = static_cast<std::size_t>(c) * per;
      const std::size_t hi = c + 1 == kClients ? keys.size() : lo + per;
      for (std::size_t i = lo; i < hi; ++i) {
        acc += map.search(keys[i]).value_or(0);
      }
      g_sink += acc;
    });
  }
  for (auto& th : clients) th.join();
  map.quiesce();
  return static_cast<double>(keys.size()) / t.seconds() / 1e6;
}

}  // namespace

int main(int argc, char** argv) {
  argc = pwss::bench::consume_json_flag(argc, argv, "e9");
  auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1", "avl"});
  if (cli.driver.workers == 0) cli.driver.workers = 4;
  auto& json = pwss::bench::BenchJson::instance();

  // The sweep applies its own sharded: wrapper per row; accept
  // --backend=sharded:NAME by stripping the prefix rather than
  // double-wrapping (sharding does not nest).
  for (auto& name : cli.backends) {
    if (name.starts_with(pwss::driver::kShardedPrefix)) {
      name = name.substr(pwss::driver::kShardedPrefix.size());
    }
  }

  std::vector<unsigned> shard_counts = {0, 2, 4, 8};
  if (cli.driver.shards != 0) shard_counts = {cli.driver.shards};

  std::vector<std::string> cols = {"theta", "shards"};
  for (const auto& b : cli.backends) cols.push_back(b);

  pwss::bench::print_header(
      "E9a: blocking search Mops/s, 8 clients (n=2^14; shards 0 = unsharded)",
      cols);
  for (const double theta : {0.0, 0.99}) {
    const auto keys = pwss::util::zipf_keys(kN, theta, kOps, 91);
    for (const unsigned shards : shard_counts) {
      pwss::bench::print_cell(theta);
      pwss::bench::print_cell(static_cast<double>(shards));
      for (const auto& name : cli.backends) {
        auto map = sharded_driver(name, shards, cli.driver);
        const double m = blocking_mops(*map, keys);
        pwss::bench::print_cell(m);
        json.record("blocking_search", name, "ops_per_sec", m * 1e6,
                    {{"workers", cli.driver.workers},
                     {"shards", shards},
                     {"clients", kClients},
                     {"theta_x100", theta * 100}});
      }
      pwss::bench::end_row();
    }
  }

  pwss::bench::print_header("E9b: bulk run() Mops/s, 4096-op chunks", cols);
  for (const double theta : {0.0, 0.99}) {
    const auto keys = pwss::util::zipf_keys(kN, theta, kOps, 92);
    for (const unsigned shards : shard_counts) {
      pwss::bench::print_cell(theta);
      pwss::bench::print_cell(static_cast<double>(shards));
      for (const auto& name : cli.backends) {
        auto map = sharded_driver(name, shards, cli.driver);
        const double ms = pwss::bench::chunked_search_ms(*map, keys, 4096);
        const double m = static_cast<double>(keys.size()) / ms / 1e3;
        pwss::bench::print_cell(m);
        json.record("bulk_run", name, "ops_per_sec", m * 1e6,
                    {{"workers", cli.driver.workers},
                     {"shards", shards},
                     {"batch", 4096},
                     {"theta_x100", theta * 100}});
      }
      pwss::bench::end_row();
    }
  }

  std::printf(
      "\nShape: throughput rises with shard count until the pool saturates; "
      "theta=0.99 concentrates\nload on few shards and flattens the gain. "
      "(sink %llu)\n",
      static_cast<unsigned long long>(g_sink.load() % 10));
  return 0;
}
