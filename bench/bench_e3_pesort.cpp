// E3 (Theorem 33): PESort does O(n·H + n) work with O(log^2 n) span: its
// single-thread time tracks the entropy like ESort, and it self-relatively
// speeds up with workers. Also ablates the deterministic PPivot against the
// randomized quartile pivot (the Remark after Lemma 34) — shapes should
// match.
//
// Panel E3b pushes the same streams through the selected map backends'
// bulk path (default: m1, whose batch pass begins with exactly this sort)
// so the sort-level entropy adaptivity can be read against the full
// structure pass.
//
//   ./bench_e3_pesort [--backend=NAME[,NAME...]] [--workers=N]

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "sched/scheduler.hpp"
#include "sort/pesort.hpp"
#include "util/workload.hpp"

namespace {

constexpr std::size_t kN = 1u << 21;
constexpr std::uint64_t kUniverse = 1u << 18;

using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

double run_ms(std::vector<std::uint64_t> data, pwss::sched::Scheduler* s,
              bool random_pivot) {
  pwss::sort::PESortOptions opts;
  opts.random_pivot = random_pivot;
  pwss::bench::WallTimer t;
  pwss::sort::pesort(
      data, [](std::uint64_t x) { return x; }, s, opts);
  return t.seconds() * 1e3;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1"});
  const std::vector<double> thetas = {0.0, 0.99, 1.3};

  pwss::bench::print_header(
      "E3: PESort ms, n=2^21 (rows: theta; cols: workers)",
      {"theta", "H bits", "seq", "p=2", "p=4", "p=8", "rand-pivot p=4"});

  for (const double theta : thetas) {
    const auto keys = pwss::util::zipf_keys(kUniverse, theta, kN, 21);
    const double h = pwss::util::empirical_entropy_bits(keys);
    pwss::bench::print_cell(theta);
    pwss::bench::print_cell(h);
    pwss::bench::print_cell(run_ms(keys, nullptr, false));
    for (const unsigned p : {2u, 4u, 8u}) {
      pwss::sched::Scheduler s(p);
      pwss::bench::print_cell(run_ms(keys, &s, false));
    }
    {
      pwss::sched::Scheduler s(4);
      pwss::bench::print_cell(run_ms(keys, &s, true));
    }
    pwss::bench::end_row();
  }

  {
    std::vector<std::string> cols = {"theta"};
    for (const auto& b : cli.backends) cols.push_back(b + " batch ms");
    pwss::bench::print_header(
        "E3b: same streams as one bulk search pass per 8192-op batch", cols);
    for (const double theta : thetas) {
      const auto keys = pwss::util::zipf_keys(kUniverse, theta, kN, 21);
      pwss::bench::print_cell(theta);
      for (const auto& name : cli.backends) {
        auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
            name, cli.driver);
        pwss::bench::prepopulate(*map, kUniverse);
        pwss::bench::print_cell(
            pwss::bench::chunked_search_ms(*map, keys, 8192));
      }
      pwss::bench::end_row();
    }
  }

  std::printf(
      "\nShape: each row's times shrink with p (span O(log^2 n) << work); "
      "rows with lower H are absolutely faster (entropy bound).\n");
  return 0;
}
