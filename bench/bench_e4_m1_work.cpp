// E4 (Lemma 10 / Theorem 12): combining duplicate operations in a batch is
// what keeps M1 inside the working-set bound. A batch with b operations on
// one hot key should cost O(log n + b) total — near-constant marginal cost
// per duplicate — whereas executing the same operations without combining
// (one singleton batch each) pays Θ(log n) every time.
//
// Ablation, per selected backend (default: m1): "combined" = the batch
// through the bulk run() path; "no-combine" = the same ops as singleton
// run() calls. Shape: m1's combined ns/op falls sharply as the duplicate
// fraction grows; no-combine stays flat; non-combining backends (the
// batched baselines) show no gap.
//
//   ./bench_e4_m1_work [--backend=NAME[,NAME...]]

#include <cstdio>
#include <memory>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "util/workload.hpp"

namespace {

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

constexpr std::size_t kMapSize = 1u << 18;
constexpr std::size_t kBatch = 4096;
constexpr int kReps = 40;

std::unique_ptr<IntDriver> build_map(const std::string& name,
                                     const pwss::driver::Options& opts) {
  auto m = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
  pwss::bench::prepopulate(*m, kMapSize);
  return m;
}

std::vector<IntOp> make_batch(std::size_t size, double dup_fraction,
                              std::size_t universe, std::uint64_t seed) {
  const auto raw =
      pwss::util::duplicate_heavy_batch(universe, size, dup_fraction, seed);
  std::vector<IntOp> ops;
  ops.reserve(raw.size());
  for (const auto& k : raw) ops.push_back(IntOp::search(k.key));
  return ops;
}

}  // namespace

int main(int argc, char** argv) {
  const auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1"});

  pwss::bench::print_header(
      "E4: ns/op vs duplicate fraction (batch=4096, n=2^18)",
      {"backend", "dup frac", "combined", "no-combine", "speedup"});

  for (const auto& name : cli.backends) {
    for (const double dup : {0.0, 0.5, 0.9, 0.99, 1.0}) {
      auto combined = build_map(name, cli.driver);
      auto naive = build_map(name, cli.driver);

      double combined_ns = 0, naive_ns = 0;
      for (int rep = 0; rep < kReps; ++rep) {
        const auto batch =
            make_batch(kBatch, dup, kMapSize, static_cast<std::uint64_t>(rep));
        {
          pwss::bench::WallTimer t;
          combined->run(batch);
          combined_ns += t.ns();
        }
        {
          pwss::bench::WallTimer t;
          for (const auto& op : batch) {
            naive->run(std::vector<IntOp>{op});
          }
          naive_ns += t.ns();
        }
      }
      const double per_combined = combined_ns / (kReps * kBatch);
      const double per_naive = naive_ns / (kReps * kBatch);
      pwss::bench::print_cell(name);
      pwss::bench::print_cell(dup);
      pwss::bench::print_cell(per_combined);
      pwss::bench::print_cell(per_naive);
      pwss::bench::print_cell(per_naive / per_combined);
      pwss::bench::end_row();
    }
  }
  std::printf(
      "\nShape: m1's combined ns/op drops as duplicates grow "
      "(group-operations); no-combine stays roughly flat at Theta(log n) "
      "per op.\n");
  return 0;
}
