// E4 (Lemma 10 / Theorem 12): combining duplicate operations in a batch is
// what keeps M1 inside the working-set bound. A batch with b operations on
// one hot key should cost O(log n + b) total — near-constant marginal cost
// per duplicate — whereas executing the same operations without combining
// (one singleton batch each) pays Θ(log n) every time.
//
// Ablation: "no-combine" = the same M1 structure fed singleton batches.
// Shape: combined ns/op falls sharply as the duplicate fraction grows;
// no-combine stays flat.

#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/m1_map.hpp"
#include "util/workload.hpp"

namespace {

using Map = pwss::core::M1Map<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

Map build_map(std::size_t n) {
  Map m;
  std::vector<IntOp> warm;
  warm.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);
  return m;
}

std::vector<IntOp> make_batch(std::size_t size, double dup_fraction,
                              std::size_t universe, std::uint64_t seed) {
  const auto raw =
      pwss::util::duplicate_heavy_batch(universe, size, dup_fraction, seed);
  std::vector<IntOp> ops;
  ops.reserve(raw.size());
  for (const auto& k : raw) ops.push_back(IntOp::search(k.key));
  return ops;
}

}  // namespace

int main() {
  constexpr std::size_t kMapSize = 1u << 18;
  constexpr std::size_t kBatch = 4096;
  constexpr int kReps = 40;

  pwss::bench::print_header(
      "E4: M1 ns/op vs duplicate fraction (batch=4096, n=2^18)",
      {"dup frac", "combined", "no-combine", "speedup"});

  for (const double dup : {0.0, 0.5, 0.9, 0.99, 1.0}) {
    Map combined = build_map(kMapSize);
    Map naive = build_map(kMapSize);

    double combined_ns = 0, naive_ns = 0;
    for (int rep = 0; rep < kReps; ++rep) {
      const auto batch =
          make_batch(kBatch, dup, kMapSize, static_cast<std::uint64_t>(rep));
      {
        pwss::bench::WallTimer t;
        combined.execute_batch(batch);
        combined_ns += t.ns();
      }
      {
        pwss::bench::WallTimer t;
        for (const auto& op : batch) {
          naive.execute_batch(std::vector<IntOp>{op});
        }
        naive_ns += t.ns();
      }
    }
    const double per_combined = combined_ns / (kReps * kBatch);
    const double per_naive = naive_ns / (kReps * kBatch);
    pwss::bench::print_cell(dup);
    pwss::bench::print_cell(per_combined);
    pwss::bench::print_cell(per_naive);
    pwss::bench::print_cell(per_naive / per_combined);
    pwss::bench::end_row();
  }
  std::printf(
      "\nShape: combined ns/op drops as duplicates grow (group-operations); "
      "no-combine stays roughly flat at Theta(log n) per op.\n");
  return 0;
}
