// E6 (Theorem 4 / Section 7): M2's pipelining makes a *cheap* (hot,
// recently-accessed) operation's latency depend on its own recency
// (span term log r), not on expensive cold operations sharing the
// structure — whereas in M1 a hot op enqueued behind a batch containing a
// cold op waits for the whole Θ(log n) batch ("a cheap operation could be
// blocked by the previous batch", Section 3).
//
// Method: one thread issues hot searches (tiny working set) while a second
// thread issues cold searches (uniform over 2^20 items). We record the hot
// thread's per-op latency distribution for AsyncMap<M1> vs M2.
// Shape: M2's hot-op p95/p99 is less inflated by cold traffic than M1's.

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "core/async_map.hpp"
#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "util/stats.hpp"
#include "util/workload.hpp"

namespace {

constexpr std::size_t kMapSize = 1u << 20;
constexpr std::size_t kHotSet = 16;
constexpr std::size_t kHotOps = 20000;

template <typename SearchFn>
pwss::util::Summary hot_latency_with_cold_traffic(SearchFn&& do_search) {
  std::atomic<bool> stop{false};
  std::thread cold([&] {
    pwss::util::Xoshiro256 rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      do_search(rng.bounded(kMapSize));
    }
  });
  std::vector<double> lat;
  lat.reserve(kHotOps);
  pwss::util::Xoshiro256 rng(7);
  for (std::size_t i = 0; i < kHotOps; ++i) {
    const std::uint64_t key = rng.bounded(kHotSet);
    pwss::bench::WallTimer t;
    do_search(key);
    lat.push_back(t.ns() / 1e3);  // us
  }
  stop = true;
  cold.join();
  return pwss::util::summarize(std::move(lat));
}

void print_summary(const char* name, const pwss::util::Summary& s) {
  pwss::bench::print_cell(std::string(name));
  pwss::bench::print_cell(s.p50);
  pwss::bench::print_cell(s.p95);
  pwss::bench::print_cell(s.p99);
  pwss::bench::print_cell(s.max);
  pwss::bench::end_row();
}

}  // namespace

int main() {
  pwss::bench::print_header(
      "E6: hot-op latency (us) under concurrent cold traffic, n=2^20",
      {"map", "p50", "p95", "p99", "max"});

  {
    pwss::sched::Scheduler scheduler(4);
    pwss::core::AsyncMap<std::uint64_t, std::uint64_t,
                         pwss::core::M1Map<std::uint64_t, std::uint64_t>>
        m1(pwss::core::M1Map<std::uint64_t, std::uint64_t>(&scheduler),
           scheduler);
    {
      // Bulk load: submit everything, then wait once (implicit batching).
      std::vector<pwss::core::OpTicket<std::uint64_t>> tickets(kMapSize);
      for (std::uint64_t i = 0; i < kMapSize; ++i) {
        m1.submit(pwss::core::Op<std::uint64_t, std::uint64_t>::insert(i, i),
                  &tickets[i]);
      }
      for (auto& t : tickets) t.wait();
    }
    const auto s = hot_latency_with_cold_traffic(
        [&](std::uint64_t k) { m1.search(k); });
    print_summary("M1 (batched)", s);
  }
  {
    pwss::sched::Scheduler scheduler(4);
    pwss::core::M2Map<std::uint64_t, std::uint64_t> m2(scheduler);
    std::vector<pwss::core::Op<std::uint64_t, std::uint64_t>> warm;
    for (std::uint64_t i = 0; i < kMapSize; ++i) {
      warm.push_back(
          pwss::core::Op<std::uint64_t, std::uint64_t>::insert(i, i));
    }
    m2.execute_batch(warm);
    m2.quiesce();
    const auto s = hot_latency_with_cold_traffic(
        [&](std::uint64_t k) { m2.search(k); });
    print_summary("M2 (pipelined)", s);
  }

  std::printf(
      "\nShape: M2's hot-op tail (p95/p99) inflates less than M1's when cold "
      "ops share the structure — the pipelined span term is log r, not "
      "log n.\n");
  return 0;
}
