// E6 (Theorem 4 / Section 7): M2's pipelining makes a *cheap* (hot,
// recently-accessed) operation's latency depend on its own recency
// (span term log r), not on expensive cold operations sharing the
// structure — whereas in M1 a hot op enqueued behind a batch containing a
// cold op waits for the whole Θ(log n) batch ("a cheap operation could be
// blocked by the previous batch", Section 3).
//
// Method: one thread issues hot searches (tiny working set) while a second
// thread issues cold searches (uniform over 2^20 items); both go through
// the selected backends' blocking driver API (default: m1 vs m2). We
// record the hot thread's per-op latency distribution.
// Shape: m2's hot-op p95/p99 is less inflated by cold traffic than m1's.
//
//   ./bench_e6_m2_pipeline [--backend=NAME[,NAME...]] [--workers=N]

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::size_t kMapSize = 1u << 20;
constexpr std::size_t kHotSet = 16;
constexpr std::size_t kHotOps = 20000;

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;

pwss::util::Summary hot_latency_with_cold_traffic(IntDriver& map) {
  std::atomic<bool> stop{false};
  std::thread cold([&] {
    pwss::util::Xoshiro256 rng(99);
    while (!stop.load(std::memory_order_relaxed)) {
      map.search(rng.bounded(kMapSize));
    }
  });
  std::vector<double> lat;
  lat.reserve(kHotOps);
  pwss::util::Xoshiro256 rng(7);
  for (std::size_t i = 0; i < kHotOps; ++i) {
    const std::uint64_t key = rng.bounded(kHotSet);
    pwss::bench::WallTimer t;
    map.search(key);
    lat.push_back(t.ns() / 1e3);  // us
  }
  stop = true;
  cold.join();
  return pwss::util::summarize(std::move(lat));
}

}  // namespace

int main(int argc, char** argv) {
  auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1", "m2"});
  if (cli.driver.workers == 0) cli.driver.workers = 4;

  pwss::bench::print_header(
      "E6: hot-op latency (us) under concurrent cold traffic, n=2^20",
      {"backend", "p50", "p95", "p99", "max"});

  for (const auto& name : cli.backends) {
    auto map = pwss::driver::make_driver<std::uint64_t, std::uint64_t>(
        name, cli.driver);
    pwss::bench::prepopulate(*map, kMapSize);
    map->quiesce();

    const auto s = hot_latency_with_cold_traffic(*map);
    pwss::bench::print_cell(name);
    pwss::bench::print_cell(s.p50);
    pwss::bench::print_cell(s.p95);
    pwss::bench::print_cell(s.p99);
    pwss::bench::print_cell(s.max);
    pwss::bench::end_row();
  }

  std::printf(
      "\nShape: m2's hot-op tail (p95/p99) inflates less than m1's when cold "
      "ops share the structure — the pipelined span term is log r, not "
      "log n.\n");
  return 0;
}
