// E10 (ROADMAP: overload robustness): the admission window under offered
// load — what a bounded in-flight window buys and what it costs.
//
// Sweep: offered load (client threads blasting async submissions) x
// window size (--max-in-flight; 0 = unbounded baseline), three series
// per cell:
//   accepted Mops/s  — completed ops that executed (not shed/expired);
//   shed rate        — fraction of submissions refused with kOverloaded
//                      (info-only in compare_baseline.py: more shedding
//                      under a tighter window is the policy working);
//   p99 latency us   — submit-to-completion time of ACCEPTED ops only.
//
// Shape: the unbounded column has the highest accepted throughput but the
// worst latency tail (everything queues); tightening the window trades
// accepted throughput for a bounded tail — the knee is where the window
// matches the pipeline's natural concurrency.
//
//   ./bench_e10_overload [--backend=NAME[,NAME...]] [--workers=N]
//                        [--max-in-flight=N] [--admission=reject|block]
//   (--max-in-flight=N pins the sweep to that single window)

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.hpp"
#include "driver/cli.hpp"
#include "util/stats.hpp"

namespace {

constexpr std::uint64_t kN = 1u << 14;
constexpr std::size_t kOpsPerClient = 20000;
constexpr int kClients = 8;

using IntDriver = pwss::driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = pwss::core::Op<std::uint64_t, std::uint64_t>;
using IntResult = pwss::core::Result<std::uint64_t>;

struct Cell {
  double accepted_mops = 0.0;
  double shed_rate = 0.0;
  double p99_us = 0.0;
};

/// One offered-load run: kClients threads submit searches through the
/// completion-callback form as fast as the admission window lets them.
/// Every submission completes (terminal-status contract), so counting
/// completions by status needs no bookkeeping beyond one slot per op.
Cell offered_load_run(IntDriver& map, unsigned clients) {
  const std::size_t total = kOpsPerClient * clients;
  // One latency slot per op, written only by that op's completion (the
  // fulfilling thread) — racing clients never share a slot. Shed ops
  // record a negative sentinel so the p99 covers accepted ops only.
  std::vector<double> latency_ns(total, -1.0);
  std::atomic<std::size_t> shed{0};

  pwss::bench::WallTimer t;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::size_t base = static_cast<std::size_t>(c) * kOpsPerClient;
      for (std::size_t i = 0; i < kOpsPerClient; ++i) {
        const std::uint64_t start = pwss::core::now_ns();
        const std::size_t slot = base + i;
        map.submit(IntOp::search((slot * 2654435761u) % kN),
                   [&latency_ns, &shed, slot, start](IntResult&& r) {
                     if (r.status ==
                         pwss::core::ResultStatus::kOverloaded) {
                       shed.fetch_add(1, std::memory_order_relaxed);
                     } else {
                       latency_ns[slot] = static_cast<double>(
                           pwss::core::now_ns() - start);
                     }
                   });
      }
    });
  }
  for (auto& th : threads) th.join();
  map.quiesce();
  const double secs = t.seconds();

  std::vector<double> accepted;
  accepted.reserve(total);
  for (const double ns : latency_ns) {
    if (ns >= 0.0) accepted.push_back(ns);
  }
  Cell cell;
  cell.accepted_mops = static_cast<double>(accepted.size()) / secs / 1e6;
  cell.shed_rate =
      static_cast<double>(shed.load()) / static_cast<double>(total);
  cell.p99_us = pwss::util::summarize(std::move(accepted)).p99 / 1e3;
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  argc = pwss::bench::consume_json_flag(argc, argv, "e10");
  auto cli = pwss::driver::parse<std::uint64_t, std::uint64_t>(
      argc, argv, {"m1", "m2"});
  if (cli.driver.workers == 0) cli.driver.workers = 4;
  auto& json = pwss::bench::BenchJson::instance();

  std::vector<std::size_t> windows = {0, 64, 256, 1024};
  if (cli.driver.max_in_flight != 0) windows = {cli.driver.max_in_flight};

  std::vector<std::string> cols = {"clients", "window"};
  for (const auto& b : cli.backends) {
    cols.push_back(b + " Mops");
    cols.push_back(b + " shed");
    cols.push_back(b + " p99us");
  }

  pwss::bench::print_header(
      "E10: offered load x admission window (async search; window 0 = "
      "unbounded)",
      cols);
  for (const unsigned clients : {2u, static_cast<unsigned>(kClients)}) {
    for (const std::size_t window : windows) {
      pwss::bench::print_cell(static_cast<double>(clients));
      pwss::bench::print_cell(static_cast<double>(window));
      for (const auto& name : cli.backends) {
        pwss::driver::Options opts = cli.driver;
        opts.max_in_flight = window;
        auto map =
            pwss::driver::make_driver<std::uint64_t, std::uint64_t>(name,
                                                                    opts);
        pwss::bench::prepopulate(*map, kN);
        const Cell cell = offered_load_run(*map, clients);
        pwss::driver::finish(cli, *map);
        pwss::bench::print_cell(cell.accepted_mops);
        pwss::bench::print_cell(cell.shed_rate);
        pwss::bench::print_cell(cell.p99_us);
        json.record("overload", name, "accepted_ops_per_sec",
                    cell.accepted_mops * 1e6,
                    {{"workers", static_cast<double>(cli.driver.workers)},
                     {"clients", static_cast<double>(clients)},
                     {"window", static_cast<double>(window)}});
        json.record("overload", name, "shed_rate", cell.shed_rate,
                    {{"workers", static_cast<double>(cli.driver.workers)},
                     {"clients", static_cast<double>(clients)},
                     {"window", static_cast<double>(window)}});
        json.record("overload", name, "p99_latency_ns", cell.p99_us * 1e3,
                    {{"workers", static_cast<double>(cli.driver.workers)},
                     {"clients", static_cast<double>(clients)},
                     {"window", static_cast<double>(window)}});
      }
      pwss::bench::end_row();
    }
  }

  std::printf(
      "\nShape: window 0 (unbounded) maximises accepted throughput but "
      "lets the latency tail\ngrow with queue depth; tighter windows shed "
      "load (info-only metric) to bound p99.\n");
  return 0;
}
