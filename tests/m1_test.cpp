// Tests for M1, the batched parallel working-set map (Section 6):
// correctness against a sequential reference, duplicate combining,
// capacity invariants, and parallel/sequential equivalence.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "sched/scheduler.hpp"
#include "store/snapshot.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

using core::M1Map;
using core::Op;
using core::OpType;
using core::Result;
using core::ResultStatus;
using IntOp = Op<int, int>;

// Applies ops in submission order to a std::map and returns the reference
// results (testutil::reference_apply -- the protocol-v2 oracle with
// lower_bound-based ordered kinds). Valid oracle for M1: per-key order is
// preserved, point ops on distinct keys commute, and ordered kinds are
// phase-sliced to observe exactly the preceding point ops.
std::vector<Result<int>> reference_results(std::map<int, int>& ref,
                                           const std::vector<IntOp>& ops) {
  std::vector<Result<int>> out;
  out.reserve(ops.size());
  for (const auto& op : ops) {
    out.push_back(testutil::reference_apply(ref, op));
  }
  return out;
}

void expect_equal_results(const std::vector<Result<int>>& got,
                          const std::vector<Result<int>>& want,
                          const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    testutil::expect_result_eq(got[i], want[i], what, i);
  }
}

TEST(M1, EmptyBatch) {
  M1Map<int, int> m;
  EXPECT_TRUE(m.execute_batch(std::vector<IntOp>{}).empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(M1, SingleInsertAndSearch) {
  M1Map<int, int> m;
  auto r = m.execute_batch({IntOp::insert(1, 10), IntOp::search(1)});
  EXPECT_TRUE(r[0].success());
  EXPECT_TRUE(r[1].success());
  EXPECT_EQ(r[1].value, 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(M1, SearchMissingFails) {
  M1Map<int, int> m;
  auto r = m.execute_batch({IntOp::search(42)});
  EXPECT_FALSE(r[0].success());
  EXPECT_FALSE(r[0].value.has_value());
}

TEST(M1, DuplicateOpsInBatchRespectProgramOrder) {
  M1Map<int, int> m;
  // search(miss), insert, search(hit), erase, search(miss), insert again
  auto r = m.execute_batch({IntOp::search(5), IntOp::insert(5, 50),
                            IntOp::search(5), IntOp::erase(5),
                            IntOp::search(5), IntOp::insert(5, 55)});
  EXPECT_FALSE(r[0].success());
  EXPECT_TRUE(r[1].success());
  EXPECT_EQ(r[2].value, 50);
  EXPECT_EQ(r[3].value, 50);
  EXPECT_FALSE(r[4].success());
  EXPECT_TRUE(r[5].success());
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.search(5), 55);
}

TEST(M1, InsertOnExistingIsUpdate) {
  M1Map<int, int> m;
  m.execute_batch({IntOp::insert(7, 70)});
  auto r = m.execute_batch({IntOp::insert(7, 71)});
  EXPECT_FALSE(r[0].success()) << "update, not fresh insert";
  EXPECT_EQ(m.search(7), 71);
  EXPECT_EQ(m.size(), 1u);
}

TEST(M1, NetDeletionRemovesItem) {
  M1Map<int, int> m;
  m.execute_batch({IntOp::insert(3, 30)});
  auto r = m.execute_batch({IntOp::search(3), IntOp::erase(3)});
  EXPECT_TRUE(r[0].success());
  EXPECT_TRUE(r[1].success());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.search(3).has_value());
}

TEST(M1, LargeBatchBuildsSegments) {
  M1Map<int, int> m;
  std::vector<IntOp> batch;
  for (int i = 0; i < 1000; ++i) batch.push_back(IntOp::insert(i, i));
  m.execute_batch(batch);
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_GE(m.segment_count(), 4u);
  EXPECT_TRUE(m.check_invariants());
  for (int i = 0; i < 1000; i += 97) EXPECT_EQ(m.search(i), i);
}

TEST(M1, InvariantsAfterEveryBatch) {
  util::Xoshiro256 rng(5);
  M1Map<int, int> m;
  std::map<int, int> ref;
  for (int round = 0; round < 60; ++round) {
    const std::size_t b = 1 + rng.bounded(200);
    const std::vector<IntOp> batch = testutil::scripted_ops<int, int>(
        rng.bounded(1u << 30), b, 300, /*with_ordered=*/true);
    const auto got = m.execute_batch(batch);
    const auto want = reference_results(ref, batch);
    expect_equal_results(got, want, "round");
    ASSERT_EQ(m.size(), ref.size()) << "round " << round;
    ASSERT_EQ(m.validate(), "") << "round " << round;
  }
}

TEST(M1, DifferentialManySmallBatches) {
  util::Xoshiro256 rng(11);
  M1Map<int, int> m;
  std::map<int, int> ref;
  for (int round = 0; round < 2000; ++round) {
    const std::size_t b = 1 + rng.bounded(4);
    const std::vector<IntOp> batch = testutil::scripted_ops<int, int>(
        rng.bounded(1u << 30), b, 64, /*with_ordered=*/true);
    expect_equal_results(m.execute_batch(batch), reference_results(ref, batch),
                         "small-batch");
  }
  EXPECT_TRUE(m.check_invariants());
}

// The same differential fuzz, but the map is serialized through the
// store layer's snapshot format at the midpoint and rebuilt from the
// loaded entries — the oracle carries straight across the boundary, so
// any entry the snapshot drops, duplicates, or reorders diverges the
// second half immediately.
TEST(M1, DifferentialFuzzAcrossSnapshotBoundary) {
  util::Xoshiro256 rng(13);
  auto m = std::make_unique<M1Map<int, int>>();
  std::map<int, int> ref;
  char tmpl[] = "/tmp/pwss-m1-snap-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string snap = std::string(tmpl) + "/snapshot";
  for (int round = 0; round < 1000; ++round) {
    if (round == 500) {
      std::vector<std::pair<int, int>> entries;
      m->export_entries(entries);
      store::SnapshotWriter<int, int>::write(snap, round, entries);
      const auto loaded = store::SnapshotReader<int, int>::load(snap);
      m = std::make_unique<M1Map<int, int>>();
      std::vector<IntOp> rebuild;
      rebuild.reserve(loaded.entries.size());
      for (const auto& [k, v] : loaded.entries) {
        rebuild.push_back(IntOp::insert(k, v));
      }
      m->execute_batch(rebuild);
      ASSERT_TRUE(m->check_invariants());
    }
    const std::size_t b = 1 + rng.bounded(4);
    const std::vector<IntOp> batch = testutil::scripted_ops<int, int>(
        rng.bounded(1u << 30), b, 64, /*with_ordered=*/true);
    expect_equal_results(m->execute_batch(batch),
                         reference_results(ref, batch), "snap-boundary");
  }
  EXPECT_TRUE(m->check_invariants());
  std::filesystem::remove_all(tmpl);
}

TEST(M1, DuplicateHeavyBatchesCombine) {
  // A batch of b ops on ONE key must behave like the sequential chain.
  M1Map<int, int> m;
  std::vector<IntOp> warm;
  for (int i = 0; i < 500; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);
  std::vector<IntOp> batch;
  for (int i = 0; i < 1000; ++i) batch.push_back(IntOp::search(250));
  const auto r = m.execute_batch(batch);
  for (const auto& res : r) {
    ASSERT_TRUE(res.success());
    ASSERT_EQ(res.value, 250);
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, AccessedItemPromotedTowardFront) {
  M1Map<int, int> m;
  std::vector<IntOp> warm;
  for (int i = 0; i < 500; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);
  // Repeatedly search one key; it must land in segment 0.
  for (int round = 0; round < 8; ++round) {
    m.execute_batch({IntOp::search(123)});
  }
  EXPECT_EQ(m.segment_of(123), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, OrderedQueriesInMixedBatch) {
  // One batch mixing point and ordered phases: every ordered query must
  // observe exactly the point ops that precede it in submission order.
  M1Map<int, int> m;
  auto r = m.execute_batch(
      {IntOp::insert(10, 100), IntOp::insert(20, 200), IntOp::insert(30, 300),
       IntOp::predecessor(25), IntOp::successor(25),
       IntOp::range_count(10, 30), IntOp::erase(20),
       IntOp::predecessor(25), IntOp::range_count(10, 30),
       IntOp::upsert(10, 111), IntOp::search(10)});
  EXPECT_EQ(r[3].matched_key, 20);
  EXPECT_EQ(r[3].value, 200);
  EXPECT_EQ(r[4].matched_key, 30);
  EXPECT_EQ(r[5].count, 3u);
  EXPECT_TRUE(r[6].success());
  EXPECT_EQ(r[7].matched_key, 10);  // 20 erased by the phase before
  EXPECT_EQ(r[8].count, 2u);
  EXPECT_EQ(r[9].status, ResultStatus::kUpdated);
  EXPECT_EQ(r[10].value, 111);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, OrderedQueriesMissAtBoundaries) {
  M1Map<int, int> m;
  m.execute_batch({IntOp::insert(5, 50), IntOp::insert(7, 70)});
  auto r = m.execute_batch({IntOp::predecessor(5), IntOp::successor(7),
                            IntOp::range_count(8, 100),
                            IntOp::range_count(7, 5)});
  EXPECT_EQ(r[0].status, ResultStatus::kNotFound);  // strictly below 5: none
  EXPECT_EQ(r[1].status, ResultStatus::kNotFound);  // strictly above 7: none
  EXPECT_EQ(r[2].count, 0u);
  EXPECT_EQ(r[3].count, 0u);  // inverted range
}

TEST(M1, DuplicateOrderedQueriesCombine) {
  // A batch of b identical ordered queries coalesces to one tree walk per
  // distinct (type, key, key2); every duplicate must get the same answer.
  M1Map<int, int> m;
  std::vector<IntOp> warm;
  for (int i = 0; i < 500; ++i) warm.push_back(IntOp::insert(i * 2, i));
  m.execute_batch(warm);
  std::vector<IntOp> batch;
  for (int i = 0; i < 800; ++i) {
    batch.push_back(i % 2 == 0 ? IntOp::predecessor(501)
                               : IntOp::range_count(100, 200));
  }
  const auto r = m.execute_batch(batch);
  for (int i = 0; i < 800; ++i) {
    if (i % 2 == 0) {
      ASSERT_EQ(r[i].matched_key, 500) << i;
    } else {
      ASSERT_EQ(r[i].count, 51u) << i;
    }
  }
}

TEST(M1, OrderedQueriesDoNotSelfAdjust) {
  // Ordered kinds are read-only: no promotion, no recency effect.
  M1Map<int, int> m;
  std::vector<IntOp> warm;
  for (int i = 0; i < 500; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);
  const auto depth_before = m.segment_of(123);
  for (int round = 0; round < 8; ++round) {
    m.execute_batch({IntOp::predecessor(124), IntOp::successor(122),
                     IntOp::range_count(123, 123)});
  }
  EXPECT_EQ(m.segment_of(123), depth_before);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, EraseEverything) {
  M1Map<int, int> m;
  std::vector<IntOp> ins, del;
  for (int i = 0; i < 300; ++i) {
    ins.push_back(IntOp::insert(i, i));
    del.push_back(IntOp::erase(i));
  }
  m.execute_batch(ins);
  const auto r = m.execute_batch(del);
  for (const auto& res : r) ASSERT_TRUE(res.success());
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.segment_count(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, ArenaReuseManyBatchesDifferentialVsM0) {
  // The per-instance BatchScratch arena is reused by every execute_batch;
  // a long stream of batches with wildly varying sizes (straddling the
  // pesort small-sort cutoff and shrinking/growing the arena's buffers)
  // must stay exactly equivalent to M0's sequential reference semantics.
  util::Xoshiro256 rng(77);
  M1Map<int, int> m1;
  core::M0Map<int, int> m0;
  const std::size_t sizes[] = {1, 3, 700, 2, 130, 1, 900, 40, 8, 300};
  for (int round = 0; round < 60; ++round) {
    std::vector<IntOp> batch;
    const std::size_t b = sizes[static_cast<std::size_t>(round) % 10];
    for (std::size_t i = 0; i < b; ++i) {
      const int key = static_cast<int>(rng.bounded(256));
      switch (rng.bounded(4)) {
        case 0:
        case 1: batch.push_back(IntOp::insert(key, round * 10000 + static_cast<int>(i))); break;
        case 2: batch.push_back(IntOp::erase(key)); break;
        default: batch.push_back(IntOp::search(key));
      }
    }
    expect_equal_results(m1.execute_batch(batch), m0.execute_batch(batch),
                         "arena-reuse");
    ASSERT_EQ(m1.size(), m0.size()) << "round " << round;
    ASSERT_EQ(m1.validate(), "") << "round " << round;
  }
  ASSERT_EQ(m0.validate(), "");
}

// Parameterized: parallel execution must match sequential execution exactly.
struct M1ParCase {
  std::size_t batch;
  std::size_t rounds;
  std::uint64_t universe;
};

class M1ParallelTest : public ::testing::TestWithParam<M1ParCase> {};

TEST_P(M1ParallelTest, ParallelMatchesSequentialAndReference) {
  const auto [batch_size, rounds, universe] = GetParam();
  sched::Scheduler scheduler(4);
  M1Map<int, int> par(&scheduler);
  M1Map<int, int> seq(nullptr);
  std::map<int, int> ref;
  util::Xoshiro256 rng(batch_size * 31 + rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    const std::vector<IntOp> batch = testutil::scripted_ops<int, int>(
        rng.bounded(1u << 30), batch_size, universe, /*with_ordered=*/true);
    const auto want = reference_results(ref, batch);
    expect_equal_results(par.execute_batch(batch), want, "parallel");
    expect_equal_results(seq.execute_batch(batch), want, "sequential");
    ASSERT_EQ(par.size(), ref.size());
    // Deep-validate (structure + pool accounting, with a precise report)
    // every few rounds; the boolean check covers the rest.
    if (round % 4 == 0) {
      ASSERT_EQ(par.validate(), "") << "round " << round;
    } else {
      ASSERT_TRUE(par.check_invariants()) << "round " << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, M1ParallelTest,
    ::testing::Values(M1ParCase{1, 200, 50}, M1ParCase{16, 60, 100},
                      M1ParCase{256, 25, 400}, M1ParCase{1024, 10, 64},
                      M1ParCase{4096, 6, 1 << 20},
                      M1ParCase{4096, 6, 16}));  // heavy duplicates

}  // namespace
}  // namespace pwss
