// Tests for M1, the batched parallel working-set map (Section 6):
// correctness against a sequential reference, duplicate combining,
// capacity invariants, and parallel/sequential equivalence.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

using core::M1Map;
using core::Op;
using core::OpType;
using core::Result;
using IntOp = Op<int, int>;

// Applies ops in submission order to a std::map and returns the reference
// results. Valid oracle for M1: per-key order is preserved and ops on
// distinct keys commute, so any batch linearization matches this per-op.
std::vector<Result<int>> reference_results(std::map<int, int>& ref,
                                           const std::vector<IntOp>& ops) {
  std::vector<Result<int>> out;
  out.reserve(ops.size());
  for (const auto& op : ops) {
    Result<int> r;
    auto it = ref.find(op.key);
    switch (op.type) {
      case OpType::kSearch:
        r.success = it != ref.end();
        if (r.success) r.value = it->second;
        break;
      case OpType::kInsert:
        r.success = it == ref.end();
        ref[op.key] = op.value;
        break;
      case OpType::kErase:
        r.success = it != ref.end();
        if (r.success) {
          r.value = it->second;
          ref.erase(it);
        }
        break;
    }
    out.push_back(std::move(r));
  }
  return out;
}

void expect_equal_results(const std::vector<Result<int>>& got,
                          const std::vector<Result<int>>& want,
                          const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].success, want[i].success) << what << " op " << i;
    ASSERT_EQ(got[i].value, want[i].value) << what << " op " << i;
  }
}

TEST(M1, EmptyBatch) {
  M1Map<int, int> m;
  EXPECT_TRUE(m.execute_batch(std::vector<IntOp>{}).empty());
  EXPECT_EQ(m.size(), 0u);
}

TEST(M1, SingleInsertAndSearch) {
  M1Map<int, int> m;
  auto r = m.execute_batch({IntOp::insert(1, 10), IntOp::search(1)});
  EXPECT_TRUE(r[0].success);
  EXPECT_TRUE(r[1].success);
  EXPECT_EQ(r[1].value, 10);
  EXPECT_EQ(m.size(), 1u);
}

TEST(M1, SearchMissingFails) {
  M1Map<int, int> m;
  auto r = m.execute_batch({IntOp::search(42)});
  EXPECT_FALSE(r[0].success);
  EXPECT_FALSE(r[0].value.has_value());
}

TEST(M1, DuplicateOpsInBatchRespectProgramOrder) {
  M1Map<int, int> m;
  // search(miss), insert, search(hit), erase, search(miss), insert again
  auto r = m.execute_batch({IntOp::search(5), IntOp::insert(5, 50),
                            IntOp::search(5), IntOp::erase(5),
                            IntOp::search(5), IntOp::insert(5, 55)});
  EXPECT_FALSE(r[0].success);
  EXPECT_TRUE(r[1].success);
  EXPECT_EQ(r[2].value, 50);
  EXPECT_EQ(r[3].value, 50);
  EXPECT_FALSE(r[4].success);
  EXPECT_TRUE(r[5].success);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.search(5), 55);
}

TEST(M1, InsertOnExistingIsUpdate) {
  M1Map<int, int> m;
  m.execute_batch({IntOp::insert(7, 70)});
  auto r = m.execute_batch({IntOp::insert(7, 71)});
  EXPECT_FALSE(r[0].success) << "update, not fresh insert";
  EXPECT_EQ(m.search(7), 71);
  EXPECT_EQ(m.size(), 1u);
}

TEST(M1, NetDeletionRemovesItem) {
  M1Map<int, int> m;
  m.execute_batch({IntOp::insert(3, 30)});
  auto r = m.execute_batch({IntOp::search(3), IntOp::erase(3)});
  EXPECT_TRUE(r[0].success);
  EXPECT_TRUE(r[1].success);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_FALSE(m.search(3).has_value());
}

TEST(M1, LargeBatchBuildsSegments) {
  M1Map<int, int> m;
  std::vector<IntOp> batch;
  for (int i = 0; i < 1000; ++i) batch.push_back(IntOp::insert(i, i));
  m.execute_batch(batch);
  EXPECT_EQ(m.size(), 1000u);
  EXPECT_GE(m.segment_count(), 4u);
  EXPECT_TRUE(m.check_invariants());
  for (int i = 0; i < 1000; i += 97) EXPECT_EQ(m.search(i), i);
}

TEST(M1, InvariantsAfterEveryBatch) {
  util::Xoshiro256 rng(5);
  M1Map<int, int> m;
  std::map<int, int> ref;
  for (int round = 0; round < 60; ++round) {
    std::vector<IntOp> batch;
    const std::size_t b = 1 + rng.bounded(200);
    for (std::size_t i = 0; i < b; ++i) {
      const int key = static_cast<int>(rng.bounded(300));
      switch (rng.bounded(3)) {
        case 0: batch.push_back(IntOp::insert(key, static_cast<int>(rng.bounded(1000)))); break;
        case 1: batch.push_back(IntOp::erase(key)); break;
        default: batch.push_back(IntOp::search(key));
      }
    }
    const auto got = m.execute_batch(batch);
    const auto want = reference_results(ref, batch);
    expect_equal_results(got, want, "round");
    ASSERT_EQ(m.size(), ref.size()) << "round " << round;
    ASSERT_TRUE(m.check_invariants()) << "round " << round;
  }
}

TEST(M1, DifferentialManySmallBatches) {
  util::Xoshiro256 rng(11);
  M1Map<int, int> m;
  std::map<int, int> ref;
  for (int round = 0; round < 2000; ++round) {
    std::vector<IntOp> batch;
    const std::size_t b = 1 + rng.bounded(4);
    for (std::size_t i = 0; i < b; ++i) {
      const int key = static_cast<int>(rng.bounded(64));
      switch (rng.bounded(3)) {
        case 0: batch.push_back(IntOp::insert(key, round)); break;
        case 1: batch.push_back(IntOp::erase(key)); break;
        default: batch.push_back(IntOp::search(key));
      }
    }
    expect_equal_results(m.execute_batch(batch), reference_results(ref, batch),
                         "small-batch");
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, DuplicateHeavyBatchesCombine) {
  // A batch of b ops on ONE key must behave like the sequential chain.
  M1Map<int, int> m;
  std::vector<IntOp> warm;
  for (int i = 0; i < 500; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);
  std::vector<IntOp> batch;
  for (int i = 0; i < 1000; ++i) batch.push_back(IntOp::search(250));
  const auto r = m.execute_batch(batch);
  for (const auto& res : r) {
    ASSERT_TRUE(res.success);
    ASSERT_EQ(res.value, 250);
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, AccessedItemPromotedTowardFront) {
  M1Map<int, int> m;
  std::vector<IntOp> warm;
  for (int i = 0; i < 500; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);
  // Repeatedly search one key; it must land in segment 0.
  for (int round = 0; round < 8; ++round) {
    m.execute_batch({IntOp::search(123)});
  }
  EXPECT_EQ(m.segment_of(123), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, EraseEverything) {
  M1Map<int, int> m;
  std::vector<IntOp> ins, del;
  for (int i = 0; i < 300; ++i) {
    ins.push_back(IntOp::insert(i, i));
    del.push_back(IntOp::erase(i));
  }
  m.execute_batch(ins);
  const auto r = m.execute_batch(del);
  for (const auto& res : r) ASSERT_TRUE(res.success);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.segment_count(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M1, ArenaReuseManyBatchesDifferentialVsM0) {
  // The per-instance BatchScratch arena is reused by every execute_batch;
  // a long stream of batches with wildly varying sizes (straddling the
  // pesort small-sort cutoff and shrinking/growing the arena's buffers)
  // must stay exactly equivalent to M0's sequential reference semantics.
  util::Xoshiro256 rng(77);
  M1Map<int, int> m1;
  core::M0Map<int, int> m0;
  const std::size_t sizes[] = {1, 3, 700, 2, 130, 1, 900, 40, 8, 300};
  for (int round = 0; round < 60; ++round) {
    std::vector<IntOp> batch;
    const std::size_t b = sizes[static_cast<std::size_t>(round) % 10];
    for (std::size_t i = 0; i < b; ++i) {
      const int key = static_cast<int>(rng.bounded(256));
      switch (rng.bounded(4)) {
        case 0:
        case 1: batch.push_back(IntOp::insert(key, round * 10000 + static_cast<int>(i))); break;
        case 2: batch.push_back(IntOp::erase(key)); break;
        default: batch.push_back(IntOp::search(key));
      }
    }
    expect_equal_results(m1.execute_batch(batch), m0.execute_batch(batch),
                         "arena-reuse");
    ASSERT_EQ(m1.size(), m0.size()) << "round " << round;
    ASSERT_TRUE(m1.check_invariants()) << "round " << round;
  }
  ASSERT_TRUE(m0.check_invariants());
}

// Parameterized: parallel execution must match sequential execution exactly.
struct M1ParCase {
  std::size_t batch;
  std::size_t rounds;
  std::uint64_t universe;
};

class M1ParallelTest : public ::testing::TestWithParam<M1ParCase> {};

TEST_P(M1ParallelTest, ParallelMatchesSequentialAndReference) {
  const auto [batch_size, rounds, universe] = GetParam();
  sched::Scheduler scheduler(4);
  M1Map<int, int> par(&scheduler);
  M1Map<int, int> seq(nullptr);
  std::map<int, int> ref;
  util::Xoshiro256 rng(batch_size * 31 + rounds);
  for (std::size_t round = 0; round < rounds; ++round) {
    std::vector<IntOp> batch;
    for (std::size_t i = 0; i < batch_size; ++i) {
      const int key = static_cast<int>(rng.bounded(universe));
      switch (rng.bounded(4)) {
        case 0:
        case 1: batch.push_back(IntOp::insert(key, static_cast<int>(round * 1000 + i))); break;
        case 2: batch.push_back(IntOp::erase(key)); break;
        default: batch.push_back(IntOp::search(key));
      }
    }
    const auto want = reference_results(ref, batch);
    expect_equal_results(par.execute_batch(batch), want, "parallel");
    expect_equal_results(seq.execute_batch(batch), want, "sequential");
    ASSERT_EQ(par.size(), ref.size());
    ASSERT_TRUE(par.check_invariants());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, M1ParallelTest,
    ::testing::Values(M1ParCase{1, 200, 50}, M1ParCase{16, 60, 100},
                      M1ParCase{256, 25, 400}, M1ParCase{1024, 10, 64},
                      M1ParCase{4096, 6, 1 << 20},
                      M1ParCase{4096, 6, 16}));  // heavy duplicates

}  // namespace
}  // namespace pwss
