// Tests for the driver layer: BackendRegistry lookup/extension, Driver's
// scheduler-lifetime ownership, and bulk-vs-blocking result equivalence
// across every registered backend.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/future.hpp"
#include "core/m1_map.hpp"
#include "driver/registry.hpp"
#include "store/durability.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

using IntDriver = driver::Driver<std::uint64_t, std::uint64_t>;
using IntRegistry = driver::BackendRegistry<std::uint64_t, std::uint64_t>;
using IntOp = core::Op<std::uint64_t, std::uint64_t>;

// ---- registry lookup --------------------------------------------------------

TEST(Registry, KnowsAllSevenDefaultBackends) {
  const auto& reg = IntRegistry::instance();
  for (const char* name :
       {"m0", "m1", "m2", "iacono", "splay", "avl", "locked"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    auto d = reg.create(name);
    ASSERT_NE(d, nullptr) << name;
    EXPECT_EQ(d->name(), name);
    EXPECT_EQ(d->size(), 0u);
  }
}

TEST(Registry, UnknownBackendThrowsListingKnownNames) {
  const auto& reg = IntRegistry::instance();
  EXPECT_FALSE(reg.contains("btree"));
  try {
    reg.create("btree");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("btree"), std::string::npos);
    EXPECT_NE(msg.find("m2"), std::string::npos);
  }
}

TEST(Registry, AddRejectsDuplicatesAndAcceptsNewFactories) {
  // Duplicate rejection leaves the process-wide singleton unchanged.
  EXPECT_FALSE(
      IntRegistry::instance().add("m1", "dup", [](const driver::Options&) {
        return std::unique_ptr<IntDriver>();
      }));

  // Extension is one add() call — exercised on a local registry so the
  // singleton (shared by every other test in this process) stays pristine.
  IntRegistry local;
  EXPECT_FALSE(local.contains("m1-2w"));
  ASSERT_TRUE(local.add(
      "m1-2w", "M1 with a two-worker scheduler", [](const driver::Options&) {
        driver::Options pinned;
        pinned.workers = 2;
        return std::make_unique<driver::AsyncDriver<
            std::uint64_t, std::uint64_t,
            core::M1Map<std::uint64_t, std::uint64_t>>>("m1-2w", pinned);
      }));
  EXPECT_FALSE(local.add("m1-2w", "dup", nullptr));
  auto d = local.create("m1-2w");
  ASSERT_NE(d->scheduler(), nullptr);
  EXPECT_EQ(d->scheduler()->worker_count(), 2u);
  EXPECT_TRUE(d->insert(1, 10));
  EXPECT_EQ(d->search(1), 10u);
  EXPECT_FALSE(IntRegistry::instance().contains("m1-2w"));
}

// ---- scheduler lifetime -----------------------------------------------------

TEST(Driver, OwnsSchedulerForParallelBackendsOnly) {
  driver::Options two_workers;
  two_workers.workers = 2;
  for (const char* name : {"m0", "m1", "m2", "iacono", "splay", "avl"}) {
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name,
                                                               two_workers);
    ASSERT_NE(d->scheduler(), nullptr) << name;
    EXPECT_EQ(d->scheduler()->worker_count(), 2u) << name;
  }
  auto locked = driver::make_driver<std::uint64_t, std::uint64_t>("locked");
  EXPECT_EQ(locked->scheduler(), nullptr);
}

TEST(Driver, DestructionQuiescesInFlightWork) {
  // Destroying a driver right after a burst of concurrent submissions must
  // not crash or hang: the front end (and its in-flight tickets) dies
  // before the scheduler the work runs on.
  for (const char* name : {"m0", "m1", "m2", "locked"}) {
    for (int round = 0; round < 3; ++round) {
      auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name);
      std::vector<std::thread> threads;
      for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
          for (std::uint64_t i = 0; i < 500; ++i) {
            d->insert(static_cast<std::uint64_t>(t) * 1000 + i, i);
          }
        });
      }
      for (auto& th : threads) th.join();
      EXPECT_EQ(d->size(), 2000u) << name;
      EXPECT_TRUE(d->check()) << name;
      // d destroyed here, scheduler last.
    }
  }
}

// ---- bulk vs blocking equivalence across backends ---------------------------

class DriverBackendTest : public ::testing::TestWithParam<const char*> {};

std::vector<IntOp> scripted_ops(std::uint64_t seed, std::size_t count,
                                bool with_ordered = false) {
  return testutil::scripted_ops<std::uint64_t, std::uint64_t>(
      seed, count, 200, with_ordered);
}

core::Result<std::uint64_t> reference_apply(
    std::map<std::uint64_t, std::uint64_t>& ref, const IntOp& op) {
  return testutil::reference_apply(ref, op);
}

void expect_matches_reference(std::map<std::uint64_t, std::uint64_t>& ref,
                              const std::vector<IntOp>& ops,
                              const std::vector<core::Result<std::uint64_t>>& got,
                              const char* what) {
  ASSERT_EQ(got.size(), ops.size()) << what;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto want = reference_apply(ref, ops[i]);
    testutil::expect_result_eq(got[i], want, what, i);
  }
}

TEST(Driver, BatchArenasIndependentAcrossInstances) {
  // Each M1 instance owns its BatchScratch arena; interleaving bulk batches
  // across instances (including the sharded driver's per-shard backends,
  // which run shard batches on concurrent threads) must never bleed state.
  driver::Options opts;
  opts.workers = 2;
  auto a = driver::make_driver<std::uint64_t, std::uint64_t>("m1", opts);
  auto b = driver::make_driver<std::uint64_t, std::uint64_t>("m1", opts);
  opts.shards = 2;
  auto c =
      driver::make_driver<std::uint64_t, std::uint64_t>("sharded:m1", opts);
  std::map<std::uint64_t, std::uint64_t> ref_a, ref_b, ref_c;

  util::Xoshiro256 rng(123);
  for (int round = 0; round < 25; ++round) {
    // Different batch shapes per instance in the same round, so any shared
    // buffer would be resized mid-flight by the other instance.
    const auto ops_a = scripted_ops(1000 + round, 1 + rng.bounded(600));
    const auto ops_b = scripted_ops(2000 + round, 1 + rng.bounded(40));
    const auto ops_c = scripted_ops(3000 + round, 1 + rng.bounded(300));
    const auto got_a = a->run(ops_a);
    const auto got_b = b->run(ops_b);
    const auto got_c = c->run(ops_c);
    expect_matches_reference(ref_a, ops_a, got_a, "instance a");
    expect_matches_reference(ref_b, ops_b, got_b, "instance b");
    expect_matches_reference(ref_c, ops_c, got_c, "instance c");
    // Deep-validate all three instances (with failure descriptions)
    // every few rounds; structure churn accumulates across rounds, so
    // late rounds cover states the final check alone would miss.
    if (round % 5 == 4) {
      ASSERT_EQ(a->validate(), "") << "round " << round;
      ASSERT_EQ(b->validate(), "") << "round " << round;
      ASSERT_EQ(c->validate(), "") << "round " << round;
    }
  }
  EXPECT_EQ(a->validate(), "");
  EXPECT_EQ(b->validate(), "");
  EXPECT_EQ(c->validate(), "");
  EXPECT_EQ(a->size(), ref_a.size());
  EXPECT_EQ(b->size(), ref_b.size());
  EXPECT_EQ(c->size(), ref_c.size());
}

TEST_P(DriverBackendTest, BulkAndBlockingAgreeWithReference) {
  const char* name = GetParam();
  driver::Options opts;
  opts.workers = 2;
  auto bulk = driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
  auto blocking =
      driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
  std::map<std::uint64_t, std::uint64_t> ref;

  // Ordered-capable backends get the full v2 op set; splay stays on the
  // point kinds (its refusal is covered by OrderedRefusedWithoutSupport).
  const bool with_ordered = bulk->supports_ordered();
  for (std::uint64_t round = 0; round < 6; ++round) {
    const auto ops = scripted_ops(round * 31 + 5, 300, with_ordered);
    const auto got = bulk->run(ops);
    ASSERT_EQ(got.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto want = reference_apply(ref, ops[i]);
      testutil::expect_result_eq(got[i], want, name, i);
      // The blocking per-op path must produce the identical result.
      switch (ops[i].type) {
        case core::OpType::kSearch: {
          ASSERT_EQ(blocking->search(ops[i].key), want.value)
              << name << " op " << i;
          break;
        }
        case core::OpType::kInsert:
          ASSERT_EQ(blocking->insert(ops[i].key, ops[i].value),
                    want.status == core::ResultStatus::kInserted)
              << name << " op " << i;
          break;
        case core::OpType::kUpsert:
          ASSERT_EQ(blocking->upsert(ops[i].key, ops[i].value), want.status)
              << name << " op " << i;
          break;
        case core::OpType::kErase: {
          ASSERT_EQ(blocking->erase(ops[i].key), want.value)
              << name << " op " << i;
          break;
        }
        case core::OpType::kPredecessor:
        case core::OpType::kSuccessor: {
          const auto hit = ops[i].type == core::OpType::kPredecessor
                               ? blocking->predecessor(ops[i].key)
                               : blocking->successor(ops[i].key);
          if (want.status == core::ResultStatus::kFound) {
            ASSERT_TRUE(hit.has_value()) << name << " op " << i;
            ASSERT_EQ(hit->first, want.matched_key) << name << " op " << i;
            ASSERT_EQ(hit->second, want.value) << name << " op " << i;
          } else {
            ASSERT_FALSE(hit.has_value()) << name << " op " << i;
          }
          break;
        }
        case core::OpType::kRangeCount:
          ASSERT_EQ(blocking->range_count(ops[i].key, ops[i].key2),
                    want.count)
              << name << " op " << i;
          break;
      }
    }
    ASSERT_EQ(bulk->size(), ref.size()) << name;
    ASSERT_EQ(blocking->size(), ref.size()) << name;
  }
  EXPECT_TRUE(bulk->check()) << name;
  EXPECT_TRUE(blocking->check()) << name;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DriverBackendTest,
                         ::testing::Values("m0", "m1", "m2", "iacono",
                                           "splay", "avl", "locked",
                                           "sharded:m1"),
                         [](const auto& info) {
                           return testutil::gtest_safe(info.param);
                         });

// ---- ordered-capability reporting and refusal -------------------------------

TEST(Registry, ReportsOrderedCapabilityPerBackend) {
  const auto& reg = IntRegistry::instance();
  for (const char* name : {"m0", "m1", "m2", "iacono", "avl", "locked",
                           "sharded:m1", "sharded:locked"}) {
    EXPECT_TRUE(reg.supports_ordered(name)) << name;
  }
  EXPECT_FALSE(reg.supports_ordered("splay"));
  EXPECT_FALSE(reg.supports_ordered("sharded:splay"));
  EXPECT_FALSE(reg.supports_ordered("no-such-backend"));
  EXPECT_NO_THROW(reg.require_ordered("m1"));
  try {
    reg.require_ordered("splay");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("splay"), std::string::npos);
    EXPECT_NE(msg.find("ordered"), std::string::npos);
    EXPECT_NE(msg.find("m1"), std::string::npos);  // lists capable backends
  }
}

TEST(Driver, OrderedRefusedWithoutSupport) {
  // Blocking and bulk ordered entry points must refuse on the calling
  // thread with a clear error — never half-execute on a worker. The async
  // submit forms honour the completion-delivery contract instead: the
  // ticket comes back already completed with kUnsupported.
  for (const char* name : {"splay", "sharded:splay"}) {
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name);
    EXPECT_FALSE(d->supports_ordered()) << name;
    d->insert(1, 10);
    EXPECT_THROW((void)d->predecessor(5), std::invalid_argument) << name;
    EXPECT_THROW((void)d->successor(5), std::invalid_argument) << name;
    EXPECT_THROW((void)d->range_count(0, 5), std::invalid_argument) << name;
    EXPECT_THROW((void)d->run({IntOp::insert(2, 20), IntOp::predecessor(5)}),
                 std::invalid_argument)
        << name;
    EXPECT_THROW((void)d->step(IntOp::successor(1)), std::invalid_argument)
        << name;

    // Future form: completed before submit() even returns.
    auto f = d->submit(IntOp::predecessor(1));
    ASSERT_TRUE(f.ready()) << name;
    EXPECT_EQ(f.get().status, core::ResultStatus::kUnsupported) << name;

    // Raw-ticket form: same status, fulfilled synchronously.
    core::OpTicket<std::uint64_t> ticket;
    d->submit(IntOp::successor(1), &ticket);
    ASSERT_TRUE(ticket.ready.load()) << name;
    EXPECT_EQ(ticket.wait().status, core::ResultStatus::kUnsupported) << name;

    // Completion form: callback fires on the calling thread with the error.
    core::ResultStatus seen = core::ResultStatus::kFound;
    d->submit(IntOp::range_count(0, 5),
              [&](core::Result<std::uint64_t>&& r) { seen = r.status; });
    EXPECT_EQ(seen, core::ResultStatus::kUnsupported) << name;

    // The point surface keeps working after every refusal flavour.
    EXPECT_EQ(d->search(1), 10u) << name;
    EXPECT_TRUE(d->check()) << name;
  }
}

// ---- asynchronous submission (futures / tickets / completions) --------------

class DriverSubmitTest : public ::testing::TestWithParam<const char*> {};

TEST_P(DriverSubmitTest, OneThreadOverlapsManyOutstandingOps) {
  // The acceptance demo for the futures API: ONE thread submits the whole
  // script without waiting, holding every future; only then are results
  // collected. With one blocking thread per op this would need kOps
  // threads — here outstanding ops exceed submitting threads by 1024x.
  const char* name = GetParam();
  driver::Options opts;
  opts.workers = 2;
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
  std::map<std::uint64_t, std::uint64_t> ref;
  constexpr std::size_t kOps = 1024;
  const auto ops = scripted_ops(77, kOps, /*with_ordered=*/false);

  std::vector<core::Future<std::uint64_t>> futures;
  futures.reserve(kOps);
  for (const auto& op : ops) futures.push_back(d->submit(op));

  // All ops are in flight (or already done) — nothing has been waited on.
  ASSERT_EQ(futures.size(), kOps);
  for (std::size_t i = 0; i < kOps; ++i) {
    const auto want = reference_apply(ref, ops[i]);
    // Point ops on the same key keep submission order per key, so the
    // sequential oracle is exact even through the async front end.
    testutil::expect_result_eq(futures[i].get(), want, name, i);
  }
  ASSERT_EQ(d->size(), ref.size()) << name;
  EXPECT_TRUE(d->check()) << name;
}

TEST_P(DriverSubmitTest, TicketSubmissionAndCompletionCallbacks) {
  const char* name = GetParam();
  driver::Options opts;
  opts.workers = 2;
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);

  // Raw-ticket form: caller-owned completion slots, zero extra allocation.
  constexpr std::size_t kOps = 256;
  std::vector<core::OpTicket<std::uint64_t>> tickets(kOps);
  for (std::size_t i = 0; i < kOps; ++i) {
    d->submit(IntOp::insert(i, i * 3), &tickets[i]);
  }
  for (std::size_t i = 0; i < kOps; ++i) {
    ASSERT_TRUE(tickets[i].wait().success()) << name << " op " << i;
  }

  // Completion-callback form: delivery on the fulfilling thread.
  std::atomic<std::size_t> done{0};
  std::atomic<std::uint64_t> sum{0};
  for (std::size_t i = 0; i < kOps; ++i) {
    d->submit(IntOp::search(i),
              [&](core::Result<std::uint64_t>&& r) {
                sum.fetch_add(*r.value);
                done.fetch_add(1);
              });
  }
  d->quiesce();
  ASSERT_EQ(done.load(), kOps) << name;
  ASSERT_EQ(sum.load(), 3u * (kOps * (kOps - 1) / 2)) << name;

  // Ordered kinds through the same futures surface.
  if (d->supports_ordered()) {
    auto pred = d->submit(IntOp::predecessor(10));
    auto succ = d->submit(IntOp::successor(10));
    auto cnt = d->submit(IntOp::range_count(0, kOps));
    EXPECT_EQ(pred.get().matched_key, 9u) << name;
    EXPECT_EQ(succ.get().matched_key, 11u) << name;
    EXPECT_EQ(cnt.get().count, kOps) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllWirings, DriverSubmitTest,
                         ::testing::Values("m0", "m1", "m2", "locked",
                                           "sharded:m1", "sharded:m2"),
                         [](const auto& info) {
                           return testutil::gtest_safe(info.param);
                         });

// Differential fuzz that crosses a full checkpoint→restart boundary at
// the midpoint: the driver snapshots + rotates its WAL, is destroyed,
// and a new driver recovers from the same directory while the std::map
// oracle carries straight across. Every post-restart result is checked
// against the oracle, so recovery dropping, duplicating, or reordering
// even one op diverges immediately.
TEST(Driver, DifferentialFuzzAcrossCheckpointRestart) {
  for (const std::string name : {"m1", "sharded:m1"}) {
    char tmpl[] = "/tmp/pwss-driver-ckpt-XXXXXX";
    ASSERT_NE(::mkdtemp(tmpl), nullptr);
    driver::Options opts;
    opts.workers = 2;
    opts.durability = store::DurabilityMode::kSync;
    opts.durability_dir = std::string(tmpl) + "/store";

    std::map<std::uint64_t, std::uint64_t> ref;
    util::Xoshiro256 rng(99);
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
    for (int round = 0; round < 40; ++round) {
      if (round == 20) {
        ASSERT_EQ(d->checkpoint(), "") << name;
        d.reset();
        d = driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
        ASSERT_EQ(d->validate(), "") << name;
        ASSERT_GT(d->stats().recovered_entries, 0u) << name;
      }
      const auto ops = scripted_ops(500 + round, 1 + rng.bounded(60));
      const auto got = d->run(ops);
      ASSERT_EQ(got.size(), ops.size()) << name;
      for (std::size_t i = 0; i < ops.size(); ++i) {
        const auto want = reference_apply(ref, ops[i]);
        testutil::expect_result_eq(got[i], want, name.c_str(), i);
      }
    }
    d->quiesce();
    ASSERT_EQ(d->size(), ref.size()) << name;
    EXPECT_TRUE(d->check()) << name;
    d.reset();
    std::filesystem::remove_all(tmpl);
  }
}

TEST(Driver, ShardedOrderedQueriesScatterGather) {
  // Keys deliberately straddle shard boundaries: predecessor/successor
  // must reduce across every shard's local answer and range counts must
  // sum across shards.
  driver::Options opts;
  opts.workers = 2;
  opts.shards = 4;
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>("sharded:m1",
                                                             opts);
  std::map<std::uint64_t, std::uint64_t> ref;
  for (std::uint64_t k = 0; k < 512; k += 3) {
    d->insert(k, k * 7);
    ref[k] = k * 7;
  }
  for (std::uint64_t probe = 0; probe < 520; probe += 11) {
    const auto want_p =
        reference_apply(ref, IntOp::predecessor(probe));
    const auto want_s = reference_apply(ref, IntOp::successor(probe));
    const auto got_p = d->predecessor(probe);
    const auto got_s = d->successor(probe);
    if (want_p.status == core::ResultStatus::kFound) {
      ASSERT_TRUE(got_p.has_value()) << probe;
      ASSERT_EQ(got_p->first, want_p.matched_key) << probe;
      ASSERT_EQ(got_p->second, want_p.value) << probe;
    } else {
      ASSERT_FALSE(got_p.has_value()) << probe;
    }
    if (want_s.status == core::ResultStatus::kFound) {
      ASSERT_TRUE(got_s.has_value()) << probe;
      ASSERT_EQ(got_s->first, want_s.matched_key) << probe;
    } else {
      ASSERT_FALSE(got_s.has_value()) << probe;
    }
    ASSERT_EQ(d->range_count(probe, probe + 100),
              reference_apply(ref, IntOp::range_count(probe, probe + 100))
                  .count)
        << probe;
  }
  // step()'s single-owner path reduces across shards too.
  const auto stepped = d->step(IntOp::predecessor(500));
  ASSERT_EQ(stepped.matched_key,
            reference_apply(ref, IntOp::predecessor(500)).matched_key);
}

}  // namespace
}  // namespace pwss
