// Tests for the driver layer: BackendRegistry lookup/extension, Driver's
// scheduler-lifetime ownership, and bulk-vs-blocking result equivalence
// across every registered backend.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/m1_map.hpp"
#include "driver/registry.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

using IntDriver = driver::Driver<std::uint64_t, std::uint64_t>;
using IntRegistry = driver::BackendRegistry<std::uint64_t, std::uint64_t>;
using IntOp = core::Op<std::uint64_t, std::uint64_t>;

// ---- registry lookup --------------------------------------------------------

TEST(Registry, KnowsAllSevenDefaultBackends) {
  const auto& reg = IntRegistry::instance();
  for (const char* name :
       {"m0", "m1", "m2", "iacono", "splay", "avl", "locked"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    auto d = reg.create(name);
    ASSERT_NE(d, nullptr) << name;
    EXPECT_EQ(d->name(), name);
    EXPECT_EQ(d->size(), 0u);
  }
}

TEST(Registry, UnknownBackendThrowsListingKnownNames) {
  const auto& reg = IntRegistry::instance();
  EXPECT_FALSE(reg.contains("btree"));
  try {
    reg.create("btree");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("btree"), std::string::npos);
    EXPECT_NE(msg.find("m2"), std::string::npos);
  }
}

TEST(Registry, AddRejectsDuplicatesAndAcceptsNewFactories) {
  // Duplicate rejection leaves the process-wide singleton unchanged.
  EXPECT_FALSE(
      IntRegistry::instance().add("m1", "dup", [](const driver::Options&) {
        return std::unique_ptr<IntDriver>();
      }));

  // Extension is one add() call — exercised on a local registry so the
  // singleton (shared by every other test in this process) stays pristine.
  IntRegistry local;
  EXPECT_FALSE(local.contains("m1-2w"));
  ASSERT_TRUE(local.add(
      "m1-2w", "M1 with a two-worker scheduler", [](const driver::Options&) {
        driver::Options pinned;
        pinned.workers = 2;
        return std::make_unique<driver::AsyncDriver<
            std::uint64_t, std::uint64_t,
            core::M1Map<std::uint64_t, std::uint64_t>>>("m1-2w", pinned);
      }));
  EXPECT_FALSE(local.add("m1-2w", "dup", nullptr));
  auto d = local.create("m1-2w");
  ASSERT_NE(d->scheduler(), nullptr);
  EXPECT_EQ(d->scheduler()->worker_count(), 2u);
  EXPECT_TRUE(d->insert(1, 10));
  EXPECT_EQ(d->search(1), 10u);
  EXPECT_FALSE(IntRegistry::instance().contains("m1-2w"));
}

// ---- scheduler lifetime -----------------------------------------------------

TEST(Driver, OwnsSchedulerForParallelBackendsOnly) {
  driver::Options two_workers;
  two_workers.workers = 2;
  for (const char* name : {"m0", "m1", "m2", "iacono", "splay", "avl"}) {
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name,
                                                               two_workers);
    ASSERT_NE(d->scheduler(), nullptr) << name;
    EXPECT_EQ(d->scheduler()->worker_count(), 2u) << name;
  }
  auto locked = driver::make_driver<std::uint64_t, std::uint64_t>("locked");
  EXPECT_EQ(locked->scheduler(), nullptr);
}

TEST(Driver, DestructionQuiescesInFlightWork) {
  // Destroying a driver right after a burst of concurrent submissions must
  // not crash or hang: the front end (and its in-flight tickets) dies
  // before the scheduler the work runs on.
  for (const char* name : {"m0", "m1", "m2", "locked"}) {
    for (int round = 0; round < 3; ++round) {
      auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name);
      std::vector<std::thread> threads;
      for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
          for (std::uint64_t i = 0; i < 500; ++i) {
            d->insert(static_cast<std::uint64_t>(t) * 1000 + i, i);
          }
        });
      }
      for (auto& th : threads) th.join();
      EXPECT_EQ(d->size(), 2000u) << name;
      EXPECT_TRUE(d->check()) << name;
      // d destroyed here, scheduler last.
    }
  }
}

// ---- bulk vs blocking equivalence across backends ---------------------------

class DriverBackendTest : public ::testing::TestWithParam<const char*> {};

std::vector<IntOp> scripted_ops(std::uint64_t seed, std::size_t count) {
  util::Xoshiro256 rng(seed);
  std::vector<IntOp> ops;
  ops.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t key = rng.bounded(200);
    switch (rng.bounded(4)) {
      case 0:
      case 1: ops.push_back(IntOp::insert(key, seed * 100000 + i)); break;
      case 2: ops.push_back(IntOp::erase(key)); break;
      default: ops.push_back(IntOp::search(key));
    }
  }
  return ops;
}

core::Result<std::uint64_t> reference_apply(
    std::map<std::uint64_t, std::uint64_t>& ref, const IntOp& op) {
  core::Result<std::uint64_t> r;
  const auto it = ref.find(op.key);
  switch (op.type) {
    case core::OpType::kSearch:
      r.success = it != ref.end();
      if (r.success) r.value = it->second;
      break;
    case core::OpType::kInsert:
      r.success = it == ref.end();
      ref[op.key] = op.value;
      break;
    case core::OpType::kErase:
      r.success = it != ref.end();
      if (r.success) {
        r.value = it->second;
        ref.erase(it);
      }
      break;
  }
  return r;
}

void expect_matches_reference(std::map<std::uint64_t, std::uint64_t>& ref,
                              const std::vector<IntOp>& ops,
                              const std::vector<core::Result<std::uint64_t>>& got,
                              const char* what) {
  ASSERT_EQ(got.size(), ops.size()) << what;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto want = reference_apply(ref, ops[i]);
    ASSERT_EQ(got[i].success, want.success) << what << " op " << i;
    ASSERT_EQ(got[i].value, want.value) << what << " op " << i;
  }
}

TEST(Driver, BatchArenasIndependentAcrossInstances) {
  // Each M1 instance owns its BatchScratch arena; interleaving bulk batches
  // across instances (including the sharded driver's per-shard backends,
  // which run shard batches on concurrent threads) must never bleed state.
  driver::Options opts;
  opts.workers = 2;
  auto a = driver::make_driver<std::uint64_t, std::uint64_t>("m1", opts);
  auto b = driver::make_driver<std::uint64_t, std::uint64_t>("m1", opts);
  opts.shards = 2;
  auto c =
      driver::make_driver<std::uint64_t, std::uint64_t>("sharded:m1", opts);
  std::map<std::uint64_t, std::uint64_t> ref_a, ref_b, ref_c;

  util::Xoshiro256 rng(123);
  for (int round = 0; round < 25; ++round) {
    // Different batch shapes per instance in the same round, so any shared
    // buffer would be resized mid-flight by the other instance.
    const auto ops_a = scripted_ops(1000 + round, 1 + rng.bounded(600));
    const auto ops_b = scripted_ops(2000 + round, 1 + rng.bounded(40));
    const auto ops_c = scripted_ops(3000 + round, 1 + rng.bounded(300));
    const auto got_a = a->run(ops_a);
    const auto got_b = b->run(ops_b);
    const auto got_c = c->run(ops_c);
    expect_matches_reference(ref_a, ops_a, got_a, "instance a");
    expect_matches_reference(ref_b, ops_b, got_b, "instance b");
    expect_matches_reference(ref_c, ops_c, got_c, "instance c");
  }
  EXPECT_TRUE(a->check());
  EXPECT_TRUE(b->check());
  EXPECT_TRUE(c->check());
  EXPECT_EQ(a->size(), ref_a.size());
  EXPECT_EQ(b->size(), ref_b.size());
  EXPECT_EQ(c->size(), ref_c.size());
}

TEST_P(DriverBackendTest, BulkAndBlockingAgreeWithReference) {
  const char* name = GetParam();
  driver::Options opts;
  opts.workers = 2;
  auto bulk = driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
  auto blocking =
      driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
  std::map<std::uint64_t, std::uint64_t> ref;

  for (std::uint64_t round = 0; round < 6; ++round) {
    const auto ops = scripted_ops(round * 31 + 5, 300);
    const auto got = bulk->run(ops);
    ASSERT_EQ(got.size(), ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto want = reference_apply(ref, ops[i]);
      ASSERT_EQ(got[i].success, want.success)
          << name << " round " << round << " op " << i;
      ASSERT_EQ(got[i].value, want.value)
          << name << " round " << round << " op " << i;
      // The blocking per-op path must produce the identical result.
      core::Result<std::uint64_t> single;
      switch (ops[i].type) {
        case core::OpType::kSearch: {
          auto v = blocking->search(ops[i].key);
          single.success = v.has_value();
          single.value = v;
          break;
        }
        case core::OpType::kInsert:
          single.success = blocking->insert(ops[i].key, ops[i].value);
          break;
        case core::OpType::kErase: {
          auto v = blocking->erase(ops[i].key);
          single.success = v.has_value();
          single.value = v;
          break;
        }
      }
      ASSERT_EQ(single.success, want.success) << name << " op " << i;
      ASSERT_EQ(single.value, want.value) << name << " op " << i;
    }
    ASSERT_EQ(bulk->size(), ref.size()) << name;
    ASSERT_EQ(blocking->size(), ref.size()) << name;
  }
  EXPECT_TRUE(bulk->check()) << name;
  EXPECT_TRUE(blocking->check()) << name;
}

INSTANTIATE_TEST_SUITE_P(AllBackends, DriverBackendTest,
                         ::testing::Values("m0", "m1", "m2", "iacono",
                                           "splay", "avl", "locked",
                                           "sharded:m1"),
                         [](const auto& info) {
                           return testutil::gtest_safe(info.param);
                         });

}  // namespace
}  // namespace pwss
