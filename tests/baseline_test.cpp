// Tests for the baselines and the MapBackend concept: a typed suite runs
// every backend type — M0/M1/M2 and the four batched baseline adapters —
// through the same differential and semantic checks via the one concept
// surface (execute_batch + size), plus baseline-specific structure tests.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/batched.hpp"
#include "core/backend.hpp"
#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

// ---- typed suite over the MapBackend concept -------------------------------

using K = std::uint64_t;
using V = std::uint64_t;
using IntOp = core::Op<K, V>;

template <typename B>
class MapBackendTypedTest : public ::testing::Test {
 protected:
  MapBackendTypedTest() : scheduler_(2), backend_(make()) {}

  std::unique_ptr<B> make() {
    if constexpr (core::backend_traits<B>::native_async) {
      return std::make_unique<B>(scheduler_);
    } else if constexpr (core::backend_traits<B>::needs_scheduler) {
      return std::make_unique<B>(&scheduler_);
    } else {
      return std::make_unique<B>();
    }
  }

  void settle() {
    if constexpr (requires(B b) { b.quiesce(); }) backend_->quiesce();
  }

  sched::Scheduler scheduler_;
  std::unique_ptr<B> backend_;
};

using BackendTypes =
    ::testing::Types<core::M0Map<K, V>, core::M1Map<K, V>, core::M2Map<K, V>,
                     baseline::BatchedSplay<K, V>, baseline::BatchedAvl<K, V>,
                     baseline::BatchedIacono<K, V>,
                     baseline::BatchedLocked<K, V>>;
TYPED_TEST_SUITE(MapBackendTypedTest, BackendTypes);

TYPED_TEST(MapBackendTypedTest, SatisfiesConcept) {
  static_assert(core::MapBackend<TypeParam, K, V>);
  EXPECT_EQ(this->backend_->size(), 0u);
  EXPECT_TRUE(this->backend_->execute_batch(std::vector<IntOp>{}).empty());
}

TYPED_TEST(MapBackendTypedTest, DifferentialAgainstStdMap) {
  util::Xoshiro256 rng(404);
  std::map<K, V> ref;
  // Backends with ordered support run the full v2 op set (predecessor /
  // successor / range-count / upsert vs the lower_bound oracle); the
  // splay adapter sticks to the point kinds.
  const bool with_ordered = core::backend_traits<TypeParam>::supports_ordered;
  for (int round = 0; round < 20; ++round) {
    const std::size_t b = 1 + rng.bounded(200);
    const auto batch = testutil::scripted_ops<K, V>(rng.bounded(1u << 30), b,
                                                    250, with_ordered);
    const auto got = this->backend_->execute_batch(batch);
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto want = testutil::reference_apply(ref, batch[i]);
      testutil::expect_result_eq(got[i], want, "round", i);
    }
    this->settle();
    ASSERT_EQ(this->backend_->size(), ref.size()) << "round " << round;
  }
}

TYPED_TEST(MapBackendTypedTest, PerKeyProgramOrderWithinBatch) {
  // insert, overwrite, search, erase, search on ONE key in one batch:
  // every backend must realize the per-key program order (Definition 8).
  std::vector<IntOp> batch = {
      IntOp::insert(7, 70),  IntOp::insert(7, 71), IntOp::search(7),
      IntOp::erase(7),       IntOp::search(7),     IntOp::insert(7, 72),
  };
  const auto got = this->backend_->execute_batch(batch);
  ASSERT_EQ(got.size(), 6u);
  EXPECT_TRUE(got[0].success());              // fresh insert
  EXPECT_FALSE(got[1].success());             // overwrite
  ASSERT_TRUE(got[2].value.has_value());
  EXPECT_EQ(*got[2].value, 71u);            // sees the overwrite
  ASSERT_TRUE(got[3].value.has_value());
  EXPECT_EQ(*got[3].value, 71u);            // erase returns the value
  EXPECT_FALSE(got[4].success());             // erased within the batch
  EXPECT_TRUE(got[5].success());              // re-insert is fresh again
  this->settle();
  EXPECT_EQ(this->backend_->size(), 1u);
}

// ---- IaconoMap -----------------------------------------------------------

TEST(IaconoMap, InsertSearchErase) {
  baseline::IaconoMap<int, int> m;
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_TRUE(m.insert(2, 20));
  EXPECT_FALSE(m.insert(1, 11));  // overwrite
  ASSERT_NE(m.search(1), nullptr);
  EXPECT_EQ(*m.search(1), 11);
  EXPECT_EQ(m.search(99), nullptr);
  auto removed = m.erase(2);
  ASSERT_TRUE(removed);
  EXPECT_EQ(*removed, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, InvariantsHoldDuringGrowth) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 2000; ++i) {
    m.insert(i, i);
    if (i % 97 == 0) { ASSERT_TRUE(m.check_invariants()) << "at i=" << i; }
  }
  EXPECT_EQ(m.size(), 2000u);
  EXPECT_GE(m.segment_count(), 4u);  // 2 + 4 + 16 + 256 < 2000
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, AccessedItemMovesToFirstSegment) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 1000; ++i) m.insert(i, i);
  // Key 0 was inserted first; after 999 other insertions it is deep.
  ASSERT_NE(m.search(0), nullptr);
  // Now key 0 must be in segment 0 (most recent).
  EXPECT_EQ(m.segment_of(0), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, WorkingSetInvariantAfterMixedOps) {
  // The r most recently accessed items live in the first ~loglog r
  // segments: access a small hot set repeatedly, then verify all hot items
  // sit in segments 0..1 (capacity 2+4 >= hot set of size 4).
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 5000; ++i) m.insert(i, i);
  for (int round = 0; round < 10; ++round) {
    for (int k : {10, 20, 30, 40}) ASSERT_NE(m.search(k), nullptr);
  }
  int in_first_two = 0;
  for (int k : {10, 20, 30, 40}) {
    if (m.segment_of(k).value_or(99) <= 1) ++in_first_two;
  }
  EXPECT_GE(in_first_two, 2);  // hot set of 4 vs capacity 2+4=6
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, EraseRepairsFullness) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 300; ++i) m.insert(i, i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(m.erase(i * 3).has_value());
    if (i % 10 == 0) { ASSERT_TRUE(m.check_invariants()) << "at i=" << i; }
  }
  EXPECT_EQ(m.size(), 200u);
  EXPECT_TRUE(m.check_invariants());
}

// ---- SplayTree -------------------------------------------------------------

TEST(SplayTree, InsertSearchErase) {
  baseline::SplayTree<int, int> t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.insert(2, 20));
  EXPECT_FALSE(t.insert(5, 55));
  EXPECT_EQ(t.search(5), 55);
  EXPECT_EQ(t.search(3), std::nullopt);
  EXPECT_EQ(t.erase(2), 20);
  EXPECT_EQ(t.erase(2), std::nullopt);
  EXPECT_EQ(t.size(), 1u);
}

TEST(SplayTree, MoveTransfersOwnership) {
  baseline::SplayTree<int, int> t;
  for (int i = 0; i < 100; ++i) t.insert(i, i);
  baseline::SplayTree<int, int> u(std::move(t));
  EXPECT_EQ(u.size(), 100u);
  EXPECT_EQ(u.search(42), 42);
  EXPECT_EQ(t.size(), 0u);  // NOLINT(bugprone-use-after-move): documented
  t = std::move(u);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.search(7), 7);
}

TEST(SplayTree, RepeatedAccessKeepsItemShallow) {
  baseline::SplayTree<int, int> t;
  for (int i = 0; i < 10000; ++i) t.insert(i, i);
  // After splaying key 42, it is at the root: a second search touches one node.
  EXPECT_TRUE(t.search(42).has_value());
  EXPECT_TRUE(t.search(42).has_value());
}

TEST(SplayTree, SequentialInsertDegeneratesUnlikeAvl) {
  // Documents the "no worst-case balance" property (Section 1's critique of
  // unbalanced concurrent BSTs): inserting 0..n-1 in order produces a path.
  baseline::SplayTree<int, int> t;
  const int n = 2000;
  for (int i = 0; i < n; ++i) t.insert(i, i);
  EXPECT_GE(t.height(), static_cast<std::size_t>(n / 2));
}

// ---- AvlMap / LockedMap -----------------------------------------------------

TEST(AvlMap, Basics) {
  baseline::AvlMap<int, int> m;
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_FALSE(m.insert(1, 11));
  EXPECT_EQ(m.search(1), 11);
  EXPECT_EQ(m.erase(1), 10 + 1);
  EXPECT_TRUE(m.empty());
}

TEST(LockedMap, ConcurrentMixedOpsKeepCount) {
  baseline::LockedMap<int, int> m;
  constexpr int kThreads = 8, kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        const int key = static_cast<int>(rng.bounded(1000));
        switch (rng.bounded(3)) {
          case 0: m.insert(key, key); break;
          case 1: m.erase(key); break;
          default: {
            auto v = m.search(key);
            if (v) { EXPECT_EQ(*v, key); }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(m.size(), 1000u);
}


// ---- ordered point surfaces (protocol v2) ---------------------------------

TEST(OrderedBaselines, AvlIaconoLockedAgree) {
  baseline::AvlMap<int, int> avl;
  baseline::IaconoMap<int, int> iac;
  baseline::LockedMap<int, int> locked;
  std::map<int, int> ref;
  util::Xoshiro256 rng(31);
  for (int i = 0; i < 400; ++i) {
    const int k = static_cast<int>(rng.bounded(1000));
    avl.insert(k, k * 3);
    iac.insert(k, k * 3);
    locked.insert(k, k * 3);
    ref[k] = k * 3;
  }
  for (int probe = -5; probe < 1010; probe += 7) {
    auto lb = ref.lower_bound(probe);
    const bool has_pred = lb != ref.begin();
    const auto want_pred = has_pred ? std::optional(*std::prev(lb))
                                    : std::optional<std::pair<const int, int>>();
    auto ub = ref.upper_bound(probe);
    const bool has_succ = ub != ref.end();
    for (const auto& got : {avl.predecessor(probe), iac.predecessor(probe),
                            locked.predecessor(probe)}) {
      ASSERT_EQ(got.has_value(), has_pred) << probe;
      if (has_pred) {
        ASSERT_EQ(got->first, want_pred->first) << probe;
        ASSERT_EQ(got->second, want_pred->second) << probe;
      }
    }
    for (const auto& got : {avl.successor(probe), iac.successor(probe),
                            locked.successor(probe)}) {
      ASSERT_EQ(got.has_value(), has_succ) << probe;
      if (has_succ) {
        ASSERT_EQ(got->first, ub->first) << probe;
      }
    }
    const auto want_count = static_cast<std::uint64_t>(
        std::distance(ref.lower_bound(probe), ref.upper_bound(probe + 100)));
    ASSERT_EQ(avl.range_count(probe, probe + 100), want_count) << probe;
    ASSERT_EQ(iac.range_count(probe, probe + 100), want_count) << probe;
    ASSERT_EQ(locked.range_count(probe, probe + 100), want_count) << probe;
  }
}

TEST(OrderedBaselines, IaconoOrderedQueriesDoNotPromote) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 200; ++i) m.insert(i, i);
  // Deepest items stay put under ordered probing (read-only contract).
  const auto depth = m.segment_of(0);
  for (int r = 0; r < 50; ++r) {
    (void)m.predecessor(1);
    (void)m.successor(-1);
    (void)m.range_count(0, 10);
  }
  EXPECT_EQ(m.segment_of(0), depth);
  EXPECT_TRUE(m.check_invariants());
}

TEST(OrderedBaselines, SplayAdapterRefusesOrderedKinds) {
  // The adapter-level backstop behind the driver's capability check: a
  // splay tree has no bound-search surface, so the batched adapter throws
  // rather than fabricating an answer.
  static_assert(!core::backend_traits<
                baseline::BatchedSplay<K, V>>::supports_ordered);
  static_assert(core::backend_traits<
                baseline::BatchedAvl<K, V>>::supports_ordered);
  baseline::BatchedSplay<K, V> splay;
  splay.insert(1, 10);
  EXPECT_THROW((void)splay.predecessor(5), std::logic_error);
  EXPECT_THROW((void)splay.successor(5), std::logic_error);
  EXPECT_THROW((void)splay.range_count(0, 5), std::logic_error);
  const std::vector<IntOp> batch = {IntOp::predecessor(5)};
  EXPECT_THROW((void)splay.execute_batch(batch), std::logic_error);
}

}  // namespace
}  // namespace pwss
