// Tests for the baselines: Iacono working-set structure, splay tree, AVL
// facade, locked map.
#include <gtest/gtest.h>

#include <map>
#include <thread>
#include <vector>

#include "baseline/avl_map.hpp"
#include "baseline/iacono_map.hpp"
#include "baseline/locked_map.hpp"
#include "baseline/splay_tree.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

// ---- IaconoMap -----------------------------------------------------------

TEST(IaconoMap, InsertSearchErase) {
  baseline::IaconoMap<int, int> m;
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_TRUE(m.insert(2, 20));
  EXPECT_FALSE(m.insert(1, 11));  // overwrite
  ASSERT_NE(m.search(1), nullptr);
  EXPECT_EQ(*m.search(1), 11);
  EXPECT_EQ(m.search(99), nullptr);
  auto removed = m.erase(2);
  ASSERT_TRUE(removed);
  EXPECT_EQ(*removed, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, InvariantsHoldDuringGrowth) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 2000; ++i) {
    m.insert(i, i);
    if (i % 97 == 0) ASSERT_TRUE(m.check_invariants()) << "at i=" << i;
  }
  EXPECT_EQ(m.size(), 2000u);
  EXPECT_GE(m.segment_count(), 4u);  // 2 + 4 + 16 + 256 < 2000
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, AccessedItemMovesToFirstSegment) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 1000; ++i) m.insert(i, i);
  // Key 0 was inserted first; after 999 other insertions it is deep.
  ASSERT_NE(m.search(0), nullptr);
  // Now key 0 must be in segment 0 (most recent).
  const auto& segs = m.segments();
  EXPECT_NE(segs[0].peek(0), nullptr);
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, WorkingSetInvariantAfterMixedOps) {
  // The r most recently accessed items live in the first ~loglog r
  // segments: access a small hot set repeatedly, then verify all hot items
  // sit in segments 0..1 (capacity 2+4 >= hot set of size 4).
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 5000; ++i) m.insert(i, i);
  for (int round = 0; round < 10; ++round) {
    for (int k : {10, 20, 30, 40}) ASSERT_NE(m.search(k), nullptr);
  }
  const auto& segs = m.segments();
  int in_first_two = 0;
  for (int k : {10, 20, 30, 40}) {
    if (segs[0].peek(k) || segs[1].peek(k)) ++in_first_two;
  }
  EXPECT_GE(in_first_two, 2);  // hot set of 4 vs capacity 2+4=6
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, EraseRepairsFullness) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 300; ++i) m.insert(i, i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(m.erase(i * 3).has_value());
    if (i % 10 == 0) ASSERT_TRUE(m.check_invariants()) << "at i=" << i;
  }
  EXPECT_EQ(m.size(), 200u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, DifferentialAgainstStdMap) {
  util::Xoshiro256 rng(31);
  baseline::IaconoMap<int, int> m;
  std::map<int, int> ref;
  for (int step = 0; step < 20000; ++step) {
    const int key = static_cast<int>(rng.bounded(300));
    switch (rng.bounded(3)) {
      case 0: {
        const int val = static_cast<int>(rng.bounded(1000));
        EXPECT_EQ(m.insert(key, val), ref.find(key) == ref.end());
        ref[key] = val;
        break;
      }
      case 1: {
        auto removed = m.erase(key);
        auto it = ref.find(key);
        ASSERT_EQ(removed.has_value(), it != ref.end());
        if (it != ref.end()) ref.erase(it);
        break;
      }
      default: {
        int* v = m.search(key);
        auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v) EXPECT_EQ(*v, it->second);
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  EXPECT_TRUE(m.check_invariants());
}

// ---- SplayTree -------------------------------------------------------------

TEST(SplayTree, InsertSearchErase) {
  baseline::SplayTree<int, int> t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.insert(2, 20));
  EXPECT_FALSE(t.insert(5, 55));
  EXPECT_EQ(t.search(5), 55);
  EXPECT_EQ(t.search(3), std::nullopt);
  EXPECT_EQ(t.erase(2), 20);
  EXPECT_EQ(t.erase(2), std::nullopt);
  EXPECT_EQ(t.size(), 1u);
}

TEST(SplayTree, DifferentialAgainstStdMap) {
  util::Xoshiro256 rng(67);
  baseline::SplayTree<int, int> t;
  std::map<int, int> ref;
  for (int step = 0; step < 30000; ++step) {
    const int key = static_cast<int>(rng.bounded(400));
    switch (rng.bounded(3)) {
      case 0: {
        const int val = static_cast<int>(rng.bounded(1000));
        EXPECT_EQ(t.insert(key, val), ref.find(key) == ref.end());
        ref[key] = val;
        break;
      }
      case 1: {
        auto removed = t.erase(key);
        auto it = ref.find(key);
        ASSERT_EQ(removed.has_value(), it != ref.end());
        if (it != ref.end()) {
          EXPECT_EQ(*removed, it->second);
          ref.erase(it);
        }
        break;
      }
      default: {
        auto v = t.search(key);
        auto it = ref.find(key);
        ASSERT_EQ(v.has_value(), it != ref.end());
        if (v) EXPECT_EQ(*v, it->second);
      }
    }
    ASSERT_EQ(t.size(), ref.size());
  }
}

TEST(SplayTree, RepeatedAccessKeepsItemShallow) {
  baseline::SplayTree<int, int> t;
  for (int i = 0; i < 10000; ++i) t.insert(i, i);
  // After splaying key 42, it is at the root: a second search touches one node.
  EXPECT_TRUE(t.search(42).has_value());
  EXPECT_TRUE(t.search(42).has_value());
}

TEST(SplayTree, SequentialInsertDegeneratesUnlikeAvl) {
  // Documents the "no worst-case balance" property (Section 1's critique of
  // unbalanced concurrent BSTs): inserting 0..n-1 in order produces a path.
  baseline::SplayTree<int, int> t;
  const int n = 2000;
  for (int i = 0; i < n; ++i) t.insert(i, i);
  EXPECT_GE(t.height(), static_cast<std::size_t>(n / 2));
}

// ---- AvlMap / LockedMap -----------------------------------------------------

TEST(AvlMap, Basics) {
  baseline::AvlMap<int, int> m;
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_FALSE(m.insert(1, 11));
  EXPECT_EQ(m.search(1), 11);
  EXPECT_EQ(m.erase(1), 10 + 1);
  EXPECT_TRUE(m.empty());
}

TEST(LockedMap, ConcurrentMixedOpsKeepCount) {
  baseline::LockedMap<int, int> m;
  constexpr int kThreads = 8, kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        const int key = static_cast<int>(rng.bounded(1000));
        switch (rng.bounded(3)) {
          case 0: m.insert(key, key); break;
          case 1: m.erase(key); break;
          default: {
            auto v = m.search(key);
            if (v) EXPECT_EQ(*v, key);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(m.size(), 1000u);
}

}  // namespace
}  // namespace pwss
