// Tests for the baselines and the MapBackend concept: a typed suite runs
// every backend type — M0/M1/M2 and the four batched baseline adapters —
// through the same differential and semantic checks via the one concept
// surface (execute_batch + size), plus baseline-specific structure tests.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "baseline/batched.hpp"
#include "core/backend.hpp"
#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

// ---- typed suite over the MapBackend concept -------------------------------

using K = std::uint64_t;
using V = std::uint64_t;
using IntOp = core::Op<K, V>;

template <typename B>
class MapBackendTypedTest : public ::testing::Test {
 protected:
  MapBackendTypedTest() : scheduler_(2), backend_(make()) {}

  std::unique_ptr<B> make() {
    if constexpr (core::backend_traits<B>::native_async) {
      return std::make_unique<B>(scheduler_);
    } else if constexpr (core::backend_traits<B>::needs_scheduler) {
      return std::make_unique<B>(&scheduler_);
    } else {
      return std::make_unique<B>();
    }
  }

  void settle() {
    if constexpr (requires(B b) { b.quiesce(); }) backend_->quiesce();
  }

  sched::Scheduler scheduler_;
  std::unique_ptr<B> backend_;
};

using BackendTypes =
    ::testing::Types<core::M0Map<K, V>, core::M1Map<K, V>, core::M2Map<K, V>,
                     baseline::BatchedSplay<K, V>, baseline::BatchedAvl<K, V>,
                     baseline::BatchedIacono<K, V>,
                     baseline::BatchedLocked<K, V>>;
TYPED_TEST_SUITE(MapBackendTypedTest, BackendTypes);

TYPED_TEST(MapBackendTypedTest, SatisfiesConcept) {
  static_assert(core::MapBackend<TypeParam, K, V>);
  EXPECT_EQ(this->backend_->size(), 0u);
  EXPECT_TRUE(this->backend_->execute_batch(std::vector<IntOp>{}).empty());
}

TYPED_TEST(MapBackendTypedTest, DifferentialAgainstStdMap) {
  util::Xoshiro256 rng(404);
  std::map<K, V> ref;
  for (int round = 0; round < 20; ++round) {
    std::vector<IntOp> batch;
    const std::size_t b = 1 + rng.bounded(200);
    for (std::size_t i = 0; i < b; ++i) {
      const K key = rng.bounded(250);
      switch (rng.bounded(4)) {
        case 0:
        case 1:
          batch.push_back(IntOp::insert(
              key, static_cast<V>(round) * 100000 + i));
          break;
        case 2: batch.push_back(IntOp::erase(key)); break;
        default: batch.push_back(IntOp::search(key));
      }
    }
    const auto got = this->backend_->execute_batch(batch);
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& op = batch[i];
      const auto it = ref.find(op.key);
      switch (op.type) {
        case core::OpType::kSearch:
          ASSERT_EQ(got[i].success, it != ref.end()) << "round " << round;
          if (it != ref.end()) { ASSERT_EQ(got[i].value, it->second); }
          break;
        case core::OpType::kInsert:
          ASSERT_EQ(got[i].success, it == ref.end()) << "round " << round;
          ref[op.key] = op.value;
          break;
        case core::OpType::kErase:
          ASSERT_EQ(got[i].success, it != ref.end()) << "round " << round;
          if (it != ref.end()) {
            ASSERT_EQ(got[i].value, it->second);
            ref.erase(it);
          }
          break;
      }
    }
    this->settle();
    ASSERT_EQ(this->backend_->size(), ref.size()) << "round " << round;
  }
}

TYPED_TEST(MapBackendTypedTest, PerKeyProgramOrderWithinBatch) {
  // insert, overwrite, search, erase, search on ONE key in one batch:
  // every backend must realize the per-key program order (Definition 8).
  std::vector<IntOp> batch = {
      IntOp::insert(7, 70),  IntOp::insert(7, 71), IntOp::search(7),
      IntOp::erase(7),       IntOp::search(7),     IntOp::insert(7, 72),
  };
  const auto got = this->backend_->execute_batch(batch);
  ASSERT_EQ(got.size(), 6u);
  EXPECT_TRUE(got[0].success);              // fresh insert
  EXPECT_FALSE(got[1].success);             // overwrite
  ASSERT_TRUE(got[2].value.has_value());
  EXPECT_EQ(*got[2].value, 71u);            // sees the overwrite
  ASSERT_TRUE(got[3].value.has_value());
  EXPECT_EQ(*got[3].value, 71u);            // erase returns the value
  EXPECT_FALSE(got[4].success);             // erased within the batch
  EXPECT_TRUE(got[5].success);              // re-insert is fresh again
  this->settle();
  EXPECT_EQ(this->backend_->size(), 1u);
}

// ---- IaconoMap -----------------------------------------------------------

TEST(IaconoMap, InsertSearchErase) {
  baseline::IaconoMap<int, int> m;
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_TRUE(m.insert(2, 20));
  EXPECT_FALSE(m.insert(1, 11));  // overwrite
  ASSERT_NE(m.search(1), nullptr);
  EXPECT_EQ(*m.search(1), 11);
  EXPECT_EQ(m.search(99), nullptr);
  auto removed = m.erase(2);
  ASSERT_TRUE(removed);
  EXPECT_EQ(*removed, 20);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, InvariantsHoldDuringGrowth) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 2000; ++i) {
    m.insert(i, i);
    if (i % 97 == 0) { ASSERT_TRUE(m.check_invariants()) << "at i=" << i; }
  }
  EXPECT_EQ(m.size(), 2000u);
  EXPECT_GE(m.segment_count(), 4u);  // 2 + 4 + 16 + 256 < 2000
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, AccessedItemMovesToFirstSegment) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 1000; ++i) m.insert(i, i);
  // Key 0 was inserted first; after 999 other insertions it is deep.
  ASSERT_NE(m.search(0), nullptr);
  // Now key 0 must be in segment 0 (most recent).
  EXPECT_EQ(m.segment_of(0), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, WorkingSetInvariantAfterMixedOps) {
  // The r most recently accessed items live in the first ~loglog r
  // segments: access a small hot set repeatedly, then verify all hot items
  // sit in segments 0..1 (capacity 2+4 >= hot set of size 4).
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 5000; ++i) m.insert(i, i);
  for (int round = 0; round < 10; ++round) {
    for (int k : {10, 20, 30, 40}) ASSERT_NE(m.search(k), nullptr);
  }
  int in_first_two = 0;
  for (int k : {10, 20, 30, 40}) {
    if (m.segment_of(k).value_or(99) <= 1) ++in_first_two;
  }
  EXPECT_GE(in_first_two, 2);  // hot set of 4 vs capacity 2+4=6
  EXPECT_TRUE(m.check_invariants());
}

TEST(IaconoMap, EraseRepairsFullness) {
  baseline::IaconoMap<int, int> m;
  for (int i = 0; i < 300; ++i) m.insert(i, i);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(m.erase(i * 3).has_value());
    if (i % 10 == 0) { ASSERT_TRUE(m.check_invariants()) << "at i=" << i; }
  }
  EXPECT_EQ(m.size(), 200u);
  EXPECT_TRUE(m.check_invariants());
}

// ---- SplayTree -------------------------------------------------------------

TEST(SplayTree, InsertSearchErase) {
  baseline::SplayTree<int, int> t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.insert(2, 20));
  EXPECT_FALSE(t.insert(5, 55));
  EXPECT_EQ(t.search(5), 55);
  EXPECT_EQ(t.search(3), std::nullopt);
  EXPECT_EQ(t.erase(2), 20);
  EXPECT_EQ(t.erase(2), std::nullopt);
  EXPECT_EQ(t.size(), 1u);
}

TEST(SplayTree, MoveTransfersOwnership) {
  baseline::SplayTree<int, int> t;
  for (int i = 0; i < 100; ++i) t.insert(i, i);
  baseline::SplayTree<int, int> u(std::move(t));
  EXPECT_EQ(u.size(), 100u);
  EXPECT_EQ(u.search(42), 42);
  EXPECT_EQ(t.size(), 0u);  // NOLINT(bugprone-use-after-move): documented
  t = std::move(u);
  EXPECT_EQ(t.size(), 100u);
  EXPECT_EQ(t.search(7), 7);
}

TEST(SplayTree, RepeatedAccessKeepsItemShallow) {
  baseline::SplayTree<int, int> t;
  for (int i = 0; i < 10000; ++i) t.insert(i, i);
  // After splaying key 42, it is at the root: a second search touches one node.
  EXPECT_TRUE(t.search(42).has_value());
  EXPECT_TRUE(t.search(42).has_value());
}

TEST(SplayTree, SequentialInsertDegeneratesUnlikeAvl) {
  // Documents the "no worst-case balance" property (Section 1's critique of
  // unbalanced concurrent BSTs): inserting 0..n-1 in order produces a path.
  baseline::SplayTree<int, int> t;
  const int n = 2000;
  for (int i = 0; i < n; ++i) t.insert(i, i);
  EXPECT_GE(t.height(), static_cast<std::size_t>(n / 2));
}

// ---- AvlMap / LockedMap -----------------------------------------------------

TEST(AvlMap, Basics) {
  baseline::AvlMap<int, int> m;
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_FALSE(m.insert(1, 11));
  EXPECT_EQ(m.search(1), 11);
  EXPECT_EQ(m.erase(1), 10 + 1);
  EXPECT_TRUE(m.empty());
}

TEST(LockedMap, ConcurrentMixedOpsKeepCount) {
  baseline::LockedMap<int, int> m;
  constexpr int kThreads = 8, kOps = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t));
      for (int i = 0; i < kOps; ++i) {
        const int key = static_cast<int>(rng.bounded(1000));
        switch (rng.bounded(3)) {
          case 0: m.insert(key, key); break;
          case 1: m.erase(key); break;
          default: {
            auto v = m.search(key);
            if (v) { EXPECT_EQ(*v, key); }
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(m.size(), 1000u);
}

}  // namespace
}  // namespace pwss
