// Protocol-level tests for the M2 locking machinery: dedicated locks with
// many keys under scheduler load, CPS lock chains (the front-lock pattern),
// and ordered-acquisition deadlock freedom.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

#include "sched/scheduler.hpp"
#include "sync/async_gate.hpp"
#include "sync/dedicated_lock.hpp"

namespace pwss {
namespace {

using sync::DedicatedLock;

// Many keys, many concurrent acquirers through the scheduler: mutual
// exclusion and completion.
TEST(DedicatedLockProtocol, ManyKeysUnderSchedulerLoad) {
  sched::Scheduler s(4);
  constexpr std::size_t kKeys = 8;
  constexpr int kRounds = 400;
  DedicatedLock lock(kKeys);
  std::atomic<int> in_critical{0};
  std::atomic<bool> violation{false};
  std::atomic<int> completed{0};
  const auto sink = s.resume_sink(sched::Priority::kLow);

  for (std::size_t key = 0; key < kKeys; ++key) {
    s.spawn([&, key] {
      // Each key's chain re-acquires kRounds times, sequentially. The
      // STORED function must capture itself weakly (a strong self-capture
      // is a shared_ptr cycle and leaks the whole chain closure — LSan
      // caught exactly that); every in-flight continuation re-locks a
      // strong ref, so the function dies with the chain's last hop.
      auto step = std::make_shared<std::function<void(int)>>();
      std::weak_ptr<std::function<void(int)>> wstep = step;
      *step = [&, key, wstep](int remaining) {
        if (remaining == 0) return;
        auto self = wstep.lock();  // callers hold a strong ref
        lock.acquire(
            key,
            [&, key, self, remaining] {
              if (in_critical.fetch_add(1) != 0) violation = true;
              in_critical.fetch_sub(1);
              completed.fetch_add(1);
              lock.release(sink);
              // Continue the chain outside the lock.
              s.spawn([self, remaining] { (*self)(remaining - 1); });
            },
            sink);
      };
      (*step)(kRounds);
    });
  }
  for (int i = 0; i < 20000000 && completed.load() < kRounds * static_cast<int>(kKeys); ++i) {
    std::this_thread::yield();
  }
  EXPECT_EQ(completed.load(), kRounds * static_cast<int>(kKeys));
  EXPECT_FALSE(violation.load());
  EXPECT_FALSE(lock.held());
}

// The M2 front-lock pattern: a chain FL[2] -> FL[1] -> FL[0] acquired in
// descending order by multiple "stages" concurrently must make progress
// and serialize the critical section.
TEST(DedicatedLockProtocol, DescendingChainSerializesWithoutDeadlock) {
  sched::Scheduler s(4);
  std::vector<std::unique_ptr<DedicatedLock>> fl;
  fl.push_back(std::make_unique<DedicatedLock>(3));  // FL[0]
  fl.push_back(std::make_unique<DedicatedLock>(2));  // FL[1]
  fl.push_back(std::make_unique<DedicatedLock>(2));  // FL[2]
  const auto sink = s.resume_sink(sched::Priority::kHigh);

  std::atomic<int> in_front{0};
  std::atomic<bool> violation{false};
  std::atomic<int> completed{0};
  constexpr int kRunsPerStage = 200;

  // stage j acquires FL[j] (key 0), then FL[j-1..0] (key 1), runs, releases.
  // Same weak-self discipline as above: the stored function captures
  // itself weakly, each pending lock continuation holds a strong ref.
  auto run_stage = [&](std::size_t j) {
    auto acquire_down = std::make_shared<std::function<void(std::size_t)>>();
    std::weak_ptr<std::function<void(std::size_t)>> wdown = acquire_down;
    *acquire_down = [&, j, wdown](std::size_t i) {
      auto self = wdown.lock();  // callers hold a strong ref
      fl[i]->acquire(
          i == j ? 0u : 1u,
          [&, j, i, self] {
            if (i == 0) {
              if (in_front.fetch_add(1) != 0) violation = true;
              in_front.fetch_sub(1);
              for (std::size_t r = 0; r <= j; ++r) fl[r]->release(sink);
              completed.fetch_add(1);
            } else {
              (*self)(i - 1);
            }
          },
          sink);
    };
    (*acquire_down)(j);
  };

  for (int round = 0; round < kRunsPerStage; ++round) {
    for (std::size_t j = 0; j < 3; ++j) {
      s.spawn([&, j] { run_stage(j); });
      // Interface-like acquirer of FL[0] only (key 2).
      if (j == 0) {
        s.spawn([&] {
          fl[0]->acquire(
              2,
              [&] {
                if (in_front.fetch_add(1) != 0) violation = true;
                in_front.fetch_sub(1);
                fl[0]->release(sink);
                completed.fetch_add(1);
              },
              sink);
        });
      }
    }
    // Throttle spawning so distinct-key discipline holds per lock: wait for
    // this round's acquirers to finish before launching the next round.
    const int target = (round + 1) * 4;
    for (int i = 0; i < 20000000 && completed.load() < target; ++i) {
      std::this_thread::yield();
    }
    ASSERT_EQ(completed.load(), target) << "deadlock or lost continuation";
  }
  EXPECT_FALSE(violation.load());
}

// AsyncGate + scheduler: the ownership protocol never runs the guarded
// body concurrently and never strands a pending request.
TEST(AsyncGateProtocol, SpawnedOwnersNeverOverlapAndDrain) {
  sched::Scheduler s(4);
  sync::AsyncGate gate;
  std::atomic<int> running{0};
  std::atomic<bool> violation{false};
  std::atomic<int> processed{0};
  std::atomic<int> requested{0};

  std::function<void()> tick = [&] {
    for (;;) {
      if (running.fetch_add(1) != 0) violation = true;
      processed.fetch_add(1);
      running.fetch_sub(1);
      if (!gate.finish()) return;
    }
  };

  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        requested.fetch_add(1);
        if (gate.begin()) s.spawn(tick);
      }
    });
  }
  for (auto& th : producers) th.join();
  while (gate.active()) std::this_thread::yield();
  EXPECT_FALSE(violation.load());
  // Every request is covered by a run that started no earlier than it.
  EXPECT_GE(processed.load(), 1);
  EXPECT_LE(processed.load(), requested.load());
}

}  // namespace
}  // namespace pwss
