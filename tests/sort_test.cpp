// Tests for the sorting substrate (prefix sums, three-way partition,
// PPivot, PESort, ESort).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "sched/scheduler.hpp"
#include "sort/esort.hpp"
#include "sort/parallel_primitives.hpp"
#include "sort/pesort.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

TEST(PrefixSum, SequentialSmall) {
  std::vector<std::uint64_t> v = {1, 2, 3, 4};
  EXPECT_EQ(sort::exclusive_prefix_sum(v), 10u);
  EXPECT_EQ(v, (std::vector<std::uint64_t>{0, 1, 3, 6}));
}

TEST(PrefixSum, Empty) {
  std::vector<std::uint64_t> v;
  EXPECT_EQ(sort::exclusive_prefix_sum(v), 0u);
}

TEST(PrefixSum, ParallelMatchesSequential) {
  sched::Scheduler s(4);
  util::Xoshiro256 rng(5);
  std::vector<std::uint64_t> a(100000);
  for (auto& x : a) x = rng.bounded(1000);
  auto b = a;
  const auto ta = sort::exclusive_prefix_sum(a, nullptr);
  const auto tb = sort::exclusive_prefix_sum(b, &s, 1024);
  EXPECT_EQ(ta, tb);
  EXPECT_EQ(a, b);
}

TEST(ThreeWayPartition, BasicStable) {
  // values: pairs (class-relevant key, original index) to verify stability
  std::vector<std::pair<int, int>> in = {{5, 0}, {1, 1}, {3, 2}, {5, 3},
                                         {0, 4}, {3, 5}, {9, 6}};
  std::vector<std::uint8_t> cls;
  for (const auto& [k, idx] : in) cls.push_back(k < 3 ? 0 : (k == 3 ? 1 : 2));
  std::vector<std::pair<int, int>> out(in.size());
  const auto [eq, above] = sort::three_way_partition(
      std::span<const std::pair<int, int>>(in),
      std::span<const std::uint8_t>(cls), std::span<std::pair<int, int>>(out));
  EXPECT_EQ(eq, 2u);
  EXPECT_EQ(above, 4u);
  // Stability: below-class keeps order (1,1) then (0,4); equal keeps (3,2),(3,5).
  EXPECT_EQ(out[0], (std::pair<int, int>{1, 1}));
  EXPECT_EQ(out[1], (std::pair<int, int>{0, 4}));
  EXPECT_EQ(out[2], (std::pair<int, int>{3, 2}));
  EXPECT_EQ(out[3], (std::pair<int, int>{3, 5}));
  EXPECT_EQ(out[4], (std::pair<int, int>{5, 0}));
  EXPECT_EQ(out[5], (std::pair<int, int>{5, 3}));
  EXPECT_EQ(out[6], (std::pair<int, int>{9, 6}));
}

TEST(ThreeWayPartition, ParallelMatchesSequential) {
  sched::Scheduler s(4);
  util::Xoshiro256 rng(17);
  std::vector<int> in(50000);
  std::vector<std::uint8_t> cls(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = static_cast<int>(rng.bounded(1000));
    cls[i] = static_cast<std::uint8_t>(in[i] < 300 ? 0 : (in[i] < 600 ? 1 : 2));
  }
  std::vector<int> out_seq(in.size()), out_par(in.size());
  const auto seq = sort::three_way_partition(
      std::span<const int>(in), std::span<const std::uint8_t>(cls),
      std::span<int>(out_seq));
  const auto par = sort::three_way_partition(
      std::span<const int>(in), std::span<const std::uint8_t>(cls),
      std::span<int>(out_par), &s, 512);
  EXPECT_EQ(seq, par);
  EXPECT_EQ(out_seq, out_par);
}

TEST(PPivot, AlwaysInMiddleQuartiles) {
  util::Xoshiro256 rng(23);
  for (int round = 0; round < 50; ++round) {
    std::vector<int> v(200 + rng.bounded(2000));
    for (auto& x : v) x = static_cast<int>(rng.bounded(100000));
    std::vector<int> med(v.size());
    const int pivot = sort::detail::ppivot(
        std::span<const int>(v), std::span<int>(med),
        [](int x) { return x; }, nullptr);
    std::size_t below = 0, above = 0;
    for (int x : v) {
      below += x < pivot;
      above += pivot < x;
    }
    EXPECT_LE(below, 3 * v.size() / 4);
    EXPECT_LE(above, 3 * v.size() / 4);
  }
}

struct PESortCase {
  std::size_t n;
  double theta;
  bool random_pivot;
  bool parallel;
};

class PESortTest : public ::testing::TestWithParam<PESortCase> {};

TEST_P(PESortTest, SortsAndIsStable) {
  const auto [n, theta, random_pivot, parallel] = GetParam();
  const auto keys = util::zipf_keys(1 << 16, theta, n, 42);
  // Tag each element with its input position to verify stability.
  std::vector<std::pair<std::uint64_t, std::size_t>> v;
  v.reserve(n);
  for (std::size_t i = 0; i < keys.size(); ++i) v.emplace_back(keys[i], i);

  sched::Scheduler scheduler(4);
  sort::PESortOptions opts;
  opts.random_pivot = random_pivot;
  sort::pesort(
      v, [](const auto& p) { return p.first; },
      parallel ? &scheduler : nullptr, opts);

  ASSERT_EQ(v.size(), n);
  for (std::size_t i = 1; i < v.size(); ++i) {
    ASSERT_LE(v[i - 1].first, v[i].first) << "not sorted at " << i;
    if (v[i - 1].first == v[i].first) {
      ASSERT_LT(v[i - 1].second, v[i].second) << "not stable at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PESortTest,
    ::testing::Values(PESortCase{0, 0.0, false, false},
                      PESortCase{1, 0.0, false, false},
                      PESortCase{2, 0.0, false, false},
                      PESortCase{100, 0.0, false, false},
                      PESortCase{10000, 0.0, false, false},
                      PESortCase{10000, 0.99, false, false},
                      PESortCase{10000, 1.2, false, false},
                      PESortCase{10000, 0.99, true, false},
                      PESortCase{100000, 0.0, false, true},
                      PESortCase{100000, 0.99, false, true},
                      PESortCase{100000, 1.2, true, true}));

TEST(PESort, AllEqualKeys) {
  std::vector<std::pair<int, int>> v;
  for (int i = 0; i < 1000; ++i) v.emplace_back(7, i);
  sort::pesort(v, [](const auto& p) { return p.first; });
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(v[static_cast<size_t>(i)].second, i);
}

TEST(PESort, AlreadySorted) {
  std::vector<int> v(5000);
  std::iota(v.begin(), v.end(), 0);
  sort::pesort(v, [](int x) { return x; });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(PESort, ReverseSorted) {
  std::vector<int> v(5000);
  std::iota(v.begin(), v.end(), 0);
  std::reverse(v.begin(), v.end());
  sort::pesort(v, [](int x) { return x; });
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(ESort, SortsWithStableDuplicates) {
  const std::vector<std::uint64_t> input = {5, 3, 5, 1, 3, 5, 1};
  const auto order = sort::esort(input, [](std::uint64_t x) { return x; });
  ASSERT_EQ(order.size(), input.size());
  // Expect keys 1,1,3,3,5,5,5 with positions in input order per key.
  const std::vector<std::size_t> expected = {3, 6, 1, 4, 0, 2, 5};
  EXPECT_EQ(order, expected);
}

TEST(ESort, EmptyInput) {
  const std::vector<std::uint64_t> input;
  EXPECT_TRUE(sort::esort(input, [](std::uint64_t x) { return x; }).empty());
}

TEST(ESort, MatchesStableSortOnRandomInputs) {
  for (const double theta : {0.0, 0.99, 1.3}) {
    const auto input = util::zipf_keys(1 << 10, theta, 5000, 11);
    const auto order = sort::esort(input, [](std::uint64_t x) { return x; });
    // Build the reference stable order.
    std::vector<std::size_t> expected(input.size());
    std::iota(expected.begin(), expected.end(), 0);
    std::stable_sort(expected.begin(), expected.end(),
                     [&](std::size_t a, std::size_t b) {
                       return input[a] < input[b];
                     });
    EXPECT_EQ(order, expected) << "theta=" << theta;
  }
}

TEST(ESort, SingleDistinctKeyLinear) {
  const std::vector<std::uint64_t> input(20000, 9);
  const auto order = sort::esort(input, [](std::uint64_t x) { return x; });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

}  // namespace
}  // namespace pwss
