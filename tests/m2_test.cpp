// Tests for M2, the pipelined parallel working-set map (Section 7):
// functional correctness under the pipeline, filter combining, balance
// invariants (Lemma 16, relaxed), and concurrent clients.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/m2_map.hpp"
#include "sched/scheduler.hpp"
#include "store/snapshot.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

using core::M2Map;
using core::Op;
using core::OpType;
using core::Result;
using core::ResultStatus;
using IntOp = Op<int, int>;

std::vector<Result<int>> reference_results(std::map<int, int>& ref,
                                           const std::vector<IntOp>& ops) {
  std::vector<Result<int>> out;
  out.reserve(ops.size());
  for (const auto& op : ops) {
    out.push_back(testutil::reference_apply(ref, op));
  }
  return out;
}

TEST(M2, Construction) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_GE(m.first_slab_width(), 1u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M2, FirstSlabWidthMatchesFormula) {
  sched::Scheduler scheduler(2);
  // p=4: 2p^2=32, log2=5, log2(5)~2.32 -> ceil 3, +1 = 4.
  M2Map<int, int> m(scheduler, 4);
  EXPECT_EQ(m.first_slab_width(), 4u);
  // p=1: 2p^2=2 -> log2=1 -> log2(1)=0 -> ceil 0 +1 = 1.
  M2Map<int, int> m1(scheduler, 1);
  EXPECT_EQ(m1.first_slab_width(), 1u);
}

TEST(M2, SingleOps) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_FALSE(m.insert(1, 11));
  EXPECT_EQ(m.search(1), 11);
  EXPECT_EQ(m.search(2), std::nullopt);
  EXPECT_EQ(m.erase(1), 11);
  EXPECT_EQ(m.erase(1), std::nullopt);
  m.quiesce();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M2, BatchWithDuplicateKeyChain) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  auto r = m.execute_batch({IntOp::search(5), IntOp::insert(5, 50),
                            IntOp::search(5), IntOp::erase(5),
                            IntOp::search(5), IntOp::insert(5, 55)});
  EXPECT_FALSE(r[0].success());
  EXPECT_TRUE(r[1].success());
  EXPECT_EQ(r[2].value, 50);
  EXPECT_EQ(r[3].value, 50);
  EXPECT_FALSE(r[4].success());
  EXPECT_TRUE(r[5].success());
  m.quiesce();
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.search(5), 55);
}

TEST(M2, BulkInsertAndLookup) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  std::vector<IntOp> batch;
  for (int i = 0; i < 2000; ++i) batch.push_back(IntOp::insert(i, i * 3));
  m.execute_batch(batch);
  m.quiesce();
  EXPECT_EQ(m.size(), 2000u);
  EXPECT_TRUE(m.check_invariants());
  for (int i = 0; i < 2000; i += 101) EXPECT_EQ(m.search(i), i * 3);
}

TEST(M2, DeleteEverything) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  std::vector<IntOp> ins, del;
  for (int i = 0; i < 500; ++i) {
    ins.push_back(IntOp::insert(i, i));
    del.push_back(IntOp::erase(i));
  }
  m.execute_batch(ins);
  auto r = m.execute_batch(del);
  for (const auto& res : r) ASSERT_TRUE(res.success());
  m.quiesce();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M2, DifferentialBatchesAgainstStdMap) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  std::map<int, int> ref;
  util::Xoshiro256 rng(77);
  for (int round = 0; round < 40; ++round) {
    const std::size_t b = 1 + rng.bounded(300);
    // Full protocol-v2 op set: execute_batch slices point/ordered phases,
    // so the submission-order oracle is exact even through the pipeline.
    const std::vector<IntOp> batch = testutil::scripted_ops<int, int>(
        rng.bounded(1u << 30), b, 400, /*with_ordered=*/true);
    const auto got = m.execute_batch(batch);
    const auto want = reference_results(ref, batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      testutil::expect_result_eq(got[i], want[i], "round", i);
    }
    m.quiesce();
    ASSERT_EQ(m.size(), ref.size()) << "round " << round;
    ASSERT_EQ(m.validate(), "") << "round " << round;
  }
}

// Differential fuzz crossing a snapshot→rebuild boundary mid-run: the
// pipeline is quiesced, its contents round-trip through the store
// layer's checksummed snapshot format, and a fresh M2 is bulk-rebuilt
// from the loaded entries while the std::map oracle carries across
// untouched.
TEST(M2, DifferentialFuzzAcrossSnapshotBoundary) {
  sched::Scheduler scheduler(4);
  auto m = std::make_unique<M2Map<int, int>>(scheduler);
  std::map<int, int> ref;
  util::Xoshiro256 rng(78);
  char tmpl[] = "/tmp/pwss-m2-snap-XXXXXX";
  ASSERT_NE(::mkdtemp(tmpl), nullptr);
  const std::string snap = std::string(tmpl) + "/snapshot";
  for (int round = 0; round < 30; ++round) {
    if (round == 15) {
      m->quiesce();
      std::vector<std::pair<int, int>> entries;
      m->export_entries(entries);
      store::SnapshotWriter<int, int>::write(snap, round, entries);
      const auto loaded = store::SnapshotReader<int, int>::load(snap);
      m = std::make_unique<M2Map<int, int>>(scheduler);
      std::vector<IntOp> rebuild;
      rebuild.reserve(loaded.entries.size());
      for (const auto& [k, v] : loaded.entries) {
        rebuild.push_back(IntOp::insert(k, v));
      }
      m->execute_batch(rebuild);
      m->quiesce();
      ASSERT_EQ(m->size(), ref.size());
      ASSERT_EQ(m->validate(), "");
    }
    const std::size_t b = 1 + rng.bounded(300);
    const std::vector<IntOp> batch = testutil::scripted_ops<int, int>(
        rng.bounded(1u << 30), b, 400, /*with_ordered=*/true);
    const auto got = m->execute_batch(batch);
    const auto want = reference_results(ref, batch);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      testutil::expect_result_eq(got[i], want[i], "snap round", i);
    }
  }
  m->quiesce();
  EXPECT_EQ(m->validate(), "");
  std::filesystem::remove_all(tmpl);
}

TEST(M2, RepeatedAccessPromotesTowardFront) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  std::vector<IntOp> warm;
  for (int i = 0; i < 3000; ++i) warm.push_back(IntOp::insert(i, i));
  m.execute_batch(warm);
  m.quiesce();
  for (int round = 0; round < 12; ++round) {
    EXPECT_EQ(m.search(1234), 1234);
  }
  m.quiesce();
  const auto seg = m.segment_of(1234);
  ASSERT_TRUE(seg.has_value());
  EXPECT_LE(*seg, m.first_slab_width())
      << "hot item should live in or near the first slab";
}

TEST(M2, FilterDrainsAtQuiescence) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  std::vector<IntOp> batch;
  for (int i = 0; i < 5000; ++i) {
    batch.push_back(IntOp::insert(i % 100, i));  // heavy same-key traffic
  }
  m.execute_batch(batch);
  m.quiesce();
  EXPECT_EQ(m.filter_occupancy(), 0u);
  EXPECT_EQ(m.size(), 100u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M2, ConcurrentClientsDisjointKeys) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler);
  std::atomic<bool> ok{true};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        const int key = t * 100000 + i;
        if (!m.insert(key, i)) ok = false;
        auto v = m.search(key);
        if (!v || *v != i) ok = false;
        if (m.erase(key) != i) ok = false;
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_TRUE(ok.load());
  m.quiesce();
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M2, ConcurrentClientsSharedHotKeys) {
  sched::Scheduler scheduler(4);
  M2Map<std::uint64_t, std::uint64_t> m(scheduler);
  constexpr int kThreads = 6, kOps = 2000;
  std::atomic<std::uint64_t> hits{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 7 + 1);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t key = rng.bounded(64);  // hot shared set
        switch (rng.bounded(3)) {
          case 0: m.insert(key, key * 10); break;
          case 1: m.erase(key); break;
          default: {
            auto v = m.search(key);
            if (v) {
              EXPECT_EQ(*v, key * 10);
              hits.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  m.quiesce();
  EXPECT_GT(hits.load(), 0u);
  EXPECT_LE(m.size(), 64u);
  EXPECT_TRUE(m.check_invariants());
  EXPECT_EQ(m.filter_occupancy(), 0u);
}

TEST(M2, ManyRoundsStaysSound) {
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler, 2);  // tiny p: small bunches, deep pipeline use
  std::map<int, int> ref;
  util::Xoshiro256 rng(5);
  for (int round = 0; round < 150; ++round) {
    std::vector<IntOp> batch;
    const std::size_t b = 1 + rng.bounded(20);
    for (std::size_t i = 0; i < b; ++i) {
      const int key = static_cast<int>(rng.bounded(128));
      switch (rng.bounded(3)) {
        case 0: batch.push_back(IntOp::insert(key, round)); break;
        case 1: batch.push_back(IntOp::erase(key)); break;
        default: batch.push_back(IntOp::search(key));
      }
    }
    const auto got = m.execute_batch(batch);
    const auto want = reference_results(ref, batch);
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].success(), want[i].success()) << round << ":" << i;
      ASSERT_EQ(got[i].value, want[i].value) << round << ":" << i;
    }
    // Deep-validate the whole pipeline (segments, filter, pool domain)
    // periodically; the validator needs quiescence, so don't pay that
    // barrier every round.
    if (round % 25 == 24) {
      m.quiesce();
      ASSERT_EQ(m.validate(), "") << "round " << round;
    }
  }
  m.quiesce();
  EXPECT_EQ(m.size(), ref.size());
  EXPECT_EQ(m.validate(), "");
}


TEST(M2, OrderedQueriesSeeTheWholePipeline) {
  // Items deliberately spread across the first slab AND deep final-slab
  // stages; the global ordered read must snapshot every segment under the
  // full lock chain.
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler, 2);  // small p: deep pipeline sooner
  std::vector<IntOp> warm;
  for (int i = 0; i < 5000; ++i) warm.push_back(IntOp::insert(i * 2, i));
  m.execute_batch(warm);
  m.quiesce();
  // Hot keys migrate forward; cold keys sink into the final slab.
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 64; ++i) m.search(i * 2);
  }
  m.quiesce();
  EXPECT_EQ(m.predecessor(5001)->first, 5000);
  EXPECT_EQ(m.predecessor(1)->first, 0);
  EXPECT_EQ(m.successor(4)->first, 6);
  EXPECT_FALSE(m.successor(9998).has_value());
  EXPECT_EQ(m.range_count(0, 9998), 5000u);
  EXPECT_EQ(m.range_count(100, 198), 50u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M2, ConcurrentOrderedAndPointClients) {
  // Ordered readers run the full-lock-chain read while writers keep the
  // pipeline busy; every predecessor answer must be a key some client
  // inserted (monotone key space: answers can lag but never corrupt).
  sched::Scheduler scheduler(4);
  M2Map<int, int> m(scheduler, 2);
  for (int i = 0; i < 1000; ++i) m.insert(i, i);
  m.quiesce();

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    int next = 1000;
    while (!stop.load(std::memory_order_acquire)) {
      m.insert(next, next);
      ++next;
    }
  });
  std::thread eraser([&] {
    int next = 0;
    while (!stop.load(std::memory_order_acquire) && next < 400) {
      m.erase(next);
      ++next;
    }
  });
  for (int round = 0; round < 300; ++round) {
    const auto hit = m.predecessor(100000);
    ASSERT_TRUE(hit.has_value());
    ASSERT_GE(hit->first, 999);
    ASSERT_EQ(hit->second, hit->first);
    const auto cnt = m.range_count(0, 100000);
    ASSERT_GE(cnt, 600u);
  }
  stop.store(true, std::memory_order_release);
  writer.join();
  eraser.join();
  m.quiesce();
  EXPECT_EQ(m.validate(), "");
}

}  // namespace
}  // namespace pwss
