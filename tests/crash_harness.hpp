#pragma once
// Fork-based crash harness (DESIGN.md "Durability & recovery"): the
// proof layer behind the durability subsystem's acked⇒durable contract.
//
// One scenario = one fork. The CHILD builds a driver with sync
// durability over a scratch directory, arms one crash point
// (crashpt::arm(site, nth)), and runs a seeded sequential workload,
// appending ONE byte to an ack file after each op completes — so the
// ack file's size is exactly the count of acked ops when the armed site
// calls _exit(42) mid-persistence. The PARENT waits, re-opens the same
// directory through the ordinary registry path (recover → replay →
// validate → arm), and asserts the recovered contents are EXACTLY some
// prefix of the deterministic op script no shorter than the acked
// count:
//
//   * every acked op is present (no acked-op loss under sync), and
//   * the state matches a prefix boundary (no half-applied op — an
//     unacked op is either fully in or fully out).
//
// The workload is strictly sequential (run_blocking), so at most a
// handful of ops past the acked count can have logged before the
// crash; the parent scans prefixes [acked, acked + kMaxInFlight].
//
// fork() is safe here because each scenario forks from the gtest main
// thread before the child constructs its driver (worker threads only
// ever exist inside one side of the fork).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "driver/registry.hpp"
#include "store/format.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace pwss::testutil {

struct CrashScenario {
  std::string backend;      // registry name (m0, m1, m2, sharded:m1, ...)
  std::string site;         // crash-point site to arm in the child
  std::uint64_t nth = 1;    // 1-based hit index that dies
  std::uint64_t seed = 1;   // workload script seed
  std::size_t total_ops = 160;
  std::size_t checkpoint_at = 80;  // ops before the child checkpoints
  std::uint64_t universe = 64;     // key universe (small: erases collide)
};

/// The deterministic mutation-heavy script both sides derive from the
/// seed. Mutations only — reads exercise nothing the recovery assertions
/// can observe, and an all-mutation script hits every WAL site hard.
inline std::vector<core::Op<std::uint64_t, std::uint64_t>> crash_script(
    const CrashScenario& sc) {
  using Op = core::Op<std::uint64_t, std::uint64_t>;
  util::Xoshiro256 rng(sc.seed);
  std::vector<Op> ops;
  ops.reserve(sc.total_ops);
  for (std::size_t i = 0; i < sc.total_ops; ++i) {
    const std::uint64_t key = rng.bounded(sc.universe);
    const std::uint64_t value = sc.seed * 1'000'000 + i;
    switch (rng.bounded(4)) {
      case 0:
        ops.push_back(Op::erase(key));
        break;
      case 1:
        ops.push_back(Op::upsert(key, value));
        break;
      default:
        ops.push_back(Op::insert(key, value));
    }
  }
  return ops;
}

/// Child body: never returns. Exit codes: 42 = armed crash point fired
/// (the interesting case), 0 = workload completed without hitting it,
/// anything else = child bug.
[[noreturn]] inline void run_crash_child(const CrashScenario& sc,
                                         const std::string& dir,
                                         const std::string& ack_path) {
  store::crashpt::arm(sc.site, sc.nth);
  driver::Options opts;
  opts.durability = store::DurabilityMode::kSync;
  opts.durability_dir = dir;
  store::Fd ack(ack_path, O_WRONLY | O_CREAT | O_TRUNC | O_APPEND);
  try {
    auto driver =
        driver::make_driver<std::uint64_t, std::uint64_t>(sc.backend, opts);
    const auto ops = crash_script(sc);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const auto r = driver->run_blocking(ops[i]);
      if (r.is_error()) ::_exit(3);  // unbounded window: nothing may shed
      const char byte = 1;
      ack.write_all(&byte, 1);  // op i acked: persisted per sync contract
      if (i + 1 == sc.checkpoint_at) {
        if (!driver->checkpoint().empty()) ::_exit(4);
      }
    }
  } catch (...) {
    ::_exit(5);
  }
  ::_exit(0);
}

/// Parent body: recover the directory and assert the contract. Returns
/// the child's exit code so sweeps can count fired vs. completed runs.
inline int recover_and_check(const CrashScenario& sc, const std::string& dir,
                             const std::string& ack_path) {
  const std::string label =
      sc.backend + "/" + sc.site + ":" + std::to_string(sc.nth) + " seed " +
      std::to_string(sc.seed);

  pid_t pid = ::fork();
  if (pid == 0) run_crash_child(sc, dir, ack_path);
  EXPECT_GT(pid, 0) << "fork failed for " << label;
  if (pid <= 0) return -1;
  int status = 0;
  EXPECT_EQ(::waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status)) << label << ": child did not exit cleanly";
  const int code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  EXPECT_TRUE(code == 0 || code == store::crashpt::kCrashExitCode)
      << label << ": child exit code " << code;

  std::uint64_t acked = 0;
  {
    store::Fd ack(ack_path, O_RDONLY);
    acked = ack.size();
  }
  const auto ops = crash_script(sc);
  EXPECT_LE(acked, ops.size()) << label;
  if (code == 0) {
    EXPECT_EQ(acked, ops.size()) << label;
  }

  // Recover through the ordinary boot path (validates internally and
  // throws rather than serving a state it cannot certify).
  driver::Options opts;
  opts.durability = store::DurabilityMode::kSync;
  opts.durability_dir = dir;
  std::map<std::uint64_t, std::uint64_t> recovered;
  {
    auto driver =
        driver::make_driver<std::uint64_t, std::uint64_t>(sc.backend, opts);
    EXPECT_EQ(driver->validate(), "") << label;
    for (const auto& [k, v] : driver->export_sorted()) recovered[k] = v;
  }

  // The recovered state must be EXACTLY the script prefix of length M
  // for some M in [acked, acked + kMaxInFlight]: shorter loses an acked
  // op, longer (or no match at all) means a partially-applied or
  // invented op.
  constexpr std::uint64_t kMaxInFlight = 8;
  std::map<std::uint64_t, std::uint64_t> oracle;
  for (std::uint64_t i = 0; i < acked && i < ops.size(); ++i) {
    reference_apply(oracle, ops[i]);
  }
  bool matched = oracle == recovered;
  std::uint64_t matched_at = acked;
  for (std::uint64_t m = acked; !matched && m < ops.size() &&
                                m < acked + kMaxInFlight;
       ++m) {
    reference_apply(oracle, ops[m]);
    matched = oracle == recovered;
    matched_at = m + 1;
  }
  EXPECT_TRUE(matched) << label << ": recovered state (size "
                       << recovered.size()
                       << ") matches no script prefix in [" << acked << ", "
                       << acked + kMaxInFlight << "); acked ops lost or an "
                       << "unacked op half-applied";
  if (matched && matched_at > acked) {
    // Informational: a logged-but-unacked suffix was replayed — legal
    // under the one-sided contract (acked ⇒ durable).
  }
  return code;
}

}  // namespace pwss::testutil
