// Client <-> server integration suite for the network serving layer:
// the differential oracle workload over the wire (loopback TCP and Unix
// socket) across backends, terminal statuses round-tripped from a live
// server, backpressure (connection window + admission control) shed as
// kOverloaded with zero protocol errors, graceful shutdown draining
// every in-flight ticket, and the durability restart round-trip
// (checkpoint, kill server, reboot, reconnect, verify).
//
// Oracle exactness mirrors tests/driver_test.cpp DriverSubmitTest: point
// ops pipelined from one connection keep per-key submission order through
// every wiring (the reactor submits frames in arrival order), so the
// sequential std::map oracle is exact. The ordered kinds do not commute
// with point mutations under sharded scatter/gather, so they run at
// window 1 (one op in flight) where the oracle is exact for them too.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/ops.hpp"
#include "driver/registry.hpp"
#include "net/client.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"
#include "test_util.hpp"
#include "util/fault.hpp"

namespace {

using namespace pwss;
using core::ResultStatus;
using net::WireOp;
using net::WireResult;
using K = std::uint64_t;
using V = std::uint64_t;

/// mkdtemp scratch directory, recursively removed at scope exit. Also
/// provides the Unix-socket path (socket files live fine in tmp).
class ScratchDir {
 public:
  ScratchDir() {
    std::string tmpl = ::testing::TempDir() + "pwss-net-XXXXXX";
    tmpl.push_back('\0');
    char* got = ::mkdtemp(tmpl.data());
    EXPECT_NE(got, nullptr);
    path_ = got == nullptr ? "." : got;
  }
  ~ScratchDir() {
    std::error_code ec;
    std::filesystem::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string file(const std::string& name) const {
    return path_ + "/" + name;
  }

 private:
  std::string path_;
};

struct WireCase {
  std::string backend;
  bool unix_socket;  ///< false = loopback TCP
};

std::string case_name(const ::testing::TestParamInfo<WireCase>& info) {
  return testutil::gtest_safe(info.param.backend +
                              (info.param.unix_socket ? "_unix" : "_tcp"));
}

class NetWireTest : public ::testing::TestWithParam<WireCase> {
 protected:
  void SetUp() override {
    driver_ = driver::make_driver<K, V>(GetParam().backend);
    net::ServerConfig cfg;
    if (GetParam().unix_socket) {
      cfg.unix_path = scratch_.file("serve.sock");
    } else {
      cfg.tcp_addr = "127.0.0.1:0";
    }
    server_ = std::make_unique<net::Server>(*driver_, cfg);
  }

  net::Client dial() {
    if (GetParam().unix_socket) {
      return net::Client::dial_unix(scratch_.file("serve.sock"));
    }
    return net::Client::dial_tcp("127.0.0.1:" +
                                 std::to_string(server_->tcp_port()));
  }

  ScratchDir scratch_;
  std::unique_ptr<driver::Driver<K, V>> driver_;
  std::unique_ptr<net::Server> server_;
};

// The differential oracle workload over the wire: pipelined point ops
// (exact against the sequential oracle), then — where supported — the
// ordered kinds at window 1.
TEST_P(NetWireTest, OracleWorkloadOverTheWire) {
  net::Client client = dial();
  EXPECT_EQ(client.backend(), GetParam().backend);

  std::map<K, V> oracle;
  const auto point_ops =
      testutil::scripted_ops<K, V>(0xA11CE, 2048, 512, /*with_ordered=*/false);
  std::vector<WireResult> results;
  client.run(point_ops, results);
  ASSERT_EQ(results.size(), point_ops.size());
  for (std::size_t i = 0; i < point_ops.size(); ++i) {
    const WireResult want = testutil::reference_apply(oracle, point_ops[i]);
    testutil::expect_result_eq(results[i], want, "wire", i);
  }

  if (client.supports_ordered()) {
    const auto ordered_ops =
        testutil::scripted_ops<K, V>(0x02D3, 256, 512, /*with_ordered=*/true);
    for (std::size_t i = 0; i < ordered_ops.size(); ++i) {
      const WireResult got = client.run_blocking(ordered_ops[i]);
      const WireResult want = testutil::reference_apply(oracle, ordered_ops[i]);
      testutil::expect_result_eq(got, want, "wire-ordered", i);
    }
  } else {
    // The async path delivers kUnsupported over the wire...
    EXPECT_EQ(client.run_blocking(WireOp::predecessor(1)).status,
              ResultStatus::kUnsupported);
    // ...and the blocking conveniences throw on the calling thread,
    // mirroring Driver's contract.
    EXPECT_THROW((void)client.predecessor(1), std::invalid_argument);
  }

  client.close();
  server_->stop();
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
  EXPECT_EQ(driver_->validate(), "");
  // Server-side state equals the oracle's (size; spot keys).
  EXPECT_EQ(driver_->size(), oracle.size());
  for (const auto& [key, value] : oracle) {
    EXPECT_EQ(driver_->search(key), std::optional<V>(value));
  }
}

// Two concurrent client connections, disjoint key ranges: both oracles
// exact, no crosstalk, stats add up.
TEST_P(NetWireTest, TwoConnectionsServeIndependently) {
  std::atomic<bool> failed{false};
  auto worker = [&](std::uint64_t seed, K base) {
    net::Client client = dial();
    auto ops = testutil::scripted_ops<K, V>(seed, 1024, 256, false);
    for (auto& op : ops) op.key += base;  // disjoint ranges
    std::map<K, V> shifted;
    std::vector<WireResult> results;
    client.run(ops, results);
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const WireResult want = testutil::reference_apply(shifted, ops[i]);
      if (results[i].status != want.status || results[i].value != want.value) {
        failed.store(true);
      }
    }
    client.close();
  };
  std::thread a(worker, 1, 0);
  std::thread b(worker, 2, 1'000'000);
  a.join();
  b.join();
  EXPECT_FALSE(failed.load());
  server_->stop();
  const net::NetStats stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, 2u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(driver_->validate(), "");
}

INSTANTIATE_TEST_SUITE_P(
    Backends, NetWireTest,
    ::testing::Values(WireCase{"m0", false}, WireCase{"m0", true},
                      WireCase{"m1", false}, WireCase{"m1", true},
                      WireCase{"m2", false}, WireCase{"m2", true},
                      WireCase{"locked", false}, WireCase{"locked", true},
                      WireCase{"sharded:m1", false},
                      WireCase{"sharded:m1", true},
                      WireCase{"splay", false}),
    case_name);

// ---- backpressure: the two windows compose, frames are never dropped --------

// Per-connection pipeline window: pushing far past it sheds kOverloaded
// ON THE WIRE (counted by the server), with zero protocol errors and
// every non-shed response correct. Search-only on a pre-populated map so
// sheds cannot perturb the expected values.
TEST(NetBackpressure, ConnectionWindowShedsOnWireWithZeroProtocolErrors) {
  auto driver = driver::make_driver<K, V>("m1");
  for (K k = 0; k < 128; ++k) driver->insert(k, k * 10);
  net::ServerConfig cfg;
  cfg.tcp_addr = "127.0.0.1:0";
  cfg.pipeline_window = 2;  // tiny window, easy to overrun
  net::Server server(*driver, cfg);
  net::Client client =
      net::Client::dial_tcp("127.0.0.1:" + std::to_string(server.tcp_port()));
  ASSERT_EQ(client.window(), 2u);

  std::uint64_t shed = 0, executed = 0;
  for (int round = 0; round < 50 && shed == 0; ++round) {
    // Ignore the advertised window on purpose: 256 tickets in flight
    // against a window of 2 must overrun it (the reactor would have to
    // win a completion race 254 times in a row not to).
    std::vector<net::Client::Ticket> tickets(256);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      client.submit(WireOp::search(i % 128), &tickets[i]);
    }
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      const WireResult r = tickets[i].wait();
      if (r.status == ResultStatus::kOverloaded) {
        ++shed;
      } else {
        ASSERT_EQ(r.status, ResultStatus::kFound);
        ASSERT_EQ(r.value, std::optional<V>((i % 128) * 10));
        ++executed;
      }
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(executed, 0u);
  client.close();
  server.stop();
  const net::NetStats stats = server.stats();
  EXPECT_EQ(stats.shed_on_wire, shed);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// Driver-level admission control composes underneath: a full admission
// window also surfaces as kOverloaded over the wire (delivered through
// the completion path, not the connection window).
TEST(NetBackpressure, AdmissionControlShedsThroughTheWire) {
  driver::Options opts;
  opts.max_in_flight = 1;
  opts.admission = driver::AdmissionPolicy::kReject;
  auto driver = driver::make_driver<K, V>("m1", opts);
  net::ServerConfig cfg;
  cfg.tcp_addr = "127.0.0.1:0";
  cfg.pipeline_window = 64;  // wide open: the DRIVER is the bottleneck
  net::Server server(*driver, cfg);
  net::Client client =
      net::Client::dial_tcp("127.0.0.1:" + std::to_string(server.tcp_port()));

  std::uint64_t shed = 0;
  for (int round = 0; round < 50 && shed == 0; ++round) {
    std::vector<net::Client::Ticket> tickets(64);
    for (std::size_t i = 0; i < tickets.size(); ++i) {
      client.submit(WireOp::search(i), &tickets[i]);
    }
    for (auto& t : tickets) {
      const WireResult r = t.wait();
      if (r.status == ResultStatus::kOverloaded) ++shed;
    }
  }
  EXPECT_GT(shed, 0u);
  EXPECT_GT(driver->stats().shed, 0u);  // the DRIVER's counter moved
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

// ---- terminal statuses delivered live ---------------------------------------

// A raw-socket mini-client sends a request whose 1ns relative timeout is
// guaranteed expired by submission time: the server answers kTimedOut on
// the wire (net::Client would have fulfilled it locally — going raw
// proves the SERVER path).
TEST(NetStatuses, ExpiredDeadlineAnswersTimedOutOnTheWire) {
  auto driver = driver::make_driver<K, V>("m1");
  net::ServerConfig cfg;
  cfg.tcp_addr = "127.0.0.1:0";
  net::Server server(*driver, cfg);
  net::OwnedFd fd = net::connect_tcp(
      net::TcpAddr::parse("127.0.0.1:" + std::to_string(server.tcp_port())));

  std::vector<std::uint8_t> out;
  net::encode_hello(out);
  net::Request req;
  req.req_id = 7;
  req.op = core::OpType::kSearch;
  req.key = 1;
  req.timeout_ns = 1;  // expired before the frame even hits the wire
  net::encode_request(out, req);
  net::write_all(fd.get(), out.data(), out.size());

  net::FrameReader reader;
  char buf[4096];
  std::optional<net::Response> response;
  while (!response) {
    const ssize_t n = ::read(fd.get(), buf, sizeof(buf));
    ASSERT_GT(n, 0) << "server closed before answering";
    reader.feed(buf, static_cast<std::size_t>(n));
    while (auto payload = reader.next()) {
      if (net::peek_type(*payload) == net::MsgType::kResponse) {
        response = net::decode_response(*payload);
      }
    }
    ASSERT_EQ(reader.error(), net::ProtoError::kNone);
  }
  EXPECT_EQ(response->req_id, 7u);
  EXPECT_EQ(response->result.status, ResultStatus::kTimedOut);
  fd.reset();
  server.stop();
}

// Client-side screen: an op whose absolute deadline already passed never
// touches the wire.
TEST(NetStatuses, AlreadyExpiredDeadlineFulfilledLocally) {
  auto driver = driver::make_driver<K, V>("m0");
  net::ServerConfig cfg;
  cfg.tcp_addr = "127.0.0.1:0";
  net::Server server(*driver, cfg);
  net::Client client =
      net::Client::dial_tcp("127.0.0.1:" + std::to_string(server.tcp_port()));
  WireOp op = WireOp::search(1);
  op.deadline_ns = 1;  // long past
  EXPECT_EQ(client.run_blocking(op).status, ResultStatus::kTimedOut);
  client.close();
  server.stop();
  EXPECT_EQ(server.stats().frames_in, 2u);  // hello + goodbye only
}

// ---- graceful shutdown ------------------------------------------------------

// stop() during a pipelined burst: every ticket reaches a terminal
// status (executed or kOverloaded-after-drain-started), nothing hangs,
// nothing leaks (the ASan CI leg asserts the latter).
TEST(NetShutdown, StopDrainsInFlightTickets) {
  auto driver = driver::make_driver<K, V>("m2");
  net::ServerConfig cfg;
  cfg.tcp_addr = "127.0.0.1:0";
  net::Server server(*driver, cfg);
  net::Client client =
      net::Client::dial_tcp("127.0.0.1:" + std::to_string(server.tcp_port()));

  std::vector<net::Client::Ticket> tickets(512);
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    client.submit(WireOp::insert(i, i), &tickets[i]);
  }
  server.stop();  // drain: in-flight complete, then connections close
  std::uint64_t executed = 0, shed = 0, cancelled = 0;
  for (auto& t : tickets) {
    switch (t.wait().status) {
      case ResultStatus::kInserted:
      case ResultStatus::kUpdated:
        ++executed;
        break;
      case ResultStatus::kOverloaded:
        ++shed;
        break;
      case ResultStatus::kCancelled:
        ++cancelled;
        break;
      default:
        FAIL() << "unexpected status";
    }
  }
  EXPECT_EQ(executed + shed + cancelled, tickets.size());
  client.close();
  EXPECT_EQ(server.stats().connections_active, 0u);
  EXPECT_EQ(driver->validate(), "");
}

// ---- durability restart round-trip ------------------------------------------

// checkpoint, kill the server, reboot it on the same directory, clients
// reconnect, state verified over the wire — the full "serve restarts
// without losing data" story, over the Unix socket for variety.
TEST(NetDurability, RestartRoundTripOverUnixSocket) {
  ScratchDir scratch;
  const std::string sock = scratch.file("serve.sock");
  driver::Options opts;
  opts.durability = store::DurabilityMode::kSync;
  opts.durability_dir = scratch.file("data");

  {
    auto driver = driver::make_driver<K, V>("m1", opts);
    net::ServerConfig cfg;
    cfg.unix_path = sock;
    net::Server server(*driver, cfg);
    net::Client client = net::Client::dial_unix(sock);
    for (K k = 0; k < 500; ++k) {
      ASSERT_TRUE(client.insert(k, k * 3));
    }
    ASSERT_TRUE(client.erase(123).has_value());
    client.close();
    EXPECT_EQ(driver->checkpoint(), "");
    // A post-checkpoint mutation rides the WAL, not the snapshot —
    // recovery must replay both layers.
    net::Client late = net::Client::dial_unix(sock);
    ASSERT_TRUE(late.insert(1000, 42));
    late.close();
    server.stop();  // graceful: all acked mutations are fsynced (kSync)
  }

  // Reboot on the same directory; clients reconnect and verify.
  {
    auto driver = driver::make_driver<K, V>("m1", opts);
    net::ServerConfig cfg;
    cfg.unix_path = sock;
    net::Server server(*driver, cfg);
    net::Client client = net::Client::dial_unix(sock);
    EXPECT_EQ(client.backend(), "m1");
    for (K k = 0; k < 500; ++k) {
      if (k == 123) continue;
      ASSERT_EQ(client.search(k), std::optional<V>(k * 3)) << "key " << k;
    }
    EXPECT_FALSE(client.search(123).has_value());  // the erase persisted
    EXPECT_EQ(client.search(1000), std::optional<V>(42));  // WAL replayed
    // The rebooted server serves writes too.
    ASSERT_TRUE(client.insert(2000, 1));
    EXPECT_EQ(client.search(2000), std::optional<V>(1));
    client.close();
    server.stop();
    const driver::DriverStats stats = driver->stats();
    EXPECT_TRUE(stats.durable);
    EXPECT_GT(stats.recovered_entries + stats.recovered_ops, 0u);
    EXPECT_EQ(driver->validate(), "");
  }
}

// ---- injected faults (compiled in under -DPWSS_FAULT_INJECT=ON) -------------

// Every send(2) capped to one byte: frames leave the server a byte at a
// time and the reactor re-arms POLLOUT for the residue. A pipelined
// oracle workload must still come back exact — a partial write may slow
// the wire, never tear a frame.
TEST(NetFaults, PartialWritesNeverTearFrames) {
  if (!util::faultpt::kCompiled) {
    GTEST_SKIP() << "build without -DPWSS_FAULT_INJECT=ON";
  }
  auto driver = driver::make_driver<K, V>("m1");
  net::ServerConfig cfg;
  cfg.tcp_addr = "127.0.0.1:0";
  net::Server server(*driver, cfg);
  // Armed before the dial: the welcome frame trickles out too.
  util::faultpt::force("net.write.partial", 1'000'000);
  net::Client client =
      net::Client::dial_tcp("127.0.0.1:" + std::to_string(server.tcp_port()));
  const auto script =
      testutil::scripted_ops<K, V>(0xFA017, 256, 64, /*with_ordered=*/false);
  std::map<K, V> oracle;
  std::vector<WireResult> got;
  client.run(script, got);
  ASSERT_EQ(got.size(), script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const WireResult want = testutil::reference_apply(oracle, script[i]);
    testutil::expect_result_eq(got[i], want, "forced-partial-write", i);
  }
  client.close();
  util::faultpt::clear_forced();
  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  EXPECT_EQ(driver->validate(), "");
}

// A forced accept(2) failure drops the just-accepted connection before
// any state exists for it — that dial's handshake sees EOF — and the
// server keeps serving: the very next connection works end to end.
TEST(NetFaults, AcceptFailureKeepsServing) {
  if (!util::faultpt::kCompiled) {
    GTEST_SKIP() << "build without -DPWSS_FAULT_INJECT=ON";
  }
  auto driver = driver::make_driver<K, V>("m0");
  net::ServerConfig cfg;
  cfg.tcp_addr = "127.0.0.1:0";
  net::Server server(*driver, cfg);
  const std::string addr =
      "127.0.0.1:" + std::to_string(server.tcp_port());

  util::faultpt::force("net.accept.fail", 1);
  EXPECT_THROW(net::Client::dial_tcp(addr), net::NetError);
  util::faultpt::clear_forced();

  net::Client client = net::Client::dial_tcp(addr);
  ASSERT_TRUE(client.insert(1, 2));
  EXPECT_EQ(client.search(1), std::optional<V>(2));
  client.close();
  server.stop();
  const net::NetStats stats = server.stats();
  EXPECT_GE(stats.accept_failures, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
  EXPECT_EQ(server.stats().connections_active, 0u);
}

}  // namespace
