// Property-based sweeps (parameterized gtest): randomized differential and
// invariant checks across seeds and structure parameters, complementing
// the per-module unit tests with breadth.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "core/m0_map.hpp"
#include "core/m1_map.hpp"
#include "core/m2_map.hpp"
#include "driver/registry.hpp"
#include "sort/esort.hpp"
#include "sort/pesort.hpp"
#include "test_util.hpp"
#include "tree/jtree.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

// ---------- JTree properties across seeds -----------------------------------

class JTreeSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(JTreeSeedTest, OrderStatisticsConsistentWithSortedContent) {
  util::Xoshiro256 rng(GetParam());
  tree::JTree<int, int> t;
  std::set<int> ref;
  for (int i = 0; i < 3000; ++i) {
    const int k = static_cast<int>(rng.bounded(10000));
    if (rng.bounded(4) == 0) {
      t.erase(k);
      ref.erase(k);
    } else {
      t.insert(k, k);
      ref.insert(k);
    }
  }
  ASSERT_EQ(t.size(), ref.size());
  // at(i) enumerates exactly the sorted reference; rank inverts at.
  std::size_t i = 0;
  for (const int k : ref) {
    ASSERT_EQ(t.at(i).first, k) << "seed " << GetParam();
    ASSERT_EQ(t.rank(k), i);
    ++i;
  }
  EXPECT_TRUE(t.check_invariants());
}

TEST_P(JTreeSeedTest, ExtractPrefixSuffixPartitionContent) {
  util::Xoshiro256 rng(GetParam() ^ 0xabcdef);
  tree::JTree<int, int> t;
  std::set<int> keys;
  while (keys.size() < 500) keys.insert(static_cast<int>(rng.bounded(100000)));
  for (const int k : keys) t.insert(k, k);

  const std::size_t cut = rng.bounded(500);
  auto prefix = t.extract_prefix(cut);
  ASSERT_EQ(prefix.size(), cut);
  ASSERT_EQ(t.size(), 500 - cut);
  // Prefix holds exactly the cut smallest keys, in order.
  auto it = keys.begin();
  for (std::size_t i = 0; i < cut; ++i, ++it) {
    ASSERT_EQ(prefix[i].first, *it);
  }
  // Remainder still intact and balanced.
  for (; it != keys.end(); ++it) ASSERT_NE(t.find(*it), nullptr);
  EXPECT_TRUE(t.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(Seeds, JTreeSeedTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------- PESort equals std::stable_sort across seeds/shapes --------------

struct SortCase {
  std::uint64_t seed;
  std::size_t n;
  std::uint64_t universe;
};

class SortEquivalenceTest : public ::testing::TestWithParam<SortCase> {};

TEST_P(SortEquivalenceTest, PESortMatchesStableSort) {
  const auto [seed, n, universe] = GetParam();
  util::Xoshiro256 rng(seed);
  std::vector<std::pair<std::uint64_t, std::size_t>> v;
  v.reserve(n);
  for (std::size_t i = 0; i < n; ++i) v.emplace_back(rng.bounded(universe), i);
  auto expected = v;
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  sort::pesort(v, [](const auto& p) { return p.first; });
  EXPECT_EQ(v, expected);
}

TEST_P(SortEquivalenceTest, ESortMatchesStableSortOrder) {
  const auto [seed, n, universe] = GetParam();
  if (n > 20000) GTEST_SKIP() << "ESort is the slow reference sort";
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> keys(n);
  for (auto& k : keys) k = rng.bounded(universe);
  const auto order = sort::esort(keys, [](std::uint64_t x) { return x; });
  std::vector<std::size_t> expected(n);
  std::iota(expected.begin(), expected.end(), 0);
  std::stable_sort(expected.begin(), expected.end(),
                   [&](std::size_t a, std::size_t b) { return keys[a] < keys[b]; });
  EXPECT_EQ(order, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SortEquivalenceTest,
    ::testing::Values(SortCase{1, 0, 10}, SortCase{2, 1, 10},
                      SortCase{3, 1000, 3},        // tiny universe: huge dup runs
                      SortCase{4, 1000, 1000000},  // near-distinct
                      SortCase{5, 10000, 100}, SortCase{6, 10000, 1 << 20},
                      SortCase{7, 100000, 1 << 10},
                      SortCase{8, 100000, 1 << 30}));

// ---------- every backend == std::map semantics across seeds ----------------
// Parameterized over (registry backend, seed): the point-op stream drives
// the driver's sequential step() path; every backend must agree with the
// std::map reference op for op.

class MapAgreementTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
};

TEST_P(MapAgreementTest, BackendAgreesWithStdMap) {
  const auto& [backend, seed] = GetParam();
  util::Xoshiro256 rng(seed);
  driver::Options opts;
  opts.workers = 2;
  auto map = driver::make_driver<int, int>(backend, opts);
  std::map<int, int> ref;
  using IntOp = core::Op<int, int>;
  for (int step = 0; step < 8000; ++step) {
    const int key = static_cast<int>(rng.bounded(200));
    switch (rng.bounded(3)) {
      case 0: {
        const int val = static_cast<int>(rng.bounded(1 << 20));
        const bool fresh = ref.find(key) == ref.end();
        ASSERT_EQ(map->step(IntOp::insert(key, val)).success(), fresh);
        ref[key] = val;
        break;
      }
      case 1: {
        auto it = ref.find(key);
        const auto want = it == ref.end() ? std::optional<int>{}
                                          : std::optional<int>{it->second};
        ASSERT_EQ(map->step(IntOp::erase(key)).value, want);
        if (it != ref.end()) ref.erase(it);
        break;
      }
      default: {
        auto it = ref.find(key);
        const auto want = it == ref.end() ? std::optional<int>{}
                                          : std::optional<int>{it->second};
        ASSERT_EQ(map->step(IntOp::search(key)).value, want);
      }
    }
  }
  EXPECT_EQ(map->size(), ref.size());
  EXPECT_TRUE(map->check());
}

INSTANTIATE_TEST_SUITE_P(
    BackendsXSeeds, MapAgreementTest,
    ::testing::Combine(::testing::Values("m0", "m1", "m2", "iacono", "splay",
                                         "avl", "locked", "sharded:m1",
                                         "sharded:locked"),
                       ::testing::Values(11, 22, 33)),
    [](const auto& info) {
      return testutil::gtest_safe(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// ---------- M2 across p values -----------------------------------------------

class M2ParamTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(M2ParamTest, DifferentialAcrossBunchSizes) {
  const unsigned p = GetParam();
  sched::Scheduler scheduler(2);
  core::M2Map<int, int> m2(scheduler, p);
  std::map<int, int> ref;
  util::Xoshiro256 rng(p * 1000 + 1);
  using IntOp = core::Op<int, int>;
  for (int round = 0; round < 25; ++round) {
    std::vector<IntOp> batch;
    const std::size_t b = 1 + rng.bounded(150);
    for (std::size_t i = 0; i < b; ++i) {
      const int key = static_cast<int>(rng.bounded(256));
      switch (rng.bounded(3)) {
        case 0: batch.push_back(IntOp::insert(key, round * 1000 + static_cast<int>(i))); break;
        case 1: batch.push_back(IntOp::erase(key)); break;
        default: batch.push_back(IntOp::search(key));
      }
    }
    const auto got = m2.execute_batch(batch);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const auto& op = batch[i];
      auto it = ref.find(op.key);
      switch (op.type) {
        case core::OpType::kSearch:
          ASSERT_EQ(got[i].success(), it != ref.end()) << "p=" << p;
          if (it != ref.end()) { ASSERT_EQ(got[i].value, it->second); }
          break;
        case core::OpType::kInsert:
          ASSERT_EQ(got[i].success(), it == ref.end()) << "p=" << p;
          ref[op.key] = op.value;
          break;
        case core::OpType::kErase:
          ASSERT_EQ(got[i].success(), it != ref.end()) << "p=" << p;
          if (it != ref.end()) {
            ASSERT_EQ(got[i].value, it->second);
            ref.erase(it);
          }
          break;
        default:
          break;  // this script is point-only
      }
    }
    // Deep pipeline validation (quiescent-only) every few rounds so a
    // corruption introduced mid-run is pinned near its round.
    if (round % 8 == 7) {
      m2.quiesce();
      ASSERT_EQ(m2.validate(), "") << "p=" << p << " round " << round;
    }
  }
  m2.quiesce();
  EXPECT_EQ(m2.size(), ref.size());
  EXPECT_EQ(m2.validate(), "");
}

INSTANTIATE_TEST_SUITE_P(PValues, M2ParamTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16));

// ---------- M1 batch-size sweep: equivalence to single huge batch ------------

class M1BatchSplitTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(M1BatchSplitTest, SplittingBatchesPreservesFinalState) {
  const std::size_t chunk = GetParam();
  sched::Scheduler scheduler(2);
  core::M1Map<int, int> split_map(&scheduler);
  core::M1Map<int, int> whole_map(&scheduler);
  using IntOp = core::Op<int, int>;

  util::Xoshiro256 rng(chunk * 7 + 3);
  std::vector<IntOp> ops;
  for (int i = 0; i < 3000; ++i) {
    const int key = static_cast<int>(rng.bounded(300));
    switch (rng.bounded(3)) {
      case 0: ops.push_back(IntOp::insert(key, i)); break;
      case 1: ops.push_back(IntOp::erase(key)); break;
      default: ops.push_back(IntOp::search(key));
    }
  }
  whole_map.execute_batch(ops);
  for (std::size_t off = 0; off < ops.size(); off += chunk) {
    const std::size_t hi = std::min(ops.size(), off + chunk);
    split_map.execute_batch(
        std::vector<IntOp>(ops.begin() + static_cast<std::ptrdiff_t>(off),
                           ops.begin() + static_cast<std::ptrdiff_t>(hi)));
  }
  ASSERT_EQ(split_map.size(), whole_map.size());
  // Same final contents.
  for (int k = 0; k < 300; ++k) {
    ASSERT_EQ(split_map.search(k), whole_map.search(k)) << "key " << k;
  }
  EXPECT_TRUE(split_map.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, M1BatchSplitTest,
                         ::testing::Values(1, 7, 64, 500, 3000));

// ---------- Zipf workloads keep every backend sound --------------------------
// Parameterized over (registry backend, theta): skewed mixed batches
// through the bulk run() path, differential against an M0 reference batch
// for batch (M0 is the paper's model structure for M1/M2 equivalence).

class ZipfSoundnessTest
    : public ::testing::TestWithParam<std::tuple<std::string, double>> {};

TEST_P(ZipfSoundnessTest, BackendsSurviveSkewedMixes) {
  const auto& [backend, theta] = GetParam();
  driver::Options opts;
  opts.workers = 2;
  auto map = driver::make_driver<std::uint64_t, std::uint64_t>(backend, opts);
  core::M0Map<std::uint64_t, std::uint64_t> ref;
  using IntOp = core::Op<std::uint64_t, std::uint64_t>;

  const auto keys = util::zipf_keys(1 << 10, theta, 8000, 9);
  const auto mixed =
      util::apply_mix(keys, {.search = 0.5, .insert = 0.35, .erase = 0.15}, 10);
  std::vector<IntOp> batch;
  for (std::size_t i = 0; i < mixed.size(); ++i) {
    switch (mixed[i].kind) {
      case util::OpKind::kSearch: batch.push_back(IntOp::search(mixed[i].key)); break;
      case util::OpKind::kInsert: batch.push_back(IntOp::insert(mixed[i].key, mixed[i].value)); break;
      case util::OpKind::kErase: batch.push_back(IntOp::erase(mixed[i].key)); break;
      default: break;  // point mix only
    }
    if (batch.size() == 1024 || i + 1 == mixed.size()) {
      const auto got = map->run(batch);
      const auto want = ref.execute_batch(batch);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t j = 0; j < got.size(); ++j) {
        ASSERT_EQ(got[j].success(), want[j].success())
            << backend << " theta " << theta << " op " << j;
        ASSERT_EQ(got[j].value, want[j].value) << backend;
      }
      batch.clear();
    }
  }
  EXPECT_EQ(map->size(), ref.size());
  EXPECT_TRUE(map->check());
  EXPECT_TRUE(ref.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(
    BackendsXThetas, ZipfSoundnessTest,
    ::testing::Combine(::testing::Values("m1", "m2", "splay", "locked",
                                         "sharded:m1"),
                       ::testing::Values(0.0, 0.5, 0.9, 0.99, 1.2)),
    [](const auto& info) {
      const double theta = std::get<1>(info.param);
      return testutil::gtest_safe(std::get<0>(info.param)) + "_theta" +
             std::to_string(static_cast<int>(theta * 100));
    });

}  // namespace
}  // namespace pwss
