// Tests for M0, the amortized sequential working-set map (Section 5),
// including the localized-promotion semantics and the rank invariant that
// underlies Theorem 7.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "core/m0_map.hpp"
#include "util/rng.hpp"
#include "util/workload.hpp"

namespace pwss {
namespace {

using core::M0Map;
using core::Op;
using core::OpType;

TEST(M0, InsertSearchErase) {
  M0Map<int, int> m;
  EXPECT_TRUE(m.insert(1, 10));
  EXPECT_TRUE(m.insert(2, 20));
  EXPECT_FALSE(m.insert(1, 11));
  EXPECT_EQ(m.search(1), 11);
  EXPECT_EQ(m.search(3), std::nullopt);
  EXPECT_EQ(m.erase(2), 20);
  EXPECT_EQ(m.erase(2), std::nullopt);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M0, PeekDoesNotAdjust) {
  M0Map<int, int> m;
  for (int i = 0; i < 300; ++i) m.insert(i, i);
  const auto seg_before = m.segment_of(0);
  ASSERT_NE(m.peek(0), nullptr);
  EXPECT_EQ(m.segment_of(0), seg_before);
}

TEST(M0, SearchPromotesByOneSegment) {
  M0Map<int, int> m;
  for (int i = 0; i < 300; ++i) m.insert(i, i);
  // Insertions go to the back of the last segment, so the most recently
  // inserted key is the deepest one.
  const auto before = m.segment_of(299);
  ASSERT_TRUE(before.has_value());
  ASSERT_GT(*before, 0u);
  EXPECT_TRUE(m.search(299).has_value());
  const auto after = m.segment_of(299);
  ASSERT_TRUE(after.has_value());
  EXPECT_EQ(*after, *before - 1) << "M0 promotes one segment, not to front";
  EXPECT_TRUE(m.check_invariants());
}

TEST(M0, RepeatedSearchReachesFrontSegment) {
  M0Map<int, int> m;
  for (int i = 0; i < 300; ++i) m.insert(i, i);
  for (int r = 0; r < 10; ++r) EXPECT_TRUE(m.search(299).has_value());
  EXPECT_EQ(m.segment_of(299), 0u);
}

TEST(M0, InsertGoesToBackOfLastSegment) {
  M0Map<int, int> m;
  for (int i = 0; i < 23; ++i) m.insert(i, i);  // fills 2+4+16 and one more
  // 23rd item lands in segment 3 (capacities 2,4,16 then 256).
  EXPECT_EQ(m.segment_of(22), 3u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M0, SegmentsFullExceptLast) {
  M0Map<int, int> m;
  for (int i = 0; i < 500; ++i) {
    m.insert(i, i);
    if (i % 53 == 0) { ASSERT_TRUE(m.check_invariants()) << "i=" << i; }
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(M0, EraseRepairsWithMostRecentOfNextSegment) {
  M0Map<int, int> m;
  for (int i = 0; i < 300; ++i) m.insert(i, i);
  for (int i = 0; i < 150; ++i) {
    ASSERT_TRUE(m.erase(i).has_value());
    if (i % 25 == 0) { ASSERT_TRUE(m.check_invariants()) << "i=" << i; }
  }
  EXPECT_EQ(m.size(), 150u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(M0, DifferentialAgainstStdMap) {
  util::Xoshiro256 rng(101);
  M0Map<int, int> m;
  std::map<int, int> ref;
  for (int step = 0; step < 30000; ++step) {
    const int key = static_cast<int>(rng.bounded(500));
    switch (rng.bounded(4)) {
      case 0:
      case 3: {
        const int val = static_cast<int>(rng.bounded(1000));
        EXPECT_EQ(m.insert(key, val), ref.find(key) == ref.end());
        ref[key] = val;
        break;
      }
      case 1: {
        auto removed = m.erase(key);
        auto it = ref.find(key);
        ASSERT_EQ(removed.has_value(), it != ref.end());
        if (it != ref.end()) {
          EXPECT_EQ(*removed, it->second);
          ref.erase(it);
        }
        break;
      }
      default: {
        auto v = m.search(key);
        auto it = ref.find(key);
        ASSERT_EQ(v.has_value(), it != ref.end()) << "key " << key;
        if (v) { EXPECT_EQ(*v, it->second); }
      }
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(M0, ExecuteBatchMatchesPointOps) {
  M0Map<int, int> a, b;
  std::vector<Op<int, int>> ops;
  util::Xoshiro256 rng(55);
  for (int i = 0; i < 2000; ++i) {
    const int key = static_cast<int>(rng.bounded(200));
    switch (rng.bounded(3)) {
      case 0: ops.push_back(Op<int, int>::insert(key, key * 2)); break;
      case 1: ops.push_back(Op<int, int>::erase(key)); break;
      default: ops.push_back(Op<int, int>::search(key));
    }
  }
  const auto results = a.execute_batch(ops);
  ASSERT_EQ(results.size(), ops.size());
  for (const auto& op : ops) {
    switch (op.type) {
      case OpType::kInsert: b.insert(op.key, op.value); break;
      case OpType::kErase: b.erase(op.key); break;
      case OpType::kSearch: b.search(op.key); break;
      default: break;  // this script is point-only
    }
  }
  EXPECT_EQ(a.size(), b.size());
}

// Rank invariant behind Theorem 7: after accessing a working set of w keys
// repeatedly, all of them live within segments whose cumulative capacity is
// O(w) — i.e. the first ceil(loglog w)+O(1) segments.
class M0RankInvariantTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(M0RankInvariantTest, HotSetResidesInSmallPrefix) {
  const std::size_t w = GetParam();
  M0Map<std::uint64_t, int> m;
  for (std::uint64_t i = 0; i < 4096; ++i) m.insert(i, 1);
  // Access keys 0..w-1 in round-robin a few times.
  for (int round = 0; round < 6; ++round) {
    for (std::uint64_t k = 0; k < w; ++k) ASSERT_TRUE(m.search(k).has_value());
  }
  // Find the smallest segment prefix with capacity >= 2w; all hot keys must
  // be inside it (the paper's invariant with slack for demotion swaps).
  std::size_t prefix = 0;
  std::uint64_t cum = 0;
  while (cum < 2 * w) cum += core::segment_capacity(prefix++);
  for (std::uint64_t k = 0; k < w; ++k) {
    const auto seg = m.segment_of(k);
    ASSERT_TRUE(seg.has_value());
    EXPECT_LT(*seg, prefix) << "hot key " << k << " too deep (w=" << w << ")";
  }
  EXPECT_TRUE(m.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(WorkingSetSizes, M0RankInvariantTest,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 200));

// Empirical Theorem 7 shape: average segment depth of an access grows with
// recency rank (doubly-log), and is independent of map size for fixed rank.
TEST(M0, AccessDepthGrowsWithRecencyNotSize) {
  auto deepest_hot = [](std::size_t n, std::size_t w) {
    M0Map<std::uint64_t, int> m;
    for (std::uint64_t i = 0; i < n; ++i) m.insert(i, 1);
    for (int round = 0; round < 4; ++round) {
      for (std::uint64_t k = 0; k < w; ++k) m.search(k);
    }
    std::size_t deepest = 0;
    for (std::uint64_t k = 0; k < w; ++k) {
      deepest = std::max(deepest, *m.segment_of(k));
    }
    return deepest;
  };
  // Fixed working set, growing map: depth of hot keys does not grow.
  const auto d1 = deepest_hot(1 << 10, 8);
  const auto d2 = deepest_hot(1 << 14, 8);
  EXPECT_EQ(d1, d2);
  // Fixed map, growing working set: depth grows.
  const auto small_ws = deepest_hot(1 << 12, 4);
  const auto large_ws = deepest_hot(1 << 12, 1000);
  EXPECT_GT(large_ws, small_ws);
}

}  // namespace
}  // namespace pwss
