// Tests for the QRMW-style synchronization primitives (src/sync):
// non-blocking lock (Def. 35), dedicated lock (Def. 37), activation
// interface (Def. 36).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "sync/activation.hpp"
#include "sync/dedicated_lock.hpp"
#include "sync/nonblocking_lock.hpp"

namespace pwss {
namespace {

TEST(NonBlockingLock, AcquireReleaseSingleThread) {
  sync::NonBlockingLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(NonBlockingLock, MutualExclusionUnderContention) {
  sync::NonBlockingLock lock;
  std::atomic<int> in_critical{0};
  std::atomic<int> acquired{0};
  std::atomic<bool> violation{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        if (lock.try_lock()) {
          if (in_critical.fetch_add(1) != 0) violation = true;
          acquired.fetch_add(1);
          in_critical.fetch_sub(1);
          lock.unlock();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation);
  EXPECT_GT(acquired.load(), 0);
}

// Runs parked continuations inline on the releasing thread — enough for
// single-threaded protocol tests.
sync::DedicatedLock::ResumeSink inline_sink() {
  return sync::DedicatedLock::ResumeSink::inline_runner();
}

TEST(DedicatedLock, UncontendedAcquireRunsInline) {
  sync::DedicatedLock lock(2);
  bool ran = false;
  lock.acquire(0, [&] { ran = true; }, inline_sink());
  EXPECT_TRUE(ran);
  EXPECT_TRUE(lock.held());
  lock.release(inline_sink());
  EXPECT_FALSE(lock.held());
}

TEST(DedicatedLock, ContendedContinuationParkedUntilRelease) {
  sync::DedicatedLock lock(2);
  bool first = false, second = false;
  lock.acquire(0, [&] { first = true; }, inline_sink());
  // Lock is now held (continuation ran but no release yet).
  lock.acquire(1, [&] { second = true; }, inline_sink());
  EXPECT_TRUE(first);
  EXPECT_FALSE(second) << "parked continuation must not run before release";
  lock.release(inline_sink());  // hands off to key 1 and runs it inline
  EXPECT_TRUE(second);
  lock.release(inline_sink());
  EXPECT_FALSE(lock.held());
}

TEST(DedicatedLock, HandoffOrderIsCyclicFromHolderKey) {
  sync::DedicatedLock lock(3);
  std::vector<int> order;
  lock.acquire(1, [&] { order.push_back(1); }, inline_sink());
  lock.acquire(2, [&] { order.push_back(2); }, inline_sink());
  lock.acquire(0, [&] { order.push_back(0); }, inline_sink());
  // Holder used key 1; release scans 2, 0, 1 cyclically.
  lock.release(inline_sink());
  lock.release(inline_sink());
  lock.release(inline_sink());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 0}));
}

TEST(DedicatedLock, MutualExclusionAcrossThreads) {
  // Two keys, two threads repeatedly acquiring; critical sections must not
  // overlap and all continuations must eventually run.
  sync::DedicatedLock lock(2);
  std::atomic<int> in_critical{0};
  std::atomic<bool> violation{false};
  std::atomic<int> completed{0};
  constexpr int kIters = 5000;

  auto worker = [&](std::size_t key) {
    for (int i = 0; i < kIters; ++i) {
      std::atomic<bool> my_turn_done{false};
      const auto sink = sync::DedicatedLock::ResumeSink::inline_runner();
      lock.acquire(
          key,
          [&] {
            if (in_critical.fetch_add(1) != 0) violation = true;
            in_critical.fetch_sub(1);
            completed.fetch_add(1);
            lock.release(sink);
            my_turn_done = true;
          },
          sink);
      while (!my_turn_done.load()) std::this_thread::yield();
    }
  };
  std::thread t0(worker, 0), t1(worker, 1);
  t0.join();
  t1.join();
  EXPECT_FALSE(violation);
  EXPECT_EQ(completed.load(), 2 * kIters);
  EXPECT_FALSE(lock.held());
}

TEST(Activation, RunsWhenReady) {
  int runs = 0;
  bool ready = true;
  sync::Activation act([&] { return ready; }, [&] {
    ++runs;
    ready = false;
    return false;
  });
  act.activate();
  EXPECT_EQ(runs, 1);
  act.activate();  // not ready anymore
  EXPECT_EQ(runs, 1);
}

TEST(Activation, SelfReactivation) {
  int runs = 0;
  sync::Activation act([] { return true; }, [&] {
    ++runs;
    return runs < 5;  // request reactivation four times
  });
  act.activate();
  EXPECT_EQ(runs, 5);
}

TEST(Activation, PendingMarkPreventsLostWakeup) {
  // An activation arriving while the owner runs must trigger another pass.
  std::atomic<int> runs{0};
  std::atomic<bool> ready{true};
  sync::Activation* act_ptr = nullptr;
  sync::Activation act([&] { return ready.load(); }, [&] {
    if (runs.fetch_add(1) == 0) {
      // Simulate a concurrent producer: make ready true again and activate
      // while we are still the owner.
      ready = true;
      act_ptr->activate();  // should set the pending mark, not recurse
      ready = true;
    } else {
      ready = false;
    }
    return false;
  });
  act_ptr = &act;
  act.activate();
  EXPECT_GE(runs.load(), 2) << "activation during run must cause re-run";
}

TEST(Activation, ConcurrentActivationsRunProcessSerially) {
  std::atomic<int> concurrent{0};
  std::atomic<bool> violation{false};
  std::atomic<int> runs{0};
  sync::Activation act([] { return true; }, [&] {
    if (concurrent.fetch_add(1) != 0) violation = true;
    runs.fetch_add(1);
    concurrent.fetch_sub(1);
    return false;
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) act.activate();
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_FALSE(violation);
  EXPECT_GT(runs.load(), 0);
  EXPECT_FALSE(act.running());
}

}  // namespace
}  // namespace pwss
