// Tests for the sharded driver: sharded:<name> registry lookup, hash
// routing, the one-shared-scheduler wiring, aggregate introspection, and
// Definition 8 linearization of the scatter/gather bulk path — including
// shards with mixed wiring (AsyncMap-wrapped, natively async, direct).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/m0_map.hpp"
#include "driver/registry.hpp"
#include "driver/sharded.hpp"
#include "sched/scheduler.hpp"
#include "test_util.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

using IntDriver = driver::Driver<std::uint64_t, std::uint64_t>;
using IntRegistry = driver::BackendRegistry<std::uint64_t, std::uint64_t>;
using IntSharded = driver::ShardedDriver<std::uint64_t, std::uint64_t>;
using IntOp = core::Op<std::uint64_t, std::uint64_t>;

driver::Options sharded_opts(unsigned shards, unsigned workers = 2) {
  driver::Options o;
  o.shards = shards;
  o.workers = workers;
  return o;
}

// ---- registry lookup --------------------------------------------------------

TEST(ShardedRegistry, EveryBackendResolvesWithShardedPrefix) {
  const auto& reg = IntRegistry::instance();
  for (const char* name :
       {"m0", "m1", "m2", "iacono", "splay", "avl", "locked"}) {
    const std::string sharded = std::string("sharded:") + name;
    EXPECT_TRUE(reg.contains(sharded)) << sharded;
    auto d = reg.create(sharded, sharded_opts(2));
    ASSERT_NE(d, nullptr) << sharded;
    EXPECT_EQ(d->name(), sharded);
    EXPECT_EQ(d->size(), 0u);
    auto* sd = dynamic_cast<IntSharded*>(d.get());
    ASSERT_NE(sd, nullptr) << sharded;
    EXPECT_EQ(sd->shard_count(), 2u);
  }
}

TEST(ShardedRegistry, UnknownInnerBackendThrowsAndDoesNotNest) {
  const auto& reg = IntRegistry::instance();
  EXPECT_FALSE(reg.contains("sharded:btree"));
  EXPECT_FALSE(reg.contains("sharded:sharded:m1"));
  EXPECT_THROW(reg.create("sharded:btree"), std::invalid_argument);
  EXPECT_THROW(reg.create("sharded:sharded:m1"), std::invalid_argument);
  try {
    reg.create("sharded:btree");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sharded:<name>"), std::string::npos) << msg;
  }
}

TEST(ShardedRegistry, ZeroShardsSelectsTheDefault) {
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
      "sharded:avl", sharded_opts(/*shards=*/0));
  auto* sd = dynamic_cast<IntSharded*>(d.get());
  ASSERT_NE(sd, nullptr);
  EXPECT_EQ(sd->shard_count(), driver::kDefaultShards);
}

// ---- one shared scheduler ---------------------------------------------------

TEST(ShardedDriverTest, ShardsShareTheDriversScheduler) {
  for (const char* inner : {"m1", "m2"}) {
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
        std::string("sharded:") + inner, sharded_opts(3, /*workers=*/2));
    auto* sd = dynamic_cast<IntSharded*>(d.get());
    ASSERT_NE(sd, nullptr) << inner;
    ASSERT_NE(d->scheduler(), nullptr) << inner;
    EXPECT_EQ(d->scheduler()->worker_count(), 2u) << inner;
    for (std::size_t s = 0; s < sd->shard_count(); ++s) {
      EXPECT_EQ(sd->shard(s).scheduler(), d->scheduler())
          << inner << " shard " << s;
    }
  }
  // Schedulerless shards stay schedulerless, and the sharded driver drops
  // the pool nothing would run on (bulk scatter/gather uses dedicated
  // threads, not pool workers).
  auto locked = driver::make_driver<std::uint64_t, std::uint64_t>(
      "sharded:locked", sharded_opts(2));
  auto* sd = dynamic_cast<IntSharded*>(locked.get());
  ASSERT_NE(sd, nullptr);
  EXPECT_EQ(locked->scheduler(), nullptr);
  for (std::size_t s = 0; s < sd->shard_count(); ++s) {
    EXPECT_EQ(sd->shard(s).scheduler(), nullptr);
  }
  EXPECT_TRUE(locked->insert(1, 2));
  EXPECT_EQ(locked->run({IntOp::search(1)})[0].value, 2u);
}

TEST(ShardedDriverTest, HonorsCallerSuppliedScheduler) {
  sched::Scheduler pool(2);
  driver::Options opts = sharded_opts(3);
  opts.scheduler = &pool;
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>("sharded:m1",
                                                             opts);
  auto* sd = dynamic_cast<IntSharded*>(d.get());
  ASSERT_NE(sd, nullptr);
  EXPECT_EQ(d->scheduler(), &pool);
  for (std::size_t s = 0; s < sd->shard_count(); ++s) {
    EXPECT_EQ(sd->shard(s).scheduler(), &pool);
  }
  EXPECT_TRUE(d->insert(5, 25));
  EXPECT_EQ(d->search(5), 25u);
  d->quiesce();
}

// ---- routing ----------------------------------------------------------------

TEST(ShardedDriverTest, RoutingPartitionsKeysAcrossShards) {
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
      "sharded:m1", sharded_opts(4));
  auto* sd = dynamic_cast<IntSharded*>(d.get());
  ASSERT_NE(sd, nullptr);

  constexpr std::uint64_t kKeys = 512;
  std::vector<IntOp> warm;
  for (std::uint64_t k = 0; k < kKeys; ++k) warm.push_back(IntOp::insert(k, k));
  d->run(warm);

  std::vector<std::size_t> per_shard(sd->shard_count(), 0);
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::size_t home = sd->shard_of(k);
    ASSERT_LT(home, sd->shard_count());
    ASSERT_EQ(home, sd->shard_of(k)) << "routing must be stable";
    ++per_shard[home];
    // The key lives in its home shard and in no other.
    for (std::size_t s = 0; s < sd->shard_count(); ++s) {
      const auto got = sd->shard(s).search(k);
      ASSERT_EQ(got.has_value(), s == home) << "key " << k << " shard " << s;
      if (got) {
        ASSERT_EQ(*got, k);
      }
    }
  }
  // The mixed hash spreads a contiguous range over every shard.
  for (std::size_t s = 0; s < sd->shard_count(); ++s) {
    EXPECT_GT(per_shard[s], 0u) << "shard " << s << " received no keys";
  }
  EXPECT_EQ(d->size(), kKeys);
}

TEST(ShardedDriverTest, DepthOfRoutesToOwningShard) {
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
      "sharded:m0", sharded_opts(4));
  std::vector<IntOp> warm;
  for (std::uint64_t k = 0; k < 2000; ++k) warm.push_back(IntOp::insert(k, 1));
  d->run(warm);
  // Hammer one key: it must become shallow in its shard.
  for (int i = 0; i < 10; ++i) d->search(1500);
  ASSERT_TRUE(d->depth_of(1500).has_value());
  EXPECT_LE(*d->depth_of(1500), 1u);
  EXPECT_FALSE(d->depth_of(999999).has_value());
}

// ---- bulk path: scatter -> parallel execute -> submission-order gather ------

TEST(ShardedDriverTest, BulkRunMatchesM0Reference) {
  for (const char* name : {"sharded:m1", "sharded:avl", "sharded:m2"}) {
    auto map =
        driver::make_driver<std::uint64_t, std::uint64_t>(name, sharded_opts(4));
    core::M0Map<std::uint64_t, std::uint64_t> ref;
    util::Xoshiro256 rng(77);
    for (int round = 0; round < 20; ++round) {
      // Full v2 op set: ordered kinds in a sharded bulk run exercise the
      // phase slicing plus the scatter/gather reduce across shards.
      const std::size_t b = 1 + rng.bounded(300);
      const auto batch = testutil::scripted_ops<std::uint64_t, std::uint64_t>(
          rng.bounded(1u << 30), b, 250, /*with_ordered=*/true);
      const auto want = ref.execute_batch(batch);
      const auto got = map->run(batch);
      ASSERT_EQ(got.size(), want.size()) << name;
      for (std::size_t i = 0; i < got.size(); ++i) {
        testutil::expect_result_eq(got[i], want[i], name, i);
      }
      ASSERT_EQ(map->size(), ref.size()) << name << " round " << round;
    }
    EXPECT_TRUE(map->check()) << name;
  }
}

TEST(ShardedDriverTest, BulkPreservesPerKeyProgramOrder) {
  auto map = driver::make_driver<std::uint64_t, std::uint64_t>(
      "sharded:m1", sharded_opts(4));
  // insert -> search -> erase -> search per key, all in one batch: results
  // must reflect the per-key program order even though keys scatter.
  std::vector<IntOp> batch;
  constexpr std::uint64_t kKeys = 64;
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    batch.push_back(IntOp::insert(k, k * 7));
    batch.push_back(IntOp::search(k));
    batch.push_back(IntOp::erase(k));
    batch.push_back(IntOp::search(k));
  }
  const auto got = map->run(batch);
  ASSERT_EQ(got.size(), batch.size());
  for (std::uint64_t k = 0; k < kKeys; ++k) {
    const std::size_t base = static_cast<std::size_t>(k) * 4;
    EXPECT_TRUE(got[base].success()) << "insert of fresh key " << k;
    ASSERT_TRUE(got[base + 1].value.has_value()) << "search after insert";
    EXPECT_EQ(*got[base + 1].value, k * 7);
    ASSERT_TRUE(got[base + 2].value.has_value()) << "erase of present key";
    EXPECT_EQ(*got[base + 2].value, k * 7);
    EXPECT_FALSE(got[base + 3].value.has_value()) << "search after erase";
  }
  EXPECT_EQ(map->size(), 0u);
}

// ---- aggregate state under concurrency --------------------------------------

TEST(ShardedDriverTest, ConcurrentClientsConvergeAndAggregate) {
  auto map = driver::make_driver<std::uint64_t, std::uint64_t>(
      "sharded:m1", sharded_opts(4));
  constexpr int kThreads = 4, kOpsPer = 600;

  auto thread_ops = [](int t) {
    util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 313 + 17);
    std::vector<IntOp> ops;
    for (int i = 0; i < kOpsPer; ++i) {
      const std::uint64_t key =
          static_cast<std::uint64_t>(t) * 1000000 + rng.bounded(150);
      switch (rng.bounded(3)) {
        case 0: ops.push_back(IntOp::insert(key, rng.bounded(1 << 20))); break;
        case 1: ops.push_back(IntOp::erase(key)); break;
        default: ops.push_back(IntOp::search(key));
      }
    }
    return ops;
  };

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (const auto& op : thread_ops(t)) {
        switch (op.type) {
          case core::OpType::kInsert: map->insert(op.key, op.value); break;
          case core::OpType::kErase: map->erase(op.key); break;
          case core::OpType::kSearch: map->search(op.key); break;
          default: break;  // generator emits only the three point kinds
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  map->quiesce();

  std::map<std::uint64_t, std::uint64_t> expected;
  for (int t = 0; t < kThreads; ++t) {
    for (const auto& op : thread_ops(t)) {
      if (op.type == core::OpType::kInsert) {
        expected[op.key] = op.value;
      } else if (op.type == core::OpType::kErase) {
        expected.erase(op.key);
      }
    }
  }
  ASSERT_EQ(map->size(), expected.size());
  for (const auto& [key, value] : expected) {
    const auto got = map->search(key);
    ASSERT_TRUE(got.has_value()) << "key " << key;
    ASSERT_EQ(*got, value) << "key " << key;
  }
  EXPECT_TRUE(map->check());
}

TEST(ShardedDriverTest, ShardCountSweepReachesTheSameState) {
  util::Xoshiro256 rng(404);
  std::vector<IntOp> script;
  for (int i = 0; i < 2500; ++i) {
    const std::uint64_t key = rng.bounded(400);
    switch (rng.bounded(3)) {
      case 0:
        script.push_back(IntOp::insert(key, static_cast<std::uint64_t>(i)));
        break;
      case 1: script.push_back(IntOp::erase(key)); break;
      default: script.push_back(IntOp::search(key));
    }
  }
  std::map<std::uint64_t, std::uint64_t> ref;
  for (const auto& op : script) {
    if (op.type == core::OpType::kInsert) {
      ref[op.key] = op.value;
    } else if (op.type == core::OpType::kErase) {
      ref.erase(op.key);
    }
  }
  for (const unsigned shards : {1u, 2u, 3u, 8u}) {
    auto map = driver::make_driver<std::uint64_t, std::uint64_t>(
        "sharded:m1", sharded_opts(shards));
    map->run(script);
    ASSERT_EQ(map->size(), ref.size()) << shards << " shards";
    for (const auto& [key, value] : ref) {
      const auto got = map->search(key);
      ASSERT_TRUE(got.has_value()) << shards << " shards, key " << key;
      ASSERT_EQ(*got, value) << shards << " shards, key " << key;
    }
    EXPECT_TRUE(map->check()) << shards << " shards";
  }
}

}  // namespace
}  // namespace pwss
