// Tests for the workload-generation and statistics substrate (src/util).
#include <gtest/gtest.h>

#include <limits>

#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_set>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/workload.hpp"
#include "util/zipf.hpp"

namespace pwss {
namespace {

using util::OpKind;

TEST(Rng, DeterministicForSameSeed) {
  util::Xoshiro256 a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 1000; ++i) equal += (a() == b());
  EXPECT_LT(equal, 5);
}

TEST(Rng, BoundedStaysInRange) {
  util::Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
}

TEST(Rng, BoundedOneAlwaysZero) {
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.bounded(1), 0u);
}

TEST(Rng, Uniform01InUnitInterval) {
  util::Xoshiro256 rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  util::Xoshiro256 rng(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Zipf, ThetaZeroIsRoughlyUniform) {
  util::Xoshiro256 rng(3);
  util::ZipfGenerator zipf(100, 0.0);
  std::vector<int> counts(100, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf(rng)];
  // Every bucket within 30% of expectation.
  for (int c : counts) EXPECT_NEAR(c, n / 100, n / 100 * 0.3);
}

TEST(Zipf, HighThetaConcentratesOnHead) {
  util::Xoshiro256 rng(5);
  util::ZipfGenerator zipf(1 << 16, 0.99);
  int head = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) head += (zipf(rng) < 16);
  // Zipf(0.99) over 64k items puts a large fraction of mass on the head.
  EXPECT_GT(head, n / 10);
}

TEST(Zipf, SamplesWithinUniverse) {
  util::Xoshiro256 rng(9);
  for (double theta : {0.0, 0.5, 0.99, 1.2}) {
    util::ZipfGenerator zipf(1000, theta);
    for (int i = 0; i < 5000; ++i) EXPECT_LT(zipf(rng), 1000u);
  }
}

TEST(Workload, UniformKeysDeterministicAndBounded) {
  const auto a = util::uniform_keys(500, 1000, 42);
  const auto b = util::uniform_keys(500, 1000, 42);
  EXPECT_EQ(a, b);
  for (const auto k : a) EXPECT_LT(k, 500u);
}

TEST(Workload, ZipfKeysSkewShowsInDistinctCount) {
  const auto uniform = util::zipf_keys(1 << 20, 0.0, 50000, 1);
  const auto skewed = util::zipf_keys(1 << 20, 1.2, 50000, 1);
  const auto distinct = [](const std::vector<std::uint64_t>& v) {
    return std::unordered_set<std::uint64_t>(v.begin(), v.end()).size();
  };
  EXPECT_GT(distinct(uniform), 2 * distinct(skewed));
}

TEST(Workload, WorkingSetKeysRespectWindow) {
  // With miss_rate 0 (after warmup) all accesses come from the window.
  const auto keys = util::working_set_keys(1 << 30, 64, 0.0, 10000, 77);
  std::unordered_set<std::uint64_t> distinct(keys.begin(), keys.end());
  EXPECT_LE(distinct.size(), 64u);
}

TEST(Workload, WorkingSetKeysMissRateOneIsUniform) {
  const auto keys = util::working_set_keys(1 << 30, 64, 1.0, 10000, 77);
  std::unordered_set<std::uint64_t> distinct(keys.begin(), keys.end());
  EXPECT_GT(distinct.size(), 9000u);  // collisions in 2^30 are rare
}

TEST(Workload, WorkingSetRejectsZeroWindow) {
  EXPECT_THROW(util::working_set_keys(10, 0, 0.5, 10, 1),
               std::invalid_argument);
}

TEST(Workload, DuplicateHeavyBatchShape) {
  const auto batch = util::duplicate_heavy_batch(1 << 20, 1000, 0.9, 5);
  ASSERT_EQ(batch.size(), 1000u);
  std::unordered_map<std::uint64_t, int> freq;
  for (const auto& op : batch) ++freq[op.key];
  int max_freq = 0;
  for (const auto& [k, c] : freq) max_freq = std::max(max_freq, c);
  EXPECT_GE(max_freq, 900);
}

TEST(Workload, ApplyMixProportions) {
  const auto keys = util::uniform_keys(1000, 30000, 3);
  const auto ops = util::apply_mix(keys, {.search = 0.5, .insert = 0.3, .erase = 0.2}, 4);
  ASSERT_EQ(ops.size(), keys.size());
  std::size_t searches = 0, inserts = 0, erases = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::kSearch: ++searches; break;
      case OpKind::kInsert: ++inserts; break;
      case OpKind::kErase: ++erases; break;
      default: FAIL() << "point mix produced an ordered kind";
    }
  }
  EXPECT_NEAR(static_cast<double>(searches) / ops.size(), 0.5, 0.02);
  EXPECT_NEAR(static_cast<double>(inserts) / ops.size(), 0.3, 0.02);
  EXPECT_NEAR(static_cast<double>(erases) / ops.size(), 0.2, 0.02);
}

TEST(Workload, ApplyMixOrderedKinds) {
  // The v2 fractions produce the ordered kinds, and range-count ops carry
  // key2 = key + range_span.
  util::OpMix mix;
  mix.search = 0.4;
  mix.insert = 0.2;
  mix.erase = 0.0;
  mix.pred = 0.2;
  mix.succ = 0.1;
  mix.range = 0.1;
  mix.range_span = 77;
  EXPECT_TRUE(mix.has_ordered());
  const auto keys = util::uniform_keys(1000, 30000, 5);
  const auto ops = util::apply_mix(keys, mix, 6);
  std::size_t preds = 0, succs = 0, ranges = 0;
  for (const auto& op : ops) {
    switch (op.kind) {
      case OpKind::kPredecessor: ++preds; break;
      case OpKind::kSuccessor: ++succs; break;
      case OpKind::kRangeCount:
        ++ranges;
        ASSERT_EQ(op.key2, op.key + 77);
        break;
      default: break;
    }
  }
  EXPECT_NEAR(static_cast<double>(preds) / ops.size(), 0.2, 0.02);
  EXPECT_NEAR(static_cast<double>(succs) / ops.size(), 0.1, 0.02);
  EXPECT_NEAR(static_cast<double>(ranges) / ops.size(), 0.1, 0.02);
  EXPECT_FALSE(util::OpMix{}.has_ordered());
}

TEST(Workload, ApplyMixValidatesFractions) {
  EXPECT_THROW(util::apply_mix({1, 2, 3}, {.search = 0.5, .insert = 0.1, .erase = 0.1}, 0),
               std::invalid_argument);
  util::OpMix over;
  over.search = 0.9;
  over.pred = 0.2;
  EXPECT_THROW(util::apply_mix({1, 2, 3}, over, 0), std::invalid_argument);
  // NaN compares false against everything; the validation must still trip.
  util::OpMix nan_mix;
  nan_mix.search = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(util::apply_mix({1, 2, 3}, nan_mix, 0), std::invalid_argument);
}

TEST(Workload, EntropySingleKeyIsZero) {
  EXPECT_DOUBLE_EQ(util::empirical_entropy_bits({7, 7, 7, 7}), 0.0);
}

TEST(Workload, EntropyUniformIsLogU) {
  std::vector<std::uint64_t> keys;
  for (int rep = 0; rep < 10; ++rep)
    for (std::uint64_t k = 0; k < 256; ++k) keys.push_back(k);
  EXPECT_NEAR(util::empirical_entropy_bits(keys), 8.0, 1e-9);
}

TEST(Workload, EntropyEmptyIsZero) {
  EXPECT_DOUBLE_EQ(util::empirical_entropy_bits({}), 0.0);
}

TEST(Workload, WorkingSetBoundRepeatedKeyIsCheap) {
  // n accesses to one key: first costs log(1)+1, rest cost log(1)+1 = 1.
  const std::vector<std::uint64_t> keys(1000, 42);
  EXPECT_NEAR(util::working_set_bound(keys), 1000.0, 1e-6);
}

TEST(Workload, WorkingSetBoundAllDistinctMatchesInsertCosts) {
  std::vector<std::uint64_t> keys(256);
  for (std::size_t i = 0; i < keys.size(); ++i) keys[i] = i;
  // i-th first access has rank i+1 -> cost log2(i+1)+1.
  double expected = 0;
  for (std::size_t i = 0; i < keys.size(); ++i)
    expected += std::log2(static_cast<double>(i + 1)) + 1.0;
  EXPECT_NEAR(util::working_set_bound(keys), expected, 1e-6);
}

TEST(Workload, WorkingSetBoundRoundRobinRank) {
  // Cycling over u keys: steady-state accesses all have rank u.
  const std::size_t u = 16, reps = 100;
  std::vector<std::uint64_t> keys;
  for (std::size_t r = 0; r < reps; ++r)
    for (std::uint64_t k = 0; k < u; ++k) keys.push_back(k);
  const double bound = util::working_set_bound(keys);
  const double steady = static_cast<double>((reps - 1) * u) * (std::log2(u) + 1.0);
  EXPECT_GT(bound, steady);                     // plus first-access costs
  EXPECT_LT(bound, steady + u * (std::log2(u) + 2.0));
}

TEST(Workload, WorkingSetBoundLocalityBeatsUniform) {
  const auto local = util::working_set_keys(1 << 20, 16, 0.01, 20000, 9);
  const auto uniform = util::uniform_keys(1 << 20, 20000, 9);
  EXPECT_LT(util::working_set_bound(local), 0.5 * util::working_set_bound(uniform));
}

TEST(Stats, SummaryBasics) {
  const auto s = util::summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p50, 3.0);
}

TEST(Stats, SummaryEmpty) {
  const auto s = util::summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Stats, SummaryPercentilesOrdered) {
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(i);
  const auto s = util::summarize(v);
  EXPECT_LE(s.min, s.p50);
  EXPECT_LE(s.p50, s.p95);
  EXPECT_LE(s.p95, s.p99);
  EXPECT_LE(s.p99, s.max);
}

TEST(Stats, LinearFitExactLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(i);
    y.push_back(3.0 + 2.0 * i);
  }
  const auto f = util::fit_linear(x, y);
  EXPECT_NEAR(f.intercept, 3.0, 1e-9);
  EXPECT_NEAR(f.slope, 2.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
}

TEST(Stats, LinearFitDegenerate) {
  const auto f = util::fit_linear({1.0}, {2.0});
  EXPECT_DOUBLE_EQ(f.slope, 0.0);
}

}  // namespace
}  // namespace pwss
