// Tests for the working-set segment (key-map + recency-map pair) and the
// stamp allocator (src/core/segment.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/segment.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

using Seg = core::Segment<int, int>;
using Item = Seg::Item;

TEST(StampGen, FrontStampsIncreaseBackStampsDecrease) {
  core::StampGen g;
  const auto f1 = g.fresh_front();
  const auto f2 = g.fresh_front();
  const auto b1 = g.fresh_back();
  const auto b2 = g.fresh_back();
  EXPECT_LT(f1, f2);
  EXPECT_GT(b1, b2);
  EXPECT_LT(b1, f1) << "back stamps must sort below front stamps";
}

TEST(SegmentCapacity, DoublyExponentialThenSaturates) {
  EXPECT_EQ(core::segment_capacity(0), 2u);
  EXPECT_EQ(core::segment_capacity(1), 4u);
  EXPECT_EQ(core::segment_capacity(2), 16u);
  EXPECT_EQ(core::segment_capacity(3), 256u);
  EXPECT_EQ(core::segment_capacity(4), 65536u);
  EXPECT_EQ(core::segment_capacity(6), 1ULL << 62);
  EXPECT_EQ(core::segment_capacity(60), 1ULL << 62);  // saturated, no UB
}

TEST(Segment, InsertPeekExtract) {
  Seg s;
  core::StampGen g;
  s.insert_item({5, 50, g.fresh_front()});
  s.insert_item({3, 30, g.fresh_front()});
  EXPECT_EQ(s.size(), 2u);
  ASSERT_NE(s.peek(5), nullptr);
  EXPECT_EQ(s.peek(5)->first, 50);
  EXPECT_EQ(s.peek(99), nullptr);
  auto item = s.extract(5);
  ASSERT_TRUE(item.has_value());
  EXPECT_EQ(item->value, 50);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_FALSE(s.extract(5).has_value());
  EXPECT_TRUE(s.check_invariants());
}

TEST(Segment, RecencyOrderSingleOps) {
  Seg s;
  core::StampGen g;
  s.insert_item({1, 10, g.fresh_front()});
  s.insert_item({2, 20, g.fresh_front()});
  s.insert_item({3, 30, g.fresh_front()});
  // 1 is least recent, 3 most recent.
  EXPECT_EQ(s.least_recent_key(), 1);
  auto lr = s.extract_least_recent();
  ASSERT_TRUE(lr.has_value());
  EXPECT_EQ(lr->key, 1);
  auto mr = s.extract_most_recent();
  ASSERT_TRUE(mr.has_value());
  EXPECT_EQ(mr->key, 3);
  EXPECT_EQ(s.size(), 1u);
}

TEST(Segment, BackStampsAreLeastRecent) {
  Seg s;
  core::StampGen g;
  s.insert_item({1, 10, g.fresh_front()});
  s.insert_item({2, 20, g.fresh_back()});  // inserted "at the back"
  EXPECT_EQ(s.least_recent_key(), 2);
}

TEST(Segment, ExtractByKeysSortedResult) {
  Seg s;
  core::StampGen g;
  for (int k : {9, 4, 7, 1, 5}) s.insert_item({k, k * 10, g.fresh_front()});
  std::vector<int> keys = {1, 5, 6, 9};  // 6 absent
  auto found = s.extract_by_keys(keys);
  ASSERT_EQ(found.size(), 3u);
  EXPECT_EQ(found[0].key, 1);
  EXPECT_EQ(found[1].key, 5);
  EXPECT_EQ(found[2].key, 9);
  EXPECT_EQ(found[1].value, 50);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.check_invariants());
}

TEST(Segment, FindBatch) {
  Seg s;
  core::StampGen g;
  for (int k : {2, 4, 6}) s.insert_item({k, k, g.fresh_front()});
  std::vector<int> keys = {2, 3, 6};
  std::vector<const std::pair<int, std::uint64_t>*> out;
  s.find_batch(keys, out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NE(out[0], nullptr);
  EXPECT_EQ(out[1], nullptr);
  EXPECT_NE(out[2], nullptr);
  EXPECT_EQ(s.size(), 3u);  // no mutation
}

TEST(Segment, InsertItemsBatch) {
  Seg s;
  core::StampGen g;
  std::vector<Item> items;
  for (int k : {1, 3, 5, 7}) items.push_back({k, k, g.fresh_front()});
  s.insert_items(std::move(items));
  EXPECT_EQ(s.size(), 4u);
  EXPECT_TRUE(s.check_invariants());
  EXPECT_EQ(s.least_recent_key(), 1);  // first stamped = least recent
}

TEST(Segment, ExtractLeastRecentBatchReturnsKeySorted) {
  Seg s;
  core::StampGen g;
  // Insert in "recency order" 9, 2, 7, 5: least recent are 9 then 2.
  for (int k : {9, 2, 7, 5}) s.insert_item({k, k, g.fresh_front()});
  auto out = s.extract_least_recent(2);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 2);  // sorted by key
  EXPECT_EQ(out[1].key, 9);
  EXPECT_EQ(s.size(), 2u);
}

TEST(Segment, ExtractMostRecentBatch) {
  Seg s;
  core::StampGen g;
  for (int k : {9, 2, 7, 5}) s.insert_item({k, k, g.fresh_front()});
  auto out = s.extract_most_recent(2);  // 7 and 5 are most recent
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 5);
  EXPECT_EQ(out[1].key, 7);
}

TEST(Segment, ExtractAllEmptiesSegment) {
  Seg s;
  core::StampGen g;
  for (int k = 0; k < 100; ++k) s.insert_item({k, k, g.fresh_front()});
  auto all = s.extract_all();
  EXPECT_EQ(all.size(), 100u);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(std::is_sorted(all.begin(), all.end(),
                             [](const Item& a, const Item& b) {
                               return a.key < b.key;
                             }));
}

TEST(Segment, ExtractMoreThanSizeClamps) {
  Seg s;
  core::StampGen g;
  s.insert_item({1, 1, g.fresh_front()});
  EXPECT_EQ(s.extract_least_recent(10).size(), 1u);
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.extract_most_recent(5).empty());
}

TEST(Segment, StampsSurviveMovesBetweenSegments) {
  // Items moved across segments keep their stamps, and recency order stays
  // consistent: least-recent of A is more recent than most-recent of B when
  // A's stamps all exceed B's.
  Seg a, b;
  core::StampGen g;
  b.insert_item({100, 0, g.fresh_front()});  // older
  a.insert_item({1, 0, g.fresh_front()});    // newer
  auto moved = a.extract_least_recent();     // key 1
  ASSERT_TRUE(moved);
  b.insert_item(std::move(*moved));
  // In b, 100 is least recent (older stamp).
  EXPECT_EQ(b.least_recent_key(), 100);
  EXPECT_TRUE(b.check_invariants());
}

TEST(Segment, RandomizedRecencyOrderMatchesModel) {
  util::Xoshiro256 rng(7);
  Seg s;
  core::StampGen g;
  std::vector<int> model;  // front = most recent = back of vector
  for (int step = 0; step < 2000; ++step) {
    const int action = static_cast<int>(rng.bounded(3));
    if (action == 0 || model.size() < 3) {
      const int key = static_cast<int>(rng.bounded(10000)) * 2 + 1;
      if (std::find(model.begin(), model.end(), key) == model.end()) {
        s.insert_item({key, key, g.fresh_front()});
        model.push_back(key);
      }
    } else if (action == 1) {
      auto item = s.extract_least_recent();
      ASSERT_TRUE(item);
      ASSERT_EQ(item->key, model.front());
      model.erase(model.begin());
    } else {
      auto item = s.extract_most_recent();
      ASSERT_TRUE(item);
      ASSERT_EQ(item->key, model.back());
      model.pop_back();
    }
    ASSERT_EQ(s.size(), model.size());
  }
  EXPECT_TRUE(s.check_invariants());
}

}  // namespace
}  // namespace pwss
