// Tests for the overload-robustness layer (DESIGN.md "Overload & fault
// model"): admission control (bounded in-flight window, reject vs
// bounded-block), op deadlines and cancellation (terminal-status
// exactness, quiescence-counter conservation), the retry/backoff helper,
// and the seeded schedule-point fault injector.
//
// The fault-injection suites GTEST_SKIP in ordinary builds (the sites
// compile to `false`); CI's fault matrix job rebuilds with
// -DPWSS_FAULT_INJECT=ON and runs them for real across a seed sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "core/future.hpp"
#include "driver/admission.hpp"
#include "driver/registry.hpp"
#include "driver/retry.hpp"
#include "sched/scheduler.hpp"
#include "util/fault.hpp"
#include "util/node_pool.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

using IntDriver = driver::Driver<std::uint64_t, std::uint64_t>;
using IntOp = core::Op<std::uint64_t, std::uint64_t>;
using IntTicket = core::OpTicket<std::uint64_t>;

// Every registered wiring, plus sharded variants: the robustness layer
// lives in the shared Driver base, so each contract below must hold for
// all of them.
constexpr const char* kAllBackends[] = {"m0",  "m1",     "m2",
                                        "avl", "iacono", "splay",
                                        "locked", "sharded:m1", "sharded:m2"};

driver::Options two_workers() {
  driver::Options opts;
  opts.workers = 2;
  return opts;
}

// ---- protocol: deadlines -----------------------------------------------------

TEST(Deadline, ExpiredOpCompletesTimedOutWithoutExecuting) {
  for (const char* name : kAllBackends) {
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
        name, two_workers());
    d->insert(7, 70);

    // Async: an already-expired deadline never reaches the backend — the
    // ticket comes back kTimedOut (fulfilled by the admission screen or
    // at the first batch cut, depending on wiring).
    auto f = d->submit(IntOp::search(7).with_deadline(1));
    EXPECT_EQ(f.get().status, core::ResultStatus::kTimedOut) << name;

    // Blocking: same terminal status through run_blocking.
    const auto r = d->run_blocking(IntOp::erase(7).with_deadline(1));
    EXPECT_EQ(r.status, core::ResultStatus::kTimedOut) << name;

    // Nothing executed: the key survives both expired ops.
    EXPECT_EQ(d->search(7), 70u) << name;
    EXPECT_EQ(d->validate(), "") << name;
  }
}

TEST(Deadline, GenerousDeadlineExecutesNormally) {
  for (const char* name : kAllBackends) {
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
        name, two_workers());
    auto f = d->submit(
        IntOp::insert(1, 10).with_timeout(std::chrono::seconds(30)));
    EXPECT_EQ(f.get().status, core::ResultStatus::kInserted) << name;
    EXPECT_EQ(d->search(1), 10u) << name;
  }
}

// ---- protocol: cancellation --------------------------------------------------

TEST(Cancel, TerminalStatusIsExactUnderRacingCancels) {
  // Distinct insert keys make exactness observable: an op that reports
  // kCancelled must not have touched the structure, so size() equals the
  // count of kInserted results no matter where each cancel lands.
  for (const char* name : kAllBackends) {
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
        name, two_workers());
    constexpr std::size_t kOps = 512;
    std::vector<IntTicket> tickets(kOps);

    std::atomic<bool> go{false};
    std::thread canceller([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (std::size_t i = 0; i < kOps; i += 2) tickets[i].cancel();
    });
    for (std::size_t i = 0; i < kOps; ++i) {
      d->submit(IntOp::insert(i, i * 3), &tickets[i]);
      if (i == kOps / 8) go.store(true, std::memory_order_release);
    }
    go.store(true, std::memory_order_release);
    canceller.join();
    d->quiesce();

    std::size_t inserted = 0;
    for (std::size_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(tickets[i].ready.load(std::memory_order_acquire))
          << name << " op " << i << " not terminal after quiesce()";
      const auto status = tickets[i].result.status;
      if (status == core::ResultStatus::kInserted) {
        ++inserted;
      } else {
        ASSERT_EQ(status, core::ResultStatus::kCancelled)
            << name << " op " << i;
      }
    }
    EXPECT_EQ(d->size(), inserted) << name;
    EXPECT_EQ(d->validate(), "") << name;
  }
}

TEST(Cancel, FutureCancelReachesTheTicket) {
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
      "m1", two_workers());
  // Cancel after completion is a harmless no-op and the result stands.
  auto f = d->submit(IntOp::insert(1, 10));
  d->quiesce();
  f.cancel();
  EXPECT_EQ(f.get().status, core::ResultStatus::kInserted);
  EXPECT_EQ(d->search(1), 10u);
}

TEST(Cancel, QuiescenceCountersConservedUnderConcurrentCancelAndQuiesce) {
  // The TSan target for the counter protocol: submitters, a canceller,
  // and a quiescer all running at once. Every op must reach a terminal
  // status and the in-flight window must read zero afterwards — a double
  // debit (cancelled AND fulfilled) or a missed one (vanished op) shows
  // up as a wrapped or stuck counter.
  for (const char* name : {"m1", "m2", "sharded:m1"}) {
    driver::Options opts = two_workers();
    opts.max_in_flight = 64;  // exercise the admission window too
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);

    constexpr int kSubmitters = 3;
    constexpr std::size_t kPerThread = 400;
    std::vector<std::vector<IntTicket>> tickets(kSubmitters);
    for (auto& v : tickets) v = std::vector<IntTicket>(kPerThread);

    std::atomic<bool> stop{false};
    std::thread quiescer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        d->quiesce();
        std::this_thread::yield();
      }
    });
    std::thread canceller([&] {
      while (!stop.load(std::memory_order_acquire)) {
        for (auto& v : tickets) {
          for (std::size_t i = 0; i < kPerThread; i += 7) v[i].cancel();
        }
        std::this_thread::yield();
      }
    });

    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        util::Xoshiro256 rng(0x0b057ULL ^ (static_cast<std::uint64_t>(t) * 31));
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t key = rng.bounded(256);
          d->submit(IntOp::upsert(key, key + 1), &tickets[t][i]);
        }
      });
    }
    for (auto& th : submitters) th.join();
    d->quiesce();
    stop.store(true, std::memory_order_release);
    quiescer.join();
    canceller.join();
    d->quiesce();

    for (const auto& v : tickets) {
      for (const auto& ticket : v) {
        ASSERT_TRUE(ticket.ready.load(std::memory_order_acquire))
            << name << ": op not terminal after quiesce()";
      }
    }
    EXPECT_EQ(d->admission().in_flight(), 0u) << name;
    EXPECT_EQ(d->validate(), "") << name;
  }
}

// ---- admission control -------------------------------------------------------

TEST(Admission, RejectPolicyShedsWithOverloadedAndWindowNeverOverfills) {
  driver::Options opts = two_workers();
  opts.max_in_flight = 4;
  opts.admission = driver::AdmissionPolicy::kReject;
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>("m1", opts);

  constexpr std::size_t kOps = 2000;
  std::vector<IntTicket> tickets(kOps);
  std::size_t max_seen = 0;
  for (std::size_t i = 0; i < kOps; ++i) {
    d->submit(IntOp::upsert(i % 64, i), &tickets[i]);
    max_seen = std::max(max_seen, d->admission().in_flight());
  }
  d->quiesce();

  std::size_t accepted = 0;
  std::size_t shed = 0;
  for (auto& ticket : tickets) {
    ASSERT_TRUE(ticket.ready.load(std::memory_order_acquire));
    if (ticket.result.status == core::ResultStatus::kOverloaded) {
      ++shed;
    } else {
      ASSERT_FALSE(ticket.result.is_error());
      ++accepted;
    }
  }
  EXPECT_EQ(accepted + shed, kOps);
  EXPECT_GT(accepted, 0u);  // a window of 4 still makes progress
  EXPECT_LE(max_seen, opts.max_in_flight);
  EXPECT_EQ(d->admission().in_flight(), 0u);
  EXPECT_EQ(d->validate(), "");
}

TEST(Admission, BlockPolicyCompletesEveryOpWithinTheWindow) {
  driver::Options opts = two_workers();
  opts.max_in_flight = 2;
  opts.admission = driver::AdmissionPolicy::kBlock;
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>("m1", opts);

  // Four clients against a window of two: submitters park instead of
  // shedding, so every op executes exactly once.
  constexpr int kClients = 4;
  constexpr std::uint64_t kPerClient = 300;
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> inserted{0};
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(c) * kPerClient + i;
        if (d->insert(key, key)) inserted.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(inserted.load(), kClients * kPerClient);
  EXPECT_EQ(d->size(), kClients * kPerClient);
  EXPECT_EQ(d->admission().in_flight(), 0u);
  EXPECT_EQ(d->validate(), "");
}

TEST(Admission, BlockPolicyHonoursDeadlines) {
  // Controller-level determinism: hold the only slot ourselves, then park
  // on a deadline that passes while we wait — the bounded block must give
  // up with kExpired instead of parking forever.
  driver::AdmissionController ctl(
      driver::AdmissionConfig{1, driver::AdmissionPolicy::kBlock});
  ASSERT_EQ(ctl.try_admit(0), driver::Admit::kAdmitted);
  EXPECT_EQ(ctl.in_flight(), 1u);

  const std::uint64_t deadline =
      core::deadline_after(std::chrono::milliseconds(5));
  EXPECT_EQ(ctl.try_admit(deadline), driver::Admit::kExpired);
  EXPECT_GE(core::now_ns(), deadline);  // it actually waited the window out

  // An already-expired deadline outranks even a free window.
  ctl.release();
  EXPECT_EQ(ctl.try_admit(1), driver::Admit::kExpired);
  EXPECT_EQ(ctl.in_flight(), 0u);

  // And through the driver: an expired deadline on the blocking path
  // surfaces kTimedOut without executing.
  driver::Options opts = two_workers();
  opts.max_in_flight = 1;
  opts.admission = driver::AdmissionPolicy::kBlock;
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>("m1", opts);
  const auto r = d->run_blocking(IntOp::search(1).with_deadline(1));
  EXPECT_EQ(r.status, core::ResultStatus::kTimedOut);
  EXPECT_EQ(d->admission().in_flight(), 0u);
}

TEST(Admission, ShardedDriversShedPerShard) {
  driver::Options opts = two_workers();
  opts.shards = 4;
  opts.max_in_flight = 8;
  auto d =
      driver::make_driver<std::uint64_t, std::uint64_t>("sharded:m1", opts);

  // The outer controller stays inert (the window belongs to the shards).
  EXPECT_FALSE(d->admission().bounded());

  constexpr std::size_t kOps = 4000;
  std::vector<IntTicket> tickets(kOps);
  for (std::size_t i = 0; i < kOps; ++i) {
    d->submit(IntOp::upsert(i, i), &tickets[i]);
  }
  d->quiesce();
  std::size_t accepted = 0;
  for (auto& ticket : tickets) {
    ASSERT_TRUE(ticket.ready.load(std::memory_order_acquire));
    if (!ticket.result.is_error()) ++accepted;
  }
  EXPECT_GT(accepted, 0u);
  // Distinct upsert keys: each accepted op inserted its own key, so the
  // conservation size() == #accepted is exact even with per-shard sheds.
  EXPECT_EQ(d->size(), accepted);
  EXPECT_EQ(d->validate(), "");
}

// ---- retry / backoff ---------------------------------------------------------

TEST(Retry, BackoffStopsAtAttemptBudget) {
  driver::retry::BackoffPolicy policy;
  policy.initial_delay_ns = 100;  // keep the test fast
  policy.max_delay_ns = 200;
  policy.max_attempts = 3;
  driver::retry::Backoff backoff(policy);
  EXPECT_TRUE(backoff.next(0));
  EXPECT_TRUE(backoff.next(0));
  EXPECT_TRUE(backoff.next(0));
  EXPECT_FALSE(backoff.next(0));  // budget spent
  EXPECT_EQ(backoff.attempts(), 3u);
}

TEST(Retry, BackoffRefusesToSleepPastTheDeadline) {
  driver::retry::Backoff backoff;  // first delay ~10us
  // A deadline closer than any possible jittered delay: refuse without
  // sleeping instead of overshooting it.
  EXPECT_FALSE(backoff.next(core::now_ns() + 1000));
}

TEST(Retry, BlockingConveniencesAbsorbTransientOverload) {
  // With a window of 1 and two hammering clients, the blocking path's
  // admission verdicts frequently come back kShed — the retry loop must
  // absorb every one of them (no deadline, ample attempts at these
  // depths) so callers never see a spurious failure.
  driver::Options opts = two_workers();
  opts.max_in_flight = 1;
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>("m1", opts);
  constexpr std::uint64_t kPerClient = 200;
  std::vector<std::thread> clients;
  std::atomic<std::uint64_t> ok{0};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      for (std::uint64_t i = 0; i < kPerClient; ++i) {
        const std::uint64_t key =
            static_cast<std::uint64_t>(c) * kPerClient + i;
        if (d->insert(key, key * 2)) ok.fetch_add(1);
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_EQ(ok.load(), 2 * kPerClient);
  EXPECT_EQ(d->size(), 2 * kPerClient);
}

// ---- lost-wakeup regression --------------------------------------------------

TEST(Wakeup, FutureWaitSurvivesConcurrentQuiesce) {
  // Regression pin for the futex path in OpTicket::wait(): ready is
  // published with release + notify_all AFTER the result write, and
  // wait(false) returns immediately when the value already changed, so a
  // waiter that races the publish cannot sleep forever. A concurrent
  // quiescer maximises the racing window (quiesce fulfills whole cut
  // batches back-to-back while waiters are mid-transition from the spin
  // phase to the futex phase). A lost wakeup hangs this test; the ctest
  // timeout turns that into a failure.
  for (const char* name : {"m1", "m2"}) {
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
        name, two_workers());
    std::atomic<bool> stop{false};
    std::thread quiescer([&] {
      while (!stop.load(std::memory_order_acquire)) d->quiesce();
    });

    constexpr int kClients = 3;
    constexpr std::uint64_t kPerClient = 600;
    std::vector<std::thread> clients;
    std::atomic<std::uint64_t> completed{0};
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        for (std::uint64_t i = 0; i < kPerClient; ++i) {
          const std::uint64_t key =
              static_cast<std::uint64_t>(c) * kPerClient + i;
          auto f = d->submit(IntOp::insert(key, key));
          if (f.get().status == core::ResultStatus::kInserted) {
            completed.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : clients) th.join();
    stop.store(true, std::memory_order_release);
    quiescer.join();
    EXPECT_EQ(completed.load(), kClients * kPerClient) << name;
    EXPECT_EQ(d->size(), kClients * kPerClient) << name;
  }
}

// ---- fault injection ---------------------------------------------------------

#define PWSS_REQUIRE_FAULTS()                                        \
  do {                                                               \
    if (!util::faultpt::kCompiled) {                                 \
      GTEST_SKIP() << "fault points compiled out; rebuild with "     \
                   << "-DPWSS_FAULT_INJECT=ON to run the injector";  \
    }                                                                \
  } while (0)

class FaultInjectTest : public ::testing::Test {
 protected:
  void TearDown() override {
    util::faultpt::disable();
    util::faultpt::clear_forced();
    util::faultpt::clear_selection();
  }
};

TEST_F(FaultInjectTest, ForcedNodePoolExhaustionSurfacesAndPoolRecovers) {
  PWSS_REQUIRE_FAULTS();
  struct Node {
    std::uint64_t payload;
  };
  sched::Scheduler scheduler(2);
  util::NodePool<Node> pool(&scheduler);

  // The pool allocates chunks lazily, so the very first create() needs a
  // chunk and the forced failure fires deterministically.
  util::faultpt::force("node_pool.chunk_alloc", 1);
  EXPECT_THROW((void)pool.create(Node{1}), util::PoolExhausted);
  EXPECT_EQ(pool.validate(), "");  // failed acquire left the pool untouched
  EXPECT_EQ(pool.live_nodes(), 0u);

  // Recovery is simply "try again": the forced count is spent.
  Node* n = pool.create(Node{2});
  ASSERT_NE(n, nullptr);
  EXPECT_EQ(n->payload, 2u);
  pool.destroy(n);
  EXPECT_EQ(pool.live_nodes(), 0u);
  EXPECT_EQ(pool.validate(), "");
}

TEST_F(FaultInjectTest, PoolExhaustedIsABadAlloc) {
  // Code written for real heap exhaustion handles the injected kind: the
  // exception derives from std::bad_alloc.
  static_assert(std::is_base_of_v<std::bad_alloc, util::PoolExhausted>);
  util::PoolExhausted e;
  EXPECT_NE(std::string(e.what()).find("injected"), std::string::npos);
}

TEST_F(FaultInjectTest, SeededSweepEveryOpTerminalStructureClean) {
  PWSS_REQUIRE_FAULTS();
  // The acceptance sweep: seeded injection at every clean-by-construction
  // site while mixed async traffic runs against EVERY backend wiring.
  // After quiescing, all ops must be terminal (executed or kOverloaded —
  // nothing torn, nothing lost), deep validate() clean, and the
  // distinct-key insert conservation exact.
  util::faultpt::select_only({"async_map.batch.pool_reserve",
                              "m2.batch.pool_reserve",
                              "parallel_buffer.submit.reject",
                              "scheduler.spawn.stall"});
  for (const char* name : kAllBackends) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      util::faultpt::enable(0x5eedfa17ULL + seed * 0x9e3779b9ULL,
                            /*period=*/8);
      auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
          name, two_workers());
      constexpr std::size_t kOps = 600;
      std::vector<IntTicket> tickets(kOps);
      for (std::size_t i = 0; i < kOps; ++i) {
        d->submit(IntOp::insert(i, i * 5), &tickets[i]);
      }
      d->quiesce();
      util::faultpt::disable();

      std::size_t inserted = 0;
      for (std::size_t i = 0; i < kOps; ++i) {
        ASSERT_TRUE(tickets[i].ready.load(std::memory_order_acquire))
            << name << " seed " << seed << ": op " << i
            << " not terminal after quiesce()";
        const auto status = tickets[i].result.status;
        if (status == core::ResultStatus::kInserted) {
          ++inserted;
        } else {
          ASSERT_EQ(status, core::ResultStatus::kOverloaded)
              << name << " seed " << seed << " op " << i;
        }
      }
      ASSERT_EQ(d->size(), inserted) << name << " seed " << seed;
      ASSERT_EQ(d->validate(), "") << name << " seed " << seed;
      ASSERT_EQ(d->admission().in_flight(), 0u) << name << " seed " << seed;
    }
  }
}

TEST_F(FaultInjectTest, BlockingPathRetriesThroughInjectedRejections) {
  PWSS_REQUIRE_FAULTS();
  // Injected buffer rejections surface as kOverloaded, which the blocking
  // conveniences absorb via backoff — callers see only clean results.
  util::faultpt::select_only({"parallel_buffer.submit.reject"});
  util::faultpt::enable(0xb10c4ed, /*period=*/4);
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
      "m1", two_workers());
  for (std::uint64_t k = 0; k < 300; ++k) {
    EXPECT_TRUE(d->insert(k, k * 2));
  }
  util::faultpt::disable();
  EXPECT_GT(util::faultpt::fires("parallel_buffer.submit.reject"), 0u)
      << "the injector never fired — the sweep tested nothing";
  EXPECT_EQ(d->size(), 300u);
  EXPECT_EQ(d->validate(), "");
}

TEST_F(FaultInjectTest, RegistryCountsHitsAndFires) {
  PWSS_REQUIRE_FAULTS();
  const std::uint64_t hits_before =
      util::faultpt::hits("parallel_buffer.submit.reject");
  auto d = driver::make_driver<std::uint64_t, std::uint64_t>(
      "m1", two_workers());
  for (std::uint64_t k = 0; k < 50; ++k) (void)d->insert(k, k);
  d->quiesce();
  EXPECT_GT(util::faultpt::hits("parallel_buffer.submit.reject"), hits_before)
      << "the submit site is no longer on the hot path";
  bool found = false;
  for (const auto& s : util::faultpt::snapshot()) {
    if (s.name == "parallel_buffer.submit.reject") found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace pwss
