// Tests for the join-based balanced tree (src/tree/jtree.hpp), including
// randomized differential tests against std::map and parameterized batch
// sweeps.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sched/scheduler.hpp"
#include "tree/jtree.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

using IntTree = tree::JTree<int, int>;

std::vector<std::pair<int, int>> sorted_pairs(std::vector<int> keys) {
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  std::vector<std::pair<int, int>> out;
  out.reserve(keys.size());
  for (int k : keys) out.emplace_back(k, k * 10);
  return out;
}

TEST(JTree, EmptyTree) {
  IntTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.find(1), nullptr);
  EXPECT_FALSE(t.erase(1).has_value());
  EXPECT_TRUE(t.check_invariants());
}

TEST(JTree, InsertFindErase) {
  IntTree t;
  EXPECT_TRUE(t.insert(5, 50));
  EXPECT_TRUE(t.insert(3, 30));
  EXPECT_TRUE(t.insert(8, 80));
  EXPECT_FALSE(t.insert(5, 55));  // overwrite
  EXPECT_EQ(t.size(), 3u);
  ASSERT_NE(t.find(5), nullptr);
  EXPECT_EQ(*t.find(5), 55);
  EXPECT_EQ(t.find(4), nullptr);
  auto removed = t.erase(3);
  ASSERT_TRUE(removed.has_value());
  EXPECT_EQ(*removed, 30);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(JTree, SequentialInsertStaysBalanced) {
  IntTree t;
  for (int i = 0; i < 4096; ++i) t.insert(i, i);
  EXPECT_EQ(t.size(), 4096u);
  EXPECT_TRUE(t.check_invariants());
  for (int i = 0; i < 4096; ++i) ASSERT_NE(t.find(i), nullptr);
}

TEST(JTree, ReverseInsertStaysBalanced) {
  IntTree t;
  for (int i = 4096; i-- > 0;) t.insert(i, i);
  EXPECT_TRUE(t.check_invariants());
}

TEST(JTree, OrderStatistics) {
  IntTree t;
  for (int i = 0; i < 100; ++i) t.insert(i * 2, i);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(t.at(static_cast<std::size_t>(i)).first, i * 2);
  }
  EXPECT_EQ(t.rank(0), 0u);
  EXPECT_EQ(t.rank(50), 25u);   // 25 even keys below 50
  EXPECT_EQ(t.rank(51), 26u);   // absent key: count of smaller keys
  EXPECT_EQ(t.rank(1000), 100u);
}

TEST(JTree, OrderedQueries) {
  IntTree t;
  EXPECT_EQ(t.predecessor(5).first, nullptr);
  EXPECT_EQ(t.successor(5).first, nullptr);
  EXPECT_EQ(t.range_count(0, 100), 0u);
  for (int i = 0; i < 100; ++i) t.insert(i * 2, i);
  // predecessor/successor are strict.
  EXPECT_EQ(*t.predecessor(50).first, 48);
  EXPECT_EQ(*t.predecessor(51).first, 50);
  EXPECT_EQ(t.predecessor(0).first, nullptr);
  EXPECT_EQ(*t.successor(50).first, 52);
  EXPECT_EQ(*t.successor(49).first, 50);
  EXPECT_EQ(t.successor(198).first, nullptr);
  EXPECT_EQ(*t.successor(-7).first, 0);
  // values ride along
  EXPECT_EQ(*t.predecessor(51).second, 25);
  // range_count is inclusive on both bounds; inverted ranges are empty.
  EXPECT_EQ(t.range_count(0, 198), 100u);
  EXPECT_EQ(t.range_count(10, 10), 1u);
  EXPECT_EQ(t.range_count(11, 11), 0u);
  EXPECT_EQ(t.range_count(11, 19), 4u);
  EXPECT_EQ(t.range_count(19, 11), 0u);
}

TEST(JTree, MoveSemantics) {
  IntTree a;
  a.insert(1, 10);
  a.insert(2, 20);
  IntTree b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  IntTree c;
  c.insert(9, 90);
  c = std::move(b);
  EXPECT_EQ(c.size(), 2u);
  ASSERT_NE(c.find(1), nullptr);
}

TEST(JTree, FromSortedBuildsBalanced) {
  std::vector<std::pair<int, int>> items;
  for (int i = 0; i < 10000; ++i) items.emplace_back(i, i);
  auto t = IntTree::from_sorted(items);
  EXPECT_EQ(t.size(), 10000u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(JTree, MultiInsertIntoEmpty) {
  IntTree t;
  const auto items = sorted_pairs({5, 1, 9, 3, 7});
  t.multi_insert(items);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(*t.find(9), 90);
}

TEST(JTree, MultiInsertMergesAndOverwrites) {
  IntTree t;
  for (int i = 0; i < 100; i += 2) t.insert(i, -1);
  std::vector<std::pair<int, int>> items;
  for (int i = 0; i < 100; i += 4) items.emplace_back(i, i);  // overwrite half
  for (int i = 1; i < 100; i += 4) items.emplace_back(i, i);  // new odd keys
  std::sort(items.begin(), items.end());
  t.multi_insert(items);
  EXPECT_TRUE(t.check_invariants());
  EXPECT_EQ(*t.find(0), 0);
  EXPECT_EQ(*t.find(2), -1);
  EXPECT_EQ(*t.find(1), 1);
}

TEST(JTree, MultiExtractRemovesAndReports) {
  IntTree t;
  for (int i = 0; i < 50; ++i) t.insert(i, i * 3);
  std::vector<int> keys = {3, 7, 49, 50, 51};  // last two absent
  std::vector<std::optional<int>> out;
  t.multi_extract(keys, out);
  EXPECT_EQ(out[0], 9);
  EXPECT_EQ(out[1], 21);
  EXPECT_EQ(out[2], 147);
  EXPECT_FALSE(out[3].has_value());
  EXPECT_FALSE(out[4].has_value());
  EXPECT_EQ(t.size(), 47u);
  EXPECT_EQ(t.find(3), nullptr);
  EXPECT_TRUE(t.check_invariants());
}

TEST(JTree, MultiFindDoesNotMutate) {
  IntTree t;
  for (int i = 0; i < 32; ++i) t.insert(i, i);
  std::vector<int> keys = {0, 16, 31, 99};
  std::vector<const int*> out;
  t.multi_find(keys, out);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(*out[0], 0);
  EXPECT_EQ(*out[1], 16);
  EXPECT_EQ(*out[2], 31);
  EXPECT_EQ(out[3], nullptr);
  EXPECT_EQ(t.size(), 32u);
}

TEST(JTree, ExtractPrefixSuffix) {
  IntTree t;
  for (int i = 0; i < 20; ++i) t.insert(i, i);
  auto prefix = t.extract_prefix(5);
  ASSERT_EQ(prefix.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(prefix[static_cast<size_t>(i)].first, i);
  auto suffix = t.extract_suffix(3);
  ASSERT_EQ(suffix.size(), 3u);
  EXPECT_EQ(suffix[0].first, 17);
  EXPECT_EQ(suffix[2].first, 19);
  EXPECT_EQ(t.size(), 12u);
  EXPECT_TRUE(t.check_invariants());
}

TEST(JTree, ExtractPrefixMoreThanSize) {
  IntTree t;
  t.insert(1, 1);
  auto all = t.extract_prefix(100);
  EXPECT_EQ(all.size(), 1u);
  EXPECT_TRUE(t.empty());
}

TEST(JTree, ToVectorInKeyOrder) {
  IntTree t;
  for (int i : {5, 2, 9, 1, 7}) t.insert(i, i);
  const auto v = t.to_vector();
  ASSERT_EQ(v.size(), 5u);
  EXPECT_TRUE(std::is_sorted(v.begin(), v.end()));
}

TEST(JTree, StringKeys) {
  tree::JTree<std::string, int> t;
  t.insert("banana", 2);
  t.insert("apple", 1);
  t.insert("cherry", 3);
  EXPECT_EQ(*t.find("apple"), 1);
  EXPECT_EQ(t.at(0).first, "apple");
  EXPECT_EQ(t.at(2).first, "cherry");
  EXPECT_TRUE(t.check_invariants());
}

// Randomized differential test against std::map.
TEST(JTree, RandomizedDifferentialAgainstStdMap) {
  util::Xoshiro256 rng(1234);
  IntTree t;
  std::map<int, int> ref;
  for (int step = 0; step < 50000; ++step) {
    const int key = static_cast<int>(rng.bounded(500));
    switch (rng.bounded(3)) {
      case 0: {
        const int val = static_cast<int>(rng.bounded(1000));
        const bool fresh = t.insert(key, val);
        EXPECT_EQ(fresh, ref.find(key) == ref.end());
        ref[key] = val;
        break;
      }
      case 1: {
        auto removed = t.erase(key);
        auto it = ref.find(key);
        EXPECT_EQ(removed.has_value(), it != ref.end());
        if (it != ref.end()) {
          EXPECT_EQ(*removed, it->second);
          ref.erase(it);
        }
        break;
      }
      default: {
        const int* v = t.find(key);
        auto it = ref.find(key);
        ASSERT_EQ(v != nullptr, it != ref.end());
        if (v) { EXPECT_EQ(*v, it->second); }
        break;
      }
    }
    EXPECT_EQ(t.size(), ref.size());
  }
  EXPECT_TRUE(t.check_invariants());
}

// Randomized batch-op differential test.
TEST(JTree, RandomizedBatchDifferential) {
  util::Xoshiro256 rng(99);
  IntTree t;
  std::map<int, int> ref;
  for (int round = 0; round < 200; ++round) {
    // Random sorted unique batch.
    std::set<int> key_set;
    const std::size_t b = 1 + rng.bounded(64);
    while (key_set.size() < b) key_set.insert(static_cast<int>(rng.bounded(400)));
    if (rng.bounded(2) == 0) {
      std::vector<std::pair<int, int>> items;
      for (int k : key_set) items.emplace_back(k, round);
      t.multi_insert(items);
      for (int k : key_set) ref[k] = round;
    } else {
      std::vector<int> keys(key_set.begin(), key_set.end());
      std::vector<std::optional<int>> out;
      t.multi_extract(keys, out);
      for (std::size_t i = 0; i < keys.size(); ++i) {
        auto it = ref.find(keys[i]);
        ASSERT_EQ(out[i].has_value(), it != ref.end());
        if (it != ref.end()) {
          EXPECT_EQ(*out[i], it->second);
          ref.erase(it);
        }
      }
    }
    ASSERT_EQ(t.size(), ref.size());
    ASSERT_TRUE(t.check_invariants());
  }
  // Final content identical.
  const auto v = t.to_vector();
  std::vector<std::pair<int, int>> rv(ref.begin(), ref.end());
  EXPECT_EQ(v, rv);
}

// Parallel batch ops give identical results to sequential ones.
class JTreeParallelTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(JTreeParallelTest, ParallelMatchesSequential) {
  const std::size_t batch_size = GetParam();
  sched::Scheduler scheduler(4);
  const tree::ParCtx ctx{&scheduler, 32};

  util::Xoshiro256 rng(batch_size);
  std::set<int> key_set;
  while (key_set.size() < batch_size) {
    key_set.insert(static_cast<int>(rng.bounded(1 << 20)));
  }
  std::vector<std::pair<int, int>> items;
  for (int k : key_set) items.emplace_back(k, k ^ 0x55);

  IntTree seq, par;
  for (int i = 0; i < 1000; ++i) {
    seq.insert(static_cast<int>(i * 7919 % (1 << 20)), i);
    par.insert(static_cast<int>(i * 7919 % (1 << 20)), i);
  }
  seq.multi_insert(items);
  par.multi_insert(items, ctx);
  EXPECT_EQ(seq.to_vector(), par.to_vector());
  EXPECT_TRUE(par.check_invariants());

  std::vector<int> keys;
  for (std::size_t i = 0; i < items.size(); i += 2) keys.push_back(items[i].first);
  std::vector<std::optional<int>> out_seq, out_par;
  seq.multi_extract(keys, out_seq);
  par.multi_extract(keys, out_par, ctx);
  EXPECT_EQ(out_seq, out_par);
  EXPECT_EQ(seq.to_vector(), par.to_vector());
  EXPECT_TRUE(par.check_invariants());
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, JTreeParallelTest,
                         ::testing::Values(1, 2, 3, 10, 100, 1000, 10000));

}  // namespace
}  // namespace pwss
