// Differential coverage for the two-representation segment: the flat
// (sorted-array) layout must be observationally identical to the pinned
// JTree layout through the entire Segment API, across the promote/demote
// boundary (kFlatSegmentMax / kFlatSegmentDemote), and both must agree
// with a std::map-based oracle on contents and recency order.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "core/flat_segment.hpp"
#include "core/segment.hpp"
#include "util/rng.hpp"

namespace {

using pwss::core::kFlatSegmentDemote;
using pwss::core::kFlatSegmentMax;
using Seg = pwss::core::Segment<std::uint64_t, std::uint64_t>;
using Item = Seg::Item;

// ---- representation mechanics -------------------------------------------

TEST(FlatSegment, StartsFlatAndPromotesPastCapacity) {
  Seg seg;
  EXPECT_TRUE(seg.is_flat());
  for (std::uint64_t i = 0; i < kFlatSegmentMax; ++i) {
    seg.insert_front({i, i, 0});
  }
  EXPECT_TRUE(seg.is_flat());
  ASSERT_TRUE(seg.check_invariants());
  seg.insert_front({kFlatSegmentMax, kFlatSegmentMax, 0});
  EXPECT_FALSE(seg.is_flat());
  ASSERT_TRUE(seg.check_invariants());
  // Everything inserted before and after the promotion is visible.
  for (std::uint64_t i = 0; i <= kFlatSegmentMax; ++i) {
    ASSERT_NE(seg.peek(i), nullptr) << "key " << i;
    EXPECT_EQ(seg.peek(i)->first, i);
  }
}

TEST(FlatSegment, BatchInsertOverCapacityPromotes) {
  Seg seg;
  std::vector<Item> items;
  for (std::uint64_t i = 0; i < kFlatSegmentMax + 8; ++i) {
    items.push_back({i, i * 2, 0});
  }
  seg.insert_front_batch(std::move(items));
  EXPECT_FALSE(seg.is_flat());
  EXPECT_EQ(seg.size(), kFlatSegmentMax + 8);
  ASSERT_TRUE(seg.check_invariants());
}

TEST(FlatSegment, DemotesWithHysteresisOnExtract) {
  Seg seg;
  for (std::uint64_t i = 0; i < kFlatSegmentMax + 16; ++i) {
    seg.insert_front({i, i, 0});
  }
  ASSERT_FALSE(seg.is_flat());
  // Extract down to just above the demote bound: still a tree.
  std::uint64_t next = kFlatSegmentMax + 15;
  while (seg.size() > kFlatSegmentDemote + 1) {
    ASSERT_TRUE(seg.extract(next--).has_value());
    EXPECT_FALSE(seg.is_flat());
  }
  // One more extract crosses the bound: back to flat.
  ASSERT_TRUE(seg.extract(next--).has_value());
  EXPECT_TRUE(seg.is_flat());
  ASSERT_TRUE(seg.check_invariants());
  for (std::uint64_t i = 0; i <= next; ++i) {
    ASSERT_NE(seg.peek(i), nullptr) << "key " << i;
  }
}

TEST(FlatSegment, DebugForceTreePinsRepresentation) {
  Seg seg;
  seg.insert_front({1, 1, 0});
  seg.debug_force_tree();
  EXPECT_FALSE(seg.is_flat());
  ASSERT_TRUE(seg.extract(1).has_value());
  seg.insert_front({2, 2, 0});
  ASSERT_TRUE(seg.extract(2).has_value());
  EXPECT_FALSE(seg.is_flat());  // demotion disabled while pinned
  ASSERT_TRUE(seg.check_invariants());
}

TEST(FlatSegment, RecencyStampsSurvivePromoteAndDemote) {
  Seg seg;
  for (std::uint64_t i = 0; i < kFlatSegmentMax + 1; ++i) {
    seg.insert_front({i, i, 0});  // promotes at the last insert
  }
  ASSERT_FALSE(seg.is_flat());
  // Oldest item was inserted first.
  ASSERT_TRUE(seg.least_recent_key().has_value());
  EXPECT_EQ(*seg.least_recent_key(), 0u);
  // Extract down to a flat segment; recency order must be intact.
  std::vector<Item> out;
  seg.extract_most_recent(kFlatSegmentMax + 1 - kFlatSegmentDemote, out);
  ASSERT_TRUE(seg.is_flat());
  ASSERT_TRUE(seg.least_recent_key().has_value());
  EXPECT_EQ(*seg.least_recent_key(), 0u);
  auto lr = seg.extract_least_recent();
  ASSERT_TRUE(lr.has_value());
  EXPECT_EQ(lr->key, 0u);
}

// ---- low-level FlatSegment checks ---------------------------------------

TEST(FlatSegmentRaw, BranchlessLowerBoundMatchesStd) {
  pwss::core::FlatSegment<std::uint64_t, std::uint64_t> flat;
  std::vector<std::uint64_t> keys;
  pwss::util::Xoshiro256 rng(3);
  std::set<std::uint64_t> used;
  for (std::size_t i = 0; i < kFlatSegmentMax; ++i) {
    std::uint64_t k = rng.bounded(1000);
    while (used.count(k)) k = rng.bounded(1000);
    used.insert(k);
  }
  std::uint64_t stamp = 0;
  for (std::uint64_t k : used) {
    flat.insert({k, k, stamp++});
    keys.push_back(k);
  }
  for (std::uint64_t probe = 0; probe <= 1001; ++probe) {
    const auto expect = static_cast<std::size_t>(
        std::lower_bound(keys.begin(), keys.end(), probe) - keys.begin());
    EXPECT_EQ(flat.lower_bound_idx(probe), expect) << "probe " << probe;
  }
}

TEST(FlatSegmentRaw, ExtractByRecencyPicksGlobalExtremes) {
  pwss::core::FlatSegment<std::uint64_t, std::uint64_t> flat;
  // Stamps deliberately not aligned with key order.
  const std::uint64_t stamps[] = {50, 10, 90, 30, 70};
  for (std::uint64_t i = 0; i < 5; ++i) flat.insert({i, i, stamps[i]});
  std::vector<pwss::core::SegmentItem<std::uint64_t, std::uint64_t>> out;
  flat.extract_by_recency(2, /*least=*/true, out);
  ASSERT_EQ(out.size(), 2u);
  // Least-recent two are stamps 10 (key 1) and 30 (key 3) — key order out.
  EXPECT_EQ(out[0].key, 1u);
  EXPECT_EQ(out[1].key, 3u);
  EXPECT_EQ(flat.size(), 3u);
  EXPECT_TRUE(flat.check_invariants());
  out.clear();
  flat.extract_by_recency(1, /*least=*/false, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 2u);  // stamp 90
  EXPECT_TRUE(flat.check_invariants());
}

// ---- differential fuzz ---------------------------------------------------

// Oracle mirroring Segment semantics: key -> (value, arrival counter); the
// counter stands in for recency (front arrivals count up, back arrivals
// count down from a mid origin — matching StampGen's two-sided scheme).
struct Oracle {
  std::map<std::uint64_t, std::pair<std::uint64_t, std::int64_t>> items;
  std::int64_t front_next = 1;
  std::int64_t back_next = -1;

  void insert_front(std::uint64_t k, std::uint64_t v) {
    items[k] = {v, front_next++};
  }
  void insert_back(std::uint64_t k, std::uint64_t v) {
    items[k] = {v, back_next--};
  }
  std::uint64_t least_recent() const {
    auto best = items.begin();
    for (auto it = items.begin(); it != items.end(); ++it) {
      if (it->second.second < best->second.second) best = it;
    }
    return best->first;
  }
  std::uint64_t most_recent() const {
    auto best = items.begin();
    for (auto it = items.begin(); it != items.end(); ++it) {
      if (it->second.second > best->second.second) best = it;
    }
    return best->first;
  }
};

// Drives the same random operation mix through a default (flat-capable)
// segment, a pinned-tree segment, and the oracle, with sizes oscillating
// across the 16 / kFlatSegmentDemote / kFlatSegmentMax boundaries so both
// promote and demote fire many times.
TEST(FlatSegmentFuzz, DifferentialAgainstPinnedTreeAndOracle) {
  Seg flat_seg;
  Seg tree_seg;
  tree_seg.debug_force_tree();
  Oracle oracle;
  pwss::util::Xoshiro256 rng(1234);
  const std::uint64_t kKeys = 3 * kFlatSegmentMax;

  std::size_t promotes_seen = 0;
  std::size_t demotes_seen = 0;
  bool was_flat = true;

  for (std::size_t step = 0; step < 20000; ++step) {
    const std::uint64_t key = rng.bounded(kKeys);
    switch (rng.bounded(8)) {
      case 0:
      case 1: {  // insert_front of an absent key
        if (oracle.items.count(key)) break;
        flat_seg.insert_front({key, key * 3, 0});
        tree_seg.insert_front({key, key * 3, 0});
        oracle.insert_front(key, key * 3);
        break;
      }
      case 2: {  // insert_back of an absent key
        if (oracle.items.count(key)) break;
        flat_seg.insert_back({key, key * 3, 0});
        tree_seg.insert_back({key, key * 3, 0});
        oracle.insert_back(key, key * 3);
        break;
      }
      case 3: {  // point extract
        auto a = flat_seg.extract(key);
        auto b = tree_seg.extract(key);
        ASSERT_EQ(a.has_value(), b.has_value());
        ASSERT_EQ(a.has_value(), oracle.items.count(key) == 1);
        if (a) {
          EXPECT_EQ(a->key, b->key);
          EXPECT_EQ(a->value, b->value);
          oracle.items.erase(key);
        }
        break;
      }
      case 4: {  // extract_least_recent (point)
        auto a = flat_seg.extract_least_recent();
        auto b = tree_seg.extract_least_recent();
        ASSERT_EQ(a.has_value(), b.has_value());
        if (a) {
          const std::uint64_t expect = oracle.least_recent();
          EXPECT_EQ(a->key, expect);
          EXPECT_EQ(b->key, expect);
          oracle.items.erase(expect);
        }
        break;
      }
      case 5: {  // batched extract_by_keys over a random key window
        std::vector<std::uint64_t> keys;
        const std::uint64_t lo = rng.bounded(kKeys);
        for (std::uint64_t k = lo; k < std::min<std::uint64_t>(lo + 24, kKeys);
             ++k) {
          keys.push_back(k);
        }
        std::vector<Item> out_a;
        std::vector<Item> out_b;
        flat_seg.extract_by_keys(keys, out_a);
        tree_seg.extract_by_keys(keys, out_b);
        ASSERT_EQ(out_a.size(), out_b.size());
        for (std::size_t i = 0; i < out_a.size(); ++i) {
          EXPECT_EQ(out_a[i].key, out_b[i].key);
          EXPECT_EQ(out_a[i].value, out_b[i].value);
          ASSERT_EQ(oracle.items.count(out_a[i].key), 1u);
          oracle.items.erase(out_a[i].key);
        }
        ASSERT_TRUE(std::is_sorted(
            out_a.begin(), out_a.end(),
            [](const Item& x, const Item& y) { return x.key < y.key; }));
        break;
      }
      case 6: {  // batched insert (front), distinct absent keys
        std::vector<Item> items;
        const std::uint64_t lo = rng.bounded(kKeys);
        for (std::uint64_t k = lo; k < std::min<std::uint64_t>(lo + 24, kKeys);
             ++k) {
          if (!oracle.items.count(k)) items.push_back({k, k * 5, items.size()});
        }
        std::vector<Item> copy = items;
        flat_seg.insert_front_batch(std::span<Item>(items));
        tree_seg.insert_front_batch(std::span<Item>(copy));
        // Batch arrives most-recent-last by incoming stamp order.
        for (const auto& it : copy) (void)it;
        for (std::size_t i = 0; i < copy.size(); ++i) {
          // Recompute from the original key list (items was consumed).
        }
        for (std::uint64_t k = lo; k < std::min<std::uint64_t>(lo + 24, kKeys);
             ++k) {
          if (!oracle.items.count(k)) oracle.insert_front(k, k * 5);
        }
        break;
      }
      case 7: {  // ordered queries, read-only
        const auto pa = flat_seg.predecessor(key);
        const auto pb = tree_seg.predecessor(key);
        ASSERT_EQ(pa.first == nullptr, pb.first == nullptr);
        if (pa.first) {
          EXPECT_EQ(*pa.first, *pb.first);
          EXPECT_EQ(*pa.second, *pb.second);
          auto it = oracle.items.lower_bound(key);
          ASSERT_NE(it, oracle.items.begin());
          --it;
          EXPECT_EQ(*pa.first, it->first);
        }
        const auto sa = flat_seg.successor(key);
        const auto sb = tree_seg.successor(key);
        ASSERT_EQ(sa.first == nullptr, sb.first == nullptr);
        if (sa.first) {
          EXPECT_EQ(*sa.first, *sb.first);
          auto it = oracle.items.upper_bound(key);
          ASSERT_NE(it, oracle.items.end());
          EXPECT_EQ(*sa.first, it->first);
        }
        const std::uint64_t hi = key + rng.bounded(32);
        EXPECT_EQ(flat_seg.range_count(key, hi), tree_seg.range_count(key, hi));
        break;
      }
    }

    ASSERT_EQ(flat_seg.size(), oracle.items.size()) << "step " << step;
    ASSERT_EQ(tree_seg.size(), oracle.items.size()) << "step " << step;
    if (was_flat && !flat_seg.is_flat()) ++promotes_seen;
    if (!was_flat && flat_seg.is_flat()) ++demotes_seen;
    was_flat = flat_seg.is_flat();
    if (step % 512 == 0) {
      ASSERT_EQ(flat_seg.validate(), "") << "step " << step;
      ASSERT_EQ(tree_seg.validate(), "") << "step " << step;
    }
  }

  // The mix must actually have crossed the boundary both ways, or the
  // fuzz proves nothing about promote/demote.
  EXPECT_GT(promotes_seen, 0u);
  EXPECT_GT(demotes_seen, 0u);

  // Final full-content agreement, in key order.
  std::vector<std::uint64_t> keys_a;
  flat_seg.for_each([&](const std::uint64_t& k, const std::uint64_t& v,
                        std::uint64_t) {
    keys_a.push_back(k);
    EXPECT_EQ(oracle.items.at(k).first, v);
  });
  std::vector<std::uint64_t> keys_o;
  for (const auto& [k, ve] : oracle.items) keys_o.push_back(k);
  EXPECT_EQ(keys_a, keys_o);
}

// Recency extraction order must match between representations for the
// batched forms too (this exercises FlatSegment's partial-selection path
// against the recency tree's extract_prefix/suffix).
TEST(FlatSegmentFuzz, BatchedRecencyExtractionAgrees) {
  for (const bool least : {true, false}) {
    Seg flat_seg;
    Seg tree_seg;
    tree_seg.debug_force_tree();
    pwss::util::Xoshiro256 rng(least ? 77 : 78);
    // Interleave front/back arrivals so stamps are two-sided.
    for (std::uint64_t i = 0; i < 40; ++i) {
      if (rng.bounded(2)) {
        flat_seg.insert_front({i, i, 0});
        tree_seg.insert_front({i, i, 0});
      } else {
        flat_seg.insert_back({i, i, 0});
        tree_seg.insert_back({i, i, 0});
      }
    }
    while (!flat_seg.empty()) {
      const std::size_t c = 1 + rng.bounded(7);
      std::vector<Item> a;
      std::vector<Item> b;
      if (least) {
        flat_seg.extract_least_recent(c, a);
        tree_seg.extract_least_recent(c, b);
      } else {
        flat_seg.extract_most_recent(c, a);
        tree_seg.extract_most_recent(c, b);
      }
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].key, b[i].key) << "least=" << least;
      }
    }
    EXPECT_TRUE(tree_seg.empty());
  }
}

}  // namespace
