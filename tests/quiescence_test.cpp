// Regression stress tests for the submission/quiescence counter-ordering
// protocol (DESIGN.md "Submission and quiescence protocol"):
//
//  * ParallelBuffer::submit must credit pending_ BEFORE releasing the slot
//    lock — a racing flush() could otherwise take the item and debit first,
//    wrapping pending_ to a huge value and pinning AsyncMap::drive() in a
//    livelock.
//  * AsyncMap::submit must claim in_flight_ BEFORE publishing the op in the
//    parallel buffer — the drive loop could otherwise fulfill the op and
//    debit first, wrapping the counter so quiesce() spins (or transiently
//    reads 0 with an op still buffered).
//
// A wrapped (mis-ordered) counter reads near 2^64, far above kWrapBound.
// The mis-ordered windows are only a few instructions wide, so raw stress
// rarely lands in them on few-core machines; on Linux the suites therefore
// run a preemption fuzzer: a per-thread CPU timer whose SIGPROF handler
// parks the interrupted thread for several milliseconds at a random
// instruction. A submitter parked between publishing and crediting leaves
// the counter wrapped for the whole park, which the observers reliably
// sample. These suites run under TSan in CI alongside the scheduler/lock
// suites.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <thread>
#include <vector>

#include "buffer/parallel_buffer.hpp"
#include "core/async_map.hpp"
#include "core/future.hpp"
#include "core/m1_map.hpp"
#include "driver/registry.hpp"
#include "sched/scheduler.hpp"
#include "util/rng.hpp"
#include "util/schedule_points.hpp"

namespace pwss {
namespace {

using util::PreemptionFuzzer;

using IntMap = core::M1Map<std::uint64_t, std::uint64_t>;
using IntAsyncMap = core::AsyncMap<std::uint64_t, std::uint64_t, IntMap>;
using IntOp = core::Op<std::uint64_t, std::uint64_t>;

// No run ever has this many ops outstanding; a wrapped counter exceeds it
// by five orders of magnitude.
constexpr std::size_t kWrapBound = std::size_t{1} << 40;

unsigned oversubscribed_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return 4 * (hw == 0 ? 4 : hw);
}

TEST(QuiescenceStress, ParallelBufferPendingNeverWraps) {
  // One slot per submitter: no slot-lock spinning, so a parked or
  // preempted submitter sits inside submit()'s critical ordering a
  // measurable fraction of the time. The flusher SLEEPS between flushes:
  // each wake-up preempts a running submitter, and the flusher then
  // drains every slot — including any item whose credit is still pending
  // on a parked thread — and its own post-flush check observes the
  // wrapped counter directly.
  const unsigned kSubmitters = oversubscribed_threads();
  buffer::ParallelBuffer<std::uint64_t> buf(kSubmitters);
  constexpr auto kRunFor = std::chrono::milliseconds(2000);

  std::atomic<bool> stop{false};
  std::atomic<bool> done_submitting{false};
  std::atomic<bool> wrapped{false};
  std::atomic<std::size_t> submitted{0};
  std::atomic<std::size_t> drained{0};

  auto watch = [&](std::size_t seen) {
    if (seen > kWrapBound) wrapped.store(true);
  };

  std::thread flusher([&] {
    while (!done_submitting.load(std::memory_order_acquire) ||
           buf.pending() > 0) {
      drained.fetch_add(buf.flush().size(), std::memory_order_relaxed);
      watch(buf.pending());
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    drained.fetch_add(buf.flush().size(), std::memory_order_relaxed);
  });

  std::vector<std::thread> submitters;
  for (unsigned t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      PreemptionFuzzer fuzz(200'000 + 50'000 * (t % 7));
      std::size_t count = 0;
      while (!stop.load(std::memory_order_acquire)) {
        if (buf.submit(static_cast<std::uint64_t>(t) * 1000000 + count)) {
          ++count;
        }
        watch(buf.pending());
      }
      submitted.fetch_add(count, std::memory_order_relaxed);
    });
  }

  std::this_thread::sleep_for(kRunFor);
  stop.store(true, std::memory_order_release);
  for (auto& th : submitters) th.join();
  done_submitting.store(true, std::memory_order_release);
  flusher.join();

  EXPECT_FALSE(wrapped.load()) << "pending() wrapped below zero";
  EXPECT_EQ(drained.load(), submitted.load());
  EXPECT_EQ(buf.pending(), 0u);
}

TEST(QuiescenceStress, AsyncMapInFlightNeverWraps) {
  // Burst submitters concentrate their CPU time inside submit(), where
  // the fuzzer can park them between publishing an op and claiming
  // in_flight_ (the mis-ordering this guards against); the small pool
  // keeps the drive loop hot so a parked submitter's op is fulfilled —
  // and debited — during the park. Several short rounds with jittered
  // fuzzer phases beat one long run at hitting the window.
  constexpr int kRounds = 8;
  constexpr int kClients = 4;
  constexpr auto kRoundFor = std::chrono::milliseconds(1500);

  bool wrapped_any = false;
  for (int round = 0; round < kRounds && !wrapped_any; ++round) {
    sched::Scheduler scheduler(2);
    IntAsyncMap amap(IntMap(&scheduler), scheduler);
    std::atomic<bool> stop{false};
    std::atomic<bool> wrapped{false};

    auto watch = [&] {
      if (amap.in_flight() > kWrapBound) wrapped.store(true);
    };

    std::thread observer([&] {
      while (!stop.load(std::memory_order_acquire)) watch();
    });
    // A concurrent quiescer: every quiesce() must eventually return, and
    // a wrapped counter would pin it spinning.
    std::thread quiescer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        amap.quiesce();
        std::this_thread::yield();
      }
    });

    std::vector<std::thread> clients;
    for (int t = 0; t < kClients; ++t) {
      clients.emplace_back([&, t, round] {
        PreemptionFuzzer fuzz(200'000 + 70'000 * t + 30'000 * round);
        util::Xoshiro256 rng(static_cast<std::uint64_t>(t) * 977 + 11);
        std::deque<core::OpTicket<std::uint64_t>> tickets;
        while (!stop.load(std::memory_order_acquire)) {
          tickets.clear();
          for (int i = 0; i < 256; ++i) {
            auto& ticket = tickets.emplace_back();
            const std::uint64_t key = rng.bounded(512);
            switch (rng.bounded(3)) {
              case 0: amap.submit(IntOp::insert(key, key * 3), &ticket); break;
              case 1: amap.submit(IntOp::erase(key), &ticket); break;
              default: amap.submit(IntOp::search(key), &ticket);
            }
            watch();
          }
          for (auto& ticket : tickets) ticket.wait();
        }
      });
    }

    std::this_thread::sleep_for(kRoundFor);
    stop.store(true, std::memory_order_release);
    for (auto& th : clients) th.join();
    observer.join();
    quiescer.join();

    amap.quiesce();
    EXPECT_EQ(amap.in_flight(), 0u) << "round " << round;
    EXPECT_EQ(amap.map().validate(), "") << "round " << round;
    if (wrapped.load()) wrapped_any = true;
  }
  EXPECT_FALSE(wrapped_any) << "in_flight() wrapped below zero";
}

TEST(QuiescenceStress, QuiesceImpliesAllTicketsFulfilled) {
  sched::Scheduler scheduler(4);
  IntAsyncMap amap(IntMap(&scheduler), scheduler);
  constexpr int kThreads = 4;
  constexpr std::size_t kPerRound = 64;
  constexpr int kRounds = 40;

  // OpTicket is neither movable nor copyable; deques give stable storage.
  std::vector<std::deque<core::OpTicket<std::uint64_t>>> tickets(kThreads);

  for (int round = 0; round < kRounds; ++round) {
    for (auto& q : tickets) q.clear();
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (std::size_t i = 0; i < kPerRound; ++i) {
          auto& ticket = tickets[static_cast<std::size_t>(t)].emplace_back();
          const auto key = static_cast<std::uint64_t>(t) * 1000 + (i % 128);
          amap.submit(i % 2 == 0 ? IntOp::insert(key, i) : IntOp::search(key),
                      &ticket);
        }
      });
    }
    // Join first: every submit() has returned, so quiesce() must cover
    // every one of these ops.
    for (auto& th : submitters) th.join();
    amap.quiesce();
    for (int t = 0; t < kThreads; ++t) {
      for (auto& ticket : tickets[static_cast<std::size_t>(t)]) {
        ASSERT_TRUE(ticket.ready.load(std::memory_order_acquire))
            << "round " << round << ": quiesce() returned with an "
            << "unfulfilled ticket";
      }
    }
    ASSERT_EQ(amap.in_flight(), 0u) << "round " << round;
  }
  EXPECT_EQ(amap.map().validate(), "");
}

// Protocol-v2 stress: client threads drive the driver-level submit()
// surface (futures + raw tickets, point AND ordered kinds) while a
// dedicated thread hammers quiesce() the whole time. Exercises the
// in_flight_ accounting of the ordered scatter/gather and of M2's global
// ordered read under concurrency; runs under TSan in CI alongside the
// other quiescence suites.
TEST(QuiescenceStress, ConcurrentSubmitAndQuiesceAcrossBackends) {
  for (const char* name : {"m1", "m2", "sharded:m1"}) {
    driver::Options opts;
    opts.workers = 4;
    opts.shards = 2;
    auto d = driver::make_driver<std::uint64_t, std::uint64_t>(name, opts);
    for (std::uint64_t k = 0; k < 256; ++k) d->insert(k, k);

    std::atomic<bool> stop{false};
    std::thread quiescer([&] {
      while (!stop.load(std::memory_order_acquire)) {
        d->quiesce();
        std::this_thread::yield();
      }
    });

    constexpr int kThreads = 3;
    constexpr std::size_t kPerThread = 400;
    std::vector<std::thread> submitters;
    std::atomic<std::size_t> completion_submits{0};
    std::atomic<std::size_t> completions{0};
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
        std::vector<core::Future<std::uint64_t>> futures;
        futures.reserve(kPerThread);
        for (std::size_t i = 0; i < kPerThread; ++i) {
          const std::uint64_t key = rng.bounded(256);
          switch (rng.bounded(5)) {
            case 0:
              futures.push_back(d->submit(IntOp::insert(key, i)));
              break;
            case 1:
              futures.push_back(d->submit(IntOp::predecessor(key)));
              break;
            case 2:
              futures.push_back(d->submit(IntOp::range_count(key, key + 64)));
              break;
            case 3:
              completion_submits.fetch_add(1, std::memory_order_relaxed);
              d->submit(IntOp::successor(key),
                        [&](core::Result<std::uint64_t>&& r) {
                          (void)r;
                          completions.fetch_add(1,
                                                std::memory_order_relaxed);
                        });
              break;
            default:
              futures.push_back(d->submit(IntOp::search(key)));
          }
        }
        for (auto& f : futures) (void)f.get();
      });
    }
    for (auto& th : submitters) th.join();
    stop.store(true, std::memory_order_release);
    quiescer.join();
    d->quiesce();
    EXPECT_EQ(d->validate(), "") << name;
    // quiesce() returning implies every completion callback already ran
    // (fulfill — and the hook inside it — happens before the in-flight
    // decrement quiesce() waits on).
    EXPECT_EQ(completions.load(), completion_submits.load()) << name;
  }
}

}  // namespace
}  // namespace pwss
