// Tests for the implicit-batching plumbing: parallel buffer (A.1), feed
// buffer of bunches (Section 6.1), AsyncGate, and the AsyncMap front end.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "buffer/feed_buffer.hpp"
#include "buffer/parallel_buffer.hpp"
#include "core/async_map.hpp"
#include "core/m1_map.hpp"
#include "sync/async_gate.hpp"
#include "util/rng.hpp"

namespace pwss {
namespace {

TEST(ParallelBuffer, SubmitFlushRoundTrip) {
  buffer::ParallelBuffer<int> buf(4);
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(buf.submit(i));
  EXPECT_EQ(buf.pending(), 100u);
  auto out = buf.flush();
  EXPECT_EQ(out.size(), 100u);
  EXPECT_EQ(buf.pending(), 0u);
  std::set<int> s(out.begin(), out.end());
  EXPECT_EQ(s.size(), 100u);
}

TEST(ParallelBuffer, FlushEmpty) {
  buffer::ParallelBuffer<int> buf(2);
  EXPECT_TRUE(buf.flush().empty());
}

TEST(ParallelBuffer, SameThreadOrderPreserved) {
  buffer::ParallelBuffer<int> buf(4);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(buf.submit(i));
  const auto out = buf.flush();
  // All from one thread => one slot => order preserved.
  ASSERT_EQ(out.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(out[static_cast<size_t>(i)], i);
}

TEST(ParallelBuffer, ConcurrentSubmittersLoseNothing) {
  buffer::ParallelBuffer<std::uint64_t> buf(8);
  constexpr int kThreads = 8, kPer = 10000;
  std::atomic<std::size_t> flushed{0};
  std::atomic<bool> done{false};
  std::thread flusher([&] {
    while (!done.load() || buf.pending() > 0) {
      flushed.fetch_add(buf.flush().size());
    }
    flushed.fetch_add(buf.flush().size());
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        EXPECT_TRUE(buf.submit(static_cast<std::uint64_t>(t) * kPer + i));
      }
    });
  }
  for (auto& th : threads) th.join();
  done = true;
  flusher.join();
  EXPECT_EQ(flushed.load(), static_cast<std::size_t>(kThreads) * kPer);
  EXPECT_EQ(buf.validate(), "");
}

TEST(FeedBuffer, CutsIntoBunches) {
  buffer::FeedBuffer<int> feed(10);
  std::vector<int> input(25);
  for (int i = 0; i < 25; ++i) input[static_cast<size_t>(i)] = i;
  feed.append(std::move(input));
  EXPECT_EQ(feed.size(), 25u);
  EXPECT_EQ(feed.bunch_count(), 3u);  // 10 + 10 + 5
}

TEST(FeedBuffer, TopsUpLastBunchFirst) {
  buffer::FeedBuffer<int> feed(10);
  feed.append({1, 2, 3});             // bunch: [3]
  EXPECT_EQ(feed.bunch_count(), 1u);
  feed.append({4, 5, 6, 7, 8, 9, 10, 11, 12});  // fills to 10, then [2]
  EXPECT_EQ(feed.bunch_count(), 2u);
  auto first = feed.take_bunches(1);
  EXPECT_EQ(first.size(), 10u);
  EXPECT_EQ(first[0], 1);
  auto second = feed.take_bunches(1);
  EXPECT_EQ(second.size(), 2u);
  EXPECT_TRUE(feed.empty());
}

TEST(FeedBuffer, TakeMoreThanAvailable) {
  buffer::FeedBuffer<int> feed(4);
  feed.append({1, 2, 3, 4, 5});
  auto out = feed.take_bunches(10);
  EXPECT_EQ(out.size(), 5u);
  EXPECT_TRUE(feed.empty());
  EXPECT_TRUE(feed.take_bunches(1).empty());
}

TEST(FeedBuffer, FifoAcrossBunches) {
  buffer::FeedBuffer<int> feed(3);
  feed.append({0, 1, 2, 3, 4, 5, 6, 7});
  auto all = feed.take_bunches(3);
  ASSERT_EQ(all.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(all[static_cast<size_t>(i)], i);
}

TEST(FeedBuffer, TopUpAccumulatesAcrossManySmallAppends) {
  buffer::FeedBuffer<int> feed(5);
  // Five 1-element appends must coalesce into ONE bunch, not five.
  for (int i = 0; i < 5; ++i) {
    feed.append({i});
    EXPECT_EQ(feed.bunch_count(), 1u) << "after append " << i;
    EXPECT_EQ(feed.size(), static_cast<std::size_t>(i) + 1);
  }
  // The sixth element starts a fresh bunch.
  feed.append({5});
  EXPECT_EQ(feed.bunch_count(), 2u);
  auto first = feed.take_bunches(1);
  ASSERT_EQ(first.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(first[static_cast<size_t>(i)], i);
  EXPECT_EQ(feed.take_bunches(1), std::vector<int>{5});
}

TEST(FeedBuffer, ExactlyFullLastBunchTakesNoTopUp) {
  buffer::FeedBuffer<int> feed(4);
  feed.append({0, 1, 2, 3});  // exactly one full bunch
  EXPECT_EQ(feed.bunch_count(), 1u);
  feed.append({4, 5});  // no room in the last bunch: a fresh one
  EXPECT_EQ(feed.bunch_count(), 2u);
  EXPECT_EQ(feed.take_bunches(1).size(), 4u);
  EXPECT_EQ(feed.take_bunches(1).size(), 2u);
}

TEST(FeedBuffer, AppendEmptyInputIsANoOp) {
  buffer::FeedBuffer<int> feed(3);
  feed.append({});
  EXPECT_TRUE(feed.empty());
  EXPECT_EQ(feed.size(), 0u);
  EXPECT_EQ(feed.bunch_count(), 0u);
  feed.append({1, 2});
  feed.append({});
  EXPECT_EQ(feed.size(), 2u);
  EXPECT_EQ(feed.bunch_count(), 1u);
}

TEST(FeedBuffer, TakeZeroBunchesLeavesEverything) {
  buffer::FeedBuffer<int> feed(3);
  feed.append({1, 2, 3, 4});
  EXPECT_TRUE(feed.take_bunches(0).empty());
  EXPECT_EQ(feed.size(), 4u);
  EXPECT_EQ(feed.bunch_count(), 2u);
}

TEST(FeedBuffer, TotalAccountingSurvivesMixedTakeAndAppend) {
  buffer::FeedBuffer<int> feed(4);
  feed.append({0, 1, 2, 3, 4, 5});  // bunches [4][2], total 6
  EXPECT_EQ(feed.size(), 6u);
  auto front = feed.take_bunches(1);  // removes [4]
  EXPECT_EQ(front.size(), 4u);
  EXPECT_EQ(feed.size(), 2u);
  // The partial [2] bunch is now the LAST bunch; a new append tops it up
  // (take must not have corrupted the top-up invariant).
  feed.append({6, 7, 8});  // [2+2][1]
  EXPECT_EQ(feed.size(), 5u);
  EXPECT_EQ(feed.bunch_count(), 2u);
  auto second = feed.take_bunches(1);
  ASSERT_EQ(second.size(), 4u);
  EXPECT_EQ(second, (std::vector<int>{4, 5, 6, 7}));
  EXPECT_EQ(feed.size(), 1u);
  auto rest = feed.take_bunches(5);
  EXPECT_EQ(rest, std::vector<int>{8});
  EXPECT_EQ(feed.size(), 0u);
  EXPECT_TRUE(feed.empty());
  // Draining to empty and re-appending starts fresh bunches.
  feed.append({9});
  EXPECT_EQ(feed.size(), 1u);
  EXPECT_EQ(feed.bunch_count(), 1u);
  EXPECT_EQ(feed.validate(), "");
}

TEST(FeedBuffer, ValidatorTracksMixedChurn) {
  // The credit-conservation validator must hold through an arbitrary
  // append/take interleaving, not just the scripted one above.
  buffer::FeedBuffer<int> feed(8);
  util::Xoshiro256 rng(99);
  int next = 0;
  for (int step = 0; step < 400; ++step) {
    if (rng.bounded(2) == 0) {
      std::vector<int> in(rng.bounded(20));
      for (auto& x : in) x = next++;
      feed.append(std::move(in));
    } else {
      (void)feed.take_bunches(rng.bounded(4));
    }
    ASSERT_EQ(feed.validate(), "") << "step " << step;
  }
}

TEST(AsyncGate, BeginFinishSingleOwner) {
  sync::AsyncGate g;
  EXPECT_TRUE(g.begin());
  EXPECT_TRUE(g.active());
  EXPECT_FALSE(g.begin()) << "second begin must not grant ownership";
  EXPECT_TRUE(g.finish()) << "pending mark consumed, still owner";
  EXPECT_FALSE(g.finish());
  EXPECT_FALSE(g.active());
}

TEST(AsyncGate, PendingCollapses) {
  sync::AsyncGate g;
  EXPECT_TRUE(g.begin());
  EXPECT_FALSE(g.begin());
  EXPECT_FALSE(g.begin());  // multiple pendings collapse into one
  EXPECT_TRUE(g.finish());
  EXPECT_FALSE(g.finish());
}

TEST(AsyncGate, ConcurrentBeginsExactlyOneOwner) {
  for (int round = 0; round < 200; ++round) {
    sync::AsyncGate g;
    std::atomic<int> owners{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&] { owners.fetch_add(g.begin() ? 1 : 0); });
    }
    for (auto& th : threads) th.join();
    EXPECT_EQ(owners.load(), 1);
    while (g.finish()) {
    }
    EXPECT_FALSE(g.active());
  }
}

TEST(AsyncMapM1, BlockingOpsFromSingleThread) {
  sched::Scheduler scheduler(4);
  core::AsyncMap<int, int, core::M1Map<int, int>> amap(
      core::M1Map<int, int>(&scheduler), scheduler);
  EXPECT_TRUE(amap.insert(1, 10));
  EXPECT_FALSE(amap.insert(1, 11));
  EXPECT_EQ(amap.search(1), 11);
  EXPECT_EQ(amap.search(2), std::nullopt);
  EXPECT_EQ(amap.erase(1), 11);
  EXPECT_EQ(amap.search(1), std::nullopt);
}

TEST(AsyncMapM1, ManyConcurrentClients) {
  sched::Scheduler scheduler(4);
  core::AsyncMap<std::uint64_t, std::uint64_t,
                 core::M1Map<std::uint64_t, std::uint64_t>>
      amap(core::M1Map<std::uint64_t, std::uint64_t>(&scheduler), scheduler);
  constexpr int kThreads = 6, kOps = 3000;
  std::atomic<std::uint64_t> found{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      util::Xoshiro256 rng(static_cast<std::uint64_t>(t) + 1);
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t key = rng.bounded(512);
        switch (rng.bounded(3)) {
          case 0: amap.insert(key, key * 2); break;
          case 1: amap.erase(key); break;
          default: {
            auto v = amap.search(key);
            if (v) {
              EXPECT_EQ(*v, key * 2);  // values are a function of the key
              found.fetch_add(1);
            }
          }
        }
      }
    });
  }
  for (auto& th : clients) th.join();
  amap.quiesce();
  EXPECT_GT(found.load(), 0u);
  EXPECT_EQ(amap.map().validate(), "");
  EXPECT_LE(amap.map().size(), 512u);
}

TEST(AsyncMapM1, PerThreadProgramOrderRespected) {
  sched::Scheduler scheduler(4);
  core::AsyncMap<int, int, core::M1Map<int, int>> amap(
      core::M1Map<int, int>(&scheduler), scheduler);
  // One thread issuing insert -> search -> erase -> search on its own key
  // must see its own effects in order.
  std::vector<std::thread> clients;
  std::atomic<bool> ok{true};
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        const int key = t * 1000 + i;  // disjoint key space per thread
        if (!amap.insert(key, i)) ok = false;
        auto v = amap.search(key);
        if (!v || *v != i) ok = false;
        if (amap.erase(key) != i) ok = false;
        if (amap.search(key).has_value()) ok = false;
      }
    });
  }
  for (auto& th : clients) th.join();
  EXPECT_TRUE(ok.load());
  amap.quiesce();
  EXPECT_EQ(amap.map().size(), 0u);
}

}  // namespace
}  // namespace pwss
