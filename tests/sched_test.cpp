// Tests for the work-stealing / weak-priority scheduler (src/sched).
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <functional>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "sched/chase_lev.hpp"
#include "sched/scheduler.hpp"
#include "sched/task.hpp"
#include "sync/dedicated_lock.hpp"

namespace pwss {
namespace {

TEST(ChaseLev, LifoForOwner) {
  sched::ChaseLevDeque dq;
  auto fn = [] {};
  sched::ForkTask a(fn), b(fn), c(fn);
  dq.push(&a);
  dq.push(&b);
  dq.push(&c);
  EXPECT_EQ(dq.pop(), &c);
  EXPECT_EQ(dq.pop(), &b);
  EXPECT_EQ(dq.pop(), &a);
  EXPECT_EQ(dq.pop(), nullptr);
}

TEST(ChaseLev, FifoForThief) {
  sched::ChaseLevDeque dq;
  auto fn = [] {};
  sched::ForkTask a(fn), b(fn);
  dq.push(&a);
  dq.push(&b);
  EXPECT_EQ(dq.steal(), &a);
  EXPECT_EQ(dq.steal(), &b);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ChaseLev, GrowsPastInitialCapacity) {
  sched::ChaseLevDeque dq(2);
  auto fn = [] {};
  std::vector<std::unique_ptr<sched::ForkTask>> tasks;
  for (int i = 0; i < 1000; ++i) {
    tasks.push_back(std::make_unique<sched::ForkTask>(fn));
    dq.push(tasks.back().get());
  }
  for (int i = 999; i >= 0; --i) EXPECT_EQ(dq.pop(), tasks[i].get());
}

TEST(ChaseLev, ConcurrentStealsSeeEachTaskOnce) {
  sched::ChaseLevDeque dq;
  constexpr int kTasks = 20000;
  auto fn = [] {};
  std::vector<std::unique_ptr<sched::ForkTask>> tasks;
  tasks.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    tasks.push_back(std::make_unique<sched::ForkTask>(fn));
  }
  std::atomic<int> produced{0};
  std::atomic<int> consumed{0};
  std::atomic<bool> done_producing{false};

  std::thread owner([&] {
    for (int i = 0; i < kTasks; ++i) {
      dq.push(tasks[i].get());
      produced.fetch_add(1);
      if (i % 3 == 0) {
        if (dq.pop() != nullptr) consumed.fetch_add(1);
      }
    }
    done_producing = true;
    while (dq.pop() != nullptr) consumed.fetch_add(1);
  });
  std::vector<std::thread> thieves;
  for (int t = 0; t < 4; ++t) {
    thieves.emplace_back([&] {
      while (!done_producing.load() || !dq.empty()) {
        if (dq.steal() != nullptr) consumed.fetch_add(1);
      }
    });
  }
  owner.join();
  for (auto& th : thieves) th.join();
  // Drain any leftovers the racing threads missed.
  while (dq.steal() != nullptr) consumed.fetch_add(1);
  EXPECT_EQ(consumed.load(), kTasks);
}

TEST(Scheduler, RunSyncExecutesOnPool) {
  sched::Scheduler s(4);
  std::atomic<bool> ran{false};
  std::atomic<bool> was_worker{false};
  s.run_sync([&] {
    ran = true;
    was_worker = s.on_worker();
  });
  EXPECT_TRUE(ran);
  EXPECT_TRUE(was_worker);
  EXPECT_FALSE(s.on_worker());
}

TEST(Scheduler, SpawnEventuallyRuns) {
  sched::Scheduler s(2);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    s.spawn([&] { count.fetch_add(1); });
  }
  while (count.load() < 100) std::this_thread::yield();
  EXPECT_EQ(count.load(), 100);
}

TEST(Scheduler, ParallelInvokeRunsBothBranches) {
  sched::Scheduler s(4);
  std::atomic<int> total{0};
  s.run_sync([&] {
    auto f = [&] { total.fetch_add(1); };
    auto g = [&] { total.fetch_add(2); };
    s.parallel_invoke(sched::FnView(f), sched::FnView(g));
  });
  EXPECT_EQ(total.load(), 3);
}

TEST(Scheduler, ParallelInvokeOffPoolDegradesToSequential) {
  sched::Scheduler s(2);
  int total = 0;
  auto f = [&] { total += 1; };
  auto g = [&] { total += 2; };
  s.parallel_invoke(sched::FnView(f), sched::FnView(g));  // not on a worker
  EXPECT_EQ(total, 3);
}

TEST(Scheduler, NestedForkJoinComputesFibonacci) {
  sched::Scheduler s(8);
  // Recursive fork/join exercises stealing + helping under real nesting.
  std::function<long(long)> fib = [&](long n) -> long {
    if (n < 2) return n;
    long a = 0, b = 0;
    auto left = [&] { a = fib(n - 1); };
    auto right = [&] { b = fib(n - 2); };
    s.parallel_invoke(sched::FnView(left), sched::FnView(right));
    return a + b;
  };
  long result = 0;
  s.run_sync([&] { result = fib(20); });
  EXPECT_EQ(result, 6765);
}

TEST(Scheduler, ParallelForCoversRangeExactlyOnce) {
  sched::Scheduler s(8);
  constexpr std::size_t kN = 100000;
  std::vector<std::atomic<int>> hits(kN);
  s.parallel_for(0, kN, 64, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(Scheduler, ParallelForEmptyAndTinyRanges) {
  sched::Scheduler s(2);
  int calls = 0;
  s.parallel_for(5, 5, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  std::atomic<int> sum{0};
  s.parallel_for(0, 3, 8, [&](std::size_t lo, std::size_t hi) {
    sum.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(sum.load(), 3);
}

TEST(Scheduler, ParallelForActuallyUsesMultipleWorkers) {
  sched::Scheduler s(4);
  std::atomic<std::uint64_t> worker_mask{0};
  s.parallel_for(0, 20000, 1, [&](std::size_t, std::size_t) {
    worker_mask.fetch_or(1ULL << (std::hash<std::thread::id>{}(
                                      std::this_thread::get_id()) %
                                  64));
    // Spin long enough that sleeping workers wake and steal.
    for (int i = 0; i < 2000; ++i) {
      std::atomic_signal_fence(std::memory_order_seq_cst);
    }
  });
  EXPECT_GT(std::popcount(worker_mask.load()), 1);
}

TEST(Scheduler, HighPriorityTasksRunUnderLoad) {
  sched::Scheduler s(4);
  std::atomic<bool> stop{false};
  std::atomic<int> low_running{0};
  // Saturate with low-priority spinners.
  for (int i = 0; i < 16; ++i) {
    s.spawn(
        [&] {
          low_running.fetch_add(1);
          while (!stop.load()) std::this_thread::yield();
        },
        sched::Priority::kLow);
  }
  while (low_running.load() < 2) std::this_thread::yield();
  std::atomic<bool> high_ran{false};
  s.spawn([&] { high_ran = true; }, sched::Priority::kHigh);
  // A high-preferring worker must pick it up even with low spam pending.
  for (int i = 0; i < 10000 && !high_ran.load(); ++i) {
    std::this_thread::yield();
  }
  stop = true;
  while (low_running.load() < 16) std::this_thread::yield();
  EXPECT_TRUE(high_ran.load());
}

TEST(Scheduler, ResumeSinkIntegratesWithDedicatedLock) {
  sched::Scheduler s(4);
  sync::DedicatedLock lock(2);
  std::atomic<int> completed{0};
  const auto sink = s.resume_sink(sched::Priority::kLow);
  s.run_sync([&] {
    auto hold_then_release = [&](std::size_t key) {
      lock.acquire(
          key,
          [&, key] {
            (void)key;
            completed.fetch_add(1);
            lock.release(sink);
          },
          sink);
    };
    auto a = [&] { hold_then_release(0); };
    auto b = [&] { hold_then_release(1); };
    s.parallel_invoke(sched::FnView(a), sched::FnView(b));
  });
  // Both continuations complete (possibly via parked resume on the pool).
  for (int i = 0; i < 100000 && completed.load() < 2; ++i) {
    std::this_thread::yield();
  }
  EXPECT_EQ(completed.load(), 2);
}

TEST(Scheduler, ManySchedulersConstructDestruct) {
  for (int i = 0; i < 10; ++i) {
    sched::Scheduler s(3);
    std::atomic<int> n{0};
    s.parallel_for(0, 1000, 16, [&](std::size_t lo, std::size_t hi) {
      n.fetch_add(static_cast<int>(hi - lo));
    });
    EXPECT_EQ(n.load(), 1000);
  }
}

TEST(Scheduler, WorkerCountDefaultsPositive) {
  sched::Scheduler s;
  EXPECT_GE(s.worker_count(), 1u);
}

}  // namespace
}  // namespace pwss
